// Ablation of the §VII future-work features this library implements beyond
// the paper's prototype:
//   1. guest-assisted unused-block skipping (sparse first pass), and
//   2. the multi-host IM version directory (incremental migration to any
//      recently-visited host, not just the previous one).

#include <cstdio>

#include "bench_util.hpp"
#include "core/migration_manager.hpp"
#include "scenario/testbed.hpp"
#include "workloads/kernel_build.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

double disk_mib(const core::MigrationReport& r) {
  return static_cast<double>(r.bytes_disk_first_pass + r.bytes_disk_retransfer +
                             r.bytes_postcopy_push + r.bytes_postcopy_pull) /
         (1024.0 * 1024.0);
}

void sparse_sweep() {
  bench::section("1. guest-assisted free-block map (sparse first pass)");
  std::printf("  %14s %12s %12s %12s %14s\n", "disk fullness", "plain(s)",
              "sparse(s)", "plain MiB", "sparse MiB");
  for (const double fullness : {0.10, 0.25, 0.50, 0.90}) {
    core::MigrationReport plain, sparse;
    for (const bool skip : {false, true}) {
      sim::Simulator sim;
      scenario::TestbedConfig bed;
      bed.vbd_mib = 8192;
      scenario::Testbed tb{sim, bed};
      const auto blocks = tb.source().disk().geometry().block_count;
      const auto used = static_cast<storage::BlockId>(
          static_cast<double>(blocks) * fullness);
      for (storage::BlockId b = 0; b < used; ++b) {
        tb.source().disk().poke_token(b, 0xf000 + b);
      }
      auto cfg = tb.paper_migration_config();
      cfg.skip_unused_blocks = skip;
      const auto rep = tb.run_tpm(nullptr, 5_s, 5_s, cfg);
      (skip ? sparse : plain) = rep;
    }
    std::printf("  %13.0f%% %12.1f %12.1f %12.1f %14.1f\n", fullness * 100,
                plain.total_time().to_seconds(),
                sparse.total_time().to_seconds(), disk_mib(plain),
                disk_mib(sparse));
  }
  std::printf("  (the paper: \"all the data in VBD must be transmitted\n"
              "   including unused blocks\" — this removes that cost)\n");
}

void multihost_demo() {
  bench::section("2. multi-host IM directory (version maintenance)");
  // A developer's VM commutes office -> home -> laptop -> office. With the
  // paper's pairwise IM, the hop to a two-hops-ago machine is a full copy;
  // with the directory it is incremental.
  for (const bool directory : {false, true}) {
    sim::Simulator sim;
    const auto geo = storage::Geometry::from_mib(4096);
    const auto disk = scenario::TestbedConfig::paper_disk();
    const auto lan = scenario::TestbedConfig::paper_lan();
    hv::Host office{sim, "office", geo, disk};
    hv::Host home{sim, "home", geo, disk};
    hv::Host laptop{sim, "laptop", geo, disk};
    hv::Host::interconnect(office, home, lan);
    hv::Host::interconnect(home, laptop, lan);
    hv::Host::interconnect(laptop, office, lan);
    vm::Domain guest{sim, 1, "devbox", 256};
    office.attach_domain(guest);
    for (storage::BlockId b = 0; b < geo.block_count; ++b) {
      office.disk().poke_token(b, 0xbeef0000 + b);
    }
    workload::KernelBuildWorkload work{sim, guest, 11};
    core::MigrationManager mgr{sim};
    mgr.set_multi_host_im(directory);

    std::printf("  %s:\n", directory ? "with version directory (§VII)"
                                     : "pairwise IM (paper prototype)");
    struct Hop {
      hv::Host* from;
      hv::Host* to;
    } hops[] = {{&office, &home}, {&home, &laptop}, {&laptop, &office}};
    bool stopped = false;
    sim.spawn(
        [](sim::Simulator& sim, core::MigrationManager& mgr, vm::Domain& guest,
           workload::KernelBuildWorkload& work, Hop* hops,
           bool& stopped) -> sim::Task<void> {
          work.start();
          for (int i = 0; i < 3; ++i) {
            co_await sim.delay(300_s);
            const auto rep =
                (co_await mgr.migrate({.domain = &guest, .from = hops[i].from, .to = hops[i].to})).report;
            std::printf("    %-7s-> %-7s %-11s disk=%8.1f MiB total=%6.1f s %s\n",
                        hops[i].from->name().c_str(),
                        hops[i].to->name().c_str(),
                        rep.incremental ? "incremental" : "FULL COPY",
                        disk_mib(rep), rep.total_time().to_seconds(),
                        rep.disk_consistent ? "ok" : "INCONSISTENT");
          }
          work.request_stop();
          co_await work.handle();
          stopped = true;
        }(sim, mgr, guest, work, hops, stopped),
        "commute");
    sim.run();
  }
  std::printf("  (hop 3 returns to a machine last seen two hops ago: the\n"
              "   directory turns a multi-GiB copy into an MiB-scale delta)\n");
}

}  // namespace

int main() {
  bench::header("§VII extensions", "sparse migration + multi-host IM");
  sparse_sweep();
  multihost_demo();
  return 0;
}
