// Memory pre-copy convergence ablation: the Xen (NSDI'05) dynamics TPM's
// freeze phase inherits. Sweeping the guest's page-dirty rate shows the
// three regimes — converges in one pass, iterates down to a small residual,
// or hits the dirty-rate abort and eats the residual in downtime.

#include <cstdio>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"
#include "workloads/memory_hog.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct Point {
  double rate_pps;
  int iterations;
  std::uint64_t residual_pages;
  double downtime_ms;
  bool aborted;
  bool consistent;
};

Point run(double rate_pps, std::uint64_t hot_pages) {
  sim::Simulator sim;
  scenario::TestbedConfig bed;
  bed.vbd_mib = 1024;  // small disk: memory dominates this experiment
  scenario::Testbed tb{sim, bed};
  tb.prefill_disk();
  workload::MemoryHogParams p;
  p.dirty_rate_pps = rate_pps;
  p.hot_pages = hot_pages;
  workload::MemoryHogWorkload hog{sim, tb.vm(), 42, p};
  auto cfg = tb.paper_migration_config();
  cfg.mem_max_iterations = 8;
  const auto rep = tb.run_tpm(&hog, 10_s, 5_s, cfg);
  Point pt;
  pt.rate_pps = rate_pps;
  pt.iterations = rep.mem_iterations;
  pt.residual_pages = rep.pages_residual;
  pt.downtime_ms = rep.downtime().to_millis();
  pt.aborted = false;  // (abort flag tracks the disk; memory abort shows as
                       // large residual at max iterations)
  pt.consistent = rep.disk_consistent && rep.memory_consistent;
  return pt;
}

}  // namespace

int main() {
  bench::header("Memory ablation",
                "pre-copy convergence vs guest dirty rate (Xen dynamics)");

  std::printf("\n  hot set 2048 pages (8 MiB), GbE transfer ~30k pages/s\n");
  std::printf("  %14s %12s %16s %14s %6s\n", "dirty (pages/s)", "iterations",
              "residual pages", "downtime (ms)", "ok");
  for (const double rate : {1000.0, 5000.0, 20000.0, 60000.0, 200000.0}) {
    const auto pt = run(rate, 2048);
    std::printf("  %14.0f %12d %16llu %14.1f %6s\n", pt.rate_pps,
                pt.iterations,
                static_cast<unsigned long long>(pt.residual_pages),
                pt.downtime_ms, pt.consistent ? "yes" : "NO");
  }

  bench::section("hot-set size sweep at 60k pages/s");
  std::printf("  %14s %12s %16s %14s\n", "hot pages", "iterations",
              "residual pages", "downtime (ms)");
  for (const std::uint64_t hot : {512ull, 2048ull, 8192ull, 32768ull}) {
    const auto pt = run(60000.0, hot);
    std::printf("  %14llu %12d %16llu %14.1f\n",
                static_cast<unsigned long long>(hot), pt.iterations,
                static_cast<unsigned long long>(pt.residual_pages),
                pt.downtime_ms);
  }

  bench::section("reading the curve");
  std::printf(
      "  Slow dirtying converges in few iterations with a tiny residual —\n"
      "  downtime stays at the fixed overheads. Once the hot set rewrites\n"
      "  itself faster than the link drains it, iterating stops paying and\n"
      "  the residual (= hot set) rides in the freeze phase: downtime grows\n"
      "  with hot-set size, exactly the Xen writable-working-set result the\n"
      "  paper leans on for its memory phase.\n");
  return 0;
}
