// Ablation of the post-copy design (§IV-A-3): the paper's push+pull versus
// push-only (reads wait for the sweep) and pull-only (= on-demand, never
// converges), plus a push-chunk-size sweep. A diabolical writer with the
// iteration cap forced to 1 leaves a large residue for post-copy to cover.

#include <cstdio>

#include "baselines/on_demand.hpp"
#include "bench_util.hpp"
#include "core/migration_manager.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

scenario::TestbedConfig bed_config() {
  scenario::TestbedConfig cfg;
  cfg.vbd_mib = 8192;
  return cfg;
}

struct Result {
  core::MigrationReport rep;
};

Result run_tpm_variant(bool pull_enabled, std::uint32_t push_chunk) {
  sim::Simulator sim;
  scenario::Testbed tb{sim, bed_config()};
  tb.prefill_disk();
  workload::DiabolicalParams p;
  p.file_mib = 512;
  workload::DiabolicalWorkload bonnie{sim, tb.vm(), 42, p};
  auto cfg = tb.paper_migration_config();
  cfg.disk_max_iterations = 1;  // leave the whole dirtied file to post-copy
  cfg.postcopy_pull_enabled = pull_enabled;
  cfg.push_chunk_blocks = push_chunk;
  Result r;
  r.rep = tb.run_tpm(&bonnie, 30_s, 60_s, cfg);
  return r;
}

}  // namespace

int main() {
  bench::header("Ablation", "post-copy push+pull vs alternatives (§IV-A-3)");

  const Result push_pull = run_tpm_variant(true, 64);
  const Result push_only = run_tpm_variant(false, 64);

  std::printf("\n%-18s %12s %12s %10s %12s %14s %14s\n", "variant",
              "postcopy(s)", "residual", "pulled", "reads-blkd",
              "stall-total(ms)", "stall-max(ms)");
  const auto print = [](const char* name, const core::MigrationReport& r) {
    std::printf("%-18s %12.2f %12llu %10llu %12llu %14.1f %14.1f\n", name,
                r.postcopy_time().to_seconds(),
                static_cast<unsigned long long>(r.residual_dirty_blocks),
                static_cast<unsigned long long>(r.blocks_pulled),
                static_cast<unsigned long long>(r.postcopy_reads_blocked),
                r.postcopy_read_stall_total.to_millis(),
                r.postcopy_read_stall_max.to_millis());
  };
  print("push+pull (paper)", push_pull.rep);
  print("push-only", push_only.rep);

  bench::section("pull-only = on-demand fetching (never converges)");
  {
    sim::Simulator sim;
    scenario::Testbed tb{sim, bed_config()};
    tb.prefill_disk();
    workload::DiabolicalParams p;
    p.file_mib = 512;
    workload::DiabolicalWorkload bonnie{sim, tb.vm(), 42, p};
    bonnie.start();
    sim.run_for(30_s);
    baseline::BaselineReport rep;
    sim.spawn([](sim::Simulator& s, scenario::Testbed& tb,
                 baseline::BaselineReport& out) -> sim::Task<void> {
      baseline::OnDemandMigration m{s, tb.paper_migration_config(), tb.vm(),
                                    tb.source(), tb.dest()};
      out = co_await m.run(/*observe_window=*/120_s);
    }(sim, tb, rep));
    sim.run_for(1200_s);
    bonnie.request_stop();
    sim.run_for(120_s);
    std::printf("  after 120 s of Bonnie++ at the destination: fetched=%llu, "
                "still source-resident=%llu of %llu blocks -> %s\n",
                static_cast<unsigned long long>(rep.remote_fetches),
                static_cast<unsigned long long>(rep.remote_blocks_left),
                static_cast<unsigned long long>(
                    tb.dest().disk().geometry().block_count),
                rep.residual_dependency ? "UNBOUNDED source dependency"
                                        : "converged");
  }

  bench::section("push chunk size sweep (push+pull)");
  std::printf("  %10s %14s %10s %14s\n", "chunk", "postcopy(s)", "pulled",
              "stall-max(ms)");
  for (const std::uint32_t chunk : {1u, 16u, 64u, 256u}) {
    const Result r = run_tpm_variant(true, chunk);
    std::printf("  %10u %14.2f %10llu %14.1f\n", chunk,
                r.rep.postcopy_time().to_seconds(),
                static_cast<unsigned long long>(r.rep.blocks_pulled),
                r.rep.postcopy_read_stall_max.to_millis());
  }

  bench::section("takeaways");
  std::printf(
      "  push guarantees convergence (finite source dependency); pull keeps\n"
      "  guest read stalls bounded while the sweep is still far away;\n"
      "  pull-only (on-demand) never releases the source.\n");
  const bool stall_better =
      push_pull.rep.postcopy_read_stall_max <= push_only.rep.postcopy_read_stall_max;
  std::printf("  pull reduces worst-case read stall: %s\n",
              stall_better ? "yes" : "NO");
  return 0;
}
