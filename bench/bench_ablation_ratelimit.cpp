// §VI-C-3 ablation: sweep the migration stream's bandwidth limit while the
// diabolical server runs. Limiting the network rate correspondingly reduces
// the migration's disk reads, returning disk bandwidth to the guest — at
// the cost of a longer pre-copy. The paper reports ~50% impact reduction
// for ~37% longer pre-copy at its chosen limit.

#include <cstdio>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct Point {
  double limit_mibps;
  double precopy_s;
  double total_s;
  double guest_kbps_during;  ///< aggregate Bonnie++ throughput, KB/s
  bool consistent;
};

Point run(double limit) {
  sim::Simulator sim;
  scenario::TestbedConfig bed_cfg;
  bed_cfg.vbd_mib = 16384;  // quarter-scale disk: same contention physics
  scenario::Testbed tb{sim, bed_cfg};
  tb.prefill_disk();
  workload::DiabolicalParams p;
  p.file_mib = 1024;
  workload::DiabolicalWorkload bonnie{sim, tb.vm(), 42, p};
  auto cfg = tb.paper_migration_config();
  cfg.rate_limit_mibps = limit;
  const auto rep = tb.run_tpm(&bonnie, 120_s, 60_s, cfg);
  bonnie.finish_phase_metrics();
  Point pt;
  pt.limit_mibps = limit;
  pt.precopy_s = rep.precopy_time().to_seconds();
  pt.total_s = rep.total_time().to_seconds();
  pt.guest_kbps_during =
      bonnie.throughput().series().mean_in(rep.started, rep.synchronized) /
      1024.0;
  pt.consistent = rep.disk_consistent && rep.memory_consistent;
  return pt;
}

}  // namespace

int main() {
  bench::header("§VI-C-3", "migration bandwidth limit vs guest throughput");

  const double limits[] = {0.0, 45.0, 35.0, 30.0, 25.0, 20.0};
  Point pts[6];
  for (int i = 0; i < 6; ++i) pts[i] = run(limits[i]);

  std::printf("\n%12s %12s %12s %18s %6s\n", "limit(MiB/s)", "precopy(s)",
              "total(s)", "guest tput(KB/s)", "ok");
  for (const auto& p : pts) {
    if (p.limit_mibps <= 0) {
      std::printf("%12s", "unlimited");
    } else {
      std::printf("%12.0f", p.limit_mibps);
    }
    std::printf(" %12.1f %12.1f %18.0f %6s\n", p.precopy_s, p.total_s,
                p.guest_kbps_during, p.consistent ? "yes" : "NO");
  }

  bench::section("trade-off (vs unlimited)");
  for (int i = 1; i < 6; ++i) {
    const double stretch = pts[i].precopy_s / pts[0].precopy_s - 1.0;
    const double recover =
        pts[i].guest_kbps_during / pts[0].guest_kbps_during - 1.0;
    std::printf("  limit %4.0f MiB/s: pre-copy %+5.1f%%, guest throughput %+5.1f%%\n",
                limits[i], stretch * 100.0, recover * 100.0);
  }
  std::printf("\n  paper's operating point: ~+37%% pre-copy buys back ~50%% of\n"
              "  the guest's lost throughput; the sweep shows the same knee.\n");
  return 0;
}
