// Flight-recorder overhead benchmark: recording is pure observation, so the
// A/B runs (recorder off vs on) must land on identical simulated timings —
// the gated delta metrics are exact zeros, far inside the <5% budget. Also
// sizes the record for the kernel-build workload and runs vmig_analyze over
// it end to end: every reconciliation check must pass.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analyze.hpp"
#include "bench_util.hpp"
#include "obs/recorder.hpp"
#include "scenario/testbed.hpp"
#include "workloads/kernel_build.hpp"

using namespace vmig;

namespace {

std::uint64_t g_vbd_mib = 128;  // --quick drops this to 64

struct RunResult {
  core::MigrationReport report;
  std::uint64_t events = 0;
  std::string jsonl;
};

/// One kernel-build TPM migration, with or without the flight recorder
/// attached — the exact wiring `vmig_sim --flight-record` uses.
RunResult run_build(bool record) {
  sim::Simulator sim;
  scenario::TestbedConfig bed;
  bed.vbd_mib = g_vbd_mib;
  bed.guest_mem_mib = 64;
  scenario::Testbed tb{sim, bed};
  tb.prefill_disk();

  auto cfg = tb.paper_migration_config();
  obs::FlightRecorder rec;
  if (record) cfg.obs_recorder = &rec;

  workload::KernelBuildWorkload wl{sim, tb.vm(), 42};
  RunResult r;
  r.report = tb.run_tpm(&wl, sim::Duration::seconds(2),
                        sim::Duration::seconds(2), cfg);
  if (record) {
    r.events = rec.recorded();
    std::ostringstream out;
    obs::write_flight_record(out, rec);
    r.jsonl = out.str();
  }
  return r;
}

double delta_frac(double off, double on) {
  return off == 0.0 ? 0.0 : (on - off) / off;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--quick") {
      g_vbd_mib = 64;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  bench::header("flight recorder", "recording overhead and analyzer round-trip");
  std::printf("  scenario: %llu MiB VBD, 64 MiB RAM, kernel-build workload\n",
              static_cast<unsigned long long>(g_vbd_mib));

  const RunResult off = run_build(false);
  const RunResult on = run_build(true);

  const double total_off = off.report.total_time().to_seconds();
  const double total_on = on.report.total_time().to_seconds();
  const double down_off = off.report.downtime().to_seconds();
  const double down_on = on.report.downtime().to_seconds();
  const double total_delta = delta_frac(total_off, total_on);
  const double down_delta = delta_frac(down_off, down_on);

  // Round-trip the record through vmig_analyze: 0 = every check passed.
  const char* record_path = "bench_analyze_flight.jsonl";
  int analyze_status = 2;
  {
    std::ofstream f{record_path, std::ios::binary | std::ios::trunc};
    f << on.jsonl;
  }
  {
    analyze::Options opt;
    opt.record_path = record_path;
    std::ostringstream out;
    std::ostringstream err;
    analyze_status = analyze::run(opt, out, err);
  }

  bench::section("A/B: recorder off vs on (simulated time)");
  bench::measured_only("total, recorder off", total_off, "s");
  bench::measured_only("total, recorder on", total_on, "s");
  bench::measured_only("total delta", total_delta * 100.0, "%");
  bench::measured_only("downtime delta", down_delta * 100.0, "%");

  bench::section("record size and analyzer round-trip");
  bench::measured_only("events recorded", static_cast<double>(on.events), "");
  bench::measured_only("record size",
                       static_cast<double>(on.jsonl.size()) / 1024.0, "KiB");
  std::printf("  vmig_analyze reconciles the record:       %s\n",
              analyze_status == 0 ? "yes" : "NO");

  bench::section("claims checked");
  std::printf("  recording leaves simulated time unchanged: %s\n",
              total_delta == 0.0 && down_delta == 0.0 ? "yes" : "NO");

  if (json_path != nullptr) {
    const std::vector<std::pair<std::string, double>> kv{
        {"total_time_off_s", total_off},
        {"total_time_on_s", total_on},
        {"total_time_delta_frac", total_delta},
        {"downtime_delta_frac", down_delta},
        {"events_recorded", static_cast<double>(on.events)},
        {"jsonl_kib", static_cast<double>(on.jsonl.size()) / 1024.0},
        {"analyze_checks_failed", analyze_status == 0 ? 0.0 : 1.0},
    };
    if (!bench::write_flat_json(json_path, kv)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::printf("\n  wrote %s\n", json_path);
  }
  return total_delta == 0.0 && down_delta == 0.0 && analyze_status == 0 ? 0 : 1;
}
