// Compares TPM against the related-work schemes of §II on one scenario
// (the paper argues these qualitatively; here each claim is measured):
//   freeze-and-copy  -> downtime ~ total transfer time
//   shared-storage   -> short downtime but the disk never moves
//   on-demand        -> short downtime but unbounded source dependency
//   delta-forward    -> redundant deltas + post-resume I/O block
//   TPM              -> short downtime, whole disk, finite dependency

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baselines/delta_forward.hpp"
#include "baselines/freeze_and_copy.hpp"
#include "baselines/on_demand.hpp"
#include "baselines/shared_storage.hpp"
#include "bench_util.hpp"
#include "core/migration_manager.hpp"
#include "scenario/testbed.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

// A smaller VBD keeps freeze-and-copy's (deliberately awful) downtime and
// the bench runtime readable; every scheme sees the same scenario. CI smoke
// runs pass --quick to shrink it further.
std::uint64_t g_vbd_mib = 8192;

struct Line {
  const char* method;
  double total_s = 0;
  double down_ms = 0;
  double data_mib = 0;
  double io_block_ms = 0;
  double redundant_mib = 0;
  bool residual_dep = false;
  bool moves_disk = true;
  bool consistent = false;
};

scenario::TestbedConfig bed_config() {
  scenario::TestbedConfig cfg;
  cfg.vbd_mib = g_vbd_mib;
  return cfg;
}

template <typename Fn>
Line run_scheme(const char* method, Fn&& fn) {
  sim::Simulator sim;
  scenario::Testbed tb{sim, bed_config()};
  tb.prefill_disk();
  workload::WebServerWorkload web{sim, tb.vm(), 42};
  web.start();
  sim.run_for(30_s);
  Line line = fn(sim, tb);
  line.method = method;
  web.request_stop();
  sim.run_for(30_s);
  return line;
}

Line from_base(const core::MigrationReport& r) {
  Line l;
  l.total_s = r.total_time().to_seconds();
  l.down_ms = r.downtime().to_millis();
  l.data_mib = r.total_mib();
  l.consistent = r.disk_consistent && r.memory_consistent;
  return l;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--quick") {
      g_vbd_mib = 512;  // CI smoke: same claims, seconds instead of minutes
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE]\n", argv[0]);
      return 2;
    }
  }
  bench::header("§II comparison", "TPM vs related-work migration schemes");
  std::printf("  scenario: %llu MiB VBD, 512 MiB RAM, GbE, web workload\n",
              static_cast<unsigned long long>(g_vbd_mib));

  std::vector<Line> lines;

  lines.push_back(run_scheme("TPM (this paper)", [](sim::Simulator& sim,
                                                    scenario::Testbed& tb) {
    core::MigrationReport rep;
    sim.spawn([](scenario::Testbed& tb, core::MigrationReport& out)
                  -> sim::Task<void> {
      out = (co_await tb.manager().migrate({.domain = &tb.vm(), .from = &tb.source(), .to = &tb.dest(), .config = tb.paper_migration_config()})).report;
    }(tb, rep));
    sim.run_for(3600_s);
    return from_base(rep);
  }));

  lines.push_back(run_scheme("freeze-and-copy", [](sim::Simulator& sim,
                                                   scenario::Testbed& tb) {
    baseline::BaselineReport rep;
    sim.spawn([](sim::Simulator& s, scenario::Testbed& tb,
                 baseline::BaselineReport& out) -> sim::Task<void> {
      baseline::FreezeAndCopyMigration m{s, tb.paper_migration_config(),
                                         tb.vm(), tb.source(), tb.dest()};
      out = co_await m.run();
    }(sim, tb, rep));
    sim.run_for(3600_s);
    return from_base(rep.base);
  }));

  lines.push_back(run_scheme("shared-storage", [](sim::Simulator& sim,
                                                  scenario::Testbed& tb) {
    baseline::BaselineReport rep;
    sim.spawn([](sim::Simulator& s, scenario::Testbed& tb,
                 baseline::BaselineReport& out) -> sim::Task<void> {
      baseline::SharedStorageMigration m{s, tb.paper_migration_config(),
                                         tb.vm(), tb.source(), tb.dest()};
      out = co_await m.run();
    }(sim, tb, rep));
    sim.run_for(3600_s);
    Line l = from_base(rep.base);
    l.moves_disk = false;
    l.consistent = rep.base.memory_consistent;
    return l;
  }));

  lines.push_back(run_scheme("on-demand fetch", [](sim::Simulator& sim,
                                                   scenario::Testbed& tb) {
    baseline::BaselineReport rep;
    sim.spawn([](sim::Simulator& s, scenario::Testbed& tb,
                 baseline::BaselineReport& out) -> sim::Task<void> {
      baseline::OnDemandMigration m{s, tb.paper_migration_config(), tb.vm(),
                                    tb.source(), tb.dest()};
      out = co_await m.run(/*observe_window=*/300_s);
    }(sim, tb, rep));
    sim.run_for(3600_s);
    Line l = from_base(rep.base);
    l.residual_dep = rep.residual_dependency;
    return l;
  }));

  lines.push_back(run_scheme("delta-forward", [](sim::Simulator& sim,
                                                 scenario::Testbed& tb) {
    baseline::BaselineReport rep;
    sim.spawn([](sim::Simulator& s, scenario::Testbed& tb,
                 baseline::BaselineReport& out) -> sim::Task<void> {
      baseline::DeltaForwardMigration m{s, tb.paper_migration_config(),
                                        tb.vm(), tb.source(), tb.dest()};
      out = co_await m.run();
    }(sim, tb, rep));
    sim.run_for(3600_s);
    Line l = from_base(rep.base);
    l.io_block_ms = rep.io_block_time.to_millis();
    l.redundant_mib =
        static_cast<double>(rep.redundant_delta_bytes) / (1024.0 * 1024.0);
    return l;
  }));

  std::printf("\n%-18s %9s %10s %10s %9s %10s %7s %6s %5s\n", "method",
              "total(s)", "down(ms)", "data(MiB)", "ioblk(ms)", "redund(MiB)",
              "moves", "resid", "ok");
  for (const auto& l : lines) {
    std::printf("%-18s %9.1f %10.1f %10.1f %9.1f %10.1f %7s %6s %5s\n",
                l.method, l.total_s, l.down_ms, l.data_mib, l.io_block_ms,
                l.redundant_mib, l.moves_disk ? "disk" : "none",
                l.residual_dep ? "YES" : "no", l.consistent ? "yes" : "NO");
  }

  bench::section("claims checked");
  std::printf("  TPM downtime far below freeze-and-copy:   %s\n",
              lines[0].down_ms < lines[1].down_ms / 100 ? "yes" : "NO");
  std::printf("  TPM downtime close to shared-storage:     %s\n",
              lines[0].down_ms < lines[2].down_ms * 3 ? "yes" : "NO");
  std::printf("  on-demand leaves a residual dependency:   %s\n",
              lines[3].residual_dep ? "yes" : "NO");
  std::printf("  delta-forward resends redundant data:     %s\n",
              lines[4].redundant_mib > 0 ? "yes" : "NO");

  if (json_path != nullptr) {
    const std::vector<std::pair<std::string, double>> kv{
        {"tpm_total_s", lines[0].total_s},
        {"tpm_down_ms", lines[0].down_ms},
        {"tpm_data_mib", lines[0].data_mib},
        {"freeze_down_ms", lines[1].down_ms},
        {"shared_down_ms", lines[2].down_ms},
        {"ondemand_down_ms", lines[3].down_ms},
        {"delta_io_block_ms", lines[4].io_block_ms},
        {"delta_redundant_mib", lines[4].redundant_mib},
        {"tpm_consistent", lines[0].consistent ? 1.0 : 0.0},
    };
    if (!bench::write_flat_json(json_path, kv)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::printf("\n  wrote %s\n", json_path);
  }
  return 0;
}
