// Micro-benchmarks for the paper's core data structure: flat vs layered vs
// 3-level block-bitmap, §IV-A-2, measured through the DirtyBitmap facade
// exactly as the migration engine uses it. Covers the write-tracking hot
// path (mark), the per-iteration scan (for_each_set / run cursor) on
// sparse/clustered/dense dirt, and prints the memory/wire-size table behind
// the paper's "1 MB per 32 GB at 4 KB blocks vs 8 MB at sectors" argument.
//
// Usage: bench_bitmap_micro [--quick] [--json FILE]
//   --quick      smaller rep counts (CI smoke; committed baseline
//                bench/baselines/BENCH_bitmap_micro.json holds this set)
//   --json FILE  flat metrics JSON for the baseline gate
//
// Hand-rolled harness (no google-benchmark): fixed op counts, best-of-R
// wall-clock timing via obs::WallStopwatch, ops/sec reported. Gated metrics
// are the 3-level numbers — the kind the engine defaults to for large disks.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/dirty_bitmap.hpp"
#include "obs/profiler.hpp"
#include "simcore/rng.hpp"

namespace {

using vmig::core::BitmapKind;
using vmig::core::DirtyBitmap;
using vmig::core::SetRunCursor;

// A 40 GiB disk at 4 KiB blocks.
constexpr std::uint64_t kBits = 10ull * 1024 * 1024;

bool g_quick = false;
volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

/// Best-of-R wall-clock rate: run `body(ops)` R times, return max ops/sec.
template <typename F>
double best_rate(std::uint64_t ops, F&& body) {
  const int reps = g_quick ? 2 : 3;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    vmig::obs::WallStopwatch sw;
    body(ops);
    const double s = static_cast<double>(sw.elapsed_ns()) / 1e9;
    if (s > 0.0) best = std::max(best, static_cast<double>(ops) / s);
  }
  return best;
}

DirtyBitmap make(BitmapKind k, bool set = false) { return DirtyBitmap{k, kBits, set}; }

void fill_pattern(DirtyBitmap& bm, const char* pattern, vmig::sim::Rng& rng) {
  if (std::strcmp(pattern, "sparse") == 0) {
    for (int i = 0; i < 1000; ++i) bm.set(rng.uniform_u64(kBits));
  } else if (std::strcmp(pattern, "clustered") == 0) {
    for (int i = 0; i < 10; ++i) {
      bm.set_range(rng.uniform_u64(kBits - 20000), 10000);
    }
  } else {  // dense
    bm.set_range(0, kBits);
  }
}

// ---- mark: the write-tracking hot path --------------------------------

double mark_uniform(BitmapKind k) {
  DirtyBitmap bm = make(k);
  return best_rate(g_quick ? 2'000'000 : 8'000'000, [&](std::uint64_t ops) {
    vmig::sim::Rng rng{1};
    for (std::uint64_t i = 0; i < ops; ++i) bm.set(rng.uniform_u64(kBits));
  });
}

double mark_local(BitmapKind k) {
  // The realistic tracking pattern: hot 1% of the disk.
  DirtyBitmap bm = make(k);
  return best_rate(g_quick ? 2'000'000 : 8'000'000, [&](std::uint64_t ops) {
    vmig::sim::Rng rng{1};
    for (std::uint64_t i = 0; i < ops; ++i) bm.set(rng.uniform_u64(kBits / 100));
  });
}

// ---- scan: the per-iteration reader sweep -----------------------------

/// Full for_each_set sweeps per second over a fixed dirt pattern.
double scan_sweeps(BitmapKind k, const char* pattern, std::uint64_t sweeps) {
  DirtyBitmap bm = make(k);
  vmig::sim::Rng rng{2};
  fill_pattern(bm, pattern, rng);
  return best_rate(sweeps, [&](std::uint64_t ops) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      bm.for_each_set([&](std::uint64_t b) { sum += b; });
    }
    g_sink = g_sink + sum;
  });
}

/// Set-bits visited per second on a dense bitmap (word-at-a-time floor).
double scan_dense_bits(BitmapKind k) {
  DirtyBitmap bm = make(k, /*set=*/true);
  const std::uint64_t sweeps = g_quick ? 4 : 16;
  return best_rate(sweeps * kBits, [&](std::uint64_t) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < sweeps; ++i) {
      bm.for_each_set([&](std::uint64_t b) { sum += b; });
    }
    g_sink = g_sink + sum;
  });
}

/// SetRunCursor sweeps per second over clustered dirt (the pre-copy reader
/// loop shape: chunked runs, no per-bit callback).
double run_cursor_sweeps(BitmapKind k, std::uint64_t sweeps) {
  DirtyBitmap bm = make(k);
  vmig::sim::Rng rng{3};
  fill_pattern(bm, "clustered", rng);
  return best_rate(sweeps, [&](std::uint64_t ops) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      SetRunCursor cur{bm};
      while (const auto run = cur.next(128)) sum += run->len;
    }
    g_sink = g_sink + sum;
  });
}

/// next_set probes per second over sparse dirt.
double next_set_probes(BitmapKind k) {
  DirtyBitmap bm = make(k);
  vmig::sim::Rng rng{3};
  fill_pattern(bm, "sparse", rng);
  return best_rate(g_quick ? 200'000 : 1'000'000, [&](std::uint64_t ops) {
    std::uint64_t from = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const auto n = bm.next_set(from);
      from = n.has_value() ? *n + 1 : 0;
    }
    g_sink = g_sink + from;
  });
}

/// Per-iteration blkd operation: snapshot the bitmap and clear it.
double snapshot_and_reset(BitmapKind k) {
  DirtyBitmap bm = make(k);
  const std::uint64_t iters = g_quick ? 500 : 2000;
  return best_rate(iters, [&](std::uint64_t ops) {
    vmig::sim::Rng rng{4};
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      fill_pattern(bm, "clustered", rng);
      DirtyBitmap snap = bm.take_and_reset();
      sum += snap.count_set();
    }
    g_sink = g_sink + sum;
  });
}

void print_memory_table() {
  std::printf("\n§IV-A-2 bitmap cost table (32 GiB disk)\n");
  std::printf("%-28s %14s %14s\n", "configuration", "bytes", "wire bytes");
  const std::uint64_t disk = 32ull * 1024 * 1024 * 1024;
  const auto row = [](const char* name, const DirtyBitmap& b, const char* note) {
    std::printf("%-28s %14llu %14llu   %s\n", name,
                static_cast<unsigned long long>(b.bytes()),
                static_cast<unsigned long long>(b.wire_bytes()), note);
  };
  row("flat, 4 KiB blocks", DirtyBitmap{BitmapKind::kFlat, disk / 4096},
      "(paper: 1 MB)");
  row("flat, 512 B sectors", DirtyBitmap{BitmapKind::kFlat, disk / 512},
      "(paper: 8 MB)");
  {
    DirtyBitmap b{BitmapKind::kLayered, disk / 4096};
    vmig::sim::Rng rng{5};
    for (int i = 0; i < 1000; ++i) b.set(rng.uniform_u64(32768) + 100000);
    row("layered, 4 KiB blocks", b, "(sparse dirt: 1 hot region)");
  }
  {
    DirtyBitmap b{BitmapKind::kThreeLevel, disk / 4096};
    vmig::sim::Rng rng{5};
    for (int i = 0; i < 1000; ++i) b.set(rng.uniform_u64(32768) + 100000);
    row("3level, 4 KiB blocks", b, "(sparse dirt: 1 hot region)");
  }
}

struct Row {
  const char* metric;
  double flat;
  double layered;
  double three;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a{argv[i]};
    if (a == "--quick") {
      g_quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  vmig::bench::header("bitmap micro",
                      "§IV-A-2 block-bitmap costs through DirtyBitmap");
  print_memory_table();

  const std::uint64_t sparse_sweeps = g_quick ? 2'000 : 10'000;
  const std::uint64_t clustered_sweeps = g_quick ? 200 : 1'000;

  const auto all = [&](double (*f)(BitmapKind)) {
    return Row{"", f(BitmapKind::kFlat), f(BitmapKind::kLayered),
               f(BitmapKind::kThreeLevel)};
  };
  std::vector<Row> rows;
  rows.push_back(all(mark_uniform));
  rows.back().metric = "mark uniform (ops/s)";
  rows.push_back(all(mark_local));
  rows.back().metric = "mark hot-1% (ops/s)";
  rows.push_back({"scan sparse (sweeps/s)",
                  scan_sweeps(BitmapKind::kFlat, "sparse", sparse_sweeps),
                  scan_sweeps(BitmapKind::kLayered, "sparse", sparse_sweeps),
                  scan_sweeps(BitmapKind::kThreeLevel, "sparse", sparse_sweeps)});
  rows.push_back({"scan clustered (sweeps/s)",
                  scan_sweeps(BitmapKind::kFlat, "clustered", clustered_sweeps),
                  scan_sweeps(BitmapKind::kLayered, "clustered", clustered_sweeps),
                  scan_sweeps(BitmapKind::kThreeLevel, "clustered", clustered_sweeps)});
  rows.push_back(all(scan_dense_bits));
  rows.back().metric = "scan dense (bits/s)";
  rows.push_back({"run cursor clustered (sweeps/s)",
                  run_cursor_sweeps(BitmapKind::kFlat, clustered_sweeps),
                  run_cursor_sweeps(BitmapKind::kLayered, clustered_sweeps),
                  run_cursor_sweeps(BitmapKind::kThreeLevel, clustered_sweeps)});
  rows.push_back(all(next_set_probes));
  rows.back().metric = "next_set sparse (probes/s)";
  rows.push_back(all(snapshot_and_reset));
  rows.back().metric = "snapshot+reset (iters/s)";

  vmig::bench::section("throughput (best of repeated runs)");
  std::printf("  %-32s %14s %14s %14s\n", "metric", "flat", "layered", "3level");
  for (const auto& r : rows) {
    std::printf("  %-32s %14.0f %14.0f %14.0f\n", r.metric, r.flat, r.layered,
                r.three);
  }

  if (!json_out.empty()) {
    // Gate the 3-level numbers: that is the kind sized-up deployments use,
    // and the hierarchy + word-cursor scan is this PR's claimed win.
    std::vector<std::pair<std::string, double>> kv;
    kv.emplace_back("bitmap.3level.mark_uniform_ops_per_sec", rows[0].three);
    kv.emplace_back("bitmap.3level.mark_local_ops_per_sec", rows[1].three);
    kv.emplace_back("bitmap.3level.scan_sparse_sweeps_per_sec", rows[2].three);
    kv.emplace_back("bitmap.3level.scan_clustered_sweeps_per_sec", rows[3].three);
    kv.emplace_back("bitmap.3level.scan_dense_bits_per_sec", rows[4].three);
    kv.emplace_back("bitmap.3level.run_cursor_sweeps_per_sec", rows[5].three);
    kv.emplace_back("bitmap.3level.next_set_probes_per_sec", rows[6].three);
    if (!vmig::bench::write_flat_json(json_out.c_str(), kv)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 2;
    }
    std::printf("  metrics -> %s\n", json_out.c_str());
  }
  return 0;
}
