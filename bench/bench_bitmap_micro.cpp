// Micro-benchmarks (google-benchmark) for the paper's core data structure:
// flat vs layered block-bitmap, §IV-A-2. Measures the actual CPU cost of
// the write-tracking hot path (set), the per-iteration scan (for_each_set)
// on sparse/clustered/dense dirt, and prints the memory/wire-size table
// behind the paper's "1 MB per 32 GB at 4 KB blocks vs 8 MB at sectors"
// argument.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/block_bitmap.hpp"
#include "core/layered_bitmap.hpp"
#include "simcore/rng.hpp"

namespace {

using vmig::core::BlockBitmap;
using vmig::core::LayeredBitmap;

// A 40 GiB disk at 4 KiB blocks.
constexpr std::uint64_t kBits = 10ull * 1024 * 1024;

template <typename BM>
void fill_pattern(BM& bm, const char* pattern, vmig::sim::Rng& rng) {
  if (pattern == std::string("sparse")) {
    for (int i = 0; i < 1000; ++i) bm.set(rng.uniform_u64(kBits));
  } else if (pattern == std::string("clustered")) {
    for (int i = 0; i < 10; ++i) {
      const auto base = rng.uniform_u64(kBits - 20000);
      bm.set_range(base, 10000);
    }
  } else {  // dense
    bm.set_range(0, kBits);
  }
}

void BM_FlatSet(benchmark::State& state) {
  BlockBitmap bm{kBits};
  vmig::sim::Rng rng{1};
  for (auto _ : state) {
    bm.set(rng.uniform_u64(kBits));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatSet);

void BM_LayeredSet(benchmark::State& state) {
  LayeredBitmap bm{kBits};
  vmig::sim::Rng rng{1};
  for (auto _ : state) {
    bm.set(rng.uniform_u64(kBits));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LayeredSet);

void BM_FlatSetLocal(benchmark::State& state) {
  // The realistic write-tracking pattern: hot 1% of the disk.
  BlockBitmap bm{kBits};
  vmig::sim::Rng rng{1};
  for (auto _ : state) {
    bm.set(rng.uniform_u64(kBits / 100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatSetLocal);

void BM_LayeredSetLocal(benchmark::State& state) {
  LayeredBitmap bm{kBits};
  vmig::sim::Rng rng{1};
  for (auto _ : state) {
    bm.set(rng.uniform_u64(kBits / 100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LayeredSetLocal);

template <typename BM>
void scan_bench(benchmark::State& state, const char* pattern) {
  BM bm{kBits};
  vmig::sim::Rng rng{2};
  fill_pattern(bm, pattern, rng);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    bm.for_each_set([&](std::uint64_t b) { sum += b; });
  }
  benchmark::DoNotOptimize(sum);
  state.counters["set_bits"] = static_cast<double>(bm.count_set());
}

void BM_FlatScanSparse(benchmark::State& s) { scan_bench<BlockBitmap>(s, "sparse"); }
void BM_LayeredScanSparse(benchmark::State& s) { scan_bench<LayeredBitmap>(s, "sparse"); }
void BM_FlatScanClustered(benchmark::State& s) { scan_bench<BlockBitmap>(s, "clustered"); }
void BM_LayeredScanClustered(benchmark::State& s) { scan_bench<LayeredBitmap>(s, "clustered"); }
void BM_FlatScanDense(benchmark::State& s) { scan_bench<BlockBitmap>(s, "dense"); }
void BM_LayeredScanDense(benchmark::State& s) { scan_bench<LayeredBitmap>(s, "dense"); }
BENCHMARK(BM_FlatScanSparse);
BENCHMARK(BM_LayeredScanSparse);
BENCHMARK(BM_FlatScanClustered);
BENCHMARK(BM_LayeredScanClustered);
BENCHMARK(BM_FlatScanDense);
BENCHMARK(BM_LayeredScanDense);

void BM_FlatNextSet(benchmark::State& state) {
  BlockBitmap bm{kBits};
  vmig::sim::Rng rng{3};
  fill_pattern(bm, "sparse", rng);
  std::uint64_t from = 0;
  for (auto _ : state) {
    const auto n = bm.next_set(from);
    from = n ? *n + 1 : 0;
  }
  benchmark::DoNotOptimize(from);
}
BENCHMARK(BM_FlatNextSet);

void BM_LayeredNextSet(benchmark::State& state) {
  LayeredBitmap bm{kBits};
  vmig::sim::Rng rng{3};
  fill_pattern(bm, "sparse", rng);
  std::uint64_t from = 0;
  for (auto _ : state) {
    const auto n = bm.next_set(from);
    from = n ? *n + 1 : 0;
  }
  benchmark::DoNotOptimize(from);
}
BENCHMARK(BM_LayeredNextSet);

void BM_SnapshotAndReset(benchmark::State& state) {
  // The per-iteration blkd operation: copy the bitmap out and clear it.
  LayeredBitmap bm{kBits};
  vmig::sim::Rng rng{4};
  for (auto _ : state) {
    state.PauseTiming();
    fill_pattern(bm, "clustered", rng);
    state.ResumeTiming();
    LayeredBitmap snap = bm;
    bm.fill(false);
    benchmark::DoNotOptimize(snap.count_set());
  }
}
BENCHMARK(BM_SnapshotAndReset);

void print_memory_table() {
  std::printf("\n§IV-A-2 bitmap cost table (32 GiB disk)\n");
  std::printf("%-28s %14s %14s\n", "configuration", "bytes", "wire bytes");
  const std::uint64_t disk = 32ull * 1024 * 1024 * 1024;
  {
    BlockBitmap b{disk / 4096};
    std::printf("%-28s %14llu %14llu   (paper: 1 MB)\n", "flat, 4 KiB blocks",
                static_cast<unsigned long long>(b.bytes()),
                static_cast<unsigned long long>(b.wire_bytes()));
  }
  {
    BlockBitmap b{disk / 512};
    std::printf("%-28s %14llu %14llu   (paper: 8 MB)\n", "flat, 512 B sectors",
                static_cast<unsigned long long>(b.bytes()),
                static_cast<unsigned long long>(b.wire_bytes()));
  }
  {
    LayeredBitmap b{disk / 4096};
    vmig::sim::Rng rng{5};
    for (int i = 0; i < 1000; ++i) b.set(rng.uniform_u64(32768) + 100000);
    std::printf("%-28s %14llu %14llu   (sparse dirt: 1 hot region)\n",
                "layered, 4 KiB blocks",
                static_cast<unsigned long long>(b.bytes()),
                static_cast<unsigned long long>(b.wire_bytes()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("================================================================\n");
  std::printf("Bitmap micro-benchmarks — §IV-A-2 block-bitmap costs\n");
  std::printf("================================================================\n");
  print_memory_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
