// Cluster evacuation bench: runs the same host evacuation (host0 drained
// into the rest of a 3-host cluster, one guest kept write-hot, one injected
// link outage) under each orchestrator scheduling policy and compares
// makespan, retries, deferrals and peak concurrency. The workload-cycle
// policy should defer the hot guest instead of burning a doomed attempt on
// it, trading a little makespan for fewer retries.
//
// Usage: bench_cluster [--quick]   (--quick shrinks the scenario for CI)

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "cluster/orchestrator.hpp"
#include "scenario/cluster_testbed.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

bool g_quick = false;

struct Row {
  const char* policy = "";
  double makespan_s = 0;
  double mean_down_ms = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t deferrals = 0;
  int peak = 0;
};

// Rewrites the same window continuously: ~128k marked blocks/s, well above
// the 0.9x threshold the cycle-aware policy derives from the GbE link.
// Time-bounded: drain() runs the simulator until its event queue empties,
// so the writer must wind down on its own once the hot phase is over.
sim::Task<void> hot_writer(sim::Simulator* sim, vm::Domain* d,
                           sim::TimePoint until) {
  while (sim->now() < until) {
    co_await d->disk_write(storage::BlockRange{0, 256});
    co_await sim->delay(2_ms);
  }
}

Row run_policy(const char* name, cluster::SchedulePolicyKind kind) {
  sim::Simulator sim;
  scenario::ClusterTestbedConfig bed;
  bed.hosts = 3;
  bed.vbd_mib = g_quick ? 64 : 512;
  bed.guest_mem_mib = g_quick ? 32 : 128;
  // NVMe-class disks: the paper-era disk (~60 MB/s) would cap the hot
  // writer's re-dirty rate below the GbE-derived too-hot threshold and the
  // cycle-aware policy would never see a hot guest.
  bed.disk.seq_read_mbps = 800.0;
  bed.disk.seq_write_mbps = 700.0;
  bed.disk.seek = 100_us;
  bed.disk.request_overhead = 5_us;
  scenario::ClusterTestbed tb{sim, bed};
  const int vms = g_quick ? 4 : 8;
  for (int i = 0; i < vms; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  tb.prefill_disks();
  // The hot phase must outlast the cool jobs, or vm0 is already cold by the
  // time it is the only eligible job and no policy has anything to defer.
  sim.spawn(hot_writer(&sim, &tb.vm(0),
                       sim::TimePoint::origin() + (g_quick ? 8_s : 40_s)),
            "hot_writer");

  cluster::OrchestratorConfig cfg;
  cfg.caps = {.per_source = 2, .per_dest = 2, .per_link = 1, .total = 8};
  cfg.retry = {.max_attempts = 4,
               .initial_backoff = 50_ms,
               .multiplier = 2.0,
               .max_backoff = 2_s};
  cfg.policy = kind;
  cfg.poll_interval = 50_ms;
  auto mig = tb.paper_migration_config();
  mig.disk_max_iterations = 6;  // bound the hot guest's pre-copy rounds
  cluster::Orchestrator orch{sim, tb.manager(), cfg};
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0), mig);
  tb.host(0).link_to(tb.host(1)).fail_at(sim::TimePoint::origin() + 200_ms, 2_s);
  orch.drain();

  Row r;
  r.policy = name;
  r.makespan_s = sim.now().to_seconds();
  r.completed = orch.jobs_completed();
  r.failed = orch.jobs_failed();
  r.retries = orch.retries();
  r.deferrals = orch.deferrals();
  r.peak = orch.peak_running();
  double down = 0.0;
  for (std::size_t i = 0; i < orch.job_count(); ++i) {
    const auto& j = orch.job(static_cast<cluster::JobId>(i));
    if (j.outcome.ok()) down += j.outcome.report.downtime().to_millis();
  }
  if (r.completed > 0) r.mean_down_ms = down / static_cast<double>(r.completed);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--quick") {
      g_quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }

  bench::header("cluster evacuation",
                "orchestrator scheduling policies under disruption");
  std::printf("  scenario: 3 hosts, %d VMs off host0, %d MiB VBD each, "
              "hot writer on vm0, host0->host1 down 0.2s..2.2s\n",
              g_quick ? 4 : 8, g_quick ? 64 : 512);

  const std::vector<Row> rows{
      run_policy("fifo", cluster::SchedulePolicyKind::kFifo),
      run_policy("smallest-dirty",
                 cluster::SchedulePolicyKind::kSmallestDirtyFirst),
      run_policy("workload-cycle",
                 cluster::SchedulePolicyKind::kWorkloadCycleAware),
  };

  std::printf("\n%-16s %11s %10s %7s %7s %9s %5s %10s\n", "policy",
              "makespan(s)", "done/fail", "retry", "defer", "peak", "",
              "down(ms)");
  for (const auto& r : rows) {
    std::printf("%-16s %11.2f %6llu/%-3llu %7llu %7llu %9d %5s %10.1f\n",
                r.policy, r.makespan_s,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.deferrals), r.peak, "",
                r.mean_down_ms);
  }

  bench::section("claims checked");
  std::printf("  every policy completes the evacuation:    %s\n",
              rows[0].failed + rows[1].failed + rows[2].failed == 0 ? "yes"
                                                                    : "NO");
  std::printf("  cycle-aware policy defers the hot guest:  %s\n",
              rows[2].deferrals > 0 ? "yes" : "NO");
  std::printf("  disruption forces retries under fifo:     %s\n",
              rows[0].retries > 0 ? "yes" : "NO");
  return 0;
}
