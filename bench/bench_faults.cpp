// Fault-tolerance benchmark: what does resumable migration buy, and what
// does post-copy loss recovery cost?
//
//   A/B: a link outage aborts the first pass mid-stream; the retry either
//        resumes from the exported transferred-bitmap (resume on) or pays a
//        full first pass again (resume off). The paper's IM argument applies
//        to retries too: only still-dirty blocks need to move again.
//   loss: a lossy path during post-copy exercises pull-timeout retries; the
//        migration must still converge and verify.
//
// All numbers are simulated time / simulated bytes, so runs are bit-exact
// across machines; CI gates them against bench/baselines with a tolerance.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "core/migration_manager.hpp"
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "scenario/cluster_testbed.hpp"
#include "workloads/diabolical.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

std::uint64_t g_vbd_mib = 64;  // --quick drops this to 16

scenario::ClusterTestbedConfig bed_config() {
  scenario::ClusterTestbedConfig cfg;
  cfg.hosts = 2;
  cfg.vbd_mib = g_vbd_mib;
  cfg.guest_mem_mib = 4;
  cfg.disk.seq_read_mbps = 800.0;
  cfg.disk.seq_write_mbps = 700.0;
  cfg.disk.seek = 100_us;
  cfg.disk.request_overhead = 5_us;
  cfg.lan.bandwidth_mibps = 1000.0;
  cfg.lan.latency = 50_us;
  return cfg;
}

core::MigrationConfig migration_config() {
  return core::MigrationConfig::build()
      .bitmap(core::BitmapKind::kFlat)
      .disk_iterations(4, 64)
      .done();
}

/// Clean end-to-end run: yields the report whose timestamps place the
/// outage for the A/B runs (mid-first-pass regardless of VBD size).
core::MigrationReport run_clean() {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, bed_config()};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();
  core::MigrationOutcome out;
  sim.spawn([](scenario::ClusterTestbed* tb, vm::Domain* g,
               core::MigrationOutcome* out) -> sim::Task<void> {
    *out = co_await tb->manager().migrate({.domain = g, .from = &tb->host(0),
                                           .to = &tb->host(1),
                                           .config = migration_config()});
  }(&tb, &g, &out));
  sim.run();
  return out.report;
}

struct RetryResult {
  core::MigrationOutcome retry;
  double combined_s = 0;  ///< first attempt + backoff + retry, end to end
};

/// Abort the first attempt with an outage window, back off past it, retry.
RetryResult run_retry(bool resume_enabled, sim::TimePoint outage_at,
                      sim::Duration outage_dur) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, bed_config()};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();
  auto cfg = migration_config();
  cfg.resume_enabled = resume_enabled;
  tb.host(0).link_to(tb.host(1)).fail_at(outage_at, outage_dur);

  RetryResult r;
  sim.spawn([](scenario::ClusterTestbed* tb, vm::Domain* g,
               core::MigrationConfig cfg, sim::TimePoint until,
               RetryResult* r) -> sim::Task<void> {
    const sim::TimePoint t0 = tb->sim().now();
    co_await tb->manager().migrate(
        {.domain = g, .from = &tb->host(0), .to = &tb->host(1), .config = cfg});
    if (tb->sim().now() < until) co_await tb->sim().delay(until - tb->sim().now());
    r->retry = co_await tb->manager().migrate(
        {.domain = g, .from = &tb->host(0), .to = &tb->host(1), .config = cfg});
    r->combined_s = (tb->sim().now() - t0).to_seconds();
  }(&tb, &g, cfg, outage_at + outage_dur + 1_ms, &r));
  sim.run();
  return r;
}

struct LossResult {
  core::MigrationOutcome out;
  std::uint64_t dropped = 0;
};

/// Post-copy under a 20% lossy path with an aggressive writer: every lost
/// push is recovered by a pull, every lost pull by a timeout re-pull.
LossResult run_loss() {
  sim::Simulator sim;
  scenario::ClusterTestbedConfig bed = bed_config();
  bed.vbd_mib = 16;  // loss recovery cost is residue-bound, not size-bound
  scenario::ClusterTestbed tb{sim, bed};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();
  workload::DiabolicalWorkload wl{sim, g, /*seed=*/7};

  fault::FaultInjector inj{sim, fault::FaultSpec::parse("loss@0s+60s:0.2"),
                           /*seed=*/5};
  inj.arm_path(tb.host(0).link_to(tb.host(1)),
               tb.host(1).link_to(tb.host(0)), "h0-h1");

  auto cfg = migration_config();
  cfg.push_chunk_blocks = 8;
  cfg.postcopy_pull_timeout = 2_ms;
  cfg.postcopy_recovery_interval = 500_us;

  LossResult r;
  sim.spawn([](scenario::ClusterTestbed* tb, vm::Domain* g,
               workload::DiabolicalWorkload* wl, core::MigrationConfig cfg,
               LossResult* r) -> sim::Task<void> {
    wl->start();
    r->out = co_await tb->manager().migrate(
        {.domain = g, .from = &tb->host(0), .to = &tb->host(1), .config = cfg});
    wl->request_stop();
  }(&tb, &g, &wl, cfg, &r));
  sim.run_for(120_s);
  r.dropped = inj.messages_dropped();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--quick") {
      g_vbd_mib = 16;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  bench::header("fault tolerance", "resumable retry and post-copy loss recovery");
  std::printf("  scenario: %llu MiB VBD, 4 MiB RAM, GbE\n",
              static_cast<unsigned long long>(g_vbd_mib));

  const core::MigrationReport clean = run_clean();
  // Mid-first-pass: past the VBD-prepare handshake, well short of the pass
  // end. Scales with the scenario so --quick and full place it equivalently.
  const sim::Duration precopy_span = clean.disk_precopy_done - clean.started;
  const sim::TimePoint outage_at = clean.started + precopy_span.scaled(0.6);
  const sim::Duration outage_dur = precopy_span.scaled(0.3);

  const RetryResult resumed = run_retry(true, outage_at, outage_dur);
  const RetryResult restarted = run_retry(false, outage_at, outage_dur);
  const LossResult loss = run_loss();

  const bool ab_ok = resumed.retry.ok() && restarted.retry.ok() &&
                     resumed.retry.report.resume_applied;

  bench::section("outage mid-first-pass, then retry");
  bench::measured_only("clean migration total", clean.total_time().to_seconds(), "s");
  bench::measured_only("retry w/ resume: combined", resumed.combined_s, "s");
  bench::measured_only("retry w/o resume: combined", restarted.combined_s, "s");
  bench::measured_only("retry w/ resume: first pass",
                       static_cast<double>(resumed.retry.report.blocks_first_pass),
                       "blk");
  bench::measured_only("retry w/o resume: first pass",
                       static_cast<double>(restarted.retry.report.blocks_first_pass),
                       "blk");
  bench::measured_only("blocks saved by resume",
                       static_cast<double>(resumed.retry.report.resumed_blocks_saved),
                       "blk");

  bench::section("post-copy under 20% message loss");
  bench::measured_only("total", loss.out.report.total_time().to_seconds(), "s");
  bench::measured_only("messages dropped", static_cast<double>(loss.dropped), "");
  bench::measured_only("pull timeout retries",
                       static_cast<double>(loss.out.report.postcopy_pull_retries),
                       "");
  bench::measured_only("blocks pulled",
                       static_cast<double>(loss.out.report.blocks_pulled), "");

  bench::section("claims checked");
  std::printf("  both retries complete and verify:         %s\n", ab_ok ? "yes" : "NO");
  std::printf("  resumed retry sends strictly fewer blocks: %s\n",
              resumed.retry.report.blocks_first_pass <
                      restarted.retry.report.blocks_first_pass
                  ? "yes"
                  : "NO");
  std::printf("  resumed retry finishes sooner:            %s\n",
              resumed.combined_s < restarted.combined_s ? "yes" : "NO");
  std::printf("  lossy post-copy converges and verifies:   %s\n",
              loss.out.ok() && loss.out.report.postcopy_pull_retries > 0 ? "yes"
                                                                         : "NO");

  if (json_path != nullptr) {
    const std::vector<std::pair<std::string, double>> kv{
        {"clean_total_s", clean.total_time().to_seconds()},
        {"resume_combined_s", resumed.combined_s},
        {"restart_combined_s", restarted.combined_s},
        {"resume_first_pass_blocks",
         static_cast<double>(resumed.retry.report.blocks_first_pass)},
        {"restart_first_pass_blocks",
         static_cast<double>(restarted.retry.report.blocks_first_pass)},
        {"resumed_blocks_saved",
         static_cast<double>(resumed.retry.report.resumed_blocks_saved)},
        {"loss_total_s", loss.out.report.total_time().to_seconds()},
        {"loss_messages_dropped", static_cast<double>(loss.dropped)},
        {"loss_pull_retries",
         static_cast<double>(loss.out.report.postcopy_pull_retries)},
        {"all_claims_ok",
         ab_ok && loss.out.ok() ? 1.0 : 0.0},
    };
    if (!bench::write_flat_json(json_path, kv)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::printf("\n  wrote %s\n", json_path);
  }
  return ab_ok && loss.out.ok() ? 0 : 1;
}
