// Reproduces Fig. 5 (paper §VI-C-1): SPECweb2005-Banking-like throughput
// while the VM migrates. The paper's claim: no noticeable throughput drop;
// 3 pre-copy iterations, 6680 retransferred blocks, 62 residual blocks
// synchronized by a 349 ms post-copy, only 1 block pulled, 60 ms downtime.

#include <cstdio>

#include "bench_util.hpp"
#include "core/disruption.hpp"
#include "scenario/testbed.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

int main() {
  bench::header("Figure 5", "SPECweb_Banking throughput during migration");

  sim::Simulator sim;
  scenario::Testbed tb{sim};
  tb.prefill_disk();
  workload::WebServerWorkload web{sim, tb.vm(), 42};
  const auto rep =
      tb.run_tpm(&web, /*warmup=*/120_s, /*post=*/120_s,
                 tb.paper_migration_config());

  bench::section("throughput (MiB/s) over time; | marks migration start/end");
  bench::ascii_chart(web.throughput().series(), "MiB/s", 1.0 / (1024 * 1024),
                     {rep.started.to_seconds(), rep.synchronized.to_seconds()});

  bench::section("client-visible impact");
  const auto& ts = web.throughput().series();
  const double before =
      ts.mean_in(sim::TimePoint::origin() + 10_s, rep.started) / (1024 * 1024);
  const double during = ts.mean_in(rep.started, rep.synchronized) / (1024 * 1024);
  const double after =
      ts.mean_in(rep.synchronized, rep.synchronized + 110_s) / (1024 * 1024);
  std::printf("  throughput before / during / after migration: "
              "%.1f / %.1f / %.1f MiB/s\n", before, during, after);
  std::printf("  during/before ratio: %.3f (paper: \"no noticeable drop\")\n",
              during / before);
  const auto disruption = core::measure_disruption(
      ts, sim::TimePoint::origin() + 10_s, rep.started, rep.started,
      rep.synchronized, /*threshold=*/0.8);
  std::printf("  disruption time (samples <80%% of baseline): %.1f s of %.1f s "
              "(%.1f%%), worst sample %.0f%% of baseline\n",
              disruption.disrupted_time.to_seconds(),
              disruption.window.to_seconds(),
              disruption.disrupted_fraction() * 100.0,
              disruption.worst_ratio * 100.0);

  bench::section("paper-quoted statistics vs measured");
  bench::paper_vs("pre-copy iterations", 3, rep.disk_iterations, "");
  bench::paper_vs("blocks retransferred", 6680,
                  static_cast<double>(rep.blocks_retransferred), "blk");
  bench::paper_vs("residual dirty blocks", 62,
                  static_cast<double>(rep.residual_dirty_blocks), "blk");
  bench::paper_vs("post-copy duration", 349.0, rep.postcopy_time().to_millis(),
                  "ms");
  bench::paper_vs("blocks pulled", 1, static_cast<double>(rep.blocks_pulled),
                  "blk");
  bench::paper_vs("downtime", 60.0, rep.downtime().to_millis(), "ms");
  bench::measured_only("blocks pushed", static_cast<double>(rep.blocks_pushed),
                       "blk");
  bench::measured_only("requests served",
                       static_cast<double>(web.requests_served()), "req");
  std::printf("  request latency: p50=%s p99=%s max=%s "
              "(max ~ the freeze: clients stalled once, briefly)\n",
              web.request_latency().quantile(0.5).str().c_str(),
              web.request_latency().quantile(0.99).str().c_str(),
              web.request_latency().max().str().c_str());
  std::printf("  consistency: disk=%s memory=%s\n",
              rep.disk_consistent ? "ok" : "FAIL",
              rep.memory_consistent ? "ok" : "FAIL");
  return 0;
}
