// Reproduces Fig. 6 (paper §VI-C-3): Bonnie++ throughput while the VM
// migrates — the migration stream fights the guest for the disk, roughly
// halving Bonnie++'s rates. Rate-limiting the migration stream gives the
// guest most of its throughput back at the cost of a ~37% longer pre-copy.

#include <cstdio>

#include "bench_util.hpp"
#include "core/disruption.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct RunResult {
  core::MigrationReport rep;
  double write2_before = 0;
  double write2_during = 0;
  double putc_during = 0;
  double rewrite_during = 0;
  double getc_during = 0;
  sim::TimeSeries series;  ///< overall Bonnie throughput
};

RunResult run(double rate_limit_mibps) {
  sim::Simulator sim;
  scenario::Testbed tb{sim};
  tb.prefill_disk();
  workload::DiabolicalWorkload bonnie{sim, tb.vm(), 42};
  auto cfg = tb.paper_migration_config();
  cfg.rate_limit_mibps = rate_limit_mibps;
  RunResult r;
  r.rep = tb.run_tpm(&bonnie, /*warmup=*/150_s, /*post=*/150_s, cfg);
  bonnie.finish_phase_metrics();
  const auto origin = sim::TimePoint::origin();
  r.write2_before = bonnie.phase_mean("write2", origin, r.rep.started);
  r.write2_during = bonnie.phase_mean("write2", r.rep.started, r.rep.synchronized);
  r.putc_during = bonnie.phase_mean("putc", r.rep.started, r.rep.synchronized);
  r.rewrite_during =
      bonnie.phase_mean("rewrite", r.rep.started, r.rep.synchronized);
  r.getc_during = bonnie.phase_mean("getc", r.rep.started, r.rep.synchronized);
  r.series = bonnie.throughput().series();
  return r;
}

}  // namespace

int main() {
  bench::header("Figure 6", "Impact on Bonnie++ throughput during migration");

  const RunResult unlimited = run(0.0);
  const RunResult limited = run(30.0);  // paper: "limit the network bandwidth"

  bench::section("Bonnie++ aggregate throughput (KB/s), unlimited migration");
  bench::ascii_chart(unlimited.series, "KB/s", 1.0 / 1024.0,
                     {unlimited.rep.started.to_seconds(),
                      unlimited.rep.synchronized.to_seconds()});

  bench::section("per-phase throughput (KB/s), no migration vs during");
  std::printf("  %-10s %12s %12s %12s\n", "phase", "baseline", "during-mig",
              "ratio");
  struct PhaseRow {
    const char* name;
    double during;
  } phases[] = {{"putc", unlimited.putc_during},
                {"write2", unlimited.write2_during},
                {"rewrite", unlimited.rewrite_during},
                {"getc", unlimited.getc_during}};
  // Baseline = pre-migration values from the same run.
  sim::Simulator base_sim;
  scenario::Testbed base_tb{base_sim};
  workload::DiabolicalWorkload base_bonnie{base_sim, base_tb.vm(), 42};
  base_bonnie.start();
  base_sim.run_for(400_s);
  base_bonnie.request_stop();
  base_sim.run_for(200_s);
  base_bonnie.finish_phase_metrics();
  const auto t0 = sim::TimePoint::origin();
  const auto t1 = base_sim.now();
  for (auto& ph : phases) {
    const double base = base_bonnie.phase_mean(ph.name, t0, t1);
    std::printf("  %-10s %12.0f %12.0f %12.2f\n", ph.name, base / 1024.0,
                ph.during / 1024.0, ph.during / base);
  }

  bench::section("disruption time (paper §III-A)");
  for (const auto* r : {&unlimited, &limited}) {
    const auto d = core::measure_disruption(
        r->series, sim::TimePoint::origin() + 10_s, r->rep.started,
        r->rep.started, r->rep.synchronized, 0.8);
    std::printf("  %-10s disrupted %.0f s of %.0f s (%.0f%%), worst %.0f%% of "
                "baseline\n",
                r == &unlimited ? "unlimited" : "limited",
                d.disrupted_time.to_seconds(), d.window.to_seconds(),
                d.disrupted_fraction() * 100.0, d.worst_ratio * 100.0);
  }

  bench::section("paper shape checks");
  const double impact = unlimited.write2_during / unlimited.write2_before;
  std::printf("  write(2) during/before (unlimited): %.2f "
              "(paper: roughly halves)\n", impact);
  const double recovered = limited.write2_during / unlimited.write2_during;
  std::printf("  rate-limited recovers write(2) by:  x%.2f "
              "(paper: impact reduced ~50%%)\n", recovered);
  const double precopy_stretch = limited.rep.precopy_time().to_seconds() /
                                 unlimited.rep.precopy_time().to_seconds() - 1.0;
  bench::paper_vs("pre-copy elongation when limited", 37.0,
                  precopy_stretch * 100.0, "%");
  bench::paper_vs("total migration time (unlimited)", 957.0,
                  unlimited.rep.total_time().to_seconds(), "s");
  bench::paper_vs("retransferred data", 1464.0,
                  static_cast<double>(unlimited.rep.blocks_retransferred) * 4096 /
                      (1024.0 * 1024.0),
                  "MiB");
  std::printf("  consistency: unlimited disk=%s, limited disk=%s\n",
              unlimited.rep.disk_consistent ? "ok" : "FAIL",
              limited.rep.disk_consistent ? "ok" : "FAIL");
  return 0;
}
