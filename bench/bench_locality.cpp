// Reproduces the write-locality measurements of §IV-A-2: the fraction of
// write operations that rewrite previously-written blocks. This is the
// paper's argument for bitmap-based synchronization over delta forwarding —
// every rewrite is a redundant delta but a free bitmap update.
//
// Paper: kernel build 11%, SPECweb Banking 25.2%, Bonnie++ 35.6%.

#include <cstdio>

#include "bench_util.hpp"
#include "hypervisor/host.hpp"
#include "scenario/testbed.hpp"
#include "trace/io_trace.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

trace::WriteLocalityStats run(int which, sim::Duration duration) {
  sim::Simulator sim;
  hv::Host host{sim, "h", storage::Geometry::from_mib(8192),
                scenario::TestbedConfig::paper_disk()};
  vm::Domain dom{sim, 1, "guest", 512};
  host.attach_domain(dom);
  std::unique_ptr<workload::Workload> wl;
  switch (which) {
    case 0:
      wl = std::make_unique<workload::KernelBuildWorkload>(sim, dom, 42);
      break;
    case 1:
      wl = std::make_unique<workload::WebServerWorkload>(sim, dom, 42);
      break;
    default: {
      workload::DiabolicalParams p;
      p.file_mib = 512;
      p.max_cycles = 1;  // one run on a fresh FS, as the paper measured
      wl = std::make_unique<workload::DiabolicalWorkload>(sim, dom, 42, p);
      break;
    }
  }
  trace::IoTrace tr;
  wl->attach_trace(&tr);
  wl->start();
  sim.run_for(duration);
  wl->request_stop();
  sim.run_for(300_s);
  return tr.analyze_writes(host.disk().geometry().block_count);
}

}  // namespace

int main() {
  bench::header("§IV-A-2", "Write rewrite ratios per workload");

  struct Row {
    const char* name;
    double paper_pct;
    sim::Duration duration;
  } rows[] = {
      {"Linux kernel build", 11.0, 1200_s},
      {"SPECweb Banking", 25.2, 1200_s},
      {"Bonnie++", 35.6, 300_s},
  };

  std::printf("\n%-22s %10s %10s %12s %12s %14s\n", "workload", "paper %",
              "measured %", "write ops", "distinct blk", "redundant MiB");
  for (int i = 0; i < 3; ++i) {
    const auto s = run(i, rows[i].duration);
    std::printf("%-22s %10.1f %10.1f %12llu %12llu %14.1f\n", rows[i].name,
                rows[i].paper_pct, s.rewrite_ratio() * 100.0,
                static_cast<unsigned long long>(s.write_ops),
                static_cast<unsigned long long>(s.distinct_blocks),
                static_cast<double>(s.redundant_bytes(4096)) / (1024.0 * 1024.0));
  }

  bench::section("interpretation");
  std::printf(
      "  'redundant MiB' is what a Bradford-style delta-forwarding scheme\n"
      "  would resend for rewrites during the window; the block-bitmap\n"
      "  absorbs all of it (a rewrite just leaves the bit set).\n");
  return 0;
}
