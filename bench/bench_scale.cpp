// Scale/throughput bench: the repo's first *wall-clock* benchmark. Every
// other bench reports simulated time; this one measures how fast the
// simulator itself chews through a cluster evacuation as the testbed grows
// (64 -> 10000 hosts), reporting events/sec and wall-ms per simulated
// minute. Simulated results stay deterministic — only the wall-clock
// readings vary run to run, which is why the committed baseline gates them
// with direction-aware, regression-only tolerances
// (scripts/check_bench_baselines.py).
//
// Every point registers ~10 cold VMs per host on top of the evacuated
// guests, so the 10k-host point carries ~100k registered VMs — lazy
// instantiation (docs/SCALE.md) is what keeps setup cost proportional to
// the hosts the evacuation actually touches, not the cluster size. Setup
// (testbed construction + registration + prefill) is reported separately
// from steady-state throughput and never gated.
//
// Usage: bench_scale [--quick] [--points N,M,...] [--no-fast-forward]
//                    [--budget-wall-ms MS] [--json FILE] [--profile-out FILE]
//                    [--fleet] [--fleet-out FILE] [--flight-budget BYTES]
//   --quick            64-host point only (CI smoke; the committed baseline
//                      bench/baselines/BENCH_scale.json holds exactly this)
//   --points N,M,...   run exactly these host counts (CI scale matrix legs)
//   --no-fast-forward  tick every guest write as a discrete event (A/B
//                      reference; simulated results are byte-identical)
//   --budget-wall-ms   fail (exit 1) if any point's evacuation wall time
//                      exceeds MS (the 10k leg's <60 s acceptance gate)
//   --json FILE        flat metrics JSON for the baseline gate
//   --profile-out      self-profile the runs, write a collapsed-stack file
//   --fleet            A/B every point: observability off, then twice with
//                      the fleet rollup + a byte-budgeted flight recorder
//                      attached. Reports obs-on throughput and the obs-on
//                      vs obs-off events/sec delta (the cost of telemetry,
//                      fidelity fallback included), replay divergence
//                      across the two obs-on runs (must be 0: job reports
//                      and the fleet export are byte-identical on replay),
//                      and flight-record budget overrun (must be 0).
//                      Gated via bench/baselines/BENCH_fleet.json.
//   --fleet-out FILE   write the largest point's fleet rollup CSV (CI
//                      artifact; `vmig_top FILE` renders it)
//   --flight-budget B  flight-recorder event-section byte budget for the
//                      obs-on runs (default 65536)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "cluster/orchestrator.hpp"
#include "core/report_io.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/rollup.hpp"
#include "scenario/cluster_testbed.hpp"
#include "workloads/steady_writer.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

bool g_fast_forward = true;

/// --fleet mode: A/B each point with the obs stack attached.
struct FleetOpts {
  bool enabled = false;
  std::uint64_t flight_budget = 65536;  ///< event-section byte budget
};

struct Row {
  int hosts = 0;
  int vms = 0;               // evacuated guests (materialized, with writers)
  std::uint64_t registered_vms = 0;   // total incl. cold placeholders
  std::uint64_t materialized_hosts = 0;
  double setup_ms = 0;        // testbed construction + registration + prefill
  double wall_ms = 0;         // drain() wall time (steady state)
  double sim_s = 0;           // simulated makespan
  std::uint64_t events = 0;   // simulator events processed (deterministic)
  double events_per_sec = 0;  // events / wall-s (throughput, wall)
  double wall_ms_per_sim_min = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;

  // --fleet columns (obs-on re-run of the same point).
  bool fleet = false;
  double obs_wall_ms = 0;
  double obs_events_per_sec = 0;
  /// Replay divergence: jobs whose terminal MigrationReport JSON differs
  /// between two obs-on runs of the identical point, +1 if the fleet
  /// rollup exports differ. Telemetry must be deterministic, so the
  /// committed baseline gates this at exactly 0.
  std::uint64_t report_divergence = 0;
  /// max(0, serialized flight-record event-section bytes - budget); the
  /// budgeted recorder's contract, gated at exactly 0.
  std::uint64_t flight_over_budget_bytes = 0;
  /// Obs-on run's fleet rollup export (bounded; --fleet-out writes the
  /// largest point's).
  std::string fleet_csv;
};

constexpr int kColdVmsPerHost = 10;
constexpr std::size_t kMaxDestinations = 64;

// Evacuate host0's guests into the least-loaded corner of an N-host full
// mesh. The evacuated-VM count grows with the cluster so the event volume
// scales too; disks shrink at the biggest points so the 10k-host run stays
// inside a laptop's memory and a CI minute.
//
// `obs` non-null attaches the fleet telemetry stack (rollup + budgeted
// flight recorder) for the --fleet A/B; `reports` non-null collects every
// job's terminal MigrationReport as JSON for the divergence check.
Row run_once(int hosts, const FleetOpts* obs,
             std::vector<std::string>* reports) {
  Row r;
  r.hosts = hosts;
  r.vms = hosts / 8;

  obs::WallStopwatch setup_sw;
  sim::Simulator sim;
  sim.set_fast_forward(g_fast_forward);
  scenario::ClusterTestbedConfig bed;
  bed.hosts = hosts;
  bed.vbd_mib = hosts >= 4096 ? 32 : 128;
  bed.guest_mem_mib = 32;
  scenario::ClusterTestbed tb{sim, bed};
  // Evacuated guests first (ids 1..vms), then the cold fleet: ~10 VMs per
  // host that exist only as registration records. They shape placement
  // (least-loaded planning counts them) but are never materialized.
  for (int i = 0; i < r.vms; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  for (int h = 0; h < hosts; ++h) {
    for (int c = 0; c < kColdVmsPerHost; ++c) {
      tb.register_vm("cold" + std::to_string(h) + "." + std::to_string(c),
                     static_cast<std::size_t>(h));
    }
  }
  r.registered_vms = tb.vm_count();
  tb.prefill_disks();
  // Writers stay hot long enough to overlap most of the evacuation window
  // at every size (the 50 ms poll keeps launches rolling well past it).
  // Under fast-forward the ticks fold into bulk bitmap marks at observation
  // points instead of firing as events — byte-identical dirty state either
  // way (pinned by tests/scale_test.cpp).
  std::vector<std::unique_ptr<workload::SteadyWriter>> writers;
  writers.reserve(static_cast<std::size_t>(r.vms));
  for (int i = 0; i < r.vms; ++i) {
    workload::SteadyWriterConfig wc;
    wc.until = sim::TimePoint::origin() + 20_s;
    writers.push_back(std::make_unique<workload::SteadyWriter>(
        sim, tb.vm(static_cast<std::size_t>(i)), wc));
    writers.back()->start();
  }

  std::unique_ptr<obs::Rollup> rollup;
  std::unique_ptr<obs::FlightRecorder> recorder;
  cluster::OrchestratorConfig cfg;
  cfg.caps = {.per_source = 4, .per_dest = 2, .per_link = 1, .total = 16};
  cfg.policy = cluster::SchedulePolicyKind::kFifo;
  cfg.poll_interval = 50_ms;
  if (obs != nullptr) {
    obs::RollupConfig rcfg;
    rcfg.hosts = static_cast<std::size_t>(hosts);
    rollup = std::make_unique<obs::Rollup>(sim, rcfg);
    tb.attach_rollup(rollup.get());
    rollup->start_sampling();
    recorder = std::make_unique<obs::FlightRecorder>();
    recorder->set_byte_budget(obs->flight_budget);
    cfg.rollup = rollup.get();
    cfg.recorder = recorder.get();
  }
  cluster::Orchestrator orch{sim, tb.manager(), cfg};
  orch.submit_evacuation(
      tb.host(0),
      tb.pick_destinations(0, std::min<std::size_t>(
                                  static_cast<std::size_t>(hosts) - 1,
                                  kMaxDestinations)),
      tb.paper_migration_config());
  r.setup_ms = setup_sw.elapsed_ms();

  obs::WallStopwatch run_sw;
  orch.drain();
  r.wall_ms = run_sw.elapsed_ms();

  r.materialized_hosts = tb.materialized_host_count();
  r.sim_s = sim.now().to_seconds();
  r.events = sim.events_processed();
  r.completed = orch.jobs_completed();
  r.failed = orch.jobs_failed();
  const double wall_s = r.wall_ms / 1e3;
  if (wall_s > 0) r.events_per_sec = static_cast<double>(r.events) / wall_s;
  const double sim_min = r.sim_s / 60.0;
  if (sim_min > 0) r.wall_ms_per_sim_min = r.wall_ms / sim_min;

  if (reports != nullptr) {
    reports->reserve(orch.job_count());
    for (std::size_t id = 0; id < orch.job_count(); ++id) {
      reports->push_back(core::to_json(
          orch.job(static_cast<cluster::JobId>(id)).outcome.report));
    }
  }
  if (obs != nullptr) {
    rollup->sample_now();  // terminal fleet state
    std::ostringstream csv;
    rollup->write_csv(csv);
    r.fleet_csv = csv.str();
    // Event-section size of the serialized record vs the byte budget.
    std::ostringstream rec;
    obs::write_flight_record(rec, *recorder);
    const std::string text = rec.str();
    std::uint64_t event_bytes = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size() - 1;
      if (text.compare(pos, 6, "{\"k\":\"") == 0) {
        event_bytes += nl + 1 - pos;
      }
      pos = nl + 1;
    }
    r.flight_over_budget_bytes =
        event_bytes > obs->flight_budget ? event_bytes - obs->flight_budget
                                         : 0;
  }
  return r;
}

// One table row: the plain run, plus — under --fleet — two obs-on replays
// of the identical point. Obs-on vs obs-off yields the telemetry cost
// columns (the delta includes the fidelity fallback: with a redirty hook
// attached, writer ticks run live through the full disk_write path, so the
// simulated run itself is allowed to differ from the obs-off one). The two
// obs-on replays yield the exactness columns: replaying one configuration
// must reproduce every job report and the fleet export byte-for-byte.
Row run_size(int hosts, const FleetOpts& fleet) {
  Row r = run_once(hosts, nullptr, nullptr);
  if (!fleet.enabled) return r;

  std::vector<std::string> rep1;
  std::vector<std::string> rep2;
  Row o1 = run_once(hosts, &fleet, &rep1);
  Row o2 = run_once(hosts, &fleet, &rep2);
  r.fleet = true;
  r.obs_wall_ms = o1.wall_ms;
  r.obs_events_per_sec = o1.events_per_sec;
  r.flight_over_budget_bytes =
      std::max(o1.flight_over_budget_bytes, o2.flight_over_budget_bytes);
  const std::size_t n = std::max(rep1.size(), rep2.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= rep1.size() || i >= rep2.size() || rep1[i] != rep2[i]) {
      ++r.report_divergence;
    }
  }
  if (o1.fleet_csv != o2.fleet_csv) ++r.report_divergence;
  r.fleet_csv = std::move(o1.fleet_csv);
  return r;
}

bool write_text(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

bool parse_points(std::string_view s, std::vector<int>* out) {
  out->clear();
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string tok{s.substr(0, comma)};
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v < 2) return false;
    out->push_back(static_cast<int>(v));
    s = comma == std::string_view::npos ? std::string_view{}
                                        : s.substr(comma + 1);
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string profile_out;
  std::string fleet_out;
  FleetOpts fleet;
  std::vector<int> sizes{64, 256, 1024, 4096, 10000};
  double budget_wall_ms = 0;  // 0 = no budget
  for (int i = 1; i < argc; ++i) {
    const std::string_view a{argv[i]};
    if (a == "--quick") {
      sizes = {64};
    } else if (a == "--points" && i + 1 < argc) {
      if (!parse_points(argv[++i], &sizes)) {
        std::fprintf(stderr, "error: bad --points list '%s'\n", argv[i]);
        return 2;
      }
    } else if (a == "--no-fast-forward") {
      g_fast_forward = false;
    } else if (a == "--budget-wall-ms" && i + 1 < argc) {
      budget_wall_ms = std::strtod(argv[++i], nullptr);
    } else if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (a == "--profile-out" && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (a == "--fleet") {
      fleet.enabled = true;
    } else if (a == "--fleet-out" && i + 1 < argc) {
      fleet_out = argv[++i];
      fleet.enabled = true;
    } else if (a == "--flight-budget" && i + 1 < argc) {
      fleet.flight_budget = std::strtoull(argv[++i], nullptr, 10);
      fleet.enabled = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--points N,M,...] [--no-fast-forward]"
                   " [--budget-wall-ms MS] [--json FILE] [--profile-out FILE]"
                   " [--fleet] [--fleet-out FILE] [--flight-budget BYTES]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::Profiler profiler;
  if (!profile_out.empty()) profiler.activate();

  bench::header("simulator scale",
                "wall-clock throughput of cluster evacuations");
  std::printf("  fast-forward: %s\n", g_fast_forward ? "on" : "off (ticked)");
  if (fleet.enabled) {
    std::printf("  fleet A/B: on (flight budget %llu bytes)\n",
                static_cast<unsigned long long>(fleet.flight_budget));
  }

  std::vector<Row> rows;
  for (const int n : sizes) {
    std::printf("  running %d hosts...\n", n);
    std::fflush(stdout);
    rows.push_back(run_size(n, fleet));
  }

  std::printf("\n%-7s %6s %9s %7s %10s %10s %9s %12s %13s %14s\n", "hosts",
              "vms", "reg-vms", "mat-hs", "setup(ms)", "wall(ms)", "sim(s)",
              "events", "events/s", "wall-ms/sim-min");
  bool all_ok = true;
  bool in_budget = true;
  for (const auto& r : rows) {
    std::printf("%-7d %6d %9llu %7llu %10.1f %10.1f %9.2f %12llu %13.0f "
                "%14.1f\n",
                r.hosts, r.vms, static_cast<unsigned long long>(r.registered_vms),
                static_cast<unsigned long long>(r.materialized_hosts),
                r.setup_ms, r.wall_ms, r.sim_s,
                static_cast<unsigned long long>(r.events), r.events_per_sec,
                r.wall_ms_per_sim_min);
    if (r.failed != 0 || r.completed != static_cast<std::uint64_t>(r.vms)) {
      all_ok = false;
    }
    if (budget_wall_ms > 0 &&
        std::max(r.wall_ms, r.obs_wall_ms) > budget_wall_ms) {
      in_budget = false;
    }
  }

  bool fleet_exact = true;
  if (fleet.enabled) {
    std::printf("\n%-7s %13s %13s %8s %10s %12s\n", "hosts", "off-ev/s",
                "obs-ev/s", "delta%", "rep-diverg", "over-budget");
    for (const auto& r : rows) {
      const double delta =
          r.events_per_sec > 0
              ? 100.0 * (r.obs_events_per_sec - r.events_per_sec) /
                    r.events_per_sec
              : 0.0;
      std::printf("%-7d %13.0f %13.0f %+7.1f%% %10llu %12llu\n", r.hosts,
                  r.events_per_sec, r.obs_events_per_sec, delta,
                  static_cast<unsigned long long>(r.report_divergence),
                  static_cast<unsigned long long>(r.flight_over_budget_bytes));
      if (r.report_divergence != 0 || r.flight_over_budget_bytes != 0) {
        fleet_exact = false;
      }
    }
  }

  bench::section("claims checked");
  std::printf("  every evacuation completes:  %s\n", all_ok ? "yes" : "NO");
  if (budget_wall_ms > 0) {
    std::printf("  all points within %.0f ms wall budget:  %s\n",
                budget_wall_ms, in_budget ? "yes" : "NO");
  }
  if (fleet.enabled) {
    std::printf("  fleet telemetry replays byte-identically and the flight\n"
                "  record stays inside its byte budget:  %s\n",
                fleet_exact ? "yes" : "NO");
  }

  if (!fleet_out.empty() && !rows.empty()) {
    if (!write_text(fleet_out.c_str(), rows.back().fleet_csv)) {
      std::fprintf(stderr, "error: cannot write %s\n", fleet_out.c_str());
      return 2;
    }
    std::printf("  fleet rollup (h%d) -> %s\n", rows.back().hosts,
                fleet_out.c_str());
  }

  if (!profile_out.empty()) {
    profiler.deactivate();
    std::printf("\n-- self-profile (wall clock, simulated results unaffected) "
                "--\n%s",
                profiler.table().c_str());
    if (!write_text(profile_out.c_str(), profiler.collapsed())) {
      std::fprintf(stderr, "error: cannot write %s\n", profile_out.c_str());
      return 2;
    }
    std::printf("  collapsed stacks -> %s\n", profile_out.c_str());
  }

  if (!json_out.empty()) {
    std::vector<std::pair<std::string, double>> kv;
    for (const auto& r : rows) {
      const std::string p = "scale.h" + std::to_string(r.hosts) + ".";
      kv.emplace_back(p + "events", static_cast<double>(r.events));
      kv.emplace_back(p + "events_per_sec", r.events_per_sec);
      kv.emplace_back(p + "wall_ms_per_sim_min", r.wall_ms_per_sim_min);
      kv.emplace_back(p + "setup_ms", r.setup_ms);  // reported, never gated
      if (r.fleet) {
        const std::string f = "fleet.h" + std::to_string(r.hosts) + ".";
        kv.emplace_back(f + "obs_events_per_sec", r.obs_events_per_sec);
        // Exact-zero contracts (absolute gate in check_bench_baselines.py).
        kv.emplace_back(f + "report_divergence",
                        static_cast<double>(r.report_divergence));
        kv.emplace_back(f + "flight_over_budget_bytes",
                        static_cast<double>(r.flight_over_budget_bytes));
      }
    }
    if (!bench::write_flat_json(json_out.c_str(), kv)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 2;
    }
    std::printf("  metrics -> %s\n", json_out.c_str());
  }
  return (all_ok && in_budget && fleet_exact) ? 0 : 1;
}
