// Scale/throughput bench: the repo's first *wall-clock* benchmark. Every
// other bench reports simulated time; this one measures how fast the
// simulator itself chews through a cluster evacuation as the testbed grows
// (64 / 256 / 1024 hosts), reporting events/sec and wall-ms per simulated
// minute. Simulated results stay deterministic — only the wall-clock
// readings vary run to run, which is why the committed baseline gates them
// with direction-aware, regression-only tolerances
// (scripts/check_bench_baselines.py).
//
// Usage: bench_scale [--quick] [--json FILE] [--profile-out FILE]
//   --quick        64-host point only (CI smoke; the committed baseline
//                  bench/baselines/BENCH_scale.json holds exactly this set)
//   --json FILE    flat metrics JSON for the baseline gate
//   --profile-out  self-profile the runs and write a collapsed-stack file

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "cluster/orchestrator.hpp"
#include "obs/profiler.hpp"
#include "scenario/cluster_testbed.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

bool g_quick = false;

struct Row {
  int hosts = 0;
  int vms = 0;
  double setup_ms = 0;        // testbed construction + prefill (wall)
  double wall_ms = 0;         // drain() wall time
  double sim_s = 0;           // simulated makespan
  std::uint64_t events = 0;   // simulator events processed (deterministic)
  double events_per_sec = 0;  // events / wall-s (throughput, wall)
  double wall_ms_per_sim_min = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

// Keeps a guest dirtying its disk while it is being evacuated, so every
// migration pays real re-copy iterations and the event volume is dominated
// by simulated work, not orchestration. Time-bounded: drain() runs until
// the event queue empties, so the writer winds down on its own.
sim::Task<void> steady_writer(sim::Simulator* sim, vm::Domain* d,
                              sim::TimePoint until) {
  std::uint64_t at = 0;
  while (sim->now() < until) {
    co_await d->disk_write(storage::BlockRange{(at * 64) % 8192, 64});
    ++at;
    co_await sim->delay(1_ms);
  }
}

// Evacuate host0's guests into the rest of an N-host full mesh. The VM
// count grows with the cluster so the event volume scales too; disks are
// small so the 1024-host point stays tractable on a laptop.
Row run_size(int hosts) {
  Row r;
  r.hosts = hosts;
  r.vms = hosts / 8;

  obs::WallStopwatch setup_sw;
  sim::Simulator sim;
  scenario::ClusterTestbedConfig bed;
  bed.hosts = hosts;
  bed.vbd_mib = 128;
  bed.guest_mem_mib = 32;
  scenario::ClusterTestbed tb{sim, bed};
  for (int i = 0; i < r.vms; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  tb.prefill_disks();
  // Writers stay hot long enough to overlap most of the evacuation window
  // at every size (the 50 ms poll keeps launches rolling well past it).
  for (int i = 0; i < r.vms; ++i) {
    sim.spawn(steady_writer(&sim, &tb.vm(static_cast<std::size_t>(i)),
                            sim::TimePoint::origin() + 20_s),
              "writer" + std::to_string(i));
  }

  cluster::OrchestratorConfig cfg;
  cfg.caps = {.per_source = 4, .per_dest = 2, .per_link = 1, .total = 16};
  cfg.policy = cluster::SchedulePolicyKind::kFifo;
  cfg.poll_interval = 50_ms;
  cluster::Orchestrator orch{sim, tb.manager(), cfg};
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0),
                         tb.paper_migration_config());
  r.setup_ms = setup_sw.elapsed_ms();

  obs::WallStopwatch run_sw;
  orch.drain();
  r.wall_ms = run_sw.elapsed_ms();

  r.sim_s = sim.now().to_seconds();
  r.events = sim.events_processed();
  r.completed = orch.jobs_completed();
  r.failed = orch.jobs_failed();
  const double wall_s = r.wall_ms / 1e3;
  if (wall_s > 0) r.events_per_sec = static_cast<double>(r.events) / wall_s;
  const double sim_min = r.sim_s / 60.0;
  if (sim_min > 0) r.wall_ms_per_sim_min = r.wall_ms / sim_min;
  return r;
}

bool write_text(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string profile_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a{argv[i]};
    if (a == "--quick") {
      g_quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (a == "--profile-out" && i + 1 < argc) {
      profile_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json FILE] [--profile-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::Profiler profiler;
  if (!profile_out.empty()) profiler.activate();

  bench::header("simulator scale",
                "wall-clock throughput of cluster evacuations");
  const std::vector<int> sizes = g_quick ? std::vector<int>{64}
                                         : std::vector<int>{64, 256, 1024};

  std::vector<Row> rows;
  for (const int n : sizes) {
    std::printf("  running %d hosts...\n", n);
    std::fflush(stdout);
    rows.push_back(run_size(n));
  }

  std::printf("\n%-7s %5s %10s %10s %9s %12s %13s %14s\n", "hosts", "vms",
              "setup(ms)", "wall(ms)", "sim(s)", "events", "events/s",
              "wall-ms/sim-min");
  bool all_ok = true;
  for (const auto& r : rows) {
    std::printf("%-7d %5d %10.1f %10.1f %9.2f %12llu %13.0f %14.1f\n", r.hosts,
                r.vms, r.setup_ms, r.wall_ms, r.sim_s,
                static_cast<unsigned long long>(r.events), r.events_per_sec,
                r.wall_ms_per_sim_min);
    if (r.failed != 0 || r.completed != static_cast<std::uint64_t>(r.vms)) {
      all_ok = false;
    }
  }
  bench::section("claims checked");
  std::printf("  every evacuation completes:  %s\n", all_ok ? "yes" : "NO");

  if (!profile_out.empty()) {
    profiler.deactivate();
    std::printf("\n-- self-profile (wall clock, simulated results unaffected) "
                "--\n%s",
                profiler.table().c_str());
    if (!write_text(profile_out.c_str(), profiler.collapsed())) {
      std::fprintf(stderr, "error: cannot write %s\n", profile_out.c_str());
      return 2;
    }
    std::printf("  collapsed stacks -> %s\n", profile_out.c_str());
  }

  if (!json_out.empty()) {
    std::vector<std::pair<std::string, double>> kv;
    for (const auto& r : rows) {
      const std::string p = "scale.h" + std::to_string(r.hosts) + ".";
      kv.emplace_back(p + "events", static_cast<double>(r.events));
      kv.emplace_back(p + "events_per_sec", r.events_per_sec);
      kv.emplace_back(p + "wall_ms_per_sim_min", r.wall_ms_per_sim_min);
      kv.emplace_back(p + "setup_ms", r.setup_ms);  // reported, never gated
    }
    if (!bench::write_flat_json(json_out.c_str(), kv)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 2;
    }
    std::printf("  metrics -> %s\n", json_out.c_str());
  }
  return all_ok ? 0 : 1;
}
