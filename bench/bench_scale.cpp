// Scale/throughput bench: the repo's first *wall-clock* benchmark. Every
// other bench reports simulated time; this one measures how fast the
// simulator itself chews through a cluster evacuation as the testbed grows
// (64 -> 10000 hosts), reporting events/sec and wall-ms per simulated
// minute. Simulated results stay deterministic — only the wall-clock
// readings vary run to run, which is why the committed baseline gates them
// with direction-aware, regression-only tolerances
// (scripts/check_bench_baselines.py).
//
// Every point registers ~10 cold VMs per host on top of the evacuated
// guests, so the 10k-host point carries ~100k registered VMs — lazy
// instantiation (docs/SCALE.md) is what keeps setup cost proportional to
// the hosts the evacuation actually touches, not the cluster size. Setup
// (testbed construction + registration + prefill) is reported separately
// from steady-state throughput and never gated.
//
// Usage: bench_scale [--quick] [--points N,M,...] [--no-fast-forward]
//                    [--budget-wall-ms MS] [--json FILE] [--profile-out FILE]
//   --quick            64-host point only (CI smoke; the committed baseline
//                      bench/baselines/BENCH_scale.json holds exactly this)
//   --points N,M,...   run exactly these host counts (CI scale matrix legs)
//   --no-fast-forward  tick every guest write as a discrete event (A/B
//                      reference; simulated results are byte-identical)
//   --budget-wall-ms   fail (exit 1) if any point's evacuation wall time
//                      exceeds MS (the 10k leg's <60 s acceptance gate)
//   --json FILE        flat metrics JSON for the baseline gate
//   --profile-out      self-profile the runs, write a collapsed-stack file

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "cluster/orchestrator.hpp"
#include "obs/profiler.hpp"
#include "scenario/cluster_testbed.hpp"
#include "workloads/steady_writer.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

bool g_fast_forward = true;

struct Row {
  int hosts = 0;
  int vms = 0;               // evacuated guests (materialized, with writers)
  std::uint64_t registered_vms = 0;   // total incl. cold placeholders
  std::uint64_t materialized_hosts = 0;
  double setup_ms = 0;        // testbed construction + registration + prefill
  double wall_ms = 0;         // drain() wall time (steady state)
  double sim_s = 0;           // simulated makespan
  std::uint64_t events = 0;   // simulator events processed (deterministic)
  double events_per_sec = 0;  // events / wall-s (throughput, wall)
  double wall_ms_per_sim_min = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

constexpr int kColdVmsPerHost = 10;
constexpr std::size_t kMaxDestinations = 64;

// Evacuate host0's guests into the least-loaded corner of an N-host full
// mesh. The evacuated-VM count grows with the cluster so the event volume
// scales too; disks shrink at the biggest points so the 10k-host run stays
// inside a laptop's memory and a CI minute.
Row run_size(int hosts) {
  Row r;
  r.hosts = hosts;
  r.vms = hosts / 8;

  obs::WallStopwatch setup_sw;
  sim::Simulator sim;
  sim.set_fast_forward(g_fast_forward);
  scenario::ClusterTestbedConfig bed;
  bed.hosts = hosts;
  bed.vbd_mib = hosts >= 4096 ? 32 : 128;
  bed.guest_mem_mib = 32;
  scenario::ClusterTestbed tb{sim, bed};
  // Evacuated guests first (ids 1..vms), then the cold fleet: ~10 VMs per
  // host that exist only as registration records. They shape placement
  // (least-loaded planning counts them) but are never materialized.
  for (int i = 0; i < r.vms; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  for (int h = 0; h < hosts; ++h) {
    for (int c = 0; c < kColdVmsPerHost; ++c) {
      tb.register_vm("cold" + std::to_string(h) + "." + std::to_string(c),
                     static_cast<std::size_t>(h));
    }
  }
  r.registered_vms = tb.vm_count();
  tb.prefill_disks();
  // Writers stay hot long enough to overlap most of the evacuation window
  // at every size (the 50 ms poll keeps launches rolling well past it).
  // Under fast-forward the ticks fold into bulk bitmap marks at observation
  // points instead of firing as events — byte-identical dirty state either
  // way (pinned by tests/scale_test.cpp).
  std::vector<std::unique_ptr<workload::SteadyWriter>> writers;
  writers.reserve(static_cast<std::size_t>(r.vms));
  for (int i = 0; i < r.vms; ++i) {
    workload::SteadyWriterConfig wc;
    wc.until = sim::TimePoint::origin() + 20_s;
    writers.push_back(std::make_unique<workload::SteadyWriter>(
        sim, tb.vm(static_cast<std::size_t>(i)), wc));
    writers.back()->start();
  }

  cluster::OrchestratorConfig cfg;
  cfg.caps = {.per_source = 4, .per_dest = 2, .per_link = 1, .total = 16};
  cfg.policy = cluster::SchedulePolicyKind::kFifo;
  cfg.poll_interval = 50_ms;
  cluster::Orchestrator orch{sim, tb.manager(), cfg};
  orch.submit_evacuation(
      tb.host(0),
      tb.pick_destinations(0, std::min<std::size_t>(
                                  static_cast<std::size_t>(hosts) - 1,
                                  kMaxDestinations)),
      tb.paper_migration_config());
  r.setup_ms = setup_sw.elapsed_ms();

  obs::WallStopwatch run_sw;
  orch.drain();
  r.wall_ms = run_sw.elapsed_ms();

  r.materialized_hosts = tb.materialized_host_count();
  r.sim_s = sim.now().to_seconds();
  r.events = sim.events_processed();
  r.completed = orch.jobs_completed();
  r.failed = orch.jobs_failed();
  const double wall_s = r.wall_ms / 1e3;
  if (wall_s > 0) r.events_per_sec = static_cast<double>(r.events) / wall_s;
  const double sim_min = r.sim_s / 60.0;
  if (sim_min > 0) r.wall_ms_per_sim_min = r.wall_ms / sim_min;
  return r;
}

bool write_text(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

bool parse_points(std::string_view s, std::vector<int>* out) {
  out->clear();
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string tok{s.substr(0, comma)};
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v < 2) return false;
    out->push_back(static_cast<int>(v));
    s = comma == std::string_view::npos ? std::string_view{}
                                        : s.substr(comma + 1);
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string profile_out;
  std::vector<int> sizes{64, 256, 1024, 4096, 10000};
  double budget_wall_ms = 0;  // 0 = no budget
  for (int i = 1; i < argc; ++i) {
    const std::string_view a{argv[i]};
    if (a == "--quick") {
      sizes = {64};
    } else if (a == "--points" && i + 1 < argc) {
      if (!parse_points(argv[++i], &sizes)) {
        std::fprintf(stderr, "error: bad --points list '%s'\n", argv[i]);
        return 2;
      }
    } else if (a == "--no-fast-forward") {
      g_fast_forward = false;
    } else if (a == "--budget-wall-ms" && i + 1 < argc) {
      budget_wall_ms = std::strtod(argv[++i], nullptr);
    } else if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (a == "--profile-out" && i + 1 < argc) {
      profile_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--points N,M,...] [--no-fast-forward]"
                   " [--budget-wall-ms MS] [--json FILE] [--profile-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::Profiler profiler;
  if (!profile_out.empty()) profiler.activate();

  bench::header("simulator scale",
                "wall-clock throughput of cluster evacuations");
  std::printf("  fast-forward: %s\n", g_fast_forward ? "on" : "off (ticked)");

  std::vector<Row> rows;
  for (const int n : sizes) {
    std::printf("  running %d hosts...\n", n);
    std::fflush(stdout);
    rows.push_back(run_size(n));
  }

  std::printf("\n%-7s %6s %9s %7s %10s %10s %9s %12s %13s %14s\n", "hosts",
              "vms", "reg-vms", "mat-hs", "setup(ms)", "wall(ms)", "sim(s)",
              "events", "events/s", "wall-ms/sim-min");
  bool all_ok = true;
  bool in_budget = true;
  for (const auto& r : rows) {
    std::printf("%-7d %6d %9llu %7llu %10.1f %10.1f %9.2f %12llu %13.0f "
                "%14.1f\n",
                r.hosts, r.vms, static_cast<unsigned long long>(r.registered_vms),
                static_cast<unsigned long long>(r.materialized_hosts),
                r.setup_ms, r.wall_ms, r.sim_s,
                static_cast<unsigned long long>(r.events), r.events_per_sec,
                r.wall_ms_per_sim_min);
    if (r.failed != 0 || r.completed != static_cast<std::uint64_t>(r.vms)) {
      all_ok = false;
    }
    if (budget_wall_ms > 0 && r.wall_ms > budget_wall_ms) in_budget = false;
  }
  bench::section("claims checked");
  std::printf("  every evacuation completes:  %s\n", all_ok ? "yes" : "NO");
  if (budget_wall_ms > 0) {
    std::printf("  all points within %.0f ms wall budget:  %s\n",
                budget_wall_ms, in_budget ? "yes" : "NO");
  }

  if (!profile_out.empty()) {
    profiler.deactivate();
    std::printf("\n-- self-profile (wall clock, simulated results unaffected) "
                "--\n%s",
                profiler.table().c_str());
    if (!write_text(profile_out.c_str(), profiler.collapsed())) {
      std::fprintf(stderr, "error: cannot write %s\n", profile_out.c_str());
      return 2;
    }
    std::printf("  collapsed stacks -> %s\n", profile_out.c_str());
  }

  if (!json_out.empty()) {
    std::vector<std::pair<std::string, double>> kv;
    for (const auto& r : rows) {
      const std::string p = "scale.h" + std::to_string(r.hosts) + ".";
      kv.emplace_back(p + "events", static_cast<double>(r.events));
      kv.emplace_back(p + "events_per_sec", r.events_per_sec);
      kv.emplace_back(p + "wall_ms_per_sim_min", r.wall_ms_per_sim_min);
      kv.emplace_back(p + "setup_ms", r.setup_ms);  // reported, never gated
    }
    if (!bench::write_flat_json(json_out.c_str(), kv)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 2;
    }
    std::printf("  metrics -> %s\n", json_out.c_str());
  }
  return (all_ok && in_budget) ? 0 : 1;
}
