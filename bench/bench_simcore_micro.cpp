// Micro-benchmarks for the simulation kernel itself: raw event throughput
// through the calendar queue, coroutine spawn/await cost (pooled frames),
// and channel handoff. These bound how large an experiment the simulator
// can run per wall-second (the paper-scale Table I run is ~400k events).
//
// Usage: bench_simcore_micro [--quick] [--json FILE]
//   --quick      smaller rep counts (CI smoke; committed baseline
//                bench/baselines/BENCH_simcore_micro.json holds this set)
//   --json FILE  flat metrics JSON for the baseline gate
//
// Hand-rolled harness (no google-benchmark): fixed op counts, best-of-R
// wall-clock timing via obs::WallStopwatch, ops/sec reported.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "obs/profiler.hpp"
#include "simcore/channel.hpp"
#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"

namespace {

using namespace vmig::sim;
using namespace vmig::sim::literals;

bool g_quick = false;
volatile std::uint64_t g_sink = 0;

/// Best-of-R wall-clock rate: run `body(ops)` R times, return max ops/sec.
template <typename F>
double best_rate(std::uint64_t ops, F&& body) {
  const int reps = g_quick ? 2 : 3;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    vmig::obs::WallStopwatch sw;
    body(ops);
    const double s = static_cast<double>(sw.elapsed_ns()) / 1e9;
    if (s > 0.0) best = std::max(best, static_cast<double>(ops) / s);
  }
  return best;
}

double schedule_and_fire() {
  Simulator sim;
  return best_rate(g_quick ? 1'000'000 : 4'000'000, [&](std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      sim.schedule_after(1_us, [] {});
      sim.run();
    }
  });
}

double queue_depth_1000() {
  // Sustained throughput with a deep queue: 1000 timers across ~97µs of
  // simulated time, drained in (time, seq) order.
  Simulator sim;
  const std::uint64_t batches = g_quick ? 1'000 : 4'000;
  return best_rate(batches * 1000, [&](std::uint64_t) {
    for (std::uint64_t b = 0; b < batches; ++b) {
      for (int i = 0; i < 1000; ++i) {
        sim.schedule_after(Duration::micros(i % 97), [] {});
      }
      sim.run();
    }
  });
}

double far_future_timers() {
  // Timers a simulated minute out land in the calendar's overflow list and
  // must still drain in order.
  Simulator sim;
  const std::uint64_t batches = g_quick ? 50 : 200;
  return best_rate(batches * 1000, [&](std::uint64_t) {
    for (std::uint64_t b = 0; b < batches; ++b) {
      for (int i = 0; i < 1000; ++i) {
        sim.schedule_after(Duration::seconds(60) + Duration::micros(i % 97),
                           [] {});
      }
      sim.run();
    }
  });
}

double cancelled_timers() {
  // Lazy-deletion cost: schedule + cancel without firing.
  Simulator sim;
  return best_rate(g_quick ? 1'000'000 : 4'000'000, [&](std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const auto id = sim.schedule_after(1_s, [] {});
      sim.cancel(id);
    }
    sim.run();
  });
}

Task<void> hop(Simulator& s, int n) {
  for (int i = 0; i < n; ++i) co_await s.delay(1_us);
}

double delay_hops() {
  Simulator sim;
  const std::uint64_t spawns = g_quick ? 10'000 : 40'000;
  return best_rate(spawns * 100, [&](std::uint64_t) {
    for (std::uint64_t i = 0; i < spawns; ++i) {
      sim.spawn(hop(sim, 100));
      sim.run();
    }
  });
}

Task<int> leaf() { co_return 1; }
Task<int> chain(int depth) {
  if (depth == 0) co_return co_await leaf();
  co_return co_await chain(depth - 1);
}

double nested_await_32() {
  Simulator sim;
  const std::uint64_t spawns = g_quick ? 30'000 : 120'000;
  return best_rate(spawns * 32, [&](std::uint64_t) {
    int sum = 0;
    for (std::uint64_t i = 0; i < spawns; ++i) {
      sim.spawn([](int& s) -> Task<void> { s += co_await chain(32); }(sum));
      sim.run();
    }
    g_sink = g_sink + static_cast<std::uint64_t>(sum);
  });
}

double channel_handoff() {
  // One item through a capacity-1 channel: send + notify + recv.
  Simulator sim;
  Channel<int> ch{sim, 1};
  return best_rate(g_quick ? 100'000 : 400'000, [&](std::uint64_t ops) {
    std::size_t items = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      sim.spawn([](Channel<int>& c) -> Task<void> { co_await c.send(1); }(ch));
      sim.spawn([](Channel<int>& c, std::size_t& n) -> Task<void> {
        const auto v = co_await c.recv();
        n += v.has_value();
      }(ch, items));
      sim.run();
    }
    g_sink = g_sink + items;
  });
}

double notifier_wake() {
  Simulator sim;
  Notifier n{sim};
  return best_rate(g_quick ? 200'000 : 800'000, [&](std::uint64_t ops) {
    std::size_t wakes = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
      sim.spawn([](Notifier& nn, std::size_t& w) -> Task<void> {
        co_await nn.wait();
        ++w;
      }(n, wakes));
      sim.run();
      n.notify_all();
      sim.run();
    }
    g_sink = g_sink + wakes;
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a{argv[i]};
    if (a == "--quick") {
      g_quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  vmig::bench::header("simcore micro",
                      "event-queue and coroutine kernel throughput");

  struct Row {
    const char* metric;
    const char* key;
    double ops;
  };
  std::vector<Row> rows;
  rows.push_back({"schedule+fire (ops/s)", "schedule_fire_ops_per_sec",
                  schedule_and_fire()});
  rows.push_back({"queue depth 1000 (ops/s)", "depth1000_ops_per_sec",
                  queue_depth_1000()});
  rows.push_back({"far-future timers (ops/s)", "far_future_ops_per_sec",
                  far_future_timers()});
  rows.push_back({"schedule+cancel (ops/s)", "cancel_ops_per_sec",
                  cancelled_timers()});
  rows.push_back({"coroutine delay hops (ops/s)", "delay_hops_ops_per_sec",
                  delay_hops()});
  rows.push_back({"nested await depth 32 (ops/s)", "nested_await_ops_per_sec",
                  nested_await_32()});
  rows.push_back({"channel handoff (ops/s)", "channel_handoff_ops_per_sec",
                  channel_handoff()});
  rows.push_back({"notifier wake (ops/s)", "notifier_wake_ops_per_sec",
                  notifier_wake()});

  vmig::bench::section("throughput (best of repeated runs)");
  for (const auto& r : rows) {
    std::printf("  %-32s %14.0f\n", r.metric, r.ops);
  }

  if (!json_out.empty()) {
    std::vector<std::pair<std::string, double>> kv;
    for (const auto& r : rows) {
      kv.emplace_back(std::string{"simcore."} + r.key, r.ops);
    }
    if (!vmig::bench::write_flat_json(json_out.c_str(), kv)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 2;
    }
    std::printf("  metrics -> %s\n", json_out.c_str());
  }
  return 0;
}
