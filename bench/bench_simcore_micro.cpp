// Micro-benchmarks (google-benchmark) for the simulation kernel itself:
// raw event throughput, coroutine spawn/await cost, and channel handoff.
// These bound how large an experiment the simulator can run per wall-second
// (the paper-scale Table I run is ~400k events).

#include <benchmark/benchmark.h>

#include "simcore/channel.hpp"
#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"

namespace {

using namespace vmig::sim;
using namespace vmig::sim::literals;

void BM_ScheduleAndFire(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.schedule_after(1_us, [] {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleAndFire);

void BM_EventQueueDepth1000(benchmark::State& state) {
  // Sustained throughput with a deep heap.
  Simulator sim;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(Duration::micros(i % 97), [] {});
    }
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueDepth1000);

void BM_CancelledTimers(benchmark::State& state) {
  // Lazy-deletion cost: schedule + cancel without firing.
  Simulator sim;
  for (auto _ : state) {
    const auto id = sim.schedule_after(1_s, [] {});
    sim.cancel(id);
  }
  sim.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelledTimers);

Task<void> hop(Simulator& s, int n) {
  for (int i = 0; i < n; ++i) co_await s.delay(1_us);
}

void BM_CoroutineDelayHops(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.spawn(hop(sim, 100));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CoroutineDelayHops);

Task<int> leaf() { co_return 1; }
Task<int> chain(int depth) {
  if (depth == 0) co_return co_await leaf();
  co_return co_await chain(depth - 1);
}

void BM_NestedAwaitDepth32(benchmark::State& state) {
  Simulator sim;
  int sum = 0;
  for (auto _ : state) {
    sim.spawn([](int& sum) -> Task<void> {
      sum += co_await chain(32);
    }(sum));
    sim.run();
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_NestedAwaitDepth32);

void BM_ChannelHandoff(benchmark::State& state) {
  // One item through a capacity-1 channel: send + notify + recv.
  Simulator sim;
  Channel<int> ch{sim, 1};
  std::size_t items = 0;
  for (auto _ : state) {
    sim.spawn([](Channel<int>& ch) -> Task<void> {
      co_await ch.send(1);
    }(ch));
    sim.spawn([](Channel<int>& ch, std::size_t& n) -> Task<void> {
      const auto v = co_await ch.recv();
      n += v.has_value();
    }(ch, items));
    sim.run();
  }
  benchmark::DoNotOptimize(items);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelHandoff);

void BM_NotifierWake(benchmark::State& state) {
  Simulator sim;
  Notifier n{sim};
  std::size_t wakes = 0;
  for (auto _ : state) {
    sim.spawn([](Notifier& n, std::size_t& w) -> Task<void> {
      co_await n.wait();
      ++w;
    }(n, wakes));
    sim.run();
    n.notify_all();
    sim.run();
  }
  benchmark::DoNotOptimize(wakes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NotifierWake);

}  // namespace

BENCHMARK_MAIN();
