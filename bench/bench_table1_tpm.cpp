// Reproduces Table I (paper §VI-C): TPM whole-system migration of the three
// evaluation workloads on the Gigabit-LAN / SATA2 testbed — total migration
// time, downtime, and amount of migrated data.
//
// Paper values: total 796 / 798 / 957 s; downtime 60 / 62 / 110 ms; data
// 39097 / 39072 / 40934 MB for dynamic-web / low-latency / diabolical.
// (The paper's "amount of migrated data" counts disk data: web is 39070 MB
// of VBD + 27 MB of retransfer; our disk-data column compares against it.)

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/streaming.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct Row {
  const char* name;
  double paper_total_s;
  double paper_down_ms;
  double paper_data_mb;
  core::MigrationReport rep;
};

double disk_data_mib(const core::MigrationReport& r) {
  return static_cast<double>(r.bytes_disk_first_pass + r.bytes_disk_retransfer +
                             r.bytes_postcopy_push + r.bytes_postcopy_pull) /
         (1024.0 * 1024.0);
}

struct WlOutcome {
  core::MigrationReport rep;
  std::uint64_t stream_stalls = 0;  ///< streaming only: missed deadlines
};

WlOutcome run_workload(int which) {
  sim::Simulator sim;
  scenario::Testbed tb{sim};
  tb.prefill_disk();
  std::unique_ptr<workload::Workload> wl;
  switch (which) {
    case 0:
      wl = std::make_unique<workload::WebServerWorkload>(sim, tb.vm(), 42);
      break;
    case 1:
      wl = std::make_unique<workload::StreamingWorkload>(sim, tb.vm(), 42);
      break;
    default:
      wl = std::make_unique<workload::DiabolicalWorkload>(sim, tb.vm(), 42);
      break;
  }
  WlOutcome out;
  out.rep = tb.run_tpm(wl.get(), 60_s, 30_s, tb.paper_migration_config());
  if (which == 1) {
    out.stream_stalls =
        static_cast<workload::StreamingWorkload*>(wl.get())->stalls();
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Table I", "TPM results for different workloads");

  Row rows[] = {
      {"Dynamic web server", 796.0, 60.0, 39097.0, {}},
      {"Low latency server", 798.0, 62.0, 39072.0, {}},
      {"Diabolical server", 957.0, 110.0, 40934.0, {}},
  };
  std::uint64_t stream_stalls = 0;
  for (int i = 0; i < 3; ++i) {
    const auto outcome = run_workload(i);
    rows[i].rep = outcome.rep;
    if (i == 1) stream_stalls = outcome.stream_stalls;
  }

  std::printf("\n%-22s | %-21s | %-21s | %-23s\n", "", "Total migration (s)",
              "Downtime (ms)", "Disk data moved (MB)");
  std::printf("%-22s | %9s %10s | %9s %10s | %10s %11s\n", "workload", "paper",
              "measured", "paper", "measured", "paper", "measured");
  for (const auto& r : rows) {
    std::printf("%-22s | %9.1f %10.1f | %9.0f %10.1f | %10.0f %11.1f\n",
                r.name, r.paper_total_s, r.rep.total_time().to_seconds(),
                r.paper_down_ms, r.rep.downtime().to_millis(),
                r.paper_data_mb, disk_data_mib(r.rep));
  }

  bench::section("detail");
  for (const auto& r : rows) {
    std::printf("%-22s iters=%d first=%llu retx=%llu residual=%llu "
                "push=%llu pull=%llu mem_resid=%llu pages "
                "total_data=%.1f MiB consistent=%s/%s\n",
                r.name, r.rep.disk_iterations,
                static_cast<unsigned long long>(r.rep.blocks_first_pass),
                static_cast<unsigned long long>(r.rep.blocks_retransferred),
                static_cast<unsigned long long>(r.rep.residual_dirty_blocks),
                static_cast<unsigned long long>(r.rep.blocks_pushed),
                static_cast<unsigned long long>(r.rep.blocks_pulled),
                static_cast<unsigned long long>(r.rep.pages_residual),
                r.rep.total_mib(), r.rep.disk_consistent ? "disk-ok" : "DISK-BAD",
                r.rep.memory_consistent ? "mem-ok" : "MEM-BAD");
  }

  bench::section("shape checks");
  const bool order_ok = rows[2].rep.total_time() > rows[0].rep.total_time() &&
                        rows[2].rep.total_time() > rows[1].rep.total_time();
  std::printf("  diabolical slowest:            %s\n", order_ok ? "yes" : "NO");
  std::printf("  all downtimes < 1 s:           %s\n",
              (rows[0].rep.downtime() < 1_s && rows[1].rep.downtime() < 1_s &&
               rows[2].rep.downtime() < 1_s)
                  ? "yes"
                  : "NO");
  std::printf("  data just above VBD size:      %s\n",
              (disk_data_mib(rows[0].rep) > 39070 &&
               disk_data_mib(rows[0].rep) < 39070 * 1.03)
                  ? "yes"
                  : "NO");
  std::printf("  video played fluently:         %s (%llu stalled chunks; "
              "paper: \"no observable intermission\")\n",
              stream_stalls == 0 ? "yes" : "NO",
              static_cast<unsigned long long>(stream_stalls));
  return 0;
}
