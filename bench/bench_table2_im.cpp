// Reproduces Table II (paper §VI-C-4): Incremental Migration back to the
// source after the primary TPM migration. Only the blocks dirtied at the
// destination (tracked in the post-resume block-bitmap, BM_3) move back.
//
// Paper values (storage migration time / amount of migrated data):
//   dynamic web    TPM 796.1 s, 39097 MB   ->  IM 1.0 s,  52.5 MB
//   low latency    TPM 798.0 s, 39072 MB   ->  IM 0.6 s,   5.5 MB
//   diabolical     TPM 957 s,   40934 MB   ->  IM 17 s,   911.4 MB
//
// Note on comparability: memory is always re-transferred in full (512 MB);
// the paper's Table II counts disk data and what is evidently the storage
// phase time, so this bench reports those, plus our totals.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/streaming.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

double disk_data_mib(const core::MigrationReport& r) {
  return static_cast<double>(r.bytes_disk_first_pass + r.bytes_disk_retransfer +
                             r.bytes_postcopy_push + r.bytes_postcopy_pull) /
         (1024.0 * 1024.0);
}

struct Case {
  const char* name;
  double paper_tpm_s, paper_tpm_mb, paper_im_s, paper_im_mb;
  core::MigrationReport primary, incremental;
};

void run_case(Case& c, int which) {
  sim::Simulator sim;
  scenario::Testbed tb{sim};
  tb.prefill_disk();
  std::unique_ptr<workload::Workload> wl;
  switch (which) {
    case 0:
      wl = std::make_unique<workload::WebServerWorkload>(sim, tb.vm(), 42);
      break;
    case 1:
      wl = std::make_unique<workload::StreamingWorkload>(sim, tb.vm(), 42);
      break;
    default: {
      // Bonnie++'s scratch file in the paper's IM run covers ~911 MB.
      workload::DiabolicalParams p;
      p.file_mib = 900;
      wl = std::make_unique<workload::DiabolicalWorkload>(sim, tb.vm(), 42, p);
      break;
    }
  }
  // Dwell at the destination long enough for the workload to dirty its
  // steady-state set (the paper ran the benchmark to completion there).
  const auto dwell = which == 2 ? 300_s : 1500_s;
  std::tie(c.primary, c.incremental) = tb.run_tpm_then_im(
      wl.get(), /*warmup=*/60_s, dwell, /*post=*/30_s,
      tb.paper_migration_config());
}

}  // namespace

int main() {
  bench::header("Table II", "IM results compared with primary TPM");

  Case cases[] = {
      {"Dynamic web server", 796.1, 39097, 1.0, 52.5, {}, {}},
      {"Low-latency server", 798.0, 39072, 0.6, 5.5, {}, {}},
      {"Diabolical server", 957.0, 40934, 17.0, 911.4, {}, {}},
  };
  for (int i = 0; i < 3; ++i) run_case(cases[i], i);

  std::printf("\n%-20s | %-25s | %-25s\n", "",
              "migration time (s)", "disk data moved (MB)");
  std::printf("%-20s | %11s %13s | %11s %13s\n", "workload", "paper",
              "measured", "paper", "measured");
  for (const auto& c : cases) {
    std::printf("%-20s |\n", c.name);
    std::printf("  %-18s | %11.1f %13.1f | %11.1f %13.1f\n", "primary TPM",
                c.paper_tpm_s, c.primary.total_time().to_seconds(),
                c.paper_tpm_mb, disk_data_mib(c.primary));
    std::printf("  %-18s | %11.1f %13.1f | %11.1f %13.1f\n",
                "IM (storage phase)", c.paper_im_s,
                c.incremental.storage_time().to_seconds(), c.paper_im_mb,
                disk_data_mib(c.incremental));
    std::printf("  %-18s | %11s %13.1f | %11s %13.1f\n", "IM (whole system)",
                "-", c.incremental.total_time().to_seconds(), "-",
                c.incremental.total_mib());
  }

  bench::section("shape checks");
  for (const auto& c : cases) {
    const double data_reduction =
        disk_data_mib(c.primary) / std::max(disk_data_mib(c.incremental), 1e-9);
    std::printf("  %-20s incremental=%s data_reduction=x%.0f "
                "consistent=%s first_pass=%llu blocks\n",
                c.name, c.incremental.incremental ? "yes" : "NO",
                data_reduction, c.incremental.disk_consistent ? "ok" : "FAIL",
                static_cast<unsigned long long>(c.incremental.blocks_first_pass));
  }
  return 0;
}
