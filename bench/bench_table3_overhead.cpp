// Reproduces Table III (paper §VI-C-5): I/O performance with every write
// intercepted and marked in the block-bitmap (the tracking left running
// after migration so a later IM is possible) versus untracked.
//
// Paper (KB/s):              putc     write(2)   rewrite
//   normal                  47740      96122      26125
//   with writes tracked     47604      95569      25887    (< 1% overhead)

#include <cstdio>

#include "bench_util.hpp"
#include "hypervisor/host.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct PhaseRates {
  double putc = 0, write2 = 0, rewrite = 0, getc = 0;
};

PhaseRates run(bool tracked) {
  sim::Simulator sim;
  hv::Host host{sim, "h", storage::Geometry::from_mib(8192),
                scenario::TestbedConfig::paper_disk()};
  vm::Domain dom{sim, 1, "guest", 512};
  host.attach_domain(dom);
  if (tracked) {
    host.backend().set_tracking_overhead(
        core::MigrationConfig{}.tracking_overhead);
    host.backend().start_write_tracking(core::BitmapKind::kFlat);
  }
  // Run a fixed number of complete cycles so both configurations do the
  // exact same work; the rate is then bytes / time-spent, and the only
  // difference between runs is the per-write tracking cost.
  workload::DiabolicalParams p;
  p.max_cycles = 4;
  workload::DiabolicalWorkload bonnie{sim, dom, 42, p};
  bonnie.start();
  sim.run_for(3600_s);
  bonnie.finish_phase_metrics();
  PhaseRates r;
  r.putc = bonnie.phase_rate("putc") / 1024.0;
  r.write2 = bonnie.phase_rate("write2") / 1024.0;
  r.rewrite = bonnie.phase_rate("rewrite") / 1024.0;
  r.getc = bonnie.phase_rate("getc") / 1024.0;
  return r;
}

}  // namespace

int main() {
  bench::header("Table III",
                "I/O performance with block-bitmap write tracking (KB/s)");

  const PhaseRates normal = run(false);
  const PhaseRates tracked = run(true);

  std::printf("\n%-22s %10s %10s %10s\n", "", "putc", "write(2)", "rewrite");
  std::printf("%-22s %10.0f %10.0f %10.0f   (paper: 47740 96122 26125)\n",
              "normal", normal.putc, normal.write2, normal.rewrite);
  std::printf("%-22s %10.0f %10.0f %10.0f   (paper: 47604 95569 25887)\n",
              "with writes tracked", tracked.putc, tracked.write2,
              tracked.rewrite);

  bench::section("overhead");
  const auto pct = [](double a, double b) { return (1.0 - b / a) * 100.0; };
  std::printf("  putc     overhead: %5.2f%%   (paper: 0.28%%)\n",
              pct(normal.putc, tracked.putc));
  std::printf("  write(2) overhead: %5.2f%%   (paper: 0.58%%)\n",
              pct(normal.write2, tracked.write2));
  std::printf("  rewrite  overhead: %5.2f%%   (paper: 0.91%%)\n",
              pct(normal.rewrite, tracked.rewrite));
  const bool under_1pct = pct(normal.putc, tracked.putc) < 1.0 &&
                          pct(normal.write2, tracked.write2) < 1.0 &&
                          pct(normal.rewrite, tracked.rewrite) < 1.0;
  std::printf("  all phases under 1%% (paper's claim): %s\n",
              under_1pct ? "yes" : "NO");
  return 0;
}
