#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "simcore/stats.hpp"
#include "simcore/time.hpp"

namespace vmig::bench {

inline void header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

inline void section(const char* name) { std::printf("\n--- %s ---\n", name); }

/// Flat `{"metric": value}` JSON for the CI bench-regression gate. Keys are
/// emitted in the order given; values in fixed notation so byte-identical
/// runs produce byte-identical files.
inline bool write_flat_json(
    const char* path, const std::vector<std::pair<std::string, double>>& kv) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < kv.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6f%s\n", kv[i].first.c_str(), kv[i].second,
                 i + 1 < kv.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One paper-vs-measured comparison row.
inline void paper_vs(const char* metric, double paper, double measured,
                     const char* unit) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-34s paper=%10.1f  measured=%10.1f %-6s (x%.2f)\n", metric,
              paper, measured, unit, ratio);
}

inline void measured_only(const char* metric, double value, const char* unit) {
  std::printf("  %-34s                 measured=%10.1f %-6s\n", metric, value,
              unit);
}

/// Render a time series as a fixed-width ASCII chart (value vs time), with
/// optional vertical markers (e.g. migration start/end).
inline void ascii_chart(const sim::TimeSeries& ts, const char* y_label,
                        double y_scale, std::vector<double> markers_s = {},
                        int width = 72, int height = 14) {
  if (ts.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  const double t0 = ts.points().front().t.to_seconds();
  const double t1 = ts.points().back().t.to_seconds();
  const double span = std::max(t1 - t0, 1e-9);
  // Bucket means per column.
  std::vector<double> sum(static_cast<std::size_t>(width), 0.0);
  std::vector<int> cnt(static_cast<std::size_t>(width), 0);
  double vmax = 0;
  for (const auto& p : ts.points()) {
    auto col = static_cast<std::size_t>((p.t.to_seconds() - t0) / span *
                                        (width - 1));
    col = std::min(col, static_cast<std::size_t>(width - 1));
    sum[col] += p.value * y_scale;
    cnt[col] += 1;
  }
  std::vector<double> val(static_cast<std::size_t>(width), 0.0);
  for (std::size_t c = 0; c < val.size(); ++c) {
    if (cnt[c] > 0) val[c] = sum[c] / cnt[c];
    vmax = std::max(vmax, val[c]);
  }
  if (vmax <= 0) vmax = 1;
  std::vector<int> marker_cols;
  for (const double m : markers_s) {
    if (m >= t0 && m <= t1) {
      marker_cols.push_back(static_cast<int>((m - t0) / span * (width - 1)));
    }
  }
  for (int row = height; row >= 1; --row) {
    const double level = vmax * row / height;
    std::printf("  %8.1f |", level);
    for (int c = 0; c < width; ++c) {
      const bool mark =
          std::find(marker_cols.begin(), marker_cols.end(), c) != marker_cols.end();
      if (val[static_cast<std::size_t>(c)] >= level - vmax / (2.0 * height)) {
        std::printf("*");
      } else if (mark) {
        std::printf("|");
      } else {
        std::printf(" ");
      }
    }
    std::printf("\n");
  }
  std::printf("  %8s +", y_label);
  for (int c = 0; c < width; ++c) std::printf("-");
  std::printf("\n  %8s  %-10.0fs%*s%.0fs\n", "", t0, width - 12, "", t1);
}

}  // namespace vmig::bench
