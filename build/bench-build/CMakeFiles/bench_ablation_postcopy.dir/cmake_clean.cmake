file(REMOVE_RECURSE
  "../bench/bench_ablation_postcopy"
  "../bench/bench_ablation_postcopy.pdb"
  "CMakeFiles/bench_ablation_postcopy.dir/bench_ablation_postcopy.cpp.o"
  "CMakeFiles/bench_ablation_postcopy.dir/bench_ablation_postcopy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_postcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
