file(REMOVE_RECURSE
  "../bench/bench_ablation_ratelimit"
  "../bench/bench_ablation_ratelimit.pdb"
  "CMakeFiles/bench_ablation_ratelimit.dir/bench_ablation_ratelimit.cpp.o"
  "CMakeFiles/bench_ablation_ratelimit.dir/bench_ablation_ratelimit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ratelimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
