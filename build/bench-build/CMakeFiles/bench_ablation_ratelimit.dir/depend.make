# Empty dependencies file for bench_ablation_ratelimit.
# This may be replaced when dependencies are built.
