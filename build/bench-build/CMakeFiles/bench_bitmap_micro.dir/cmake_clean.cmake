file(REMOVE_RECURSE
  "../bench/bench_bitmap_micro"
  "../bench/bench_bitmap_micro.pdb"
  "CMakeFiles/bench_bitmap_micro.dir/bench_bitmap_micro.cpp.o"
  "CMakeFiles/bench_bitmap_micro.dir/bench_bitmap_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bitmap_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
