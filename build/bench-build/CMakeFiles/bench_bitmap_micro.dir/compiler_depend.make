# Empty compiler generated dependencies file for bench_bitmap_micro.
# This may be replaced when dependencies are built.
