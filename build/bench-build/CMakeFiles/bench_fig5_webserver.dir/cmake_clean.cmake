file(REMOVE_RECURSE
  "../bench/bench_fig5_webserver"
  "../bench/bench_fig5_webserver.pdb"
  "CMakeFiles/bench_fig5_webserver.dir/bench_fig5_webserver.cpp.o"
  "CMakeFiles/bench_fig5_webserver.dir/bench_fig5_webserver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
