# Empty dependencies file for bench_fig5_webserver.
# This may be replaced when dependencies are built.
