file(REMOVE_RECURSE
  "../bench/bench_fig6_bonnie"
  "../bench/bench_fig6_bonnie.pdb"
  "CMakeFiles/bench_fig6_bonnie.dir/bench_fig6_bonnie.cpp.o"
  "CMakeFiles/bench_fig6_bonnie.dir/bench_fig6_bonnie.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bonnie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
