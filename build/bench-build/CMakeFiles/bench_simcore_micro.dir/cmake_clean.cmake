file(REMOVE_RECURSE
  "../bench/bench_simcore_micro"
  "../bench/bench_simcore_micro.pdb"
  "CMakeFiles/bench_simcore_micro.dir/bench_simcore_micro.cpp.o"
  "CMakeFiles/bench_simcore_micro.dir/bench_simcore_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simcore_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
