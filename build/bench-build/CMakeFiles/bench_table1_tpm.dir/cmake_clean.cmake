file(REMOVE_RECURSE
  "../bench/bench_table1_tpm"
  "../bench/bench_table1_tpm.pdb"
  "CMakeFiles/bench_table1_tpm.dir/bench_table1_tpm.cpp.o"
  "CMakeFiles/bench_table1_tpm.dir/bench_table1_tpm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
