# Empty dependencies file for bench_table1_tpm.
# This may be replaced when dependencies are built.
