file(REMOVE_RECURSE
  "../bench/bench_table2_im"
  "../bench/bench_table2_im.pdb"
  "CMakeFiles/bench_table2_im.dir/bench_table2_im.cpp.o"
  "CMakeFiles/bench_table2_im.dir/bench_table2_im.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
