file(REMOVE_RECURSE
  "CMakeFiles/datacenter_evacuation.dir/datacenter_evacuation.cpp.o"
  "CMakeFiles/datacenter_evacuation.dir/datacenter_evacuation.cpp.o.d"
  "datacenter_evacuation"
  "datacenter_evacuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_evacuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
