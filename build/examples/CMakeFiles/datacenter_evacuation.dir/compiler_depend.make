# Empty compiler generated dependencies file for datacenter_evacuation.
# This may be replaced when dependencies are built.
