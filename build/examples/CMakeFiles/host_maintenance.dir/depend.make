# Empty dependencies file for host_maintenance.
# This may be replaced when dependencies are built.
