file(REMOVE_RECURSE
  "CMakeFiles/io_intensive.dir/io_intensive.cpp.o"
  "CMakeFiles/io_intensive.dir/io_intensive.cpp.o.d"
  "io_intensive"
  "io_intensive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_intensive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
