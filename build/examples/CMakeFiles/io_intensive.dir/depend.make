# Empty dependencies file for io_intensive.
# This may be replaced when dependencies are built.
