
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/vmig_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vmig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/vmig_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vmig_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vmig_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vmig_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vmig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmig_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/vmig_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
