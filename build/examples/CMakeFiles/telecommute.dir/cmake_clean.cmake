file(REMOVE_RECURSE
  "CMakeFiles/telecommute.dir/telecommute.cpp.o"
  "CMakeFiles/telecommute.dir/telecommute.cpp.o.d"
  "telecommute"
  "telecommute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecommute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
