# Empty compiler generated dependencies file for telecommute.
# This may be replaced when dependencies are built.
