# Empty dependencies file for telecommute.
# This may be replaced when dependencies are built.
