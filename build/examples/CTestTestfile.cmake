# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_host_maintenance "/root/repo/build/examples/host_maintenance")
set_tests_properties(example_host_maintenance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_telecommute "/root/repo/build/examples/telecommute")
set_tests_properties(example_telecommute PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_io_intensive "/root/repo/build/examples/io_intensive")
set_tests_properties(example_io_intensive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter_evacuation "/root/repo/build/examples/datacenter_evacuation")
set_tests_properties(example_datacenter_evacuation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
