file(REMOVE_RECURSE
  "CMakeFiles/vmig_baselines.dir/baseline_report.cpp.o"
  "CMakeFiles/vmig_baselines.dir/baseline_report.cpp.o.d"
  "CMakeFiles/vmig_baselines.dir/delta_forward.cpp.o"
  "CMakeFiles/vmig_baselines.dir/delta_forward.cpp.o.d"
  "CMakeFiles/vmig_baselines.dir/freeze_and_copy.cpp.o"
  "CMakeFiles/vmig_baselines.dir/freeze_and_copy.cpp.o.d"
  "CMakeFiles/vmig_baselines.dir/on_demand.cpp.o"
  "CMakeFiles/vmig_baselines.dir/on_demand.cpp.o.d"
  "CMakeFiles/vmig_baselines.dir/shared_storage.cpp.o"
  "CMakeFiles/vmig_baselines.dir/shared_storage.cpp.o.d"
  "libvmig_baselines.a"
  "libvmig_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
