file(REMOVE_RECURSE
  "libvmig_baselines.a"
)
