# Empty compiler generated dependencies file for vmig_baselines.
# This may be replaced when dependencies are built.
