
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_bitmap.cpp" "src/core/CMakeFiles/vmig_core.dir/block_bitmap.cpp.o" "gcc" "src/core/CMakeFiles/vmig_core.dir/block_bitmap.cpp.o.d"
  "/root/repo/src/core/disruption.cpp" "src/core/CMakeFiles/vmig_core.dir/disruption.cpp.o" "gcc" "src/core/CMakeFiles/vmig_core.dir/disruption.cpp.o.d"
  "/root/repo/src/core/layered_bitmap.cpp" "src/core/CMakeFiles/vmig_core.dir/layered_bitmap.cpp.o" "gcc" "src/core/CMakeFiles/vmig_core.dir/layered_bitmap.cpp.o.d"
  "/root/repo/src/core/migration_metrics.cpp" "src/core/CMakeFiles/vmig_core.dir/migration_metrics.cpp.o" "gcc" "src/core/CMakeFiles/vmig_core.dir/migration_metrics.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/vmig_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/vmig_core.dir/report_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/vmig_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmig_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmig_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
