file(REMOVE_RECURSE
  "CMakeFiles/vmig_core.dir/block_bitmap.cpp.o"
  "CMakeFiles/vmig_core.dir/block_bitmap.cpp.o.d"
  "CMakeFiles/vmig_core.dir/disruption.cpp.o"
  "CMakeFiles/vmig_core.dir/disruption.cpp.o.d"
  "CMakeFiles/vmig_core.dir/layered_bitmap.cpp.o"
  "CMakeFiles/vmig_core.dir/layered_bitmap.cpp.o.d"
  "CMakeFiles/vmig_core.dir/migration_metrics.cpp.o"
  "CMakeFiles/vmig_core.dir/migration_metrics.cpp.o.d"
  "CMakeFiles/vmig_core.dir/report_io.cpp.o"
  "CMakeFiles/vmig_core.dir/report_io.cpp.o.d"
  "libvmig_core.a"
  "libvmig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
