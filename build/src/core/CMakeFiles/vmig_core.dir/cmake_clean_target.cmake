file(REMOVE_RECURSE
  "libvmig_core.a"
)
