# Empty dependencies file for vmig_core.
# This may be replaced when dependencies are built.
