file(REMOVE_RECURSE
  "CMakeFiles/vmig_migration.dir/im_directory.cpp.o"
  "CMakeFiles/vmig_migration.dir/im_directory.cpp.o.d"
  "CMakeFiles/vmig_migration.dir/migration_manager.cpp.o"
  "CMakeFiles/vmig_migration.dir/migration_manager.cpp.o.d"
  "CMakeFiles/vmig_migration.dir/post_copy.cpp.o"
  "CMakeFiles/vmig_migration.dir/post_copy.cpp.o.d"
  "CMakeFiles/vmig_migration.dir/tpm.cpp.o"
  "CMakeFiles/vmig_migration.dir/tpm.cpp.o.d"
  "libvmig_migration.a"
  "libvmig_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
