file(REMOVE_RECURSE
  "libvmig_migration.a"
)
