# Empty dependencies file for vmig_migration.
# This may be replaced when dependencies are built.
