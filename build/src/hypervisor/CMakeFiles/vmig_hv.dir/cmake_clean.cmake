file(REMOVE_RECURSE
  "CMakeFiles/vmig_hv.dir/checkpoint.cpp.o"
  "CMakeFiles/vmig_hv.dir/checkpoint.cpp.o.d"
  "CMakeFiles/vmig_hv.dir/host.cpp.o"
  "CMakeFiles/vmig_hv.dir/host.cpp.o.d"
  "libvmig_hv.a"
  "libvmig_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
