file(REMOVE_RECURSE
  "libvmig_hv.a"
)
