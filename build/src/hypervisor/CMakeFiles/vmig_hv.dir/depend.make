# Empty dependencies file for vmig_hv.
# This may be replaced when dependencies are built.
