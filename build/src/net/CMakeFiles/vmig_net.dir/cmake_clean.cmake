file(REMOVE_RECURSE
  "CMakeFiles/vmig_net.dir/link.cpp.o"
  "CMakeFiles/vmig_net.dir/link.cpp.o.d"
  "libvmig_net.a"
  "libvmig_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
