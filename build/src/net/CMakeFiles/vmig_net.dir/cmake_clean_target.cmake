file(REMOVE_RECURSE
  "libvmig_net.a"
)
