# Empty compiler generated dependencies file for vmig_net.
# This may be replaced when dependencies are built.
