file(REMOVE_RECURSE
  "CMakeFiles/vmig_scenario.dir/testbed.cpp.o"
  "CMakeFiles/vmig_scenario.dir/testbed.cpp.o.d"
  "libvmig_scenario.a"
  "libvmig_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
