file(REMOVE_RECURSE
  "libvmig_scenario.a"
)
