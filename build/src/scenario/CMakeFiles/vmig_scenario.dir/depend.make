# Empty dependencies file for vmig_scenario.
# This may be replaced when dependencies are built.
