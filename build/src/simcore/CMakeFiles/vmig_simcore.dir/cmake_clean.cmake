file(REMOVE_RECURSE
  "CMakeFiles/vmig_simcore.dir/log.cpp.o"
  "CMakeFiles/vmig_simcore.dir/log.cpp.o.d"
  "CMakeFiles/vmig_simcore.dir/notifier.cpp.o"
  "CMakeFiles/vmig_simcore.dir/notifier.cpp.o.d"
  "CMakeFiles/vmig_simcore.dir/rng.cpp.o"
  "CMakeFiles/vmig_simcore.dir/rng.cpp.o.d"
  "CMakeFiles/vmig_simcore.dir/simulator.cpp.o"
  "CMakeFiles/vmig_simcore.dir/simulator.cpp.o.d"
  "CMakeFiles/vmig_simcore.dir/stats.cpp.o"
  "CMakeFiles/vmig_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/vmig_simcore.dir/time.cpp.o"
  "CMakeFiles/vmig_simcore.dir/time.cpp.o.d"
  "libvmig_simcore.a"
  "libvmig_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
