file(REMOVE_RECURSE
  "libvmig_simcore.a"
)
