# Empty dependencies file for vmig_simcore.
# This may be replaced when dependencies are built.
