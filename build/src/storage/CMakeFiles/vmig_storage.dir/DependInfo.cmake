
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_model.cpp" "src/storage/CMakeFiles/vmig_storage.dir/disk_model.cpp.o" "gcc" "src/storage/CMakeFiles/vmig_storage.dir/disk_model.cpp.o.d"
  "/root/repo/src/storage/disk_scheduler.cpp" "src/storage/CMakeFiles/vmig_storage.dir/disk_scheduler.cpp.o" "gcc" "src/storage/CMakeFiles/vmig_storage.dir/disk_scheduler.cpp.o.d"
  "/root/repo/src/storage/virtual_disk.cpp" "src/storage/CMakeFiles/vmig_storage.dir/virtual_disk.cpp.o" "gcc" "src/storage/CMakeFiles/vmig_storage.dir/virtual_disk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/vmig_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
