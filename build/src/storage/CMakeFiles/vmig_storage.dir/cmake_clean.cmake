file(REMOVE_RECURSE
  "CMakeFiles/vmig_storage.dir/disk_model.cpp.o"
  "CMakeFiles/vmig_storage.dir/disk_model.cpp.o.d"
  "CMakeFiles/vmig_storage.dir/disk_scheduler.cpp.o"
  "CMakeFiles/vmig_storage.dir/disk_scheduler.cpp.o.d"
  "CMakeFiles/vmig_storage.dir/virtual_disk.cpp.o"
  "CMakeFiles/vmig_storage.dir/virtual_disk.cpp.o.d"
  "libvmig_storage.a"
  "libvmig_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
