file(REMOVE_RECURSE
  "libvmig_storage.a"
)
