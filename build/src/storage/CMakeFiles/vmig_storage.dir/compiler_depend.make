# Empty compiler generated dependencies file for vmig_storage.
# This may be replaced when dependencies are built.
