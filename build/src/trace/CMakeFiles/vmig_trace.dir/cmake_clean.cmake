file(REMOVE_RECURSE
  "CMakeFiles/vmig_trace.dir/io_trace.cpp.o"
  "CMakeFiles/vmig_trace.dir/io_trace.cpp.o.d"
  "libvmig_trace.a"
  "libvmig_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
