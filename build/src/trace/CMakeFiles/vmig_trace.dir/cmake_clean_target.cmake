file(REMOVE_RECURSE
  "libvmig_trace.a"
)
