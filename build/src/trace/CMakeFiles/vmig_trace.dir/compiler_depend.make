# Empty compiler generated dependencies file for vmig_trace.
# This may be replaced when dependencies are built.
