
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/blk_backend.cpp" "src/vm/CMakeFiles/vmig_vm.dir/blk_backend.cpp.o" "gcc" "src/vm/CMakeFiles/vmig_vm.dir/blk_backend.cpp.o.d"
  "/root/repo/src/vm/domain.cpp" "src/vm/CMakeFiles/vmig_vm.dir/domain.cpp.o" "gcc" "src/vm/CMakeFiles/vmig_vm.dir/domain.cpp.o.d"
  "/root/repo/src/vm/guest_memory.cpp" "src/vm/CMakeFiles/vmig_vm.dir/guest_memory.cpp.o" "gcc" "src/vm/CMakeFiles/vmig_vm.dir/guest_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/vmig_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmig_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vmig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmig_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
