file(REMOVE_RECURSE
  "CMakeFiles/vmig_vm.dir/blk_backend.cpp.o"
  "CMakeFiles/vmig_vm.dir/blk_backend.cpp.o.d"
  "CMakeFiles/vmig_vm.dir/domain.cpp.o"
  "CMakeFiles/vmig_vm.dir/domain.cpp.o.d"
  "CMakeFiles/vmig_vm.dir/guest_memory.cpp.o"
  "CMakeFiles/vmig_vm.dir/guest_memory.cpp.o.d"
  "libvmig_vm.a"
  "libvmig_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
