file(REMOVE_RECURSE
  "libvmig_vm.a"
)
