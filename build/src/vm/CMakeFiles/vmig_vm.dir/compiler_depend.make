# Empty compiler generated dependencies file for vmig_vm.
# This may be replaced when dependencies are built.
