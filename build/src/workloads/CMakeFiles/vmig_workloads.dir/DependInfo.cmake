
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/diabolical.cpp" "src/workloads/CMakeFiles/vmig_workloads.dir/diabolical.cpp.o" "gcc" "src/workloads/CMakeFiles/vmig_workloads.dir/diabolical.cpp.o.d"
  "/root/repo/src/workloads/kernel_build.cpp" "src/workloads/CMakeFiles/vmig_workloads.dir/kernel_build.cpp.o" "gcc" "src/workloads/CMakeFiles/vmig_workloads.dir/kernel_build.cpp.o.d"
  "/root/repo/src/workloads/memory_hog.cpp" "src/workloads/CMakeFiles/vmig_workloads.dir/memory_hog.cpp.o" "gcc" "src/workloads/CMakeFiles/vmig_workloads.dir/memory_hog.cpp.o.d"
  "/root/repo/src/workloads/streaming.cpp" "src/workloads/CMakeFiles/vmig_workloads.dir/streaming.cpp.o" "gcc" "src/workloads/CMakeFiles/vmig_workloads.dir/streaming.cpp.o.d"
  "/root/repo/src/workloads/trace_replay.cpp" "src/workloads/CMakeFiles/vmig_workloads.dir/trace_replay.cpp.o" "gcc" "src/workloads/CMakeFiles/vmig_workloads.dir/trace_replay.cpp.o.d"
  "/root/repo/src/workloads/web_server.cpp" "src/workloads/CMakeFiles/vmig_workloads.dir/web_server.cpp.o" "gcc" "src/workloads/CMakeFiles/vmig_workloads.dir/web_server.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/vmig_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/vmig_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/vmig_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vmig_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vmig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vmig_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vmig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/vmig_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
