file(REMOVE_RECURSE
  "CMakeFiles/vmig_workloads.dir/diabolical.cpp.o"
  "CMakeFiles/vmig_workloads.dir/diabolical.cpp.o.d"
  "CMakeFiles/vmig_workloads.dir/kernel_build.cpp.o"
  "CMakeFiles/vmig_workloads.dir/kernel_build.cpp.o.d"
  "CMakeFiles/vmig_workloads.dir/memory_hog.cpp.o"
  "CMakeFiles/vmig_workloads.dir/memory_hog.cpp.o.d"
  "CMakeFiles/vmig_workloads.dir/streaming.cpp.o"
  "CMakeFiles/vmig_workloads.dir/streaming.cpp.o.d"
  "CMakeFiles/vmig_workloads.dir/trace_replay.cpp.o"
  "CMakeFiles/vmig_workloads.dir/trace_replay.cpp.o.d"
  "CMakeFiles/vmig_workloads.dir/web_server.cpp.o"
  "CMakeFiles/vmig_workloads.dir/web_server.cpp.o.d"
  "CMakeFiles/vmig_workloads.dir/workload.cpp.o"
  "CMakeFiles/vmig_workloads.dir/workload.cpp.o.d"
  "libvmig_workloads.a"
  "libvmig_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
