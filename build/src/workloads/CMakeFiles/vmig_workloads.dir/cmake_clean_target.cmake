file(REMOVE_RECURSE
  "libvmig_workloads.a"
)
