# Empty dependencies file for vmig_workloads.
# This may be replaced when dependencies are built.
