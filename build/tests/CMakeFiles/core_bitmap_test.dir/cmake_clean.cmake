file(REMOVE_RECURSE
  "CMakeFiles/core_bitmap_test.dir/core_bitmap_test.cpp.o"
  "CMakeFiles/core_bitmap_test.dir/core_bitmap_test.cpp.o.d"
  "core_bitmap_test"
  "core_bitmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
