# Empty compiler generated dependencies file for core_bitmap_test.
# This may be replaced when dependencies are built.
