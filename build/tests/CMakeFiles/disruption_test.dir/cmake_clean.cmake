file(REMOVE_RECURSE
  "CMakeFiles/disruption_test.dir/disruption_test.cpp.o"
  "CMakeFiles/disruption_test.dir/disruption_test.cpp.o.d"
  "disruption_test"
  "disruption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
