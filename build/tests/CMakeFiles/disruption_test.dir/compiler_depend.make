# Empty compiler generated dependencies file for disruption_test.
# This may be replaced when dependencies are built.
