file(REMOVE_RECURSE
  "CMakeFiles/multivm_test.dir/multivm_test.cpp.o"
  "CMakeFiles/multivm_test.dir/multivm_test.cpp.o.d"
  "multivm_test"
  "multivm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multivm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
