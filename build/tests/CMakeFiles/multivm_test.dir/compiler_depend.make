# Empty compiler generated dependencies file for multivm_test.
# This may be replaced when dependencies are built.
