file(REMOVE_RECURSE
  "CMakeFiles/postcopy_test.dir/postcopy_test.cpp.o"
  "CMakeFiles/postcopy_test.dir/postcopy_test.cpp.o.d"
  "postcopy_test"
  "postcopy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcopy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
