# Empty dependencies file for postcopy_test.
# This may be replaced when dependencies are built.
