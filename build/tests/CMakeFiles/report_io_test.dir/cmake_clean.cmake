file(REMOVE_RECURSE
  "CMakeFiles/report_io_test.dir/report_io_test.cpp.o"
  "CMakeFiles/report_io_test.dir/report_io_test.cpp.o.d"
  "report_io_test"
  "report_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
