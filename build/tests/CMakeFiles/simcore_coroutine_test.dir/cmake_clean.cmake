file(REMOVE_RECURSE
  "CMakeFiles/simcore_coroutine_test.dir/simcore_coroutine_test.cpp.o"
  "CMakeFiles/simcore_coroutine_test.dir/simcore_coroutine_test.cpp.o.d"
  "simcore_coroutine_test"
  "simcore_coroutine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_coroutine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
