# Empty dependencies file for simcore_coroutine_test.
# This may be replaced when dependencies are built.
