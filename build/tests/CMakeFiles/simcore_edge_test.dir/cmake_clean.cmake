file(REMOVE_RECURSE
  "CMakeFiles/simcore_edge_test.dir/simcore_edge_test.cpp.o"
  "CMakeFiles/simcore_edge_test.dir/simcore_edge_test.cpp.o.d"
  "simcore_edge_test"
  "simcore_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
