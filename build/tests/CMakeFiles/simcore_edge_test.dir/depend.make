# Empty dependencies file for simcore_edge_test.
# This may be replaced when dependencies are built.
