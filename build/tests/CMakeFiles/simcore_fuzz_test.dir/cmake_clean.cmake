file(REMOVE_RECURSE
  "CMakeFiles/simcore_fuzz_test.dir/simcore_fuzz_test.cpp.o"
  "CMakeFiles/simcore_fuzz_test.dir/simcore_fuzz_test.cpp.o.d"
  "simcore_fuzz_test"
  "simcore_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
