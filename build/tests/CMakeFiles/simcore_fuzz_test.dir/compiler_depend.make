# Empty compiler generated dependencies file for simcore_fuzz_test.
# This may be replaced when dependencies are built.
