file(REMOVE_RECURSE
  "CMakeFiles/simcore_simulator_test.dir/simcore_simulator_test.cpp.o"
  "CMakeFiles/simcore_simulator_test.dir/simcore_simulator_test.cpp.o.d"
  "simcore_simulator_test"
  "simcore_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
