# Empty dependencies file for simcore_simulator_test.
# This may be replaced when dependencies are built.
