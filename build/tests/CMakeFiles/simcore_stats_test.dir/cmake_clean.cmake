file(REMOVE_RECURSE
  "CMakeFiles/simcore_stats_test.dir/simcore_stats_test.cpp.o"
  "CMakeFiles/simcore_stats_test.dir/simcore_stats_test.cpp.o.d"
  "simcore_stats_test"
  "simcore_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
