file(REMOVE_RECURSE
  "CMakeFiles/simcore_time_test.dir/simcore_time_test.cpp.o"
  "CMakeFiles/simcore_time_test.dir/simcore_time_test.cpp.o.d"
  "simcore_time_test"
  "simcore_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
