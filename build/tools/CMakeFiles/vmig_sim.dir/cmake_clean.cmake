file(REMOVE_RECURSE
  "CMakeFiles/vmig_sim.dir/vmig_sim.cpp.o"
  "CMakeFiles/vmig_sim.dir/vmig_sim.cpp.o.d"
  "vmig_sim"
  "vmig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
