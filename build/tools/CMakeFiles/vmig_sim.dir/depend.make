# Empty dependencies file for vmig_sim.
# This may be replaced when dependencies are built.
