# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_tpm_idle "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--warmup" "2" "--post" "2")
set_tests_properties(cli_tpm_idle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tpm_json "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--warmup" "2" "--post" "2" "--json")
set_tests_properties(cli_tpm_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tpm_web "/root/repo/build/tools/vmig_sim" "--disk-mib" "512" "--workload" "web" "--warmup" "5" "--post" "5")
set_tests_properties(cli_tpm_web PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_roundtrip "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--roundtrip" "--workload" "build" "--warmup" "5" "--dwell" "30" "--post" "2")
set_tests_properties(cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sparse "/root/repo/build/tools/vmig_sim" "--disk-mib" "512" "--sparse" "--fullness" "0.25" "--warmup" "2" "--post" "2")
set_tests_properties(cli_sparse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_scheme_freeze "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--scheme" "freeze" "--warmup" "2")
set_tests_properties(cli_scheme_freeze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_scheme_shared "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--scheme" "shared" "--warmup" "2")
set_tests_properties(cli_scheme_shared PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_scheme_ondemand "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--scheme" "ondemand" "--warmup" "2")
set_tests_properties(cli_scheme_ondemand PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_scheme_delta "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--scheme" "delta" "--workload" "build" "--warmup" "2")
set_tests_properties(cli_scheme_delta PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rate_limited "/root/repo/build/tools/vmig_sim" "--disk-mib" "256" "--rate-limit" "20" "--warmup" "2" "--post" "2")
set_tests_properties(cli_rate_limited PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_option "/root/repo/build/tools/vmig_sim" "--no-such-flag")
set_tests_properties(cli_bad_option PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_workload "/root/repo/build/tools/vmig_sim" "--workload" "nonsense" "--disk-mib" "64")
set_tests_properties(cli_bad_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_trace "/root/repo/build/tools/vmig_sim" "--workload" "trace" "--trace" "/no/such/file" "--disk-mib" "64")
set_tests_properties(cli_missing_trace PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
