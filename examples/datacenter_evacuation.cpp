// Datacenter host maintenance at rack scale: three VMs live on one host;
// all are evacuated concurrently to two other hosts, contending on the
// source's physical disk and their respective links — then brought home
// incrementally after the maintenance window.
//
//   $ ./examples/datacenter_evacuation

#include <cstdio>
#include <vector>

#include "core/migration_manager.hpp"
#include "hypervisor/host.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

double disk_mib(const core::MigrationReport& r) {
  return static_cast<double>(r.bytes_disk_first_pass + r.bytes_disk_retransfer +
                             r.bytes_postcopy_push + r.bytes_postcopy_pull) /
         (1024.0 * 1024.0);
}

void print_row(const char* what, const vm::Domain& vm,
               const core::MigrationReport& r) {
  std::printf("  %-10s %-6s %-11s disk=%8.1f MiB  downtime=%5.1f ms  "
              "total=%6.1f s  %s\n",
              what, vm.name().c_str(), r.incremental ? "incremental" : "full",
              disk_mib(r), r.downtime().to_millis(),
              r.total_time().to_seconds(),
              r.disk_consistent && r.memory_consistent ? "ok" : "INCONSISTENT");
}

}  // namespace

int main() {
  sim::Simulator sim;
  const auto geo = storage::Geometry::from_mib(2048);

  hv::Host rack1{sim, "rack1", geo};  // the host needing maintenance
  hv::Host rack2{sim, "rack2", geo};
  hv::Host rack3{sim, "rack3", geo};
  hv::Host::interconnect(rack1, rack2);
  hv::Host::interconnect(rack1, rack3);

  // Three tenants on rack1, each with its own VBD on the shared spindle.
  vm::Domain web1{sim, 1, "web-1", 128};
  vm::Domain web2{sim, 2, "web-2", 128};
  vm::Domain web3{sim, 3, "web-3", 128};
  for (auto* d : {&web1, &web2, &web3}) {
    rack1.attach_domain(*d);
    auto& vbd = rack1.vbd_for(d->id());
    for (storage::BlockId b = 0; b < vbd.geometry().block_count; ++b) {
      vbd.poke_token(b, (static_cast<std::uint64_t>(d->id()) << 56) + b);
    }
  }

  workload::WebServerParams light;
  light.connections = 25;
  workload::WebServerWorkload wl1{sim, web1, 1, light};
  workload::WebServerWorkload wl2{sim, web2, 2, light};
  workload::WebServerWorkload wl3{sim, web3, 3, light};
  for (auto* w : {&wl1, &wl2, &wl3}) w->start();

  core::MigrationManager mgr{sim};
  std::vector<core::MigrationReport> out(3), back(3);
  int evacuated = 0;

  struct Plan {
    vm::Domain* vm;
    hv::Host* to;
  } plans[] = {{&web1, &rack2}, {&web2, &rack3}, {&web3, &rack2}};

  std::printf("evacuating rack1 (3 tenants, concurrent migrations)...\n");
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](sim::Simulator& sim, core::MigrationManager& mgr, hv::Host& rack1,
           Plan plan, core::MigrationReport& out, int& done) -> sim::Task<void> {
          co_await sim.delay(10_s);
          out = co_await mgr.migrate(*plan.vm, rack1, *plan.to);
          ++done;
        }(sim, mgr, rack1, plans[i], out[static_cast<std::size_t>(i)], evacuated),
        "evacuate");
  }
  std::vector<workload::Workload*> wls{&wl1, &wl2, &wl3};
  sim.spawn(
      [](sim::Simulator& sim, core::MigrationManager& mgr, hv::Host& rack1,
         Plan* plans, std::vector<core::MigrationReport>& back, int& evacuated,
         std::vector<workload::Workload*>& wls) -> sim::Task<void> {
        while (evacuated < 3) co_await sim.delay(1_s);
        // Maintenance window, tenants keep serving from rack2/rack3.
        co_await sim.delay(300_s);
        for (int i = 0; i < 3; ++i) {
          back[static_cast<std::size_t>(i)] =
              co_await mgr.migrate(*plans[i].vm, *plans[i].to, rack1);
        }
        for (auto* w : wls) w->request_stop();
      }(sim, mgr, rack1, plans, back, evacuated, wls),
      "maintenance");
  sim.run();

  std::printf("\noutbound (concurrent; shared source spindle):\n");
  for (int i = 0; i < 3; ++i) print_row("evacuate", *plans[i].vm, out[static_cast<std::size_t>(i)]);
  std::printf("\nreturn (incremental, sequential):\n");
  for (int i = 0; i < 3; ++i) print_row("return", *plans[i].vm, back[static_cast<std::size_t>(i)]);
  std::printf("\nrack1 tenants home: %zu of 3\n", rack1.domains().size());
  return rack1.domains().size() == 3 ? 0 : 1;
}
