// Datacenter host maintenance at rack scale, driven through the cluster
// orchestrator's job API: eight tenants live on host0; all are evacuated to
// host1/host2 under admission caps while one inter-host link suffers an
// outage mid-evacuation. The orchestrator retries the disrupted jobs with
// exponential backoff and every tenant lands safely.
//
// The whole scenario is a pure function of its inputs: the example runs it
// TWICE and checks the outcome sequence, the Chrome trace export and the
// metrics CSV are byte-identical — the property that makes cluster
// schedules replayable and debuggable.
//
//   $ ./examples/datacenter_evacuation

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/orchestrator.hpp"
#include "core/report_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "scenario/cluster_testbed.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

constexpr int kVms = 8;

// A tenant that keeps rewriting its working set while being evacuated.
// Time-bounded so the simulator's event queue can drain once it winds down.
sim::Task<void> tenant_writes(sim::Simulator* sim, vm::Domain* d,
                              sim::TimePoint until) {
  while (sim->now() < until) {
    co_await d->disk_write(storage::BlockRange{0, 64});
    co_await sim->delay(5_ms);
  }
}

struct RunResult {
  std::vector<std::string> outcome_lines;  // completion order, one per job
  std::string trace_json;
  std::string metrics_csv;
  std::uint64_t retries = 0;
  double makespan_s = 0;
  bool all_ok = true;
};

RunResult run_evacuation() {
  sim::Simulator sim;
  scenario::ClusterTestbedConfig bed;
  bed.hosts = 3;
  bed.vbd_mib = 256;
  bed.guest_mem_mib = 64;
  scenario::ClusterTestbed tb{sim, bed};
  for (int i = 0; i < kVms; ++i) {
    tb.add_vm("tenant" + std::to_string(i), 0);
  }
  tb.prefill_disks();
  for (int i = 0; i < 2; ++i) {
    sim.spawn(tenant_writes(&sim, &tb.vm(static_cast<std::size_t>(i)),
                            sim::TimePoint::origin() + 10_s),
              "tenant_writes");
  }

  obs::Registry registry{sim, 500_ms};
  obs::Tracer tracer{sim};
  tb.attach_obs(&registry);
  registry.start_sampling();

  cluster::OrchestratorConfig cfg;
  cfg.caps = {.per_source = 2, .per_dest = 2, .per_link = 1, .total = 8};
  cfg.retry = {.max_attempts = 4,
               .initial_backoff = 100_ms,
               .multiplier = 2.0,
               .max_backoff = 5_s};
  cfg.registry = &registry;
  cfg.tracer = &tracer;
  cluster::Orchestrator orch{sim, tb.manager(), cfg};
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0),
                         tb.paper_migration_config());

  // Maintenance gremlin: host0->host1 drops out for two seconds while the
  // first wave of jobs is mid pre-copy.
  tb.host(0).link_to(tb.host(1)).fail_at(sim::TimePoint::origin() + 500_ms,
                                         2_s);

  orch.drain();

  RunResult r;
  r.makespan_s = sim.now().to_seconds();
  r.retries = orch.retries();
  for (const cluster::JobId id : orch.completion_order()) {
    const auto& j = orch.job(id);
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-8s %s->%s  %-10s attempts=%d  down=%5.1fms  total=%5.2fs",
                  j.request.domain->name().c_str(),
                  j.request.from->name().c_str(), j.request.to->name().c_str(),
                  core::to_string(j.outcome.status), j.attempts,
                  j.outcome.report.downtime().to_millis(),
                  j.outcome.report.total_time().to_seconds());
    r.outcome_lines.emplace_back(line);
    r.all_ok = r.all_ok && j.outcome.ok();
  }
  r.trace_json = obs::chrome_trace_json(tracer);
  r.metrics_csv = core::to_csv(registry);
  return r;
}

}  // namespace

int main() {
  std::printf("evacuating host0: %d tenants, caps 2/source 2/dest 1/link, "
              "host0->host1 down 0.5s..2.5s\n\n",
              kVms);
  const RunResult a = run_evacuation();
  const RunResult b = run_evacuation();

  std::printf("completion order (run 1):\n");
  for (const auto& line : a.outcome_lines) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\nmakespan %.2fs, retries after disruption: %llu\n",
              a.makespan_s, static_cast<unsigned long long>(a.retries));

  const bool deterministic = a.outcome_lines == b.outcome_lines &&
                             a.trace_json == b.trace_json &&
                             a.metrics_csv == b.metrics_csv;
  const bool retries_exported =
      a.metrics_csv.find("cluster.retries") != std::string::npos;

  std::printf("\nall tenants evacuated ok:          %s\n",
              a.all_ok ? "yes" : "NO");
  std::printf("disruption forced retries:         %s\n",
              a.retries > 0 ? "yes" : "NO");
  std::printf("retries visible in metrics CSV:    %s\n",
              retries_exported ? "yes" : "NO");
  std::printf("run 1 == run 2 (order/trace/csv):  %s\n",
              deterministic ? "yes" : "NO");
  return a.all_ok && a.retries > 0 && retries_exported && deterministic ? 0
                                                                        : 1;
}
