// Host maintenance — the paper's §V motivating scenario for Incremental
// Migration: evacuate a VM so its host can be serviced, then bring it back.
// Because the destination keeps tracking writes after the first migration,
// the return trip moves only the blocks dirtied in the meantime.
//
//   $ ./examples/host_maintenance

#include <cstdio>

#include "scenario/testbed.hpp"
#include "workloads/web_server.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

int main() {
  sim::Simulator sim;

  // Production-scale setup (paper testbed, smaller disk for a quick demo).
  scenario::TestbedConfig cfg;
  cfg.vbd_mib = 4096;
  scenario::Testbed tb{sim, cfg};
  tb.prefill_disk();

  // The VM serves a web application throughout.
  workload::WebServerWorkload web{sim, tb.vm(), 7};

  std::printf("evacuating '%s' from %s for maintenance...\n",
              tb.vm().name().c_str(), tb.source().name().c_str());
  const auto [out, back] = tb.run_tpm_then_im(
      &web, /*warmup=*/30_s, /*dwell=*/600_s, /*post=*/30_s,
      tb.paper_migration_config());

  std::printf("\n== evacuation (full TPM) ==\n%s\n", out.str().c_str());
  std::printf("\n== maintenance window: 600 s of normal service on %s ==\n",
              tb.dest().name().c_str());
  std::printf("\n== return trip (incremental) ==\n%s\n", back.str().c_str());

  const double full_mib =
      static_cast<double>(out.bytes_disk_first_pass) / (1024.0 * 1024.0);
  const double delta_mib =
      static_cast<double>(back.bytes_disk_first_pass +
                          back.bytes_disk_retransfer) /
      (1024.0 * 1024.0);
  std::printf("\nIM saved %.1f%% of the disk transfer (%.0f MiB -> %.1f MiB);\n"
              "clients saw %.1f ms + %.1f ms of downtime across both moves.\n",
              (1.0 - delta_mib / full_mib) * 100.0, full_mib, delta_mib,
              out.downtime().to_millis(), back.downtime().to_millis());
  std::printf("guest is home: %s\n",
              tb.source().hosts_domain(tb.vm()) ? "yes" : "no");
  return out.disk_consistent && back.disk_consistent ? 0 : 1;
}
