// Migrating under an I/O-intensive guest (the paper's "diabolical server"),
// with and without rate-limiting the migration stream — §VI-C-3's
// operational trade-off: protect the guest's disk bandwidth, or finish the
// migration sooner.
//
//   $ ./examples/io_intensive

#include <cstdio>

#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

struct Outcome {
  core::MigrationReport rep;
  double guest_kbps_during = 0;
};

Outcome run(double limit_mibps) {
  sim::Simulator sim;
  scenario::TestbedConfig bed;
  bed.vbd_mib = 8192;
  scenario::Testbed tb{sim, bed};
  tb.prefill_disk();
  workload::DiabolicalParams p;
  p.file_mib = 512;
  workload::DiabolicalWorkload bonnie{sim, tb.vm(), 3, p};
  auto cfg = tb.paper_migration_config();
  cfg.rate_limit_mibps = limit_mibps;
  Outcome o;
  o.rep = tb.run_tpm(&bonnie, 60_s, 60_s, cfg);
  o.guest_kbps_during =
      bonnie.throughput().series().mean_in(o.rep.started, o.rep.synchronized) /
      1024.0;
  return o;
}

}  // namespace

int main() {
  std::printf("migrating a VM running a disk-saturating workload...\n\n");

  const Outcome fast = run(0.0);
  const Outcome gentle = run(25.0);

  std::printf("%-26s %14s %14s\n", "", "unlimited", "limited 25MiB/s");
  std::printf("%-26s %14.1f %14.1f\n", "total migration (s)",
              fast.rep.total_time().to_seconds(),
              gentle.rep.total_time().to_seconds());
  std::printf("%-26s %14.1f %14.1f\n", "downtime (ms)",
              fast.rep.downtime().to_millis(), gentle.rep.downtime().to_millis());
  std::printf("%-26s %14.0f %14.0f\n", "guest throughput (KB/s)",
              fast.guest_kbps_during, gentle.guest_kbps_during);
  std::printf("%-26s %14d %14d\n", "pre-copy iterations",
              fast.rep.disk_iterations, gentle.rep.disk_iterations);
  std::printf("%-26s %14llu %14llu\n", "blocks retransferred",
              static_cast<unsigned long long>(fast.rep.blocks_retransferred),
              static_cast<unsigned long long>(gentle.rep.blocks_retransferred));
  std::printf("%-26s %14s %14s\n", "consistent",
              fast.rep.disk_consistent ? "yes" : "NO",
              gentle.rep.disk_consistent ? "yes" : "NO");

  std::printf("\nrate-limiting trades migration time for guest throughput:\n"
              "pick the migration bandwidth to match the maintenance window.\n");
  return 0;
}
