// Quickstart: migrate a running VM — disk, memory, and CPU — between two
// hosts with local storage, and print the migration report.
//
//   $ ./examples/quickstart
//
// Walks through the library's core objects: Simulator (the deterministic
// event loop everything runs on), Host (machine with a local disk), Domain
// (the guest), and MigrationManager (the paper's TPM + IM engine).

#include <cstdio>

#include "core/migration_manager.hpp"
#include "hypervisor/host.hpp"
#include "simcore/log.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

/// A tiny guest app: writes a log block every 10 ms, forever.
sim::Task<void> guest_app(sim::Simulator& sim, vm::Domain& vm, bool& stop) {
  storage::BlockId cursor = 0;
  while (!stop) {
    co_await vm.disk_write(storage::BlockRange{cursor % 1024, 1});
    vm.touch_memory(cursor % vm.memory().page_count());
    ++cursor;
    co_await sim.delay(10_ms);
  }
}

}  // namespace

int main() {
  sim::Log::set_level(sim::LogLevel::kInfo);  // narrate the phases

  sim::Simulator sim;

  // Two hosts, each with a 2 GiB local disk, connected by a Gigabit link.
  hv::Host office{sim, "office", storage::Geometry::from_mib(2048)};
  hv::Host lab{sim, "lab", storage::Geometry::from_mib(2048)};
  hv::Host::interconnect(office, lab);

  // One guest with 128 MiB of memory, initially at the office.
  vm::Domain guest{sim, 1, "demo-vm", 128};
  office.attach_domain(guest);

  bool stop = false;
  sim.spawn(guest_app(sim, guest, stop), "guest-app");

  core::MigrationManager mgr{sim};
  core::MigrationReport report;
  sim.spawn(
      [](sim::Simulator& sim, core::MigrationManager& mgr, vm::Domain& guest,
         hv::Host& office, hv::Host& lab, core::MigrationReport& report,
         bool& stop) -> sim::Task<void> {
        co_await sim.delay(5_s);  // the guest does some work first
        report = (co_await mgr.migrate({.domain = &guest, .from = &office, .to = &lab})).report;
        co_await sim.delay(5_s);  // ... and keeps running at the lab
        stop = true;
      }(sim, mgr, guest, office, lab, report, stop),
      "orchestrator");

  sim.run();

  std::printf("\n%s\n", report.str().c_str());
  std::printf("\nguest now runs on: %s (downtime was %s)\n",
              lab.hosts_domain(guest) ? "lab" : "office",
              report.downtime().str().c_str());
  return report.disk_consistent && report.memory_consistent ? 0 : 1;
}
