// Telecommuting — the paper's other IM scenario: a user's working
// environment follows them between the office and home machine every day.
// After the first full migration, every later hop moves only the day's
// dirtied blocks in either direction.
//
//   $ ./examples/telecommute

#include <cstdio>

#include "core/migration_manager.hpp"
#include "hypervisor/host.hpp"
#include "simcore/rng.hpp"
#include "workloads/kernel_build.hpp"

using namespace vmig;
using namespace vmig::sim::literals;

namespace {

sim::Task<void> week(sim::Simulator& sim, core::MigrationManager& mgr,
                     vm::Domain& guest, hv::Host& office, hv::Host& home,
                     workload::KernelBuildWorkload& work, bool& stop) {
  work.start();
  hv::Host* at = &office;
  hv::Host* other = &home;
  for (int day = 1; day <= 4; ++day) {
    co_await sim.delay(1200_s);  // a (compressed) working day
    const auto rep = (co_await mgr.migrate({.domain = &guest, .from = at, .to = other})).report;
    const double disk_mib =
        static_cast<double>(rep.bytes_disk_first_pass +
                            rep.bytes_disk_retransfer + rep.bytes_postcopy_push +
                            rep.bytes_postcopy_pull) /
        (1024.0 * 1024.0);
    std::printf("day %d: %-6s -> %-6s  %-11s disk=%8.1f MiB  "
                "downtime=%5.1f ms  total=%6.1f s  %s\n",
                day, at->name().c_str(), other->name().c_str(),
                rep.incremental ? "incremental" : "full",
                disk_mib, rep.downtime().to_millis(),
                rep.total_time().to_seconds(),
                rep.disk_consistent ? "ok" : "INCONSISTENT");
    std::swap(at, other);
  }
  stop = true;
  work.request_stop();
  co_await work.handle();
}

}  // namespace

int main() {
  sim::Simulator sim;

  const auto geometry = storage::Geometry::from_mib(4096);
  hv::Host office{sim, "office", geometry};
  hv::Host home{sim, "home", geometry};
  hv::Host::interconnect(office, home);

  vm::Domain guest{sim, 1, "workstation", 256};
  office.attach_domain(guest);
  // Give the image some content (OS + tools).
  for (storage::BlockId b = 0; b < geometry.block_count; ++b) {
    office.disk().poke_token(b, 0x1000000 + b);
  }

  // The user hacks on a kernel all week.
  workload::KernelBuildWorkload work{sim, guest, 11};

  core::MigrationManager mgr{sim};
  bool stop = false;
  sim.spawn(week(sim, mgr, guest, office, home, work, stop), "week");
  sim.run();

  std::printf("\nhops: %zu; first was full, the rest incremental — the\n"
              "environment commutes with ~MBs of traffic instead of the\n"
              "whole %0.f MiB image.\n",
              mgr.history().size(), geometry.total_mib());
  return 0;
}
