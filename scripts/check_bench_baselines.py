#!/usr/bin/env python3
"""Gate a measured bench JSON against a committed baseline.

Both files are flat {"metric": value} maps (see bench::write_flat_json).
Every baseline metric must be present in the measured file and within
--tolerance (relative, default 15%) of the baseline value. Metrics near
zero are compared with an absolute epsilon instead, since a relative band
around zero is meaningless. Extra measured metrics are reported but pass:
they become gated once the baseline is regenerated to include them.

Exit codes: 0 pass, 1 regression/missing metric, 2 usage or bad input.
"""

import argparse
import json
import sys

ABS_EPSILON = 1e-6  # |baseline| below this -> absolute comparison


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(data, dict) or not all(
        isinstance(v, (int, float)) for v in data.values()
    ):
        sys.exit(f"error: {path} is not a flat {{metric: number}} map")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("measured", help="freshly measured JSON")
    ap.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed relative deviation (default 0.15 = ±15%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    meas = load(args.measured)

    failures = []
    for key, expect in sorted(base.items()):
        if key not in meas:
            failures.append(f"{key}: missing from measured output")
            continue
        got = meas[key]
        if abs(expect) < ABS_EPSILON:
            ok = abs(got) < ABS_EPSILON
            band = f"|x| < {ABS_EPSILON}"
        else:
            rel = abs(got - expect) / abs(expect)
            ok = rel <= args.tolerance
            band = f"±{args.tolerance:.0%} of {expect:g}"
        mark = "ok  " if ok else "FAIL"
        print(f"  {mark} {key}: measured={got:g} (baseline {band})")
        if not ok:
            failures.append(f"{key}: measured={got:g} expected {band}")

    for key in sorted(set(meas) - set(base)):
        print(f"  new  {key}: measured={meas[key]:g} (not in baseline)")

    if failures:
        print(f"\n{len(failures)} metric(s) out of tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(base)} baseline metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
