#!/usr/bin/env python3
"""Gate a measured bench JSON against a committed baseline.

The measured file is a flat {"metric": value} map (bench::write_flat_json).
The baseline maps each metric either to a plain number or to an object:

    "sim.events":          123456,
    "scale.h64.events_per_sec": {
        "value": 1.8e6,
        "higher_is_better": true,
        "tolerance": 0.6
    }

A plain number gates two-sided: the measured value must stay within
--tolerance (relative, default 15%) of it. An object may carry a per-metric
"tolerance" and a "higher_is_better" direction, which makes the gate
one-sided: throughput-style metrics (higher_is_better: true) fail only when
the measured value drops below value*(1-tolerance) — noise in the good
direction never fails CI — and cost-style metrics (higher_is_better: false)
fail only above value*(1+tolerance). Baselines near zero are compared with
an absolute epsilon, since a relative band around zero is meaningless.
Extra measured metrics are reported but pass: they become gated once the
baseline is regenerated to include them.

Exit codes: 0 pass, 1 regression/missing metric, 2 usage or bad input.
"""

import argparse
import json
import os
import sys
import tempfile

ABS_EPSILON = 1e-6  # |baseline| below this -> absolute comparison


def load(path, baseline=False):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")

    def entry_ok(v):
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            return True
        if baseline and isinstance(v, dict):
            return (
                isinstance(v.get("value"), (int, float))
                and not isinstance(v.get("value"), bool)
                and isinstance(v.get("higher_is_better", False), bool)
                and isinstance(v.get("tolerance", 0.0), (int, float))
            )
        return False

    shape = "{metric: number-or-spec}" if baseline else "{metric: number}"
    if not isinstance(data, dict) or not all(entry_ok(v) for v in data.values()):
        sys.exit(f"error: {path} is not a flat {shape} map")
    return data


def gate(base, meas, default_tolerance, fmt="text"):
    """Return (report_lines, failure_lines).

    fmt="github" renders report_lines as GitHub Actions workflow commands
    (::error for out-of-band metrics and missing metrics, ::warning for
    metrics measured but absent from the baseline), so regressions surface
    as annotations on the workflow run. failure_lines are unchanged — exit
    status and the stderr summary are format-independent.
    """
    lines, failures = [], []
    for key, spec in sorted(base.items()):
        if isinstance(spec, dict):
            expect = spec["value"]
            tol = spec.get("tolerance", default_tolerance)
            direction = spec.get("higher_is_better")
        else:
            expect = spec
            tol = default_tolerance
            direction = None

        if key not in meas:
            failures.append(f"{key}: missing from measured output")
            if fmt == "github":
                lines.append(
                    f"::error title=bench metric missing::{key}: "
                    "expected by baseline but missing from measured output"
                )
            continue
        got = meas[key]
        if abs(expect) < ABS_EPSILON:
            ok = abs(got) < ABS_EPSILON
            band = f"|x| < {ABS_EPSILON}"
        elif direction is True:
            floor = expect * (1.0 - tol)
            ok = got >= floor
            band = f">= {floor:g} (baseline {expect:g}, regression-only)"
        elif direction is False:
            ceil = expect * (1.0 + tol)
            ok = got <= ceil
            band = f"<= {ceil:g} (baseline {expect:g}, regression-only)"
        else:
            ok = abs(got - expect) / abs(expect) <= tol
            band = f"±{tol:.0%} of {expect:g}"
        if fmt == "github":
            if not ok:
                lines.append(
                    f"::error title=bench regression::{key}: "
                    f"measured={got:g}, band {band}"
                )
            else:
                lines.append(f"  ok   {key}: measured={got:g} (baseline {band})")
        else:
            mark = "ok  " if ok else "FAIL"
            lines.append(f"  {mark} {key}: measured={got:g} (baseline {band})")
        if not ok:
            failures.append(f"{key}: measured={got:g} expected {band}")

    for key in sorted(set(meas) - set(base)):
        if fmt == "github":
            lines.append(
                f"::warning title=bench metric ungated::{key}: "
                f"measured={meas[key]:g} but not in baseline; regenerate the "
                "baseline to gate it"
            )
        else:
            lines.append(f"  new  {key}: measured={meas[key]:g} (not in baseline)")
    return lines, failures


def self_test():
    """Exercise both entry forms and both directions; exit 0/1."""
    cases = [
        # (name, baseline, measured, default_tol, expect_pass)
        ("plain within", {"m": 100}, {"m": 110}, 0.15, True),
        ("plain outside", {"m": 100}, {"m": 130}, 0.15, False),
        ("plain low outside", {"m": 100}, {"m": 70}, 0.15, False),
        ("missing metric", {"m": 100}, {}, 0.15, False),
        ("near-zero ok", {"m": 0.0}, {"m": 0.0}, 0.15, True),
        ("near-zero drift", {"m": 0.0}, {"m": 0.5}, 0.15, False),
        ("hib gain passes",
         {"m": {"value": 100, "higher_is_better": True, "tolerance": 0.5}},
         {"m": 1000}, 0.15, True),
        ("hib regression fails",
         {"m": {"value": 100, "higher_is_better": True, "tolerance": 0.5}},
         {"m": 40}, 0.15, False),
        ("hib at floor passes",
         {"m": {"value": 100, "higher_is_better": True, "tolerance": 0.5}},
         {"m": 50}, 0.15, True),
        ("lib drop passes",
         {"m": {"value": 100, "higher_is_better": False, "tolerance": 0.5}},
         {"m": 1}, 0.15, True),
        ("lib growth fails",
         {"m": {"value": 100, "higher_is_better": False, "tolerance": 0.5}},
         {"m": 200}, 0.15, False),
        ("object default tol",
         {"m": {"value": 100}}, {"m": 110}, 0.15, True),
        ("object default tol fails",
         {"m": {"value": 100}}, {"m": 130}, 0.15, False),
        ("extra measured passes", {"m": 100}, {"m": 100, "n": 7}, 0.15, True),
    ]
    bad = 0
    for name, base, meas, tol, expect_pass in cases:
        _, failures = gate(base, meas, tol)
        passed = not failures
        mark = "ok  " if passed == expect_pass else "FAIL"
        if passed != expect_pass:
            bad += 1
        print(f"  {mark} self-test: {name}")

    # --format github must render regressions/missing metrics as ::error
    # annotations (with metric, band, observed value), ungated extras as
    # ::warning, and leave the failure verdict identical to text mode.
    gh_cases = [
        ("github regression annotated",
         {"m": {"value": 100, "higher_is_better": True, "tolerance": 0.5}},
         {"m": 40}, "::error", ["m", "measured=40", "band >= 50"]),
        ("github missing annotated", {"m": 100}, {},
         "::error", ["m", "missing from measured output"]),
        ("github extra warned", {}, {"n": 7},
         "::warning", ["n", "measured=7", "not in baseline"]),
    ]
    for name, base, meas, want_cmd, want_parts in gh_cases:
        gh_lines, gh_failures = gate(base, meas, 0.15, fmt="github")
        _, text_failures = gate(base, meas, 0.15)
        hits = [l for l in gh_lines if l.startswith(want_cmd)]
        ok = (
            len(hits) == 1
            and all(p in hits[0] for p in want_parts)
            and gh_failures == text_failures
        )
        mark = "ok  " if ok else "FAIL"
        if not ok:
            bad += 1
        print(f"  {mark} self-test: {name}")
    cases += gh_cases

    # The loader must accept both entry forms and reject malformed specs.
    with tempfile.TemporaryDirectory() as d:
        good = os.path.join(d, "good.json")
        with open(good, "w") as f:
            json.dump({"a": 1.0, "b": {"value": 2.0, "higher_is_better": True}}, f)
        load(good, baseline=True)
        print("  ok   self-test: loader accepts mixed baseline entries")

    if bad:
        print(f"\n{bad} self-test case(s) failed", file=sys.stderr)
        return 1
    print(f"\nall {len(cases)} self-test cases passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?", help="committed baseline JSON")
    ap.add_argument("measured", nargs="?", help="freshly measured JSON")
    ap.add_argument(
        "--tolerance", type=float, default=0.15,
        help="default relative deviation when a metric has none (0.15 = ±15%%)",
    )
    ap.add_argument(
        "--format", choices=["text", "github"], default="text",
        help="report style: 'github' emits ::error/::warning workflow "
             "commands so CI annotates regressions inline",
    )
    ap.add_argument(
        "--self-test", action="store_true",
        help="run the built-in gating self-test and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.measured is None:
        ap.error("baseline and measured are required unless --self-test")

    base = load(args.baseline, baseline=True)
    meas = load(args.measured)

    lines, failures = gate(base, meas, args.tolerance, fmt=args.format)
    for line in lines:
        print(line)

    if failures:
        print(f"\n{len(failures)} metric(s) out of tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(base)} baseline metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
