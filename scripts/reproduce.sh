#!/bin/sh
# Reproduce everything: build, run the test suite, regenerate every paper
# table/figure, and leave the transcripts at the repository root.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/*; do
  "$b" 2>&1 | tee -a bench_output.txt
done
echo "done: see test_output.txt and bench_output.txt"
