#include "baselines/baseline_report.hpp"

#include <cstdio>

namespace vmig::baseline {

std::string BaselineReport::str() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%s: total=%.1fs downtime=%.1fms data=%.1f MiB%s\n"
      "  deltas=%llu (%.1f MiB, %.1f MiB redundant, %llu throttled) "
      "io_block=%.1fms remote_fetches=%llu remote_left=%llu%s",
      method.c_str(), base.total_time().to_seconds(),
      base.downtime().to_millis(), base.total_mib(),
      base.disk_consistent ? "" : " [DISK INCONSISTENT]",
      static_cast<unsigned long long>(deltas_forwarded),
      static_cast<double>(delta_bytes) / (1024.0 * 1024.0),
      static_cast<double>(redundant_delta_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(throttled_writes),
      io_block_time.to_millis(),
      static_cast<unsigned long long>(remote_fetches),
      static_cast<unsigned long long>(remote_blocks_left),
      residual_dependency ? " [RESIDUAL DEPENDENCY]" : "");
  return buf;
}

}  // namespace vmig::baseline
