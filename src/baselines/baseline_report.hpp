#pragma once

#include <cstdint>
#include <string>

#include "core/migration_metrics.hpp"

namespace vmig::baseline {

/// Report for a baseline migration scheme: the common TPM metrics plus the
/// pathologies each related-work approach exhibits (paper §II).
struct BaselineReport {
  std::string method;
  core::MigrationReport base;

  // ---- Bradford et al. (VEE'07) delta forwarding ----
  /// Time after resume during which all guest I/O was blocked waiting for
  /// the forwarded-delta queue to drain.
  sim::Duration io_block_time{};
  std::uint64_t deltas_forwarded = 0;
  std::uint64_t delta_bytes = 0;
  /// Bytes re-sent because a later delta rewrote the same block — the
  /// redundancy the block-bitmap design eliminates.
  std::uint64_t redundant_delta_bytes = 0;
  /// Guest writes stalled by forward-queue backpressure (write throttling).
  std::uint64_t throttled_writes = 0;

  // ---- On-demand fetching ----
  std::uint64_t remote_fetches = 0;      ///< post-resume reads served remotely
  std::uint64_t remote_blocks_left = 0;  ///< still source-resident at the end
  /// True if the source machine cannot be shut down when the experiment
  /// ends (unbounded residual dependency).
  bool residual_dependency = false;

  std::string str() const;
};

}  // namespace vmig::baseline
