#include "baselines/delta_forward.hpp"

#include <algorithm>

namespace vmig::baseline {

namespace {
constexpr std::uint64_t kMiB = 1024ull * 1024ull;
}

/// Source-side write throttling: guest writes stall while the forward queue
/// is over depth (the network cannot keep up with the dirty rate).
class DeltaForwardMigration::ThrottleInterceptor final : public vm::IoInterceptor {
 public:
  explicit ThrottleInterceptor(DeltaForwardMigration& owner) : o_{owner} {}

  sim::Task<void> on_request(vm::DomainId domain, storage::IoOp op,
                             storage::BlockRange) override {
    if (domain != o_.domain_.id() || op != storage::IoOp::kWrite) co_return;
    if (o_.forward_q_.size() >= o_.p_.throttle_queue_depth) {
      ++o_.rep_.throttled_writes;
      while (o_.forward_q_.size() >= o_.p_.throttle_queue_depth) {
        co_await o_.throttle_wake_.wait();
      }
    }
  }

 private:
  DeltaForwardMigration& o_;
};

/// Destination-side resume blocker: "after the VM resumes on the
/// destination, all the write accesses must be blocked before all forwarded
/// deltas are applied" — and reads too, which see stale data otherwise.
class DeltaForwardMigration::ResumeBlocker final : public vm::IoInterceptor {
 public:
  explicit ResumeBlocker(DeltaForwardMigration& owner) : o_{owner} {}

  sim::Task<void> on_request(vm::DomainId domain, storage::IoOp,
                             storage::BlockRange) override {
    if (domain != o_.domain_.id()) co_return;
    if (!o_.replay_drained_->is_open()) {
      co_await o_.replay_drained_->wait();
    }
  }

 private:
  DeltaForwardMigration& o_;
};

DeltaForwardMigration::DeltaForwardMigration(sim::Simulator& sim,
                                             core::MigrationConfig cfg,
                                             vm::Domain& domain,
                                             hv::Host& source, hv::Host& dest,
                                             DeltaForwardParams params)
    : sim_{sim},
      cfg_{cfg},
      p_{params},
      domain_{domain},
      src_{source},
      dst_{dest},
      fwd_{sim, source.link_to(dest)},
      shadow_mem_{domain.memory().total_bytes() / kMiB,
                  domain.memory().page_size()},
      forward_wake_{sim},
      throttle_wake_{sim},
      replay_wake_{sim} {
  rep_.method = "delta-forward";
  replay_drained_ = std::make_unique<sim::Gate>(sim);
}

sim::Task<void> DeltaForwardMigration::forwarder_loop() {
  for (;;) {
    while (forward_q_.empty()) {
      if (forwarding_done_) co_return;
      co_await forward_wake_.wait();
    }
    core::DiskBlocksMsg msg = std::move(forward_q_.front());
    forward_q_.pop_front();
    throttle_wake_.notify_all();
    core::MigrationMessage wire{std::move(msg)};
    rep_.delta_bytes += wire.wire_bytes();
    rep_.base.bytes_disk_retransfer += wire.wire_bytes();
    co_await fwd_.send(std::move(wire));
  }
}

sim::Task<void> DeltaForwardMigration::apply_delta_queue() {
  for (;;) {
    while (replay_q_.empty()) {
      if (freeze_marker_seen_) {
        replay_drained_->open();
        co_return;
      }
      co_await replay_wake_.wait();
    }
    const core::DiskBlocksMsg msg = std::move(replay_q_.front());
    replay_q_.pop_front();
    if (cfg_.blkd_cpu_per_mib > sim::Duration::zero()) {
      co_await sim_.delay(cfg_.blkd_cpu_per_mib.scaled(
          static_cast<double>(msg.range.bytes(msg.block_size)) /
          static_cast<double>(kMiB)));
    }
    co_await dst_.vbd_for(domain_.id()).write_tokens(msg.range, msg.tokens,
                                      storage::IoSource::kMigration);
    msg.apply_payloads_to(dst_.vbd_for(domain_.id()));
  }
}

sim::Task<void> DeltaForwardMigration::dest_recv_loop() {
  for (;;) {
    auto m = co_await fwd_.recv();
    if (!m) break;
    if (auto* blocks = m->get_if<core::DiskBlocksMsg>()) {
      if (blocks->delta) {
        // Deltas queue until the bulk copy has landed.
        replay_q_.push_back(std::move(*blocks));
        replay_wake_.notify_all();
      } else {
        if (cfg_.blkd_cpu_per_mib > sim::Duration::zero()) {
          co_await sim_.delay(cfg_.blkd_cpu_per_mib.scaled(
              static_cast<double>(blocks->range.bytes(blocks->block_size)) /
              static_cast<double>(kMiB)));
        }
        co_await dst_.vbd_for(domain_.id()).write_tokens(blocks->range, blocks->tokens,
                                          storage::IoSource::kMigration);
        blocks->apply_payloads_to(dst_.vbd_for(domain_.id()));
      }
    } else if (const auto* pages = m->get_if<core::MemPagesMsg>()) {
      for (const auto& [p, v] : pages->pages) shadow_mem_.apply_page(p, v);
    } else if (const auto* c = m->get_if<core::ControlMsg>()) {
      if (c->kind == core::Control::kIterationEnd) {
        // Bulk copy complete: begin replaying queued deltas.
        bulk_done_ = true;
        sim_.spawn(apply_delta_queue(), "df-replay");
      } else if (c->kind == core::Control::kEnterPostCopy) {
        // All deltas are in (FIFO stream): guest frozen; verify memory now.
        freeze_marker_seen_ = true;
        rep_.base.memory_consistent =
            shadow_mem_.content_equals(domain_.memory());
        replay_wake_.notify_all();
      }
    }
  }
}

sim::Task<BaselineReport> DeltaForwardMigration::run() {
  auto& rep = rep_.base;
  rep.started = sim_.now();

  auto dest_rx = sim_.spawn(dest_recv_loop(), "df-dest-rx");

  // Tap every guest write: capture the written data as a delta.
  ThrottleInterceptor throttle{*this};
  src_.backend_for(domain_.id()).install_interceptor(&throttle);
  src_.backend_for(domain_.id()).set_write_observer([this](storage::BlockRange r) {
    core::DiskBlocksMsg delta = core::DiskBlocksMsg::from_disk(
        src_.vbd_for(domain_.id()), r, /*pulled=*/false, /*is_delta=*/true);
    ++rep_.deltas_forwarded;
    rep_.base.blocks_retransferred += r.count;
    for (storage::BlockId b = r.start; b < r.end(); ++b) {
      if (++delta_counts_[b] > 1) {
        rep_.redundant_delta_bytes += src_.vbd_for(domain_.id()).geometry().block_size;
      }
    }
    forward_q_.push_back(std::move(delta));
    forward_wake_.notify_one();
  });
  auto forwarder = sim_.spawn(forwarder_loop(), "df-forwarder");

  // ---- Bulk disk copy, while the guest keeps writing ----
  const auto& geo = src_.vbd_for(domain_.id()).geometry();
  for (storage::BlockId b = 0; b < geo.block_count;
       b += cfg_.disk_chunk_blocks) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.disk_chunk_blocks, geo.block_count - b));
    const storage::BlockRange r{b, n};
    co_await src_.vbd_for(domain_.id()).read(r, storage::IoSource::kMigration);
    if (cfg_.blkd_cpu_per_mib > sim::Duration::zero()) {
      co_await sim_.delay(cfg_.blkd_cpu_per_mib.scaled(
          static_cast<double>(r.bytes(geo.block_size)) /
          static_cast<double>(kMiB)));
    }
    core::MigrationMessage msg{
        core::DiskBlocksMsg::from_disk(src_.vbd_for(domain_.id()), r, /*pulled=*/false)};
    rep.bytes_disk_first_pass += msg.wire_bytes();
    rep.blocks_first_pass += n;
    co_await fwd_.send(std::move(msg));
  }
  rep.disk_iterations = 1;
  co_await fwd_.send(
      core::MigrationMessage{core::ControlMsg{core::Control::kIterationEnd}});

  // ---- Memory pre-copy, then freeze ----
  hv::MemoryMigrator mm{sim_, cfg_};
  const auto pre = co_await mm.precopy(domain_, fwd_, nullptr);
  rep.mem_iterations = pre.iterations;
  rep.pages_precopied = pre.pages_sent;
  rep.bytes_memory_precopy = pre.bytes_sent;

  domain_.suspend();
  rep.suspended = sim_.now();
  co_await sim_.delay(cfg_.suspend_overhead);
  const auto res = co_await mm.send_residual(domain_, fwd_);
  rep.pages_residual = res.pages;
  rep.bytes_freeze_residual = res.bytes;

  // Drain the forward queue (guest frozen, so it only shrinks), then mark.
  src_.backend_for(domain_.id()).remove_interceptor();
  src_.backend_for(domain_.id()).clear_write_observer();
  forwarding_done_ = true;
  forward_wake_.notify_all();
  co_await forwarder;
  co_await fwd_.send(
      core::MigrationMessage{core::ControlMsg{core::Control::kEnterPostCopy}});

  // ---- Resume at the destination, I/O blocked until replay drains ----
  ResumeBlocker blocker{*this};
  src_.detach_domain(domain_);
  dst_.attach_domain(domain_);
  dst_.backend_for(domain_.id()).install_interceptor(&blocker);
  if (cfg_.track_for_incremental) {
    dst_.backend_for(domain_.id()).start_write_tracking(cfg_.bitmap_kind);
  }
  co_await sim_.delay(cfg_.resume_overhead);
  domain_.resume();
  rep.resumed = sim_.now();

  co_await replay_drained_->wait();
  rep_.io_block_time = sim_.now() - rep.resumed;
  dst_.backend_for(domain_.id()).remove_interceptor();
  rep.synchronized = sim_.now();

  // Consistency: every block matches the source's frozen state unless the
  // guest rewrote it at the destination after the replay drain.
  const core::DirtyBitmap bm3 = dst_.backend_for(domain_.id()).tracking()
                                    ? dst_.backend_for(domain_.id()).snapshot_dirty()
                                    : core::DirtyBitmap{cfg_.bitmap_kind,
                                                        geo.block_count};
  bool ok = true;
  for (std::uint64_t b = 0; ok && b < geo.block_count; ++b) {
    if (!bm3.test(b) && src_.vbd_for(domain_.id()).token(b) != dst_.vbd_for(domain_.id()).token(b)) ok = false;
  }
  rep.disk_consistent = ok;

  fwd_.close();
  co_await dest_rx;
  co_return rep_;
}

}  // namespace vmig::baseline
