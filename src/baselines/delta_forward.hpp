#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "baselines/baseline_report.hpp"
#include "core/migration_config.hpp"
#include "core/protocol.hpp"
#include "hypervisor/checkpoint.hpp"
#include "hypervisor/host.hpp"
#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::baseline {

/// Extra knobs for the delta-forwarding scheme.
struct DeltaForwardParams {
  /// Forward-queue depth before guest writes are throttled (blocked) —
  /// Bradford et al.'s write throttling for I/O-intensive workloads.
  std::size_t throttle_queue_depth = 2048;
};

/// Bradford et al. (VEE'07) pre-copy with write forwarding (paper §II-B):
/// bulk-copy the disk while intercepting every guest write and forwarding
/// it as a *delta* (location + data). The destination queues deltas and
/// replays them after the bulk copy; after the VM resumes there, its I/O is
/// blocked until the remaining queue drains.
///
/// The paper's criticisms, all measurable here:
///   - rewrites make deltas redundant (11-35.6% of writes), inflating the
///     amount of migrated data;
///   - the post-resume replay blocks guest I/O (io_block_time);
///   - fast writers need throttling so the network keeps up.
class DeltaForwardMigration {
 public:
  DeltaForwardMigration(sim::Simulator& sim, core::MigrationConfig cfg,
                        vm::Domain& domain, hv::Host& source, hv::Host& dest,
                        DeltaForwardParams params = {});

  sim::Task<BaselineReport> run();

 private:
  class ThrottleInterceptor;
  class ResumeBlocker;

  sim::Task<void> forwarder_loop();
  sim::Task<void> dest_recv_loop();
  sim::Task<void> apply_delta_queue();

  sim::Simulator& sim_;
  core::MigrationConfig cfg_;
  DeltaForwardParams p_;
  vm::Domain& domain_;
  hv::Host& src_;
  hv::Host& dst_;
  hv::MigStream fwd_;
  vm::GuestMemory shadow_mem_;

  // Source side.
  std::deque<core::DiskBlocksMsg> forward_q_;
  sim::Notifier forward_wake_;
  sim::Notifier throttle_wake_;
  bool forwarding_done_ = false;
  std::unordered_map<storage::BlockId, std::uint32_t> delta_counts_;

  // Destination side.
  std::deque<core::DiskBlocksMsg> replay_q_;
  bool bulk_done_ = false;
  bool freeze_marker_seen_ = false;
  sim::Notifier replay_wake_;
  std::unique_ptr<sim::Gate> replay_drained_;

  BaselineReport rep_;
};

}  // namespace vmig::baseline
