#include "baselines/freeze_and_copy.hpp"

namespace vmig::baseline {

namespace {
constexpr std::uint64_t kMiB = 1024ull * 1024ull;
}

FreezeAndCopyMigration::FreezeAndCopyMigration(sim::Simulator& sim,
                                               core::MigrationConfig cfg,
                                               vm::Domain& domain,
                                               hv::Host& source, hv::Host& dest)
    : sim_{sim},
      cfg_{cfg},
      domain_{domain},
      src_{source},
      dst_{dest},
      fwd_{sim, source.link_to(dest)},
      shadow_mem_{domain.memory().total_bytes() / kMiB,
                  domain.memory().page_size()} {
  rep_.method = "freeze-and-copy";
}

sim::Task<void> FreezeAndCopyMigration::receiver_loop() {
  for (;;) {
    auto m = co_await fwd_.recv();
    if (!m) break;
    if (const auto* blocks = m->get_if<core::DiskBlocksMsg>()) {
      co_await dst_.vbd_for(domain_.id()).write_tokens(blocks->range, blocks->tokens,
                                        storage::IoSource::kMigration);
      blocks->apply_payloads_to(dst_.vbd_for(domain_.id()));
    } else if (const auto* pages = m->get_if<core::MemPagesMsg>()) {
      for (const auto& [p, v] : pages->pages) shadow_mem_.apply_page(p, v);
    }
    // CPU state needs no application in the shadow model.
  }
}

sim::Task<BaselineReport> FreezeAndCopyMigration::run() {
  auto& rep = rep_.base;
  rep.started = sim_.now();

  auto receiver = sim_.spawn(receiver_loop(), "fc-receiver");

  // Freeze first — that is the whole point (and problem) of this scheme.
  domain_.suspend();
  rep.suspended = sim_.now();
  co_await sim_.delay(cfg_.suspend_overhead);

  // Ship the disk, every block exactly once.
  const auto& geo = src_.vbd_for(domain_.id()).geometry();
  for (storage::BlockId b = 0; b < geo.block_count;
       b += cfg_.disk_chunk_blocks) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.disk_chunk_blocks, geo.block_count - b));
    const storage::BlockRange r{b, n};
    co_await src_.vbd_for(domain_.id()).read(r, storage::IoSource::kMigration);
    if (cfg_.blkd_cpu_per_mib > sim::Duration::zero()) {
      co_await sim_.delay(cfg_.blkd_cpu_per_mib.scaled(
          static_cast<double>(r.bytes(geo.block_size)) / (1024.0 * 1024.0)));
    }
    core::MigrationMessage msg{
        core::DiskBlocksMsg::from_disk(src_.vbd_for(domain_.id()), r, /*pulled=*/false)};
    rep.bytes_disk_first_pass += msg.wire_bytes();
    rep.blocks_first_pass += n;
    co_await fwd_.send(std::move(msg));
  }
  rep.disk_iterations = 1;

  // Ship all of memory, then the CPU context.
  core::MemPagesMsg pages;
  pages.page_size = domain_.memory().page_size();
  for (vm::PageId p = 0; p < domain_.memory().page_count(); ++p) {
    pages.pages.emplace_back(p, domain_.memory().version(p));
    if (pages.pages.size() >= cfg_.mem_chunk_pages ||
        p + 1 == domain_.memory().page_count()) {
      core::MigrationMessage msg{std::move(pages)};
      rep.bytes_memory_precopy += msg.wire_bytes();
      co_await fwd_.send(std::move(msg));
      pages = core::MemPagesMsg{};
      pages.page_size = domain_.memory().page_size();
    }
  }
  rep.pages_precopied = domain_.memory().page_count();
  core::MigrationMessage cpu{core::CpuStateMsg{domain_.cpu()}};
  rep.bytes_freeze_residual += cpu.wire_bytes();
  co_await fwd_.send(std::move(cpu));

  fwd_.close();
  co_await receiver;  // everything applied at the destination

  rep.memory_consistent = shadow_mem_.content_equals(domain_.memory());
  src_.detach_domain(domain_);
  dst_.attach_domain(domain_);
  co_await sim_.delay(cfg_.resume_overhead);
  domain_.resume();
  rep.resumed = sim_.now();
  rep.synchronized = sim_.now();
  rep.disk_consistent = src_.vbd_for(domain_.id()).content_equals(dst_.vbd_for(domain_.id()));
  co_return rep_;
}

}  // namespace vmig::baseline
