#pragma once

#include "baselines/baseline_report.hpp"
#include "core/migration_config.hpp"
#include "core/protocol.hpp"
#include "hypervisor/checkpoint.hpp"
#include "hypervisor/host.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::baseline {

/// Freeze-and-copy whole-system migration (Internet Suspend/Resume style,
/// paper §II-B): stop the VM, copy its entire state — disk, memory, CPU —
/// to the destination, restart it there. Zero redundancy, but the downtime
/// is the whole transfer: tens of minutes for a 40 GB disk.
class FreezeAndCopyMigration {
 public:
  FreezeAndCopyMigration(sim::Simulator& sim, core::MigrationConfig cfg,
                         vm::Domain& domain, hv::Host& source, hv::Host& dest);

  sim::Task<BaselineReport> run();

 private:
  sim::Task<void> receiver_loop();

  sim::Simulator& sim_;
  core::MigrationConfig cfg_;
  vm::Domain& domain_;
  hv::Host& src_;
  hv::Host& dst_;
  hv::MigStream fwd_;
  vm::GuestMemory shadow_mem_;
  BaselineReport rep_;
};

}  // namespace vmig::baseline
