#include "baselines/on_demand.hpp"

namespace vmig::baseline {

namespace {
constexpr std::uint64_t kMiB = 1024ull * 1024ull;
}

OnDemandMigration::OnDemandMigration(sim::Simulator& sim,
                                     core::MigrationConfig cfg,
                                     vm::Domain& domain, hv::Host& source,
                                     hv::Host& dest)
    : sim_{sim},
      cfg_{cfg},
      domain_{domain},
      src_{source},
      dst_{dest},
      fwd_{sim, source.link_to(dest)},
      rev_{sim, dest.link_to(source)},
      shadow_mem_{domain.memory().total_bytes() / kMiB,
                  domain.memory().page_size()} {
  rep_.method = "on-demand";
}

sim::Task<void> OnDemandMigration::mem_receiver_loop() {
  // Phase 1 only: memory pages during pre-copy and freeze.
  for (;;) {
    auto m = co_await fwd_.recv();
    if (!m) break;
    if (const auto* pages = m->get_if<core::MemPagesMsg>()) {
      for (const auto& [p, v] : pages->pages) shadow_mem_.apply_page(p, v);
    } else if (const auto* c = m->get_if<core::ControlMsg>()) {
      if (c->kind == core::Control::kEnterPostCopy) break;
    }
  }
}

sim::Task<void> OnDemandMigration::fetch_responder_loop() {
  // Source side: answer fetch requests forever — the residual dependency.
  for (;;) {
    auto m = co_await rev_.recv();
    if (!m) break;
    if (const auto* pull = m->get_if<core::PullRequestMsg>()) {
      const storage::BlockRange r{pull->block, 1};
      co_await src_.vbd_for(domain_.id()).read(r, storage::IoSource::kMigration);
      co_await fwd_.send(core::MigrationMessage{
          core::DiskBlocksMsg::from_disk(src_.vbd_for(domain_.id()), r, /*pulled=*/true)});
    }
  }
}

sim::Task<void> OnDemandMigration::block_receiver_loop() {
  // Phase 2: fetched blocks arriving at the destination.
  for (;;) {
    auto m = co_await fwd_.recv();
    if (!m) break;
    if (const auto* blocks = m->get_if<core::DiskBlocksMsg>()) {
      co_await fetcher_->on_block_received(*blocks);
    }
  }
}

sim::Task<BaselineReport> OnDemandMigration::run(sim::Duration observe_window) {
  auto& rep = rep_.base;
  rep.started = sim_.now();

  // ---- Memory + CPU migration, Xen-style ----
  auto mem_rx = sim_.spawn(mem_receiver_loop(), "od-mem-rx");
  hv::MemoryMigrator mm{sim_, cfg_};
  const auto pre = co_await mm.precopy(domain_, fwd_, nullptr);
  rep.mem_iterations = pre.iterations;
  rep.pages_precopied = pre.pages_sent;
  rep.bytes_memory_precopy = pre.bytes_sent;

  domain_.suspend();
  rep.suspended = sim_.now();
  co_await sim_.delay(cfg_.suspend_overhead);
  const auto res = co_await mm.send_residual(domain_, fwd_);
  rep.pages_residual = res.pages;
  rep.bytes_freeze_residual = res.bytes;
  co_await fwd_.send(
      core::MigrationMessage{core::ControlMsg{core::Control::kEnterPostCopy}});
  co_await mem_rx;
  rep.memory_consistent = shadow_mem_.content_equals(domain_.memory());

  // ---- Resume with every block remote ----
  core::DirtyBitmap remote{cfg_.bitmap_kind, dst_.vbd_for(domain_.id()).geometry().block_count,
                           /*initially_set=*/true};
  fetcher_ = std::make_unique<core::PostCopyDestination>(
      sim_, dst_.vbd_for(domain_.id()), std::move(remote), domain_.id(), rev_);
  src_.detach_domain(domain_);
  dst_.attach_domain(domain_);
  dst_.backend_for(domain_.id()).install_interceptor(fetcher_.get());
  // Track post-resume writes so the end-state verification can exclude
  // blocks the guest legitimately rewrote at the destination.
  dst_.backend_for(domain_.id()).start_write_tracking(cfg_.bitmap_kind);

  auto responder = sim_.spawn(fetch_responder_loop(), "od-responder");
  auto block_rx = sim_.spawn(block_receiver_loop(), "od-block-rx");

  co_await sim_.delay(cfg_.resume_overhead);
  domain_.resume();
  rep.resumed = sim_.now();

  // ---- Observe the guest depending on the source ----
  co_await sim_.delay(observe_window);

  rep_.remote_fetches = fetcher_->stats().blocks_pulled;
  rep_.remote_blocks_left = fetcher_->transferred().count_set();
  rep_.residual_dependency = rep_.remote_blocks_left > 0;
  rep.blocks_pulled = rep_.remote_fetches;
  rep.bytes_postcopy_pull = fetcher_->stats().bytes_pull +
                            fetcher_->stats().pull_requests *
                                core::kMsgHeaderBytes;
  // "Synchronized" never truly happens; stamp the observation end so the
  // report's total_time covers the measured interval.
  rep.synchronized = sim_.now();

  // ---- Teardown: force-sync so the simulation can wind down ----
  fetcher_->force_complete(src_.vbd_for(domain_.id()));
  dst_.backend_for(domain_.id()).remove_interceptor();
  const core::DirtyBitmap written = dst_.backend_for(domain_.id()).snapshot_dirty();
  bool ok = true;
  for (std::uint64_t b = 0; ok && b < dst_.vbd_for(domain_.id()).geometry().block_count; ++b) {
    if (!written.test(b) && src_.vbd_for(domain_.id()).token(b) != dst_.vbd_for(domain_.id()).token(b)) {
      ok = false;
    }
  }
  rep.disk_consistent = ok;
  fwd_.close();
  rev_.close();
  co_await responder;
  co_await block_rx;
  co_return rep_;
}

}  // namespace vmig::baseline
