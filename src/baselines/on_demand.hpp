#pragma once

#include <memory>

#include "baselines/baseline_report.hpp"
#include "core/migration_config.hpp"
#include "core/post_copy.hpp"
#include "hypervisor/checkpoint.hpp"
#include "hypervisor/host.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::baseline {

/// On-demand fetching (Kozuch et al., paper §II-B): migrate memory + CPU
/// only; resume immediately; fetch disk blocks from the source over the
/// network when (and only when) the guest touches them.
///
/// Downtime matches shared-storage migration, but there is no push — so the
/// source can never be shut down: an unbounded residual dependency, the
/// availability-p² problem the paper's push-and-pull post-copy fixes.
class OnDemandMigration {
 public:
  OnDemandMigration(sim::Simulator& sim, core::MigrationConfig cfg,
                    vm::Domain& domain, hv::Host& source, hv::Host& dest);

  /// Migrate, then let the guest run at the destination for
  /// `observe_window` while counting remote fetches; finally force-sync the
  /// remaining blocks (experiment teardown) and report.
  sim::Task<BaselineReport> run(sim::Duration observe_window);

 private:
  sim::Task<void> mem_receiver_loop();
  sim::Task<void> fetch_responder_loop();
  sim::Task<void> block_receiver_loop();

  sim::Simulator& sim_;
  core::MigrationConfig cfg_;
  vm::Domain& domain_;
  hv::Host& src_;
  hv::Host& dst_;
  hv::MigStream fwd_;  ///< source -> dest: memory, fetched blocks
  hv::MigStream rev_;  ///< dest -> source: fetch requests
  vm::GuestMemory shadow_mem_;
  std::unique_ptr<core::PostCopyDestination> fetcher_;
  BaselineReport rep_;
};

}  // namespace vmig::baseline
