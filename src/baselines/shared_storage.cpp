#include "baselines/shared_storage.hpp"

namespace vmig::baseline {

sim::Task<void> SharedStorageMigration::receiver_loop() {
  for (;;) {
    auto m = co_await fwd_.recv();
    if (!m) break;
    if (const auto* pages = m->get_if<core::MemPagesMsg>()) {
      for (const auto& [p, v] : pages->pages) shadow_mem_.apply_page(p, v);
    }
  }
}

sim::Task<BaselineReport> SharedStorageMigration::run() {
  auto& rep = rep_.base;
  rep.started = sim_.now();
  auto receiver = sim_.spawn(receiver_loop(), "ss-receiver");

  hv::MemoryMigrator mm{sim_, cfg_};
  const auto pre = co_await mm.precopy(domain_, fwd_, nullptr);
  rep.mem_iterations = pre.iterations;
  rep.pages_precopied = pre.pages_sent;
  rep.bytes_memory_precopy = pre.bytes_sent;

  domain_.suspend();
  rep.suspended = sim_.now();
  co_await sim_.delay(cfg_.suspend_overhead);
  const auto res = co_await mm.send_residual(domain_, fwd_);
  rep.pages_residual = res.pages;
  rep.bytes_freeze_residual = res.bytes;

  fwd_.close();
  co_await receiver;

  rep.memory_consistent = shadow_mem_.content_equals(domain_.memory());
  // Move the domain; the frontend stays on the shared storage (source-side
  // backend stands in for the SAN both hosts can reach).
  vm::BlkBackend* shared = domain_.frontend().backend();
  src_.detach_domain(domain_);
  dst_.attach_domain(domain_);
  domain_.frontend().connect(shared);
  co_await sim_.delay(cfg_.resume_overhead);
  domain_.resume();
  rep.resumed = sim_.now();
  rep.synchronized = sim_.now();
  rep.disk_consistent = true;  // by construction: storage is shared
  co_return rep_;
}

}  // namespace vmig::baseline
