#pragma once

#include "baselines/baseline_report.hpp"
#include "core/migration_config.hpp"
#include "hypervisor/checkpoint.hpp"
#include "hypervisor/host.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::baseline {

/// Classic shared-storage live migration (Xen NSDI'05 / VMotion, paper
/// §II-A): iterative memory pre-copy, freeze, ship residual pages + CPU,
/// resume. The disk never moves — both hosts see the same storage (modeled
/// by leaving the frontend bound to the source host's backend, the "SAN").
///
/// This is the downtime yardstick the paper compares TPM against: TPM's
/// goal is whole-system migration with downtime "close to shared-storage".
class SharedStorageMigration {
 public:
  SharedStorageMigration(sim::Simulator& sim, core::MigrationConfig cfg,
                         vm::Domain& domain, hv::Host& source, hv::Host& dest)
      : sim_{sim},
        cfg_{cfg},
        domain_{domain},
        src_{source},
        dst_{dest},
        fwd_{sim, source.link_to(dest)},
        shadow_mem_{domain.memory().total_bytes() / (1024 * 1024),
                    domain.memory().page_size()} {
    rep_.method = "shared-storage";
  }

  sim::Task<BaselineReport> run();

 private:
  sim::Task<void> receiver_loop();

  sim::Simulator& sim_;
  core::MigrationConfig cfg_;
  vm::Domain& domain_;
  hv::Host& src_;
  hv::Host& dst_;
  hv::MigStream fwd_;
  vm::GuestMemory shadow_mem_;
  BaselineReport rep_;
};

}  // namespace vmig::baseline
