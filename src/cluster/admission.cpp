#include "cluster/admission.hpp"

namespace vmig::cluster {

namespace {
bool within(int current, int cap) { return cap <= 0 || current < cap; }
}  // namespace

int AdmissionControl::lookup(const std::map<std::string, int>& m,
                             const std::string& k) {
  const auto it = m.find(k);
  return it == m.end() ? 0 : it->second;
}

bool AdmissionControl::admissible(const hv::Host& from,
                                  const hv::Host& to) const {
  return within(total_, caps_.total) &&
         within(lookup(by_source_, from.name()), caps_.per_source) &&
         within(lookup(by_dest_, to.name()), caps_.per_dest) &&
         within(lookup(by_link_, link_key(from, to)), caps_.per_link);
}

void AdmissionControl::acquire(const hv::Host& from, const hv::Host& to) {
  ++total_;
  ++by_source_[from.name()];
  ++by_dest_[to.name()];
  ++by_link_[link_key(from, to)];
}

void AdmissionControl::release(const hv::Host& from, const hv::Host& to) {
  --total_;
  --by_source_[from.name()];
  --by_dest_[to.name()];
  --by_link_[link_key(from, to)];
}

}  // namespace vmig::cluster
