#pragma once

#include <map>
#include <string>

#include "hypervisor/host.hpp"

namespace vmig::cluster {

/// Concurrency caps the admission controller enforces. A migration occupies
/// one slot at its source host, one at its destination host, and one on the
/// directed (source, destination) link for its whole duration. Any cap set
/// to zero or negative means unlimited.
///
/// The defaults are deliberately conservative: concurrent pre-copy streams
/// out of one host share its physical disk and NIC, so each stream's
/// transfer rate drops while the guests' dirty rates do not — push
/// per-source parallelism too high and every stream hits the dirty-rate
/// abort instead of converging (the self-destruction the paper's §IV-B
/// proactive stop detects).
struct AdmissionCaps {
  int per_source = 1;  ///< concurrent migrations out of one host
  int per_dest = 2;    ///< concurrent migrations into one host
  int per_link = 1;    ///< concurrent migrations on one directed link
  int total = 8;       ///< concurrent migrations cluster-wide
};

/// Slot accounting for in-flight migrations, keyed by host *name* (names
/// are unique within a deployment and give deterministic ordering, unlike
/// pointers). Purely synchronous bookkeeping — the orchestrator decides
/// when to re-test admissibility.
class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionCaps caps = {}) : caps_{caps} {}

  /// Would launching (from -> to) respect every cap right now?
  bool admissible(const hv::Host& from, const hv::Host& to) const;
  /// Occupy the slots for (from -> to). Caller must have checked
  /// admissible() — acquire does not re-verify.
  void acquire(const hv::Host& from, const hv::Host& to);
  /// Release the slots taken by acquire().
  void release(const hv::Host& from, const hv::Host& to);

  int inflight() const noexcept { return total_; }
  int inflight_from(const hv::Host& h) const { return lookup(by_source_, h.name()); }
  int inflight_to(const hv::Host& h) const { return lookup(by_dest_, h.name()); }
  const AdmissionCaps& caps() const noexcept { return caps_; }

 private:
  static std::string link_key(const hv::Host& from, const hv::Host& to) {
    return from.name() + "->" + to.name();
  }
  static int lookup(const std::map<std::string, int>& m, const std::string& k);

  AdmissionCaps caps_;
  int total_ = 0;
  std::map<std::string, int> by_source_;
  std::map<std::string, int> by_dest_;
  std::map<std::string, int> by_link_;
};

}  // namespace vmig::cluster
