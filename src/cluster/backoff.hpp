#pragma once

#include "simcore/time.hpp"

namespace vmig::cluster {

/// Retry budget and exponential backoff for failed migration attempts
/// (link disruptions, non-convergence aborts).
///
/// Deliberately jitter-free: backoff windows are a pure function of the
/// attempt number, so a cluster run is byte-identical across executions.
/// In a simulated cluster the thundering-herd problem jitter solves does
/// not exist — the admission controller already serializes contending jobs.
struct RetryPolicy {
  /// Total attempts per job (first try included). A job whose last attempt
  /// fails with attempts == max_attempts goes to JobState::kFailed.
  int max_attempts = 3;
  sim::Duration initial_backoff = sim::Duration::seconds(2);
  double multiplier = 2.0;
  sim::Duration max_backoff = sim::Duration::minutes(2);

  /// Backoff before retry number `failed_attempts + 1`:
  /// initial * multiplier^(failed_attempts - 1), capped at max_backoff.
  sim::Duration backoff_after(int failed_attempts) const {
    sim::Duration d = initial_backoff;
    for (int i = 1; i < failed_attempts; ++i) {
      d = d.scaled(multiplier);
      if (d >= max_backoff) return max_backoff;
    }
    return d < max_backoff ? d : max_backoff;
  }
};

}  // namespace vmig::cluster
