#include "cluster/evacuation.hpp"

#include <cstdint>

namespace vmig::cluster {

namespace {

std::uint64_t mem_mib(const vm::Domain& d) {
  return d.memory().total_bytes() / (1024ull * 1024ull);
}

struct Candidate {
  hv::Host* host = nullptr;
  std::uint64_t planned_domains = 0;  ///< resident + already assigned here
  std::uint64_t planned_mem_mib = 0;  ///< memory load tie-breaker
};

bool lighter(const Candidate& a, const Candidate& b) {
  if (a.planned_domains != b.planned_domains) {
    return a.planned_domains < b.planned_domains;
  }
  if (a.planned_mem_mib != b.planned_mem_mib) {
    return a.planned_mem_mib < b.planned_mem_mib;
  }
  return a.host->name() < b.host->name();
}

}  // namespace

std::vector<EvacuationPlanner::Assignment> EvacuationPlanner::plan(
    hv::Host& from, const std::vector<hv::Host*>& dests) {
  std::vector<Candidate> candidates;
  for (hv::Host* d : dests) {
    if (d == nullptr || d == &from || !from.connected_to(*d)) continue;
    Candidate c;
    c.host = d;
    c.planned_domains = d->domains().size();
    for (const vm::Domain* resident : d->domains()) {
      c.planned_mem_mib += mem_mib(*resident);
    }
    candidates.push_back(c);
  }

  std::vector<Assignment> out;
  if (candidates.empty()) return out;
  for (vm::Domain* d : from.domains()) {
    Candidate* best = &candidates.front();
    for (Candidate& c : candidates) {
      if (lighter(c, *best)) best = &c;
    }
    out.push_back(Assignment{d, best->host});
    ++best->planned_domains;
    best->planned_mem_mib += mem_mib(*d);
  }
  return out;
}

std::vector<core::MigrationRequest> EvacuationPlanner::requests(
    hv::Host& from, const std::vector<hv::Host*>& dests,
    const core::MigrationConfig& cfg, int priority) {
  std::vector<core::MigrationRequest> out;
  for (const Assignment& a : plan(from, dests)) {
    core::MigrationRequest r;
    r.domain = a.domain;
    r.from = &from;
    r.to = a.to;
    r.config = cfg;
    r.priority = priority;
    out.push_back(r);
  }
  return out;
}

}  // namespace vmig::cluster
