#pragma once

#include <vector>

#include "core/migration_config.hpp"
#include "core/migration_request.hpp"
#include "hypervisor/host.hpp"
#include "vm/domain.hpp"

namespace vmig::cluster {

/// Plans the drain of one host: assigns every resident domain a destination
/// chosen by free capacity, and emits one MigrationRequest per domain.
///
/// Capacity model: each destination starts with its currently-resident
/// domain count (plus guest memory as a tie-breaker) and accumulates the
/// evacuees already planned onto it, so an 8-VM drain over two equal
/// destinations splits 4/4 rather than dog-piling the first. Deterministic:
/// domains are assigned in attachment order; destination ties break by host
/// name.
class EvacuationPlanner {
 public:
  struct Assignment {
    vm::Domain* domain = nullptr;
    hv::Host* to = nullptr;
  };

  /// Destinations not connected to `from` are skipped. Returns one
  /// assignment per domain resident on `from` (empty if no destination is
  /// usable).
  static std::vector<Assignment> plan(hv::Host& from,
                                      const std::vector<hv::Host*>& dests);

  /// The plan as submittable requests, all sharing `cfg` and `priority`.
  static std::vector<core::MigrationRequest> requests(
      hv::Host& from, const std::vector<hv::Host*>& dests,
      const core::MigrationConfig& cfg, int priority = 0);
};

}  // namespace vmig::cluster
