#pragma once

#include <cstdint>

#include "core/migration_request.hpp"
#include "simcore/time.hpp"

namespace vmig::cluster {

/// Stable handle to a submitted migration job (index into the orchestrator's
/// job table, in submission order).
using JobId = std::uint32_t;

/// Orchestrator-side lifecycle of a job. `kPending` covers both "waiting for
/// an admission slot" and "waiting out a retry backoff window".
enum class JobState : std::uint8_t {
  kPending,
  kRunning,
  kCompleted,
  kFailed,
};

const char* to_string(JobState s);

/// One queued migration and everything the orchestrator knows about it:
/// the request itself plus scheduling, retry, and outcome state.
struct MigrationJob {
  JobId id = 0;
  core::MigrationRequest request{};
  JobState state = JobState::kPending;
  /// Migration attempts launched so far (the outcome's `attempts` mirrors
  /// this once the job is terminal).
  int attempts = 0;
  /// Times a scheduling policy passed over this job while it was eligible
  /// (workload-cycle-aware deferral); bounded by the orchestrator's
  /// max_deferrals, after which the job is forced through.
  int deferrals = 0;
  sim::TimePoint submitted{};
  /// Backoff gate: the job may not launch before this instant.
  sim::TimePoint next_eligible{};
  /// When the job reached a terminal state.
  sim::TimePoint finished{};
  /// The last attempt's outcome (partial reports on failed attempts).
  core::MigrationOutcome outcome{};

  bool terminal() const noexcept {
    return state == JobState::kCompleted || state == JobState::kFailed;
  }
};

}  // namespace vmig::cluster
