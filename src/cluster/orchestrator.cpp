#include "cluster/orchestrator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "hypervisor/host.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/rollup.hpp"
#include "obs/tracer.hpp"
#include "vm/blk_backend.hpp"
#include "vm/domain.hpp"

namespace vmig::cluster {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}  // namespace

Orchestrator::Orchestrator(sim::Simulator& sim, core::MigrationManager& mgr,
                           OrchestratorConfig cfg)
    : sim_{sim},
      mgr_{mgr},
      cfg_{cfg},
      admission_{cfg.caps},
      policy_{make_policy(cfg.policy, cfg.max_deferrals)},
      wake_{sim} {
  if (cfg_.registry != nullptr) {
    m_submitted_ = &cfg_.registry->counter("cluster.jobs_submitted");
    m_completed_ = &cfg_.registry->counter("cluster.jobs_completed");
    m_failed_ = &cfg_.registry->counter("cluster.jobs_failed");
    m_retries_ = &cfg_.registry->counter("cluster.retries");
    m_resumed_retries_ = &cfg_.registry->counter("cluster.resumed_retries");
    m_resumed_saved_ =
        &cfg_.registry->counter("cluster.resumed_blocks_saved");
    m_deferrals_ = &cfg_.registry->counter("cluster.deferrals");
    m_running_ = &cfg_.registry->gauge("cluster.running");
    m_pending_ = &cfg_.registry->gauge("cluster.pending");
  }
  tracer_ = cfg_.tracer;
  if (tracer_ != nullptr) trk_ = tracer_->track("cluster", "orchestrator");
}

JobId Orchestrator::submit(core::MigrationRequest req) {
  if (req.domain == nullptr || req.from == nullptr || req.to == nullptr) {
    throw std::invalid_argument{"cluster: submit with null domain or host"};
  }
  if (!req.from->connected_to(*req.to)) {
    throw std::invalid_argument{"cluster: hosts '" + req.from->name() +
                                "' and '" + req.to->name() +
                                "' are not connected"};
  }

  const JobId id = static_cast<JobId>(jobs_.size());
  MigrationJob j;
  j.id = id;
  j.request = std::move(req);
  j.submitted = sim_.now();
  j.next_eligible = sim_.now();
  jobs_.push_back(std::move(j));

  // A cycle-aware scheduler needs to watch each queued domain's write rate
  // before its migration starts, so switch the block-bitmap on at submit.
  // Safe even when the eventual pass must be a full copy: the manager's
  // pairwise-validity guard decides full-vs-incremental independently of
  // who enabled tracking.
  MigrationJob& job = jobs_.back();
  if (cfg_.policy == SchedulePolicyKind::kWorkloadCycleAware) {
    vm::BlkBackend& be = job.request.from->backend_for(job.request.domain->id());
    if (!be.tracking()) {
      be.start_write_tracking(job.request.config.bitmap_kind);
      be.set_tracking_overhead(job.request.config.tracking_overhead);
    }
    // The policy judges each job by its measured write rate, so give the
    // sampler one poll window before the job first becomes launchable:
    // prime the sample now, measure the delta at next_eligible.
    job.next_eligible = sim_.now() + cfg_.poll_interval;
    RateSample& rs = rates_[job.request.domain->id()];
    rs.primed = true;
    rs.count = be.dirty_marks_total();
    rs.at = sim_.now();
  }

  if (m_submitted_ != nullptr) m_submitted_->add(1.0);
  if (cfg_.rollup != nullptr) cfg_.rollup->job_submitted();
  if (m_pending_ != nullptr) {
    m_pending_->set(static_cast<double>(jobs_.size() - terminal_) - running_);
  }
  if (tracer_ != nullptr) {
    tracer_->instant(trk_, "job_submitted",
                     "\"job\":" + std::to_string(id) + ",\"domain\":\"" +
                         job.request.domain->name() + "\"");
  }
  wake_.notify_all();
  return id;
}

std::vector<JobId> Orchestrator::submit_evacuation(
    hv::Host& from, const std::vector<hv::Host*>& dests,
    const core::MigrationConfig& cfg, int priority) {
  std::vector<JobId> ids;
  for (core::MigrationRequest& r :
       EvacuationPlanner::requests(from, dests, cfg, priority)) {
    ids.push_back(submit(std::move(r)));
  }
  return ids;
}

sim::Task<void> Orchestrator::run() {
  while (terminal_ < jobs_.size()) {
    bool deferred = false;
    {
      // One synchronous scheduling pass; the scope closes before the wait.
      // launch_ready() spawns job coroutines that run to first suspension
      // here, so their setup cost nests under the tick.
      obs::ProfScope prof{obs::ProfCategory::kOrchestratorTick};
      obs::prof_count(obs::ProfCategory::kOrchestratorTick);
      expire_deadlines();
      if (terminal_ < jobs_.size()) {
        sample_dirty_rates();
        deferred = launch_ready();
      }
    }
    if (terminal_ == jobs_.size()) break;

    sim::TimePoint next = next_pending_event();
    if (deferred) {
      next = std::min(next, sim_.now() + cfg_.poll_interval);
    }
    if (next != sim::TimePoint::max()) arm_wakeup(next);
    co_await wake_.wait();
  }
  if (wake_armed_) {
    sim_.cancel(wake_timer_);
    wake_armed_ = false;
  }
}

void Orchestrator::drain() {
  sim_.spawn(run());
  sim_.run();
}

sim::Task<void> Orchestrator::job_runner(JobId id) {
  // Copy what the suspension needs out of the job record up front: holding
  // a reference into `jobs_` across the migrate() co_await would rely on
  // deque reference stability, which C2 (rightly) refuses to assume.
  const auto attempt = jobs_[id].attempts;
  // Per-job request copy and trace-span strings are control-plane work,
  // charged kOther (the IIFEs return prvalues, so construction happens
  // inside the scoped lambdas and no scope spans the co_await).
  core::MigrationRequest req = [&] {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    core::MigrationRequest r = jobs_[id].request;
    // Jobs that carry no observability of their own inherit the
    // orchestrator's, so every TPM phase span lands in one trace.
    if (r.config.obs_registry == nullptr) r.config.obs_registry = cfg_.registry;
    if (r.config.obs_tracer == nullptr) r.config.obs_tracer = cfg_.tracer;
    if (r.config.obs_recorder == nullptr) r.config.obs_recorder = cfg_.recorder;
    return r;
  }();
  obs::Span span = [&] {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    return obs::Span{tracer_, trk_,
                     "job " + req.domain->name() + " -> " + req.to->name(),
                     "\"job\":" + std::to_string(id) +
                         ",\"attempt\":" + std::to_string(attempt)};
  }();
  core::MigrationOutcome out = co_await mgr_.migrate(std::move(req));
  {
    obs::ProfScope finish_prof{obs::ProfCategory::kOther};
    span.set_args("\"job\":" + std::to_string(id) +
                  ",\"attempt\":" + std::to_string(attempt) + ",\"status\":\"" +
                  core::to_string(out.status) + "\"");
    span.end();
    on_finished(id, std::move(out));
  }
}

void Orchestrator::on_finished(JobId id, core::MigrationOutcome outcome) {
  MigrationJob& j = jobs_[id];
  admission_.release(*j.request.from, *j.request.to);
  --running_;
  if (cfg_.rollup != nullptr) {
    cfg_.rollup->attempt_finished(j.request.from, j.request.to);
  }
  outcome.attempts = j.attempts;
  j.outcome = std::move(outcome);

  // Resume-aware retry accounting: the report says whether this attempt was
  // seeded from a previous abort's transferred bitmap, and how many blocks
  // that saved versus a from-scratch restart.
  if (j.outcome.report.resume_applied) {
    if (m_resumed_retries_ != nullptr) m_resumed_retries_->add(1.0);
    if (m_resumed_saved_ != nullptr) {
      m_resumed_saved_->add(
          static_cast<double>(j.outcome.report.resumed_blocks_saved));
    }
    if (tracer_ != nullptr) {
      tracer_->instant(trk_, "job_resumed",
                       "\"job\":" + std::to_string(id) + ",\"blocks_saved\":" +
                           std::to_string(j.outcome.report.resumed_blocks_saved));
    }
  }

  if (j.outcome.status == core::MigrationStatus::kCompleted) {
    mark_terminal(j, JobState::kCompleted);
  } else if (j.attempts < cfg_.retry.max_attempts) {
    // Clean engine abort (link disruption / non-convergence): back off
    // exponentially and requeue. The guest kept running at the source the
    // whole time, so a retry is always safe.
    j.state = JobState::kPending;
    j.next_eligible = sim_.now() + cfg_.retry.backoff_after(j.attempts);
    ++retries_;
    if (m_retries_ != nullptr) m_retries_->add(1.0);
    if (cfg_.rollup != nullptr) cfg_.rollup->job_retry(j.request.from);
    if (tracer_ != nullptr) {
      tracer_->instant(trk_, "job_retry_scheduled",
                       "\"job\":" + std::to_string(id) + ",\"attempt\":" +
                           std::to_string(j.attempts) + ",\"status\":\"" +
                           core::to_string(j.outcome.status) + "\"");
    }
  } else {
    mark_terminal(j, JobState::kFailed);
  }

  if (m_running_ != nullptr) m_running_->set(running_);
  if (m_pending_ != nullptr) {
    m_pending_->set(static_cast<double>(jobs_.size() - terminal_) - running_);
  }
  wake_.notify_all();
}

bool Orchestrator::launch_ready() {
  bool deferred = false;
  for (;;) {
    std::vector<JobView> eligible;
    for (const MigrationJob& j : jobs_) {
      if (j.state != JobState::kPending) continue;
      if (j.next_eligible > sim_.now()) continue;
      if (!admission_.admissible(*j.request.from, *j.request.to)) continue;
      eligible.push_back(view_of(j));
    }
    if (eligible.empty()) return deferred;

    const std::size_t pick = policy_->pick(eligible);
    if (pick == SchedulerPolicy::kDefer) {
      // The policy looked at every launchable job and chose to wait for a
      // cooler workload cycle; note the pass-over on each one so the
      // forced-through budget eventually unblocks a permanently-hot VM.
      for (const JobView& v : eligible) ++jobs_[v.job->id].deferrals;
      ++deferrals_;
      if (m_deferrals_ != nullptr) m_deferrals_->add(1.0);
      if (cfg_.rollup != nullptr) cfg_.rollup->deferral();
      return true;
    }

    MigrationJob& j = jobs_[eligible[pick].job->id];
    admission_.acquire(*j.request.from, *j.request.to);
    j.state = JobState::kRunning;
    ++j.attempts;
    ++running_;
    peak_running_ = std::max(peak_running_, running_);
    if (cfg_.rollup != nullptr) {
      cfg_.rollup->attempt_started(j.request.from, j.request.to);
    }
    if (m_running_ != nullptr) m_running_->set(running_);
    if (m_pending_ != nullptr) {
      m_pending_->set(static_cast<double>(jobs_.size() - terminal_) - running_);
    }
    sim_.spawn(job_runner(j.id));
  }
}

void Orchestrator::expire_deadlines() {
  for (MigrationJob& j : jobs_) {
    if (j.state != JobState::kPending) continue;
    if (j.request.deadline <= sim::Duration::zero()) continue;
    if (sim_.now() < j.submitted + j.request.deadline) continue;
    j.outcome.status = core::MigrationStatus::kDeadlineExpired;
    j.outcome.attempts = j.attempts;
    mark_terminal(j, JobState::kFailed);
    if (m_pending_ != nullptr) {
      m_pending_->set(static_cast<double>(jobs_.size() - terminal_) - running_);
    }
  }
}

void Orchestrator::sample_dirty_rates() {
  for (const MigrationJob& j : jobs_) {
    if (j.state != JobState::kPending) continue;
    const vm::DomainId d = j.request.domain->id();
    const vm::BlkBackend& be = j.request.from->backend_for(d);
    // Marks (not set-bits): a guest rewriting one hot window keeps a flat
    // set-bit count but a high re-dirty rate, and re-dirtying is exactly
    // what defeats pre-copy convergence.
    const std::uint64_t count = be.tracking() ? be.dirty_marks_total() : 0;

    RateSample& rs = rates_[d];
    if (!rs.primed || count < rs.count) {
      // First observation, or tracking restarted (a migration attempt ran
      // in between): re-prime rather than report a bogus negative rate.
      rs.primed = true;
      rs.blocks_per_s = 0.0;
    } else if (sim_.now() > rs.at) {
      rs.blocks_per_s = static_cast<double>(count - rs.count) /
                        (sim_.now() - rs.at).to_seconds();
    }
    rs.count = count;
    rs.at = sim_.now();
  }
}

JobView Orchestrator::view_of(const MigrationJob& j) const {
  JobView v;
  v.job = &j;
  v.dirty_blocks = dirty_blocks_of(j);
  if (auto it = rates_.find(j.request.domain->id()); it != rates_.end()) {
    v.dirty_blocks_per_s = it->second.blocks_per_s;
  }
  const net::Link& link = j.request.from->link_to(*j.request.to);
  const auto& geo = j.request.from->vbd_for(j.request.domain->id()).geometry();
  v.link_blocks_per_s =
      link.params().bandwidth_mibps * kMiB / static_cast<double>(geo.block_size);
  return v;
}

std::uint64_t Orchestrator::dirty_blocks_of(const MigrationJob& j) const {
  const vm::BlkBackend& be = j.request.from->backend_for(j.request.domain->id());
  if (be.tracking()) return be.dirty_block_count();
  // Nothing tracked: the first pass copies the whole device.
  return j.request.from->vbd_for(j.request.domain->id()).geometry().block_count;
}

void Orchestrator::arm_wakeup(sim::TimePoint t) {
  if (wake_armed_ && wake_at_ <= t) return;
  if (wake_armed_) sim_.cancel(wake_timer_);
  wake_armed_ = true;
  wake_at_ = t;
  wake_timer_ = sim_.schedule_at(t, [this] {
    wake_armed_ = false;
    wake_.notify_all();
  });
}

sim::TimePoint Orchestrator::next_pending_event() const {
  sim::TimePoint next = sim::TimePoint::max();
  for (const MigrationJob& j : jobs_) {
    if (j.state != JobState::kPending) continue;
    if (j.next_eligible > sim_.now()) next = std::min(next, j.next_eligible);
    if (j.request.deadline > sim::Duration::zero()) {
      const sim::TimePoint dl = j.submitted + j.request.deadline;
      if (dl > sim_.now()) next = std::min(next, dl);
    }
  }
  return next;
}

void Orchestrator::mark_terminal(MigrationJob& j, JobState state) {
  j.state = state;
  j.finished = sim_.now();
  completion_order_.push_back(j.id);
  ++terminal_;
  if (state == JobState::kCompleted) {
    ++completed_;
    if (m_completed_ != nullptr) m_completed_->add(1.0);
  } else {
    ++failed_;
    if (m_failed_ != nullptr) m_failed_->add(1.0);
  }
  if (tracer_ != nullptr) {
    tracer_->instant(trk_, "job_terminal",
                     "\"job\":" + std::to_string(j.id) + ",\"state\":\"" +
                         to_string(j.state) + "\",\"status\":\"" +
                         core::to_string(j.outcome.status) + "\"");
  }
  if (cfg_.rollup != nullptr) {
    obs::RollupJobClose close;
    close.completed = state == JobState::kCompleted;
    // Exactly vmig_analyze's SLO predicate: a deadline of zero means no SLO;
    // otherwise the job must complete within it.
    const std::int64_t deadline_ns = j.request.deadline.ns();
    const std::int64_t total_ns = (j.finished - j.submitted).ns();
    close.slo_miss =
        deadline_ns > 0 && !(close.completed && total_ns <= deadline_ns);
    close.bytes = j.outcome.report.total_bytes();
    close.downtime_ns = j.outcome.report.downtime().ns();
    close.dirty_blocks = j.outcome.report.blocks_retransferred +
                         j.outcome.report.residual_dirty_blocks;
    cfg_.rollup->job_terminal(j.request.from, j.request.to, close);
  }
  if (cfg_.recorder != nullptr) {
    obs::JobRecord rec;
    rec.job = j.id;
    rec.domain = j.request.domain->name();
    rec.from = j.request.from->name();
    rec.to = j.request.to->name();
    rec.status = core::to_string(j.outcome.status);
    rec.submitted_ns = j.submitted.ns();
    rec.finished_ns = j.finished.ns();
    rec.deadline_ns = j.request.deadline.ns();
    rec.attempts = static_cast<std::uint32_t>(j.attempts);
    rec.deferrals = static_cast<std::uint32_t>(j.deferrals);
    rec.downtime_ns = j.outcome.report.downtime().ns();
    rec.total_ns = (j.finished - j.submitted).ns();
    rec.resume_applied = j.outcome.report.resume_applied;
    rec.resumed_blocks_saved = j.outcome.report.resumed_blocks_saved;
    cfg_.recorder->job_record(std::move(rec));
  }
}

}  // namespace vmig::cluster
