#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cluster/admission.hpp"
#include "cluster/backoff.hpp"
#include "cluster/evacuation.hpp"
#include "cluster/job.hpp"
#include "cluster/scheduler.hpp"
#include "core/migration_manager.hpp"
#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"

namespace vmig::obs {
class Counter;
class FlightRecorder;
class Gauge;
class Registry;
class Rollup;
class Tracer;
}  // namespace vmig::obs

namespace vmig::cluster {

/// Orchestrator tunables: the admission caps, retry policy, scheduling
/// policy, and observability sinks shared by every job.
struct OrchestratorConfig {
  AdmissionCaps caps{};
  RetryPolicy retry{};
  SchedulePolicyKind policy = SchedulePolicyKind::kFifo;
  /// Cadence at which dirty rates are re-sampled and a deferring policy is
  /// re-evaluated (also the granularity of deadline expiry while idle).
  sim::Duration poll_interval = sim::Duration::millis(500);
  /// Deferral budget per job for WorkloadCycleAwarePolicy; once exceeded
  /// the job is forced through regardless of its dirty rate.
  int max_deferrals = 64;
  /// When set, the orchestrator registers cluster.* metrics / emits per-job
  /// spans, and injects both sinks into every job config that has none —
  /// so each job's TPM phase spans land in the same trace.
  obs::Registry* registry = nullptr;
  obs::Tracer* tracer = nullptr;
  /// When set, injected into every job config that has none (so each job's
  /// engine events land in one flight record) and fed a terminal JobRecord
  /// per job — the per-job SLO rows of `vmig_analyze`.
  obs::FlightRecorder* recorder = nullptr;
  /// When set, fed the fleet-rollup job lifecycle: submissions, attempt
  /// start/finish per host pair, retries, deferrals, and a terminal close
  /// (bytes, downtime, SLO verdict, dirty blocks) per job. Hosts must be
  /// registered with the rollup (ClusterTestbed::attach_rollup does this)
  /// before their jobs reach a terminal state.
  obs::Rollup* rollup = nullptr;
};

/// Cluster migration orchestrator: accepts a queue of MigrationRequests and
/// drives every one to a terminal state across N hosts — admission-
/// controlled concurrency (per source, per destination, per link), a
/// pluggable scheduling policy, and retry with exponential backoff on
/// clean engine aborts (link disruption, non-convergence).
///
/// Single-threaded and deterministic like everything above the simulator:
/// the same job set on the same seed yields byte-identical completion
/// order, outcomes, and exported traces.
///
/// Lifetime: declare after the Simulator and MigrationManager and keep
/// alive until the simulator drains; run() and the per-job runners are root
/// tasks referencing this object.
///
/// Usage:
///   Orchestrator orch{sim, mgr, {.caps = {...}, .policy = ...}};
///   orch.submit({.domain = &vm, .from = &a, .to = &b, .config = cfg});
///   orch.submit_evacuation(doomed, {&h1, &h2}, cfg);
///   orch.drain();               // or: sim.spawn(orch.run()); sim.run();
class Orchestrator {
 public:
  Orchestrator(sim::Simulator& sim, core::MigrationManager& mgr,
               OrchestratorConfig cfg = {});

  /// Enqueue one migration. Throws std::invalid_argument on a null
  /// domain/from/to or an unconnected host pair. May be called while run()
  /// is active (e.g. from a workload script reacting to events).
  JobId submit(core::MigrationRequest req);

  /// Plan a drain of `from` over the connected `dests` by free capacity
  /// (EvacuationPlanner) and submit every resulting job.
  std::vector<JobId> submit_evacuation(hv::Host& from,
                                       const std::vector<hv::Host*>& dests,
                                       const core::MigrationConfig& cfg,
                                       int priority = 0);

  /// Drive all submitted jobs to a terminal state; returns when the queue
  /// is empty and no attempt is in flight. Spawn as a root task.
  sim::Task<void> run();

  /// Convenience: spawn run() and run the simulator until it goes idle.
  void drain();

  // ---- Introspection (stable across run()) ----
  const MigrationJob& job(JobId id) const { return jobs_.at(id); }
  std::size_t job_count() const noexcept { return jobs_.size(); }
  bool all_terminal() const noexcept { return terminal_ == jobs_.size(); }
  /// Jobs in the order they reached a terminal state (completed or failed).
  const std::vector<JobId>& completion_order() const noexcept {
    return completion_order_;
  }
  std::uint64_t jobs_completed() const noexcept { return completed_; }
  std::uint64_t jobs_failed() const noexcept { return failed_; }
  /// Attempts re-enqueued through the backoff layer.
  std::uint64_t retries() const noexcept { return retries_; }
  /// Times a policy passed over an eligible job set (cycle-aware deferral).
  std::uint64_t deferrals() const noexcept { return deferrals_; }
  /// High-water mark of concurrently-running migrations.
  int peak_running() const noexcept { return peak_running_; }
  const AdmissionControl& admission() const noexcept { return admission_; }

 private:
  sim::Task<void> job_runner(JobId id);
  void on_finished(JobId id, core::MigrationOutcome outcome);
  /// Launch every job the caps and policy allow right now. Returns true if
  /// at least one launched.
  bool launch_ready();
  /// Fail pending jobs whose deadline has passed.
  void expire_deadlines();
  /// Update per-domain dirty-rate samples for pending jobs.
  void sample_dirty_rates();
  JobView view_of(const MigrationJob& j) const;
  std::uint64_t dirty_blocks_of(const MigrationJob& j) const;
  /// Arm (or tighten) the wakeup timer to fire at `t`.
  void arm_wakeup(sim::TimePoint t);
  /// Next instant a pending job's backoff or deadline needs service, or
  /// TimePoint::max() if none.
  sim::TimePoint next_pending_event() const;
  void mark_terminal(MigrationJob& j, JobState state);

  sim::Simulator& sim_;
  core::MigrationManager& mgr_;
  OrchestratorConfig cfg_;
  AdmissionControl admission_;
  std::unique_ptr<SchedulerPolicy> policy_;

  std::deque<MigrationJob> jobs_;  ///< indexed by JobId; references stable
  std::vector<JobId> completion_order_;
  std::size_t terminal_ = 0;
  int running_ = 0;
  int peak_running_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t deferrals_ = 0;

  /// Dirty-rate sampler state, keyed by domain id (ordered: deterministic).
  struct RateSample {
    sim::TimePoint at{};
    std::uint64_t count = 0;
    double blocks_per_s = 0.0;
    bool primed = false;
  };
  std::map<vm::DomainId, RateSample> rates_;

  sim::Notifier wake_;
  bool wake_armed_ = false;
  sim::TimePoint wake_at_{};
  sim::Simulator::TimerId wake_timer_ = 0;

  // Observability (null = off).
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_resumed_retries_ = nullptr;
  obs::Counter* m_resumed_saved_ = nullptr;
  obs::Counter* m_deferrals_ = nullptr;
  obs::Gauge* m_running_ = nullptr;
  obs::Gauge* m_pending_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trk_ = 0;  ///< "cluster/orchestrator" track
};

}  // namespace vmig::cluster
