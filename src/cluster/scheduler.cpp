#include "cluster/scheduler.hpp"

namespace vmig::cluster {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    default:
      return "failed";
  }
}

namespace {

/// Queue order shared by every policy's tie-breaking: priority descending,
/// then submission (job id) ascending.
bool queue_before(const JobView& a, const JobView& b) {
  if (a.job->request.priority != b.job->request.priority) {
    return a.job->request.priority > b.job->request.priority;
  }
  return a.job->id < b.job->id;
}

}  // namespace

std::size_t FifoPolicy::pick(const std::vector<JobView>& eligible) {
  if (eligible.empty()) return kDefer;
  std::size_t best = 0;
  for (std::size_t i = 1; i < eligible.size(); ++i) {
    if (queue_before(eligible[i], eligible[best])) best = i;
  }
  return best;
}

std::size_t SmallestDirtyFirstPolicy::pick(
    const std::vector<JobView>& eligible) {
  if (eligible.empty()) return kDefer;
  std::size_t best = 0;
  for (std::size_t i = 1; i < eligible.size(); ++i) {
    if (eligible[i].dirty_blocks < eligible[best].dirty_blocks ||
        (eligible[i].dirty_blocks == eligible[best].dirty_blocks &&
         queue_before(eligible[i], eligible[best]))) {
      best = i;
    }
  }
  return best;
}

bool WorkloadCycleAwarePolicy::too_hot(const JobView& v) {
  if (v.link_blocks_per_s <= 0.0) return false;
  return v.dirty_blocks_per_s >=
         v.job->request.config.disk_dirty_rate_abort_ratio *
             v.link_blocks_per_s;
}

std::size_t WorkloadCycleAwarePolicy::pick(
    const std::vector<JobView>& eligible) {
  std::size_t best = kDefer;
  // Cool jobs first, in queue order; a job deferred past the budget is
  // treated as cool (forced through), so a permanently-hot VM still runs.
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    const bool forced = eligible[i].job->deferrals >= max_deferrals_;
    if (too_hot(eligible[i]) && !forced) continue;
    if (best == kDefer || queue_before(eligible[i], eligible[best])) best = i;
  }
  return best;
}

std::unique_ptr<SchedulerPolicy> make_policy(SchedulePolicyKind kind,
                                             int max_deferrals) {
  switch (kind) {
    case SchedulePolicyKind::kSmallestDirtyFirst:
      return std::make_unique<SmallestDirtyFirstPolicy>();
    case SchedulePolicyKind::kWorkloadCycleAware:
      return std::make_unique<WorkloadCycleAwarePolicy>(max_deferrals);
    default:
      return std::make_unique<FifoPolicy>();
  }
}

}  // namespace vmig::cluster
