#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/job.hpp"

namespace vmig::cluster {

/// Everything a scheduling policy may consider about one eligible job.
/// The orchestrator computes these snapshots right before each pick, so
/// policies stay pure ranking functions (trivial to test in isolation).
struct JobView {
  const MigrationJob* job = nullptr;
  /// Blocks a migration launched now would move in its first pass: the
  /// source backend's tracked dirty count, or the whole VBD when nothing
  /// (or no longer anything valid) is tracked.
  std::uint64_t dirty_blocks = 0;
  /// Recent dirty rate of the domain, in blocks/second, sampled from the
  /// block-bitmap over the orchestrator's poll interval (0 until two
  /// samples exist).
  double dirty_blocks_per_s = 0.0;
  /// What the (from -> to) link can carry, in blocks/second.
  double link_blocks_per_s = 0.0;
};

/// Pluggable job-selection policy. The orchestrator presents every job that
/// is pending, past its backoff window, and admissible under the current
/// caps; the policy returns the index of the job to launch, or kDefer to
/// launch nothing for now (re-evaluated after the poll interval or the next
/// job completion). Policies must be deterministic functions of the views.
class SchedulerPolicy {
 public:
  static constexpr std::size_t kDefer = std::numeric_limits<std::size_t>::max();

  virtual ~SchedulerPolicy() = default;
  virtual const char* name() const = 0;
  virtual std::size_t pick(const std::vector<JobView>& eligible) = 0;
};

/// Strict queue order: highest priority first, then submission order.
class FifoPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "fifo"; }
  std::size_t pick(const std::vector<JobView>& eligible) override;
};

/// Shortest-job-first on the block-bitmap: launch the job with the smallest
/// dirty set (= least data to move), so quick wins free their admission
/// slots early. Priority still dominates; ties break by submission order.
class SmallestDirtyFirstPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "smallest-dirty"; }
  std::size_t pick(const std::vector<JobView>& eligible) override;
};

/// Workload-cycle-aware deferral (the Baruchi et al. insight): a VM whose
/// recent dirty rate would outrun its link's transfer rate cannot converge —
/// launching it now burns bandwidth until the §IV-B proactive stop fires.
/// Defer such jobs until their workload cycle cools down (dirty rate back
/// under `abort_ratio x link rate`, the same ratio the engine's dirty-rate
/// abort uses, taken from each job's own MigrationConfig). Cool jobs launch
/// in FIFO order; a job deferred more than the orchestrator's max_deferrals
/// is forced through regardless, so a never-idle VM still migrates
/// (post-copy absorbs what pre-copy cannot).
class WorkloadCycleAwarePolicy : public SchedulerPolicy {
 public:
  explicit WorkloadCycleAwarePolicy(int max_deferrals = 64)
      : max_deferrals_{max_deferrals} {}
  const char* name() const override { return "workload-cycle"; }
  std::size_t pick(const std::vector<JobView>& eligible) override;

  /// True if the view's dirty rate exceeds its config's abort ratio times
  /// the link rate — i.e. launching now would trigger the dirty-rate abort.
  static bool too_hot(const JobView& v);

 private:
  int max_deferrals_;
};

enum class SchedulePolicyKind : std::uint8_t {
  kFifo,
  kSmallestDirtyFirst,
  kWorkloadCycleAware,
};

std::unique_ptr<SchedulerPolicy> make_policy(SchedulePolicyKind kind,
                                             int max_deferrals = 64);

}  // namespace vmig::cluster
