#pragma once

#include <bit>
#include <cstdint>
#include <optional>

namespace vmig::core {

/// A maximal run of consecutive set bits: [start, start + len).
struct SetRun {
  std::uint64_t start = 0;
  std::uint64_t len = 0;
  bool operator==(const SetRun&) const = default;
};

/// Word-cursor contract shared by every bitmap kind (the abstraction that
/// replaced DirtyBitmap's per-bit variant dispatch).
///
/// A bitmap models its bit space as an array of 64-bit leaf words and
/// exposes three word-level accessors:
///
///   std::uint64_t word_count() const;        // number of leaf words
///   std::uint64_t leaf_word(wi) const;       // word wi (0 if unallocated)
///   std::uint64_t skip_to_live(wi) const;    // first index >= wi that is
///                                            // not provably zero, else
///                                            // word_count()
///
/// `skip_to_live` is where the hierarchy earns its keep: the flat bitmap
/// returns `wi` (no skipping), the 2-level bitmap jumps over clean parts via
/// its upper level, and the 3-level bitmap jumps over clean cache lines via
/// summary + line directory. Every traversal below is written once against
/// this contract and instantiated per kind, so iteration advances a word
/// (64 bits) — not a bit — per step, with `popcount`/`countr_zero` doing the
/// in-word work.
namespace wordops {

/// Index of the first set bit at or after `from`; nullopt if none.
template <typename BM>
std::optional<std::uint64_t> next_set(const BM& bm, std::uint64_t from) {
  if (from >= bm.size()) return std::nullopt;
  const std::uint64_t nw = bm.word_count();
  std::uint64_t wi = from >> 6;
  std::uint64_t w = bm.leaf_word(wi) & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (w != 0) {
      return wi * 64 + static_cast<std::uint64_t>(std::countr_zero(w));
    }
    wi = bm.skip_to_live(wi + 1);
    if (wi >= nw) return std::nullopt;
    w = bm.leaf_word(wi);
  }
}

/// Index of the first *clear* bit at or after `from`; size() if none.
/// Clear bits have no skip hierarchy, but any word that is not all-ones
/// stops the scan, so the cost is one load per 64 bits of solid dirt.
template <typename BM>
std::uint64_t next_clear(const BM& bm, std::uint64_t from) {
  const std::uint64_t size = bm.size();
  if (from >= size) return size;
  const std::uint64_t nw = bm.word_count();
  std::uint64_t wi = from >> 6;
  std::uint64_t w = ~bm.leaf_word(wi) & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (w != 0) {
      const std::uint64_t i =
          wi * 64 + static_cast<std::uint64_t>(std::countr_zero(w));
      return i < size ? i : size;
    }
    if (++wi >= nw) return size;
    w = ~bm.leaf_word(wi);
  }
}

/// Length of the run of consecutive set bits starting exactly at `from`
/// (`from` must be set), capped at `max_len`.
template <typename BM>
std::uint64_t run_length(const BM& bm, std::uint64_t from, std::uint64_t max_len) {
  const std::uint64_t stop = next_clear(bm, from);
  const std::uint64_t n = stop - from;
  return n < max_len ? n : max_len;
}

/// The next set run at or after `from`, clipped to [from, end); nullopt when
/// no set bit remains in the window. `max_len` caps the run (transfer chunk).
template <typename BM>
std::optional<SetRun> next_set_run(const BM& bm, std::uint64_t from,
                                   std::uint64_t end, std::uint64_t max_len) {
  const auto s = next_set(bm, from);
  if (!s.has_value() || *s >= end) return std::nullopt;
  std::uint64_t len = run_length(bm, *s, max_len);
  if (*s + len > end) len = end - *s;
  return SetRun{*s, len};
}

/// Invoke f(index) for each set bit in [start, start + count), ascending.
template <typename BM, typename F>
void for_each_set_in(const BM& bm, std::uint64_t start, std::uint64_t count,
                     F&& f) {
  std::uint64_t end = start + count;
  if (end > bm.size()) end = bm.size();
  if (start >= end) return;
  const std::uint64_t last_w = (end - 1) >> 6;
  const std::uint64_t tail = end & 63;
  const std::uint64_t tail_mask =
      tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
  std::uint64_t wi = start >> 6;
  std::uint64_t w = bm.leaf_word(wi) & (~std::uint64_t{0} << (start & 63));
  for (;;) {
    if (wi == last_w) w &= tail_mask;
    while (w != 0) {
      f(wi * 64 + static_cast<std::uint64_t>(std::countr_zero(w)));
      w &= w - 1;
    }
    if (wi >= last_w) return;
    wi = bm.skip_to_live(wi + 1);
    if (wi > last_w) return;
    w = bm.leaf_word(wi);
  }
}

/// Invoke f(index) for every set bit, ascending.
template <typename BM, typename F>
void for_each_set(const BM& bm, F&& f) {
  for_each_set_in(bm, 0, bm.size(), std::forward<F>(f));
}

/// Word-wise in-place union: dst |= src, visiting only src's live words.
/// Works across kinds; dst must expose or_word(wi, bits).
template <typename Dst, typename Src>
void or_from(Dst& dst, const Src& src) {
  const std::uint64_t nw = src.word_count();
  for (std::uint64_t wi = src.skip_to_live(0); wi < nw;
       wi = src.skip_to_live(wi + 1)) {
    if (const std::uint64_t w = src.leaf_word(wi); w != 0) dst.or_word(wi, w);
  }
}

/// Word-wise in-place subtraction: dst &= ~src, visiting only src's live
/// words. Works across kinds; dst must expose andnot_word(wi, bits).
template <typename Dst, typename Src>
void subtract_from(Dst& dst, const Src& src) {
  const std::uint64_t nw = src.word_count();
  for (std::uint64_t wi = src.skip_to_live(0); wi < nw;
       wi = src.skip_to_live(wi + 1)) {
    if (const std::uint64_t w = src.leaf_word(wi); w != 0) {
      dst.andnot_word(wi, w);
    }
  }
}

}  // namespace wordops
}  // namespace vmig::core
