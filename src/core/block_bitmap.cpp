#include "core/block_bitmap.hpp"

#include <algorithm>
#include <cassert>

namespace vmig::core {

BlockBitmap::BlockBitmap(std::uint64_t size_bits, bool initially_set)
    : size_{size_bits}, words_((size_bits + 63) / 64, 0) {
  if (initially_set) fill(true);
}

void BlockBitmap::set_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  // Head: partial word.
  while (i < end && (i & 63) != 0) set(i++);
  // Body: whole words.
  while (i + 64 <= end) {
    std::uint64_t& w = words_[i >> 6];
    set_count_ += 64 - static_cast<std::uint64_t>(std::popcount(w));
    w = ~std::uint64_t{0};
    i += 64;
  }
  // Tail.
  while (i < end) set(i++);
}

void BlockBitmap::clear_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  while (i < end && (i & 63) != 0) clear(i++);
  while (i + 64 <= end) {
    std::uint64_t& w = words_[i >> 6];
    set_count_ -= static_cast<std::uint64_t>(std::popcount(w));
    w = 0;
    i += 64;
  }
  while (i < end) clear(i++);
}

void BlockBitmap::fill(bool value) {
  if (!value) {
    std::fill(words_.begin(), words_.end(), 0);
    set_count_ = 0;
    return;
  }
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  // Mask off bits beyond size_ in the last word so count/iteration stay exact.
  if (const std::uint64_t tail = size_ & 63; tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  set_count_ = size_;
}

std::optional<std::uint64_t> BlockBitmap::next_set(std::uint64_t from) const {
  if (from >= size_) return std::nullopt;
  std::size_t wi = from >> 6;
  std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (w != 0) {
      return static_cast<std::uint64_t>(wi) * 64 +
             static_cast<std::uint64_t>(std::countr_zero(w));
    }
    if (++wi >= words_.size()) return std::nullopt;
    w = words_[wi];
  }
}

std::uint64_t BlockBitmap::run_length(std::uint64_t from, std::uint64_t max_len) const {
  assert(test(from));
  std::uint64_t n = 0;
  std::uint64_t i = from;
  while (n < max_len && i < size_ && test(i)) {
    ++n;
    ++i;
  }
  return n;
}

void BlockBitmap::or_with(const BlockBitmap& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  recount();
}

void BlockBitmap::and_with(const BlockBitmap& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  recount();
}

void BlockBitmap::recount() {
  std::uint64_t n = 0;
  for (const std::uint64_t w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  set_count_ = n;
}

}  // namespace vmig::core
