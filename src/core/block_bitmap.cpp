#include "core/block_bitmap.hpp"

#include <algorithm>
#include <cassert>

namespace vmig::core {

BlockBitmap::BlockBitmap(std::uint64_t size_bits, bool initially_set)
    : size_{size_bits}, words_((size_bits + 63) / 64, 0) {
  if (initially_set) fill(true);
}

void BlockBitmap::set_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  // Head: partial word.
  while (i < end && (i & 63) != 0) set(i++);
  // Body: whole words.
  while (i + 64 <= end) {
    std::uint64_t& w = words_[i >> 6];
    set_count_ += 64 - static_cast<std::uint64_t>(std::popcount(w));
    w = ~std::uint64_t{0};
    i += 64;
  }
  // Tail.
  while (i < end) set(i++);
}

void BlockBitmap::clear_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  while (i < end && (i & 63) != 0) clear(i++);
  while (i + 64 <= end) {
    std::uint64_t& w = words_[i >> 6];
    set_count_ -= static_cast<std::uint64_t>(std::popcount(w));
    w = 0;
    i += 64;
  }
  while (i < end) clear(i++);
}

void BlockBitmap::fill(bool value) {
  if (!value) {
    std::fill(words_.begin(), words_.end(), 0);
    set_count_ = 0;
    return;
  }
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  // Mask off bits beyond size_ in the last word so count/iteration stay exact.
  if (const std::uint64_t tail = size_ & 63; tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  set_count_ = size_;
}

void BlockBitmap::or_with(const BlockBitmap& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  recount();
}

void BlockBitmap::and_with(const BlockBitmap& o) {
  assert(size_ == o.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  recount();
}

void BlockBitmap::recount() {
  std::uint64_t n = 0;
  for (const std::uint64_t w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  set_count_ = n;
}

}  // namespace vmig::core
