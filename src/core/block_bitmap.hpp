#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/bitmap_words.hpp"
#include "storage/block.hpp"

namespace vmig::core {

/// Flat block-bitmap: one bit per disk block (paper §IV-A-2).
///
/// 0 = clean, 1 = dirty. At 4 KB-block granularity a 32 GB disk costs 1 MB of
/// bitmap (the paper's headline number); at 512 B sectors it would cost 8 MB —
/// `bytes()` exposes that cost and the granularity bench sweeps it.
///
/// The set-bit count is maintained incrementally so the pre-copy loop's
/// stop conditions (remaining dirty blocks, dirty rate) are O(1).
///
/// Implements the word-cursor contract (core/bitmap_words.hpp); all
/// traversals run word-at-a-time through wordops.
class BlockBitmap {
 public:
  BlockBitmap() = default;
  explicit BlockBitmap(std::uint64_t size_bits, bool initially_set = false);

  std::uint64_t size() const noexcept { return size_; }

  bool test(std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::uint64_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    set_count_ += !(w & mask);
    w |= mask;
  }

  void clear(std::uint64_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    set_count_ -= !!(w & mask);
    w &= ~mask;
  }

  void set_range(std::uint64_t start, std::uint64_t count);
  void clear_range(std::uint64_t start, std::uint64_t count);

  /// Reset every bit to `value`.
  void fill(bool value);

  std::uint64_t count_set() const noexcept { return set_count_; }
  bool any() const noexcept { return set_count_ > 0; }
  bool none() const noexcept { return set_count_ == 0; }

  // -- word-cursor contract (core/bitmap_words.hpp) --
  std::uint64_t word_count() const noexcept { return words_.size(); }
  std::uint64_t leaf_word(std::uint64_t wi) const { return words_[wi]; }
  /// Flat bitmap: no hierarchy, every word is live.
  std::uint64_t skip_to_live(std::uint64_t wi) const noexcept { return wi; }
  /// OR `bits` into word `wi`, maintaining the set count.
  void or_word(std::uint64_t wi, std::uint64_t bits) {
    std::uint64_t& w = words_[wi];
    set_count_ += static_cast<std::uint64_t>(std::popcount(bits & ~w));
    w |= bits;
  }
  /// Clear `bits` in word `wi`, maintaining the set count.
  void andnot_word(std::uint64_t wi, std::uint64_t bits) {
    std::uint64_t& w = words_[wi];
    set_count_ -= static_cast<std::uint64_t>(std::popcount(bits & w));
    w &= ~bits;
  }

  /// Index of the first set bit at or after `from`; nullopt if none.
  std::optional<std::uint64_t> next_set(std::uint64_t from) const {
    return wordops::next_set(*this, from);
  }

  /// Index of the first clear bit at or after `from`; size() if none.
  std::uint64_t next_clear(std::uint64_t from) const {
    return wordops::next_clear(*this, from);
  }

  /// Longest run of consecutive set bits starting exactly at `from`
  /// (from must be set), capped at max_len. Used to coalesce transfers.
  std::uint64_t run_length(std::uint64_t from, std::uint64_t max_len) const {
    return wordops::run_length(*this, from, max_len);
  }

  /// Invoke f(index) for each set bit, ascending.
  template <typename F>
  void for_each_set(F&& f) const {
    wordops::for_each_set(*this, std::forward<F>(f));
  }

  /// Invoke f(index) for each set bit in [start, start + count), ascending.
  template <typename F>
  void for_each_set_in(std::uint64_t start, std::uint64_t count, F&& f) const {
    wordops::for_each_set_in(*this, start, count, std::forward<F>(f));
  }

  /// In-place union.
  void or_with(const BlockBitmap& o);
  /// In-place intersection.
  void and_with(const BlockBitmap& o);

  /// Memory footprint of the bit store (the §IV-A-2 cost argument).
  std::uint64_t bytes() const noexcept { return words_.size() * 8; }
  /// Bytes needed to ship this bitmap in the freeze-and-copy phase.
  std::uint64_t wire_bytes() const noexcept { return (size_ + 7) / 8; }

  bool operator==(const BlockBitmap& o) const = default;

 private:
  void recount();

  std::uint64_t size_ = 0;
  std::uint64_t set_count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace vmig::core
