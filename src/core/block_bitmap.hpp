#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "storage/block.hpp"

namespace vmig::core {

/// Flat block-bitmap: one bit per disk block (paper §IV-A-2).
///
/// 0 = clean, 1 = dirty. At 4 KB-block granularity a 32 GB disk costs 1 MB of
/// bitmap (the paper's headline number); at 512 B sectors it would cost 8 MB —
/// `bytes()` exposes that cost and the granularity bench sweeps it.
///
/// The set-bit count is maintained incrementally so the pre-copy loop's
/// stop conditions (remaining dirty blocks, dirty rate) are O(1).
class BlockBitmap {
 public:
  BlockBitmap() = default;
  explicit BlockBitmap(std::uint64_t size_bits, bool initially_set = false);

  std::uint64_t size() const noexcept { return size_; }

  bool test(std::uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::uint64_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    set_count_ += !(w & mask);
    w |= mask;
  }

  void clear(std::uint64_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    set_count_ -= !!(w & mask);
    w &= ~mask;
  }

  void set_range(std::uint64_t start, std::uint64_t count);
  void clear_range(std::uint64_t start, std::uint64_t count);

  /// Reset every bit to `value`.
  void fill(bool value);

  std::uint64_t count_set() const noexcept { return set_count_; }
  bool any() const noexcept { return set_count_ > 0; }
  bool none() const noexcept { return set_count_ == 0; }

  /// Index of the first set bit at or after `from`; nullopt if none.
  std::optional<std::uint64_t> next_set(std::uint64_t from) const;

  /// Longest run of consecutive set bits starting exactly at `from`
  /// (from must be set), capped at max_len. Used to coalesce transfers.
  std::uint64_t run_length(std::uint64_t from, std::uint64_t max_len) const;

  /// Invoke f(index) for each set bit, ascending.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        f(static_cast<std::uint64_t>(wi) * 64 + static_cast<std::uint64_t>(b));
        w &= w - 1;
      }
    }
  }

  /// In-place union.
  void or_with(const BlockBitmap& o);
  /// In-place intersection.
  void and_with(const BlockBitmap& o);

  /// Memory footprint of the bit store (the §IV-A-2 cost argument).
  std::uint64_t bytes() const noexcept { return words_.size() * 8; }
  /// Bytes needed to ship this bitmap in the freeze-and-copy phase.
  std::uint64_t wire_bytes() const noexcept { return (size_ + 7) / 8; }

  bool operator==(const BlockBitmap& o) const = default;

 private:
  void recount();

  std::uint64_t size_ = 0;
  std::uint64_t set_count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace vmig::core
