#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <variant>

#include "core/block_bitmap.hpp"
#include "core/layered_bitmap.hpp"

namespace vmig::core {

enum class BitmapKind : std::uint8_t { kFlat, kLayered };

inline const char* to_string(BitmapKind k) {
  return k == BitmapKind::kFlat ? "flat" : "layered";
}

/// Value-semantic dirty-block bitmap, flat or layered per configuration.
///
/// This is the object the split driver (`vmig::vm::BlkBackend`) maintains,
/// `blkd` snapshots each pre-copy iteration, and the freeze phase ships to
/// the destination. `take_and_reset()` implements the paper's
/// copy-then-reset at the start of each iteration.
class DirtyBitmap {
 public:
  DirtyBitmap() : impl_{BlockBitmap{}} {}
  DirtyBitmap(BitmapKind kind, std::uint64_t size_bits, bool initially_set = false)
      : impl_{kind == BitmapKind::kFlat
                  ? Impl{BlockBitmap{size_bits, initially_set}}
                  : Impl{LayeredBitmap{size_bits, LayeredBitmap::kDefaultPartBits,
                                       initially_set}}} {}

  BitmapKind kind() const noexcept {
    return std::holds_alternative<BlockBitmap>(impl_) ? BitmapKind::kFlat
                                                      : BitmapKind::kLayered;
  }

  std::uint64_t size() const {
    return std::visit([](const auto& b) { return b.size(); }, impl_);
  }
  bool test(std::uint64_t i) const {
    return std::visit([i](const auto& b) { return b.test(i); }, impl_);
  }
  void set(std::uint64_t i) {
    std::visit([i](auto& b) { b.set(i); }, impl_);
  }
  void clear(std::uint64_t i) {
    std::visit([i](auto& b) { b.clear(i); }, impl_);
  }
  void set_range(std::uint64_t start, std::uint64_t count) {
    std::visit([=](auto& b) { b.set_range(start, count); }, impl_);
  }
  void fill(bool value) {
    std::visit([value](auto& b) { b.fill(value); }, impl_);
  }
  std::uint64_t count_set() const {
    return std::visit([](const auto& b) { return b.count_set(); }, impl_);
  }
  bool any() const { return count_set() > 0; }
  bool none() const { return count_set() == 0; }
  std::optional<std::uint64_t> next_set(std::uint64_t from) const {
    return std::visit([from](const auto& b) { return b.next_set(from); }, impl_);
  }
  std::uint64_t run_length(std::uint64_t from, std::uint64_t max_len) const {
    return std::visit(
        [=](const auto& b) { return b.run_length(from, max_len); }, impl_);
  }
  template <typename F>
  void for_each_set(F&& f) const {
    std::visit([&](const auto& b) { b.for_each_set(std::forward<F>(f)); }, impl_);
  }
  std::uint64_t bytes() const {
    return std::visit([](const auto& b) { return b.bytes(); }, impl_);
  }
  std::uint64_t wire_bytes() const {
    return std::visit([](const auto& b) { return b.wire_bytes(); }, impl_);
  }

  /// Snapshot the current contents and reset this bitmap to all-clean.
  /// (blkd's per-iteration "copy to blkd, then reset for the next round".)
  DirtyBitmap take_and_reset() {
    DirtyBitmap copy = *this;
    fill(false);
    return copy;
  }

  /// In-place union; works across kinds (cost is o's set-bit count).
  void or_with(const DirtyBitmap& o) {
    o.for_each_set([this](std::uint64_t i) { set(i); });
  }

 private:
  using Impl = std::variant<BlockBitmap, LayeredBitmap>;
  Impl impl_;
};

}  // namespace vmig::core
