#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <variant>

#include "core/block_bitmap.hpp"
#include "core/layered_bitmap.hpp"
#include "core/three_level_bitmap.hpp"

namespace vmig::core {

enum class BitmapKind : std::uint8_t { kFlat, kLayered, kThreeLevel };

inline const char* to_string(BitmapKind k) {
  switch (k) {
    case BitmapKind::kFlat: return "flat";
    case BitmapKind::kLayered: return "layered";
    case BitmapKind::kThreeLevel: return "3level";
  }
  return "?";
}

/// Value-semantic dirty-block bitmap: flat, 2-level, or 3-level per
/// configuration.
///
/// This is the object the split driver (`vmig::vm::BlkBackend`) maintains,
/// `blkd` snapshots each pre-copy iteration, and the freeze phase ships to
/// the destination. `take_and_reset()` implements the paper's
/// copy-then-reset at the start of each iteration.
///
/// Dispatch is a branch on the variant index into concrete (often inlined)
/// calls — there is deliberately no `std::visit` anywhere on the per-bit or
/// per-word path: every traversal goes through the word-cursor contract
/// (core/bitmap_words.hpp), so the cost per probe is a predicted switch, not
/// a vtable-like visit thunk per bit.
// Per-method dispatch: a switch on the variant index into a statement over
// the concrete bitmap `b`. Undefined right after the class; kept as a macro
// so adding a bitmap kind is a one-line change per method.
#define VMIG_BITMAP_DISPATCH(stmt)                                      \
  switch (impl_.index()) {                                              \
    case 1: { auto& b = *std::get_if<LayeredBitmap>(&impl_); stmt; }    \
      break;                                                            \
    case 2: { auto& b = *std::get_if<ThreeLevelBitmap>(&impl_); stmt; } \
      break;                                                            \
    default: { auto& b = *std::get_if<BlockBitmap>(&impl_); stmt; }     \
  }
class DirtyBitmap {
 public:
  DirtyBitmap() : impl_{BlockBitmap{}} {}
  DirtyBitmap(BitmapKind kind, std::uint64_t size_bits, bool initially_set = false)
      : impl_{make_impl(kind, size_bits, initially_set)} {}

  BitmapKind kind() const noexcept {
    return static_cast<BitmapKind>(impl_.index());
  }

  std::uint64_t size() const {
    VMIG_BITMAP_DISPATCH(return b.size());
  }
  bool test(std::uint64_t i) const {
    VMIG_BITMAP_DISPATCH(return b.test(i));
  }
  void set(std::uint64_t i) {
    VMIG_BITMAP_DISPATCH(return b.set(i));
  }
  void clear(std::uint64_t i) {
    VMIG_BITMAP_DISPATCH(return b.clear(i));
  }
  void set_range(std::uint64_t start, std::uint64_t count) {
    VMIG_BITMAP_DISPATCH(return b.set_range(start, count));
  }
  void clear_range(std::uint64_t start, std::uint64_t count) {
    VMIG_BITMAP_DISPATCH(return b.clear_range(start, count));
  }
  void fill(bool value) {
    VMIG_BITMAP_DISPATCH(return b.fill(value));
  }
  std::uint64_t count_set() const {
    VMIG_BITMAP_DISPATCH(return b.count_set());
  }
  bool any() const { return count_set() > 0; }
  bool none() const { return count_set() == 0; }
  std::optional<std::uint64_t> next_set(std::uint64_t from) const {
    VMIG_BITMAP_DISPATCH(return b.next_set(from));
  }
  /// Index of the first clear bit at or after `from`; size() if none.
  std::uint64_t next_clear(std::uint64_t from) const {
    VMIG_BITMAP_DISPATCH(return b.next_clear(from));
  }
  std::uint64_t run_length(std::uint64_t from, std::uint64_t max_len) const {
    VMIG_BITMAP_DISPATCH(return b.run_length(from, max_len));
  }
  template <typename F>
  void for_each_set(F&& f) const {
    VMIG_BITMAP_DISPATCH(return b.for_each_set(std::forward<F>(f)));
  }
  /// Invoke f(index) for each set bit in [start, start + count), ascending.
  template <typename F>
  void for_each_set_in(std::uint64_t start, std::uint64_t count, F&& f) const {
    VMIG_BITMAP_DISPATCH(return b.for_each_set_in(start, count, std::forward<F>(f)));
  }
  std::uint64_t bytes() const {
    VMIG_BITMAP_DISPATCH(return b.bytes());
  }
  std::uint64_t wire_bytes() const {
    VMIG_BITMAP_DISPATCH(return b.wire_bytes());
  }

  // -- word-cursor contract (core/bitmap_words.hpp), forwarded --
  std::uint64_t word_count() const {
    VMIG_BITMAP_DISPATCH(return b.word_count());
  }
  std::uint64_t leaf_word(std::uint64_t wi) const {
    VMIG_BITMAP_DISPATCH(return b.leaf_word(wi));
  }
  std::uint64_t skip_to_live(std::uint64_t wi) const {
    VMIG_BITMAP_DISPATCH(return b.skip_to_live(wi));
  }
  void or_word(std::uint64_t wi, std::uint64_t bits) {
    VMIG_BITMAP_DISPATCH(return b.or_word(wi, bits));
  }
  void andnot_word(std::uint64_t wi, std::uint64_t bits) {
    VMIG_BITMAP_DISPATCH(return b.andnot_word(wi, bits));
  }

  /// The next run of consecutive set bits at or after `from`, clipped to
  /// [from, end) and capped at `max_len` bits; nullopt when exhausted.
  std::optional<SetRun> next_set_run(std::uint64_t from, std::uint64_t end,
                                     std::uint64_t max_len) const {
    VMIG_BITMAP_DISPATCH(return wordops::next_set_run(b, from, end, max_len));
  }

  /// Snapshot the current contents and reset this bitmap to all-clean.
  /// (blkd's per-iteration "copy to blkd, then reset for the next round".)
  DirtyBitmap take_and_reset() {
    DirtyBitmap copy = *this;
    fill(false);
    return copy;
  }

  /// take_and_reset into a caller-owned buffer. When `out` already holds a
  /// same-kind same-size bitmap (the steady state: one reused snapshot
  /// buffer per migration), the copy assignment lands in out's existing
  /// storage and the whole snapshot allocates nothing for flat and
  /// three-level bitmaps (layered reallocates its live parts).
  void take_and_reset_into(DirtyBitmap& out) {
    out = *this;
    fill(false);
  }

  /// In-place union; word-wise, works across kinds (cost is o's live words).
  void or_with(const DirtyBitmap& o) {
    o.dispatch_const([this](const auto& src) {
      VMIG_BITMAP_DISPATCH(return wordops::or_from(b, src));
    });
  }

  /// In-place subtraction (this &= ~o); word-wise, works across kinds.
  void subtract(const DirtyBitmap& o) {
    o.dispatch_const([this](const auto& src) {
      VMIG_BITMAP_DISPATCH(return wordops::subtract_from(b, src));
    });
  }

 private:
  using Impl = std::variant<BlockBitmap, LayeredBitmap, ThreeLevelBitmap>;

  static Impl make_impl(BitmapKind kind, std::uint64_t size_bits,
                        bool initially_set) {
    switch (kind) {
      case BitmapKind::kLayered:
        return LayeredBitmap{size_bits, LayeredBitmap::kDefaultPartBits,
                             initially_set};
      case BitmapKind::kThreeLevel:
        return ThreeLevelBitmap{size_bits, initially_set};
      case BitmapKind::kFlat:
        break;
    }
    return BlockBitmap{size_bits, initially_set};
  }

  /// One branch on the variant index, then a concrete call. This is the
  /// whole-bitmap dispatch (kind chosen per call, not per bit); traversal
  /// loops live inside the concrete bitmap via wordops.
  template <typename F>
  void dispatch_const(F&& f) const {
    switch (impl_.index()) {
      case 1: return f(*std::get_if<LayeredBitmap>(&impl_));
      case 2: return f(*std::get_if<ThreeLevelBitmap>(&impl_));
      default: return f(*std::get_if<BlockBitmap>(&impl_));
    }
  }

  Impl impl_;
};
#undef VMIG_BITMAP_DISPATCH

/// Forward cursor over a DirtyBitmap yielding maximal (start, len) runs of
/// set bits — the range-level replacement for per-bit cursor loops at call
/// sites (tpm pre-copy reader, post-copy pull issue). The referenced bitmap
/// must outlive the cursor and stay unmodified while iterating (snapshot
/// semantics: iterate a `take_and_reset()` copy).
class SetRunCursor {
 public:
  explicit SetRunCursor(const DirtyBitmap& bm, std::uint64_t from = 0,
                        std::uint64_t end = ~std::uint64_t{0})
      : bm_{&bm}, pos_{from}, end_{end > bm.size() ? bm.size() : end} {}

  /// The next run of up to `max_len` set bits; nullopt when exhausted.
  std::optional<SetRun> next(std::uint64_t max_len) {
    const auto run = bm_->next_set_run(pos_, end_, max_len);
    if (run.has_value()) pos_ = run->start + run->len;
    return run;
  }

  /// Bit position the next `next()` call will scan from.
  std::uint64_t pos() const noexcept { return pos_; }

 private:
  const DirtyBitmap* bm_;
  std::uint64_t pos_;
  std::uint64_t end_;
};

}  // namespace vmig::core
