#include "core/disruption.hpp"

#include <algorithm>
#include <vector>

namespace vmig::core {

DisruptionStats measure_disruption(const sim::TimeSeries& throughput,
                                   sim::TimePoint baseline_from,
                                   sim::TimePoint baseline_to,
                                   sim::TimePoint window_from,
                                   sim::TimePoint window_to, double threshold) {
  DisruptionStats out;
  out.window = window_to - window_from;
  out.baseline = throughput.mean_in(baseline_from, baseline_to);
  if (out.baseline <= 0.0) return out;

  // Collect window samples with their spacing (RateMeter emits fixed-width
  // windows, but be robust to irregular series).
  const auto& pts = throughput.points();
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].t >= window_from && pts[i].t <= window_to) idx.push_back(i);
  }
  out.samples = idx.size();
  if (idx.empty()) return out;

  for (std::size_t k = 0; k < idx.size(); ++k) {
    const auto& p = pts[idx[k]];
    const double ratio = p.value / out.baseline;
    out.worst_ratio = std::min(out.worst_ratio, ratio);
    if (ratio < threshold) {
      ++out.samples_below;
      // Charge this sample's interval: distance to the next sample, or the
      // trailing mean spacing for the last one.
      sim::Duration dt;
      if (k + 1 < idx.size()) {
        dt = pts[idx[k + 1]].t - p.t;
      } else if (idx.size() >= 2) {
        dt = sim::Duration::from_seconds(
            (pts[idx.back()].t - pts[idx.front()].t).to_seconds() /
            static_cast<double>(idx.size() - 1));
      } else {
        dt = out.window;
      }
      out.disrupted_time += dt;
    }
  }
  out.disrupted_time = std::min(out.disrupted_time, out.window);
  return out;
}

}  // namespace vmig::core
