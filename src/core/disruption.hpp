#pragma once

#include "simcore/stats.hpp"
#include "simcore/time.hpp"

namespace vmig::core {

/// Disruption-time analysis (paper §III-A): "the time interval during which
/// clients ... observe degradation of service responsiveness".
///
/// Computed from a client-visible throughput series: baseline = mean over an
/// undisturbed reference window; every sample inside the observation window
/// below `threshold * baseline` counts its sampling interval as disrupted.
struct DisruptionStats {
  sim::Duration disrupted_time{};  ///< total degraded time in the window
  sim::Duration window{};          ///< observation window length
  double baseline = 0.0;           ///< reference throughput (units of input)
  double worst_ratio = 1.0;        ///< min(sample/baseline) in the window
  std::size_t samples = 0;
  std::size_t samples_below = 0;

  double disrupted_fraction() const {
    return window > sim::Duration::zero() ? disrupted_time / window : 0.0;
  }
};

DisruptionStats measure_disruption(const sim::TimeSeries& throughput,
                                   sim::TimePoint baseline_from,
                                   sim::TimePoint baseline_to,
                                   sim::TimePoint window_from,
                                   sim::TimePoint window_to,
                                   double threshold = 0.9);

}  // namespace vmig::core
