#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace vmig::core {

/// Sorted flat-vector map.
///
/// A drop-in for the small ordered maps on the migration hot paths
/// (outstanding pull requests, parked guest reads): iteration is in key
/// order (deterministic, like std::map) but storage is one contiguous
/// vector, so steady-state insert/erase shuffles elements inside retained
/// capacity instead of allocating and freeing tree nodes per operation.
/// Inserts/erases are O(n) moves — the maps this backs are bounded by the
/// pull window (tens of entries), where the memmove is cheaper than a
/// node allocation ever was.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() noexcept { return v_.begin(); }
  iterator end() noexcept { return v_.end(); }
  const_iterator begin() const noexcept { return v_.begin(); }
  const_iterator end() const noexcept { return v_.end(); }

  bool empty() const noexcept { return v_.empty(); }
  std::size_t size() const noexcept { return v_.size(); }
  void clear() noexcept { v_.clear(); }
  void reserve(std::size_t n) { v_.reserve(n); }

  iterator find(const K& k) {
    auto it = lower(k);
    return (it != v_.end() && it->first == k) ? it : v_.end();
  }
  const_iterator find(const K& k) const {
    auto it = lower(k);
    return (it != v_.end() && it->first == k) ? it : v_.end();
  }
  bool contains(const K& k) const {
    const auto it = lower(k);
    return it != v_.end() && it->first == k;
  }

  /// Value for `k`, default-constructed and inserted if absent.
  V& operator[](const K& k) {
    auto it = lower(k);
    if (it == v_.end() || it->first != k) {
      it = v_.insert(it, value_type{k, V{}});
    }
    return it->second;
  }

  /// Insert {k, v} if `k` is absent. Returns (iterator, inserted).
  std::pair<iterator, bool> try_emplace(const K& k, V v = V{}) {
    auto it = lower(k);
    if (it != v_.end() && it->first == k) return {it, false};
    it = v_.insert(it, value_type{k, std::move(v)});
    return {it, true};
  }

  std::size_t erase(const K& k) {
    const auto it = find(k);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return v_.erase(it); }

 private:
  iterator lower(const K& k) {
    return std::lower_bound(
        v_.begin(), v_.end(), k,
        [](const value_type& e, const K& key) { return e.first < key; });
  }
  const_iterator lower(const K& k) const {
    return std::lower_bound(
        v_.begin(), v_.end(), k,
        [](const value_type& e, const K& key) { return e.first < key; });
  }

  std::vector<value_type> v_;
};

}  // namespace vmig::core
