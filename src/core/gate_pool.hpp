#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simcore/notifier.hpp"

namespace vmig::core {

/// Arena of recycled sim::Gate objects with stable addresses.
///
/// The post-copy pending list parks a guest read behind a per-block gate;
/// at datacenter fan-out that is thousands of gate create/destroy cycles.
/// The pool keeps gates in unique_ptr slots (addresses stay valid across
/// growth, which waiting coroutines require) and recycles them through a
/// free list, so the steady state acquires and releases without touching
/// the heap. Releasing an opened gate is safe even while its waiters'
/// resumptions are still queued in the simulator — resumed waiters never
/// touch the gate again (see sim::Gate).
class GatePool {
 public:
  explicit GatePool(sim::Simulator& sim) : sim_{&sim} {}

  /// Index of a closed gate, reused if possible.
  std::uint32_t acquire() {
    if (!free_.empty()) {
      const std::uint32_t i = free_.back();
      free_.pop_back();
      return i;
    }
    gates_.push_back(std::make_unique<sim::Gate>(*sim_));
    return static_cast<std::uint32_t>(gates_.size() - 1);
  }

  sim::Gate& at(std::uint32_t i) { return *gates_[i]; }

  /// Return a gate to the pool (it is reset to closed).
  void release(std::uint32_t i) {
    gates_[i]->reset();
    free_.push_back(i);
  }

  /// High-water mark of simultaneously live gates.
  std::size_t allocated() const noexcept { return gates_.size(); }

 private:
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<sim::Gate>> gates_;
  std::vector<std::uint32_t> free_;
};

}  // namespace vmig::core
