#include "core/im_directory.hpp"

namespace vmig::core {

void ImDirectory::on_migrated(const hv::Host& source, const hv::Host& dest,
                              const DirtyBitmap& writes_at_source,
                              bool writes_known) {
  if (!writes_known) {
    // No record of what changed while the VM lived on the source: every
    // previously-known copy may be stale anywhere. Full invalidation.
    // vmig-lint: d3-ok -- same op applied to every entry; order-free
    for (auto& [host, bm] : divergence_) {
      if (host != &source && host != &dest) bm.fill(true);
    }
  } else {
    // vmig-lint: d3-ok -- same op applied to every entry; order-free
    for (auto& [host, bm] : divergence_) {
      if (host != &source && host != &dest) bm.or_with(writes_at_source);
    }
  }
  // Both endpoints hold the freeze-time truth when the migration completes
  // (the destination exactly; the source modulo nothing — it stopped).
  divergence_[&source] = DirtyBitmap{kind_, block_count_};
  divergence_[&dest] = DirtyBitmap{kind_, block_count_};
}

}  // namespace vmig::core
