#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/dirty_bitmap.hpp"
#include "hypervisor/host.hpp"

namespace vmig::core {

/// Multi-host incremental-migration directory — the paper's §VII future
/// work ("local disk storage version maintenance to facilitate IM ... among
/// any recently used physical machines"), implemented.
///
/// For one domain, tracks a *divergence bitmap* per previously-visited host:
/// the set of blocks whose copy on that host no longer matches the VM's
/// current disk. Invariant maintenance:
///   - when the VM leaves a source, every write made during its tenancy
///     there (the backend's tracked set plus writes observed mid-migration)
///     joins every *other* host's divergence set;
///   - the migration's destination ends fully synchronized (divergence ∅);
///   - the source holds the freeze-time image (divergence ∅ too; writes made
///     later at the destination will join it on the next hop).
///
/// `seed_for` then answers: migrating to host H, which blocks must move?
class ImDirectory {
 public:
  ImDirectory(std::uint64_t block_count, BitmapKind kind)
      : block_count_{block_count}, kind_{kind} {}

  /// The first-pass seed for migrating to `dest`: its divergence set, or
  /// nullopt if `dest` has never held this VM's disk (full copy needed).
  std::optional<DirtyBitmap> seed_for(const hv::Host& dest) const {
    const auto it = divergence_.find(&dest);
    if (it == divergence_.end()) return std::nullopt;
    return it->second;
  }

  /// Record a completed migration. `writes_at_source` is every block
  /// written while the VM lived on `source` (tracking snapshot taken at
  /// migration start, unioned with the writes the migration itself
  /// observed). If the source's history is unknown (`writes_known` false —
  /// e.g. tracking was off), all divergence knowledge is invalidated.
  void on_migrated(const hv::Host& source, const hv::Host& dest,
                   const DirtyBitmap& writes_at_source, bool writes_known);

  std::size_t known_hosts() const noexcept { return divergence_.size(); }
  bool knows(const hv::Host& h) const { return divergence_.contains(&h); }
  /// Blocks that would need to move to `h` right now (pre-tenancy writes).
  std::uint64_t divergent_blocks(const hv::Host& h) const {
    const auto it = divergence_.find(&h);
    return it == divergence_.end() ? block_count_ : it->second.count_set();
  }

 private:
  std::uint64_t block_count_;
  BitmapKind kind_;
  std::unordered_map<const hv::Host*, DirtyBitmap> divergence_;
};

}  // namespace vmig::core
