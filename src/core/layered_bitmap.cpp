#include "core/layered_bitmap.hpp"

#include <algorithm>
#include <cassert>

namespace vmig::core {

LayeredBitmap::LayeredBitmap(std::uint64_t size_bits, std::uint64_t part_bits,
                             bool initially_set)
    : size_{size_bits},
      part_bits_{part_bits == 0 ? kDefaultPartBits : part_bits} {
  // Word-cursor addressing wants part lookups to be shift-and-mask: round
  // the part size up to a power of two, min one 64-bit word (every
  // production caller already passes a power of two).
  part_bits_ = std::bit_ceil(std::max<std::uint64_t>(part_bits_, 64));
  words_per_part_ = part_bits_ / 64;
  word_shift_ = static_cast<unsigned>(std::countr_zero(words_per_part_));
  const std::uint64_t nparts = (size_bits + part_bits_ - 1) / part_bits_;
  parts_.resize(nparts);
  upper_ = BlockBitmap{nparts};
  if (initially_set) fill(true);
}

LayeredBitmap& LayeredBitmap::operator=(const LayeredBitmap& o) {
  if (this == &o) return *this;
  size_ = o.size_;
  part_bits_ = o.part_bits_;
  words_per_part_ = o.words_per_part_;
  word_shift_ = o.word_shift_;
  set_count_ = o.set_count_;
  allocated_parts_ = o.allocated_parts_;
  upper_ = o.upper_;
  parts_.clear();
  parts_.resize(o.parts_.size());
  for (std::size_t i = 0; i < o.parts_.size(); ++i) {
    if (o.parts_[i]) parts_[i] = std::make_unique<BlockBitmap>(*o.parts_[i]);
  }
  return *this;
}

bool LayeredBitmap::test(std::uint64_t i) const {
  assert(i < size_);
  const std::uint64_t pi = i / part_bits_;
  if (!upper_.test(pi)) return false;
  const auto& part = parts_[pi];
  return part && part->test(i % part_bits_);
}

BlockBitmap& LayeredBitmap::ensure_part(std::uint64_t pi) {
  auto& part = parts_[pi];
  if (!part) {
    const std::uint64_t this_part_bits =
        std::min(part_bits_, size_ - pi * part_bits_);
    part = std::make_unique<BlockBitmap>(this_part_bits);
    ++allocated_parts_;
  }
  return *part;
}

void LayeredBitmap::set(std::uint64_t i) {
  assert(i < size_);
  const std::uint64_t pi = i / part_bits_;
  BlockBitmap& part = ensure_part(pi);
  const std::uint64_t before = part.count_set();
  part.set(i % part_bits_);
  if (part.count_set() != before) {
    ++set_count_;
    if (before == 0) upper_.set(pi);
  }
}

void LayeredBitmap::clear(std::uint64_t i) {
  assert(i < size_);
  const std::uint64_t pi = i / part_bits_;
  auto& part = parts_[pi];
  if (!part) return;
  const std::uint64_t before = part->count_set();
  part->clear(i % part_bits_);
  if (part->count_set() != before) {
    --set_count_;
    if (part->count_set() == 0) upper_.clear(pi);
  }
}

void LayeredBitmap::or_word(std::uint64_t wi, std::uint64_t bits) {
  if (bits == 0) return;
  const std::uint64_t pi = wi / words_per_part_;
  BlockBitmap& part = ensure_part(pi);
  const std::uint64_t before = part.count_set();
  part.or_word(wi % words_per_part_, bits);
  set_count_ += part.count_set() - before;
  if (before == 0 && part.count_set() > 0) upper_.set(pi);
}

void LayeredBitmap::andnot_word(std::uint64_t wi, std::uint64_t bits) {
  const std::uint64_t pi = wi / words_per_part_;
  auto& part = parts_[pi];
  if (!part) return;
  const std::uint64_t before = part->count_set();
  part->andnot_word(wi % words_per_part_, bits);
  set_count_ -= before - part->count_set();
  if (part->count_set() == 0 && before > 0) upper_.clear(pi);
}

void LayeredBitmap::set_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  while (i < end) {
    const std::uint64_t pi = i / part_bits_;
    const std::uint64_t part_start = pi * part_bits_;
    const std::uint64_t in_part = i - part_start;
    const std::uint64_t n = std::min(end - i, part_bits_ - in_part);
    BlockBitmap& part = ensure_part(pi);
    const std::uint64_t before = part.count_set();
    part.set_range(in_part, n);
    set_count_ += part.count_set() - before;
    if (before == 0 && part.count_set() > 0) upper_.set(pi);
    i += n;
  }
}

void LayeredBitmap::clear_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  while (i < end) {
    const std::uint64_t pi = i / part_bits_;
    const std::uint64_t part_start = pi * part_bits_;
    const std::uint64_t in_part = i - part_start;
    const std::uint64_t n = std::min(end - i, part_bits_ - in_part);
    auto& part = parts_[pi];
    if (part) {
      const std::uint64_t before = part->count_set();
      part->clear_range(in_part, n);
      set_count_ -= before - part->count_set();
      if (part->count_set() == 0 && before > 0) upper_.clear(pi);
    }
    i += n;
  }
}

void LayeredBitmap::fill(bool value) {
  if (!value) {
    // Drop all leaves: matches the paper's "reset at iteration start", and
    // returns the memory (lazy reallocation on next write burst).
    for (auto& p : parts_) p.reset();
    allocated_parts_ = 0;
    set_count_ = 0;
    upper_.fill(false);
    return;
  }
  set_range(0, size_);
}

}  // namespace vmig::core
