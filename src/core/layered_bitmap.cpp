#include "core/layered_bitmap.hpp"

#include <algorithm>
#include <cassert>

namespace vmig::core {

LayeredBitmap::LayeredBitmap(std::uint64_t size_bits, std::uint64_t part_bits,
                             bool initially_set)
    : size_{size_bits},
      part_bits_{part_bits == 0 ? kDefaultPartBits : part_bits} {
  const std::uint64_t nparts = (size_bits + part_bits_ - 1) / part_bits_;
  parts_.resize(nparts);
  upper_ = BlockBitmap{nparts};
  if (initially_set) fill(true);
}

LayeredBitmap& LayeredBitmap::operator=(const LayeredBitmap& o) {
  if (this == &o) return *this;
  size_ = o.size_;
  part_bits_ = o.part_bits_;
  set_count_ = o.set_count_;
  allocated_parts_ = o.allocated_parts_;
  upper_ = o.upper_;
  parts_.clear();
  parts_.resize(o.parts_.size());
  for (std::size_t i = 0; i < o.parts_.size(); ++i) {
    if (o.parts_[i]) parts_[i] = std::make_unique<BlockBitmap>(*o.parts_[i]);
  }
  return *this;
}

bool LayeredBitmap::test(std::uint64_t i) const {
  assert(i < size_);
  const std::uint64_t pi = i / part_bits_;
  if (!upper_.test(pi)) return false;
  const auto& part = parts_[pi];
  return part && part->test(i % part_bits_);
}

BlockBitmap& LayeredBitmap::ensure_part(std::uint64_t pi) {
  auto& part = parts_[pi];
  if (!part) {
    const std::uint64_t this_part_bits =
        std::min(part_bits_, size_ - pi * part_bits_);
    part = std::make_unique<BlockBitmap>(this_part_bits);
    ++allocated_parts_;
  }
  return *part;
}

void LayeredBitmap::set(std::uint64_t i) {
  assert(i < size_);
  const std::uint64_t pi = i / part_bits_;
  BlockBitmap& part = ensure_part(pi);
  const std::uint64_t before = part.count_set();
  part.set(i % part_bits_);
  if (part.count_set() != before) {
    ++set_count_;
    if (before == 0) upper_.set(pi);
  }
}

void LayeredBitmap::clear(std::uint64_t i) {
  assert(i < size_);
  const std::uint64_t pi = i / part_bits_;
  auto& part = parts_[pi];
  if (!part) return;
  const std::uint64_t before = part->count_set();
  part->clear(i % part_bits_);
  if (part->count_set() != before) {
    --set_count_;
    if (part->count_set() == 0) upper_.clear(pi);
  }
}

void LayeredBitmap::set_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  while (i < end) {
    const std::uint64_t pi = i / part_bits_;
    const std::uint64_t part_start = pi * part_bits_;
    const std::uint64_t in_part = i - part_start;
    const std::uint64_t n = std::min(end - i, part_bits_ - in_part);
    BlockBitmap& part = ensure_part(pi);
    const std::uint64_t before = part.count_set();
    part.set_range(in_part, n);
    set_count_ += part.count_set() - before;
    if (before == 0 && part.count_set() > 0) upper_.set(pi);
    i += n;
  }
}

void LayeredBitmap::fill(bool value) {
  if (!value) {
    // Drop all leaves: matches the paper's "reset at iteration start", and
    // returns the memory (lazy reallocation on next write burst).
    for (auto& p : parts_) p.reset();
    allocated_parts_ = 0;
    set_count_ = 0;
    upper_.fill(false);
    return;
  }
  set_range(0, size_);
}

std::optional<std::uint64_t> LayeredBitmap::next_set(std::uint64_t from) const {
  if (from >= size_) return std::nullopt;
  std::uint64_t pi = from / part_bits_;
  // First candidate part: the one containing `from`, then upper-level scan.
  for (;;) {
    const auto next_part = upper_.next_set(pi);
    if (!next_part) return std::nullopt;
    pi = *next_part;
    const auto& part = parts_[pi];
    const std::uint64_t base = pi * part_bits_;
    const std::uint64_t local_from = base >= from ? 0 : from - base;
    if (part) {
      if (const auto hit = part->next_set(local_from)) return base + *hit;
    }
    ++pi;  // nothing at/after `from` in this part; try the next dirty part
    if (pi >= parts_.size()) return std::nullopt;
  }
}

std::uint64_t LayeredBitmap::run_length(std::uint64_t from, std::uint64_t max_len) const {
  assert(test(from));
  std::uint64_t n = 0;
  std::uint64_t i = from;
  while (n < max_len && i < size_ && test(i)) {
    ++n;
    ++i;
  }
  return n;
}

}  // namespace vmig::core
