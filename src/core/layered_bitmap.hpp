#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/block_bitmap.hpp"

namespace vmig::core {

/// Two-level block-bitmap (paper §IV-A-2, "Layered-Bitmap").
///
/// The bit space is split into fixed-size *parts*. An upper bitmap records
/// which parts contain any dirty bit; leaf parts are allocated lazily on
/// first write. Because disk writes are highly local, the dirty set clusters
/// into few parts, so:
///   - scanning skips clean parts entirely (upper-level word scan), and
///   - memory and freeze-phase wire size shrink to upper + dirty parts.
class LayeredBitmap {
 public:
  /// Default part size: 2^15 bits = 32768 blocks = 128 MiB of disk per part
  /// at 4 KB blocks (4 KiB of bitmap per part).
  static constexpr std::uint64_t kDefaultPartBits = 1ull << 15;

  LayeredBitmap() = default;
  explicit LayeredBitmap(std::uint64_t size_bits,
                         std::uint64_t part_bits = kDefaultPartBits,
                         bool initially_set = false);

  LayeredBitmap(const LayeredBitmap& o) { *this = o; }
  LayeredBitmap& operator=(const LayeredBitmap& o);
  LayeredBitmap(LayeredBitmap&&) noexcept = default;
  LayeredBitmap& operator=(LayeredBitmap&&) noexcept = default;

  std::uint64_t size() const noexcept { return size_; }
  std::uint64_t part_bits() const noexcept { return part_bits_; }
  std::uint64_t part_count() const noexcept { return parts_.size(); }

  bool test(std::uint64_t i) const;
  void set(std::uint64_t i);
  void clear(std::uint64_t i);
  void set_range(std::uint64_t start, std::uint64_t count);
  void fill(bool value);

  std::uint64_t count_set() const noexcept { return set_count_; }
  bool any() const noexcept { return set_count_ > 0; }
  bool none() const noexcept { return set_count_ == 0; }

  std::optional<std::uint64_t> next_set(std::uint64_t from) const;
  std::uint64_t run_length(std::uint64_t from, std::uint64_t max_len) const;

  /// Invoke f(index) for each set bit, ascending; clean parts are skipped
  /// via the upper level (the layered bitmap's raison d'etre).
  template <typename F>
  void for_each_set(F&& f) const {
    upper_.for_each_set([&](std::uint64_t pi) {
      const auto& part = parts_[pi];
      if (!part) return;
      const std::uint64_t base = pi * part_bits_;
      part->for_each_set([&](std::uint64_t off) { f(base + off); });
    });
  }

  std::uint64_t allocated_parts() const noexcept { return allocated_parts_; }
  std::uint64_t dirty_parts() const noexcept { return upper_.count_set(); }

  /// Resident memory: upper bitmap + allocated leaf parts.
  std::uint64_t bytes() const noexcept {
    return upper_.bytes() + allocated_parts_ * ((part_bits_ + 7) / 8);
  }
  /// Freeze-phase wire size: upper bitmap + parts that are actually dirty.
  std::uint64_t wire_bytes() const noexcept {
    return upper_.wire_bytes() + upper_.count_set() * ((part_bits_ + 7) / 8);
  }

 private:
  BlockBitmap& ensure_part(std::uint64_t pi);

  std::uint64_t size_ = 0;
  std::uint64_t part_bits_ = kDefaultPartBits;
  std::uint64_t set_count_ = 0;
  std::uint64_t allocated_parts_ = 0;
  BlockBitmap upper_;
  std::vector<std::unique_ptr<BlockBitmap>> parts_;
};

}  // namespace vmig::core
