#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/block_bitmap.hpp"

namespace vmig::core {

/// Two-level block-bitmap (paper §IV-A-2, "Layered-Bitmap").
///
/// The bit space is split into fixed-size *parts*. An upper bitmap records
/// which parts contain any dirty bit; leaf parts are allocated lazily on
/// first write. Because disk writes are highly local, the dirty set clusters
/// into few parts, so:
///   - scanning skips clean parts entirely (upper-level word scan), and
///   - memory and freeze-phase wire size shrink to upper + dirty parts.
///
/// Implements the word-cursor contract (core/bitmap_words.hpp): the bit
/// space is addressed as a flat array of 64-bit words, unallocated parts
/// read as zero words, and `skip_to_live` jumps a whole clean part per
/// upper-level probe. Part size is normalized to a power of two (min 64)
/// so the per-word part lookup is a shift and a mask, never a division.
class LayeredBitmap {
 public:
  /// Default part size: 2^15 bits = 32768 blocks = 128 MiB of disk per part
  /// at 4 KB blocks (4 KiB of bitmap per part).
  static constexpr std::uint64_t kDefaultPartBits = 1ull << 15;

  LayeredBitmap() = default;
  explicit LayeredBitmap(std::uint64_t size_bits,
                         std::uint64_t part_bits = kDefaultPartBits,
                         bool initially_set = false);

  LayeredBitmap(const LayeredBitmap& o) { *this = o; }
  LayeredBitmap& operator=(const LayeredBitmap& o);
  LayeredBitmap(LayeredBitmap&&) noexcept = default;
  LayeredBitmap& operator=(LayeredBitmap&&) noexcept = default;

  std::uint64_t size() const noexcept { return size_; }
  std::uint64_t part_bits() const noexcept { return part_bits_; }
  std::uint64_t part_count() const noexcept { return parts_.size(); }

  bool test(std::uint64_t i) const;
  void set(std::uint64_t i);
  void clear(std::uint64_t i);
  void set_range(std::uint64_t start, std::uint64_t count);
  void clear_range(std::uint64_t start, std::uint64_t count);
  void fill(bool value);

  std::uint64_t count_set() const noexcept { return set_count_; }
  bool any() const noexcept { return set_count_ > 0; }
  bool none() const noexcept { return set_count_ == 0; }

  // -- word-cursor contract (core/bitmap_words.hpp) --
  std::uint64_t word_count() const noexcept { return (size_ + 63) / 64; }
  /// Word wi of the flattened bit space; unallocated parts read as zero.
  std::uint64_t leaf_word(std::uint64_t wi) const {
    const auto& part = parts_[wi >> word_shift_];
    return part ? part->leaf_word(wi & (words_per_part_ - 1)) : 0;
  }
  /// Jump over clean parts via the upper level.
  std::uint64_t skip_to_live(std::uint64_t wi) const {
    const std::uint64_t nw = word_count();
    if (wi >= nw) return nw;
    const std::uint64_t pi = wi >> word_shift_;
    if (upper_.test(pi)) return wi;
    const auto np = upper_.next_set(pi + 1);
    return np.has_value() ? *np << word_shift_ : nw;
  }
  void or_word(std::uint64_t wi, std::uint64_t bits);
  void andnot_word(std::uint64_t wi, std::uint64_t bits);

  std::optional<std::uint64_t> next_set(std::uint64_t from) const {
    return wordops::next_set(*this, from);
  }
  std::uint64_t next_clear(std::uint64_t from) const {
    return wordops::next_clear(*this, from);
  }
  std::uint64_t run_length(std::uint64_t from, std::uint64_t max_len) const {
    return wordops::run_length(*this, from, max_len);
  }

  /// Invoke f(index) for each set bit, ascending; clean parts are skipped
  /// via the upper level (the layered bitmap's raison d'etre). Dedicated
  /// loop rather than the generic word cursor: resolving the part pointer
  /// once per live part keeps the inner sweep a flat word scan.
  template <typename F>
  void for_each_set(F&& f) const {
    for (auto pio = upper_.next_set(0); pio.has_value();
         pio = upper_.next_set(*pio + 1)) {
      const BlockBitmap& part = *parts_[*pio];
      const std::uint64_t base = *pio << (word_shift_ + 6);
      const std::uint64_t pw = part.word_count();
      for (std::uint64_t j = 0; j < pw; ++j) {
        std::uint64_t w = part.leaf_word(j);
        const std::uint64_t wb = base + j * 64;
        while (w != 0) {
          f(wb + static_cast<std::uint64_t>(std::countr_zero(w)));
          w &= w - 1;
        }
      }
    }
  }

  /// Invoke f(index) for each set bit in [start, start + count), ascending.
  template <typename F>
  void for_each_set_in(std::uint64_t start, std::uint64_t count, F&& f) const {
    wordops::for_each_set_in(*this, start, count, std::forward<F>(f));
  }

  std::uint64_t allocated_parts() const noexcept { return allocated_parts_; }
  std::uint64_t dirty_parts() const noexcept { return upper_.count_set(); }

  /// Resident memory: upper bitmap + allocated leaf parts.
  std::uint64_t bytes() const noexcept {
    return upper_.bytes() + allocated_parts_ * ((part_bits_ + 7) / 8);
  }
  /// Freeze-phase wire size: upper bitmap + parts that are actually dirty.
  std::uint64_t wire_bytes() const noexcept {
    return upper_.wire_bytes() + upper_.count_set() * ((part_bits_ + 7) / 8);
  }

 private:
  BlockBitmap& ensure_part(std::uint64_t pi);

  std::uint64_t size_ = 0;
  std::uint64_t part_bits_ = kDefaultPartBits;
  std::uint64_t words_per_part_ = kDefaultPartBits / 64;
  unsigned word_shift_ = 9;  ///< log2(words_per_part_)
  std::uint64_t set_count_ = 0;
  std::uint64_t allocated_parts_ = 0;
  BlockBitmap upper_;
  std::vector<std::unique_ptr<BlockBitmap>> parts_;
};

}  // namespace vmig::core
