#pragma once

#include <cstdint>

#include "core/dirty_bitmap.hpp"
#include "simcore/time.hpp"

namespace vmig::obs {
class Registry;
class Tracer;
}  // namespace vmig::obs

namespace vmig::core {

/// Tunables of the three-phase migration (paper §IV) and its memory stage.
struct MigrationConfig {
  // ---- Block-bitmap ----
  BitmapKind bitmap_kind = BitmapKind::kLayered;

  // ---- Disk pre-copy (blkd) ----
  /// Blocks per transfer chunk (256 x 4 KB = 1 MiB).
  std::uint32_t disk_chunk_blocks = 256;
  /// Hard cap on pre-copy iterations ("we limit the maximum number of
  /// iterations to avoid endless migration").
  int disk_max_iterations = 4;
  /// Stop iterating once an iteration leaves at most this many dirty blocks;
  /// the residue is synchronized by post-copy.
  std::uint64_t disk_residual_target_blocks = 256;
  /// Proactive stop: if blocks dirtied during an iteration exceed this
  /// fraction of blocks transferred in it, the dirty rate is outrunning the
  /// transfer rate and further iterations cannot converge.
  double disk_dirty_rate_abort_ratio = 0.9;
  /// CPU cost the user-space migration daemon (blkd) pays per MiB moved
  /// through it — /proc copies, context switches, protocol work. Applied on
  /// both the sending and receiving side. Zero by default; the calibrated
  /// paper testbed (scenario::Testbed) sets it so the end-to-end pre-copy
  /// rate lands near the paper's ~49 MB/s over GbE.
  sim::Duration blkd_cpu_per_mib = sim::Duration::zero();

  // ---- Memory pre-copy (xc_linux_save) ----
  std::uint32_t mem_chunk_pages = 256;
  int mem_max_iterations = 5;
  /// Freeze once the dirty set is at most this many pages.
  std::uint64_t mem_residual_target_pages = 256;
  double mem_dirty_rate_abort_ratio = 0.9;

  // ---- Rate limiting (§VI-C-3) ----
  /// Shaping rate for the migration stream in MiB/s; <= 0 means unlimited.
  double rate_limit_mibps = 0.0;
  /// Rate limiting applies only to the pre-copy phases (as in the paper's
  /// experiment); the freeze-phase residual is always sent at full speed.
  bool rate_limit_postcopy = false;

  // ---- Post-copy ----
  /// Blocks per push chunk. Small chunks bound the delay before a
  /// preferential pull response can enter the link.
  std::uint32_t push_chunk_blocks = 64;
  /// Ablation: disable the destination's pull path (guest reads of dirty
  /// blocks then wait for the push sweep to reach them).
  bool postcopy_pull_enabled = true;

  // ---- Fixed per-migration overheads (hypercalls, device teardown/setup) ----
  sim::Duration suspend_overhead = sim::Duration::millis(12);
  sim::Duration resume_overhead = sim::Duration::millis(20);

  /// Track writes at the destination after resume so a later migration back
  /// can be incremental (paper §V). Leave on; benches switch it off to
  /// quantify the tracking overhead (Table III).
  bool track_for_incremental = true;
  /// Per-write bitmap update cost charged by blkback while tracking.
  sim::Duration tracking_overhead = sim::Duration::micros(2);

  // ---- §VII extensions (the paper's future work, implemented) ----
  /// Guest-assisted free-block map: the guest reports never-used blocks, so
  /// the first pre-copy pass skips them ("if the Guest OS can tell the
  /// migration process which part is not used, the amount of migrated data
  /// can be reduced further").
  bool skip_unused_blocks = false;

  // ---- Observability (src/obs; see docs/OBSERVABILITY.md) ----
  /// Both null by default = disabled: the migration hot paths then pay one
  /// branch and allocate nothing. When set, the engine records phase and
  /// iteration spans, post-copy pull/stall events, and per-message-type
  /// byte counters.
  obs::Registry* obs_registry = nullptr;
  obs::Tracer* obs_tracer = nullptr;
};

}  // namespace vmig::core
