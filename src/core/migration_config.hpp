#pragma once

#include <cstddef>
#include <cstdint>

#include "core/dirty_bitmap.hpp"
#include "simcore/time.hpp"

namespace vmig::obs {
class FlightRecorder;
class Registry;
class Tracer;
}  // namespace vmig::obs

namespace vmig::core {

/// Tunables of the three-phase migration (paper §IV) and its memory stage.
struct MigrationConfig {
  // ---- Block-bitmap ----
  BitmapKind bitmap_kind = BitmapKind::kLayered;

  // ---- Disk pre-copy (blkd) ----
  /// Blocks per transfer chunk (256 x 4 KB = 1 MiB).
  std::uint32_t disk_chunk_blocks = 256;
  /// Hard cap on pre-copy iterations ("we limit the maximum number of
  /// iterations to avoid endless migration").
  int disk_max_iterations = 4;
  /// Stop iterating once an iteration leaves at most this many dirty blocks;
  /// the residue is synchronized by post-copy.
  std::uint64_t disk_residual_target_blocks = 256;
  /// Proactive stop: if blocks dirtied during an iteration exceed this
  /// fraction of blocks transferred in it, the dirty rate is outrunning the
  /// transfer rate and further iterations cannot converge.
  double disk_dirty_rate_abort_ratio = 0.9;
  /// When the proactive stop fires: false (the paper's behavior) proceeds to
  /// freeze-and-copy anyway, leaving the large residue to post-copy; true
  /// aborts the migration cleanly *before* suspending — the VM keeps running
  /// on the source and the caller gets MigrationStatus::kNonConvergent. The
  /// cluster orchestrator sets this so a hot VM can be retried or deferred
  /// to a cooler point in its workload cycle instead of eating a long
  /// post-copy degradation.
  bool abort_on_non_convergence = false;
  /// CPU cost the user-space migration daemon (blkd) pays per MiB moved
  /// through it — /proc copies, context switches, protocol work. Applied on
  /// both the sending and receiving side. Zero by default; the calibrated
  /// paper testbed (scenario::Testbed) sets it so the end-to-end pre-copy
  /// rate lands near the paper's ~49 MB/s over GbE.
  sim::Duration blkd_cpu_per_mib = sim::Duration::zero();

  // ---- Memory pre-copy (xc_linux_save) ----
  std::uint32_t mem_chunk_pages = 256;
  int mem_max_iterations = 5;
  /// Freeze once the dirty set is at most this many pages.
  std::uint64_t mem_residual_target_pages = 256;
  double mem_dirty_rate_abort_ratio = 0.9;

  // ---- Rate limiting (§VI-C-3) ----
  /// Shaping rate for the migration stream in MiB/s; <= 0 means unlimited.
  double rate_limit_mibps = 0.0;
  /// Rate limiting applies only to the pre-copy phases (as in the paper's
  /// experiment); the freeze-phase residual is always sent at full speed.
  bool rate_limit_postcopy = false;

  // ---- Post-copy ----
  /// Blocks per push chunk. Small chunks bound the delay before a
  /// preferential pull response can enter the link.
  std::uint32_t push_chunk_blocks = 64;
  /// Ablation: disable the destination's pull path (guest reads of dirty
  /// blocks then wait for the push sweep to reach them).
  bool postcopy_pull_enabled = true;

  // ---- Fault tolerance & resume (docs/FAULTS.md) ----
  /// Keep the transferred-block bitmap as durable resume state when a
  /// pre-freeze abort unwinds this migration, so a retried attempt re-sends
  /// only still-dirty blocks instead of the whole disk. Consumed by
  /// MigrationManager; the engine itself just exports the state.
  bool resume_enabled = true;
  /// Post-copy pull-request retry: a pull outstanding this long is re-sent
  /// (covers a lost request or a lost response under injected message loss).
  /// Zero disables retries.
  sim::Duration postcopy_pull_timeout = sim::Duration::millis(1000);
  /// Multiplier applied to the retry timeout after each re-send of the same
  /// block (exponential backoff).
  double postcopy_pull_backoff = 2.0;
  /// Tick of the destination's recovery loop (retry scan, deferred-pull
  /// issue, post-push-complete sweep) and of the freeze-fallback watchdog.
  sim::Duration postcopy_recovery_interval = sim::Duration::millis(100);
  /// Bound on concurrently outstanding pull requests (the pending-request
  /// list); reads beyond it park without sending a pull until a slot frees.
  /// Zero = unbounded.
  std::size_t postcopy_max_outstanding_pulls = 256;
  /// Freeze-and-copy fallback: if the migration path stays down for this
  /// long continuously during post-copy, suspend the guest (its reads can
  /// only stall anyway) until synchronization completes. Zero disables.
  sim::Duration postcopy_freeze_deadline = sim::Duration::from_seconds(5.0);

  // ---- Fixed per-migration overheads (hypercalls, device teardown/setup) ----
  sim::Duration suspend_overhead = sim::Duration::millis(12);
  sim::Duration resume_overhead = sim::Duration::millis(20);

  /// Track writes at the destination after resume so a later migration back
  /// can be incremental (paper §V). Leave on; benches switch it off to
  /// quantify the tracking overhead (Table III).
  bool track_for_incremental = true;
  /// Per-write bitmap update cost charged by blkback while tracking.
  sim::Duration tracking_overhead = sim::Duration::micros(2);

  // ---- §VII extensions (the paper's future work, implemented) ----
  /// Guest-assisted free-block map: the guest reports never-used blocks, so
  /// the first pre-copy pass skips them ("if the Guest OS can tell the
  /// migration process which part is not used, the amount of migrated data
  /// can be reduced further").
  bool skip_unused_blocks = false;

  // ---- Observability (src/obs; see docs/OBSERVABILITY.md) ----
  /// Both null by default = disabled: the migration hot paths then pay one
  /// branch and allocate nothing. When set, the engine records phase and
  /// iteration spans, post-copy pull/stall events, and per-message-type
  /// byte counters.
  obs::Registry* obs_registry = nullptr;
  obs::Tracer* obs_tracer = nullptr;
  /// Flight recorder (docs/ANALYSIS.md): bounded per-block event log plus
  /// exact per-migration aggregates, consumed by tools/vmig_analyze. Null =
  /// disabled; MigrationManager opens/closes the per-migration record.
  obs::FlightRecorder* obs_recorder = nullptr;

  class Builder;
  /// Entry point of the fluent builder:
  ///   auto cfg = MigrationConfig::build()
  ///                  .bitmap(BitmapKind::kFlat)
  ///                  .rate_limit(30.0)
  ///                  .abort_on_non_convergence()
  ///                  .done();
  static Builder build();
};

/// Chainable construction of a MigrationConfig. Each setter returns *this,
/// so call sites state every tunable in one expression instead of mutating
/// the struct field-by-field; `done()` yields the value. The builder covers
/// the knobs call sites actually vary — everything else keeps its default
/// (the struct's fields stay public for exhaustive tweaking).
class MigrationConfig::Builder {
 public:
  Builder() = default;

  Builder& bitmap(BitmapKind k) {
    cfg_.bitmap_kind = k;
    return *this;
  }
  Builder& disk_chunk_blocks(std::uint32_t n) {
    cfg_.disk_chunk_blocks = n;
    return *this;
  }
  Builder& disk_iterations(int max_iterations,
                           std::uint64_t residual_target_blocks) {
    cfg_.disk_max_iterations = max_iterations;
    cfg_.disk_residual_target_blocks = residual_target_blocks;
    return *this;
  }
  Builder& dirty_rate_abort_ratio(double r) {
    cfg_.disk_dirty_rate_abort_ratio = r;
    return *this;
  }
  Builder& abort_on_non_convergence(bool on = true) {
    cfg_.abort_on_non_convergence = on;
    return *this;
  }
  Builder& blkd_cpu_per_mib(sim::Duration d) {
    cfg_.blkd_cpu_per_mib = d;
    return *this;
  }
  Builder& mem_iterations(int max_iterations,
                          std::uint64_t residual_target_pages) {
    cfg_.mem_max_iterations = max_iterations;
    cfg_.mem_residual_target_pages = residual_target_pages;
    return *this;
  }
  /// MiB/s; <= 0 disables shaping. `include_postcopy` extends the limit
  /// past the pre-copy phases.
  Builder& rate_limit(double mibps, bool include_postcopy = false) {
    cfg_.rate_limit_mibps = mibps;
    cfg_.rate_limit_postcopy = include_postcopy;
    return *this;
  }
  Builder& push_chunk_blocks(std::uint32_t n) {
    cfg_.push_chunk_blocks = n;
    return *this;
  }
  Builder& postcopy_pull(bool enabled) {
    cfg_.postcopy_pull_enabled = enabled;
    return *this;
  }
  Builder& resume(bool on) {
    cfg_.resume_enabled = on;
    return *this;
  }
  /// Post-copy pull retry tuning; a zero timeout disables retries.
  Builder& pull_retry(sim::Duration timeout, double backoff = 2.0) {
    cfg_.postcopy_pull_timeout = timeout;
    cfg_.postcopy_pull_backoff = backoff;
    return *this;
  }
  Builder& pull_bound(std::size_t max_outstanding) {
    cfg_.postcopy_max_outstanding_pulls = max_outstanding;
    return *this;
  }
  Builder& recovery_interval(sim::Duration tick) {
    cfg_.postcopy_recovery_interval = tick;
    return *this;
  }
  /// Freeze-and-copy fallback deadline; zero disables the fallback.
  Builder& freeze_fallback(sim::Duration deadline) {
    cfg_.postcopy_freeze_deadline = deadline;
    return *this;
  }
  Builder& overheads(sim::Duration suspend, sim::Duration resume) {
    cfg_.suspend_overhead = suspend;
    cfg_.resume_overhead = resume;
    return *this;
  }
  Builder& track_for_incremental(bool on) {
    cfg_.track_for_incremental = on;
    return *this;
  }
  Builder& tracking_overhead(sim::Duration per_write) {
    cfg_.tracking_overhead = per_write;
    return *this;
  }
  Builder& skip_unused_blocks(bool on = true) {
    cfg_.skip_unused_blocks = on;
    return *this;
  }
  Builder& observe(obs::Registry* registry, obs::Tracer* tracer) {
    cfg_.obs_registry = registry;
    cfg_.obs_tracer = tracer;
    return *this;
  }
  Builder& record_flight(obs::FlightRecorder* recorder) {
    cfg_.obs_recorder = recorder;
    return *this;
  }

  MigrationConfig done() const { return cfg_; }
  /// Builders convert implicitly where a MigrationConfig is expected, so a
  /// chain can be passed directly to migrate()/run_tpm without `.done()`.
  operator MigrationConfig() const { return cfg_; }  // NOLINT

 private:
  MigrationConfig cfg_;
};

inline MigrationConfig::Builder MigrationConfig::build() { return Builder{}; }

}  // namespace vmig::core
