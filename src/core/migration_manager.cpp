#include "core/migration_manager.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>

#include "core/tpm.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/tracer.hpp"

namespace vmig::core {

namespace {

/// Project a finished (or aborted) report into the flight recorder's close
/// record — the plain-integer slice vmig_analyze reconciles the recorder's
/// own aggregates against.
obs::MigrationClose close_of(const MigrationReport& rep) {
  obs::MigrationClose c;
  c.disk_precopy_done_ns = rep.disk_precopy_done.ns();
  c.suspended_ns = rep.suspended.ns();
  c.resumed_ns = rep.resumed.ns();
  c.synchronized_ns = rep.synchronized.ns();
  c.bytes_disk_first_pass = rep.bytes_disk_first_pass;
  c.bytes_disk_retransfer = rep.bytes_disk_retransfer;
  c.bytes_memory_precopy = rep.bytes_memory_precopy;
  c.bytes_freeze_residual = rep.bytes_freeze_residual;
  c.bytes_bitmap = rep.bytes_bitmap;
  c.bytes_postcopy_push = rep.bytes_postcopy_push;
  c.bytes_postcopy_pull = rep.bytes_postcopy_pull;
  c.bytes_control = rep.bytes_control;
  c.residual_dirty_blocks = rep.residual_dirty_blocks;
  c.blocks_retransferred = rep.blocks_retransferred;
  c.blocks_pushed = rep.blocks_pushed;
  c.blocks_pulled = rep.blocks_pulled;
  c.blocks_dropped = rep.blocks_dropped;
  c.postcopy_reads_blocked = rep.postcopy_reads_blocked;
  c.postcopy_read_stall_total_ns = rep.postcopy_read_stall_total.ns();
  c.postcopy_read_stall_max_ns = rep.postcopy_read_stall_max.ns();
  c.disk_iterations = static_cast<std::uint32_t>(rep.disk_iterations);
  c.mem_iterations = static_cast<std::uint32_t>(rep.mem_iterations);
  c.resume_applied = rep.resume_applied;
  c.resumed_blocks_saved = rep.resumed_blocks_saved;
  return c;
}

}  // namespace

sim::Task<MigrationOutcome> MigrationManager::migrate(MigrationRequest req) {
  MigrationOutcome out;
  try {
    out.report = co_await run_migration(req);
  } catch (const MigrationAborted& aborted) {
    out.status = aborted.reason();
    // The VM is still on the source; the partial report (phase timestamps,
    // bytes moved before the abort) is still useful for diagnostics, but
    // carries no consistency claims.
    out.report = aborted.report();
  }
  co_return out;
}

sim::Task<MigrationReport> MigrationManager::run_migration(
    MigrationRequest req) {
  vm::Domain& domain = *req.domain;
  hv::Host& from = *req.from;
  hv::Host& to = *req.to;
  const MigrationConfig& cfg = req.config;
  // Per-migration setup is control-plane work: attribute its allocations to
  // kOther so the steady-state dispatch category stays clean.
  const auto tpm = [&] {
    obs::ProfScope prof{obs::ProfCategory::kOther};
    return std::make_unique<TpmMigration>(sim_, cfg, domain, from, to);
  }();
  if (progress_) tpm->set_progress_listener(progress_);

  // The rest of the prologue (flight record, resume lookup, IM seeding,
  // span strings, directory upkeep) is control-plane setup too. A ProfScope
  // must not span a co_await (C1), so this one is held in an optional and
  // explicitly reset before tpm->run() — there is no suspension point
  // between here and that reset.
  std::optional<obs::ProfScope> setup_prof{std::in_place,
                                           obs::ProfCategory::kOther};

  // Flight recorder: open this attempt's record and hand the engine its
  // migration id. Closed on both exits below, so an aborted attempt still
  // serializes with its partial aggregates and terminal status.
  obs::FlightRecorder* const flight = cfg.obs_recorder;
  obs::FlightMigId flight_mig = 0;
  if (flight != nullptr) {
    obs::ProfScope prof{obs::ProfCategory::kOther};
    flight_mig = flight->begin_migration(domain.name(), from.name(), to.name(),
                                         sim_.now());
    tpm->set_flight(flight, flight_mig);
  }

  // Resume state left by a previous aborted attempt of this exact path.
  // Consumed up front (even if it turns out inapplicable below) — it
  // describes the destination disk relative to *this* moment's source and
  // goes stale as soon as any migration attempt runs.
  const auto resume_key =
      std::make_tuple(domain.id(), from.name(), to.name());
  std::optional<MigrationResumeState> resume;
  if (cfg.resume_enabled) {
    if (const auto it = resume_.find(resume_key); it != resume_.end()) {
      resume = std::move(it->second);
      resume_.erase(it);
    }
  }
  const std::uint64_t nblocks = from.vbd_for(domain.id()).geometry().block_count;
  // Build the retry seed: everything except what the destination already
  // holds, plus every source write tracked since the abort (`since_abort`
  // must be the consumed tracking bitmap — resume is unsound without it).
  const auto resume_seed = [&](const DirtyBitmap& since_abort) {
    obs::ProfScope prof{obs::ProfCategory::kBitmapScan};
    DirtyBitmap seed{cfg.bitmap_kind, nblocks, /*initially_set=*/true};
    seed.subtract(resume->transferred);
    seed.or_with(since_abort);
    const std::uint64_t saved = nblocks - seed.count_set();
    tpm->set_first_pass_seed(std::move(seed), /*mark_incremental=*/false);
    tpm->mark_resumed(saved);
  };

  // Top-level span over the whole manager path (IM seeding + TPM + directory
  // upkeep); the TPM emits the per-phase spans within it.
  obs::Span migrate_span{
      cfg.obs_tracer,
      cfg.obs_tracer != nullptr
          ? cfg.obs_tracer->track(from.name(), "manager")
          : obs::TrackId{0},
      "migrate", "\"vm\": \"" + domain.name() + "\""};

  // §VII multi-host IM: seed the first pass from the version directory and
  // fold the source's tenancy writes into every other host's divergence.
  DirtyBitmap tenancy_writes;
  bool tenancy_known = false;
  ImDirectory* dir = nullptr;
  if (multi_host_im_) {
    auto& slot = directories_[domain.id()];
    if (!slot) {
      slot = std::make_unique<ImDirectory>(from.vbd_for(domain.id()).geometry().block_count,
                                           cfg.bitmap_kind);
    }
    dir = slot.get();
    if (from.backend_for(domain.id()).tracking()) {
      tenancy_writes = from.backend_for(domain.id()).snapshot_dirty_and_reset();
      tenancy_known = true;
    } else {
      tenancy_writes =
          DirtyBitmap{cfg.bitmap_kind, from.vbd_for(domain.id()).geometry().block_count};
    }
    if (resume.has_value() && tenancy_known) {
      // Resume-aware retry: the aborted attempt erased this domain's
      // directory, so without resume the tenancy branch below would force a
      // full first pass. The transferred bitmap plus the consumed tracking
      // delta re-sends exactly the still-dirty blocks instead.
      resume_seed(tenancy_writes);
    } else if (auto seed = dir->seed_for(to)) {
      seed->or_with(tenancy_writes);
      tpm->set_first_pass_seed(std::move(*seed));
    } else if (tenancy_known) {
      // Unknown destination: full first pass (the consumed tracking is a
      // subset of all-set, so nothing is lost).
      DirtyBitmap all{cfg.bitmap_kind, from.vbd_for(domain.id()).geometry().block_count,
                      /*initially_set=*/true};
      tpm->set_first_pass_seed(std::move(all), /*mark_incremental=*/false);
    }
  } else {
    // Pairwise IM (the paper's prototype, §V/§VII): a migration is
    // incremental only back to the machine the VM last came from. If the
    // source backend is still tracking but the destination never held this
    // VM's base image, the bitmap must NOT seed the first pass — force a
    // full copy (the paper notes its IM "can only act between the primary
    // destination and the source machine"; acting anyway would silently
    // corrupt the disk).
    const auto it = last_source_.find(domain.id());
    const bool dest_has_base = it != last_source_.end() && it->second == &to;
    if (resume.has_value() && from.backend_for(domain.id()).tracking()) {
      // Resume-aware retry of the same path: instead of the full-copy guard
      // below (the abort repointed last_source_ at this source), seed with
      // the blocks the destination does not yet hold — the aborted
      // attempt's transferred bitmap complement plus everything the still-
      // running tracking caught since.
      resume_seed(from.backend_for(domain.id()).snapshot_dirty_and_reset());
    } else if (from.backend_for(domain.id()).tracking() && !dest_has_base) {
      (void)from.backend_for(domain.id()).snapshot_dirty_and_reset();
      DirtyBitmap all{cfg.bitmap_kind, from.vbd_for(domain.id()).geometry().block_count,
                      /*initially_set=*/true};
      tpm->set_first_pass_seed(std::move(all), /*mark_incremental=*/false);
    }
    // Set before the run, also on the abort path: after a partial transfer
    // neither side's copy of the VM is a clean base image, and pointing
    // last_source_ at the attempt's source forces the retry through the
    // full-copy guard above.
    last_source_[domain.id()] = &from;
  }

  setup_prof.reset();  // close the kOther scope before suspending

  MigrationReport rep;
  try {
    rep = co_await tpm->run();
  } catch (const MigrationAborted& aborted) {
    if (flight != nullptr) {
      flight->end_migration(flight_mig, sim_.now(),
                            to_string(aborted.reason()),
                            close_of(aborted.report()));
    }
    if (cfg.resume_enabled) {
      // Export the attempt's transferred bitmap so the next retry of this
      // path re-sends only still-dirty blocks (tracking stays on and will
      // supply the delta).
      if (auto rs = tpm->take_resume_state()) {
        resume_.insert_or_assign(resume_key, std::move(*rs));
      }
    }
    if (dir != nullptr) {
      // The directory's divergence maps were partially consumed (the
      // tenancy snapshot above) and partially transferred; every per-host
      // seed derived from them would now under-copy. Drop all knowledge of
      // this domain — future migrations pay a full first pass, which is
      // always correct.
      directories_.erase(domain.id());
    }
    throw;
  }

  // Post-run bookkeeping (directory upkeep, resume invalidation, history)
  // is control-plane work again; no suspension until co_return.
  obs::ProfScope finish_prof{obs::ProfCategory::kOther};

  if (dir != nullptr) {
    tenancy_writes.or_with(tpm->observed_source_writes());
    // tenancy_known is false only when the source had no tracking (a first
    // departure); any already-known host copies must then be invalidated.
    dir->on_migrated(from, to, tenancy_writes, tenancy_known);
  }

  // Success invalidates every resume state for this domain: the VM moved,
  // so any held transferred-bitmap describes a stale (source, destination)
  // disk relationship.
  for (auto rit = resume_.begin(); rit != resume_.end();) {
    if (std::get<0>(rit->first) == domain.id()) {
      rit = resume_.erase(rit);
    } else {
      ++rit;
    }
  }

  if (flight != nullptr) {
    flight->end_migration(flight_mig, sim_.now(),
                          to_string(MigrationStatus::kCompleted),
                          close_of(rep));
  }

  history_.push_back(rep);
  co_return rep;
}

}  // namespace vmig::core
