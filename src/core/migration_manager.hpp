#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/im_directory.hpp"
#include "core/tpm.hpp"
#include "core/migration_config.hpp"
#include "core/migration_metrics.hpp"
#include "core/migration_request.hpp"
#include "hypervisor/host.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::core {

/// Public facade of the migration library.
///
/// Usage:
///   MigrationManager mgr{sim};
///   sim.spawn(run());                 // where run() does:
///     auto out = co_await mgr.migrate({.domain = &vm, .from = &office,
///                                      .to = &home});
///     ... work at home ...
///     auto back = co_await mgr.migrate({.domain = &vm, .from = &home,
///                                       .to = &office});  // incremental
///
/// A second migration back to a machine the VM came from is automatically
/// incremental: the destination-side write tracking started by the first
/// migration seeds the first pre-copy iteration (paper §V).
class MigrationManager {
 public:
  explicit MigrationManager(sim::Simulator& sim) : sim_{sim} {}

  /// Whole-system live migration described by `req` — the primary entry
  /// point. Completes when source and destination are fully synchronized
  /// (status kCompleted), or when the engine aborts cleanly pre-freeze
  /// (kLinkDisrupted / kNonConvergent: the VM still runs on the source and
  /// re-submitting the same request is safe). Failures are returned as the
  /// outcome's status, never thrown, so orchestration layers can apply
  /// retry policy without exception plumbing. `req.priority` and
  /// `req.deadline` are scheduler hints; the manager itself ignores them.
  sim::Task<MigrationOutcome> migrate(MigrationRequest req);

  /// Observe phase transitions and disk pre-copy progress of every
  /// migration this manager runs (see TpmMigration::ProgressListener).
  void set_progress_listener(TpmMigration::ProgressListener l) {
    progress_ = std::move(l);
  }

  /// §VII extension: maintain per-host disk-version bitmaps so migrations
  /// are incremental to *any* recently-visited host, not just the previous
  /// one. Off by default (the paper's prototype is strictly pairwise).
  void set_multi_host_im(bool enabled) noexcept { multi_host_im_ = enabled; }
  bool multi_host_im() const noexcept { return multi_host_im_; }

  /// The version directory for a domain (nullptr until it migrated once
  /// with multi-host IM enabled).
  const ImDirectory* directory(const vm::Domain& domain) const {
    const auto it = directories_.find(domain.id());
    return it == directories_.end() ? nullptr : it->second.get();
  }

  /// Reports of every completed migration, oldest first.
  const std::vector<MigrationReport>& history() const noexcept {
    return history_;
  }

  /// Aborted-attempt resume states currently held (one per
  /// (domain, source, destination) path). Diagnostic/testing hook; the
  /// states themselves are consumed transparently by the next retry of the
  /// same path when config.resume_enabled is set (docs/FAULTS.md).
  std::size_t resume_states() const noexcept { return resume_.size(); }

 private:
  /// The throwing core both public overloads share: IM seeding, the TPM
  /// run, and directory upkeep. Propagates MigrationAborted after unwinding
  /// the manager-level IM state (directory invalidation).
  sim::Task<MigrationReport> run_migration(MigrationRequest req);

  sim::Simulator& sim_;
  TpmMigration::ProgressListener progress_;
  bool multi_host_im_ = false;
  std::unordered_map<vm::DomainId, std::unique_ptr<ImDirectory>> directories_;
  /// Pairwise-IM validity: the host each domain last migrated away from
  /// (the only machine whose disk holds this VM's base image).
  std::unordered_map<vm::DomainId, const hv::Host*> last_source_;
  /// Durable resume state from aborted attempts, keyed by
  /// (domain, source name, destination name): only a retry of the *same*
  /// path may resume — any other path pays a correct full first pass. Host
  /// names (not pointers) keep the key order deterministic; ordered map
  /// because success-path invalidation iterates it.
  std::map<std::tuple<vm::DomainId, std::string, std::string>,
           MigrationResumeState>
      resume_;
  std::vector<MigrationReport> history_;
};

}  // namespace vmig::core
