#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/im_directory.hpp"
#include "core/tpm.hpp"
#include "core/migration_config.hpp"
#include "core/migration_metrics.hpp"
#include "hypervisor/host.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::core {

/// Public facade of the migration library.
///
/// Usage:
///   MigrationManager mgr{sim};
///   sim.spawn(run());                 // where run() does:
///     auto rep = co_await mgr.migrate(vm, office, home);
///     ... work at home ...
///     auto back = co_await mgr.migrate(vm, home, office);  // incremental
///
/// A second migration back to a machine the VM came from is automatically
/// incremental: the destination-side write tracking started by the first
/// migration seeds the first pre-copy iteration (paper §V).
class MigrationManager {
 public:
  explicit MigrationManager(sim::Simulator& sim) : sim_{sim} {}

  /// Whole-system live migration of `domain` between two interconnected
  /// hosts. Completes when source and destination are fully synchronized.
  sim::Task<MigrationReport> migrate(vm::Domain& domain, hv::Host& from,
                                     hv::Host& to, MigrationConfig cfg = {});

  /// Observe phase transitions and disk pre-copy progress of every
  /// migration this manager runs (see TpmMigration::ProgressListener).
  void set_progress_listener(TpmMigration::ProgressListener l) {
    progress_ = std::move(l);
  }

  /// §VII extension: maintain per-host disk-version bitmaps so migrations
  /// are incremental to *any* recently-visited host, not just the previous
  /// one. Off by default (the paper's prototype is strictly pairwise).
  void set_multi_host_im(bool enabled) noexcept { multi_host_im_ = enabled; }
  bool multi_host_im() const noexcept { return multi_host_im_; }

  /// The version directory for a domain (nullptr until it migrated once
  /// with multi-host IM enabled).
  const ImDirectory* directory(const vm::Domain& domain) const {
    const auto it = directories_.find(domain.id());
    return it == directories_.end() ? nullptr : it->second.get();
  }

  /// Reports of every completed migration, oldest first.
  const std::vector<MigrationReport>& history() const noexcept {
    return history_;
  }

 private:
  sim::Simulator& sim_;
  TpmMigration::ProgressListener progress_;
  bool multi_host_im_ = false;
  std::unordered_map<vm::DomainId, std::unique_ptr<ImDirectory>> directories_;
  /// Pairwise-IM validity: the host each domain last migrated away from
  /// (the only machine whose disk holds this VM's base image).
  std::unordered_map<vm::DomainId, const hv::Host*> last_source_;
  std::vector<MigrationReport> history_;
};

}  // namespace vmig::core
