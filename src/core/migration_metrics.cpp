#include "core/migration_metrics.hpp"

#include <cstdio>

namespace vmig::core {

std::string MigrationReport::str() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "migration: total=%.1fs downtime=%.1fms precopy=%.1fs postcopy=%.1fms\n"
      "  data: %.1f MiB (disk first=%.1f retx=%.1f mem=%.1f residual=%.3f "
      "bitmap=%.3f push=%.3f pull=%.3f ctrl=%.3f)\n"
      "  disk: %d iters, first=%llu retx=%llu residual=%llu "
      "push=%llu pull=%llu drop=%llu%s%s\n"
      "  mem: %d iters, precopied=%llu residual=%llu pages\n"
      "  fault: resumed=%s saved=%llu pull_retries=%llu fallback_freezes=%llu\n"
      "  verified: disk=%s memory=%s",
      total_time().to_seconds(), downtime().to_millis(),
      precopy_time().to_seconds(), postcopy_time().to_millis(), total_mib(),
      static_cast<double>(bytes_disk_first_pass) / (1024.0 * 1024.0),
      static_cast<double>(bytes_disk_retransfer) / (1024.0 * 1024.0),
      static_cast<double>(bytes_memory_precopy) / (1024.0 * 1024.0),
      static_cast<double>(bytes_freeze_residual) / (1024.0 * 1024.0),
      static_cast<double>(bytes_bitmap) / (1024.0 * 1024.0),
      static_cast<double>(bytes_postcopy_push) / (1024.0 * 1024.0),
      static_cast<double>(bytes_postcopy_pull) / (1024.0 * 1024.0),
      static_cast<double>(bytes_control) / (1024.0 * 1024.0), disk_iterations,
      static_cast<unsigned long long>(blocks_first_pass),
      static_cast<unsigned long long>(blocks_retransferred),
      static_cast<unsigned long long>(residual_dirty_blocks),
      static_cast<unsigned long long>(blocks_pushed),
      static_cast<unsigned long long>(blocks_pulled),
      static_cast<unsigned long long>(blocks_dropped),
      incremental ? " [incremental]" : "",
      aborted_precopy_dirty_rate ? " [dirty-rate abort]" : "", mem_iterations,
      static_cast<unsigned long long>(pages_precopied),
      static_cast<unsigned long long>(pages_residual),
      resume_applied ? "yes" : "no",
      static_cast<unsigned long long>(resumed_blocks_saved),
      static_cast<unsigned long long>(postcopy_pull_retries),
      static_cast<unsigned long long>(postcopy_fallback_freezes),
      disk_consistent ? "ok" : "FAIL", memory_consistent ? "ok" : "FAIL");
  return buf;
}

std::string MigrationReport::row() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%8.1f %10.0f %12.1f",
                total_time().to_seconds(), downtime().to_millis(), total_mib());
  return buf;
}

}  // namespace vmig::core
