#pragma once

#include <cstdint>
#include <string>

#include "simcore/time.hpp"

namespace vmig::core {

/// Everything measured about one migration, aligned with the paper's §III-A
/// metrics: downtime, total migration time, amount of migrated data, plus
/// per-phase detail the evaluation section quotes (iterations, retransferred
/// blocks, pulled/pushed counts, post-copy duration).
struct MigrationReport {
  // ---- Phase boundaries ----
  sim::TimePoint started{};
  sim::TimePoint disk_precopy_done{};  ///< storage pre-copy iterations over
  sim::TimePoint suspended{};     ///< guest frozen on the source
  sim::TimePoint resumed{};       ///< guest running on the destination
  sim::TimePoint synchronized{};  ///< post-copy drained; source releasable

  // ---- §III-A headline metrics ----
  sim::Duration total_time() const { return synchronized - started; }
  sim::Duration downtime() const { return resumed - suspended; }
  sim::Duration precopy_time() const { return suspended - started; }
  sim::Duration postcopy_time() const { return synchronized - resumed; }
  /// Storage-only migration time: disk pre-copy plus the post-copy
  /// synchronization (what the paper's Table II appears to report for IM —
  /// memory pre-copy time excluded).
  sim::Duration storage_time() const {
    return (disk_precopy_done - started) + postcopy_time();
  }

  // ---- Data volumes (bytes) ----
  std::uint64_t bytes_disk_first_pass = 0;   ///< iteration 1 (full disk or IM seed)
  std::uint64_t bytes_disk_retransfer = 0;   ///< later iterations
  std::uint64_t bytes_memory_precopy = 0;
  std::uint64_t bytes_freeze_residual = 0;   ///< residual pages + CPU state
  std::uint64_t bytes_bitmap = 0;
  std::uint64_t bytes_postcopy_push = 0;
  std::uint64_t bytes_postcopy_pull = 0;
  std::uint64_t bytes_control = 0;

  std::uint64_t total_bytes() const {
    return bytes_disk_first_pass + bytes_disk_retransfer + bytes_memory_precopy +
           bytes_freeze_residual + bytes_bitmap + bytes_postcopy_push +
           bytes_postcopy_pull + bytes_control;
  }
  double total_mib() const {
    return static_cast<double>(total_bytes()) / (1024.0 * 1024.0);
  }

  // ---- Counters the paper quotes per workload ----
  int disk_iterations = 0;
  int mem_iterations = 0;
  std::uint64_t blocks_first_pass = 0;
  std::uint64_t blocks_retransferred = 0;   ///< dirty blocks resent in pre-copy
  std::uint64_t residual_dirty_blocks = 0;  ///< left for post-copy at freeze
  std::uint64_t blocks_pushed = 0;
  std::uint64_t blocks_pulled = 0;
  std::uint64_t blocks_dropped = 0;         ///< pushed but overwritten locally
  std::uint64_t postcopy_reads_blocked = 0; ///< guest reads that waited
  sim::Duration postcopy_read_stall_total{};
  sim::Duration postcopy_read_stall_max{};
  std::uint64_t pages_precopied = 0;
  std::uint64_t pages_residual = 0;
  bool incremental = false;                 ///< first pass seeded from IM bitmap
  bool aborted_precopy_dirty_rate = false;  ///< proactive stop fired
  std::uint64_t blocks_skipped_unused = 0;  ///< guest-reported free blocks

  // ---- Fault tolerance (docs/FAULTS.md) ----
  /// First pass was seeded from a previous aborted attempt's transferred
  /// bitmap (resume) rather than restarted from scratch.
  bool resume_applied = false;
  /// Blocks the resume seed excluded versus a from-scratch restart — the
  /// savings a mid-migration fault would otherwise have cost again.
  std::uint64_t resumed_blocks_saved = 0;
  /// Pull requests re-sent by the destination's recovery loop (lost request
  /// or lost response under injected message loss).
  std::uint64_t postcopy_pull_retries = 0;
  /// Times the freeze-and-copy fallback suspended the guest because the
  /// source stayed unreachable past the configured deadline.
  std::uint64_t postcopy_fallback_freezes = 0;
  /// Total time the guest spent suspended by the fallback.
  sim::Duration postcopy_fallback_freeze_time{};

  // ---- End-state verification (simulation-only ground truth) ----
  bool disk_consistent = false;
  bool memory_consistent = false;

  /// Multi-line human-readable rendering.
  std::string str() const;
  /// One table row: "total_s downtime_ms data_MB".
  std::string row() const;
};

}  // namespace vmig::core
