#include "core/migration_request.hpp"

namespace vmig::core {

const char* to_string(MigrationStatus s) {
  switch (s) {
    case MigrationStatus::kCompleted:
      return "completed";
    case MigrationStatus::kLinkDisrupted:
      return "link-disrupted";
    case MigrationStatus::kNonConvergent:
      return "non-convergent";
    default:
      return "deadline-expired";
  }
}

}  // namespace vmig::core
