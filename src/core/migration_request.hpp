#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "core/migration_config.hpp"
#include "core/migration_metrics.hpp"
#include "simcore/time.hpp"

namespace vmig::hv {
class Host;
}  // namespace vmig::hv
namespace vmig::vm {
class Domain;
}  // namespace vmig::vm

namespace vmig::core {

/// Terminal status of one migration attempt.
enum class MigrationStatus : std::uint8_t {
  /// Source and destination fully synchronized; the VM runs at `to`.
  kCompleted,
  /// The migration link failed mid-pre-copy; the VM never left the source.
  kLinkDisrupted,
  /// Pre-copy could not converge (dirty rate outran the transfer rate) and
  /// `MigrationConfig::abort_on_non_convergence` was set; the VM never left
  /// the source. Retry later, when the workload's write cycle cools down.
  kNonConvergent,
  /// The job's deadline passed before the orchestrator could launch it.
  kDeadlineExpired,
};

const char* to_string(MigrationStatus s);

/// A migration described as data: what to move, where, under which tunables,
/// and how urgent it is. The primary argument of
/// `MigrationManager::migrate(MigrationRequest)` and the unit of work the
/// cluster orchestrator queues, schedules, and retries.
///
/// `priority` and `deadline` are orchestration hints: the manager itself
/// executes every request immediately and ignores them.
struct MigrationRequest {
  vm::Domain* domain = nullptr;
  hv::Host* from = nullptr;
  hv::Host* to = nullptr;
  MigrationConfig config{};
  /// Larger runs earlier when the scheduler must choose (ties: submit order).
  int priority = 0;
  /// Relative to submission; zero = none. A job whose deadline passes while
  /// it is still queued fails with kDeadlineExpired instead of launching.
  sim::Duration deadline = sim::Duration::zero();
};

/// Typed result of `MigrationManager::migrate(MigrationRequest)`: a status
/// instead of an exception, the (partial, on failure) report, and how many
/// attempts the job took — 1 from the manager, possibly more after the
/// orchestrator's retry/backoff layer.
struct MigrationOutcome {
  MigrationStatus status = MigrationStatus::kCompleted;
  MigrationReport report{};
  int attempts = 1;

  bool completed() const noexcept {
    return status == MigrationStatus::kCompleted;
  }
  /// Completed AND both consistency checks passed.
  bool ok() const noexcept {
    return completed() && report.disk_consistent && report.memory_consistent;
  }
};

/// Thrown by the migration engine when a pre-copy phase aborts cleanly (link
/// outage, non-convergence). The VM is still running on the source and all
/// engine-side state has been unwound; catching it and retrying is safe (the
/// next attempt falls back to a full first pass). The manager's request-form
/// entry point converts it into a MigrationOutcome.
class MigrationAborted : public std::runtime_error {
 public:
  MigrationAborted(MigrationStatus reason, const std::string& what,
                   MigrationReport partial = {})
      : std::runtime_error(what),
        reason_{reason},
        report_{std::move(partial)} {}

  MigrationStatus reason() const noexcept { return reason_; }
  /// The phase timestamps and byte counts accumulated before the abort.
  /// Carries no consistency claims (disk/memory_consistent stay false).
  const MigrationReport& report() const noexcept { return report_; }

 private:
  MigrationStatus reason_;
  MigrationReport report_;
};

}  // namespace vmig::core
