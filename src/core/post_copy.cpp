#include "core/post_copy.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"

namespace vmig::core {

PostCopyDestination::PostCopyDestination(sim::Simulator& sim,
                                         storage::VirtualDisk& disk,
                                         DirtyBitmap transferred,
                                         vm::DomainId migrated,
                                         MigStream& to_source, bool pull_enabled)
    : sim_{sim},
      disk_{disk},
      transferred_{std::move(transferred)},
      migrated_{migrated},
      to_source_{to_source},
      gates_{sim},
      done_{sim},
      pull_enabled_{pull_enabled} {
  // Pre-size the hot-path maps so the steady state stays allocation-free
  // from the first pull (capacities grow only past a new high-water mark).
  pending_.reserve(64);
  requested_.reserve(64);
  scratch_ids_.reserve(64);
  check_done();  // a zero-residue migration is already synchronized
}

void PostCopyDestination::attach_obs(obs::Tracer* tracer, obs::TrackId track,
                                     obs::Registry* registry) {
  tracer_ = tracer;
  track_ = track;
  if (registry != nullptr) {
    obs_pending_ = &registry->gauge("postcopy.pending_reads");
    obs_stall_ = &registry->histogram("postcopy.read_stall_ns");
  }
}

sim::Task<void> PostCopyDestination::on_request(vm::DomainId domain,
                                                storage::IoOp op,
                                                storage::BlockRange range) {
  // Line 3: requests from domains other than the migrated VM pass through.
  if (domain != migrated_) co_return;

  if (op == storage::IoOp::kWrite) {
    // Lines 5-10: a whole-block overwrite supersedes the source copy; the
    // block no longer needs synchronization. (BM_3 marking happens in
    // blkback's write tracking.) Pending reads of the block — possible only
    // from concurrent guest contexts — see the freshly written data.
    std::uint64_t cancelled = 0;
    // Run-level sweep: visit only the still-dirty runs inside the write
    // window, release their waiters, and clear each run word-at-a-time.
    storage::BlockId from = range.start;
    while (const auto run =
               transferred_.next_set_run(from, range.end(), range.count)) {
      for (storage::BlockId b = run->start; b < run->start + run->len; ++b) {
        release_waiters(b);
      }
      transferred_.clear_range(run->start, run->len);
      cancelled += run->len;
      from = run->start + run->len;
    }
    if (cancelled > 0 && flight_ != nullptr) {
      flight_->overwrite_cancel(
          flight_mig_, sim_.now(), range.start, cancelled,
          cancelled * disk_.geometry().block_size);
    }
    check_done();
    co_return;
  }

  // Lines 11-13: reads of clean blocks submit directly; dirty blocks are
  // pulled from the source and the request parks in the pending list.
  const sim::TimePoint entered = sim_.now();
  bool blocked = false;
  if (pull_enabled_) {
    // Word-level skip to each dirty block; re-queried every iteration since
    // the send suspends and blocks may arrive (or be overwritten) meanwhile.
    for (auto nb = transferred_.next_set(range.start);
         nb.has_value() && *nb < range.end();
         nb = transferred_.next_set(*nb + 1)) {
      const storage::BlockId b = *nb;
      if (requested_.contains(b)) continue;
      if (!pull_slot_free()) {
        // Bounded pending-request list: park without a request; the
        // recovery loop issues the pull once a slot frees.
        ++pulls_deferred_;
        continue;
      }
      co_await send_pull(b, /*is_retry=*/false);
    }
  }
  // vmig-lint: hot-begin -- pull parking: every faulting guest read lands
  // here; parking must not heap-allocate a gate per pull
  for (;;) {
    // Earliest still-inconsistent block in the window (word-level scan);
    // re-queried after every wakeup because the wait suspends.
    const auto nb = transferred_.next_set(range.start);
    if (!nb.has_value() || *nb >= range.end()) break;
    blocked = true;
    // vmig-lint: h2-ok -- pooled gate + flat-map shuffle, no node alloc
    const auto [it, inserted] = pending_.try_emplace(*nb);
    if (inserted) it->second = gates_.acquire();
    sim::Gate& gate = gates_.at(it->second);
    if (obs_pending_) obs_pending_->set(static_cast<double>(pending_.size()));
    co_await gate.wait();
  }
  // vmig-lint: hot-end
  if (blocked) {
    ++reads_blocked_;
    const sim::Duration stall = sim_.now() - entered;
    total_stall_ += stall;
    if (stall > max_stall_) max_stall_ = stall;
    if (obs_stall_) obs_stall_->observe(static_cast<double>(stall.ns()));
    if (flight_ != nullptr) {
      flight_->stall(flight_mig_, sim_.now(), range.start, range.count, stall);
    }
    if (tracer_) {
      tracer_->complete(track_, entered, "read_stall",
                        "\"block\": " + std::to_string(range.start) +
                            ", \"count\": " + std::to_string(range.count));
    }
  }
}

sim::Task<void> PostCopyDestination::on_block_received(const DiskBlocksMsg& msg) {
  // Apply only the still-inconsistent sub-runs; drop blocks a local write
  // superseded (paper receive-algorithm lines 2-3).
  const storage::BlockRange range = msg.range;
  // Pull latency must be read before the apply loop erases requested_.
  // Pull responses are single-block; `sent` is set once the request is on
  // the wire, so a zero timestamp means the round trip is not measurable.
  std::int64_t pull_latency_ns = -1;
  if (msg.pull_response && flight_ != nullptr) {
    if (const auto it = requested_.find(range.start);
        it != requested_.end() && it->second.sent.ns() > 0) {
      pull_latency_ns = (sim_.now() - it->second.sent).ns();
    }
  }
  std::uint64_t applied = 0;
  storage::BlockId i = range.start;
  // Apply run-at-a-time: the bitmap cursor yields each contiguous
  // still-inconsistent run for one coalesced disk write. Runs are re-queried
  // from the live bitmap after every write because the write suspends and
  // concurrent guest writes may shrink later runs.
  while (const auto run = transferred_.next_set_run(i, range.end(), range.count)) {
    const storage::BlockId rs = run->start;
    const std::uint32_t n = static_cast<std::uint32_t>(run->len);
    const std::size_t off = static_cast<std::size_t>(rs - range.start);
    const std::span<const storage::ContentToken> toks{msg.tokens.data() + off, n};
    co_await disk_.write_tokens(storage::BlockRange{rs, n}, toks,
                                storage::IoSource::kMigration);
    if (!msg.payloads.empty()) {
      disk_.apply_payloads(
          storage::BlockRange{rs, n},
          std::span<const std::byte>{msg.payloads.data() + off * msg.block_size,
                                     static_cast<std::size_t>(n) * msg.block_size});
    }
    transferred_.clear_range(rs, n);
    for (storage::BlockId b = rs; b < rs + n; ++b) {
      release_waiters(b);
      requested_.erase(b);
    }
    applied += n;
    if (msg.pull_response) {
      stats_.blocks_pulled += n;
    } else {
      stats_.blocks_pushed += n;
    }
    i = rs + n;
  }
  // Everything in the window that was not applied had been superseded by a
  // local write (or an earlier copy) — the paper's receive-rule drop case.
  stats_.blocks_dropped += range.count - applied;
  if (msg.pull_response) {
    stats_.bytes_pull += msg.wire_bytes();
  } else {
    stats_.bytes_push += msg.wire_bytes();
  }
  if (flight_ != nullptr) {
    if (msg.pull_response) {
      flight_->pull_received(flight_mig_, sim_.now(), range.start, range.count,
                             applied, msg.wire_bytes(), pull_latency_ns);
    } else {
      flight_->push_received(flight_mig_, sim_.now(), range.start, range.count,
                             applied, msg.wire_bytes());
    }
  }
  check_done();
}

void PostCopyDestination::force_complete(
    const storage::VirtualDisk& source_of_truth) {
  transferred_.for_each_set([&](std::uint64_t b) {
    disk_.poke_token(b, source_of_truth.token(b));
  });
  transferred_.fill(false);
  // Open the gates in block order. The flat map iterates sorted by key, so
  // the release order is deterministic without a snapshot-and-sort pass;
  // opened gates go straight back to the pool (waiters resume through the
  // simulator queue and never touch the gate again).
  for (const auto& [b, gi] : pending_) {
    gates_.at(gi).open();
    gates_.release(gi);
  }
  pending_.clear();
  requested_.clear();
  if (obs_pending_) obs_pending_->set(0.0);
  check_done();
}

sim::Task<void> PostCopyDestination::send_pull(storage::BlockId b,
                                               bool is_retry) {
  // Reserve the slot before the co_await so a concurrent reader of the same
  // block sees it outstanding instead of double-requesting.
  MigrationMessage req{PullRequestMsg{b}};
  {
    // Scope ends before the send suspends.
    obs::ProfScope prof{obs::ProfCategory::kPostCopyPull};
    obs::prof_count(obs::ProfCategory::kPostCopyPull);
    PullState& ps = requested_[b];
    if (is_retry) {
      ps.timeout = ps.timeout.scaled(rcfg_.pull_backoff);
      ++ps.retries;
      ++pull_retries_;
    } else {
      ps.timeout = rcfg_.pull_timeout;
    }
    ++stats_.pull_requests;
    if (flight_ != nullptr) {
      flight_->pull_requested(flight_mig_, req.wire_bytes());
    }
    if (tracer_) {
      tracer_->instant(track_, is_retry ? "pull_retry" : "pull_request",
                       "\"block\": " + std::to_string(b));
    }
  }
  co_await to_source_.send(std::move(req));
  // Arm the retry deadline only once the request is on the wire (the send
  // itself may have queued behind an outage).
  if (const auto it = requested_.find(b); it != requested_.end()) {
    it->second.sent = sim_.now();
  }
}

sim::Task<void> PostCopyDestination::recovery_tick() {
  if (!pull_enabled_) co_return;

  // 1. Re-send overdue pulls (lost request or lost response), with
  //    exponential backoff per block. Snapshot first: sends suspend, and
  //    arriving blocks mutate requested_ under us.
  if (rcfg_.pull_timeout > sim::Duration::zero()) {
    scratch_ids_.clear();
    for (const auto& [b, ps] : requested_) {
      if (ps.timeout > sim::Duration::zero() && sim_.now() >= ps.sent + ps.timeout) {
        scratch_ids_.push_back(b);
      }
    }
    for (const storage::BlockId b : scratch_ids_) {
      if (!transferred_.test(b) || !requested_.contains(b)) continue;
      co_await send_pull(b, /*is_retry=*/true);
    }
  }

  // 2. Issue pulls deferred by the outstanding bound, oldest block first
  //    (the flat map iterates in sorted key order — deterministic as-is).
  scratch_ids_.clear();
  for (const auto& [b, gi] : pending_) scratch_ids_.push_back(b);
  for (const storage::BlockId b : scratch_ids_) {
    if (!pull_slot_free()) break;
    if (!transferred_.test(b) || requested_.contains(b)) continue;
    co_await send_pull(b, /*is_retry=*/false);
  }

  // 3. The source's push sweep is over, so any block still marked
  //    transferred was lost in flight: schedule re-pulls (bounded per tick
  //    by the outstanding cap; later ticks mop up the rest).
  if (push_complete_seen_) {
    scratch_ids_.clear();
    transferred_.for_each_set([this](std::uint64_t b) {
      if (!requested_.contains(b)) scratch_ids_.push_back(b);
    });
    for (const storage::BlockId b : scratch_ids_) {
      if (!pull_slot_free()) break;
      if (!transferred_.test(b) || requested_.contains(b)) continue;
      co_await send_pull(b, /*is_retry=*/false);
    }
  }
}

sim::Task<void> PostCopyDestination::run_recovery() {
  if (rcfg_.interval <= sim::Duration::zero()) co_return;
  while (!done_.is_open()) {
    co_await sim_.delay(rcfg_.interval);
    if (done_.is_open()) break;
    co_await recovery_tick();
  }
}

void PostCopyDestination::release_waiters(storage::BlockId b) {
  obs::ProfScope prof{obs::ProfCategory::kPostCopyPull};
  const auto it = pending_.find(b);
  if (it == pending_.end()) return;
  const std::uint32_t gi = it->second;
  gates_.at(gi).open();
  gates_.release(gi);
  pending_.erase(it);
  if (obs_pending_) obs_pending_->set(static_cast<double>(pending_.size()));
}

void PostCopyDestination::check_done() {
  if (transferred_.none() && !done_.is_open()) done_.open();
}

PostCopySource::PostCopySource(sim::Simulator& sim, storage::VirtualDisk& disk,
                               DirtyBitmap remaining, MigStream& to_dest,
                               std::uint32_t push_chunk_blocks,
                               net::TokenBucket* shaper)
    : sim_{sim},
      disk_{disk},
      remaining_{std::move(remaining)},
      to_dest_{to_dest},
      push_chunk_{push_chunk_blocks == 0 ? 1 : push_chunk_blocks},
      shaper_{shaper},
      wake_{sim} {}

void PostCopySource::attach_obs(obs::Tracer* tracer, obs::TrackId track,
                                obs::Registry* registry) {
  tracer_ = tracer;
  track_ = track;
  if (registry != nullptr) {
    obs_pull_queue_ = &registry->gauge("postcopy.pull_queue");
  }
}

// vmig-lint: hot-begin -- source pull intake: one call per pull request
void PostCopySource::enqueue_pull(storage::BlockId b) {
  obs::ProfScope prof{obs::ProfCategory::kPostCopyPull};
  obs::prof_count(obs::ProfCategory::kPostCopyPull);
  // vmig-lint: h2-ok -- bounded by pull window; deque reuses its chunks
  pulls_.push_back(b);
  if (obs_pull_queue_) {
    obs_pull_queue_->set(static_cast<double>(pulls_.size()));
  }
  wake_.notify_all();
}
// vmig-lint: hot-end

sim::Task<void> PostCopySource::run() {
  while (!stop_requested_) {
    // Pull requests are served preferentially (paper §IV-A-3).
    if (!pulls_.empty()) {
      const storage::BlockId b = pulls_.front();
      pulls_.pop_front();
      if (obs_pull_queue_) {
        obs_pull_queue_->set(static_cast<double>(pulls_.size()));
      }
      // During the push sweep, a pull for an already-sent block means the
      // response (or push) is still in flight — skip it. After the sweep a
      // repeated pull can only be the destination's loss recovery, so serve
      // it unconditionally.
      if (!remaining_.test(b) && !complete_announced_) continue;
      const sim::TimePoint serve_start = sim_.now();
      const storage::BlockRange r{b, 1};
      co_await disk_.read(r, storage::IoSource::kMigration);
      remaining_.clear(b);
      DiskBlocksMsg msg = [&] {
        // Message assembly walks disk tokens; attribute it (and its buffer
        // allocations) to disk iteration, not the dispatch loop.
        obs::ProfScope prof{obs::ProfCategory::kDiskIteration};
        return DiskBlocksMsg::from_disk(disk_, r, /*pulled=*/true);
      }();
      ++stats_.blocks_pulled;
      stats_.bytes_pull += msg.wire_bytes();
      co_await to_dest_.send(MigrationMessage{std::move(msg)}, shaper_);
      if (tracer_) {
        tracer_->complete(track_, serve_start, "pull",
                          "\"block\": " + std::to_string(b));
      }
      continue;
    }

    if (remaining_.any()) {
      auto next = remaining_.next_set(cursor_);
      if (!next) {
        cursor_ = 0;
        next = remaining_.next_set(0);
        if (!next) continue;  // drained; loop re-checks from the top
      }
      const std::uint64_t len = remaining_.run_length(*next, push_chunk_);
      const storage::BlockRange r{*next, static_cast<std::uint32_t>(len)};
      const sim::TimePoint serve_start = sim_.now();
      co_await disk_.read(r, storage::IoSource::kMigration);
      remaining_.clear_range(r.start, r.count);
      cursor_ = r.end();
      DiskBlocksMsg msg = [&] {
        obs::ProfScope prof{obs::ProfCategory::kDiskIteration};
        return DiskBlocksMsg::from_disk(disk_, r, /*pulled=*/false);
      }();
      stats_.blocks_pushed += r.count;
      stats_.bytes_push += msg.wire_bytes();
      if (flight_ != nullptr) {
        flight_->push_sent(flight_mig_, r.count, msg.wire_bytes());
      }
      co_await to_dest_.send(MigrationMessage{std::move(msg)}, shaper_);
      if (tracer_) {
        tracer_->complete(track_, serve_start, "push",
                          "\"start\": " + std::to_string(r.start) +
                              ", \"count\": " + std::to_string(r.count));
      }
      continue;
    }

    if (!complete_announced_) {
      // Push sweep drained: announce it on the reliable control plane so
      // the destination can detect lost pushes, then stay alive to serve
      // recovery pulls until the destination reports sync-complete.
      complete_announced_ = true;
      finished_ = true;
      co_await to_dest_.send(MigrationMessage{ControlMsg{Control::kPushComplete}});
      continue;
    }

    co_await wake_.wait();
  }
  finished_ = true;
}

}  // namespace vmig::core
