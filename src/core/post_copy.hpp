#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dirty_bitmap.hpp"
#include "core/flat_map.hpp"
#include "core/gate_pool.hpp"
#include "core/protocol.hpp"
#include "core/ring_buffer.hpp"
#include "net/message_stream.hpp"
#include "obs/tracer.hpp"
#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"
#include "storage/virtual_disk.hpp"
#include "vm/blk_backend.hpp"

namespace vmig::obs {
class FlightRecorder;
class Gauge;
class Histogram;
class Registry;
}  // namespace vmig::obs

namespace vmig::core {

using MigStream = net::MessageStream<MigrationMessage>;

/// Post-copy statistics shared by both ends.
struct PostCopyStats {
  std::uint64_t blocks_pushed = 0;   ///< blocks sent/applied via push
  std::uint64_t blocks_pulled = 0;   ///< blocks sent/applied via pull
  std::uint64_t blocks_dropped = 0;  ///< received but locally overwritten
  std::uint64_t pull_requests = 0;
  std::uint64_t bytes_push = 0;
  std::uint64_t bytes_pull = 0;
};

/// Destination-side recovery tuning (lost-message retry, bounded pending
/// list); populated from MigrationConfig by the TPM.
struct PostCopyRecoveryConfig {
  /// Re-send a pull still outstanding after this long; zero disables.
  sim::Duration pull_timeout{};
  /// Timeout multiplier per re-send of the same block.
  double pull_backoff = 2.0;
  /// Recovery-loop tick; zero disables the loop entirely.
  sim::Duration interval{};
  /// Max concurrently outstanding pull requests; zero = unbounded.
  std::size_t max_outstanding_pulls = 0;
};

/// Destination half of post-copy (paper §IV-A-3 destination rules).
///
/// Installed as the I/O interceptor on the destination's blkback when the
/// VM resumes. Holds the `transferred_block_bitmap` (blocks still
/// inconsistent with the source):
///   - guest WRITE to a dirty block: whole-block overwrite — clear the bit,
///     no pull needed (the new-bitmap mark for IM happens in blkback);
///   - guest READ of a dirty block: send a pull request and hold the read in
///     the pending list until the block arrives;
///   - received block: apply and release pending reads, or drop it if a
///     local write already superseded it.
class PostCopyDestination final : public vm::IoInterceptor {
 public:
  PostCopyDestination(sim::Simulator& sim, storage::VirtualDisk& disk,
                      DirtyBitmap transferred, vm::DomainId migrated,
                      MigStream& to_source, bool pull_enabled = true);

  /// Optional observability: read-stall spans + pull-request instants on
  /// `track`, a pending-request-list gauge ("postcopy.pending_reads"), and
  /// the read-stall histogram ("postcopy.read_stall_ns") whose sum/count
  /// reconcile exactly with MigrationReport's stall totals.
  void attach_obs(obs::Tracer* tracer, obs::TrackId track,
                  obs::Registry* registry);

  /// Optional flight recorder: push/pull/stall/overwrite-cancel events under
  /// migration id `mig`.
  void attach_flight(obs::FlightRecorder* rec, std::uint32_t mig) {
    flight_ = rec;
    flight_mig_ = mig;
  }

  /// Install the recovery tuning (must precede run_recovery()).
  void set_recovery(PostCopyRecoveryConfig rcfg) {
    rcfg_ = rcfg;
    if (rcfg.max_outstanding_pulls > 0) {
      requested_.reserve(rcfg.max_outstanding_pulls + 1);
    }
  }

  // vm::IoInterceptor
  sim::Task<void> on_request(vm::DomainId domain, storage::IoOp op,
                             storage::BlockRange range) override;

  /// Apply one received block message (push or pull response).
  sim::Task<void> on_block_received(const DiskBlocksMsg& msg);

  bool complete() const { return transferred_.none(); }
  /// Opens when every inconsistent block has been synchronized.
  sim::Gate& done_gate() noexcept { return done_; }

  /// The source finished its push sweep (kPushComplete, which travels over
  /// the reliable control plane): any block still marked transferred from
  /// here on was lost in flight and must be re-pulled.
  void note_push_complete() noexcept { push_complete_seen_ = true; }

  /// Recovery loop (spawn alongside the migration; exits once done_ opens):
  /// re-sends overdue pull requests with exponential backoff, issues pulls
  /// deferred by the pending bound as slots free, and after kPushComplete
  /// sweeps up blocks whose push was lost. Inert when rcfg_.interval is
  /// zero or every timeout is disabled.
  sim::Task<void> run_recovery();

  /// Experiment teardown: install every still-missing block instantly
  /// (untimed) from `source_of_truth` and release all pending reads. Used
  /// by the on-demand baseline, which never converges on its own.
  void force_complete(const storage::VirtualDisk& source_of_truth);

  const DirtyBitmap& transferred() const noexcept { return transferred_; }
  const PostCopyStats& stats() const noexcept { return stats_; }
  /// Guest reads that had to wait on synchronization (disruption).
  std::uint64_t reads_blocked() const noexcept { return reads_blocked_; }
  sim::Duration total_read_stall() const noexcept { return total_stall_; }
  sim::Duration max_read_stall() const noexcept { return max_stall_; }
  /// Pull requests re-sent after their timeout expired.
  std::uint64_t pull_retries() const noexcept { return pull_retries_; }
  /// Reads whose pull was deferred by the outstanding-pull bound.
  std::uint64_t pulls_deferred() const noexcept { return pulls_deferred_; }

 private:
  void release_waiters(storage::BlockId b);
  void check_done();
  bool pull_slot_free() const {
    return rcfg_.max_outstanding_pulls == 0 ||
           requested_.size() < rcfg_.max_outstanding_pulls;
  }
  /// Record the request (or refresh its deadline) and put it on the wire.
  sim::Task<void> send_pull(storage::BlockId b, bool is_retry);
  sim::Task<void> recovery_tick();

  sim::Simulator& sim_;
  storage::VirtualDisk& disk_;
  DirtyBitmap transferred_;
  vm::DomainId migrated_;
  MigStream& to_source_;
  // The paper's pending list P, realized as per-block gates holding the
  // suspended guest-read coroutines. Gates come from a recycling pool
  // (stable addresses, zero steady-state allocation); the flat map keys
  // block -> pool index in sorted order, so the recovery loop iterates it
  // deterministically with no snapshot-and-sort step.
  GatePool gates_;
  FlatMap<storage::BlockId, std::uint32_t> pending_;
  /// Outstanding pull requests with their retry deadlines. Sorted flat map:
  /// the recovery loop iterates it, and iteration order must be
  /// deterministic; entries churn at pull rate, so storage must recycle.
  struct PullState {
    sim::TimePoint sent{};
    sim::Duration timeout{};
    int retries = 0;
  };
  FlatMap<storage::BlockId, PullState> requested_;
  /// Reusable id snapshot for recovery sweeps (sends suspend; the maps and
  /// the bitmap mutate under us, so each sweep works from a stable copy).
  std::vector<storage::BlockId> scratch_ids_;
  sim::Gate done_;
  PostCopyStats stats_;
  PostCopyRecoveryConfig rcfg_{};
  bool pull_enabled_;
  bool push_complete_seen_ = false;
  std::uint64_t pull_retries_ = 0;
  std::uint64_t pulls_deferred_ = 0;
  std::uint64_t reads_blocked_ = 0;
  sim::Duration total_stall_{};
  sim::Duration max_stall_{};
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Gauge* obs_pending_ = nullptr;
  obs::Histogram* obs_stall_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint32_t flight_mig_ = 0;
};

/// Source half of post-copy: pushes dirty blocks continuously (finite
/// dependency on the source), serving pull requests preferentially.
class PostCopySource {
 public:
  PostCopySource(sim::Simulator& sim, storage::VirtualDisk& disk,
                 DirtyBitmap remaining, MigStream& to_dest,
                 std::uint32_t push_chunk_blocks,
                 net::TokenBucket* shaper = nullptr);

  /// Optional observability: pull/push serve spans on `track`, plus a
  /// pull-queue-depth gauge ("postcopy.pull_queue").
  void attach_obs(obs::Tracer* tracer, obs::TrackId track,
                  obs::Registry* registry);

  /// Optional flight recorder: aggregate-only source-side push accounting.
  void attach_flight(obs::FlightRecorder* rec, std::uint32_t mig) {
    flight_ = rec;
    flight_mig_ = mig;
  }

  /// A pull request arrived from the destination.
  void enqueue_pull(storage::BlockId b);

  /// Push until every remaining block is sent, announce kPushComplete, then
  /// keep serving late pull requests (re-pulls for blocks whose push or pull
  /// response was lost) until request_stop().
  sim::Task<void> run();

  /// The destination reported sync-complete (every remaining block was
  /// overwritten locally or applied): stop pushing and serving.
  void request_stop() noexcept {
    stop_requested_ = true;
    wake_.notify_all();
  }

  bool finished() const noexcept { return finished_; }
  const PostCopyStats& stats() const noexcept { return stats_; }

 private:
  sim::Simulator& sim_;
  storage::VirtualDisk& disk_;
  DirtyBitmap remaining_;
  MigStream& to_dest_;
  std::uint32_t push_chunk_;
  net::TokenBucket* shaper_;
  RingBuffer<storage::BlockId> pulls_;
  sim::Notifier wake_;  ///< idle wakeup: new pull or stop request
  storage::BlockId cursor_ = 0;
  bool finished_ = false;
  bool stop_requested_ = false;
  bool complete_announced_ = false;
  PostCopyStats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Gauge* obs_pull_queue_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint32_t flight_mig_ = 0;
};

}  // namespace vmig::core
