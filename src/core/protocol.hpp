#pragma once

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "core/dirty_bitmap.hpp"
#include "storage/block.hpp"
#include "storage/virtual_disk.hpp"
#include "vm/types.hpp"
#include "vm/vcpu.hpp"

namespace vmig::core {

/// Wire sizes are dominated by payload; each message also pays a small
/// framing header, which is the protocol redundancy the paper's "amount of
/// migrated data" metric picks up on top of the raw state size.
inline constexpr std::uint64_t kMsgHeaderBytes = 32;

// NOTE: every message type below has user-declared constructors on purpose.
// GCC 12's coroutine ramp double-destroys an elided aggregate prvalue passed
// to a coroutine's by-value parameter (freeing buffers that were already
// moved into a channel); non-aggregate types take the safe path. The
// static_asserts in sim::Channel and net::MessageStream enforce this.

/// A run of disk blocks: pre-copy chunk, post-copy push, or pull response.
struct DiskBlocksMsg {
  storage::BlockRange range;
  std::vector<storage::ContentToken> tokens;  // simulation content identity
  /// Real block bytes, carried when the disks run in payload mode (small
  /// byte-verifiable disks); empty in token-only mode. Wire size is the
  /// block data either way.
  std::vector<std::byte> payloads;
  std::uint32_t block_size = storage::kDefaultBlockSize;
  bool pull_response = false;
  /// A forwarded write (delta-forwarding baseline), not a bulk-copy chunk.
  bool delta = false;

  DiskBlocksMsg() = default;
  DiskBlocksMsg(storage::BlockRange r, std::vector<storage::ContentToken> t,
                std::uint32_t bs, bool pulled, bool is_delta = false)
      : range{r},
        tokens{std::move(t)},
        block_size{bs},
        pull_response{pulled},
        delta{is_delta} {}

  /// Capture a range from `disk` (tokens always; bytes in payload mode).
  static DiskBlocksMsg from_disk(const storage::VirtualDisk& disk,
                                 storage::BlockRange r, bool pulled,
                                 bool is_delta = false) {
    DiskBlocksMsg m{r, disk.snapshot_tokens(r), disk.geometry().block_size,
                    pulled, is_delta};
    m.payloads = disk.snapshot_payloads(r);
    return m;
  }
  /// Install this message's content on `disk` (untimed part: payloads).
  void apply_payloads_to(storage::VirtualDisk& disk) const {
    disk.apply_payloads(range, payloads);
  }

  std::uint64_t wire_bytes() const {
    return kMsgHeaderBytes + range.bytes(block_size);
  }
};

/// The block-bitmap shipped in the freeze-and-copy phase.
struct BlockBitmapMsg {
  DirtyBitmap bitmap;

  BlockBitmapMsg() = default;
  explicit BlockBitmapMsg(DirtyBitmap bm) : bitmap{std::move(bm)} {}

  std::uint64_t wire_bytes() const { return kMsgHeaderBytes + bitmap.wire_bytes(); }
};

/// A batch of memory pages (id + content version) from memory pre-copy or
/// the freeze-phase residual.
struct MemPagesMsg {
  std::vector<std::pair<vm::PageId, std::uint64_t>> pages;
  std::uint32_t page_size = 4096;
  bool final_residual = false;

  MemPagesMsg() = default;

  std::uint64_t wire_bytes() const {
    // Page payload plus an 8-byte page-frame header each.
    return kMsgHeaderBytes + pages.size() * (page_size + 8ull);
  }
};

/// vCPU context, shipped while the guest is frozen.
struct CpuStateMsg {
  vm::VCpuState cpu;

  CpuStateMsg() = default;
  explicit CpuStateMsg(vm::VCpuState c) : cpu{c} {}

  std::uint64_t wire_bytes() const { return kMsgHeaderBytes + cpu.wire_bytes(); }
};

/// Destination -> source: fetch one block needed by a blocked guest read.
struct PullRequestMsg {
  storage::BlockId block = 0;

  PullRequestMsg() = default;
  explicit PullRequestMsg(storage::BlockId b) : block{b} {}

  std::uint64_t wire_bytes() const { return kMsgHeaderBytes; }
};

/// Control-plane coordination between the migration daemons.
enum class Control : std::uint8_t {
  kPrepareVbd,       ///< source -> dest: allocate a VBD for the incoming VM
  kVbdReady,         ///< dest -> source: VBD allocated
  kIterationEnd,     ///< source -> dest: pre-copy iteration boundary
  kIterationAck,     ///< dest -> source: all iteration data applied to disk
  kEnterPostCopy,    ///< source -> dest: resume the VM; post-copy begins
  kPushComplete,     ///< source -> dest: every dirty block has been pushed
  kSyncComplete,     ///< dest -> source: bitmaps drained; source may shut down
};

struct ControlMsg {
  Control kind = Control::kPrepareVbd;
  std::uint64_t arg = 0;

  ControlMsg() = default;
  explicit ControlMsg(Control k, std::uint64_t a = 0) : kind{k}, arg{a} {}

  std::uint64_t wire_bytes() const { return kMsgHeaderBytes; }
};

/// Any message on a migration stream.
struct MigrationMessage {
  using Payload = std::variant<DiskBlocksMsg, BlockBitmapMsg, MemPagesMsg,
                               CpuStateMsg, PullRequestMsg, ControlMsg>;

  Payload payload;

  MigrationMessage() = default;
  template <typename T>
  MigrationMessage(T&& p) : payload{std::forward<T>(p)} {}  // NOLINT(google-explicit-constructor)

  std::uint64_t wire_bytes() const {
    return std::visit([](const auto& m) { return m.wire_bytes(); }, payload);
  }

  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&payload);
  }
  template <typename T>
  T* get_if() {
    return std::get_if<T>(&payload);
  }
  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(payload);
  }
};

}  // namespace vmig::core
