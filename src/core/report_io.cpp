#include "core/report_io.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"

namespace vmig::core {

namespace {

void field(std::ostringstream& os, const char* key, double v, bool first = false) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  if (!first) os << ",";
  os << "\n  \"" << key << "\": " << buf;
}

void field(std::ostringstream& os, const char* key, std::uint64_t v) {
  os << ",\n  \"" << key << "\": " << v;
}

void field(std::ostringstream& os, const char* key, bool v) {
  os << ",\n  \"" << key << "\": " << (v ? "true" : "false");
}

}  // namespace

std::string to_json(const MigrationReport& r) {
  std::ostringstream os;
  os << "{";
  field(os, "total_time_s", r.total_time().to_seconds(), /*first=*/true);
  field(os, "downtime_s", r.downtime().to_seconds());
  field(os, "precopy_time_s", r.precopy_time().to_seconds());
  field(os, "postcopy_time_s", r.postcopy_time().to_seconds());
  field(os, "storage_time_s", r.storage_time().to_seconds());
  field(os, "bytes_total", static_cast<std::uint64_t>(r.total_bytes()));
  field(os, "bytes_disk_first_pass", r.bytes_disk_first_pass);
  field(os, "bytes_disk_retransfer", r.bytes_disk_retransfer);
  field(os, "bytes_memory_precopy", r.bytes_memory_precopy);
  field(os, "bytes_freeze_residual", r.bytes_freeze_residual);
  field(os, "bytes_bitmap", r.bytes_bitmap);
  field(os, "bytes_postcopy_push", r.bytes_postcopy_push);
  field(os, "bytes_postcopy_pull", r.bytes_postcopy_pull);
  field(os, "bytes_control", r.bytes_control);
  field(os, "disk_iterations", static_cast<std::uint64_t>(r.disk_iterations));
  field(os, "mem_iterations", static_cast<std::uint64_t>(r.mem_iterations));
  field(os, "blocks_first_pass", r.blocks_first_pass);
  field(os, "blocks_retransferred", r.blocks_retransferred);
  field(os, "residual_dirty_blocks", r.residual_dirty_blocks);
  field(os, "blocks_pushed", r.blocks_pushed);
  field(os, "blocks_pulled", r.blocks_pulled);
  field(os, "blocks_dropped", r.blocks_dropped);
  field(os, "blocks_skipped_unused", r.blocks_skipped_unused);
  field(os, "pages_precopied", r.pages_precopied);
  field(os, "pages_residual", r.pages_residual);
  field(os, "postcopy_reads_blocked", r.postcopy_reads_blocked);
  field(os, "postcopy_read_stall_max_s",
        r.postcopy_read_stall_max.to_seconds());
  field(os, "incremental", r.incremental);
  field(os, "resume_applied", r.resume_applied);
  field(os, "resumed_blocks_saved", r.resumed_blocks_saved);
  field(os, "postcopy_pull_retries", r.postcopy_pull_retries);
  field(os, "postcopy_fallback_freezes", r.postcopy_fallback_freezes);
  field(os, "postcopy_fallback_freeze_time_s",
        r.postcopy_fallback_freeze_time.to_seconds());
  field(os, "aborted_precopy_dirty_rate", r.aborted_precopy_dirty_rate);
  field(os, "disk_consistent", r.disk_consistent);
  field(os, "memory_consistent", r.memory_consistent);
  os << "\n}";
  return os.str();
}

std::string csv_header() {
  return "total_time_s,downtime_s,precopy_time_s,postcopy_time_s,"
         "bytes_total,bytes_disk_first_pass,bytes_disk_retransfer,"
         "disk_iterations,blocks_retransferred,residual_dirty_blocks,"
         "blocks_pulled,incremental,disk_consistent,memory_consistent";
}

std::string to_csv_row(const MigrationReport& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%.6f,%.6f,%.6f,%.6f,%llu,%llu,%llu,%d,%llu,%llu,%llu,%d,%d,%d",
                r.total_time().to_seconds(), r.downtime().to_seconds(),
                r.precopy_time().to_seconds(), r.postcopy_time().to_seconds(),
                static_cast<unsigned long long>(r.total_bytes()),
                static_cast<unsigned long long>(r.bytes_disk_first_pass),
                static_cast<unsigned long long>(r.bytes_disk_retransfer),
                r.disk_iterations,
                static_cast<unsigned long long>(r.blocks_retransferred),
                static_cast<unsigned long long>(r.residual_dirty_blocks),
                static_cast<unsigned long long>(r.blocks_pulled),
                r.incremental ? 1 : 0, r.disk_consistent ? 1 : 0,
                r.memory_consistent ? 1 : 0);
  return buf;
}

std::string to_csv(const sim::TimeSeries& ts) {
  std::string out = "t_seconds,value\n";
  char buf[64];
  for (const auto& p : ts.points()) {
    std::snprintf(buf, sizeof buf, "%.6f,%.6f\n", p.t.to_seconds(), p.value);
    out += buf;
  }
  return out;
}

void write_csv(std::ostream& out, const obs::Registry& registry) {
  out << "t_seconds,metric,value\n";
  char buf[96];
  for (const auto& s : registry.series()) {
    for (const auto& p : s.data->points()) {
      std::snprintf(buf, sizeof buf, "%.6f,", p.t.to_seconds());
      out << buf << s.name;
      std::snprintf(buf, sizeof buf, ",%.9g\n", p.value);
      out << buf;
    }
  }
  // Histograms never sample into series; export one end-of-run summary row
  // per statistic instead, stamped with the last sample time so the rows
  // sort after the series they summarize.
  char stamp[96];
  std::snprintf(stamp, sizeof stamp, "%.6f,",
                registry.last_sample_time().to_seconds());
  for (const auto& [name, h] : registry.histograms()) {
    const std::pair<const char*, double> stats[] = {
        {".count", static_cast<double>(h->count())},
        {".sum", h->sum()},
        {".p50", h->quantile(0.50)},
        {".p95", h->quantile(0.95)},
        {".p99", h->quantile(0.99)},
    };
    for (const auto& [suffix, v] : stats) {
      out << stamp << name << suffix;
      std::snprintf(buf, sizeof buf, ",%.9g\n", v);
      out << buf;
    }
  }
}

std::string to_csv(const obs::Registry& registry) {
  std::ostringstream os;
  write_csv(os, registry);
  return os.str();
}

}  // namespace vmig::core
