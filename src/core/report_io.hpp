#pragma once

#include <iosfwd>
#include <string>

#include "core/migration_metrics.hpp"
#include "simcore/stats.hpp"

namespace vmig::obs {
class Registry;
}  // namespace vmig::obs

namespace vmig::core {

/// Machine-readable report serialization, for piping migration results into
/// external plotting/analysis (the CLI's --json flag uses this).
///
/// The JSON is flat, stable-keyed, and self-describing; times are seconds,
/// sizes are bytes.
std::string to_json(const MigrationReport& r);

/// One-line CSV row matching csv_header() (times s, sizes bytes).
std::string csv_header();
std::string to_csv_row(const MigrationReport& r);

/// Two-column CSV ("t_seconds,value") of a time series.
std::string to_csv(const sim::TimeSeries& ts);

/// Flat long-format CSV ("t_seconds,metric,value") of every series sampled
/// by an obs registry, in registration order — what `vmig_sim --metrics`
/// writes. Counter series are rates (units/second); gauges and probes are
/// instantaneous values. Histograms (never series-sampled) contribute five
/// summary rows each — "<name>.count/.sum/.p50/.p95/.p99" — stamped with
/// the registry's last sample time.
std::string to_csv(const obs::Registry& registry);

/// Streaming variant of `to_csv(const obs::Registry&)`: writes the same
/// bytes row by row into `out` instead of building the whole document in
/// memory, so exporting a fleet-scale registry needs O(1 row) of buffer on
/// top of the stream's own. `to_csv` is a thin wrapper over this; the two
/// are byte-identical by construction (pinned by tests/report_io_test.cpp).
void write_csv(std::ostream& out, const obs::Registry& registry);

}  // namespace vmig::core
