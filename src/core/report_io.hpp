#pragma once

#include <string>

#include "core/migration_metrics.hpp"
#include "simcore/stats.hpp"

namespace vmig::core {

/// Machine-readable report serialization, for piping migration results into
/// external plotting/analysis (the CLI's --json flag uses this).
///
/// The JSON is flat, stable-keyed, and self-describing; times are seconds,
/// sizes are bytes.
std::string to_json(const MigrationReport& r);

/// One-line CSV row matching csv_header() (times s, sizes bytes).
std::string csv_header();
std::string to_csv_row(const MigrationReport& r);

/// Two-column CSV ("t_seconds,value") of a time series.
std::string to_csv(const sim::TimeSeries& ts);

}  // namespace vmig::core
