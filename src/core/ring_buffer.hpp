#pragma once

#include <cstddef>
#include <vector>

namespace vmig::core {

/// Power-of-two ring buffer FIFO.
///
/// Replaces std::deque on queues that live in the per-event hot path (the
/// source's pull-request queue): a deque allocates and frees chunk blocks as
/// the queue breathes around a chunk boundary, while the ring recycles one
/// flat buffer and only ever allocates when the high-water mark doubles.
template <typename T>
class RingBuffer {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  void push_back(const T& v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = v;
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t ncap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> nb(ncap);
    for (std::size_t i = 0; i < size_; ++i) {
      nb[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_.swap(nb);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace vmig::core
