#include "core/three_level_bitmap.hpp"

#include <algorithm>
#include <cassert>

namespace vmig::core {

ThreeLevelBitmap::ThreeLevelBitmap(std::uint64_t size_bits, bool initially_set)
    : size_{size_bits},
      leaf_((size_bits + 63) / 64, 0),
      dir_((leaf_.size() + kWordsPerLine * 64 - 1) / (kWordsPerLine * 64), 0),
      sum_((dir_.size() + 63) / 64, 0) {
  if (initially_set) fill(true);
}

std::uint64_t ThreeLevelBitmap::skip_to_live(std::uint64_t wi) const {
  const std::uint64_t nw = leaf_.size();
  if (wi >= nw) return nw;
  // Is wi's own cache line live? If so, no skip.
  std::uint64_t line = wi / kWordsPerLine;
  std::uint64_t dw = line >> 6;
  if ((dir_[dw] >> (line & 63)) & 1u) return wi;
  // Scan the rest of this directory word for a later live line.
  std::uint64_t d = dir_[dw] & (~std::uint64_t{0} << (line & 63));
  for (;;) {
    if (d != 0) {
      const std::uint64_t live_line =
          dw * 64 + static_cast<std::uint64_t>(std::countr_zero(d));
      const std::uint64_t w = live_line * kWordsPerLine;
      return w < nw ? w : nw;
    }
    // Climb to the summary to find the next live directory word. dir_[dw]
    // was clean past `line`, so exclude dw itself; (dw&63) can be 63 and a
    // 64-bit shift is UB, hence the 2<<k form.
    std::uint64_t sw = dw >> 6;
    std::uint64_t s = sum_[sw] & ~((std::uint64_t{2} << (dw & 63)) - 1);
    for (;;) {
      if (s != 0) {
        dw = sw * 64 + static_cast<std::uint64_t>(std::countr_zero(s));
        break;
      }
      if (++sw >= sum_.size()) return nw;
      s = sum_[sw];
    }
    d = dir_[dw];
  }
}

void ThreeLevelBitmap::set_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  while (i < end && (i & 63) != 0) set(i++);
  while (i + 64 <= end) {
    or_word(i >> 6, ~std::uint64_t{0});
    i += 64;
  }
  while (i < end) set(i++);
}

void ThreeLevelBitmap::clear_range(std::uint64_t start, std::uint64_t count) {
  assert(start + count <= size_);
  std::uint64_t i = start;
  const std::uint64_t end = start + count;
  while (i < end && (i & 63) != 0) clear(i++);
  while (i + 64 <= end) {
    andnot_word(i >> 6, ~std::uint64_t{0});
    i += 64;
  }
  while (i < end) clear(i++);
}

void ThreeLevelBitmap::fill(bool value) {
  if (!value) {
    std::fill(leaf_.begin(), leaf_.end(), 0);
    std::fill(dir_.begin(), dir_.end(), 0);
    std::fill(sum_.begin(), sum_.end(), 0);
    set_count_ = 0;
    return;
  }
  std::fill(leaf_.begin(), leaf_.end(), ~std::uint64_t{0});
  if (const std::uint64_t tail = size_ & 63; tail != 0 && !leaf_.empty()) {
    leaf_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  // Raise a directory bit per line that has words, a summary bit per
  // directory word that has lines.
  std::fill(dir_.begin(), dir_.end(), 0);
  std::fill(sum_.begin(), sum_.end(), 0);
  const std::uint64_t nlines = (leaf_.size() + kWordsPerLine - 1) / kWordsPerLine;
  for (std::uint64_t line = 0; line < nlines; ++line) mark_line(line);
  set_count_ = size_;
  // An all-zero tail word (size_ a multiple of 64 never produces one, but a
  // tiny bitmap whose tail mask zeroed the only word can) leaves a stale
  // directory bit; rebuild the last line to stay exact.
  if (nlines > 0) rebuild_line(nlines - 1);
}

void ThreeLevelBitmap::sweep_line(std::uint64_t line) {
  const std::uint64_t base = line * kWordsPerLine;
  const std::uint64_t stop = std::min<std::uint64_t>(base + kWordsPerLine, leaf_.size());
  for (std::uint64_t w = base; w < stop; ++w) {
    if (leaf_[w] != 0) return;  // line still live
  }
  const std::uint64_t dw = line >> 6;
  dir_[dw] &= ~(std::uint64_t{1} << (line & 63));
  if (dir_[dw] == 0) sum_[dw >> 6] &= ~(std::uint64_t{1} << (dw & 63));
}

void ThreeLevelBitmap::rebuild_line(std::uint64_t line) {
  const std::uint64_t base = line * kWordsPerLine;
  const std::uint64_t stop = std::min<std::uint64_t>(base + kWordsPerLine, leaf_.size());
  bool live = false;
  for (std::uint64_t w = base; w < stop; ++w) {
    if (leaf_[w] != 0) { live = true; break; }
  }
  const std::uint64_t dw = line >> 6;
  if (live) {
    mark_line(line);
  } else {
    dir_[dw] &= ~(std::uint64_t{1} << (line & 63));
    if (dir_[dw] == 0) sum_[dw >> 6] &= ~(std::uint64_t{1} << (dw & 63));
  }
}

std::uint64_t ThreeLevelBitmap::dirty_lines() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t d : dir_) n += static_cast<std::uint64_t>(std::popcount(d));
  return n;
}

}  // namespace vmig::core
