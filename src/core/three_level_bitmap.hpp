#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/bitmap_words.hpp"

namespace vmig::core {

/// Three-level cache-line-aware block-bitmap (the §IV-A-2 layered bitmap
/// extended one level down to the hardware).
///
/// Geometry, bottom up:
///   - leaf words: one bit per block, packed in 64-bit words;
///   - line directory: one bit per *cache line* of leaf words (8 words =
///     512 bits = one 64-byte line), set iff any leaf word in the line is
///     nonzero;
///   - summary: one bit per directory word (64 lines = 32768 bits of leaf,
///     the same span as LayeredBitmap's default part).
///
/// A sparse scan therefore touches: a handful of summary words, one
/// directory word per dirty 32768-bit region, and one 64-byte line of leaf
/// words per dirty line — each level skipped with `countr_zero`, never a
/// per-bit probe. Unlike LayeredBitmap there is no pointer chasing and no
/// lazy allocation: all three levels are dense arrays sized at construction
/// (1.25 MiB of leaf + ~20 KiB of directory/summary for a 40 GiB disk), so
/// `set`/`clear` are branch-light word ops and the whole structure is three
/// contiguous allocations made once.
class ThreeLevelBitmap {
 public:
  static constexpr std::uint64_t kWordsPerLine = 8;    ///< 64-byte cache line
  static constexpr std::uint64_t kBitsPerLine = 64 * kWordsPerLine;
  /// Leaf bits covered by one directory word (== one summary bit).
  static constexpr std::uint64_t kBitsPerDirWord = kBitsPerLine * 64;

  ThreeLevelBitmap() = default;
  explicit ThreeLevelBitmap(std::uint64_t size_bits, bool initially_set = false);

  std::uint64_t size() const noexcept { return size_; }

  bool test(std::uint64_t i) const {
    return (leaf_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::uint64_t i) {
    std::uint64_t& w = leaf_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (w & mask) return;
    ++set_count_;
    if (w == 0) mark_line((i >> 6) / kWordsPerLine);
    w |= mask;
  }

  void clear(std::uint64_t i) {
    std::uint64_t& w = leaf_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (!(w & mask)) return;
    --set_count_;
    w &= ~mask;
    if (w == 0) sweep_line((i >> 6) / kWordsPerLine);
  }

  void set_range(std::uint64_t start, std::uint64_t count);
  void clear_range(std::uint64_t start, std::uint64_t count);

  /// Reset every bit to `value`.
  void fill(bool value);

  std::uint64_t count_set() const noexcept { return set_count_; }
  bool any() const noexcept { return set_count_ > 0; }
  bool none() const noexcept { return set_count_ == 0; }

  // -- word-cursor contract (core/bitmap_words.hpp) --
  std::uint64_t word_count() const noexcept { return leaf_.size(); }
  std::uint64_t leaf_word(std::uint64_t wi) const { return leaf_[wi]; }
  std::uint64_t skip_to_live(std::uint64_t wi) const;
  void or_word(std::uint64_t wi, std::uint64_t bits) {
    std::uint64_t& w = leaf_[wi];
    const std::uint64_t added = bits & ~w;
    if (added == 0) return;
    set_count_ += static_cast<std::uint64_t>(std::popcount(added));
    if (w == 0) mark_line(wi / kWordsPerLine);
    w |= bits;
  }
  void andnot_word(std::uint64_t wi, std::uint64_t bits) {
    std::uint64_t& w = leaf_[wi];
    const std::uint64_t removed = bits & w;
    if (removed == 0) return;
    set_count_ -= static_cast<std::uint64_t>(std::popcount(removed));
    w &= ~bits;
    if (w == 0) sweep_line(wi / kWordsPerLine);
  }

  std::optional<std::uint64_t> next_set(std::uint64_t from) const {
    return wordops::next_set(*this, from);
  }
  std::uint64_t next_clear(std::uint64_t from) const {
    return wordops::next_clear(*this, from);
  }
  std::uint64_t run_length(std::uint64_t from, std::uint64_t max_len) const {
    return wordops::run_length(*this, from, max_len);
  }

  template <typename F>
  void for_each_set(F&& f) const {
    wordops::for_each_set(*this, std::forward<F>(f));
  }
  template <typename F>
  void for_each_set_in(std::uint64_t start, std::uint64_t count, F&& f) const {
    wordops::for_each_set_in(*this, start, count, std::forward<F>(f));
  }

  /// Cache lines of leaf words containing at least one set bit.
  std::uint64_t dirty_lines() const noexcept;

  /// Resident memory: all three dense levels.
  std::uint64_t bytes() const noexcept {
    return (leaf_.size() + dir_.size() + sum_.size()) * 8;
  }
  /// Freeze-phase wire size: summary + directory + dirty lines only (the
  /// same sparse-shipping argument as LayeredBitmap, at 64-byte grain).
  std::uint64_t wire_bytes() const noexcept {
    return (dir_.size() + sum_.size()) * 8 + dirty_lines() * (kWordsPerLine * 8);
  }

  bool operator==(const ThreeLevelBitmap& o) const {
    return size_ == o.size_ && leaf_ == o.leaf_;
  }

 private:
  /// A leaf word in `line` went zero -> nonzero: raise directory + summary.
  void mark_line(std::uint64_t line) {
    const std::uint64_t dw = line >> 6;
    if (dir_[dw] == 0) sum_[dw >> 6] |= std::uint64_t{1} << (dw & 63);
    dir_[dw] |= std::uint64_t{1} << (line & 63);
  }
  /// A leaf word in `line` went nonzero -> zero: drop directory + summary
  /// bits if the whole line (8 words) is now clean.
  void sweep_line(std::uint64_t line);
  /// Recompute the directory bit of `line` and its summary bit from leaves.
  void rebuild_line(std::uint64_t line);

  std::uint64_t size_ = 0;
  std::uint64_t set_count_ = 0;
  std::vector<std::uint64_t> leaf_;
  std::vector<std::uint64_t> dir_;  ///< bit per leaf cache line
  std::vector<std::uint64_t> sum_;  ///< bit per directory word
};

}  // namespace vmig::core
