#include "core/tpm.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "simcore/channel.hpp"
#include "simcore/log.hpp"

namespace vmig::core {

namespace {
constexpr std::uint64_t kMiB = 1024ull * 1024ull;
/// Destination-side VBD allocation cost (sparse file + backend hookup).
constexpr sim::Duration kVbdPrepareCost = sim::Duration::millis(5);
}  // namespace

const char* TpmMigration::phase_name(Phase p) {
  switch (p) {
    case Phase::kPreparing:
      return "preparing";
    case Phase::kDiskPrecopy:
      return "disk-precopy";
    case Phase::kMemoryPrecopy:
      return "memory-precopy";
    case Phase::kFreeze:
      return "freeze-and-copy";
    case Phase::kPostCopy:
      return "post-copy";
    default:
      return "done";
  }
}

TpmMigration::TpmMigration(sim::Simulator& sim, MigrationConfig cfg,
                           vm::Domain& domain, hv::Host& source, hv::Host& dest)
    : sim_{sim},
      cfg_{cfg},
      domain_{domain},
      src_{source},
      dst_{dest},
      fwd_{sim, source.link_to(dest)},
      rev_{sim, dest.link_to(source)},
      shaper_{sim, cfg.rate_limit_mibps},
      mem_migrator_{sim, cfg_},
      shadow_mem_{domain.memory().total_bytes() / kMiB,
                  domain.memory().page_size()},
      control_notify_{sim} {}

sim::Task<MigrationReport> TpmMigration::run() {
  assert(src_.hosts_domain(domain_) && "domain must start on the source host");
  setup_obs();
  install_drop_policies();
  if (cfg_.obs_registry != nullptr && rep_.resume_applied) {
    cfg_.obs_registry->counter("migration.resumes").add(1.0);
    cfg_.obs_registry->counter("migration.resumed_blocks_saved")
        .add(static_cast<double>(rep_.resumed_blocks_saved));
  }
  rep_.started = sim_.now();
  link_epoch_ = sim_.now();
  sim::LogLine(sim::LogLevel::kInfo, sim_.now(), "tpm")
      << "migrating '" << domain_.name() << "': " << src_.name() << " -> "
      << dst_.name();

  auto dest_loop = sim_.spawn(dest_recv_loop(), "tpm-dest-recv");
  auto src_loop = sim_.spawn(source_recv_loop(), "tpm-src-recv");

  // ---- Phase 1: pre-copy ----
  notify_progress(Phase::kPreparing, 0.0);
  rep_.bytes_control += MigrationMessage{ControlMsg{Control::kPrepareVbd}}.wire_bytes();
  co_await fwd_.send(MigrationMessage{ControlMsg{Control::kPrepareVbd}});
  co_await await_control(Control::kVbdReady);

  sim::LogLine(sim::LogLevel::kDebug, sim_.now(), "tpm") << "vbd ready, disk precopy";
  notify_progress(Phase::kDiskPrecopy, 0.0);
  t_disk_precopy_begin_ = sim_.now();
  co_await disk_precopy();
  rep_.disk_precopy_done = sim_.now();
  if (!abort_reason_.has_value() && link_disrupted()) {
    abort_reason_ = MigrationStatus::kLinkDisrupted;
  }
  if (!abort_reason_.has_value()) {
    sim::LogLine(sim::LogLevel::kDebug, sim_.now(), "tpm") << "disk precopy done, memory precopy";
    notify_progress(Phase::kMemoryPrecopy, 0.0);
    co_await memory_precopy();
    sim::LogLine(sim::LogLevel::kDebug, sim_.now(), "tpm") << "memory precopy done";
    if (link_disrupted()) abort_reason_ = MigrationStatus::kLinkDisrupted;
  }

  if (abort_reason_.has_value()) {
    // Clean pre-freeze abort: the VM never stopped running on the source.
    // Close both streams and join the receive loops *before* surfacing the
    // failure — they are root tasks referencing this object, which the
    // caller may destroy as soon as the exception lands. Source-side write
    // tracking is deliberately left running: together with the exported
    // resume state it makes a retry's first pass exactly the still-dirty
    // delta; without resume, the manager's pairwise guard forces a correct
    // full first pass.
    fwd_.close();
    rev_.close();
    co_await dest_loop;
    co_await src_loop;
    // Tracking stays on for the retry, but the hook must not outlive us.
    if (flight_ != nullptr) src_.backend_for(domain_.id()).clear_redirty_hook();
    if (resume_tracking_started_) {
      // The dest-loop join above guarantees every delivered chunk has been
      // applied to the destination VBD, so the bitmap is now exact.
      resume_state_ = MigrationResumeState{std::move(resume_transferred_)};
    }
    if (tracer_) {
      tracer_->instant(trk_tpm_, "migration_aborted",
                       std::string{"\"reason\": \""} +
                           to_string(*abort_reason_) + "\"");
    }
    sim::LogLine(sim::LogLevel::kInfo, sim_.now(), "tpm")
        << "aborted (" << to_string(*abort_reason_) << "): '"
        << domain_.name() << "' stays on " << src_.name();
    throw MigrationAborted{
        *abort_reason_,
        std::string{"migration of '"} + domain_.name() + "' aborted: " +
            to_string(*abort_reason_),
        rep_};
  }

  // ---- Phase 2: freeze-and-copy ----
  notify_progress(Phase::kFreeze, 0.0);
  co_await freeze_and_copy();
  notify_progress(Phase::kPostCopy, 0.0);

  // ---- Phase 3: post-copy ----
  auto pusher = sim_.spawn(pc_src_->run(), "tpm-pusher");
  co_await await_control(Control::kSyncComplete);
  co_await pusher;
  rep_.synchronized = sim_.now();
  emit_phase_spans();

  // Join the recovery/watchdog loops (spawned at enter-postcopy); both exit
  // within one tick of the done gate opening, after the synchronized
  // timestamp is recorded so the headline metrics stay loop-free.
  co_await recovery_loop_;
  co_await freeze_watchdog_;

  // Fold destination-side post-copy stats into the report.
  rep_.blocks_pushed = pc_dst_->stats().blocks_pushed;
  rep_.blocks_pulled = pc_dst_->stats().blocks_pulled;
  rep_.blocks_dropped = pc_dst_->stats().blocks_dropped;
  rep_.postcopy_reads_blocked = pc_dst_->reads_blocked();
  rep_.postcopy_read_stall_total = pc_dst_->total_read_stall();
  rep_.postcopy_read_stall_max = pc_dst_->max_read_stall();
  rep_.bytes_postcopy_push = pc_dst_->stats().bytes_push;
  rep_.bytes_postcopy_pull =
      pc_dst_->stats().bytes_pull + pc_dst_->stats().pull_requests * kMsgHeaderBytes;
  rep_.postcopy_pull_retries = pc_dst_->pull_retries();

  {
    // End-of-migration verification copies whole bitmaps — control-plane.
    obs::ProfScope verify_prof{obs::ProfCategory::kOther};
    verify_consistency();
    notify_progress(Phase::kDone, 1.0);
  }

  fwd_.close();
  rev_.close();
  co_await dest_loop;
  co_await src_loop;

  sim::LogLine(sim::LogLevel::kInfo, sim_.now(), "tpm")
      << "done: total=" << rep_.total_time().str()
      << " downtime=" << rep_.downtime().str() << " data=" << rep_.total_mib()
      << " MiB";
  co_return rep_;
}

// --------------------------- Source side ---------------------------

namespace {

/// Reader half of the pre-copy pipeline: pulls dirty runs off the bitmap,
/// reads them from the source disk, and feeds a bounded channel. Runs
/// concurrently with the network sender so disk and link overlap, as blkd's
/// read thread does.
sim::Task<void> precopy_reader(sim::Simulator& sim, storage::VirtualDisk& disk,
                               const DirtyBitmap& bm, std::uint32_t chunk_blocks,
                               sim::Duration cpu_per_mib, const bool* abort,
                               sim::Channel<DiskBlocksMsg>& pipe) {
  const std::uint32_t block_size = disk.geometry().block_size;
  SetRunCursor runs{bm};
  for (;;) {
    if (*abort) break;  // consumer noticed a link outage; stop reading
    std::optional<SetRun> run;
    // vmig-lint: hot-begin -- bitmap scan: per-run inner loop of every
    // pre-copy iteration; scanning must stay allocation-free
    {
      obs::ProfScope prof{obs::ProfCategory::kBitmapScan};
      run = runs.next(chunk_blocks);
    }
    // vmig-lint: hot-end
    if (!run) break;
    const storage::BlockId rs = run->start;
    const auto rn = static_cast<std::uint32_t>(run->len);
    obs::prof_count(obs::ProfCategory::kBitmapScan, rn);
    const storage::BlockRange r{rs, rn};
    co_await disk.read(r, storage::IoSource::kMigration);
    if (cpu_per_mib > sim::Duration::zero()) {
      // User-space daemon cost: copying the chunk out of the backend and
      // framing it dominates per-byte, so charge proportionally.
      co_await sim.delay(cpu_per_mib.scaled(
          static_cast<double>(r.bytes(block_size)) / (1024.0 * 1024.0)));
    }
    DiskBlocksMsg msg = [&] {
      // Payload materialization (content-token snapshot) is charged to the
      // disk-iteration category, not dispatch.
      obs::ProfScope read_prof{obs::ProfCategory::kDiskIteration};
      return DiskBlocksMsg::from_disk(disk, r, /*pulled=*/false);
    }();
    co_await pipe.send(std::move(msg));
  }
  pipe.close();
}

}  // namespace

sim::Task<std::uint64_t> TpmMigration::transfer_by_bitmap(
    const DirtyBitmap& bm, std::uint64_t* blocks_out) {
  // The channel's deque allocates at construction; that is per-transfer setup,
  // not dispatch work, so the ctor runs under a kOther scope. The IIFE returns
  // a prvalue (guaranteed elision — Channel is non-movable).
  sim::Channel<DiskBlocksMsg> pipe = [&]() -> sim::Channel<DiskBlocksMsg> {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    return sim::Channel<DiskBlocksMsg>{sim_, /*capacity=*/4};
  }();
  auto reader = sim_.spawn(
      precopy_reader(sim_, src_.vbd_for(domain_.id()), bm, cfg_.disk_chunk_blocks,
                     cfg_.blkd_cpu_per_mib, &abort_transfer_, pipe),
      "precopy-reader");
  net::TokenBucket* shaper = cfg_.rate_limit_mibps > 0 ? &shaper_ : nullptr;

  const std::uint64_t total_blocks = std::max<std::uint64_t>(bm.count_set(), 1);
  std::uint64_t sent_blocks = 0;
  std::uint64_t next_report = total_blocks / 20 + 1;
  std::uint64_t bytes = 0;
  for (;;) {
    auto msg = co_await pipe.recv();
    if (!msg) break;
    if (!abort_transfer_ && link_disrupted()) {
      // The migration connection broke mid-stream. Stop feeding the wire;
      // keep draining the pipe so the reader unblocks and exits.
      abort_transfer_ = true;
      abort_reason_ = MigrationStatus::kLinkDisrupted;
      if (tracer_) tracer_->instant(trk_tpm_, "link_disrupted");
    }
    if (abort_transfer_) continue;
    {
      // Synchronous chunk accounting only; the sends around it suspend.
      obs::ProfScope prof{obs::ProfCategory::kDiskIteration};
      obs::prof_count(obs::ProfCategory::kDiskIteration, msg->range.count);
      if (blocks_out != nullptr) *blocks_out += msg->range.count;
      sent_blocks += msg->range.count;
      if (sent_blocks >= next_report) {
        notify_progress(Phase::kDiskPrecopy,
                        static_cast<double>(sent_blocks) /
                            static_cast<double>(total_blocks));
        next_report += total_blocks / 20 + 1;
      }
    }
    const storage::BlockRange delivered_range = msg->range;
    MigrationMessage wire{std::move(*msg)};
    const std::uint64_t chunk_bytes = wire.wire_bytes();
    bytes += chunk_bytes;
    const bool delivered = co_await fwd_.send(std::move(wire), shaper);
    if (flight_ != nullptr) {
      // Emit regardless of delivery so iteration byte sums reconcile with
      // the report's accounting (which also counts undelivered chunks).
      flight_->disk_precopy_send(flight_mig_, sim_.now(), flight_iter_,
                                 delivered_range.start, delivered_range.count,
                                 chunk_bytes);
    }
    // The stream is FIFO and the dest loop applies chunks in order, so a
    // successful send is as good as applied once the dest loop is joined.
    if (delivered) {
      resume_transferred_.set_range(delivered_range.start, delivered_range.count);
    }
  }
  co_await reader;
  co_return bytes;
}

sim::Task<void> TpmMigration::disk_precopy() {
  const std::uint64_t nblocks = src_.vbd_for(domain_.id()).geometry().block_count;
  DirtyBitmap seed;
  // Per-migration setup (bitmap construction, seed selection, resume
  // bookkeeping) is control-plane work: scope it kOther so the dispatch
  // loop's alloc counter stays a steady-state signal. The scope is a plain
  // block — it must close before the first co_await.
  {
  obs::ProfScope setup_prof{obs::ProfCategory::kOther};
  observed_writes_ = DirtyBitmap{cfg_.bitmap_kind, nblocks};

  // Incremental Migration (§V): if blkback is still tracking writes from a
  // previous migration onto this host, its bitmap has every block dirtied
  // since — only those need to move. Otherwise generate an all-set bitmap.
  // A multi-host IM directory (§VII) may supply the seed explicitly.
  if (explicit_seed_.has_value()) {
    seed = std::move(*explicit_seed_);
    rep_.incremental = explicit_seed_incremental_;
    if (!src_.backend_for(domain_.id()).tracking()) {
      src_.backend_for(domain_.id()).set_tracking_overhead(cfg_.tracking_overhead);
      src_.backend_for(domain_.id()).start_write_tracking(cfg_.bitmap_kind);
    }
  } else if (src_.backend_for(domain_.id()).tracking()) {
    seed = src_.backend_for(domain_.id()).snapshot_dirty_and_reset();
    observed_writes_.or_with(seed);
    rep_.incremental = true;
  } else {
    src_.backend_for(domain_.id()).set_tracking_overhead(cfg_.tracking_overhead);
    src_.backend_for(domain_.id()).start_write_tracking(cfg_.bitmap_kind);
    seed = DirtyBitmap{cfg_.bitmap_kind, nblocks, /*initially_set=*/true};
    if (cfg_.skip_unused_blocks) {
      // Guest-assisted free-block map (§VII): never-written blocks hold the
      // well-known zero pattern on both sides; don't ship them.
      for (std::uint64_t b = 0; b < nblocks; ++b) {
        if (src_.vbd_for(domain_.id()).token(b) == storage::kZeroBlockToken) {
          seed.clear(b);
          ++rep_.blocks_skipped_unused;
        }
      }
    }
  }

  // Resume bookkeeping: start from the complement of the first-pass seed —
  // any block the seed excludes (IM-clean, skip-unused, resume-carried) is
  // already valid at the destination and counts as transferred.
  resume_transferred_ = DirtyBitmap{cfg_.bitmap_kind, nblocks, /*initially_set=*/true};
  // vmig-lint: hot-begin -- full-bitmap sweep over the first-pass seed
  {
    obs::ProfScope prof{obs::ProfCategory::kBitmapScan};
    resume_transferred_.subtract(seed);
  }
  // vmig-lint: hot-end
  resume_tracking_started_ = true;
  }  // end of setup kOther scope

  const sim::TimePoint iter1_start = sim_.now();
  flight_iter_ = 1;
  rep_.bytes_disk_first_pass =
      co_await transfer_by_bitmap(seed, &rep_.blocks_first_pass);
  rep_.disk_iterations = 1;
  if (abort_reason_.has_value()) co_return;
  rep_.bytes_control += MigrationMessage{ControlMsg{Control::kIterationEnd}}.wire_bytes();
  co_await fwd_.send(MigrationMessage{ControlMsg{Control::kIterationEnd}});
  co_await await_control(Control::kIterationAck);
  if (tracer_) {
    tracer_->complete(trk_tpm_, iter1_start, "iteration",
                      "\"i\": 1, \"blocks\": " +
                          std::to_string(rep_.blocks_first_pass) +
                          ", \"bytes\": " +
                          std::to_string(rep_.bytes_disk_first_pass));
  }

  std::uint64_t last_transferred = std::max<std::uint64_t>(rep_.blocks_first_pass, 1);
  // Reused snapshot buffer: take_and_reset_into lands each iteration's
  // dirty set in this bitmap's existing storage (no per-iteration copy
  // allocation for flat/three-level kinds).
  DirtyBitmap snap;
  while (rep_.disk_iterations < cfg_.disk_max_iterations) {
    const std::uint64_t dirty = src_.backend_for(domain_.id()).dirty_block_count();
    if (dirty <= cfg_.disk_residual_target_blocks) break;
    if (static_cast<double>(dirty) >= static_cast<double>(last_transferred) *
                                          cfg_.disk_dirty_rate_abort_ratio) {
      // "If the dirty rate is higher than the transfer rate, the storage
      // pre-copy must be stopped proactively."
      rep_.aborted_precopy_dirty_rate = true;
      if (tracer_) {
        tracer_->instant(trk_tpm_, "dirty_rate_abort",
                         "\"dirty_blocks\": " + std::to_string(dirty) +
                             ", \"last_transferred\": " +
                             std::to_string(last_transferred));
      }
      // The paper proceeds to freeze anyway (post-copy absorbs the large
      // residue); an orchestrated job may prefer a clean abort so the VM
      // can be retried when its write cycle cools down.
      if (cfg_.abort_on_non_convergence) {
        abort_reason_ = MigrationStatus::kNonConvergent;
      }
      break;
    }
    // vmig-lint: hot-begin -- per-iteration dirty-snapshot merge
    {
      obs::ProfScope prof{obs::ProfCategory::kBitmapScan};
      src_.backend_for(domain_.id()).snapshot_dirty_and_reset_into(snap);
      observed_writes_.or_with(snap);
      // Re-dirtied blocks invalidate the destination's copy until re-delivered.
      resume_transferred_.subtract(snap);
    }
    // vmig-lint: hot-end
    const sim::TimePoint iter_start = sim_.now();
    std::uint64_t n = 0;
    flight_iter_ = static_cast<std::int32_t>(rep_.disk_iterations) + 1;
    const std::uint64_t iter_bytes = co_await transfer_by_bitmap(snap, &n);
    rep_.bytes_disk_retransfer += iter_bytes;
    rep_.blocks_retransferred += n;
    last_transferred = std::max<std::uint64_t>(n, 1);
    ++rep_.disk_iterations;
    if (abort_reason_.has_value()) co_return;
    rep_.bytes_control +=
        MigrationMessage{ControlMsg{Control::kIterationEnd}}.wire_bytes();
    co_await fwd_.send(MigrationMessage{ControlMsg{Control::kIterationEnd}});
    co_await await_control(Control::kIterationAck);
    if (tracer_) {
      tracer_->complete(trk_tpm_, iter_start, "iteration",
                        "\"i\": " + std::to_string(rep_.disk_iterations) +
                            ", \"blocks\": " + std::to_string(n) +
                            ", \"bytes\": " + std::to_string(iter_bytes));
    }
  }
}

sim::Task<void> TpmMigration::memory_precopy() {
  net::TokenBucket* shaper = cfg_.rate_limit_mibps > 0 ? &shaper_ : nullptr;
  const auto res = co_await mem_migrator_.precopy(domain_, fwd_, shaper);
  rep_.mem_iterations = res.iterations;
  rep_.pages_precopied = res.pages_sent;
  rep_.bytes_memory_precopy = res.bytes_sent;
}

sim::Task<void> TpmMigration::freeze_and_copy() {
  domain_.suspend();
  rep_.suspended = sim_.now();
  if (tracer_) tracer_->instant(trk_tpm_, "suspended");
  co_await sim_.delay(cfg_.suspend_overhead);

  // Snapshot the final inconsistent-block set; tracking stops on the source
  // (it restarts on the destination for IM). Freeze happens once per
  // migration — control-plane, not dispatch — so the synchronous chunk runs
  // under kOther (plain block: it must close before the next co_await).
  DirtyBitmap final_bm;
  {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    src_.backend_for(domain_.id()).snapshot_dirty_and_reset_into(final_bm);
    observed_writes_.or_with(final_bm);
    src_.backend_for(domain_.id()).stop_write_tracking();
    // Tracking is off: no redirty can fire again, and the source backend may
    // outlive this migration object.
    if (flight_ != nullptr) src_.backend_for(domain_.id()).clear_redirty_hook();
    rep_.residual_dirty_blocks = final_bm.count_set();
  }

  // Residual dirty pages + vCPU context, then the block-bitmap.
  const auto res = co_await mem_migrator_.send_residual(domain_, fwd_);
  rep_.pages_residual = res.pages;
  rep_.bytes_freeze_residual += res.bytes;
  if (flight_ != nullptr) {
    flight_->freeze_send(flight_mig_, sim_.now(),
                         obs::FlightRecorder::Unit::kMem, res.pages,
                         res.pages_bytes);
    flight_->freeze_send(flight_mig_, sim_.now(),
                         obs::FlightRecorder::Unit::kCpu, 1, res.cpu_bytes);
  }

  MigrationMessage bm_msg = [&] {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    return MigrationMessage{BlockBitmapMsg{final_bm}};
  }();
  const std::uint64_t bm_bytes = bm_msg.wire_bytes();
  rep_.bytes_bitmap += bm_bytes;
  co_await fwd_.send(std::move(bm_msg));
  if (flight_ != nullptr) {
    flight_->freeze_send(flight_mig_, sim_.now(),
                         obs::FlightRecorder::Unit::kBitmap,
                         rep_.residual_dirty_blocks, bm_bytes);
  }

  {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    pc_src_ = std::make_unique<PostCopySource>(
        sim_, src_.vbd_for(domain_.id()), std::move(final_bm), fwd_,
        cfg_.push_chunk_blocks,
        cfg_.rate_limit_postcopy && cfg_.rate_limit_mibps > 0 ? &shaper_
                                                             : nullptr);
    pc_src_->attach_obs(tracer_, trk_push_, cfg_.obs_registry);
    if (flight_ != nullptr) pc_src_->attach_flight(flight_, flight_mig_);
  }

  rep_.bytes_control +=
      MigrationMessage{ControlMsg{Control::kEnterPostCopy}}.wire_bytes();
  co_await fwd_.send(MigrationMessage{ControlMsg{Control::kEnterPostCopy}});
}

sim::Task<void> TpmMigration::source_recv_loop() {
  for (;;) {
    auto m = co_await rev_.recv();
    if (!m) break;
    if (const auto* pull = m->get_if<PullRequestMsg>()) {
      rep_.bytes_postcopy_pull += m->wire_bytes();
      if (pc_src_) pc_src_->enqueue_pull(pull->block);
    } else if (const auto* c = m->get_if<ControlMsg>()) {
      rep_.bytes_control += m->wire_bytes();
      if (c->kind == Control::kSyncComplete && pc_src_) {
        // Remaining pushes would only be dropped; stop reading the disk.
        pc_src_->request_stop();
      }
      ++control_seen_[static_cast<int>(c->kind)];
      control_notify_.notify_all();
    }
  }
}

sim::Task<void> TpmMigration::await_control(Control kind) {
  const int idx = static_cast<int>(kind);
  const std::uint64_t target = ++control_waited_[idx];
  while (control_seen_[idx] < target) co_await control_notify_.wait();
}

// ------------------------- Destination side -------------------------

sim::Task<void> TpmMigration::dest_recv_loop() {
  for (;;) {
    auto m = co_await fwd_.recv();
    if (!m) break;
    if (auto* blocks = m->get_if<DiskBlocksMsg>()) {
      if (pc_dst_) {
        co_await pc_dst_->on_block_received(*blocks);
      } else {
        // Pre-copy: install the blocks on the destination VBD. The receiving
        // blkd pays the same per-byte user-space cost as the sender.
        if (cfg_.blkd_cpu_per_mib > sim::Duration::zero()) {
          co_await sim_.delay(cfg_.blkd_cpu_per_mib.scaled(
              static_cast<double>(blocks->range.bytes(blocks->block_size)) /
              (1024.0 * 1024.0)));
        }
        co_await dst_.vbd_for(domain_.id()).write_tokens(blocks->range, blocks->tokens,
                                          storage::IoSource::kMigration);
        blocks->apply_payloads_to(dst_.vbd_for(domain_.id()));
      }
    } else if (const auto* pages = m->get_if<MemPagesMsg>()) {
      for (const auto& [page, version] : pages->pages) {
        shadow_mem_.apply_page(page, version);
      }
    } else if (const auto* cpu = m->get_if<CpuStateMsg>()) {
      received_cpu_ = cpu->cpu;
    } else if (auto* bm = m->get_if<BlockBitmapMsg>()) {
      received_bitmap_ = std::move(bm->bitmap);
    } else if (const auto* c = m->get_if<ControlMsg>()) {
      switch (c->kind) {
        case Control::kPrepareVbd:
          co_await sim_.delay(kVbdPrepareCost);
          rep_.bytes_control +=
              MigrationMessage{ControlMsg{Control::kVbdReady}}.wire_bytes();
          co_await rev_.send(MigrationMessage{ControlMsg{Control::kVbdReady}});
          break;
        case Control::kIterationEnd:
          // All data of the iteration has been applied (this loop is
          // serial), so the ack truly means "destination disk caught up".
          rep_.bytes_control +=
              MigrationMessage{ControlMsg{Control::kIterationAck}}.wire_bytes();
          co_await rev_.send(MigrationMessage{ControlMsg{Control::kIterationAck}});
          break;
        case Control::kEnterPostCopy:
          co_await handle_enter_postcopy();
          break;
        case Control::kPushComplete:
          // Completion is detected by the transferred bitmap draining; the
          // marker (reliable control plane) additionally tells the recovery
          // loop that any block still missing was lost in flight.
          if (pc_dst_) pc_dst_->note_push_complete();
          break;
        default:
          break;
      }
    }
  }
}

sim::Task<void> TpmMigration::handle_enter_postcopy() {
  assert(received_bitmap_.has_value() && "bitmap must precede EnterPostCopy");
  assert(received_cpu_.has_value() && "CPU state must precede EnterPostCopy");

  // Handover setup (PostCopyDestination construction, fresh tracking bitmap,
  // domain relocation) is once-per-migration control-plane work: scope it
  // kOther so dispatch stays a steady-state alloc signal. Plain block — it
  // must close before the co_await below.
  {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    pc_dst_ = std::make_unique<PostCopyDestination>(
        sim_, dst_.vbd_for(domain_.id()), *received_bitmap_, domain_.id(), rev_,
        cfg_.postcopy_pull_enabled);
    pc_dst_->set_recovery({cfg_.postcopy_pull_timeout,
                           cfg_.postcopy_pull_backoff,
                           cfg_.postcopy_recovery_interval,
                           cfg_.postcopy_max_outstanding_pulls});
    pc_dst_->attach_obs(tracer_, trk_dst_, cfg_.obs_registry);
    if (flight_ != nullptr) pc_dst_->attach_flight(flight_, flight_mig_);

    // The guest is frozen, so the received pages can be checked against its
    // memory image right now: a mismatch means pre-copy lost an update.
    rep_.memory_consistent = shadow_mem_.content_equals(domain_.memory()) &&
                             received_cpu_->version >= domain_.cpu().version;

    // Relocate the domain: rebind the frontend, install interception, restart
    // write tracking for a later incremental migration back (BM_3).
    src_.detach_domain(domain_);
    dst_.attach_domain(domain_);
    dst_.backend_for(domain_.id()).install_interceptor(pc_dst_.get());
    if (cfg_.track_for_incremental) {
      dst_.backend_for(domain_.id()).set_tracking_overhead(
          cfg_.tracking_overhead);
      dst_.backend_for(domain_.id()).start_write_tracking(cfg_.bitmap_kind);
    }
  }

  co_await sim_.delay(cfg_.resume_overhead);
  domain_.resume();
  rep_.resumed = sim_.now();
  // Post-resume bookkeeping and watcher spawns: still control-plane. The
  // scope runs to the end of the coroutine body (no further co_await).
  obs::ProfScope resume_prof{obs::ProfCategory::kOther};
  if (tracer_) {
    tracer_->instant(trk_dst_, "resumed",
                     "\"residue_blocks\": " +
                         std::to_string(pc_dst_->transferred().count_set()));
  }
  sim::LogLine(sim::LogLevel::kInfo, sim_.now(), "tpm")
      << "resumed on " << dst_.name() << " after "
      << rep_.downtime().str() << " downtime; post-copy residue="
      << pc_dst_->transferred().count_set() << " blocks";

  // Watch for the post-copy residue draining, then release the source.
  sim_.spawn(
      [](TpmMigration* self) -> sim::Task<void> {
        co_await self->pc_dst_->done_gate().wait();
        self->dst_.backend_for(self->domain_.id()).remove_interceptor();
        self->rep_.bytes_control +=
            MigrationMessage{ControlMsg{Control::kSyncComplete}}.wire_bytes();
        co_await self->rev_.send(
            MigrationMessage{ControlMsg{Control::kSyncComplete}});
      }(this),
      "tpm-sync-watch");

  // Fault tolerance: lost-message recovery (pull retries, post-push sweep)
  // and the freeze-and-copy fallback for a persistently-dead path. Both are
  // joined by run() after kSyncComplete.
  recovery_loop_ = sim_.spawn(pc_dst_->run_recovery(), "pc-recovery");
  freeze_watchdog_ = sim_.spawn(postcopy_freeze_watchdog(), "pc-freeze-watchdog");
}

sim::Task<void> TpmMigration::postcopy_freeze_watchdog() {
  if (cfg_.postcopy_freeze_deadline <= sim::Duration::zero() || !pc_dst_) {
    co_return;
  }
  const sim::Duration tick =
      cfg_.postcopy_recovery_interval > sim::Duration::zero()
          ? cfg_.postcopy_recovery_interval
          : cfg_.postcopy_freeze_deadline;
  bool was_down = false;
  sim::TimePoint down_since{};
  bool frozen = false;
  sim::TimePoint frozen_at{};
  while (!pc_dst_->complete()) {
    const bool down = fwd_.link().down() || rev_.link().down();
    if (down && !was_down) down_since = sim_.now();
    was_down = down;
    if (down && !frozen && domain_.running() &&
        sim_.now() - down_since >= cfg_.postcopy_freeze_deadline) {
      // The source has been unreachable for the whole deadline: any guest
      // read of a still-missing block would stall unboundedly. Degrade to
      // freeze-and-copy — suspend until the path (and the data) come back.
      domain_.suspend();
      frozen = true;
      frozen_at = sim_.now();
      ++rep_.postcopy_fallback_freezes;
      if (tracer_) {
        tracer_->instant(trk_dst_, "fallback_freeze",
                         "\"missing_blocks\": " +
                             std::to_string(pc_dst_->transferred().count_set()));
      }
      sim::LogLine(sim::LogLevel::kInfo, sim_.now(), "tpm")
          << "post-copy fallback: path down past deadline, froze '"
          << domain_.name() << "' on " << dst_.name();
    }
    if (!down && frozen) {
      domain_.resume();
      rep_.postcopy_fallback_freeze_time += sim_.now() - frozen_at;
      frozen = false;
      if (tracer_) tracer_->instant(trk_dst_, "fallback_thaw");
    }
    co_await sim_.delay(tick);
  }
  if (frozen) {
    domain_.resume();
    rep_.postcopy_fallback_freeze_time += sim_.now() - frozen_at;
  }
}

void TpmMigration::install_drop_policies() {
  // Post-copy data plane only: pushes and pull responses forward, pull
  // requests backward — all are retried or swept up by the recovery loop.
  // Everything else (pre-copy chunks, control, bitmap, memory) models a
  // reliable connection-oriented transport and is never dropped.
  fwd_.set_drop_policy([this](const MigrationMessage& m) {
    return pc_src_ != nullptr && m.get_if<DiskBlocksMsg>() != nullptr;
  });
  rev_.set_drop_policy([](const MigrationMessage& m) {
    return m.get_if<PullRequestMsg>() != nullptr;
  });
}

// --------------------------- Observability ---------------------------

void TpmMigration::setup_obs() {
  if (flight_ != nullptr) {
    mem_migrator_.set_flight(flight_, flight_mig_);
    // Redirty tap: fires on every tracked source-side write during pre-copy
    // (the tracking_ gate inside the backend turns it off at freeze).
    src_.backend_for(domain_.id())
        .set_redirty_hook([this](storage::BlockRange r) {
          flight_->redirty(flight_mig_, sim_.now(), r.start, r.count);
        });
  }
  tracer_ = cfg_.obs_tracer;
  if (tracer_ != nullptr) {
    trk_tpm_ = tracer_->track(src_.name(), "tpm");
    trk_mem_ = tracer_->track(src_.name(), "memory");
    trk_push_ = tracer_->track(src_.name(), "postcopy");
    trk_dst_ = tracer_->track(dst_.name(), "postcopy");
    mem_migrator_.set_trace(tracer_, trk_mem_);
  }
  if (cfg_.obs_registry != nullptr) {
    static constexpr const char* kMsgName[] = {
        "disk_blocks", "block_bitmap", "mem_pages",
        "cpu_state",   "pull_request", "control",
    };
    static_assert(std::size(kMsgName) ==
                  std::variant_size_v<MigrationMessage::Payload>);
    for (std::size_t i = 0; i < std::size(kMsgName); ++i) {
      msg_bytes_[i] = &cfg_.obs_registry->counter(
          std::string{"net.msg."} + kMsgName[i] + ".bytes");
    }
    // Count both directions; pulls and acks flow over rev_.
    const auto observe = [this](const MigrationMessage& m) {
      msg_bytes_[m.payload.index()]->add(
          static_cast<double>(m.wire_bytes()));
    };
    fwd_.set_send_observer(observe);
    rev_.set_send_observer(observe);
  }
}

void TpmMigration::emit_phase_spans() {
  if (tracer_ == nullptr) return;
  // Derived from the report's own timestamps, never re-measured: the
  // "freeze" span's duration IS rep_.downtime(), "postcopy" IS
  // postcopy_time(), and "migration" IS total_time(). Each phase span ends
  // exactly where the next begins.
  tracer_->complete(trk_tpm_, rep_.started, rep_.synchronized, "migration",
                    "\"incremental\": " +
                        std::string{rep_.incremental ? "true" : "false"});
  tracer_->complete(trk_tpm_, rep_.started, t_disk_precopy_begin_, "preparing");
  tracer_->complete(trk_tpm_, t_disk_precopy_begin_, rep_.disk_precopy_done,
                    "disk_precopy",
                    "\"iterations\": " + std::to_string(rep_.disk_iterations));
  tracer_->complete(trk_tpm_, rep_.disk_precopy_done, rep_.suspended,
                    "memory_precopy",
                    "\"iterations\": " + std::to_string(rep_.mem_iterations));
  tracer_->complete(trk_tpm_, rep_.suspended, rep_.resumed, "freeze");
  tracer_->complete(trk_tpm_, rep_.resumed, rep_.synchronized, "postcopy");
}

void TpmMigration::verify_consistency() {
  // Every destination block must either match the source's frozen copy or
  // carry a post-resume guest write (tracked in BM_3 for IM).
  const auto& src_disk = src_.vbd_for(domain_.id());
  const auto& dst_disk = dst_.vbd_for(domain_.id());
  const std::uint64_t n = src_disk.geometry().block_count;
  const bool has_bm3 = dst_.backend_for(domain_.id()).tracking();
  const DirtyBitmap bm3 =
      has_bm3 ? dst_.backend_for(domain_.id()).snapshot_dirty()
              : DirtyBitmap{cfg_.bitmap_kind, n};
  bool ok = dst_disk.geometry().block_count == n;
  for (std::uint64_t b = 0; ok && b < n; ++b) {
    if (!bm3.test(b) && src_disk.token(b) != dst_disk.token(b)) ok = false;
  }
  rep_.disk_consistent = ok;
}

}  // namespace vmig::core
