#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "core/migration_config.hpp"
#include "core/migration_metrics.hpp"
#include "core/migration_request.hpp"
#include "core/post_copy.hpp"
#include "core/protocol.hpp"
#include "hypervisor/checkpoint.hpp"
#include "hypervisor/host.hpp"
#include "net/message_stream.hpp"
#include "obs/tracer.hpp"
#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::obs {
class Counter;
class FlightRecorder;
}  // namespace vmig::obs

namespace vmig::core {

/// Durable resume state exported by an aborted migration attempt: the blocks
/// the destination already holds a valid copy of (sent and not re-dirtied,
/// plus blocks that never needed sending). A retry of the same
/// (domain, source, destination) triple seeds its first pass with the
/// complement of this bitmap, OR-ed with every write tracked since — it
/// re-sends only still-dirty blocks instead of the whole disk
/// (docs/FAULTS.md). Kept by MigrationManager; sound because destination
/// VBDs persist across attempts.
struct MigrationResumeState {
  DirtyBitmap transferred;
};

/// Three-Phase Migration: whole-system live migration of a VM — local disk,
/// memory, and CPU state — between two hosts with no shared storage
/// (paper §IV), with Incremental Migration (§V) applied automatically when
/// the source backend is still tracking writes from a previous migration.
///
/// Phases, exactly as in Fig. 1/2 of the paper:
///   1. *Pre-copy*: prepare a VBD at the destination; iteratively pre-copy
///      the local disk with blkback tracking writes in a block-bitmap
///      (first iteration = whole disk, or just the IM bitmap); then
///      iteratively pre-copy memory Xen-style.
///   2. *Freeze-and-copy*: suspend the VM, ship residual dirty pages, vCPU
///      context, and the block-bitmap.
///   3. *Post-copy*: resume at the destination immediately; synchronize the
///      remaining dirty blocks by source push + destination pull.
///
/// One TpmMigration instance models both daemons (the source's and
/// destination's blkd + xc_linux_save/restore); messages still pay full
/// network and disk costs on both sides.
class TpmMigration {
 public:
  /// Migration phases, in order, for progress reporting.
  enum class Phase : std::uint8_t {
    kPreparing,
    kDiskPrecopy,
    kMemoryPrecopy,
    kFreeze,
    kPostCopy,
    kDone,
  };
  static const char* phase_name(Phase p);

  /// Called on every phase transition and periodically within the disk
  /// pre-copy; `fraction` is the disk pre-copy progress in [0,1] (0 for the
  /// other phases, 1 at kDone).
  using ProgressListener = std::function<void(Phase, double fraction)>;

  TpmMigration(sim::Simulator& sim, MigrationConfig cfg, vm::Domain& domain,
               hv::Host& source, hv::Host& dest);

  void set_progress_listener(ProgressListener l) { progress_ = std::move(l); }

  /// Attach the flight recorder under migration id `mig` (normally done by
  /// MigrationManager right after FlightRecorder::begin_migration). Must be
  /// called before run(); null recorder (the default) records nothing.
  void set_flight(obs::FlightRecorder* rec, std::uint32_t mig) {
    flight_ = rec;
    flight_mig_ = mig;
  }

  TpmMigration(const TpmMigration&) = delete;
  TpmMigration& operator=(const TpmMigration&) = delete;

  /// Execute the whole migration; returns when source and destination are
  /// fully synchronized (end of post-copy).
  ///
  /// Throws MigrationAborted if a pre-copy phase stops cleanly first: a link
  /// outage observed at a chunk boundary (kLinkDisrupted) or a proactive
  /// non-convergence stop under cfg.abort_on_non_convergence
  /// (kNonConvergent). Either way the abort happens strictly *before*
  /// freeze-and-copy: the VM never stops running on the source, both streams
  /// are closed and the receive loops joined before the exception surfaces,
  /// and source-side write tracking is left running so a retry falls back to
  /// a correct full first pass (see MigrationManager's pairwise guard).
  sim::Task<MigrationReport> run();

  const MigrationReport& report() const noexcept { return rep_; }

  /// Override the first pre-copy pass with an externally-maintained seed
  /// (multi-host IM directory, or a forced full copy when the destination
  /// does not hold this VM's base image). Must be called before run(); the
  /// caller is responsible for having consumed the source backend's
  /// tracking bitmap into the seed. `mark_incremental` controls whether the
  /// report counts this as an incremental migration.
  void set_first_pass_seed(DirtyBitmap seed, bool mark_incremental = true) {
    explicit_seed_ = std::move(seed);
    explicit_seed_incremental_ = mark_incremental;
  }

  /// Mark this run as resumed from a previous aborted attempt (the manager
  /// already folded the resume state into the first-pass seed).
  /// `blocks_saved` = blocks the seed excluded versus a full restart.
  void mark_resumed(std::uint64_t blocks_saved) {
    rep_.resume_applied = true;
    rep_.resumed_blocks_saved = blocks_saved;
  }

  /// After a clean pre-freeze abort: the transferred-bitmap to seed a
  /// resumed retry from, or nullopt if the attempt never reached the disk
  /// pre-copy. Consumes the state.
  std::optional<MigrationResumeState> take_resume_state() {
    return std::exchange(resume_state_, std::nullopt);
  }

  /// Every source-side write the migration observed being consumed from the
  /// backend's tracking bitmap (iteration snapshots + the freeze snapshot).
  /// Used by ImDirectory to keep per-host divergence maps current.
  const DirtyBitmap& observed_source_writes() const noexcept {
    return observed_writes_;
  }

 private:
  // ---- Source side ----
  sim::Task<void> disk_precopy();
  sim::Task<std::uint64_t> transfer_by_bitmap(const DirtyBitmap& bm,
                                              std::uint64_t* blocks_out);
  sim::Task<void> memory_precopy();
  sim::Task<void> freeze_and_copy();
  sim::Task<void> source_recv_loop();
  sim::Task<void> await_control(Control kind);

  // ---- Destination side ----
  sim::Task<void> dest_recv_loop();
  sim::Task<void> handle_enter_postcopy();
  /// Freeze-and-copy fallback: while post-copy runs, suspend the guest if
  /// the migration path stays down past cfg_.postcopy_freeze_deadline (its
  /// reads could only stall anyway); resume it once synchronized.
  sim::Task<void> postcopy_freeze_watchdog();
  /// Opt the post-copy data plane (pushes, pull responses, pull requests)
  /// into the links' injected-loss model; everything else stays reliable.
  void install_drop_policies();

  void verify_consistency();
  void notify_progress(Phase p, double fraction) {
    if (progress_) progress_(p, fraction);
  }

  /// True if either direction of the migration path has seen an injected
  /// outage since this migration started (a connection-oriented transport
  /// would have observed the break even though the link is back up).
  bool link_disrupted() const {
    return fwd_.link().disrupted_since(link_epoch_) ||
           rev_.link().disrupted_since(link_epoch_);
  }

  // ---- Observability (cfg_.obs_tracer / cfg_.obs_registry; null = off) ----
  /// Create tracks, hook the memory migrator, and install per-message-type
  /// byte counters on both streams.
  void setup_obs();
  /// Emit the phase spans from the report's own timestamps so the trace is
  /// exactly consistent with downtime()/postcopy_time()/total_time().
  void emit_phase_spans();

  ProgressListener progress_;
  sim::Simulator& sim_;
  MigrationConfig cfg_;
  vm::Domain& domain_;
  hv::Host& src_;
  hv::Host& dst_;
  MigStream fwd_;  ///< source -> destination (data plane)
  MigStream rev_;  ///< destination -> source (pulls, acks)
  net::TokenBucket shaper_;
  hv::MemoryMigrator mem_migrator_;
  MigrationReport rep_;

  std::optional<DirtyBitmap> explicit_seed_;
  bool explicit_seed_incremental_ = true;
  DirtyBitmap observed_writes_;

  /// Blocks the destination currently holds a valid copy of (resume state
  /// in the making): initialized to the complement of the first-pass seed,
  /// bits set as chunks are delivered, cleared again when a later iteration
  /// snapshot shows the block was re-dirtied.
  DirtyBitmap resume_transferred_;
  bool resume_tracking_started_ = false;
  std::optional<MigrationResumeState> resume_state_;

  // Cooperative pre-copy abort state (see run()'s contract).
  std::optional<MigrationStatus> abort_reason_;
  bool abort_transfer_ = false;  ///< tells the pre-copy reader to stop
  sim::TimePoint link_epoch_{};  ///< disruptions before this don't count

  // Destination-side state.
  vm::GuestMemory shadow_mem_;  ///< pages as received over the wire
  std::optional<vm::VCpuState> received_cpu_;
  std::optional<DirtyBitmap> received_bitmap_;
  std::unique_ptr<PostCopyDestination> pc_dst_;
  std::unique_ptr<PostCopySource> pc_src_;
  sim::SpawnHandle recovery_loop_;    ///< pc_dst_->run_recovery()
  sim::SpawnHandle freeze_watchdog_;  ///< postcopy_freeze_watchdog()

  // Control-plane rendezvous.
  sim::Notifier control_notify_;
  std::uint64_t control_seen_[8] = {};  ///< per-Control receive counters
  std::uint64_t control_waited_[8] = {};
  bool source_done_ = false;

  // Observability state (all inert when cfg_.obs_tracer/registry are null).
  obs::FlightRecorder* flight_ = nullptr;
  std::uint32_t flight_mig_ = 0;
  std::int32_t flight_iter_ = 0;  ///< disk iteration a transfer belongs to
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId trk_tpm_ = 0;   ///< <source>/"tpm": phases + disk iterations
  obs::TrackId trk_mem_ = 0;   ///< <source>/"memory": pre-copy rounds
  obs::TrackId trk_push_ = 0;  ///< <source>/"postcopy": push/pull serving
  obs::TrackId trk_dst_ = 0;   ///< <dest>/"postcopy": stalls, pull requests
  sim::TimePoint t_disk_precopy_begin_{};
  /// Per-payload-alternative wire-byte counters ("net.msg.<type>.bytes").
  obs::Counter* msg_bytes_[std::variant_size_v<MigrationMessage::Payload>] = {};
};

}  // namespace vmig::core
