#include "fault/fault_spec.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace vmig::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kLatency:
      return "latency";
    default:
      return "loss";
  }
}

namespace {

[[noreturn]] void bad(const std::string& clause, const char* why) {
  throw std::invalid_argument{std::string{"fault spec: "} + why + " in '" +
                              clause + "'"};
}

/// "250ms" / "2.5s" / "80us" / bare "3" (seconds) -> Duration.
sim::Duration parse_duration(const std::string& clause, const std::string& s) {
  if (s.empty()) bad(clause, "empty duration");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v < 0.0) bad(clause, "bad duration");
  const std::string unit{end};
  if (unit.empty() || unit == "s") return sim::Duration::from_seconds(v);
  if (unit == "ms") return sim::Duration::from_seconds(v * 1e-3);
  if (unit == "us") return sim::Duration::from_seconds(v * 1e-6);
  bad(clause, "unknown duration unit");
}

double parse_number(const std::string& clause, const std::string& s) {
  if (s.empty()) bad(clause, "empty value");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') bad(clause, "bad value");
  return v;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

FaultEvent parse_clause(const std::string& raw) {
  const std::string clause = trim(raw);
  const std::size_t at_pos = clause.find('@');
  if (at_pos == std::string::npos) bad(clause, "missing '@'");
  const std::string kind_s = clause.substr(0, at_pos);

  FaultEvent ev;
  if (kind_s == "outage") {
    ev.kind = FaultKind::kOutage;
  } else if (kind_s == "degrade") {
    ev.kind = FaultKind::kDegrade;
  } else if (kind_s == "latency") {
    ev.kind = FaultKind::kLatency;
  } else if (kind_s == "loss") {
    ev.kind = FaultKind::kLoss;
  } else {
    bad(clause, "unknown fault kind");
  }

  std::string rest = clause.substr(at_pos + 1);
  const std::size_t plus = rest.find('+');
  if (plus == std::string::npos) bad(clause, "missing '+<duration>'");
  ev.at = parse_duration(clause, trim(rest.substr(0, plus)));
  rest = rest.substr(plus + 1);

  std::string value;
  if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
    value = trim(rest.substr(colon + 1));
    rest = rest.substr(0, colon);
  }
  ev.duration = parse_duration(clause, trim(rest));
  if (ev.duration <= sim::Duration::zero()) bad(clause, "zero-length window");

  switch (ev.kind) {
    case FaultKind::kOutage:
      if (!value.empty()) bad(clause, "outage takes no ':<value>'");
      break;
    case FaultKind::kDegrade:
      ev.value = parse_number(clause, value);
      if (ev.value <= 0.0 || ev.value >= 1.0) {
        bad(clause, "degrade factor must be in (0,1)");
      }
      break;
    case FaultKind::kLatency:
      ev.extra = parse_duration(clause, value);
      if (ev.extra <= sim::Duration::zero()) bad(clause, "zero extra latency");
      break;
    case FaultKind::kLoss:
      ev.value = parse_number(clause, value);
      if (ev.value <= 0.0 || ev.value >= 1.0) {
        bad(clause, "loss probability must be in (0,1)");
      }
      break;
  }
  return ev;
}

std::string render_duration(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%gs", d.to_seconds());
  return buf;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t sep = text.find_first_of(";,", pos);
    if (sep == std::string::npos) sep = text.size();
    const std::string clause = trim(text.substr(pos, sep - pos));
    if (!clause.empty()) spec.events.push_back(parse_clause(clause));
    pos = sep + 1;
  }
  if (spec.events.empty()) {
    throw std::invalid_argument{"fault spec: no clauses in '" + text + "'"};
  }
  return spec;
}

std::string FaultSpec::str() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += "; ";
    out += to_string(ev.kind);
    out += '@';
    out += render_duration(ev.at);
    out += '+';
    out += render_duration(ev.duration);
    switch (ev.kind) {
      case FaultKind::kDegrade:
      case FaultKind::kLoss: {
        char buf[32];
        std::snprintf(buf, sizeof buf, ":%g", ev.value);
        out += buf;
        break;
      }
      case FaultKind::kLatency:
        out += ':';
        out += render_duration(ev.extra);
        break;
      case FaultKind::kOutage:
        break;
    }
  }
  return out;
}

}  // namespace vmig::fault
