#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace vmig::fault {

/// One scheduled fault on a network path.
enum class FaultKind : std::uint8_t {
  kOutage,   ///< link down for the window (transport sees a break)
  kDegrade,  ///< bandwidth scaled by `value` for the window
  kLatency,  ///< `extra` added to one-way latency for the window
  kLoss,     ///< drop-eligible messages lost with probability `value`
};

const char* to_string(FaultKind k);

/// A fault window, relative to the instant the injector is armed.
struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  sim::Duration at{};        ///< window start offset
  sim::Duration duration{};  ///< window length
  double value = 0.0;        ///< degrade factor / loss probability
  sim::Duration extra{};     ///< added latency (kLatency only)
};

/// A parsed `--fault` specification: an ordered list of fault windows.
///
/// Grammar (see docs/FAULTS.md): clauses separated by `;` or `,`, each
///   outage@<at>+<dur>
///   degrade@<at>+<dur>:<factor>
///   latency@<at>+<dur>:<extra>
///   loss@<at>+<dur>:<probability>
/// where times are `<float>` seconds or suffixed `us`/`ms`/`s`, e.g.
///   "outage@5s+200ms; degrade@2s+10s:0.25; loss@0s+30s:0.05".
struct FaultSpec {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }

  /// Parse a spec string; throws std::invalid_argument with a message
  /// naming the offending clause on malformed input.
  static FaultSpec parse(const std::string& text);

  /// Canonical re-rendering of the spec (stable across parse round-trips).
  std::string str() const;
};

}  // namespace vmig::fault
