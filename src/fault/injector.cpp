#include "fault/injector.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "simcore/log.hpp"
#include "simcore/rng.hpp"

namespace vmig::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, FaultSpec spec,
                             std::uint64_t seed)
    : sim_{sim}, spec_{std::move(spec)}, seed_{seed} {}

void FaultInjector::attach_obs(obs::Registry* registry, obs::Tracer* tracer) {
  registry_ = registry;
  tracer_ = tracer;
  if (registry_ != nullptr) {
    m_windows_ = &registry_->counter("fault.windows");
    m_kind_[static_cast<int>(FaultKind::kOutage)] =
        &registry_->counter("fault.outages");
    m_kind_[static_cast<int>(FaultKind::kDegrade)] =
        &registry_->counter("fault.degrade_windows");
    m_kind_[static_cast<int>(FaultKind::kLatency)] =
        &registry_->counter("fault.latency_windows");
    m_kind_[static_cast<int>(FaultKind::kLoss)] =
        &registry_->counter("fault.loss_windows");
    registry_->probe("fault.messages_dropped", [this] {
      return static_cast<double>(messages_dropped());
    });
  }
}

void FaultInjector::arm(net::Link& link, const std::string& label) {
  // Independent per-link loss stream: mix the injector seed with the arm
  // index through splitmix64 so adjacent seeds do not correlate.
  std::uint64_t mix = seed_ + 0x9e3779b97f4a7c15ULL * (++arm_index_);
  link.seed_loss(sim::splitmix64(mix));
  armed_.push_back(&link);

  const std::uint32_t track =
      tracer_ != nullptr ? tracer_->track("fault", label) : 0;
  for (const FaultEvent& ev : spec_.events) arm_event(link, ev, track);
}

void FaultInjector::arm_path(net::Link& forward, net::Link& reverse,
                             const std::string& label) {
  arm(forward, label + "/fwd");
  arm(reverse, label + "/rev");
}

std::uint64_t FaultInjector::messages_dropped() const {
  std::uint64_t total = 0;
  for (const net::Link* l : armed_) total += l->messages_dropped();
  return total;
}

void FaultInjector::arm_event(net::Link& link, const FaultEvent& ev,
                              std::uint32_t track) {
  const sim::TimePoint begin = sim_.now() + ev.at;
  const sim::TimePoint end = begin + ev.duration;
  // Copy the event (and a plain pointer to the link) by value into the
  // timers: the spec vector may reallocate if more links are armed later,
  // and a by-reference capture would dangle once this frame returns (C3).
  net::Link* lp = &link;
  sim_.schedule_at(begin, [this, lp, ev] {
    net::Link& link = *lp;
    ++windows_applied_;
    if (m_windows_ != nullptr) m_windows_->add(1.0);
    if (m_kind_[static_cast<int>(ev.kind)] != nullptr) {
      m_kind_[static_cast<int>(ev.kind)]->add(1.0);
    }
    switch (ev.kind) {
      case FaultKind::kOutage:
        link.fail_for(ev.duration);
        break;
      case FaultKind::kDegrade:
        link.set_degradation(ev.value);
        break;
      case FaultKind::kLatency:
        link.set_extra_latency(ev.extra);
        break;
      case FaultKind::kLoss:
        link.set_loss(ev.value);
        break;
    }
    sim::LogLine(sim::LogLevel::kDebug, sim_.now(), "fault")
        << to_string(ev.kind) << " window opens for " << ev.duration.str();
  });
  sim_.schedule_at(end, [this, lp, ev, begin, track] {
    net::Link& link = *lp;
    switch (ev.kind) {
      case FaultKind::kOutage:
        // fail_for already bounded the outage window; nothing to revert.
        break;
      case FaultKind::kDegrade:
        link.set_degradation(1.0);
        break;
      case FaultKind::kLatency:
        link.set_extra_latency(sim::Duration::zero());
        break;
      case FaultKind::kLoss:
        link.set_loss(0.0);
        break;
    }
    if (tracer_ != nullptr) {
      std::string args = "\"kind\": \"" + std::string{to_string(ev.kind)} + "\"";
      if (ev.kind == FaultKind::kDegrade || ev.kind == FaultKind::kLoss) {
        args += ", \"value\": " + std::to_string(ev.value);
      }
      tracer_->complete(track, begin, "fault_window", std::move(args));
    }
  });
}

}  // namespace vmig::fault
