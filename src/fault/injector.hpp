#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_spec.hpp"
#include "net/link.hpp"
#include "simcore/simulator.hpp"

namespace vmig::obs {
class Counter;
class Registry;
class Tracer;
}  // namespace vmig::obs

namespace vmig::fault {

/// Deterministic fault injector: arms a parsed FaultSpec onto one or more
/// links by scheduling apply/revert timers on the simulator. All windows are
/// measured from the instant of the `arm()` call, so the same spec on the
/// same scenario reproduces byte-identically.
///
/// Each armed link's loss RNG is seeded from (seed, arm index) — faults on
/// different links draw independent, reproducible loss streams.
///
/// Lifetime: the injector and every armed link must outlive the simulator
/// run (the timers reference both).
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, FaultSpec spec, std::uint64_t seed = 0);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Optional observability: `fault.windows` / per-kind window counters and
  /// a `fault.messages_dropped` probe in the registry; one complete span per
  /// fault window on a ("fault", <label>) track in the tracer. Call before
  /// arm().
  void attach_obs(obs::Registry* registry, obs::Tracer* tracer);

  /// Schedule every event in the spec on `link`; windows start counting now.
  void arm(net::Link& link, const std::string& label = "link");

  /// Arm both directions of a full-duplex path (a cable fault hits both).
  void arm_path(net::Link& forward, net::Link& reverse,
                const std::string& label = "path");

  const FaultSpec& spec() const noexcept { return spec_; }
  std::uint64_t seed() const noexcept { return seed_; }
  /// Fault windows whose start has fired so far.
  std::uint64_t windows_applied() const noexcept { return windows_applied_; }
  /// Sum of injected-loss drops across every armed link.
  std::uint64_t messages_dropped() const;

 private:
  void arm_event(net::Link& link, const FaultEvent& ev, std::uint32_t track);

  sim::Simulator& sim_;
  FaultSpec spec_;
  std::uint64_t seed_;
  std::uint64_t arm_index_ = 0;
  std::uint64_t windows_applied_ = 0;
  std::vector<net::Link*> armed_;
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_windows_ = nullptr;
  obs::Counter* m_kind_[4] = {};  ///< indexed by FaultKind
};

}  // namespace vmig::fault
