#include "hypervisor/checkpoint.hpp"

#include <string>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/recorder.hpp"

namespace vmig::hv {

using core::MemPagesMsg;
using core::MigrationMessage;

sim::Task<std::uint64_t> MemoryMigrator::send_pages(
    vm::Domain& domain, const core::BlockBitmap& pages, MigStream& stream,
    net::TokenBucket* shaper, bool final_residual, std::uint64_t* pages_sent) {
  std::uint64_t bytes = 0;
  const std::uint64_t total = pages.count_set();
  MemPagesMsg msg;
  {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    msg.page_size = domain.memory().page_size();
    msg.pages.reserve(cfg_.mem_chunk_pages);
  }

  // Walk the bitmap cursor directly instead of materializing an index
  // vector: no per-call O(set pages) allocation, same send order.
  std::uint64_t seen = 0;
  std::uint64_t pos = 0;
  while (seen < total) {
    const auto nxt = pages.next_set(pos);
    if (!nxt.has_value()) break;
    const std::uint64_t p = *nxt;
    pos = p + 1;
    ++seen;
    // Version snapshot happens at send time, like reading the live page.
    msg.pages.emplace_back(p, domain.memory().version(p));
    const bool last = seen == total;
    if (msg.pages.size() >= cfg_.mem_chunk_pages || last) {
      msg.final_residual = final_residual && last;
      if (pages_sent != nullptr) *pages_sent += msg.pages.size();
      MigrationMessage wire{std::move(msg)};
      bytes += wire.wire_bytes();
      co_await stream.send(std::move(wire), shaper);
      {
        // Refill the chunk buffer (the previous one was moved onto the
        // wire); buffer churn is charged kOther, not dispatch.
        obs::ProfScope refill_prof{obs::ProfCategory::kOther};
        msg = MemPagesMsg{};
        msg.page_size = domain.memory().page_size();
        msg.pages.reserve(cfg_.mem_chunk_pages);
      }
    }
  }
  co_return bytes;
}

sim::Task<std::uint64_t> MemoryMigrator::send_all_pages(
    vm::Domain& domain, MigStream& stream, net::TokenBucket* shaper,
    std::uint64_t* pages_sent) {
  // Round-1 all-pages bitmap: per-migration setup, charged kOther.
  const core::BlockBitmap all = [&] {
    obs::ProfScope setup_prof{obs::ProfCategory::kOther};
    return core::BlockBitmap{domain.memory().page_count(),
                             /*initially_set=*/true};
  }();
  co_return co_await send_pages(domain, all, stream, shaper,
                                /*final_residual=*/false, pages_sent);
}

sim::Task<MemoryMigrator::PrecopyResult> MemoryMigrator::precopy(
    vm::Domain& domain, MigStream& stream, net::TokenBucket* shaper) {
  PrecopyResult res;
  domain.memory().enable_dirty_log();

  // Iteration 1: every page.
  const sim::TimePoint round1_start = sim_.now();
  const std::uint64_t round1_bytes =
      co_await send_all_pages(domain, stream, shaper, &res.pages_sent);
  res.bytes_sent += round1_bytes;
  res.iterations = 1;
  std::uint64_t last_iter_pages = domain.memory().page_count();
  if (flight_ != nullptr) {
    flight_->mem_precopy_send(flight_mig_, sim_.now(), 1, last_iter_pages,
                              round1_bytes);
  }
  if (tracer_) {
    tracer_->complete(track_, round1_start, "mem_round",
                      "\"round\": 1, \"pages\": " +
                          std::to_string(last_iter_pages));
  }

  while (res.iterations < cfg_.mem_max_iterations) {
    const std::uint64_t dirty = domain.memory().dirty_page_count();
    if (dirty <= cfg_.mem_residual_target_pages) break;  // small enough: freeze
    if (static_cast<double>(dirty) >=
        static_cast<double>(last_iter_pages) * cfg_.mem_dirty_rate_abort_ratio) {
      // Dirtying as fast as we send: another round cannot shrink the set.
      res.aborted_dirty_rate = true;
      if (tracer_) {
        tracer_->instant(track_, "mem_dirty_rate_abort",
                         "\"dirty_pages\": " + std::to_string(dirty) +
                             ", \"last_iter_pages\": " +
                             std::to_string(last_iter_pages));
      }
      break;
    }
    const core::BlockBitmap snap = [&] {
      obs::ProfScope snap_prof{obs::ProfCategory::kOther};
      return domain.memory().take_dirty_and_reset();
    }();
    const sim::TimePoint round_start = sim_.now();
    std::uint64_t sent = 0;
    const std::uint64_t round_bytes =
        co_await send_pages(domain, snap, stream, shaper, false, &sent);
    res.bytes_sent += round_bytes;
    res.pages_sent += sent;
    last_iter_pages = sent;
    ++res.iterations;
    if (flight_ != nullptr) {
      flight_->mem_precopy_send(flight_mig_, sim_.now(), res.iterations, sent,
                                round_bytes);
    }
    if (tracer_) {
      tracer_->complete(track_, round_start, "mem_round",
                        "\"round\": " + std::to_string(res.iterations) +
                            ", \"pages\": " + std::to_string(sent));
    }
  }
  co_return res;
}

sim::Task<MemoryMigrator::ResidualResult> MemoryMigrator::send_residual(
    vm::Domain& domain, MigStream& stream) {
  ResidualResult res;
  const sim::TimePoint residual_start = sim_.now();
  const core::BlockBitmap snap = [&] {
    obs::ProfScope snap_prof{obs::ProfCategory::kOther};
    return domain.memory().take_dirty_and_reset();
  }();
  res.pages = snap.count_set();
  // Residual is always sent unshaped: it happens inside the downtime.
  res.pages_bytes = co_await send_pages(domain, snap, stream, /*shaper=*/nullptr,
                                        /*final_residual=*/true, nullptr);
  MigrationMessage cpu{core::CpuStateMsg{domain.cpu()}};
  res.cpu_bytes = cpu.wire_bytes();
  res.bytes = res.pages_bytes + res.cpu_bytes;
  co_await stream.send(std::move(cpu));
  domain.memory().disable_dirty_log();
  if (tracer_) {
    tracer_->complete(track_, residual_start, "mem_residual",
                      "\"pages\": " + std::to_string(res.pages));
  }
  co_return res;
}

}  // namespace vmig::hv
