#pragma once

#include <cstdint>

#include "core/migration_config.hpp"
#include "core/protocol.hpp"
#include "net/message_stream.hpp"
#include "obs/tracer.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "vm/domain.hpp"

namespace vmig::obs {
class FlightRecorder;
}  // namespace vmig::obs

namespace vmig::hv {

/// The migration data plane between two hosts.
using MigStream = net::MessageStream<core::MigrationMessage>;

/// Source-side memory checkpointing — the `xc_linux_save` half of Xen live
/// migration: iterative dirty-page pre-copy, then the frozen residual.
///
/// The destination side (applying pages into memory) is a few lines in the
/// migration receiver; the source holds all the policy (iteration bounds,
/// dirty-rate abort), so it gets the class.
class MemoryMigrator {
 public:
  struct PrecopyResult {
    int iterations = 0;
    std::uint64_t pages_sent = 0;
    std::uint64_t bytes_sent = 0;
    bool aborted_dirty_rate = false;
  };
  struct ResidualResult {
    std::uint64_t pages = 0;
    std::uint64_t bytes = 0;        ///< pages_bytes + cpu_bytes
    std::uint64_t pages_bytes = 0;  ///< residual dirty pages on the wire
    std::uint64_t cpu_bytes = 0;    ///< vCPU context message
  };

  MemoryMigrator(sim::Simulator& sim, const core::MigrationConfig& cfg)
      : sim_{sim}, cfg_{cfg} {}

  /// Optional observability: per-round "mem_round" and freeze-phase
  /// "mem_residual" spans on `track`. Null tracer disables (default).
  void set_trace(obs::Tracer* tracer, obs::TrackId track) {
    tracer_ = tracer;
    track_ = track;
  }

  /// Optional flight recorder: one `precopy_send` event per memory round.
  void set_flight(obs::FlightRecorder* rec, std::uint32_t mig) {
    flight_ = rec;
    flight_mig_ = mig;
  }

  /// Iterative pre-copy while the guest runs. Enables the dirty log and
  /// leaves it enabled (the freeze phase consumes the final residue).
  sim::Task<PrecopyResult> precopy(vm::Domain& domain, MigStream& stream,
                                   net::TokenBucket* shaper);

  /// Freeze-phase transfer: remaining dirty pages + vCPU context.
  /// The domain must already be suspended. Disables the dirty log.
  sim::Task<ResidualResult> send_residual(vm::Domain& domain, MigStream& stream);

 private:
  /// Send the pages set in `pages` in config-sized chunks; returns bytes.
  sim::Task<std::uint64_t> send_pages(vm::Domain& domain,
                                      const core::BlockBitmap& pages,
                                      MigStream& stream, net::TokenBucket* shaper,
                                      bool final_residual,
                                      std::uint64_t* pages_sent);
  /// Send every page of the domain (first iteration).
  sim::Task<std::uint64_t> send_all_pages(vm::Domain& domain, MigStream& stream,
                                          net::TokenBucket* shaper,
                                          std::uint64_t* pages_sent);

  sim::Simulator& sim_;
  const core::MigrationConfig& cfg_;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint32_t flight_mig_ = 0;
};

}  // namespace vmig::hv
