#include "hypervisor/host.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmig::hv {

Host::Host(sim::Simulator& sim, std::string name, storage::Geometry vbd_geometry,
           storage::DiskModelParams disk_params, bool store_payloads)
    : sim_{sim},
      name_{std::move(name)},
      store_payloads_{store_payloads},
      physical_{sim, storage::DiskModel{disk_params}},
      disk_{sim, vbd_geometry, physical_, store_payloads} {}

storage::VirtualDisk& Host::vbd_for(vm::DomainId domain) {
  if (disk_owner_ == domain) return disk_;
  for (auto& [id, vbd] : extra_vbds_) {
    if (id == domain) return *vbd;
  }
  // First domain claims the primary VBD; later ones get their own slice of
  // the physical disk.
  if (disk_owner_ == vm::kDomain0) {
    disk_owner_ = domain;
    return disk_;
  }
  extra_vbds_.emplace_back(
      domain, std::make_unique<storage::VirtualDisk>(
                  sim_, disk_.geometry(), physical_, store_payloads_));
  return *extra_vbds_.back().second;
}

vm::BlkBackend* Host::ensure_default_backend() {
  if (backends_.empty()) {
    backends_.push_back(
        std::make_unique<vm::BlkBackend>(sim_, disk_, vm::kDomain0));
  }
  return backends_.front().get();
}

vm::BlkBackend* Host::find_backend(vm::DomainId domain) {
  for (auto& be : backends_) {
    if (be->served_domain() == domain) return be.get();
  }
  return nullptr;
}

vm::BlkBackend& Host::backend_for(vm::DomainId domain) {
  if (auto* be = find_backend(domain)) return *be;
  storage::VirtualDisk& vbd = vbd_for(domain);
  // Claim an unassigned default backend if it is bound to this VBD;
  // otherwise create a fresh per-VBD backend.
  if (!backends_.empty() && backends_.front()->served_domain() == vm::kDomain0 &&
      &backends_.front()->disk() == &vbd) {
    backends_.front()->set_served(domain);
    return *backends_.front();
  }
  backends_.push_back(std::make_unique<vm::BlkBackend>(sim_, vbd, domain));
  return *backends_.back();
}

void Host::attach_domain(vm::Domain& d) {
  domains_.push_back(&d);
  d.frontend().connect(&backend_for(d.id()));
}

void Host::detach_domain(vm::Domain& d) {
  std::erase(domains_, &d);
  auto* be = find_backend(d.id());
  if (be != nullptr && d.frontend().backend() == be) d.frontend().disconnect();
}

bool Host::hosts_domain(const vm::Domain& d) const {
  return std::find(domains_.begin(), domains_.end(), &d) != domains_.end();
}

net::Link& Host::materialize_link(const Host& peer, net::LinkParams params) {
  auto& slot = links_[&peer];
  slot = std::make_unique<net::Link>(sim_, params);
  // Conservative cross-shard synchronization: the delivery event of every
  // transmission on this link is filed into the receiving host's shard.
  slot->set_delivery_shard(peer.shard());
  if (link_created_) link_created_(*slot, peer);
  return *slot;
}

net::Link& Host::connect_to(Host& peer, net::LinkParams params) {
  return materialize_link(peer, params);
}

net::Link& Host::link_to(const Host& peer) {
  const auto it = links_.find(&peer);
  if (it != links_.end()) return *it->second;
  if (mesh_oracle_ && mesh_oracle_(peer)) {
    return materialize_link(peer, mesh_params_);
  }
  throw std::out_of_range("Host '" + name_ + "' has no link to '" +
                          peer.name() + "'");
}

bool Host::connected_to(const Host& peer) const {
  if (links_.contains(&peer)) return true;
  return mesh_oracle_ && &peer != this && mesh_oracle_(peer);
}

void Host::interconnect(Host& a, Host& b, net::LinkParams params) {
  a.connect_to(b, params);
  b.connect_to(a, params);
}

}  // namespace vmig::hv
