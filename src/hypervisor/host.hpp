#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "simcore/simulator.hpp"
#include "storage/virtual_disk.hpp"
#include "vm/blk_backend.hpp"
#include "vm/domain.hpp"

namespace vmig::hv {

/// A physical machine: local disk, the Domain0 block backend serving the
/// guest's VBD, resident domains, and NICs (directed links to peers).
///
/// Matches the paper's testbed shape: each host runs Domain0 plus at most a
/// handful of DomainUs whose VBDs live on the host's local SATA disk.
class Host {
 public:
  Host(sim::Simulator& sim, std::string name, storage::Geometry vbd_geometry,
       storage::DiskModelParams disk_params = {}, bool store_payloads = false);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const noexcept { return name_; }
  sim::Simulator& sim() noexcept { return sim_; }

  /// The host's primary VBD (first domain's virtual disk). Additional
  /// DomUs get their own VBDs — see vbd_for() — all sharing this host's
  /// one physical disk, so they contend for its time but have independent
  /// block spaces (as Xen VBD files on one spindle do).
  storage::VirtualDisk& disk() noexcept { return disk_; }
  const storage::VirtualDisk& disk() const noexcept { return disk_; }

  /// The VBD backing `domain`'s storage on this host. Created lazily with
  /// the host's geometry; persists across detach/attach (the IM base image
  /// and tracking bitmap live exactly as long as the VBD does).
  storage::VirtualDisk& vbd_for(vm::DomainId domain);

  /// The host's primary block backend (first VBD). Hosts serving several
  /// DomUs have one backend per domain — see backend_for().
  vm::BlkBackend& backend() noexcept { return *ensure_default_backend(); }
  const vm::BlkBackend& backend() const noexcept {
    return *const_cast<Host*>(this)->ensure_default_backend();
  }

  /// The backend serving `domain` (per-VBD split driver instance). The
  /// backend persists across detach/attach cycles, which is what keeps the
  /// IM tracking bitmap alive while the VM is away. Creates one on demand.
  vm::BlkBackend& backend_for(vm::DomainId domain);
  /// Null if this host never served `domain`.
  vm::BlkBackend* find_backend(vm::DomainId domain);

  // ---- Domain placement ----

  /// Place a domain on this host and connect its disk frontend to the local
  /// backend. (At migration resume time, this is the frontend rebind.)
  void attach_domain(vm::Domain& d);
  void detach_domain(vm::Domain& d);
  bool hosts_domain(const vm::Domain& d) const;
  const std::vector<vm::Domain*>& domains() const noexcept { return domains_; }

  // ---- Networking ----

  /// Create the directed link this -> peer.
  net::Link& connect_to(Host& peer, net::LinkParams params = {});
  /// Directed link to peer. Materializes the link from the lazy mesh if an
  /// oracle admits the peer; throws std::out_of_range otherwise.
  net::Link& link_to(const Host& peer);
  bool connected_to(const Host& peer) const;
  /// The directed link to `peer` if it has been materialized; null otherwise.
  /// Never materializes — the lazy-safe query for sweeps like obs attach.
  net::Link* find_link(const Host& peer) const {
    const auto it = links_.find(&peer);
    return it != links_.end() ? it->second.get() : nullptr;
  }

  /// Create both directions between a and b with the same parameters.
  static void interconnect(Host& a, Host& b, net::LinkParams params = {});

  /// Declare a *lazy mesh*: this host is considered connected to every peer
  /// the oracle admits, but the directed Link object is only materialized on
  /// first `link_to` — a 10k-host full mesh never allocates its 10^8 links.
  /// Admission is observable through `connected_to`, which is what keeps
  /// placement logic (cluster::EvacuationPlanner) oblivious to laziness.
  void set_lazy_mesh(std::function<bool(const Host&)> oracle,
                     net::LinkParams params) {
    mesh_oracle_ = std::move(oracle);
    mesh_params_ = params;
  }
  /// Observer for every link this host materializes (eager or lazy); the
  /// testbed uses it to attach obs instruments to lazily-created links.
  void set_link_created_hook(std::function<void(net::Link&, const Host&)> fn) {
    link_created_ = std::move(fn);
  }

  // ---- Sharded scheduling ----

  /// Calendar shard this host's events belong to (see Simulator shards).
  /// Links created after this point file their delivery events into the
  /// *peer's* shard — the conservative handoff at the link boundary.
  void set_shard(std::uint32_t s) noexcept { shard_ = s; }
  std::uint32_t shard() const noexcept { return shard_; }

 private:
  net::Link& materialize_link(const Host& peer, net::LinkParams params);
  vm::BlkBackend* ensure_default_backend();

  sim::Simulator& sim_;
  std::string name_;
  bool store_payloads_;
  /// The physical disk (shared service time for every VBD on this host).
  storage::DiskScheduler physical_;
  storage::VirtualDisk disk_;  ///< primary VBD, on the physical disk
  vm::DomainId disk_owner_ = vm::kDomain0;  ///< domain the primary VBD serves
  /// Additional per-domain VBDs, created lazily, never destroyed.
  std::vector<std::pair<vm::DomainId, std::unique_ptr<storage::VirtualDisk>>>
      extra_vbds_;
  /// One backend per served DomU, created lazily; index 0 is the default.
  std::vector<std::unique_ptr<vm::BlkBackend>> backends_;
  std::vector<vm::Domain*> domains_;
  std::unordered_map<const Host*, std::unique_ptr<net::Link>> links_;
  std::function<bool(const Host&)> mesh_oracle_;  ///< lazy-mesh admission
  net::LinkParams mesh_params_{};                 ///< params for lazy links
  std::function<void(net::Link&, const Host&)> link_created_;
  std::uint32_t shard_ = 0;
};

}  // namespace vmig::hv
