#include "net/link.hpp"

#include "obs/metrics.hpp"

namespace vmig::net {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

sim::Task<void> TokenBucket::acquire(std::uint64_t bytes) {
  if (unlimited()) co_return;
  const double rate_bps = rate_mibps_ * kMiB;
  const auto cost = sim::Duration::from_seconds(static_cast<double>(bytes) / rate_bps);
  const auto burst_window =
      sim::Duration::from_seconds(burst_mib_ * kMiB / rate_bps);
  // Virtual-clock shaping: reserved_until_ tracks when all conforming bytes
  // so far would finish at the shaped rate. Idle time earns credit up to one
  // burst window, and a sender may run up to one burst window ahead.
  const sim::TimePoint floor = sim_.now() - burst_window;
  if (reserved_until_ < floor) reserved_until_ = floor;
  reserved_until_ += cost;
  const sim::TimePoint release = reserved_until_ - burst_window;
  if (release > sim_.now()) {
    co_await sim_.delay(release - sim_.now());
  }
}

sim::Task<void> Link::transmit(std::uint64_t bytes, TokenBucket* shaper) {
  if (shaper != nullptr) co_await shaper->acquire(bytes);
  const sim::TimePoint arrival = sim_.now();
  const auto serialize = sim::Duration::from_seconds(
      static_cast<double>(bytes) / (p_.bandwidth_mibps * degrade_factor_ * kMiB));
  sim::TimePoint start = std::max(arrival, busy_until_);
  // An injected outage stalls the wire: nothing serializes inside the
  // window. Queued transmissions are retransmitted when it lifts rather
  // than lost (the MessageStream above models a reliable transport).
  if (start >= down_from_ && start < down_until_) start = down_until_;
  busy_until_ = start + serialize;
  busy_time_ += serialize;
  bytes_sent_ += bytes;
  ++messages_sent_;
  if (obs_bytes_ != nullptr) obs_bytes_->add(static_cast<double>(bytes));
  if (obs_msgs_ != nullptr) obs_msgs_->add(1.0);
  const sim::TimePoint delivered = busy_until_ + p_.latency + extra_latency_;
  if (delivery_shard_ == sim::DelayAwaiter::kInheritShard) {
    co_await sim_.delay(delivered - arrival);
  } else {
    // Cross-shard handoff: the arrival fires in the receiver's shard, so
    // the continuation (receiver-side processing) schedules there too.
    co_await sim_.delay_on(delivery_shard_, delivered - arrival);
  }
}

double Link::utilization() const {
  const auto elapsed = sim_.now() - sim::TimePoint::origin();
  if (elapsed <= sim::Duration::zero()) return 0.0;
  return std::min(1.0, busy_time_ / elapsed);
}

std::uint64_t Link::backlog_bytes() const {
  const sim::TimePoint now = sim_.now();
  if (busy_until_ <= now) return 0;
  return static_cast<std::uint64_t>((busy_until_ - now).to_seconds() *
                                    p_.bandwidth_mibps * kMiB);
}

void Link::attach_obs(obs::Registry& registry, const std::string& prefix) {
  obs_bytes_ = &registry.counter(prefix + ".bytes");
  obs_msgs_ = &registry.counter(prefix + ".messages");
  registry.probe(prefix + ".utilization", [this] { return utilization(); });
  registry.probe(prefix + ".backlog_bytes", [this] {
    return static_cast<double>(backlog_bytes());
  });
}

}  // namespace vmig::net
