#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/stats.hpp"
#include "simcore/task.hpp"

namespace vmig::obs {
class Counter;
class Registry;
}  // namespace vmig::obs

namespace vmig::net {

/// One direction of a network path (full-duplex = two links).
///
/// Defaults model the paper's Gigabit LAN: ~119 MiB/s of payload bandwidth
/// and sub-millisecond latency.
struct LinkParams {
  double bandwidth_mibps = 119.0;          ///< payload bandwidth, MiB/s
  sim::Duration latency = sim::Duration::micros(200);  ///< propagation + stack
};

/// Token-bucket traffic shaper (virtual-clock pacing).
///
/// Used to rate-limit the migration stream (paper §VI-C-3): limiting network
/// send rate correspondingly throttles the disk reads feeding it, giving the
/// guest its disk bandwidth back at the cost of a longer pre-copy.
class TokenBucket {
 public:
  /// rate_mibps <= 0 means unlimited.
  TokenBucket(sim::Simulator& sim, double rate_mibps, double burst_mib = 1.0)
      : sim_{sim}, rate_mibps_{rate_mibps}, burst_mib_{burst_mib} {}

  bool unlimited() const noexcept { return rate_mibps_ <= 0; }
  double rate_mibps() const noexcept { return rate_mibps_; }
  void set_rate_mibps(double r) noexcept { rate_mibps_ = r; }

  /// Wait until `bytes` conform to the shaping rate.
  sim::Task<void> acquire(std::uint64_t bytes);

 private:
  sim::Simulator& sim_;
  double rate_mibps_;
  double burst_mib_;
  sim::TimePoint reserved_until_{};
};

/// FIFO serializing link: transmissions queue behind each other at the
/// bandwidth, then arrive after the propagation latency.
class Link {
 public:
  Link(sim::Simulator& sim, LinkParams params = {}) : sim_{sim}, p_{params} {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  const LinkParams& params() const noexcept { return p_; }

  /// Transmit `bytes`; resumes the caller when the last byte has arrived at
  /// the far end. If `shaper` is non-null, bytes first conform to it.
  sim::Task<void> transmit(std::uint64_t bytes, TokenBucket* shaper = nullptr);

  /// File every delivery event (the wake-up at arrival time) into `shard` —
  /// the receiving host's calendar shard. The conservative link-boundary
  /// handoff of the sharded scheduler: everything the receiver does after
  /// delivery inherits its own shard. Default (kInheritShard) keeps the
  /// delivery in the sender's current shard.
  void set_delivery_shard(std::uint32_t shard) noexcept {
    delivery_shard_ = shard;
  }
  std::uint32_t delivery_shard() const noexcept { return delivery_shard_; }

  // ---- Failure injection ----
  /// Declare the link down for `d` starting now. Transmissions submitted (or
  /// queued) during the outage are NOT lost — the transport retransmits, so
  /// they serialize after the outage ends — but `down()` lets cooperating
  /// protocols (the TPM pre-copy loop, the cluster orchestrator) notice the
  /// outage at a chunk boundary and abort cleanly instead of stalling.
  void fail_for(sim::Duration d) { fail_at(sim_.now(), d); }
  /// Declare an outage window [at, at+d). A later call replaces the window.
  void fail_at(sim::TimePoint at, sim::Duration d) {
    down_from_ = at;
    down_until_ = at + d;
    ++outages_injected_;
  }
  /// True while inside an injected outage window.
  bool down() const noexcept {
    return sim_.now() >= down_from_ && sim_.now() < down_until_;
  }
  /// True if an outage window overlaps [since, now] — a connection-oriented
  /// transport opened at `since` would have seen its connection break, even
  /// if the link is back up by the time anyone checks.
  bool disrupted_since(sim::TimePoint since) const noexcept {
    return down_from_ <= sim_.now() && down_until_ > since;
  }
  std::uint64_t outages_injected() const noexcept { return outages_injected_; }

  // ---- Degradation injection (src/fault drives these) ----
  /// Scale the effective bandwidth by `factor` (clamped to a small positive
  /// floor); 1.0 restores nominal. Applies to transmissions that *start*
  /// while the factor is set — the serialize time is computed at wire entry,
  /// as a path's ABR would be.
  void set_degradation(double factor) {
    degrade_factor_ = std::max(factor, 1e-6);
  }
  double degradation() const noexcept { return degrade_factor_; }
  /// Extra one-way latency added on top of the configured propagation delay
  /// (congestion / reroute modeling); zero restores nominal.
  void set_extra_latency(sim::Duration d) { extra_latency_ = d; }
  sim::Duration extra_latency() const noexcept { return extra_latency_; }

  // ---- Message-loss injection ----
  /// Probability in [0,1] that a drop-eligible message is lost after paying
  /// its wire cost. Only messages a MessageStream's drop policy marks
  /// eligible ever roll — the streams stay reliable-by-default, modeling a
  /// lossy datagram path only where a protocol opts in (post-copy data).
  void set_loss(double p) { loss_prob_ = std::clamp(p, 0.0, 1.0); }
  double loss_probability() const noexcept { return loss_prob_; }
  bool lossy() const noexcept { return loss_prob_ > 0.0; }
  /// Reseed the loss RNG; each armed link gets an independent stream.
  void seed_loss(std::uint64_t seed) { loss_rng_.reseed(seed); }
  /// Roll one loss decision (advances the seeded RNG). Callers must only
  /// roll for drop-eligible messages so ineligible traffic does not perturb
  /// the stream.
  bool roll_drop() {
    if (!lossy()) return false;
    ++loss_rolls_;
    if (!loss_rng_.bernoulli(loss_prob_)) return false;
    ++messages_dropped_;
    return true;
  }
  std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }
  std::uint64_t loss_rolls() const noexcept { return loss_rolls_; }

  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  sim::Duration busy_time() const noexcept { return busy_time_; }
  double utilization() const;
  /// Bytes queued or serializing right now (accepted but not yet on the
  /// wire's far end) — the in-flight backlog the obs gauge reports.
  std::uint64_t backlog_bytes() const;

  /// Register this link's instruments under `prefix` ("net.source_to_dest"):
  /// a bytes counter, a messages counter, and utilization/backlog probes.
  /// The link must outlive the registry's sampling.
  void attach_obs(obs::Registry& registry, const std::string& prefix);

 private:
  sim::Simulator& sim_;
  LinkParams p_;
  std::uint32_t delivery_shard_ = sim::DelayAwaiter::kInheritShard;
  sim::TimePoint busy_until_{};
  sim::TimePoint down_from_ = sim::TimePoint::max();  ///< outage window start
  sim::TimePoint down_until_{};                       ///< outage window end
  std::uint64_t outages_injected_ = 0;
  double degrade_factor_ = 1.0;        ///< bandwidth multiplier (fault model)
  sim::Duration extra_latency_{};      ///< added propagation (fault model)
  double loss_prob_ = 0.0;             ///< drop-eligible message loss prob
  sim::Rng loss_rng_{};                ///< seeded per-link loss stream
  std::uint64_t loss_rolls_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  sim::Duration busy_time_{};
  obs::Counter* obs_bytes_ = nullptr;  ///< null = observability disabled
  obs::Counter* obs_msgs_ = nullptr;
};

}  // namespace vmig::net
