#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "net/link.hpp"
#include "simcore/channel.hpp"
#include "simcore/task.hpp"

namespace vmig::net {

/// A message that knows its size on the wire.
template <typename M>
concept WireMessage = requires(const M& m) {
  { m.wire_bytes() } -> std::convertible_to<std::uint64_t>;
};

/// Reliable, ordered, typed message pipe over a `Link` (a TCP connection, at
/// the level of abstraction migration daemons care about).
///
/// `send` pays the link's serialization + latency cost for the message's
/// wire size, then delivers the message into the receiver's inbox. Multiple
/// concurrent senders serialize FIFO on the underlying link.
template <WireMessage M>
class MessageStream {
  // See sim::Channel: GCC 12 double-destroys elided aggregate coroutine
  // arguments; message types must not be aggregates with non-trivial members.
  static_assert(std::is_trivially_destructible_v<M> || !std::is_aggregate_v<M>,
                "give M a user-declared constructor (GCC 12 coroutine "
                "parameter double-destruction workaround)");

 public:
  MessageStream(sim::Simulator& sim, Link& link) : link_{link}, inbox_{sim} {}

  MessageStream(const MessageStream&) = delete;
  MessageStream& operator=(const MessageStream&) = delete;

  /// Observe every message offered to the wire (before transmission); the
  /// migration engine uses this for per-message-type byte accounting. Null
  /// (the default) costs one branch per send.
  void set_send_observer(std::function<void(const M&)> fn) {
    send_observer_ = std::move(fn);
  }

  /// Opt selected messages into the link's loss model: when the link is
  /// lossy and the policy returns true for a message, one seeded loss roll
  /// decides whether it vanishes after paying its wire cost. Messages the
  /// policy rejects (and all messages under a null policy) stay reliable —
  /// the stream is TCP unless a protocol explicitly marks datagram-like
  /// traffic (the TPM marks only post-copy data and pull requests).
  void set_drop_policy(std::function<bool(const M&)> fn) {
    drop_policy_ = std::move(fn);
  }

  /// Transmit and deliver. Returns false if the stream was closed.
  sim::Task<bool> send(M msg, TokenBucket* shaper = nullptr) {
    if (inbox_.closed()) co_return false;
    if (send_observer_) send_observer_(msg);
    co_await link_.transmit(msg.wire_bytes(), shaper);
    if (inbox_.closed()) co_return false;
    if (link_.lossy() && drop_policy_ && drop_policy_(msg) &&
        link_.roll_drop()) {
      // Lost on the wire; the sender cannot tell (a datagram send returns
      // success). Recovery is the receiver's job (timeouts + re-pull).
      ++dropped_;
      co_return true;
    }
    ++delivered_;
    inbox_.try_send(std::move(msg));
    co_return true;
  }

  /// Receive the next message (nullopt once closed and drained).
  sim::Task<std::optional<M>> recv() { return inbox_.recv(); }

  std::optional<M> try_recv() { return inbox_.try_recv(); }

  void close() { inbox_.close(); }
  bool closed() const noexcept { return inbox_.closed(); }
  std::size_t pending() const noexcept { return inbox_.size(); }
  std::uint64_t delivered() const noexcept { return delivered_; }
  /// Messages lost to the link's injected loss model.
  std::uint64_t dropped() const noexcept { return dropped_; }
  Link& link() noexcept { return link_; }
  const Link& link() const noexcept { return link_; }

 private:
  Link& link_;
  sim::Channel<M> inbox_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::function<void(const M&)> send_observer_;
  std::function<bool(const M&)> drop_policy_;
};

}  // namespace vmig::net
