#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

#include "simcore/log.hpp"

namespace vmig::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Trace-event timestamps are microseconds; three decimals keep full
/// nanosecond resolution.
std::string us(sim::TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t.ns()) / 1000.0);
  return buf;
}

std::string us(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(d.ns()) / 1000.0);
  return buf;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  // pid = 1 + rank of the process name in lexicographic order — a pure
  // function of the *set* of process names, independent of both track
  // registration order and any hash-map layout, so exports stay
  // byte-identical run to run. tid = 1 + track id (globally unique, which
  // Perfetto accepts and keeps thread names stable).
  std::vector<std::string> procs;
  procs.reserve(tracer.tracks().size());
  for (const auto& tk : tracer.tracks()) procs.push_back(tk.process);
  std::sort(procs.begin(), procs.end());
  procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  std::map<std::string, int> pid_of;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    pid_of[procs[i]] = static_cast<int>(i) + 1;
  }
  std::vector<int> track_pid(tracer.tracks().size(), 1);
  for (std::size_t i = 0; i < tracer.tracks().size(); ++i) {
    track_pid[i] = pid_of[tracer.tracks()[i].process];
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += line;
  };

  // Metadata: process names in pid order, then thread names per track.
  for (std::size_t i = 0; i < procs.size(); ++i) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(i + 1) + ",\"tid\":0,\"args\":{\"name\":\"" +
         escape(procs[i]) + "\"}}");
  }
  for (std::size_t i = 0; i < tracer.tracks().size(); ++i) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(track_pid[i]) + ",\"tid\":" + std::to_string(i + 1) +
         ",\"args\":{\"name\":\"" + escape(tracer.tracks()[i].thread) + "\"}}");
  }

  for (const auto& e : tracer.snapshot()) {
    const int pid = e.track < track_pid.size() ? track_pid[e.track] : 1;
    std::string line = "{\"name\":\"" + escape(e.name) +
                       "\",\"cat\":\"vmig\",\"ph\":\"" +
                       (e.instant ? "i" : "X") + "\",\"pid\":" +
                       std::to_string(pid) + ",\"tid\":" +
                       std::to_string(e.track + 1) + ",\"ts\":" + us(e.start);
    if (e.instant) {
      line += ",\"s\":\"t\"";
    } else {
      line += ",\"dur\":" + us(e.dur);
    }
    if (!e.args.empty()) line += ",\"args\":{" + e.args + "}";
    line += "}";
    emit(line);
  }

  out += "\n]}\n";
  return out;
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  os << chrome_trace_json(tracer);
}

std::string timeline_text(const Tracer& tracer) {
  auto events = tracer.snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const Tracer::Event& a, const Tracer::Event& b) {
                     return a.start < b.start;
                   });
  std::string out;
  if (tracer.dropped() > 0) {
    out += "# ring buffer wrapped: " + std::to_string(tracer.dropped()) +
           " oldest events dropped\n";
  }
  for (const auto& e : events) {
    out += sim::Log::stamp(e.start);
    const auto& tk = tracer.tracks()[e.track];
    out += " " + tk.process + "/" + tk.thread + " ";
    if (e.instant) {
      out += "* " + e.name;
    } else {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%s (%.3f ms)", e.name.c_str(),
                    e.dur.to_millis());
      out += buf;
    }
    if (!e.args.empty()) out += "  {" + e.args + "}";
    out += "\n";
  }
  return out;
}

void write_timeline(std::ostream& os, const Tracer& tracer) {
  os << timeline_text(tracer);
}

}  // namespace vmig::obs
