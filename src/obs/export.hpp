#pragma once

#include <iosfwd>
#include <string>

#include "obs/tracer.hpp"

namespace vmig::obs {

/// Render the tracer's contents as Chrome trace-event JSON (the
/// "traceEvents" array format), loadable in chrome://tracing and Perfetto
/// (ui.perfetto.dev). One trace "process" per host, one "thread" per
/// component; spans become "X" (complete) events, instants become "i".
///
/// Output depends only on recorded sim-time events, so deterministic runs
/// export byte-identical files.
std::string chrome_trace_json(const Tracer& tracer);
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Human-readable dump: one line per event, sorted by start time, with the
/// same "[  12.3456s]" timestamps sim::Log emits so log lines and trace
/// events correlate textually.
std::string timeline_text(const Tracer& tracer);
void write_timeline(std::ostream& os, const Tracer& tracer);

}  // namespace vmig::obs
