#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vmig::obs {

// ------------------------------ Histogram ------------------------------

int Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN all land in bucket 0
  const int e = std::ilogb(v);
  if (e < kMinExp) return 0;
  if (e >= kMinExp + kBuckets) return kBuckets - 1;
  return e - kMinExp;
}

void Histogram::observe(double v) noexcept {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double rank = q * static_cast<double>(count_);
  double cum = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double next = cum + static_cast<double>(buckets_[b]);
    if (next >= rank) {
      const double lo = std::ldexp(1.0, b + kMinExp);
      const double hi = std::ldexp(1.0, b + 1 + kMinExp);
      const double frac = (rank - cum) / static_cast<double>(buckets_[b]);
      double v = lo + (hi - lo) * frac;
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
    cum = next;
  }
  return max_;
}

std::string Histogram::str() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%zu sum=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g", count_,
                sum(), quantile(0.5), quantile(0.95), quantile(0.99), max());
  return buf;
}

// ------------------------------ Registry -------------------------------

Registry::Entry& Registry::entry(const std::string& name, Kind kind) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = *entries_[it->second];
    if (e.kind != kind) {
      throw std::logic_error("obs: instrument '" + name +
                             "' re-registered with a different kind");
    }
    return e;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = kind;
  if (kind == Kind::kHistogram) e->histogram = std::make_unique<Histogram>();
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  return entry(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return entry(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return *entry(name, Kind::kHistogram).histogram;
}

void Registry::probe(const std::string& name, std::function<double()> fn) {
  entry(name, Kind::kProbe).fn = std::move(fn);
}

void Registry::alias(const std::string& alias_name, const std::string& canonical) {
  const auto it = index_.find(canonical);
  if (it == index_.end()) {
    throw std::logic_error("obs: alias target '" + canonical +
                           "' is not registered");
  }
  const std::size_t target = it->second;  // entry() below may rehash index_
  entry(alias_name, Kind::kAlias).target = target;
}

void Registry::sample_now() {
  const sim::TimePoint t = sim_.now();
  const double dt = sampled_once_ ? (t - last_sample_).to_seconds() : 0.0;
  for (auto& ep : entries_) {
    Entry& e = *ep;
    switch (e.kind) {
      case Kind::kCounter: {
        const double total = e.counter.value();
        // First sample (or a zero-width window) reports 0 rather than an
        // infinite rate.
        const double rate = dt > 0.0 ? (total - e.last_total) / dt : 0.0;
        e.last_total = total;
        e.samples.add(t, rate);
        break;
      }
      case Kind::kGauge:
        e.samples.add(t, e.gauge.value());
        break;
      case Kind::kProbe:
        e.samples.add(t, e.fn ? e.fn() : 0.0);
        break;
      case Kind::kHistogram:
        break;
      case Kind::kAlias: {
        // Mirror the canonical instrument with the target kind's sampling
        // semantics; counters diff against the alias's own last_total so
        // sampling order never matters.
        const Entry& c = *entries_[e.target];
        switch (c.kind) {
          case Kind::kCounter: {
            const double total = c.counter.value();
            const double rate = dt > 0.0 ? (total - e.last_total) / dt : 0.0;
            e.last_total = total;
            e.samples.add(t, rate);
            break;
          }
          case Kind::kGauge:
            e.samples.add(t, c.gauge.value());
            break;
          case Kind::kHistogram:
            break;  // histograms export summaries, never series samples
          default:
            e.samples.add(t, c.fn ? c.fn() : 0.0);
            break;
        }
        break;
      }
    }
  }
  last_sample_ = t;
  sampled_once_ = true;
}

void Registry::tick() {
  sim_.note_observer_tick_fired();
  sample_now();
  // Park when nothing but observer ticks is pending: a migration experiment
  // drives the queue until it completes; rescheduling unconditionally would
  // keep Simulator::run spinning forever, and counting other observers'
  // ticks as work would let two samplers (e.g. this and an obs::Rollup)
  // keep each other alive the same way.
  if (sim_.pending_count() > sim_.observer_ticks()) {
    sim_.note_observer_tick_armed();
    sim_.schedule_after(interval_, [this] { tick(); });
  } else {
    sampling_ = false;
  }
}

void Registry::start_sampling() {
  if (interval_.ns() <= 0) {
    // A non-positive interval would re-arm the tick at the current instant
    // forever and wedge Simulator::run.
    throw std::invalid_argument("obs: sample interval must be positive");
  }
  if (sampling_) return;
  sampling_ = true;
  sample_now();
  sim_.note_observer_tick_armed();
  sim_.schedule_after(interval_, [this] { tick(); });
}

std::vector<Registry::Series> Registry::series() const {
  std::vector<Series> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (e->kind == Kind::kHistogram) continue;
    if (e->kind == Kind::kAlias &&
        entries_[e->target]->kind == Kind::kHistogram) {
      continue;  // surfaced through histograms() instead
    }
    out.push_back(Series{e->name, &e->samples});
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const auto& e : entries_) {
    if (e->kind == Kind::kHistogram) {
      out.emplace_back(e->name, e->histogram.get());
    } else if (e->kind == Kind::kAlias &&
               entries_[e->target]->kind == Kind::kHistogram) {
      out.emplace_back(e->name, entries_[e->target]->histogram.get());
    }
  }
  return out;
}

}  // namespace vmig::obs
