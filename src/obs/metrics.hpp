#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/simulator.hpp"
#include "simcore/stats.hpp"
#include "simcore/time.hpp"

namespace vmig::obs {

/// Monotonic sum. Holders keep a `Counter*` that is null when observability
/// is disabled, so the hot-path cost of an uninstrumented run is one branch.
class Counter {
 public:
  void add(double v = 1.0) noexcept { total_ += v; }
  double value() const noexcept { return total_; }

 private:
  double total_ = 0.0;
};

/// Last-value instrument (queue lengths, utilization, backlog).
class Gauge {
 public:
  void set(double v) noexcept { v_ = v; }
  void add(double d) noexcept { v_ += d; }
  double value() const noexcept { return v_; }

 private:
  double v_ = 0.0;
};

/// Power-of-two-bucketed histogram over non-negative doubles (stall times in
/// nanoseconds, chunk sizes, ...). Sum/count/min/max are exact; quantiles
/// interpolate within a bucket and are clamped to [min, max], so a
/// single-valued distribution reports that value at every quantile.
class Histogram {
 public:
  void observe(double v) noexcept;

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  /// Approximate quantile, q in [0, 1].
  double quantile(double q) const noexcept;

  /// "n=1000 sum=5e5 p50=480 p95=960 p99=1000 max=1000"
  std::string str() const;

 private:
  // Bucket b covers [2^(b+kMinExp), 2^(b+1+kMinExp)); bucket 0 also absorbs
  // zero and subnormal values. 128 buckets over 2^-32..2^96 cover every unit
  // this library records (ns, bytes, blocks) with <2x quantile error.
  static constexpr int kBuckets = 128;
  static constexpr int kMinExp = -32;
  static int bucket_of(double v) noexcept;

  std::uint64_t buckets_[kBuckets] = {};
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Named-instrument registry, sampled on a sim-time cadence into
/// `sim::TimeSeries` (the raw data behind --metrics CSV output).
///
/// Instruments are created on first request and live as long as the
/// registry; returned references are stable. Sampling semantics:
///   - counters  -> rate since the previous sample (units/second),
///   - gauges    -> current value,
///   - probes    -> callback value (pull-style gauge for objects that should
///                  not depend on obs, e.g. the simulator's queue length),
///   - histograms are never sampled into series (summaries only).
///
/// The sampler is a self-rescheduling sim timer that parks itself when the
/// event queue drains, so an attached registry never keeps `Simulator::run`
/// alive on its own.
class Registry {
 public:
  explicit Registry(sim::Simulator& sim,
                    sim::Duration sample_interval = sim::Duration::seconds(1))
      : sim_{sim}, interval_{sample_interval} {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Register a pull-style gauge: `fn` is evaluated at each sample tick.
  void probe(const std::string& name, std::function<double()> fn);
  /// Register `alias_name` as a second exported name for an existing
  /// instrument: each sample tick records the canonical counter/gauge/probe
  /// value under both names (counters keep independent rate state, so both
  /// series report identical rates), and histogram aliases surface the
  /// canonical histogram under both names in `histograms()`. For metric
  /// renames — the old name keeps working for downstream consumers while
  /// docs point at the new one. Throws if `canonical` is unknown.
  void alias(const std::string& alias_name, const std::string& canonical);

  void set_sample_interval(sim::Duration d) noexcept { interval_ = d; }
  sim::Duration sample_interval() const noexcept { return interval_; }
  /// Sim time of the most recent sample (origin before the first one) —
  /// the timestamp exporters stamp on end-of-run summary rows.
  sim::TimePoint last_sample_time() const noexcept { return last_sample_; }

  /// Take one sample immediately and schedule periodic sampling.
  void start_sampling();
  bool sampling() const noexcept { return sampling_; }
  /// Record one sample of every samplable instrument at sim.now().
  void sample_now();

  struct Series {
    std::string name;
    const sim::TimeSeries* data;
  };
  /// Sampled series in registration order (deterministic export order).
  std::vector<Series> series() const;

  /// Named histograms in registration order, for summary dumps.
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  std::size_t instrument_count() const noexcept { return entries_.size(); }
  sim::Simulator& sim() noexcept { return sim_; }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kProbe, kHistogram, kAlias };
  struct Entry {
    std::string name;
    Kind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;
    double last_total = 0.0;  ///< counter value at the previous sample
    std::size_t target = 0;   ///< canonical entry index (kAlias only)
    sim::TimeSeries samples;
  };

  Entry& entry(const std::string& name, Kind kind);
  void tick();

  sim::Simulator& sim_;
  sim::Duration interval_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, std::size_t> index_;
  sim::TimePoint last_sample_{};
  bool sampled_once_ = false;
  bool sampling_ = false;
};

}  // namespace vmig::obs
