#include "obs/profiler.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>  // vmig-lint: d5-ok -- header for std::bad_alloc, not an allocation

// See profiler.hpp for the design contract. Two lint pens live here and
// nowhere else in the tree:
//  - the d1 pen around now_ns(): profiler output is wall-time *about* the
//    run, never an input to it, so these reads cannot perturb replay;
//  - the d5 pen around the replacement operator new/delete: the counting
//    hooks forward to std::malloc/std::free (which sanitizers intercept)
//    and only bump counters owned by the active profiler.

namespace vmig::obs {

namespace {

// vmig-lint: d1-begin -- profiler pen: the only sanctioned wall-clock reads;
// results flow into profiler reports only, never into simulated state
// (tests/profiler_test.cpp pins byte-identical artifacts with --profile on).
std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
// vmig-lint: d1-end

constexpr std::size_t idx(ProfCategory c) noexcept {
  return static_cast<std::size_t>(c);
}

constexpr std::size_t kNumCats = idx(ProfCategory::kCount);

double events_per_sec(const ProfCategoryStats& st) noexcept {
  if (st.inclusive_ns == 0) return 0.0;
  return static_cast<double>(st.events) /
         (static_cast<double>(st.inclusive_ns) / 1e9);
}

}  // namespace

const char* to_string(ProfCategory c) noexcept {
  switch (c) {
    case ProfCategory::kSimDispatch: return "sim_dispatch";
    case ProfCategory::kBitmapScan: return "bitmap_scan";
    case ProfCategory::kBitmapMark: return "bitmap_mark";
    case ProfCategory::kDiskIteration: return "disk_iteration";
    case ProfCategory::kPostCopyPull: return "postcopy_pull";
    case ProfCategory::kRecorderEmit: return "recorder_emit";
    case ProfCategory::kOrchestratorTick: return "orchestrator_tick";
    case ProfCategory::kOther: return "other";
    case ProfCategory::kCount: break;
  }
  return "invalid";
}

Profiler* Profiler::active_ = nullptr;

Profiler::Profiler() {
  nodes_.reserve(64);
  stack_.reserve(16);
}

Profiler::~Profiler() {
  if (active_ == this) active_ = nullptr;
}

void Profiler::activate() noexcept { active_ = this; }

void Profiler::deactivate() noexcept { active_ = nullptr; }

std::int32_t Profiler::child_of(std::int32_t parent, ProfCategory c) {
  std::int32_t prev = -1;
  for (std::int32_t n = parent < 0 ? first_root_ : nodes_[static_cast<std::size_t>(parent)].first_child;
       n != -1; n = nodes_[static_cast<std::size_t>(n)].next_sibling) {
    if (nodes_[static_cast<std::size_t>(n)].cat == c) return n;
    prev = n;
  }
  nodes_.push_back(Node{c, parent, -1, -1, 0, 0});
  const auto made = static_cast<std::int32_t>(nodes_.size() - 1);
  if (prev != -1) {
    nodes_[static_cast<std::size_t>(prev)].next_sibling = made;
  } else if (parent < 0) {
    first_root_ = made;
  } else {
    nodes_[static_cast<std::size_t>(parent)].first_child = made;
  }
  return made;
}

void Profiler::begin(ProfCategory c) noexcept {
  const std::int32_t parent = stack_.empty() ? -1 : stack_.back().node;
  const std::int32_t node = child_of(parent, c);
  ++stats_[idx(c)].calls;
  // Read the clock after the tree bookkeeping so node lookup cost is not
  // billed to the scope being opened.
  stack_.push_back(Frame{c, node, now_ns(), 0});
}

void Profiler::end() noexcept {
  if (stack_.empty()) return;  // unbalanced end: ignore rather than crash
  const std::uint64_t t = now_ns();
  const Frame f = stack_.back();
  stack_.pop_back();
  const std::uint64_t total = t - f.t0;
  const std::uint64_t self = total > f.child_ns ? total - f.child_ns : 0;
  ProfCategoryStats& st = stats_[idx(f.cat)];
  st.inclusive_ns += total;
  st.exclusive_ns += self;
  Node& node = nodes_[static_cast<std::size_t>(f.node)];
  node.excl_ns += self;
  ++node.calls;
  if (!stack_.empty()) {
    stack_.back().child_ns += total;
  } else {
    total_ns_ += total;
  }
}

void Profiler::note_alloc(std::size_t bytes) noexcept {
  const ProfCategory c =
      stack_.empty() ? ProfCategory::kOther : stack_.back().cat;
  ProfCategoryStats& st = stats_[idx(c)];
  ++st.allocs;
  st.alloc_bytes += bytes;
}

std::string Profiler::table() const {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-18s %10s %11s %11s %14s %14s %10s %11s\n",
                "category", "calls", "incl-ms", "excl-ms", "events",
                "events/s", "allocs", "alloc-KiB");
  out += buf;
  for (std::size_t i = 0; i < kNumCats; ++i) {
    const ProfCategoryStats& st = stats_[i];
    if (st.calls == 0 && st.events == 0 && st.allocs == 0) continue;
    std::snprintf(
        buf, sizeof buf, "%-18s %10llu %11.3f %11.3f %14llu %14.0f %10llu %11.1f\n",
        to_string(static_cast<ProfCategory>(i)),
        static_cast<unsigned long long>(st.calls),
        static_cast<double>(st.inclusive_ns) / 1e6,
        static_cast<double>(st.exclusive_ns) / 1e6,
        static_cast<unsigned long long>(st.events), events_per_sec(st),
        static_cast<unsigned long long>(st.allocs),
        static_cast<double>(st.alloc_bytes) / 1024.0);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%-18s %10s %11.3f\n", "total (scoped)", "",
                static_cast<double>(total_ns_) / 1e6);
  out += buf;
  return out;
}

std::vector<std::pair<std::string, double>> Profiler::flat_metrics() const {
  std::vector<std::pair<std::string, double>> kv;
  for (std::size_t i = 0; i < kNumCats; ++i) {
    const ProfCategoryStats& st = stats_[i];
    if (st.calls == 0 && st.events == 0 && st.allocs == 0) continue;
    const std::string base =
        std::string("prof.") + to_string(static_cast<ProfCategory>(i));
    kv.emplace_back(base + ".calls", static_cast<double>(st.calls));
    kv.emplace_back(base + ".incl_ms",
                    static_cast<double>(st.inclusive_ns) / 1e6);
    kv.emplace_back(base + ".excl_ms",
                    static_cast<double>(st.exclusive_ns) / 1e6);
    kv.emplace_back(base + ".events", static_cast<double>(st.events));
    kv.emplace_back(base + ".events_per_sec", events_per_sec(st));
    kv.emplace_back(base + ".allocs", static_cast<double>(st.allocs));
  }
  kv.emplace_back("prof.total_scoped_ms",
                  static_cast<double>(total_ns_) / 1e6);
  return kv;
}

std::string Profiler::collapsed() const {
  std::string out;
  std::string path;
  auto emit = [&](auto&& self, std::int32_t n) -> void {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    const std::size_t len = path.size();
    if (!path.empty()) path += ';';
    path += to_string(node.cat);
    if (node.calls > 0) {
      out += path;
      out += ' ';
      out += std::to_string(node.excl_ns);
      out += '\n';
    }
    for (std::int32_t c = node.first_child; c != -1;
         c = nodes_[static_cast<std::size_t>(c)].next_sibling) {
      self(self, c);
    }
    path.resize(len);
  };
  for (std::int32_t r = first_root_; r != -1;
       r = nodes_[static_cast<std::size_t>(r)].next_sibling) {
    emit(emit, r);
  }
  return out;
}

WallStopwatch::WallStopwatch() : t0_{now_ns()} {}

void WallStopwatch::reset() { t0_ = now_ns(); }

std::uint64_t WallStopwatch::elapsed_ns() const { return now_ns() - t0_; }

}  // namespace vmig::obs

// vmig-lint: d5-begin -- counting allocator pen: replacement operator
// new/delete forward to std::malloc/std::free (sanitizer-intercepted) and
// report sizes to the active profiler; no ownership is managed here.
namespace {

void* counted_alloc(std::size_t size) noexcept {
  if (vmig::obs::Profiler* p = vmig::obs::Profiler::active(); p != nullptr) {
    p->note_alloc(size);
  }
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
// vmig-lint: d5-end
