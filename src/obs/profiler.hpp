#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

// Wall-clock self-profiler for the simulator itself.
//
// Everything else in src/obs measures *simulated* time; this layer measures
// the wall time the simulator burns producing it, attributed to a small set
// of fixed categories (event dispatch, bitmap scan/mark, disk iterations,
// post-copy pulls, recorder emits, orchestrator ticks). It exists to guide
// and gate the scale/perf work: `bench_scale` reports events/sec through it
// and `vmig_sim --profile` prints the per-category table.
//
// Design rules:
//  - Dependency-free: this header pulls in nothing but the standard library,
//    so simcore (which sits *below* obs in the layering) can carry probes.
//    The build target is `vmig_profiler`, linked PUBLIC into vmig_simcore.
//  - Opt-in and inert when off: no Profiler is active by default; a probe
//    site then costs one load-and-branch on a process-wide pointer and
//    touches no memory. Defining VMIG_PROFILER_DISABLED at compile time
//    turns every probe into an actual no-op.
//  - Wall-clock is *penned*: the only wall-clock reads in the tree live in
//    profiler.cpp inside a `vmig-lint: d1-begin/d1-end` region. Profiler
//    state never feeds back into simulated behavior, so a profiled run's
//    simulated artifacts are byte-identical to an unprofiled one
//    (tests/profiler_test.cpp pins this).
//  - Scopes must not span a co_await: the simulator interleaves coroutines,
//    so a scope held across a suspension would swallow other tasks' work
//    and break stack nesting. Probes wrap synchronous sections only.
//
// The profiler is single-threaded by design, like the simulator it measures.

namespace vmig::obs {

/// Fixed attribution categories. Kept deliberately coarse: one per
/// subsystem hot path, so the table answers "where does the wall time go"
/// without per-function noise.
enum class ProfCategory : std::uint8_t {
  kSimDispatch = 0,   ///< simcore event dispatch (Simulator::step)
  kBitmapScan,        ///< block-bitmap walks: next_set/run_length/for_each_set
  kBitmapMark,        ///< dirty-mark path (BlkBackend write tracking)
  kDiskIteration,     ///< TPM pre-copy chunk accounting and framing
  kPostCopyPull,      ///< post-copy pull bookkeeping (source and dest side)
  kRecorderEmit,      ///< flight-recorder event emission
  kOrchestratorTick,  ///< cluster orchestrator scheduling pass
  kOther,             ///< fallback: unscoped allocations land here
  kCount
};

/// Stable lowercase name ("sim_dispatch", "bitmap_scan", ...).
const char* to_string(ProfCategory c) noexcept;

/// Per-category aggregate. Inclusive time counts nested child scopes;
/// exclusive does not. `events` is a caller-supplied work counter
/// (events dispatched, blocks scanned, ...) giving events/sec.
struct ProfCategoryStats {
  std::uint64_t calls = 0;
  std::uint64_t events = 0;
  std::uint64_t inclusive_ns = 0;
  std::uint64_t exclusive_ns = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
};

/// Aggregating wall-clock profiler. Create one, `activate()` it, run the
/// experiment, then render `table()` / `flat_metrics()` / `collapsed()`.
class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Install as the process-wide active profiler (replacing any other).
  void activate() noexcept;
  /// Remove whichever profiler is active; probes go inert again.
  static void deactivate() noexcept;
  static Profiler* active() noexcept { return active_; }

  // -- probe interface (via ProfScope / prof_count; out-of-line so the
  //    inactive path stays a single branch at the call site) --
  void begin(ProfCategory c) noexcept;
  void end() noexcept;
  void add_events(ProfCategory c, std::uint64_t n) noexcept {
    stats_[static_cast<std::size_t>(c)].events += n;
  }
  /// Allocation hook, called by the counting operator new replacement in
  /// profiler.cpp. Attributes to the innermost open scope's category
  /// (kOther when no scope is open). Must never allocate.
  void note_alloc(std::size_t bytes) noexcept;

  const ProfCategoryStats& stats(ProfCategory c) const noexcept {
    return stats_[static_cast<std::size_t>(c)];
  }
  /// Wall nanoseconds spent inside root (non-nested) scopes.
  std::uint64_t total_scoped_ns() const noexcept { return total_ns_; }
  std::size_t open_scopes() const noexcept { return stack_.size(); }

  /// Human-readable per-category table (calls, wall-ms, events/sec, allocs).
  std::string table() const;
  /// Rows for bench::write_flat_json: prof.<category>.{calls,excl_ms,
  /// events,events_per_sec} for every category with calls or events.
  std::vector<std::pair<std::string, double>> flat_metrics() const;
  /// Collapsed-stack format ("a;b;c <exclusive-ns>" per line), loadable by
  /// speedscope and the classic flamegraph.pl toolchain. Stacks are emitted
  /// in first-seen order, so structure (not timing) is deterministic.
  std::string collapsed() const;

 private:
  /// Node in the scope-path tree behind collapsed(); children chained in
  /// creation order so the export order is reproducible.
  struct Node {
    ProfCategory cat{};
    std::int32_t parent = -1;
    std::int32_t first_child = -1;
    std::int32_t next_sibling = -1;
    std::uint64_t excl_ns = 0;
    std::uint64_t calls = 0;
  };
  struct Frame {
    ProfCategory cat{};
    std::int32_t node = -1;
    std::uint64_t t0 = 0;
    std::uint64_t child_ns = 0;
  };

  std::int32_t child_of(std::int32_t parent, ProfCategory c);

  static Profiler* active_;

  ProfCategoryStats stats_[static_cast<std::size_t>(ProfCategory::kCount)];
  std::vector<Node> nodes_;
  std::vector<Frame> stack_;
  std::int32_t first_root_ = -1;
  std::uint64_t total_ns_ = 0;
};

#if defined(VMIG_PROFILER_DISABLED)

class ProfScope {
 public:
  explicit ProfScope(ProfCategory) noexcept {}
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;
};

inline void prof_count(ProfCategory, std::uint64_t = 1) noexcept {}

#else

/// RAII scoped timer. Reads the active-profiler pointer once; when no
/// profiler is active the constructor and destructor are a branch each.
class ProfScope {
 public:
  explicit ProfScope(ProfCategory c) noexcept : p_{Profiler::active()} {
    if (p_ != nullptr) p_->begin(c);
  }
  ~ProfScope() {
    if (p_ != nullptr) p_->end();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* p_;
};

/// Count `n` units of work against category `c` (events dispatched, blocks
/// scanned, ...). Rate = events / inclusive seconds in the reports.
inline void prof_count(ProfCategory c, std::uint64_t n = 1) noexcept {
  if (Profiler* p = Profiler::active(); p != nullptr) p->add_events(c, n);
}

#endif  // VMIG_PROFILER_DISABLED

/// Wall-clock stopwatch for benchmarks (bench_scale). Lives here so the
/// penned wall-clock access in profiler.cpp stays the only one in the tree.
class WallStopwatch {
 public:
  WallStopwatch();
  void reset();
  std::uint64_t elapsed_ns() const;
  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  std::uint64_t t0_ = 0;
};

}  // namespace vmig::obs
