#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/profiler.hpp"

namespace vmig::obs {

// --------------------------- MigStats helpers ---------------------------

void FlightRecorder::MigStats::note_sent(std::uint64_t block,
                                         std::uint64_t count) {
  for (std::uint64_t b = block; b < block + count; ++b) {
    const std::size_t word = static_cast<std::size_t>(b >> 6);
    if (word >= sent_words_.size()) sent_words_.resize(word + 1, 0);
    const std::uint64_t mask = std::uint64_t{1} << (b & 63);
    if ((sent_words_[word] & mask) == 0) {
      sent_words_[word] |= mask;
      ++sent_blocks_;
    } else {
      std::uint32_t& c = multi_[b];
      c = (c == 0) ? 2 : c + 1;
    }
  }
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
FlightRecorder::MigStats::copy_count_distribution() const {
  std::map<std::uint32_t, std::uint64_t> hist;
  const std::uint64_t once = sent_blocks_ - multi_.size();
  if (once > 0) hist[1] = once;
  for (const auto& [block, copies] : multi_) ++hist[copies];
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  out.reserve(hist.size());
  for (const auto& [copies, blocks] : hist) out.emplace_back(copies, blocks);
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint32_t>>
FlightRecorder::MigStats::hottest_blocks(std::size_t k) const {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  out.reserve(multi_.size());
  for (const auto& [block, copies] : multi_) out.emplace_back(block, copies);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

// ----------------------------- event ring -------------------------------

// vmig-lint: hot-begin -- event ring push: called from every protocol
// probe; must stay O(1) with no reallocation
void FlightRecorder::push(const Event& e) {
  ProfScope prof{ProfCategory::kRecorderEmit};
  prof_count(ProfCategory::kRecorderEmit);
  ++recorded_;
  if (budgeted_) {
    push_budgeted(e);  // amortized O(1); decimation halves the kept set
    return;
  }
  if (ring_.size() < cap_) {
    // vmig-lint: h2-ok -- fills capacity reserved by ctor, no realloc
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % cap_;
  ++dropped_;
}
// vmig-lint: hot-end

void FlightRecorder::push_budgeted(const Event& e) {
  // Per-migration emit index: the thinning is a property of each
  // migration's own event stream, so every migration keeps a uniform
  // subsample (its first emit is index 0 and always passes the stride
  // test) regardless of how the global interleaving looks.
  MigStats* s = mig(e.mig);
  const std::uint64_t idx = s != nullptr ? s->ev_emitted_++ : 0;
  if (idx % stride_ != 0) {
    ++sampled_out_;
    return;
  }
  if (ring_.size() >= budget_cap_) decimate();
  if (idx % stride_ != 0 || ring_.size() >= budget_cap_) {
    // The doubled stride now excludes this emit, or the kept set is pinned
    // at the cap by per-migration anchor events (index 0 survives every
    // decimation). Either way the budget wins.
    ++sampled_out_;
    return;
  }
  Event kept = e;
  kept.seq = idx;
  // Within the capacity reserved by the ctor (budget_cap_ <= cap_).
  ring_.push_back(kept);
}

void FlightRecorder::decimate() {
  // Double the stride and drop kept events the new stride excludes. Each
  // pass halves the survivors (index-0 anchors aside), so the loop below
  // almost always runs once; the stride check bails out of the pathological
  // all-anchors case instead of spinning.
  while (ring_.size() >= budget_cap_ && stride_ < (std::uint64_t{1} << 62)) {
    stride_ *= 2;
    std::size_t w = 0;
    for (const Event& ev : ring_) {
      if (ev.seq % stride_ == 0) ring_[w++] = ev;
    }
    if (w == ring_.size()) break;  // nothing excluded; cap enforced by caller
    sampled_out_ += ring_.size() - w;
    ring_.resize(w);
  }
}

void FlightRecorder::set_byte_budget(std::uint64_t bytes) {
  // ~160 B covers the widest serialized event line (pull with latency);
  // the floor keeps a minimal evidence trail even under an absurd budget.
  constexpr std::uint64_t kEventLineBytes = 160;
  budgeted_ = true;
  byte_budget_ = bytes;
  std::uint64_t cap = bytes / kEventLineBytes;
  if (cap < 16) cap = 16;
  if (cap > cap_) cap = cap_;
  budget_cap_ = static_cast<std::size_t>(cap);
  if (head_ != 0) {
    // Entered budgeted mode after the classic ring wrapped: restore
    // oldest-first order so the no-wrap invariant of budgeted mode holds.
    std::vector<Event> ordered = events();
    ring_ = std::move(ordered);
    ring_.reserve(cap_);  // re-establish the ctor's no-realloc guarantee
    head_ = 0;
  }
  if (ring_.size() >= budget_cap_) decimate();
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

// ------------------------------ emitters --------------------------------

FlightMigId FlightRecorder::begin_migration(const std::string& domain,
                                            const std::string& source,
                                            const std::string& dest,
                                            sim::TimePoint t) {
  MigStats s;
  s.domain = domain;
  s.source = source;
  s.dest = dest;
  s.started_ns = t.ns();
  migs_.push_back(std::move(s));
  return static_cast<FlightMigId>(migs_.size() - 1);
}

void FlightRecorder::end_migration(FlightMigId m, sim::TimePoint t,
                                   std::string status,
                                   const MigrationClose& close) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  s->status = std::move(status);
  s->ended_ns = t.ns();
  s->close = close;
  s->closed = true;
}

void FlightRecorder::disk_precopy_send(FlightMigId m, sim::TimePoint t,
                                       std::int32_t iter, std::uint64_t block,
                                       std::uint64_t count,
                                       std::uint64_t bytes) {
  // note_sent below may grow the per-migration duplicate map; keep those
  // allocations attributed to the recorder, not the caller's category.
  ProfScope prof{ProfCategory::kRecorderEmit};
  MigStats* s = mig(m);
  if (s == nullptr) return;
  if (s->disk_iters.empty() || s->disk_iters.back().iter != iter) {
    s->disk_iters.push_back(IterStat{iter, 0, 0});
  }
  s->disk_iters.back().blocks += count;
  s->disk_iters.back().bytes += bytes;
  s->note_sent(block, count);
  push(Event{EventKind::kPrecopySend, Unit::kDisk, m, iter, t.ns(), block,
             count, 0, bytes, -1});
}

void FlightRecorder::mem_precopy_send(FlightMigId m, sim::TimePoint t,
                                      std::int32_t round, std::uint64_t pages,
                                      std::uint64_t bytes) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  if (static_cast<std::uint64_t>(round) > s->mem_rounds) {
    s->mem_rounds = static_cast<std::uint64_t>(round);
  }
  s->mem_pages += pages;
  s->mem_bytes += bytes;
  push(Event{EventKind::kPrecopySend, Unit::kMem, m, round, t.ns(), 0, pages,
             0, bytes, -1});
}

void FlightRecorder::redirty(FlightMigId m, sim::TimePoint t,
                             std::uint64_t block, std::uint64_t count) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  ++s->redirty_events;
  s->redirty_blocks += count;
  push(Event{EventKind::kRedirty, Unit::kDisk, m, 0, t.ns(), block, count, 0,
             0, -1});
}

void FlightRecorder::freeze_send(FlightMigId m, sim::TimePoint t, Unit unit,
                                 std::uint64_t units, std::uint64_t bytes) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  switch (unit) {
    case Unit::kMem:
      s->residual_pages += units;
      s->residual_mem_bytes += bytes;
      break;
    case Unit::kCpu:
      s->cpu_bytes += bytes;
      break;
    case Unit::kBitmap:
      s->bitmap_blocks += units;
      s->bitmap_bytes += bytes;
      break;
    case Unit::kDisk:
      break;  // freeze sends no raw disk payload in this protocol
  }
  push(Event{EventKind::kFreezeSend, unit, m, 0, t.ns(), 0, units, 0, bytes,
             -1});
}

void FlightRecorder::push_received(FlightMigId m, sim::TimePoint t,
                                   std::uint64_t block, std::uint64_t count,
                                   std::uint64_t applied,
                                   std::uint64_t bytes) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  ++s->push_msgs;
  s->push_bytes += bytes;
  s->blocks_pushed += applied;
  s->blocks_dropped += count - applied;
  push(Event{EventKind::kPush, Unit::kDisk, m, 0, t.ns(), block, count,
             applied, bytes, -1});
}

void FlightRecorder::pull_received(FlightMigId m, sim::TimePoint t,
                                   std::uint64_t block, std::uint64_t count,
                                   std::uint64_t applied, std::uint64_t bytes,
                                   std::int64_t latency_ns) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  ++s->pull_msgs;
  s->pull_bytes += bytes;
  s->blocks_pulled += applied;
  s->blocks_dropped += count - applied;
  if (applied > 0 && latency_ns >= 0) {
    s->pull_latency_hist.observe(static_cast<double>(latency_ns));
  }
  push(Event{EventKind::kPull, Unit::kDisk, m, 0, t.ns(), block, count,
             applied, bytes, latency_ns});
}

void FlightRecorder::push_sent(FlightMigId m, std::uint64_t blocks,
                               std::uint64_t bytes) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  s->push_sent_blocks += blocks;
  s->push_sent_bytes += bytes;
}

void FlightRecorder::pull_requested(FlightMigId m, std::uint64_t wire_bytes) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  ++s->pull_requests;
  s->pull_req_bytes += wire_bytes;
}

void FlightRecorder::overwrite_cancel(FlightMigId m, sim::TimePoint t,
                                      std::uint64_t block, std::uint64_t count,
                                      std::uint64_t bytes_saved) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  ++s->cancel_events;
  s->blocks_cancelled += count;
  s->cancel_saved_bytes += bytes_saved;
  push(Event{EventKind::kOverwriteCancel, Unit::kDisk, m, 0, t.ns(), block,
             count, 0, bytes_saved, -1});
}

void FlightRecorder::stall(FlightMigId m, sim::TimePoint t,
                           std::uint64_t block, std::uint64_t count,
                           sim::Duration dur) {
  MigStats* s = mig(m);
  if (s == nullptr) return;
  ++s->stall_count;
  s->stall_total_ns += dur.ns();
  if (dur.ns() > s->stall_max_ns) s->stall_max_ns = dur.ns();
  s->stall_hist.observe(static_cast<double>(dur.ns()));
  push(Event{EventKind::kStall, Unit::kDisk, m, 0, t.ns(), block, count, 0, 0,
             dur.ns()});
}

// ---------------------------- serialization -----------------------------

const char* to_string(FlightRecorder::EventKind k) noexcept {
  switch (k) {
    case FlightRecorder::EventKind::kPrecopySend:
      return "precopy_send";
    case FlightRecorder::EventKind::kRedirty:
      return "redirty";
    case FlightRecorder::EventKind::kFreezeSend:
      return "freeze_send";
    case FlightRecorder::EventKind::kPush:
      return "push";
    case FlightRecorder::EventKind::kPull:
      return "pull";
    case FlightRecorder::EventKind::kOverwriteCancel:
      return "overwrite_cancel";
    case FlightRecorder::EventKind::kStall:
      return "stall";
  }
  return "?";
}

const char* to_string(FlightRecorder::Unit u) noexcept {
  switch (u) {
    case FlightRecorder::Unit::kDisk:
      return "disk";
    case FlightRecorder::Unit::kMem:
      return "mem";
    case FlightRecorder::Unit::kCpu:
      return "cpu";
    case FlightRecorder::Unit::kBitmap:
      return "bitmap";
  }
  return "?";
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void kv_u(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void kv_i(std::string& out, const char* key, std::int64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void kv_s(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_escaped(out, v);
}

void kv_b(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

void kv_g(std::string& out, const char* key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.9g", key, v);
  out += buf;
}

void append_hist(std::string& out, const char* prefix, const Histogram& h) {
  std::string key{prefix};
  const std::size_t base = key.size();
  key += "count";
  kv_u(out, key.c_str(), h.count());
  key.resize(base);
  key += "p50_ns";
  kv_g(out, key.c_str(), h.quantile(0.5));
  key.resize(base);
  key += "p95_ns";
  kv_g(out, key.c_str(), h.quantile(0.95));
  key.resize(base);
  key += "p99_ns";
  kv_g(out, key.c_str(), h.quantile(0.99));
}

void append_event(std::string& out, const FlightRecorder::Event& e) {
  out += "{\"k\":\"";
  out += to_string(e.kind);
  out += '"';
  kv_u(out, "mig", e.mig);
  kv_i(out, "t", e.t_ns);
  switch (e.kind) {
    case FlightRecorder::EventKind::kPrecopySend:
      kv_i(out, "iter", e.iter);
      kv_s(out, "u", to_string(e.unit));
      if (e.unit == FlightRecorder::Unit::kDisk) kv_u(out, "b", e.block);
      kv_u(out, "n", e.count);
      kv_u(out, "bytes", e.bytes);
      break;
    case FlightRecorder::EventKind::kRedirty:
      kv_u(out, "b", e.block);
      kv_u(out, "n", e.count);
      break;
    case FlightRecorder::EventKind::kFreezeSend:
      kv_s(out, "u", to_string(e.unit));
      kv_u(out, "n", e.count);
      kv_u(out, "bytes", e.bytes);
      break;
    case FlightRecorder::EventKind::kPush:
      kv_u(out, "b", e.block);
      kv_u(out, "n", e.count);
      kv_u(out, "applied", e.applied);
      kv_u(out, "bytes", e.bytes);
      break;
    case FlightRecorder::EventKind::kPull:
      kv_u(out, "b", e.block);
      kv_u(out, "n", e.count);
      kv_u(out, "applied", e.applied);
      kv_u(out, "bytes", e.bytes);
      kv_i(out, "lat", e.aux_ns);
      break;
    case FlightRecorder::EventKind::kOverwriteCancel:
      kv_u(out, "b", e.block);
      kv_u(out, "n", e.count);
      kv_u(out, "saved", e.bytes);
      break;
    case FlightRecorder::EventKind::kStall:
      kv_u(out, "b", e.block);
      kv_u(out, "n", e.count);
      kv_i(out, "dur", e.aux_ns);
      break;
  }
  out += "}\n";
}

void append_summary(std::string& out, FlightMigId id,
                    const FlightRecorder::MigStats& s) {
  out += "{\"summary\":{\"migration\":";
  out += std::to_string(id);
  kv_s(out, "domain", s.domain);
  kv_s(out, "from", s.source);
  kv_s(out, "to", s.dest);
  kv_s(out, "status", s.status);
  kv_i(out, "started_ns", s.started_ns);
  kv_i(out, "ended_ns", s.ended_ns);

  out += ",\"precopy\":{\"iters\":[";
  for (std::size_t i = 0; i < s.disk_iters.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"iter\":";
    out += std::to_string(s.disk_iters[i].iter);
    kv_u(out, "blocks", s.disk_iters[i].blocks);
    kv_u(out, "bytes", s.disk_iters[i].bytes);
    out += '}';
  }
  out += ']';
  kv_u(out, "redirty_events", s.redirty_events);
  kv_u(out, "redirty_blocks", s.redirty_blocks);
  kv_u(out, "blocks_sent", s.blocks_sent());
  out += ",\"copy_counts\":[";
  {
    const auto dist = s.copy_count_distribution();
    for (std::size_t i = 0; i < dist.size(); ++i) {
      if (i > 0) out += ',';
      out += '[';
      out += std::to_string(dist[i].first);
      out += ',';
      out += std::to_string(dist[i].second);
      out += ']';
    }
  }
  out += "],\"hot_blocks\":[";
  {
    const auto hot = s.hottest_blocks(8);
    for (std::size_t i = 0; i < hot.size(); ++i) {
      if (i > 0) out += ',';
      out += '[';
      out += std::to_string(hot[i].first);
      out += ',';
      out += std::to_string(hot[i].second);
      out += ']';
    }
  }
  out += "]}";

  out += ",\"mem\":{\"rounds\":";
  out += std::to_string(s.mem_rounds);
  kv_u(out, "pages", s.mem_pages);
  kv_u(out, "bytes", s.mem_bytes);
  out += '}';

  out += ",\"freeze\":{\"residual_pages\":";
  out += std::to_string(s.residual_pages);
  kv_u(out, "residual_mem_bytes", s.residual_mem_bytes);
  kv_u(out, "cpu_bytes", s.cpu_bytes);
  kv_u(out, "bitmap_blocks", s.bitmap_blocks);
  kv_u(out, "bitmap_bytes", s.bitmap_bytes);
  out += '}';

  out += ",\"postcopy\":{\"push_msgs\":";
  out += std::to_string(s.push_msgs);
  kv_u(out, "push_bytes", s.push_bytes);
  kv_u(out, "blocks_pushed", s.blocks_pushed);
  kv_u(out, "push_sent_blocks", s.push_sent_blocks);
  kv_u(out, "push_sent_bytes", s.push_sent_bytes);
  kv_u(out, "pull_msgs", s.pull_msgs);
  kv_u(out, "pull_bytes", s.pull_bytes);
  kv_u(out, "blocks_pulled", s.blocks_pulled);
  kv_u(out, "pull_requests", s.pull_requests);
  kv_u(out, "pull_req_bytes", s.pull_req_bytes);
  kv_u(out, "blocks_dropped", s.blocks_dropped);
  kv_u(out, "cancel_events", s.cancel_events);
  kv_u(out, "blocks_cancelled", s.blocks_cancelled);
  kv_u(out, "cancel_saved_bytes", s.cancel_saved_bytes);
  kv_u(out, "stall_count", s.stall_count);
  kv_i(out, "stall_total_ns", s.stall_total_ns);
  kv_i(out, "stall_max_ns", s.stall_max_ns);
  append_hist(out, "stall_hist_", s.stall_hist);
  append_hist(out, "pull_lat_", s.pull_latency_hist);
  out += '}';

  const MigrationClose& c = s.close;
  out += ",\"report\":{\"closed\":";
  out += s.closed ? "true" : "false";
  kv_i(out, "disk_precopy_done_ns", c.disk_precopy_done_ns);
  kv_i(out, "suspended_ns", c.suspended_ns);
  kv_i(out, "resumed_ns", c.resumed_ns);
  kv_i(out, "synchronized_ns", c.synchronized_ns);
  kv_u(out, "bytes_disk_first_pass", c.bytes_disk_first_pass);
  kv_u(out, "bytes_disk_retransfer", c.bytes_disk_retransfer);
  kv_u(out, "bytes_memory_precopy", c.bytes_memory_precopy);
  kv_u(out, "bytes_freeze_residual", c.bytes_freeze_residual);
  kv_u(out, "bytes_bitmap", c.bytes_bitmap);
  kv_u(out, "bytes_postcopy_push", c.bytes_postcopy_push);
  kv_u(out, "bytes_postcopy_pull", c.bytes_postcopy_pull);
  kv_u(out, "bytes_control", c.bytes_control);
  kv_u(out, "residual_dirty_blocks", c.residual_dirty_blocks);
  kv_u(out, "blocks_retransferred", c.blocks_retransferred);
  kv_u(out, "blocks_pushed", c.blocks_pushed);
  kv_u(out, "blocks_pulled", c.blocks_pulled);
  kv_u(out, "blocks_dropped", c.blocks_dropped);
  kv_u(out, "postcopy_reads_blocked", c.postcopy_reads_blocked);
  kv_i(out, "postcopy_read_stall_total_ns", c.postcopy_read_stall_total_ns);
  kv_i(out, "postcopy_read_stall_max_ns", c.postcopy_read_stall_max_ns);
  kv_u(out, "disk_iterations", c.disk_iterations);
  kv_u(out, "mem_iterations", c.mem_iterations);
  kv_b(out, "resume_applied", c.resume_applied);
  kv_u(out, "resumed_blocks_saved", c.resumed_blocks_saved);
  out += "}}}\n";
}

void append_job(std::string& out, const JobRecord& j) {
  out += "{\"job\":{\"id\":";
  out += std::to_string(j.job);
  kv_s(out, "domain", j.domain);
  kv_s(out, "from", j.from);
  kv_s(out, "to", j.to);
  kv_s(out, "status", j.status);
  kv_i(out, "submitted_ns", j.submitted_ns);
  kv_i(out, "finished_ns", j.finished_ns);
  kv_i(out, "deadline_ns", j.deadline_ns);
  kv_u(out, "attempts", j.attempts);
  kv_u(out, "deferrals", j.deferrals);
  kv_i(out, "downtime_ns", j.downtime_ns);
  kv_i(out, "total_ns", j.total_ns);
  kv_b(out, "resume_applied", j.resume_applied);
  kv_u(out, "resumed_blocks_saved", j.resumed_blocks_saved);
  out += "}}\n";
}

}  // namespace

void write_flight_record(std::ostream& out, const FlightRecorder& rec) {
  std::string buf;
  buf.reserve(256);
  buf += "{\"vmig_flight_record\":{\"version\":1";
  kv_u(buf, "capacity", rec.capacity());
  if (rec.budgeted()) {
    kv_u(buf, "byte_budget", rec.byte_budget());
    kv_u(buf, "stride", rec.sample_stride());
  }
  buf += "}}\n";
  out << buf;

  for (FlightMigId m = 0; m < rec.migration_count(); ++m) {
    const FlightRecorder::MigStats& s = rec.stats(m);
    buf.clear();
    buf += "{\"migration\":";
    buf += std::to_string(m);
    kv_s(buf, "domain", s.domain);
    kv_s(buf, "from", s.source);
    kv_s(buf, "to", s.dest);
    kv_i(buf, "started_ns", s.started_ns);
    buf += "}\n";
    out << buf;
  }

  for (const FlightRecorder::Event& e : rec.events()) {
    buf.clear();
    append_event(buf, e);
    out << buf;
  }

  for (FlightMigId m = 0; m < rec.migration_count(); ++m) {
    buf.clear();
    append_summary(buf, m, rec.stats(m));
    out << buf;
  }

  for (const JobRecord& j : rec.jobs()) {
    buf.clear();
    append_job(buf, j);
    out << buf;
  }

  buf.clear();
  buf += "{\"end\":{\"recorded\":";
  buf += std::to_string(rec.recorded());
  kv_u(buf, "dropped", rec.dropped());
  if (rec.budgeted()) kv_u(buf, "sampled_out", rec.sampled_out());
  kv_u(buf, "events", rec.event_count());
  kv_u(buf, "migrations", rec.migration_count());
  kv_u(buf, "jobs", rec.jobs().size());
  buf += "}}\n";
  out << buf;
}

}  // namespace vmig::obs
