#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/time.hpp"

namespace vmig::obs {

/// Flight-recorder migration handle: index into the recorder's per-migration
/// table, handed out by `begin_migration` and threaded through the engine.
using FlightMigId = std::uint32_t;

/// The slice of a finished MigrationReport the post-mortem analyzer
/// reconciles the recorder's own aggregates against. Plain integers so the
/// obs layer keeps no dependency on core; core fills it in when a migration
/// closes (durations and timestamps in sim nanoseconds).
struct MigrationClose {
  std::int64_t disk_precopy_done_ns = 0;
  std::int64_t suspended_ns = 0;
  std::int64_t resumed_ns = 0;
  std::int64_t synchronized_ns = 0;
  std::uint64_t bytes_disk_first_pass = 0;
  std::uint64_t bytes_disk_retransfer = 0;
  std::uint64_t bytes_memory_precopy = 0;
  std::uint64_t bytes_freeze_residual = 0;
  std::uint64_t bytes_bitmap = 0;
  std::uint64_t bytes_postcopy_push = 0;
  std::uint64_t bytes_postcopy_pull = 0;
  std::uint64_t bytes_control = 0;
  std::uint64_t residual_dirty_blocks = 0;
  std::uint64_t blocks_retransferred = 0;
  std::uint64_t blocks_pushed = 0;
  std::uint64_t blocks_pulled = 0;
  std::uint64_t blocks_dropped = 0;
  std::uint64_t postcopy_reads_blocked = 0;
  std::int64_t postcopy_read_stall_total_ns = 0;
  std::int64_t postcopy_read_stall_max_ns = 0;
  std::uint32_t disk_iterations = 0;
  std::uint32_t mem_iterations = 0;
  bool resume_applied = false;
  std::uint64_t resumed_blocks_saved = 0;
};

/// Terminal per-job record for cluster runs: what the orchestrator knew when
/// the job reached a terminal state, enough for SLO accounting against
/// `MigrationRequest::deadline` without re-deriving it from events.
struct JobRecord {
  std::uint64_t job = 0;
  std::string domain;
  std::string from;
  std::string to;
  std::string status;       ///< terminal core::MigrationStatus string
  std::int64_t submitted_ns = 0;
  std::int64_t finished_ns = 0;
  std::int64_t deadline_ns = 0;  ///< 0 = no deadline
  std::uint32_t attempts = 0;
  std::uint32_t deferrals = 0;
  std::int64_t downtime_ns = 0;
  std::int64_t total_ns = 0;
  bool resume_applied = false;
  std::uint64_t resumed_blocks_saved = 0;
};

/// Bounded, deterministic structured event log for migrations: the lifecycle
/// of every block and page (pre-copy sends per iteration, re-dirties, the
/// freeze-and-copy payload split, post-copy pushes/pulls/stalls/cancels)
/// plus exact per-migration aggregates that survive ring eviction.
///
/// Two tiers, by design:
///   - a fixed-capacity event ring (oldest events drop first, `dropped()`
///     counts them) — evidence for debugging, bounded so whole-disk
///     workloads cannot OOM the recorder;
///   - per-migration aggregates updated on every emit — exact regardless of
///     ring wrap, and the values `vmig_analyze` reconciles against
///     MigrationReport byte-for-byte.
///
/// Everything is keyed off sim time passed in by the emitter, so a replay of
/// the same scenario serializes byte-identically (`write_flight_record`).
class FlightRecorder {
 public:
  enum class EventKind : std::uint8_t {
    kPrecopySend,
    kRedirty,
    kFreezeSend,
    kPush,
    kPull,
    kOverwriteCancel,
    kStall,
  };
  enum class Unit : std::uint8_t { kDisk, kMem, kCpu, kBitmap };

  struct Event {
    EventKind kind{};
    Unit unit = Unit::kDisk;
    FlightMigId mig = 0;
    std::int32_t iter = 0;       ///< pre-copy iteration / memory round
    std::int64_t t_ns = 0;
    std::uint64_t block = 0;     ///< first block (pages/units: 0)
    std::uint64_t count = 0;     ///< blocks / pages / units in this event
    std::uint64_t applied = 0;   ///< push/pull: blocks actually applied
    std::uint64_t bytes = 0;     ///< wire bytes (cancel: payload bytes saved)
    std::int64_t aux_ns = -1;    ///< pull latency / stall duration; -1 n/a
    /// Per-migration emit index (budgeted mode only; 0 otherwise). Not
    /// serialized — it drives the deterministic stride decimation.
    std::uint64_t seq = 0;
  };

  struct IterStat {
    std::int32_t iter = 0;
    std::uint64_t blocks = 0;
    std::uint64_t bytes = 0;
  };

  struct MigStats {
    std::string domain;
    std::string source;
    std::string dest;
    std::string status = "running";
    std::int64_t started_ns = 0;
    std::int64_t ended_ns = 0;
    bool closed = false;

    // Disk pre-copy, one row per bitmap iteration (iter 1 = first pass).
    std::vector<IterStat> disk_iters;
    std::uint64_t redirty_events = 0;
    std::uint64_t redirty_blocks = 0;

    // Memory pre-copy rounds.
    std::uint64_t mem_rounds = 0;
    std::uint64_t mem_pages = 0;
    std::uint64_t mem_bytes = 0;

    // Freeze-and-copy payload split — the paper's downtime attribution.
    std::uint64_t residual_pages = 0;
    std::uint64_t residual_mem_bytes = 0;
    std::uint64_t cpu_bytes = 0;
    std::uint64_t bitmap_blocks = 0;
    std::uint64_t bitmap_bytes = 0;

    // Post-copy, destination-derived (push_sent_* is the source's view and
    // can exceed the applied counts under loss).
    std::uint64_t push_msgs = 0;
    std::uint64_t push_bytes = 0;
    std::uint64_t blocks_pushed = 0;
    std::uint64_t push_sent_blocks = 0;
    std::uint64_t push_sent_bytes = 0;
    std::uint64_t pull_msgs = 0;
    std::uint64_t pull_bytes = 0;
    std::uint64_t blocks_pulled = 0;
    std::uint64_t pull_requests = 0;
    std::uint64_t pull_req_bytes = 0;
    std::uint64_t blocks_dropped = 0;
    std::uint64_t cancel_events = 0;
    std::uint64_t blocks_cancelled = 0;
    std::uint64_t cancel_saved_bytes = 0;
    std::uint64_t stall_count = 0;
    std::int64_t stall_total_ns = 0;
    std::int64_t stall_max_ns = 0;
    Histogram stall_hist;         ///< ns; mirrors postcopy.read_stall_ns
    Histogram pull_latency_hist;  ///< ns; pull request -> applied response

    MigrationClose close;

    /// Distribution of pre-copy sends per disk block, ascending by copy
    /// count: [(copies, blocks-with-that-count), ...]. Count 1 dominates a
    /// well-behaved run; the tail is pre-copy waste.
    std::vector<std::pair<std::uint32_t, std::uint64_t>>
    copy_count_distribution() const;
    /// Blocks sent more than once, hottest first (count desc, block asc).
    std::vector<std::pair<std::uint64_t, std::uint32_t>> hottest_blocks(
        std::size_t k) const;
    /// Disk blocks sent at least once across all pre-copy iterations.
    std::uint64_t blocks_sent() const noexcept { return sent_blocks_; }

   private:
    friend class FlightRecorder;
    void note_sent(std::uint64_t block, std::uint64_t count);

    // Per-block copy counts, memory-bounded for whole-disk workloads: one
    // bit per block ever sent, plus an exact map for the (rare) blocks sent
    // more than once.
    std::vector<std::uint64_t> sent_words_;
    std::map<std::uint64_t, std::uint32_t> multi_;
    std::uint64_t sent_blocks_ = 0;
    std::uint64_t ev_emitted_ = 0;  ///< events emitted (budgeted sampling)
  };

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : cap_(capacity == 0 ? 1 : capacity) {
    // Pay for the ring up front so push() never reallocates mid-migration.
    ring_.reserve(cap_);
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  FlightMigId begin_migration(const std::string& domain,
                              const std::string& source,
                              const std::string& dest, sim::TimePoint t);
  void end_migration(FlightMigId m, sim::TimePoint t, std::string status,
                     const MigrationClose& close);

  /// One pre-copy disk chunk put on the wire (iter 1 = first pass).
  void disk_precopy_send(FlightMigId m, sim::TimePoint t, std::int32_t iter,
                         std::uint64_t block, std::uint64_t count,
                         std::uint64_t bytes);
  /// One memory pre-copy round put on the wire.
  void mem_precopy_send(FlightMigId m, sim::TimePoint t, std::int32_t round,
                        std::uint64_t pages, std::uint64_t bytes);
  /// Guest write re-dirtied tracked blocks during pre-copy.
  void redirty(FlightMigId m, sim::TimePoint t, std::uint64_t block,
               std::uint64_t count);
  /// One freeze-and-copy payload component (residual memory pages, CPU
  /// state, or the block-bitmap) put on the wire while the guest is down.
  void freeze_send(FlightMigId m, sim::TimePoint t, Unit unit,
                   std::uint64_t units, std::uint64_t bytes);
  /// Destination applied (or dropped) a post-copy push message.
  void push_received(FlightMigId m, sim::TimePoint t, std::uint64_t block,
                     std::uint64_t count, std::uint64_t applied,
                     std::uint64_t bytes);
  /// Destination applied (or dropped) a pull response; latency_ns is the
  /// request->response round trip, -1 when the request is no longer known.
  void pull_received(FlightMigId m, sim::TimePoint t, std::uint64_t block,
                     std::uint64_t count, std::uint64_t applied,
                     std::uint64_t bytes, std::int64_t latency_ns);
  /// Aggregate-only: source pushed blocks (may be lost in flight).
  void push_sent(FlightMigId m, std::uint64_t blocks, std::uint64_t bytes);
  /// Aggregate-only: destination issued a pull request of `wire_bytes`.
  void pull_requested(FlightMigId m, std::uint64_t wire_bytes);
  /// A guest write at the destination obsoleted not-yet-written pushed
  /// blocks; `bytes_saved` is the payload the cancel avoided writing.
  void overwrite_cancel(FlightMigId m, sim::TimePoint t, std::uint64_t block,
                        std::uint64_t count, std::uint64_t bytes_saved);
  /// A guest read at the destination stalled on a missing block.
  void stall(FlightMigId m, sim::TimePoint t, std::uint64_t block,
             std::uint64_t count, sim::Duration dur);

  void job_record(JobRecord rec) { jobs_.push_back(std::move(rec)); }

  // ---- Budgeted flight recording (fleet scale) ----
  //
  // `set_byte_budget(B)` caps the serialized *event* section at ~B bytes by
  // capping the kept-event count at B / 160 (a conservative per-line bound,
  // floored at 16 events). Instead of the default drop-oldest ring wrap,
  // budgeted mode keeps a deterministic per-migration reservoir: each
  // migration's events are thinned to every `sample_stride()`-th emit (the
  // first emit of every migration is always kept), and when the kept set
  // reaches the cap the stride doubles and the set is decimated in place —
  // uniform temporal coverage per migration, no RNG, byte-identical across
  // replays. Events not kept count in `sampled_out()`.
  //
  // The exact tier is untouched: per-migration aggregates are updated by
  // every emitter *before* the keep/drop decision, and summary / job /
  // migration lines are always serialized in full — terminal and abort
  // state is never sampled away, so `vmig_analyze` reconciliation holds on
  // a budgeted record exactly as on an unbudgeted one.
  void set_byte_budget(std::uint64_t bytes);
  bool budgeted() const noexcept { return budgeted_; }
  std::uint64_t byte_budget() const noexcept { return byte_budget_; }
  std::uint64_t sample_stride() const noexcept { return stride_; }
  std::uint64_t sampled_out() const noexcept { return sampled_out_; }

  std::size_t migration_count() const noexcept { return migs_.size(); }
  const MigStats& stats(FlightMigId m) const { return migs_.at(m); }
  const std::vector<JobRecord>& jobs() const noexcept { return jobs_; }
  /// Events still in the ring, oldest first.
  std::vector<Event> events() const;
  std::size_t event_count() const noexcept { return ring_.size(); }
  std::uint64_t recorded() const noexcept { return recorded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t capacity() const noexcept { return cap_; }

 private:
  MigStats* mig(FlightMigId m) {
    return m < migs_.size() ? &migs_[m] : nullptr;
  }
  void push(const Event& e);
  void push_budgeted(const Event& e);
  void decimate();

  std::size_t cap_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;       ///< oldest element once the ring is full
  std::uint64_t recorded_ = 0; ///< total events ever emitted to the ring
  std::uint64_t dropped_ = 0;
  std::vector<MigStats> migs_;
  std::vector<JobRecord> jobs_;

  // Budgeted mode (off by default; see set_byte_budget).
  bool budgeted_ = false;
  std::uint64_t byte_budget_ = 0;
  std::size_t budget_cap_ = 0;     ///< kept-event cap derived from the budget
  std::uint64_t stride_ = 1;       ///< keep every stride-th emit per migration
  std::uint64_t sampled_out_ = 0;  ///< emits not kept (thinned or decimated)
};

const char* to_string(FlightRecorder::EventKind k) noexcept;
const char* to_string(FlightRecorder::Unit u) noexcept;

/// Serialize the whole record as JSONL: a header line, one `migration` line
/// per begin, the surviving events oldest-first, one `summary` line per
/// migration (aggregates + the MigrationClose under "report"), one `job`
/// line per cluster job, and an `end` footer. Integers throughout except
/// histogram percentiles (printf %.9g) — byte-identical across replays.
void write_flight_record(std::ostream& out, const FlightRecorder& rec);

}  // namespace vmig::obs
