#include "obs/rollup.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vmig::obs {

Rollup::Rollup(sim::Simulator& sim, RollupConfig cfg)
    : sim_{sim}, cfg_{cfg} {
  if (cfg_.hosts_per_rack == 0) {
    throw std::invalid_argument{"rollup: hosts_per_rack must be positive"};
  }
  if (cfg_.sample_interval.ns() <= 0) {
    throw std::invalid_argument{"rollup: sample interval must be positive"};
  }
  cells_.resize(cfg_.hosts);
  racks_ = (cfg_.hosts + cfg_.hosts_per_rack - 1) / cfg_.hosts_per_rack;
  host_of_.reserve(cfg_.hosts);
}

void Rollup::register_host(const void* host, std::uint32_t index) {
  if (index >= cells_.size()) {
    throw std::out_of_range{"rollup: host index beyond configured fleet"};
  }
  host_of_[host] = index;
}

Rollup::HostCell* Rollup::cell(const void* host) {
  const auto it = host_of_.find(host);
  return it == host_of_.end() ? nullptr : &cells_[it->second];
}

void Rollup::job_submitted() { ++submitted_; }

void Rollup::attempt_started(const void* src, const void* dst) {
  ++running_;
  if (HostCell* c = cell(src)) ++c->in_flight;
  if (HostCell* c = cell(dst)) ++c->in_flight;
}

void Rollup::attempt_finished(const void* src, const void* dst) {
  --running_;
  if (HostCell* c = cell(src)) --c->in_flight;
  if (HostCell* c = cell(dst)) --c->in_flight;
}

void Rollup::job_retry(const void* src) {
  ++retries_;
  if (HostCell* c = cell(src)) ++c->retries;
}

void Rollup::deferral() { ++deferrals_; }

void Rollup::job_terminal(const void* src, const void* dst,
                          const RollupJobClose& close) {
  if (close.completed) {
    ++completed_;
  } else {
    ++failed_;
  }
  if (HostCell* c = cell(src)) {
    if (close.completed) {
      ++c->completed;
    } else {
      ++c->failed;
    }
    if (close.slo_miss) ++c->slo_miss;
    c->bytes_out += close.bytes;
    c->downtime_ns += close.downtime_ns;
    c->dirty_blocks += close.dirty_blocks;
  }
  if (HostCell* c = cell(dst)) c->bytes_in += close.bytes;
}

template <typename ValueFn>
std::vector<Rollup::HotRow> Rollup::top_k_by(ValueFn value) const {
  std::vector<HotRow> rows;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const std::uint64_t v = value(cells_[i]);
    if (v > 0) rows.push_back({static_cast<std::uint32_t>(i), v});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const HotRow& a, const HotRow& b) {
                     if (a.value != b.value) return a.value > b.value;
                     return a.host < b.host;
                   });
  if (rows.size() > cfg_.top_k) rows.resize(cfg_.top_k);
  return rows;
}

void Rollup::sample_now() {
  Snapshot s;
  s.t_ns = sim_.now().ns();
  s.submitted = submitted_;
  s.running = running_;
  s.completed = completed_;
  s.failed = failed_;
  s.retries = retries_;
  s.deferrals = deferrals_;
  s.pending_events = sim_.pending_count();
  s.events_processed = sim_.events_processed();
  s.ff_settles = sim_.ff_settles();

  // host -> rack fold; the fleet totals for attributed metrics come from
  // the same pass, so fleet rows always equal the column sums of the rack
  // rows (a reconciliation `vmig_top` readers can check by eye).
  std::vector<RackRow> racks(racks_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const HostCell& c = cells_[i];
    RackRow& r = racks[i / cfg_.hosts_per_rack];
    r.bytes_out += c.bytes_out;
    r.bytes_in += c.bytes_in;
    r.dirty_blocks += c.dirty_blocks;
    r.jobs_completed += c.completed;
    r.jobs_failed += c.failed;
    r.slo_miss += c.slo_miss;
    r.in_flight += c.in_flight;
    s.slo_miss += c.slo_miss;
    s.bytes_total += c.bytes_out;
    s.downtime_ns_total += c.downtime_ns;
    s.dirty_blocks_total += c.dirty_blocks;
  }
  for (std::size_t r = 0; r < racks.size(); ++r) {
    RackRow& row = racks[r];
    const bool active = row.bytes_out != 0 || row.bytes_in != 0 ||
                        row.dirty_blocks != 0 || row.jobs_completed != 0 ||
                        row.jobs_failed != 0 || row.slo_miss != 0 ||
                        row.in_flight != 0;
    if (!active) continue;
    row.rack = static_cast<std::uint32_t>(r);
    s.racks.push_back(row);
  }

  s.hot_dirty = top_k_by([](const HostCell& c) { return c.dirty_blocks; });
  s.hot_bytes =
      top_k_by([](const HostCell& c) { return c.bytes_out + c.bytes_in; });
  s.hot_slo = top_k_by(
      [](const HostCell& c) { return static_cast<std::uint64_t>(c.slo_miss); });

  s.shards.resize(sim_.shard_count());
  for (std::uint32_t i = 0; i < sim_.shard_count(); ++i) {
    ShardRow& row = s.shards[i];
    row.live = sim_.shard_live(i);
    row.queued = sim_.shard_queued(i);
    row.head_lag_ns = sim_.shard_head_lag_ns(i);
  }

  snaps_.push_back(std::move(s));
}

void Rollup::tick() {
  sim_.note_observer_tick_fired();
  sample_now();
  // Park when nothing but observer ticks is pending, exactly like the
  // Registry sampler: re-arming unconditionally would keep Simulator::run
  // spinning forever, and a plain has_pending() test would count a
  // co-attached Registry's tick as work (and vice versa), so the two
  // samplers would keep each other alive forever.
  if (sim_.pending_count() > sim_.observer_ticks()) {
    sim_.note_observer_tick_armed();
    sim_.schedule_after(cfg_.sample_interval, [this] { tick(); });
  } else {
    sampling_ = false;
  }
}

void Rollup::start_sampling() {
  if (sampling_) return;
  sampling_ = true;
  sample_now();
  sim_.note_observer_tick_armed();
  sim_.schedule_after(cfg_.sample_interval, [this] { tick(); });
}

namespace {

/// "<stamp><metric>,<value>\n" with the value printed as an exact integer.
void row_u(std::ostream& out, const char* stamp, const std::string& metric,
           std::uint64_t v) {
  out << stamp << metric << ',' << v << '\n';
}

void row_i(std::ostream& out, const char* stamp, const std::string& metric,
           std::int64_t v) {
  out << stamp << metric << ',' << v << '\n';
}

}  // namespace

void Rollup::write_csv(std::ostream& out, bool include_shards) const {
  out << "t_seconds,metric,value\n";
  char stamp[32];
  for (const Snapshot& s : snaps_) {
    std::snprintf(stamp, sizeof stamp, "%.6f,",
                  static_cast<double>(s.t_ns) / 1e9);
    row_u(out, stamp, "fleet.jobs_submitted", s.submitted);
    row_u(out, stamp, "fleet.jobs_running", s.running);
    row_u(out, stamp, "fleet.jobs_completed", s.completed);
    row_u(out, stamp, "fleet.jobs_failed", s.failed);
    row_u(out, stamp, "fleet.jobs_pending",
          s.submitted - s.running - s.completed - s.failed);
    row_u(out, stamp, "fleet.retries", s.retries);
    row_u(out, stamp, "fleet.deferrals", s.deferrals);
    row_u(out, stamp, "fleet.slo_miss", s.slo_miss);
    row_u(out, stamp, "fleet.bytes_total", s.bytes_total);
    row_i(out, stamp, "fleet.downtime_ns_total", s.downtime_ns_total);
    row_u(out, stamp, "fleet.dirty_blocks_total", s.dirty_blocks_total);
    row_u(out, stamp, "sched.pending_events", s.pending_events);
    row_u(out, stamp, "sched.events_processed", s.events_processed);
    row_u(out, stamp, "sched.ff_settles", s.ff_settles);
    for (const RackRow& r : s.racks) {
      const std::string p = "rack" + std::to_string(r.rack);
      row_u(out, stamp, p + ".bytes_out", r.bytes_out);
      row_u(out, stamp, p + ".bytes_in", r.bytes_in);
      row_u(out, stamp, p + ".dirty_blocks", r.dirty_blocks);
      row_u(out, stamp, p + ".jobs_completed", r.jobs_completed);
      row_u(out, stamp, p + ".jobs_failed", r.jobs_failed);
      row_u(out, stamp, p + ".slo_miss", r.slo_miss);
      row_i(out, stamp, p + ".in_flight", r.in_flight);
    }
    const struct {
      const char* prefix;
      const char* metric;
      const std::vector<HotRow>* rows;
    } hot_tables[] = {
        {"hot_dirty", "blocks", &s.hot_dirty},
        {"hot_bytes", "bytes", &s.hot_bytes},
        {"hot_slo", "miss", &s.hot_slo},
    };
    for (const auto& t : hot_tables) {
      for (std::size_t k = 0; k < t.rows->size(); ++k) {
        const HotRow& h = (*t.rows)[k];
        const std::string p = std::string{t.prefix} + std::to_string(k + 1);
        row_u(out, stamp, p + ".host", h.host);
        row_u(out, stamp, p + "." + t.metric, h.value);
      }
    }
    if (include_shards) {
      for (std::size_t i = 0; i < s.shards.size(); ++i) {
        const ShardRow& sh = s.shards[i];
        const std::string p = "shard" + std::to_string(i);
        row_u(out, stamp, p + ".live", sh.live);
        row_u(out, stamp, p + ".queued", sh.queued);
        row_i(out, stamp, p + ".head_lag_ns", sh.head_lag_ns);
      }
    }
  }
}

std::string Rollup::to_csv(bool include_shards) const {
  std::ostringstream os;
  write_csv(os, include_shards);
  return os.str();
}

}  // namespace vmig::obs
