#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/simulator.hpp"
#include "simcore/time.hpp"

namespace vmig::obs {

/// Fleet rollup tunables. `hosts_per_rack` fixes the host -> rack fold
/// (rack r = host index / hosts_per_rack); `top_k` bounds every hot-host
/// table. Both are part of the export's identity: two runs compare
/// byte-identical only under the same RollupConfig.
struct RollupConfig {
  std::size_t hosts = 0;
  std::size_t hosts_per_rack = 32;
  std::size_t top_k = 8;
  sim::Duration sample_interval = sim::Duration::seconds(1);
};

/// Terminal-job slice the orchestrator folds into the rollup — plain
/// integers so obs keeps no dependency on core (mirrors MigrationClose).
struct RollupJobClose {
  bool completed = false;
  /// deadline > 0 and the job either failed or overran it (the same
  /// predicate `vmig_analyze` prints in its SLO table).
  bool slo_miss = false;
  /// MigrationReport::total_bytes() of the terminal attempt.
  std::uint64_t bytes = 0;
  std::int64_t downtime_ns = 0;
  /// blocks_retransferred + residual_dirty_blocks of the terminal attempt —
  /// the re-dirty churn the migration observed (the "dirty rate" hotness
  /// signal at fleet scope).
  std::uint64_t dirty_blocks = 0;
};

/// Deterministic hierarchical aggregation tree: VM -> host -> rack -> fleet.
///
/// Engine objects feed per-host accumulator cells (keyed by the host's
/// stable testbed index, never by materialization order); `sample_now`
/// folds the cells upward into one bounded snapshot — fleet totals, active
/// racks, top-K hot hosts by dirty churn / migration bytes / SLO burn, and
/// per-shard scheduler occupancy — so a 100k-VM run exports
/// O(racks + top_k + shards) series per sample instead of per-entity
/// cardinality.
///
/// Determinism contract (pinned by tests/scale_test.cpp):
///   - the full export is byte-identical across replays of one configuration;
///   - everything except the `shard<i>.*` rows is additionally byte-identical
///     across shard counts and across lazy/eager materialization (per-shard
///     occupancy is a property of the shard layout, not of the workload, so
///     `write_csv(out, /*include_shards=*/false)` is the invariant view).
///
/// Zero-overhead when off: holders keep a `Rollup*` that is null when fleet
/// telemetry is disabled — every feed site is one branch, and no rollup
/// state exists in an uninstrumented run.
class Rollup {
 public:
  Rollup(sim::Simulator& sim, RollupConfig cfg);

  Rollup(const Rollup&) = delete;
  Rollup& operator=(const Rollup&) = delete;

  /// Bind an engine host object to its stable fleet index. Cells are
  /// pre-sized at construction; registration only teaches the rollup which
  /// pointer means which index (lazy testbeds register at materialization).
  void register_host(const void* host, std::uint32_t index);

  // ---- Engine feed (orchestrator; null-guarded at every call site) ----
  void job_submitted();
  /// One attempt launched: src/dst in-flight up.
  void attempt_started(const void* src, const void* dst);
  /// The attempt left the running state (terminal or about to retry).
  void attempt_finished(const void* src, const void* dst);
  /// A failed attempt was re-queued through backoff.
  void job_retry(const void* src);
  /// A scheduling pass deferred every eligible job (cycle-aware policy).
  void deferral();
  /// The job reached a terminal state; attributed to the source host.
  void job_terminal(const void* src, const void* dst,
                    const RollupJobClose& close);

  // ---- Sampling ----
  /// Take one snapshot now and re-sample every `sample_interval` of sim
  /// time. The timer parks itself when the event queue drains (the Registry
  /// sampler convention), so an attached rollup never keeps the simulator
  /// alive on its own. Call `sample_now()` once more after the run drains
  /// to capture the terminal fleet state.
  void start_sampling();
  bool sampling() const noexcept { return sampling_; }
  /// Fold the host cells into one snapshot at sim.now().
  void sample_now();

  std::size_t snapshot_count() const noexcept { return snaps_.size(); }
  std::size_t host_count() const noexcept { return cells_.size(); }
  std::size_t rack_count() const noexcept { return racks_; }

  /// Long-format CSV ("t_seconds,metric,value"), one bounded row group per
  /// snapshot, integers printed exactly (no float rounding, so downstream
  /// reconciliation against the flight record is exact). `include_shards`
  /// appends the `shard<i>.*` scheduler rows — replay-stable, but excluded
  /// from the cross-shard-count byte-identity contract by construction.
  void write_csv(std::ostream& out, bool include_shards = true) const;
  std::string to_csv(bool include_shards = true) const;

 private:
  /// Per-host accumulator cell, indexed by fleet host index.
  struct HostCell {
    std::uint64_t bytes_out = 0;     ///< terminal-attempt bytes, as source
    std::uint64_t bytes_in = 0;      ///< terminal-attempt bytes, as dest
    std::uint64_t dirty_blocks = 0;  ///< re-dirty churn of terminal attempts
    std::uint32_t completed = 0;
    std::uint32_t failed = 0;
    std::uint32_t retries = 0;
    std::uint32_t slo_miss = 0;
    std::int64_t downtime_ns = 0;
    std::int32_t in_flight = 0;      ///< running attempts touching this host
  };
  struct RackRow {
    std::uint32_t rack = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t dirty_blocks = 0;
    std::uint32_t jobs_completed = 0;
    std::uint32_t jobs_failed = 0;
    std::uint32_t slo_miss = 0;
    std::int32_t in_flight = 0;
  };
  struct HotRow {
    std::uint32_t host = 0;
    std::uint64_t value = 0;
  };
  struct ShardRow {
    std::uint64_t live = 0;      ///< armed timers filed into the shard
    std::uint64_t queued = 0;    ///< agenda + ring entries (incl. stale)
    std::int64_t head_lag_ns = 0;
  };
  struct Snapshot {
    std::int64_t t_ns = 0;
    std::uint64_t submitted = 0;
    std::uint64_t running = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t deferrals = 0;
    std::uint64_t slo_miss = 0;
    std::uint64_t bytes_total = 0;
    std::int64_t downtime_ns_total = 0;
    std::uint64_t dirty_blocks_total = 0;
    std::uint64_t pending_events = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t ff_settles = 0;
    std::vector<RackRow> racks;  ///< active racks only, ascending id
    std::vector<HotRow> hot_dirty;
    std::vector<HotRow> hot_bytes;
    std::vector<HotRow> hot_slo;
    std::vector<ShardRow> shards;
  };

  HostCell* cell(const void* host);
  void tick();
  /// Deterministic top-K of nonzero `value(cell)` rows: value desc, host
  /// index asc — the tie-break that keeps lazy/eager exports identical.
  template <typename ValueFn>
  std::vector<HotRow> top_k_by(ValueFn value) const;

  sim::Simulator& sim_;
  RollupConfig cfg_;
  std::size_t racks_ = 0;
  std::vector<HostCell> cells_;
  std::unordered_map<const void*, std::uint32_t> host_of_;

  // Fleet-only counters (no per-host attribution).
  std::uint64_t submitted_ = 0;
  std::uint64_t running_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t deferrals_ = 0;

  std::vector<Snapshot> snaps_;
  bool sampling_ = false;
};

}  // namespace vmig::obs
