#include "obs/tracer.hpp"

namespace vmig::obs {

TrackId Tracer::track(const std::string& process, const std::string& thread) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].process == process && tracks_[i].thread == thread) {
      return static_cast<TrackId>(i);
    }
  }
  tracks_.push_back(Track{process, thread});
  return static_cast<TrackId>(tracks_.size() - 1);
}

void Tracer::push(Event e) {
  if (ring_.size() < cap_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % cap_;
  ++dropped_;
}

void Tracer::complete(TrackId track, sim::TimePoint start, std::string name,
                      std::string args) {
  complete(track, start, sim_.now(), std::move(name), std::move(args));
}

void Tracer::complete(TrackId track, sim::TimePoint start, sim::TimePoint end,
                      std::string name, std::string args) {
  Event e;
  e.track = track;
  e.start = start;
  e.dur = end - start;
  e.name = std::move(name);
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::instant(TrackId track, std::string name, std::string args) {
  Event e;
  e.track = track;
  e.start = sim_.now();
  e.instant = true;
  e.name = std::move(name);
  e.args = std::move(args);
  push(std::move(e));
}

std::vector<Tracer::Event> Tracer::snapshot() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < cap_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < cap_; ++i) {
    out.push_back(ring_[(head_ + i) % cap_]);
  }
  return out;
}

}  // namespace vmig::obs
