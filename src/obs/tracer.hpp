#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "simcore/simulator.hpp"
#include "simcore/time.hpp"

namespace vmig::obs {

/// Identifies one (process, thread) pair in the exported trace. In this
/// simulator a "process" is a host and a "thread" is a component on it
/// ("source/tpm", "dest/postcopy", ...).
using TrackId = std::uint32_t;

/// Span/event recorder with sim timestamps and bounded memory.
///
/// Events live in a fixed-capacity ring buffer: once full, the oldest events
/// are overwritten and counted in `dropped()`. Everything recorded derives
/// from simulated time, so two runs of the same deterministic experiment
/// produce byte-identical exports.
///
/// Spans are recorded as *complete* events (start + duration, emitted when
/// the span ends), which keeps concurrent overlapping spans on one track
/// well-formed — there is no begin/end pairing to corrupt when the ring
/// wraps.
class Tracer {
 public:
  struct Track {
    std::string process;
    std::string thread;
  };
  struct Event {
    TrackId track = 0;
    sim::TimePoint start{};
    sim::Duration dur{};  ///< zero for instants
    bool instant = false;
    std::string name;
    /// Pre-rendered JSON object body ("\"block\":12,\"n\":3"), or empty.
    std::string args;
  };

  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(sim::Simulator& sim, std::size_t capacity = kDefaultCapacity)
      : sim_{sim}, cap_{capacity == 0 ? 1 : capacity} {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Get-or-create the track for a (process, thread) pair.
  TrackId track(const std::string& process, const std::string& thread);

  /// Record a span that started at `start` and ends now.
  void complete(TrackId track, sim::TimePoint start, std::string name,
                std::string args = {});
  /// Record a span with an explicit end — for spans reconstructed after the
  /// fact from recorded timestamps (e.g. the TPM phase spans derived from
  /// MigrationReport), where "now" is past the span's true end.
  void complete(TrackId track, sim::TimePoint start, sim::TimePoint end,
                std::string name, std::string args = {});
  /// Record a point event at the current sim time.
  void instant(TrackId track, std::string name, std::string args = {});

  sim::TimePoint now() const noexcept { return sim_.now(); }

  const std::vector<Track>& tracks() const noexcept { return tracks_; }
  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return cap_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Events oldest-first, in emission order.
  std::vector<Event> snapshot() const;

 private:
  void push(Event e);

  sim::Simulator& sim_;
  std::size_t cap_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< next overwrite position once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<Track> tracks_;
};

/// RAII span: records the start time at construction and emits one complete
/// event when ended (explicitly or by destruction). A null tracer makes
/// every operation a no-op, so call sites need no enabled/disabled branches.
class Span {
 public:
  Span() = default;
  Span(Tracer* t, TrackId track, std::string name, std::string args = {})
      : t_{t}, track_{track}, name_{std::move(name)}, args_{std::move(args)} {
    if (t_ != nullptr) start_ = t_->now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      end();
      t_ = std::exchange(o.t_, nullptr);
      track_ = o.track_;
      start_ = o.start_;
      name_ = std::move(o.name_);
      args_ = std::move(o.args_);
    }
    return *this;
  }

  ~Span() { end(); }

  /// Replace the args recorded with the span (e.g. once counts are known).
  void set_args(std::string args) {
    if (t_ != nullptr) args_ = std::move(args);
  }

  void end() {
    if (t_ == nullptr) return;
    t_->complete(track_, start_, std::move(name_), std::move(args_));
    t_ = nullptr;
  }

 private:
  Tracer* t_ = nullptr;
  TrackId track_ = 0;
  sim::TimePoint start_{};
  std::string name_;
  std::string args_;
};

}  // namespace vmig::obs
