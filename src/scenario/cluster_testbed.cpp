#include "scenario/cluster_testbed.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/rollup.hpp"

namespace vmig::scenario {

namespace {

std::uint32_t auto_shards(int hosts) {
  if (hosts < 256) return 1;
  const int s = hosts / 64;
  return static_cast<std::uint32_t>(std::clamp(s, 2, 64));
}

}  // namespace

ClusterTestbed::ClusterTestbed(sim::Simulator& sim, ClusterTestbedConfig cfg)
    : sim_{sim}, cfg_{cfg}, manager_{sim} {
  if (cfg_.hosts < 2) {
    throw std::invalid_argument{"cluster testbed needs at least 2 hosts"};
  }
  const std::uint32_t want =
      cfg_.shards > 0 ? static_cast<std::uint32_t>(cfg_.shards)
                      : auto_shards(cfg_.hosts);
  // Reconfiguring requires an empty calendar; a testbed constructed into a
  // sim that is already mid-flight keeps whatever sharding it has.
  if (want != sim_.shard_count() && sim_.pending_count() == 0) {
    sim_.configure_shards(want);
  }
  host_slots_.resize(static_cast<std::size_t>(cfg_.hosts));
  vms_per_host_.assign(static_cast<std::size_t>(cfg_.hosts), 0);
  if (!cfg_.lazy) {
    for (std::size_t i = 0; i < host_slots_.size(); ++i) materialize_host(i);
    for (std::size_t a = 0; a < host_slots_.size(); ++a) {
      for (std::size_t b = a + 1; b < host_slots_.size(); ++b) {
        hv::Host::interconnect(*host_slots_[a], *host_slots_[b], cfg_.lan);
      }
    }
  }
}

std::uint32_t ClusterTestbed::shard_of(std::size_t host_index) const {
  return static_cast<std::uint32_t>(host_index % sim_.shard_count());
}

hv::Host& ClusterTestbed::materialize_host(std::size_t i) {
  auto& slot = host_slots_.at(i);
  if (slot != nullptr) return *slot;
  slot = std::make_unique<hv::Host>(
      sim_, "host" + std::to_string(i),
      storage::Geometry::from_mib(cfg_.vbd_mib), cfg_.disk, cfg_.payloads);
  hv::Host* hp = slot.get();
  hp->set_shard(shard_of(i));
  // Every materialized testbed host is connected to every other: admission
  // is membership in the reverse index, so the semantic mesh is full while
  // only the links actually traversed are materialized.
  hp->set_lazy_mesh(
      [this, hp](const hv::Host& peer) {
        return &peer != hp && host_index_.contains(&peer);
      },
      cfg_.lan);
  hp->set_link_created_hook([this, hp](net::Link& l, const hv::Host& peer) {
    if (registry_ != nullptr) {
      l.attach_obs(*registry_, "net." + hp->name() + "->" + peer.name());
    }
  });
  host_index_.emplace(hp, i);
  if (rollup_ != nullptr) {
    rollup_->register_host(hp, static_cast<std::uint32_t>(i));
  }
  ++materialized_hosts_;
  return *hp;
}

hv::Host& ClusterTestbed::host(std::size_t i) { return materialize_host(i); }

std::vector<hv::Host*> ClusterTestbed::hosts_except(std::size_t i) {
  std::vector<hv::Host*> out;
  out.reserve(host_slots_.size() - 1);
  for (std::size_t h = 0; h < host_slots_.size(); ++h) {
    if (h != i) out.push_back(&materialize_host(h));
  }
  return out;
}

std::vector<hv::Host*> ClusterTestbed::pick_destinations(std::size_t from,
                                                         std::size_t count) {
  std::vector<std::size_t> order(host_slots_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::erase(order, from);
  // Registered load, not materialized load: cold placeholders count, so
  // placement matches what an eager run with the same registrations picks.
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (vms_per_host_[a] != vms_per_host_[b]) {
                       return vms_per_host_[a] < vms_per_host_[b];
                     }
                     return a < b;
                   });
  if (order.size() > count) order.resize(count);
  std::vector<hv::Host*> out;
  out.reserve(order.size());
  for (std::size_t h : order) out.push_back(&materialize_host(h));
  return out;
}

std::size_t ClusterTestbed::register_vm(const std::string& name,
                                        std::size_t host_index) {
  ++vms_per_host_.at(host_index);
  const auto id = static_cast<vm::DomainId>(vm_records_.size() + 1);
  vm_records_.push_back(VmRecord{id, name, host_index});
  vm_slots_.emplace_back(nullptr);
  return vm_records_.size() - 1;
}

vm::Domain& ClusterTestbed::materialize_vm(std::size_t i) {
  auto& slot = vm_slots_.at(i);
  if (slot != nullptr) return *slot;
  const VmRecord& rec = vm_records_[i];
  hv::Host& h = materialize_host(rec.host_index);
  slot = std::make_unique<vm::Domain>(sim_, rec.id, rec.name,
                                      cfg_.guest_mem_mib);
  h.attach_domain(*slot);
  ++materialized_vms_;
  if (prefill_) prefill_domain(h, *slot);
  return *slot;
}

vm::Domain& ClusterTestbed::vm(std::size_t i) { return materialize_vm(i); }

vm::Domain& ClusterTestbed::add_vm(const std::string& name,
                                   std::size_t host_index) {
  return materialize_vm(register_vm(name, host_index));
}

void ClusterTestbed::prefill_domain(hv::Host& h, vm::Domain& d) {
  auto& disk = h.vbd_for(d.id());
  const std::uint64_t n = disk.geometry().block_count;
  // Per-domain token base keeps disks distinguishable for integrity checks
  // after several guests land on one host; tokens depend only on (id, block),
  // so lazy and eager materialization stamp identical content.
  const std::uint64_t base =
      0x5000000000000000ull + (static_cast<std::uint64_t>(d.id()) << 32);
  for (std::uint64_t b = 0; b < n; ++b) disk.poke_token(b, base + b);
}

void ClusterTestbed::prefill_disks() {
  prefill_ = true;
  for (std::size_t i = 0; i < vm_slots_.size(); ++i) {
    if (vm_slots_[i] == nullptr) continue;
    prefill_domain(materialize_host(vm_records_[i].host_index), *vm_slots_[i]);
  }
}

core::MigrationConfig ClusterTestbed::paper_migration_config() const {
  return core::MigrationConfig::build()
      .blkd_cpu_per_mib(sim::Duration::micros(7900))
      .disk_iterations(4, 256)
      .bitmap(core::BitmapKind::kFlat)
      .overheads(sim::Duration::millis(20), sim::Duration::millis(30))
      .done();
}

void ClusterTestbed::attach_obs(obs::Registry* registry) {
  registry_ = registry;
  if (registry == nullptr) return;
  obs::Registry& reg = *registry;
  reg.probe("sim.pending_events",
            [this] { return static_cast<double>(sim_.pending_count()); });
  reg.probe("sim.events_processed",
            [this] { return static_cast<double>(sim_.events_processed()); });
  reg.probe("sim.live_roots",
            [this] { return static_cast<double>(sim_.live_root_count()); });
  // Links that already exist attach now; links materialized later attach
  // through the link_created hook at creation time.
  for (const auto& a : host_slots_) {
    if (a == nullptr) continue;
    for (const auto& b : host_slots_) {
      if (b == nullptr || a == b) continue;
      if (net::Link* l = a->find_link(*b)) {
        l->attach_obs(reg, "net." + a->name() + "->" + b->name());
      }
    }
  }
}

void ClusterTestbed::attach_rollup(obs::Rollup* rollup) {
  rollup_ = rollup;
  if (rollup == nullptr) return;
  // Slot order (== testbed index), not host_index_ iteration order: the
  // reverse index is unordered, and registration must not depend on it.
  for (std::size_t i = 0; i < host_slots_.size(); ++i) {
    if (host_slots_[i] != nullptr) {
      rollup->register_host(host_slots_[i].get(),
                            static_cast<std::uint32_t>(i));
    }
  }
}

}  // namespace vmig::scenario
