#include "scenario/cluster_testbed.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace vmig::scenario {

ClusterTestbed::ClusterTestbed(sim::Simulator& sim, ClusterTestbedConfig cfg)
    : sim_{sim}, cfg_{cfg}, manager_{sim} {
  if (cfg_.hosts < 2) {
    throw std::invalid_argument{"cluster testbed needs at least 2 hosts"};
  }
  for (int i = 0; i < cfg_.hosts; ++i) {
    hosts_.push_back(std::make_unique<hv::Host>(
        sim, "host" + std::to_string(i),
        storage::Geometry::from_mib(cfg_.vbd_mib), cfg_.disk, cfg_.payloads));
  }
  for (std::size_t a = 0; a < hosts_.size(); ++a) {
    for (std::size_t b = a + 1; b < hosts_.size(); ++b) {
      hv::Host::interconnect(*hosts_[a], *hosts_[b], cfg_.lan);
    }
  }
}

std::vector<hv::Host*> ClusterTestbed::hosts_except(std::size_t i) {
  std::vector<hv::Host*> out;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (h != i) out.push_back(hosts_[h].get());
  }
  return out;
}

vm::Domain& ClusterTestbed::add_vm(const std::string& name,
                                   std::size_t host_index) {
  const auto id = static_cast<vm::DomainId>(vms_.size() + 1);
  vms_.push_back(
      std::make_unique<vm::Domain>(sim_, id, name, cfg_.guest_mem_mib));
  hosts_.at(host_index)->attach_domain(*vms_.back());
  return *vms_.back();
}

void ClusterTestbed::prefill_disks() {
  for (const auto& host : hosts_) {
    for (vm::Domain* d : host->domains()) {
      auto& disk = host->vbd_for(d->id());
      const std::uint64_t n = disk.geometry().block_count;
      // Per-domain token base keeps disks distinguishable for integrity
      // checks after several guests land on one host.
      const std::uint64_t base =
          0x5000000000000000ull + (static_cast<std::uint64_t>(d->id()) << 32);
      for (std::uint64_t b = 0; b < n; ++b) disk.poke_token(b, base + b);
    }
  }
}

core::MigrationConfig ClusterTestbed::paper_migration_config() const {
  return core::MigrationConfig::build()
      .blkd_cpu_per_mib(sim::Duration::micros(7900))
      .disk_iterations(4, 256)
      .bitmap(core::BitmapKind::kFlat)
      .overheads(sim::Duration::millis(20), sim::Duration::millis(30))
      .done();
}

void ClusterTestbed::attach_obs(obs::Registry* registry) {
  if (registry == nullptr) return;
  obs::Registry& reg = *registry;
  reg.probe("sim.pending_events",
            [this] { return static_cast<double>(sim_.pending_count()); });
  reg.probe("sim.events_processed",
            [this] { return static_cast<double>(sim_.events_processed()); });
  reg.probe("sim.live_roots",
            [this] { return static_cast<double>(sim_.live_root_count()); });
  for (const auto& a : hosts_) {
    for (const auto& b : hosts_) {
      if (a == b || !a->connected_to(*b)) continue;
      a->link_to(*b).attach_obs(reg, "net." + a->name() + "->" + b->name());
    }
  }
}

}  // namespace vmig::scenario
