#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/migration_config.hpp"
#include "core/migration_manager.hpp"
#include "hypervisor/host.hpp"
#include "scenario/testbed.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::obs {
class Registry;
class Rollup;
}  // namespace vmig::obs

namespace vmig::scenario {

/// N-host datacenter environment for cluster orchestration experiments:
/// the paper's testbed hardware (SATA2 disks, Gigabit LAN) scaled out to a
/// full mesh of hosts, each able to carry several smaller DomUs.
struct ClusterTestbedConfig {
  int hosts = 3;
  /// Per-VM VBD size — cluster runs move many disks, so the default is far
  /// smaller than the single-host testbed's 40 GB device.
  std::uint64_t vbd_mib = 512;
  std::uint64_t guest_mem_mib = 256;
  bool payloads = false;
  storage::DiskModelParams disk = TestbedConfig::paper_disk();
  net::LinkParams lan = TestbedConfig::paper_lan();
  /// Materialize hosts, domains, and links only when first touched. The
  /// full-mesh *semantics* are unchanged (connected_to admits every pair);
  /// only the object graph is lazy, which is what lets one run register 10k
  /// hosts / 100k VMs. `false` restores the eager pre-scale behavior
  /// (everything built in the constructor).
  bool lazy = true;
  /// Calendar shards for the simulator: 0 = auto (1 below 256 hosts, then
  /// hosts/64 clamped to [2, 64]); 1 = single calendar; N = exactly N.
  /// Auto-configuration is skipped when the simulator already has pending
  /// events. Sharding never changes results — the (time, seq) fire order is
  /// byte-identical for any shard count (see docs/SCALE.md).
  int shards = 0;
};

/// Hosts ("host0".."hostN-1") fully interconnected with the configured LAN
/// params, a shared MigrationManager, and helpers to place and prefill
/// guests. Deterministic: domain ids are assigned in registration order,
/// and every materialization is an explicit, deterministic touch — a lazy
/// run and an eager run of the same scenario produce byte-identical
/// results.
///
/// Cold hosts and VMs live in a compact prototype table (a name-pattern +
/// per-host registration counts + per-VM records); `host(i)` / `vm(i)`
/// materialize on first touch, as do migrations, fault windows, and
/// rebalance decisions that reach them.
class ClusterTestbed {
 public:
  explicit ClusterTestbed(sim::Simulator& sim, ClusterTestbedConfig cfg = {});

  sim::Simulator& sim() noexcept { return sim_; }
  /// The host at index `i`, materializing it on first touch.
  hv::Host& host(std::size_t i);
  std::size_t host_count() const noexcept { return host_slots_.size(); }
  bool host_materialized(std::size_t i) const {
    return host_slots_.at(i) != nullptr;
  }
  std::size_t materialized_host_count() const noexcept {
    return materialized_hosts_;
  }
  /// All hosts except `i` — the usual destination set for a small-mesh
  /// evacuation. Materializes every host; prefer pick_destinations() at
  /// scale.
  std::vector<hv::Host*> hosts_except(std::size_t i);
  /// The `count` least-loaded hosts (by registered VM count, ties by
  /// index) excluding `from` — deterministic, and the only hosts it
  /// materializes are the ones it returns.
  std::vector<hv::Host*> pick_destinations(std::size_t from,
                                           std::size_t count);
  core::MigrationManager& manager() noexcept { return manager_; }
  const ClusterTestbedConfig& config() const noexcept { return cfg_; }

  /// Create a guest on host `host_index`. Domain ids are assigned in
  /// registration order starting at 1. Materializes the domain (and its
  /// host) immediately; use register_vm for cold placeholders.
  vm::Domain& add_vm(const std::string& name, std::size_t host_index);
  /// Register a guest without materializing anything: it gets an id and
  /// counts toward its host's load (pick_destinations, planner balance via
  /// registration counts), but no Domain/VBD/backend exists until vm(i)
  /// first touches it. Returns the VM's index.
  std::size_t register_vm(const std::string& name, std::size_t host_index);
  /// The VM at index `i`, materializing it (and its host) on first touch.
  vm::Domain& vm(std::size_t i);
  bool vm_materialized(std::size_t i) const {
    return vm_slots_.at(i) != nullptr;
  }
  std::size_t vm_count() const noexcept { return vm_records_.size(); }
  std::size_t materialized_vm_count() const noexcept {
    return materialized_vms_;
  }
  /// Registered (cold + materialized) VMs placed on host `i`.
  std::size_t registered_vms_on(std::size_t i) const {
    return vms_per_host_.at(i);
  }

  /// Stamp distinct content onto every block of every guest's VBD
  /// (untimed), so migrations move fully-populated disks and integrity
  /// checks can tell the guests apart. Applies to materialized guests now
  /// and to each cold guest when it materializes (token values depend only
  /// on the domain id, so lazy and eager prefill produce identical disks).
  void prefill_disks();

  /// The single-host testbed's calibrated engine parameters (see
  /// Testbed::paper_migration_config) — valid here because every link and
  /// disk uses the same hardware model.
  core::MigrationConfig paper_migration_config() const;

  /// Register simulator probes ("sim.*") and every directed link's
  /// instruments under "net.<src>-><dst>.*" (names derived from host
  /// names). Links materialized later attach as they are created. Guest
  /// backends are not auto-registered: domains move between hosts, so
  /// per-backend series are scenario-specific. No-op on null.
  void attach_obs(obs::Registry* registry);

  /// Bind a fleet rollup: every already-materialized host registers now
  /// under its stable testbed index, and hosts materialized later register
  /// on first touch — so lazy and eager runs feed identical cells. The
  /// rollup must be sized for at least host_count() hosts. No-op on null.
  void attach_rollup(obs::Rollup* rollup);

 private:
  struct VmRecord {
    vm::DomainId id;
    std::string name;
    std::size_t host_index;
  };

  hv::Host& materialize_host(std::size_t i);
  vm::Domain& materialize_vm(std::size_t i);
  void prefill_domain(hv::Host& h, vm::Domain& d);
  std::uint32_t shard_of(std::size_t host_index) const;

  sim::Simulator& sim_;
  ClusterTestbedConfig cfg_;
  /// Prototype table: slot i is null until host i is touched.
  std::vector<std::unique_ptr<hv::Host>> host_slots_;
  std::vector<VmRecord> vm_records_;
  std::vector<std::unique_ptr<vm::Domain>> vm_slots_;
  std::vector<std::uint32_t> vms_per_host_;
  /// Reverse index for the lazy-mesh oracle (every materialized testbed
  /// host admits every other).
  std::unordered_map<const hv::Host*, std::size_t> host_index_;
  std::size_t materialized_hosts_ = 0;
  std::size_t materialized_vms_ = 0;
  bool prefill_ = false;
  obs::Registry* registry_ = nullptr;
  obs::Rollup* rollup_ = nullptr;
  core::MigrationManager manager_;
};

}  // namespace vmig::scenario
