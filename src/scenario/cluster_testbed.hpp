#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/migration_config.hpp"
#include "core/migration_manager.hpp"
#include "hypervisor/host.hpp"
#include "scenario/testbed.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"

namespace vmig::obs {
class Registry;
}  // namespace vmig::obs

namespace vmig::scenario {

/// N-host datacenter environment for cluster orchestration experiments:
/// the paper's testbed hardware (SATA2 disks, Gigabit LAN) scaled out to a
/// full mesh of hosts, each able to carry several smaller DomUs.
struct ClusterTestbedConfig {
  int hosts = 3;
  /// Per-VM VBD size — cluster runs move many disks, so the default is far
  /// smaller than the single-host testbed's 40 GB device.
  std::uint64_t vbd_mib = 512;
  std::uint64_t guest_mem_mib = 256;
  bool payloads = false;
  storage::DiskModelParams disk = TestbedConfig::paper_disk();
  net::LinkParams lan = TestbedConfig::paper_lan();
};

/// Hosts ("host0".."hostN-1") fully interconnected with the configured LAN
/// params, a shared MigrationManager, and helpers to place and prefill
/// guests. Deterministic: hosts, domains, and ids are created in call
/// order.
class ClusterTestbed {
 public:
  explicit ClusterTestbed(sim::Simulator& sim, ClusterTestbedConfig cfg = {});

  sim::Simulator& sim() noexcept { return sim_; }
  hv::Host& host(std::size_t i) { return *hosts_.at(i); }
  std::size_t host_count() const noexcept { return hosts_.size(); }
  /// All hosts except `i` — the usual destination set for an evacuation.
  std::vector<hv::Host*> hosts_except(std::size_t i);
  core::MigrationManager& manager() noexcept { return manager_; }
  const ClusterTestbedConfig& config() const noexcept { return cfg_; }

  /// Create a guest on host `host_index`. Domain ids are assigned in call
  /// order starting at 1.
  vm::Domain& add_vm(const std::string& name, std::size_t host_index);
  vm::Domain& vm(std::size_t i) { return *vms_.at(i); }
  std::size_t vm_count() const noexcept { return vms_.size(); }

  /// Stamp distinct content onto every block of every guest's VBD
  /// (untimed), so migrations move fully-populated disks and integrity
  /// checks can tell the guests apart.
  void prefill_disks();

  /// The single-host testbed's calibrated engine parameters (see
  /// Testbed::paper_migration_config) — valid here because every link and
  /// disk uses the same hardware model.
  core::MigrationConfig paper_migration_config() const;

  /// Register simulator probes ("sim.*") and every directed link's
  /// instruments under "net.<src>-><dst>.*" (names derived from host
  /// names). Guest backends are not auto-registered: domains move between
  /// hosts, so per-backend series are scenario-specific. No-op on null.
  void attach_obs(obs::Registry* registry);

 private:
  sim::Simulator& sim_;
  ClusterTestbedConfig cfg_;
  std::vector<std::unique_ptr<hv::Host>> hosts_;
  std::vector<std::unique_ptr<vm::Domain>> vms_;
  core::MigrationManager manager_;
};

}  // namespace vmig::scenario
