#include "scenario/testbed.hpp"

#include "obs/metrics.hpp"

namespace vmig::scenario {

using namespace vmig::sim::literals;

storage::DiskModelParams TestbedConfig::paper_disk() {
  storage::DiskModelParams p;
  p.seq_read_mbps = 88.0;
  p.seq_write_mbps = 82.0;
  p.seek = 4_ms;  // effective: elevator/NCQ merge absorbs half the raw 8 ms
  p.request_overhead = 80_us;
  p.seq_gap_blocks = 64;
  return p;
}

net::LinkParams TestbedConfig::paper_lan() {
  net::LinkParams p;
  p.bandwidth_mibps = 119.0;  // GbE payload
  p.latency = 200_us;
  return p;
}

Testbed::Testbed(sim::Simulator& sim, TestbedConfig cfg)
    : sim_{sim}, cfg_{cfg}, manager_{sim} {
  source_ = std::make_unique<hv::Host>(
      sim, "source", storage::Geometry::from_mib(cfg.vbd_mib), cfg.disk,
      cfg.payloads);
  dest_ = std::make_unique<hv::Host>(
      sim, "dest", storage::Geometry::from_mib(cfg.vbd_mib), cfg.disk,
      cfg.payloads);
  hv::Host::interconnect(*source_, *dest_, cfg.lan);
  vm_ = std::make_unique<vm::Domain>(sim, 1, "guest", cfg.guest_mem_mib);
  source_->attach_domain(*vm_);
}

core::MigrationConfig Testbed::paper_migration_config() const {
  // Calibration: source-side chunk cost = disk read (1 MiB / 88 MiB/s ≈
  // 11.6 ms) + blkd user-space cost (8.8 ms) ≈ 20.4 ms/MiB → ~49 MiB/s,
  // matching the paper's 39070 MB / 796 s steady rate. The link (8.4
  // ms/MiB) overlaps and is not the bottleneck, so guest LAN traffic still
  // fits beside the migration stream.
  //
  // The flat bitmap is what the paper's prototype ships (the plain 1.2 MB
  // bitmap); the layered bitmap is its proposed optimization, compared in
  // the ablation bench. Overheads model Xen suspend/resume plus device
  // teardown/reattach on 2008-era hardware.
  return core::MigrationConfig::build()
      .blkd_cpu_per_mib(sim::Duration::micros(7900))
      .disk_iterations(4, 256)
      .bitmap(core::BitmapKind::kFlat)
      .overheads(sim::Duration::millis(20), sim::Duration::millis(30))
      .done();
}

void Testbed::prefill_disk() {
  auto& disk = source_->disk();
  const std::uint64_t n = disk.geometry().block_count;
  for (std::uint64_t b = 0; b < n; ++b) {
    disk.poke_token(b, 0x5000000000000000ull + b);
  }
}

void Testbed::attach_obs(obs::Registry* registry) {
  if (registry == nullptr) return;
  obs::Registry& reg = *registry;
  // The simulator can't depend on obs (it sits below it), so it is observed
  // from outside through probes.
  reg.probe("sim.pending_events",
            [this] { return static_cast<double>(sim_.pending_count()); });
  reg.probe("sim.events_processed",
            [this] { return static_cast<double>(sim_.events_processed()); });
  reg.probe("sim.live_roots",
            [this] { return static_cast<double>(sim_.live_root_count()); });
  // Canonical link metric names derive from the host names ("net.a->b.*"),
  // matching what ClusterTestbed registers for arbitrary topologies. The
  // legacy fixed names stay exported as aliases — see docs/OBSERVABILITY.md.
  const std::string fwd = "net." + source_->name() + "->" + dest_->name();
  const std::string rev = "net." + dest_->name() + "->" + source_->name();
  source_->link_to(*dest_).attach_obs(reg, fwd);
  dest_->link_to(*source_).attach_obs(reg, rev);
  for (const char* suffix :
       {".bytes", ".messages", ".utilization", ".backlog_bytes"}) {
    reg.alias("net.source_to_dest" + std::string{suffix}, fwd + suffix);
    reg.alias("net.dest_to_source" + std::string{suffix}, rev + suffix);
  }
  source_->backend_for(vm_->id()).attach_obs(reg, "blk.source");
  dest_->backend_for(vm_->id()).attach_obs(reg, "blk.dest");
}

sim::Task<void> Testbed::tpm_script(workload::Workload* wl, sim::Duration warmup,
                                    sim::Duration post,
                                    core::MigrationConfig cfg,
                                    core::MigrationReport* out) {
  if (wl != nullptr) wl->start();
  co_await sim_.delay(warmup);
  core::MigrationOutcome res = co_await manager_.migrate(
      {.domain = vm_.get(), .from = source_.get(), .to = dest_.get(),
       .config = cfg});
  *out = res.report;
  co_await sim_.delay(post);
  if (wl != nullptr) {
    wl->request_stop();
    co_await wl->handle();
    wl->finish_metrics();
  }
}

sim::Task<void> Testbed::im_script(workload::Workload* wl, sim::Duration warmup,
                                   sim::Duration dwell, sim::Duration post,
                                   core::MigrationConfig cfg,
                                   core::MigrationReport* primary,
                                   core::MigrationReport* incremental) {
  if (wl != nullptr) wl->start();
  co_await sim_.delay(warmup);
  core::MigrationOutcome out_res = co_await manager_.migrate(
      {.domain = vm_.get(), .from = source_.get(), .to = dest_.get(),
       .config = cfg});
  *primary = out_res.report;
  co_await sim_.delay(dwell);
  core::MigrationOutcome back_res = co_await manager_.migrate(
      {.domain = vm_.get(), .from = dest_.get(), .to = source_.get(),
       .config = cfg});
  *incremental = back_res.report;
  co_await sim_.delay(post);
  if (wl != nullptr) {
    wl->request_stop();
    co_await wl->handle();
    wl->finish_metrics();
  }
}

core::MigrationReport Testbed::run_tpm(workload::Workload* wl,
                                       sim::Duration warmup, sim::Duration post,
                                       core::MigrationConfig cfg) {
  core::MigrationReport rep;
  sim_.spawn(tpm_script(wl, warmup, post, cfg, &rep), "tpm-experiment");
  sim_.run();
  return rep;
}

std::pair<core::MigrationReport, core::MigrationReport> Testbed::run_tpm_then_im(
    workload::Workload* wl, sim::Duration warmup, sim::Duration dwell,
    sim::Duration post, core::MigrationConfig cfg) {
  core::MigrationReport primary;
  core::MigrationReport incremental;
  sim_.spawn(im_script(wl, warmup, dwell, post, cfg, &primary, &incremental),
             "im-experiment");
  sim_.run();
  return {primary, incremental};
}

}  // namespace vmig::scenario
