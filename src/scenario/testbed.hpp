#pragma once

#include <memory>
#include <utility>

#include "core/migration_config.hpp"
#include "core/migration_manager.hpp"
#include "hypervisor/host.hpp"
#include "simcore/simulator.hpp"
#include "vm/domain.hpp"
#include "workloads/workload.hpp"

namespace vmig::obs {
class Registry;
}  // namespace vmig::obs

namespace vmig::scenario {

/// The paper's experimental environment (§VI-A): two identical hosts —
/// Core 2 Duo, 2 GB RAM, SATA2 local disk — on a Gigabit LAN; one DomU with
/// 512 MB memory and a 40 GB VBD (39070 MB) migrating between them.
struct TestbedConfig {
  std::uint64_t vbd_mib = 39070;
  std::uint64_t guest_mem_mib = 512;
  std::uint64_t seed = 42;
  bool payloads = false;  ///< keep real block bytes (small disks only)

  /// Consumer SATA2 (~2008): fast sequential streaming, slow seeks.
  static storage::DiskModelParams paper_disk();
  /// Gigabit Ethernet payload bandwidth.
  static net::LinkParams paper_lan();

  storage::DiskModelParams disk = paper_disk();
  net::LinkParams lan = paper_lan();
};

/// Two interconnected hosts + the migrating guest + a migration manager,
/// with experiment drivers shared by the benches and examples.
class Testbed {
 public:
  explicit Testbed(sim::Simulator& sim, TestbedConfig cfg = {});

  sim::Simulator& sim() noexcept { return sim_; }
  hv::Host& source() noexcept { return *source_; }
  hv::Host& dest() noexcept { return *dest_; }
  vm::Domain& vm() noexcept { return *vm_; }
  core::MigrationManager& manager() noexcept { return manager_; }
  const TestbedConfig& config() const noexcept { return cfg_; }

  /// Migration parameters calibrated so the end-to-end pre-copy rate over
  /// this testbed lands near the paper's ~49 MB/s (disk streaming + blkd
  /// user-space cost + GbE).
  core::MigrationConfig paper_migration_config() const;

  /// Stamp content onto every block of the source VBD (untimed), so a
  /// migration moves a fully-populated disk as in the paper.
  void prefill_disk();

  /// Register the testbed's standing metrics on `registry`: simulator
  /// probes ("sim.*"), both link directions ("net.source_to_dest.*",
  /// "net.dest_to_source.*"), and both guest backends ("blk.source.*",
  /// "blk.dest.*"). Pair with cfg.obs_registry/obs_tracer for the
  /// engine-side instruments. No-op on null.
  void attach_obs(obs::Registry* registry);

  /// Drive one full experiment: run `wl` (may be null for an idle guest)
  /// for `warmup`, migrate source->dest, keep observing for `post`, stop
  /// the workload, and return the report. Runs the simulator internally.
  core::MigrationReport run_tpm(workload::Workload* wl, sim::Duration warmup,
                                sim::Duration post, core::MigrationConfig cfg);

  /// TPM out, dwell at the destination, then Incremental Migration back.
  /// Returns {primary, incremental} reports.
  std::pair<core::MigrationReport, core::MigrationReport> run_tpm_then_im(
      workload::Workload* wl, sim::Duration warmup, sim::Duration dwell,
      sim::Duration post, core::MigrationConfig cfg);

 private:
  sim::Task<void> tpm_script(workload::Workload* wl, sim::Duration warmup,
                             sim::Duration post, core::MigrationConfig cfg,
                             core::MigrationReport* out);
  sim::Task<void> im_script(workload::Workload* wl, sim::Duration warmup,
                            sim::Duration dwell, sim::Duration post,
                            core::MigrationConfig cfg,
                            core::MigrationReport* primary,
                            core::MigrationReport* incremental);

  sim::Simulator& sim_;
  TestbedConfig cfg_;
  std::unique_ptr<hv::Host> source_;
  std::unique_ptr<hv::Host> dest_;
  std::unique_ptr<vm::Domain> vm_;
  core::MigrationManager manager_;
};

}  // namespace vmig::scenario
