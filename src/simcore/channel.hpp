#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <type_traits>
#include <utility>

#include "simcore/notifier.hpp"
#include "simcore/task.hpp"

namespace vmig::sim {

/// Bounded FIFO channel between coroutines (CSP-style message passing).
///
/// `send` suspends while the channel is full (backpressure — used, e.g., by
/// the Bradford delta-forwarding baseline to model write throttling);
/// `recv` suspends while it is empty. `close()` wakes everyone: pending and
/// future `recv`s drain remaining items then return nullopt; `send`s on a
/// closed channel return false.
template <typename T>
class Channel {
  // GCC 12's coroutine ramp double-destroys an elided aggregate prvalue
  // argument bound to a coroutine's by-value parameter, freeing buffers that
  // were already moved out (observed as heap-use-after-free under ASan).
  // Requiring message types to be non-aggregate (any user-declared
  // constructor suffices) or trivially destructible sidesteps the bug.
  static_assert(std::is_trivially_destructible_v<T> || !std::is_aggregate_v<T>,
                "give T a user-declared constructor (GCC 12 coroutine "
                "parameter double-destruction workaround)");

 public:
  static constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

  explicit Channel(Simulator& sim, std::size_t capacity = kUnbounded)
      : capacity_{capacity == 0 ? 1 : capacity},
        not_empty_{sim},
        not_full_{sim} {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Non-suspending send. Fails when full or closed.
  bool try_send(T v) {
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(v));
    not_empty_.notify_one();
    return true;
  }

  /// Suspending send; returns false if the channel was closed.
  Task<bool> send(T v) {
    while (!closed_ && items_.size() >= capacity_) {
      co_await not_full_.wait();
    }
    if (closed_) co_return false;
    items_.push_back(std::move(v));
    not_empty_.notify_one();
    co_return true;
  }

  /// Non-suspending receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// Suspending receive; nullopt means closed-and-drained.
  Task<std::optional<T>> recv() {
    while (items_.empty()) {
      if (closed_) co_return std::nullopt;
      co_await not_empty_.wait();
    }
    T v = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    co_return v;
  }

  void close() {
    if (closed_) return;
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const noexcept { return closed_; }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  Notifier not_empty_;
  Notifier not_full_;
  bool closed_ = false;
};

}  // namespace vmig::sim
