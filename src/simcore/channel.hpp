#pragma once

#include <bit>
#include <cstddef>
#include <limits>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "simcore/notifier.hpp"
#include "simcore/task.hpp"

namespace vmig::sim {

/// Bounded FIFO channel between coroutines (CSP-style message passing).
///
/// `send` suspends while the channel is full (backpressure — used, e.g., by
/// the Bradford delta-forwarding baseline to model write throttling);
/// `recv` suspends while it is empty. `close()` wakes everyone: pending and
/// future `recv`s drain remaining items then return nullopt; `send`s on a
/// closed channel return false.
///
/// Storage is a power-of-two ring pre-reserved at construction. A deque
/// would free and re-malloc its node blocks as a FIFO wraps, so a busy
/// channel allocated forever; the ring makes steady-state send/recv
/// allocation-free — it only grows (amortized doubling) when depth exceeds
/// every previous high-water mark.
template <typename T>
class Channel {
  // GCC 12's coroutine ramp double-destroys an elided aggregate prvalue
  // argument bound to a coroutine's by-value parameter, freeing buffers that
  // were already moved out (observed as heap-use-after-free under ASan).
  // Requiring message types to be non-aggregate (any user-declared
  // constructor suffices) or trivially destructible sidesteps the bug.
  static_assert(std::is_trivially_destructible_v<T> || !std::is_aggregate_v<T>,
                "give T a user-declared constructor (GCC 12 coroutine "
                "parameter double-destruction workaround)");

 public:
  static constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

  explicit Channel(Simulator& sim, std::size_t capacity = kUnbounded)
      : capacity_{capacity == 0 ? 1 : capacity},
        not_empty_{sim},
        not_full_{sim} {
    // Reserve the ring up front (clamped for unbounded/huge capacities) so
    // the construction site — per-migration setup — pays the allocation,
    // not the first sends on the dispatch path.
    const std::size_t want =
        capacity_ == kUnbounded ? 64 : std::min<std::size_t>(capacity_, 64);
    buf_.resize(std::bit_ceil(std::max<std::size_t>(want, 8)));
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Non-suspending send. Fails when full or closed.
  bool try_send(T v) {
    if (closed_ || count_ >= capacity_) return false;
    push_item(std::move(v));
    not_empty_.notify_one();
    return true;
  }

  /// Suspending send; returns false if the channel was closed.
  Task<bool> send(T v) {
    while (!closed_ && count_ >= capacity_) {
      co_await not_full_.wait();
    }
    if (closed_) co_return false;
    push_item(std::move(v));
    not_empty_.notify_one();
    co_return true;
  }

  /// Non-suspending receive.
  std::optional<T> try_recv() {
    if (count_ == 0) return std::nullopt;
    std::optional<T> v{pop_item()};
    not_full_.notify_one();
    return v;
  }

  /// Suspending receive; nullopt means closed-and-drained.
  Task<std::optional<T>> recv() {
    while (count_ == 0) {
      if (closed_) co_return std::nullopt;
      co_await not_empty_.wait();
    }
    std::optional<T> v{pop_item()};
    not_full_.notify_one();
    co_return v;
  }

  void close() {
    if (closed_) return;
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const noexcept { return closed_; }
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  void push_item(T v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)].emplace(std::move(v));
    ++count_;
  }

  T pop_item() {
    T v = std::move(*buf_[head_]);
    buf_[head_].reset();
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return v;
  }

  // Double the ring, re-linearizing FIFO order from head_. Hit only when
  // depth exceeds every previous high-water mark (amortized growth). h2-ok
  void grow() {
    std::vector<std::optional<T>> next(buf_.size() * 2);  // h2-ok
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::size_t capacity_;
  std::vector<std::optional<T>> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Notifier not_empty_;
  Notifier not_full_;
  bool closed_ = false;
};

}  // namespace vmig::sim
