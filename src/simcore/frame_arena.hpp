#pragma once

#include <cstddef>
#include <new>  // vmig-lint: d5-ok -- header for ::operator new, not an allocation
#include <vector>

#include "obs/profiler.hpp"

namespace vmig::sim::detail {

/// Thread-local size-class free list for coroutine frames.
///
/// The simulator's steady state creates and destroys short-lived coroutines
/// (pull handlers, delay hops, channel sends) at event rate; routing their
/// frames through the general heap makes every dispatch an allocator call.
/// Frames recycle here instead: 64-byte size classes up to 4 KiB, one free
/// list per class, oversized frames fall through to the global heap. A
/// 16-byte header keeps the class index (so unsized delete works) and
/// preserves max_align_t alignment for the frame that follows.
///
/// The arena is thread_local because the simulator itself is
/// single-threaded per instance; tests may run simulators on several
/// threads. Blocks parked on a free list are reachable from the arena and
/// are released by its destructor at thread exit, so leak checkers stay
/// quiet.
// vmig-lint: d5-begin -- frame-pool allocator pen: the arena IS the RAII
// owner; raw ::operator new/delete are the pool's backing store, and parked
// blocks are released by the thread-local Lists destructor.
class FrameArena {
 public:
  static void* allocate(std::size_t n) {
    const std::size_t cls = (n + kHeader + kGranule - 1) / kGranule;
    void* raw;
    if (cls >= kClasses) {
      raw = ::operator new(n + kHeader);
      header(raw) = 0;  // class 0 = not pooled
    } else {
      auto& fl = lists().by_class[cls];
      if (!fl.empty()) {
        raw = fl.back();
        fl.pop_back();
      } else {
        // Free-list miss: a new high-water mark of simultaneously-live
        // frames in this size class. The block becomes permanent pool
        // capacity (amortized growth, like vector doubling), so it is
        // charged kOther — steady-state frame churn hits the reuse branch
        // above and stays allocation-free. Oversized frames (class 0) stay
        // attributed to their caller: those DO malloc per use.
        obs::ProfScope grow_prof{obs::ProfCategory::kOther};
        raw = ::operator new(cls * kGranule);  // h2-ok
      }
      header(raw) = cls;
    }
    return static_cast<char*>(raw) + kHeader;
  }

  static void deallocate(void* p) noexcept {
    if (p == nullptr) return;
    void* raw = static_cast<char*>(p) - kHeader;
    const std::size_t cls = header(raw);
    if (cls == 0) {
      ::operator delete(raw);
      return;
    }
    try {
      // Parking a block can grow the free-list vector itself (pool
      // bookkeeping at a new high-water mark) — amortized capacity,
      // charged kOther like the block growth in allocate().
      obs::ProfScope park_prof{obs::ProfCategory::kOther};
      lists().by_class[cls].push_back(raw);  // h2-ok
    } catch (...) {
      ::operator delete(raw);  // free-list growth failed: just free
    }
  }

 private:
  static constexpr std::size_t kHeader = 16;   // keeps 16-byte frame alignment
  static constexpr std::size_t kGranule = 64;  // size-class width
  static constexpr std::size_t kClasses = 65;  // pool frames up to ~4 KiB

  static std::size_t& header(void* raw) noexcept {
    return *static_cast<std::size_t*>(raw);
  }

  struct Lists {
    std::vector<void*> by_class[kClasses];
    ~Lists() {
      for (auto& v : by_class) {
        for (void* p : v) ::operator delete(p);
      }
    }
  };

  static Lists& lists() {
    static thread_local Lists l;
    return l;
  }
};
// vmig-lint: d5-end

}  // namespace vmig::sim::detail
