#include "simcore/log.hpp"

#include <cstdio>
#include <ostream>

namespace vmig::sim {

LogLevel Log::level_ = LogLevel::kOff;
std::ostream* Log::sink_ = nullptr;

namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

std::string Log::stamp(TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "[%10.4fs]", t.to_seconds());
  return buf;
}

void Log::write(LogLevel l, TimePoint t, const std::string& component,
                const std::string& message) {
  const std::string line = stamp(t) + " " + level_name(l) + " " + component +
                           ": " + message + "\n";
  if (sink_ != nullptr) {
    (*sink_) << line;
    sink_->flush();
  } else {
    std::fputs(line.c_str(), stderr);
  }
}

}  // namespace vmig::sim
