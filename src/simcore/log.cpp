#include "simcore/log.hpp"

#include <cstdio>

namespace vmig::sim {

LogLevel Log::level_ = LogLevel::kOff;

namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void Log::write(LogLevel l, TimePoint t, const std::string& component,
                const std::string& message) {
  std::fprintf(stderr, "[%10.4fs] %s %s: %s\n", t.to_seconds(), level_name(l),
               component.c_str(), message.c_str());
}

}  // namespace vmig::sim
