#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

#include "simcore/time.hpp"

namespace vmig::sim {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Minimal sim-time-stamped logger. Off by default so tests and benches stay
/// quiet; examples turn it on to narrate the migration phases.
///
/// The sink is pluggable: null (the default) writes to stderr; tests inject
/// a std::ostringstream to capture output. Timestamps come from `stamp()`,
/// which the obs timeline exporter shares, so log lines and trace events
/// correlate textually.
class Log {
 public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel l) noexcept { level_ = l; }
  static bool enabled(LogLevel l) noexcept { return l >= level_; }

  /// Redirect output; nullptr restores the stderr default.
  static void set_sink(std::ostream* os) noexcept { sink_ = os; }
  static std::ostream* sink() noexcept { return sink_; }

  /// Shared sim-timestamp prefix: "[   12.3456s]".
  static std::string stamp(TimePoint t);

  /// Emit one line: "[  12.3456s] INFO  component: message".
  static void write(LogLevel l, TimePoint t, const std::string& component,
                    const std::string& message);

 private:
  static LogLevel level_;
  static std::ostream* sink_;
};

/// Streaming helper: LogLine(LogLevel::kInfo, now, "tpm") << "iteration " << i;
class LogLine {
 public:
  LogLine(LogLevel l, TimePoint t, std::string component)
      : level_{l}, t_{t}, component_{std::move(component)} {}
  ~LogLine() {
    if (Log::enabled(level_)) Log::write(level_, t_, component_, ss_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Log::enabled(level_)) ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  TimePoint t_;
  std::string component_;
  std::ostringstream ss_;
};

}  // namespace vmig::sim
