#include "simcore/notifier.hpp"

namespace vmig::sim {

Notifier::~Notifier() {
  // Orphan queued waiters: their frames are owned elsewhere (the simulator's
  // root tasks); they must not try to unlink from a dead list.
  for (Awaiter* w = head_; w != nullptr;) {
    Awaiter* next = w->next_;
    w->state_ = Awaiter::State::kOrphaned;
    w->prev_ = w->next_ = nullptr;
    w = next;
  }
  head_ = tail_ = nullptr;
  count_ = 0;
}

Notifier::Awaiter::~Awaiter() {
  switch (state_) {
    case State::kQueued:
      n_->unlink(this);
      break;
    case State::kNotified:
      // Resume already scheduled but the frame is being destroyed first:
      // cancel so the dead handle is never resumed.
      if (sim_) sim_->cancel(timer_);
      break;
    default:
      break;
  }
}

void Notifier::Awaiter::await_suspend(std::coroutine_handle<> h) {
  h_ = h;
  sim_ = n_->sim_;
  n_->enqueue(this);
}

std::size_t Notifier::notify_one() {
  if (head_ == nullptr) return 0;
  Awaiter* w = head_;
  fire(w);
  return 1;
}

std::size_t Notifier::notify_all() {
  std::size_t n = 0;
  while (head_ != nullptr) {
    fire(head_);
    ++n;
  }
  return n;
}

void Notifier::enqueue(Awaiter* w) {
  w->state_ = Awaiter::State::kQueued;
  w->prev_ = tail_;
  w->next_ = nullptr;
  if (tail_ != nullptr) {
    tail_->next_ = w;
  } else {
    head_ = w;
  }
  tail_ = w;
  ++count_;
}

void Notifier::unlink(Awaiter* w) {
  if (w->prev_ != nullptr) {
    w->prev_->next_ = w->next_;
  } else {
    head_ = w->next_;
  }
  if (w->next_ != nullptr) {
    w->next_->prev_ = w->prev_;
  } else {
    tail_ = w->prev_;
  }
  w->prev_ = w->next_ = nullptr;
  --count_;
}

void Notifier::fire(Awaiter* w) {
  unlink(w);
  w->state_ = Awaiter::State::kNotified;
  w->timer_ = sim_->schedule_after(Duration::zero(), [w] {
    w->state_ = Awaiter::State::kResumed;
    w->h_.resume();  // `w` may be destroyed past this point
  });
}

}  // namespace vmig::sim
