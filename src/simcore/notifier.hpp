#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>

#include "simcore/simulator.hpp"
#include "simcore/task.hpp"

namespace vmig::sim {

/// A condition-variable-like wakeup primitive for coroutines.
///
/// `co_await notifier.wait()` suspends until `notify_one`/`notify_all`.
/// Wakeups are edge-triggered: a notify with no waiters is lost, so callers
/// must re-check their predicate in a loop (exactly like a condition
/// variable). Resumption is routed through the simulator's event queue at the
/// current time, which keeps execution order deterministic and avoids deep
/// recursive resume chains.
///
/// Lifetime: a waiter destroyed while queued (its coroutine frame torn down)
/// deregisters itself; a Notifier destroyed with waiters still queued orphans
/// them (they will simply never resume — their frames are owned and destroyed
/// by the simulator). The Simulator must outlive both, which holds when the
/// Simulator is declared before the objects owning Notifiers.
class Notifier {
 public:
  explicit Notifier(Simulator& sim) : sim_{&sim} {}
  Notifier(const Notifier&) = delete;
  Notifier& operator=(const Notifier&) = delete;
  ~Notifier();

  class [[nodiscard]] Awaiter {
   public:
    explicit Awaiter(Notifier& n) : n_{&n} {}
    Awaiter(const Awaiter&) = delete;
    Awaiter& operator=(const Awaiter&) = delete;
    ~Awaiter();

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() noexcept {}

   private:
    friend class Notifier;
    enum class State : std::uint8_t { kCreated, kQueued, kNotified, kResumed, kOrphaned };
    Notifier* n_;
    Simulator* sim_ = nullptr;
    std::coroutine_handle<> h_{};
    Simulator::TimerId timer_ = 0;
    State state_ = State::kCreated;
    Awaiter* prev_ = nullptr;
    Awaiter* next_ = nullptr;
  };

  /// Returns an awaitable that suspends the caller until notified.
  Awaiter wait() { return Awaiter{*this}; }

  /// Wake the oldest waiter. Returns the number woken (0 or 1).
  std::size_t notify_one();
  /// Wake all current waiters. Returns the number woken.
  std::size_t notify_all();

  std::size_t waiter_count() const noexcept { return count_; }

 private:
  void enqueue(Awaiter* w);
  void unlink(Awaiter* w);
  void fire(Awaiter* w);

  Simulator* sim_;
  Awaiter* head_ = nullptr;
  Awaiter* tail_ = nullptr;
  std::size_t count_ = 0;
};

/// One-shot latch: waits pass immediately once opened.
///
/// Unlike a raw Notifier, a Gate has no spurious wakeups: its waiters are
/// only ever notified by open(). wait() therefore does NOT re-check the
/// flag after resuming — deliberately, so that `gate->open(); delete gate;`
/// is safe even though the waiters' resumptions are still queued in the
/// simulator (they never touch the Gate again).
class Gate {
 public:
  explicit Gate(Simulator& sim) : n_{sim} {}

  bool is_open() const noexcept { return open_; }
  void open() {
    open_ = true;
    n_.notify_all();
  }

  /// Suspends until the gate opens (immediately if already open).
  Task<void> wait() {
    if (open_) co_return;
    co_await n_.wait();
  }

  /// Recycle support (core::GatePool): back to the closed state. Only valid
  /// with no queued waiter — after open() every waiter has been handed to
  /// the simulator, so an opened gate can be reset immediately.
  void reset() noexcept {
    assert(n_.waiter_count() == 0);
    open_ = false;
  }

 private:
  Notifier n_;
  bool open_ = false;
};

}  // namespace vmig::sim
