#include "simcore/rng.hpp"

#include <cmath>

namespace vmig::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork() { return Rng{next_u64()}; }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation with rejection.
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t x = next_u64();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform_double() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform_double();
  } while (u1 == 0.0);
  const double u2 = uniform_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586 * u2);
}

double Rng::pareto(double lo, double hi, double alpha) {
  const double u = uniform_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return x;
}

std::uint64_t Rng::zipf(std::uint64_t n, double theta) {
  if (n <= 1) return 0;
  const double u = uniform_double();
  const double r = std::pow(u, 1.0 / (1.0 - theta));
  auto idx = static_cast<std::uint64_t>(r * static_cast<double>(n));
  return idx >= n ? n - 1 : idx;
}

}  // namespace vmig::sim
