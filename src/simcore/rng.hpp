#pragma once

#include <cstdint>
#include <limits>

namespace vmig::sim {

/// Deterministic pseudo-random generator (xoshiro256** seeded by splitmix64).
///
/// Every stochastic component of the simulation draws from an `Rng` owned by
/// that component, so experiments are exactly reproducible from a single
/// top-level seed and independent components can be re-seeded without
/// perturbing each other (a requirement for A/B ablation benches).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Bounded Pareto-like heavy tail on [lo, hi] with shape alpha (> 0).
  /// Used for request-size and think-time modeling.
  double pareto(double lo, double hi, double alpha);

  /// Zipf-like rank selection over [0, n): lower ranks more popular.
  /// theta in (0, 1) is skew; implemented by inverse-power transform
  /// (approximate but monotone and cheap), good enough for locality modeling.
  std::uint64_t zipf(std::uint64_t n, double theta);

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4] = {};
};

/// splitmix64 step — exposed for deterministic hashing elsewhere.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace vmig::sim
