#include "simcore/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace vmig::sim {

const std::string& SpawnHandle::name() const {
  static const std::string kEmpty;
  return st_ ? st_->name : kEmpty;
}

DelayAwaiter::~DelayAwaiter() {
  if (scheduled_ && !fired_) sim_.cancel(timer_);
}

void DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  const Duration d = d_ < Duration::zero() ? Duration::zero() : d_;
  const auto arm = [this, h](Duration dd) {
    timer_ = sim_.schedule_after(dd, [this, h] {
      fired_ = true;
      h.resume();  // `this` may be destroyed past this point
    });
  };
  if (shard_ == kInheritShard) {
    arm(d);
  } else {
    Simulator::ShardScope scope{sim_, shard_};
    arm(d);
  }
  scheduled_ = true;
}

Simulator::Simulator() {
  shards_.resize(1);
  shards_[0].bucket_head.assign(kBuckets, kNil);
}

Simulator::~Simulator() {
  tearing_down_ = true;
  // Destroy root frames first: their awaiter destructors may cancel timers,
  // which touches the slot arena, so roots_ must go before the queue state.
  roots_.clear();
}

void Simulator::configure_shards(std::uint32_t n) {
  if (live_count_ != 0) {
    throw std::logic_error{
        "Simulator::configure_shards: events are pending; shard layout can "
        "only change on an empty calendar"};
  }
  n = std::clamp<std::uint32_t>(n, 1, kMaxShards);
  shards_.clear();
  shards_.resize(n);
  for (auto& sh : shards_) {
    sh.bucket_head.assign(kBuckets, kNil);
    // Start each calendar's epoch at the current day so a shard configured
    // mid-run does not spin through every day since the origin.
    sh.epoch_bucket = bucket_of(now_.ns());
  }
  heads_.clear();
  current_shard_ = 0;
}

// vmig-lint: hot-begin -- timer insert/cancel: every scheduled event passes
// through here; steady state must reuse the slot arena and bucket storage
// vmig-lint: h1-ok -- the callable is moved into a recycled slot, not copied
Simulator::TimerId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();  // vmig-lint: h2-ok -- arena growth: happens once
                            // per high-water mark, then slots recycle
  }
  const std::uint32_t si =
      current_shard_ < shards_.size() ? current_shard_ : 0;
  TimerSlot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  s.shard = si;
  const TimerId id = (static_cast<TimerId>(slot) << 32) | s.gen;
  if (debug_trace_) {
    std::fprintf(stderr, "sim: schedule %llu at %.6f\n",
                 static_cast<unsigned long long>(id), t.to_seconds());
  }
  const Entry e{t.ns(), next_seq_++, slot, s.gen};
  Shard& sh = shards_[si];
  place(sh, e);
  ++sh.live;
  ++live_count_;
  if (shards_.size() > 1) note_insert(si, e);
  return id;
}

// vmig-lint: h1-ok -- forwarding move into schedule_at, no copy
Simulator::TimerId Simulator::schedule_after(Duration d, std::function<void()> fn) {
  if (d < Duration::zero()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(TimerId id) {
  if (debug_trace_) {
    std::fprintf(stderr, "sim: cancel %llu\n",
                 static_cast<unsigned long long>(id));
  }
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (slot >= slots_.size()) return false;
  TimerSlot& s = slots_[slot];
  if (s.gen != gen || !s.armed) return false;
  // Lazy cancellation: disarm the slot and recycle it now; the queue entry
  // (wherever it sits — agenda, ring, or overflow) is detected stale by its
  // generation when the calendar reaches it. The shard's registered head
  // key may now point at a dead entry; peek_global discards it lazily.
  s.armed = false;
  s.fn = nullptr;
  --shards_[s.shard].live;
  release_slot(slot);
  --live_count_;
  return true;
}

std::uint32_t Simulator::alloc_node(const Entry& e) {
  std::uint32_t n;
  if (!free_nodes_.empty()) {
    n = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();  // vmig-lint: h2-ok -- node-arena growth: once per
                            // high-water mark, then nodes recycle
  }
  nodes_[n].e = e;
  nodes_[n].next = kNil;
  return n;
}

void Simulator::place(Shard& sh, const Entry& e) {
  const std::uint64_t b = bucket_of(e.t_ns);
  if (b <= sh.epoch_bucket) {
    // Due today (or in the past-clamped present): keep the agenda sorted
    // descending so the shard minimum stays at the back.
    const auto pos =
        std::upper_bound(sh.agenda.begin(), sh.agenda.end(), e, AgendaCmp{});
    sh.agenda.insert(pos, e);  // vmig-lint: h2-ok -- within retained capacity
                               // after warmup; the agenda drains every day
  } else if (b - sh.epoch_bucket < kBuckets) {
    // Chain a pooled node onto the day's bucket: no allocation even for a
    // bucket touched for the first time (the old vector-per-bucket layout
    // cold-started every bucket's capacity).
    const std::uint32_t n = alloc_node(e);
    auto& head = sh.bucket_head[b & kBucketMask];
    nodes_[n].next = head;
    head = n;
    ++sh.ring_count;
  } else {
    const std::uint32_t n = alloc_node(e);
    nodes_[n].next = sh.overflow_head;
    sh.overflow_head = n;
  }
}

void Simulator::place_node(Shard& sh, std::uint32_t n) {
  const Entry& e = nodes_[n].e;
  const std::uint64_t b = bucket_of(e.t_ns);
  if (b <= sh.epoch_bucket) {
    const auto pos =
        std::upper_bound(sh.agenda.begin(), sh.agenda.end(), e, AgendaCmp{});
    sh.agenda.insert(pos, e);  // vmig-lint: h2-ok -- retained capacity
    free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
  } else if (b - sh.epoch_bucket < kBuckets) {
    auto& head = sh.bucket_head[b & kBucketMask];
    nodes_[n].next = head;
    head = n;
    ++sh.ring_count;
  } else {
    nodes_[n].next = sh.overflow_head;
    sh.overflow_head = n;
  }
}
// vmig-lint: hot-end

void Simulator::release_slot(std::uint32_t slot) {
  TimerSlot& s = slots_[slot];
  if (++s.gen == 0) s.gen = 1;  // gen 0 is reserved so TimerId is never 0
  free_slots_.push_back(slot);
}

// vmig-lint: hot-begin -- timer extract: the event loop's inner machinery;
// must not allocate per event once bucket/agenda capacity is warm
const Simulator::Entry* Simulator::peek_live(Shard& sh) {
  for (;;) {
    while (!sh.agenda.empty()) {
      if (entry_live(sh.agenda.back())) return &sh.agenda.back();
      sh.agenda.pop_back();  // stale (cancelled) entry: lazy deletion
    }
    if (sh.live == 0) return nullptr;
    refill_agenda(sh);
  }
}

void Simulator::refill_agenda(Shard& sh) {
  // Precondition: agenda empty, at least one armed timer in this shard.
  while (sh.agenda.empty()) {
    if (sh.ring_count == 0) {
      // Everything pending lives beyond the ring: jump the epoch straight
      // to the earliest overflow day instead of spinning the calendar.
      assert(sh.overflow_head != kNil);
      // Pass 1: drop dead entries from the chain, find the earliest day.
      std::uint64_t min_b = ~std::uint64_t{0};
      std::uint32_t n = sh.overflow_head;
      std::uint32_t prev = kNil;
      while (n != kNil) {
        const std::uint32_t next = nodes_[n].next;
        if (entry_live(nodes_[n].e)) {
          min_b = std::min(min_b, bucket_of(nodes_[n].e.t_ns));
          prev = n;
        } else {
          if (prev == kNil) {
            sh.overflow_head = next;
          } else {
            nodes_[prev].next = next;
          }
          free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
        }
        n = next;
      }
      assert(sh.overflow_head != kNil);
      sh.epoch_bucket = min_b;
      // Pass 2: detach the chain and re-file every node against the new
      // epoch (place_node may push far-out nodes back onto overflow_head).
      n = sh.overflow_head;
      sh.overflow_head = kNil;
      while (n != kNil) {
        const std::uint32_t next = nodes_[n].next;
        place_node(sh, n);
        n = next;
      }
      continue;
    }
    ++sh.epoch_bucket;
    if ((sh.epoch_bucket & kBucketMask) == 0 && sh.overflow_head != kNil) {
      sweep_overflow(sh);  // crossed into a new year: pull overflow forward
    }
    std::uint32_t n = sh.bucket_head[sh.epoch_bucket & kBucketMask];
    if (n == kNil) continue;
    sh.bucket_head[sh.epoch_bucket & kBucketMask] = kNil;
    while (n != kNil) {
      const std::uint32_t next = nodes_[n].next;
      --sh.ring_count;
      if (entry_live(nodes_[n].e)) {
        sh.agenda.push_back(nodes_[n].e);  // vmig-lint: h2-ok -- retained
                                           // capacity
      }
      free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
      n = next;
    }
    std::sort(sh.agenda.begin(), sh.agenda.end(), AgendaCmp{});
  }
}

void Simulator::sweep_overflow(Shard& sh) {
  std::uint32_t n = sh.overflow_head;
  sh.overflow_head = kNil;
  while (n != kNil) {
    const std::uint32_t next = nodes_[n].next;
    if (entry_live(nodes_[n].e)) {
      place_node(sh, n);  // far entries re-chain onto overflow_head
    } else {
      free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
    }
    n = next;
  }
}

void Simulator::register_key(std::uint32_t si, std::int64_t t_ns,
                             std::uint64_t seq) {
  Shard& sh = shards_[si];
  sh.key_epoch = ++key_epoch_counter_;
  sh.key_t = t_ns;
  sh.key_seq = seq;
  sh.key_registered = true;
  // vmig-lint: h2-ok -- heads_ retains capacity; bounded by live shard count
  heads_.push_back(HeapKey{t_ns, seq, sh.key_epoch, si});
  std::push_heap(heads_.begin(), heads_.end(), HeapCmp{});
}

void Simulator::note_insert(std::uint32_t si, const Entry& e) {
  // Keep the registered key a lower bound on the shard's true head: only a
  // new entry that undercuts the current bound needs a (re-)registration.
  // If the shard was empty its new sole entry IS the head; if it was
  // nonempty the old bound stays <= min(old head, e) whenever e >= bound.
  const Shard& sh = shards_[si];
  if (!sh.key_registered || e.t_ns < sh.key_t ||
      (e.t_ns == sh.key_t && e.seq < sh.key_seq)) {
    register_key(si, e.t_ns, e.seq);
  }
}

const Simulator::Entry* Simulator::peek_global(std::uint32_t* si) {
  if (shards_.size() == 1) {
    *si = 0;
    return peek_live(shards_[0]);
  }
  for (;;) {
    if (live_count_ == 0) return nullptr;
    assert(!heads_.empty());
    const HeapKey k = heads_.front();
    Shard& sh = shards_[k.shard];
    if (k.epoch != sh.key_epoch) {
      // Superseded by a later registration for the same shard: discard.
      std::pop_heap(heads_.begin(), heads_.end(), HeapCmp{});
      heads_.pop_back();
      continue;
    }
    const Entry* pe = peek_live(sh);
    if (pe != nullptr && pe->t_ns == k.t_ns && pe->seq == k.seq) {
      // The bound is exact: because every other shard's registered key is a
      // lower bound on its head and this key won the heap, this entry is
      // the global (t, seq) minimum.
      *si = k.shard;
      return pe;
    }
    // Stale bound (its entry fired or was cancelled). Retire it and
    // re-register the shard's true head, if the shard still has one.
    std::pop_heap(heads_.begin(), heads_.end(), HeapCmp{});
    heads_.pop_back();
    sh.key_registered = false;
    if (pe != nullptr) register_key(k.shard, pe->t_ns, pe->seq);
  }
}

bool Simulator::step() {
  rethrow_pending();
  std::uint32_t si = 0;
  const Entry* pe = peek_global(&si);
  if (pe == nullptr) return false;
  Shard& sh = shards_[si];
  const Entry e = *pe;
  sh.agenda.pop_back();
  TimerSlot& s = slots_[e.slot];
  auto fn = std::move(s.fn);
  s.fn = nullptr;
  s.armed = false;
  release_slot(e.slot);
  --sh.live;
  --live_count_;
  if (shards_.size() > 1) {
    // peek_global left the fired entry's key on top; it is spent now.
    std::pop_heap(heads_.begin(), heads_.end(), HeapCmp{});
    heads_.pop_back();
    sh.key_registered = false;
    // Re-register this shard's true head BEFORE the handler runs. The
    // handler may schedule new entries into this shard, and note_insert's
    // lower-bound reasoning is only sound while a registered key exists for
    // every shard that has one: with no key, the first insert would become
    // the bound even when an older entry is still queued here, and the heap
    // would let another shard overtake it.
    if (sh.live > 0) {
      const Entry* nh = peek_live(sh);
      if (nh != nullptr) register_key(si, nh->t_ns, nh->seq);
    }
  }
  now_ = TimePoint::from_ns(e.t_ns);
  ++events_processed_;
  if (debug_trace_) {
    const TimerId id = (static_cast<TimerId>(e.slot) << 32) | e.gen;
    std::fprintf(stderr, "sim: fire %llu at %.6f\n",
                 static_cast<unsigned long long>(id), now_.to_seconds());
  }
  current_shard_ = si;
  {
    // The handler runs every coroutine it resumes to its next suspension,
    // so nested probe scopes (bitmap scan, pull path, ...) land inside
    // this one; dispatch overhead is the scope's *exclusive* time.
    obs::ProfScope prof{obs::ProfCategory::kSimDispatch};
    obs::prof_count(obs::ProfCategory::kSimDispatch);
    fn();
  }
  current_shard_ = 0;
  if (shards_.size() > 1 && si < shards_.size()) {
    // Restore the head-key invariant for the fired shard (the handler may
    // already have re-registered it by scheduling an earlier entry).
    Shard& fired = shards_[si];
    if (fired.live > 0 && !fired.key_registered) {
      const Entry* nh = peek_live(fired);
      if (nh != nullptr) register_key(si, nh->t_ns, nh->seq);
    }
  }
  rethrow_pending();
  return true;
}
// vmig-lint: hot-end

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  reap_finished_roots();
  return n;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  for (;;) {
    rethrow_pending();
    std::uint32_t si = 0;
    const Entry* pe = peek_global(&si);
    if (pe == nullptr || pe->t_ns > t.ns()) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  reap_finished_roots();
  return n;
}

std::size_t Simulator::run_for(Duration d) { return run_until(now_ + d); }

Task<void> Simulator::root_runner(Task<void> inner,
                                  std::shared_ptr<detail::JoinState> st) {
  try {
    co_await std::move(inner);
  } catch (...) {
    st->error = std::current_exception();
    if (st->sim && !st->sim->pending_error_) {
      st->sim->pending_error_ = st->error;
    }
  }
  st->done = true;
  const auto first = st->joiner0;
  st->joiner0 = {};
  auto extra = std::move(st->extra_joiners);
  st->extra_joiners.clear();
  if (first) first.resume();
  for (auto h : extra) h.resume();
}

SpawnHandle Simulator::spawn(Task<void> task, std::string name) {
  // NOTE: no reaping here. spawn() can be called from inside a running
  // coroutine whose root entry is in roots_ with done already set (a joiner
  // resumed inline by root_runner); destroying that frame mid-execution
  // would be UB. Reaping happens only from run()/run_until(), where no
  // coroutine is on the stack.
  //
  // Setup allocations (join state, root bookkeeping) are deliberate and
  // attributed to kOther so the dispatch loop's alloc counter stays a
  // steady-state signal.
  obs::ProfScope prof{obs::ProfCategory::kOther};
  auto st = std::make_shared<detail::JoinState>();
  st->sim = this;
  st->name = std::move(name);
  Task<void> wrapper = root_runner(std::move(task), st);
  roots_.push_back(RootTask{std::move(wrapper), st});
  roots_.back().wrapper.start();
  return SpawnHandle{st};
}

SpawnHandle Simulator::spawn_on(std::uint32_t shard, Task<void> task,
                                std::string name) {
  // start() runs the task synchronously to its first suspension, so the
  // scope covers every timer the task arms before it first sleeps.
  ShardScope scope{*this, shard};
  return spawn(std::move(task), std::move(name));
}

std::size_t Simulator::live_root_count() const {
  std::size_t n = 0;
  for (const auto& r : roots_) {
    if (!r.state->done) ++n;
  }
  return n;
}

void Simulator::reap_finished_roots() {
  std::erase_if(roots_, [](const RootTask& r) { return r.state->done; });
}

void Simulator::rethrow_pending() {
  if (pending_error_) {
    std::exception_ptr e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace vmig::sim
