#include "simcore/simulator.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/profiler.hpp"

namespace vmig::sim {

const std::string& SpawnHandle::name() const {
  static const std::string kEmpty;
  return st_ ? st_->name : kEmpty;
}

DelayAwaiter::~DelayAwaiter() {
  if (scheduled_ && !fired_) sim_.cancel(timer_);
}

void DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  const Duration d = d_ < Duration::zero() ? Duration::zero() : d_;
  timer_ = sim_.schedule_after(d, [this, h] {
    fired_ = true;
    h.resume();  // `this` may be destroyed past this point
  });
  scheduled_ = true;
}

Simulator::~Simulator() {
  tearing_down_ = true;
  // Destroy root frames first: their awaiter destructors may cancel timers,
  // which touches handlers_, so roots_ must go before the timer structures.
  roots_.clear();
  handlers_.clear();
  heap_.clear();
}

Simulator::TimerId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const TimerId id = next_timer_++;
  if (debug_trace_) {
    std::fprintf(stderr, "sim: schedule %llu at %.6f\n",
                 static_cast<unsigned long long>(id), t.to_seconds());
  }
  heap_.push_back(HeapEntry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
  handlers_.emplace(id, std::move(fn));
  return id;
}

Simulator::TimerId Simulator::schedule_after(Duration d, std::function<void()> fn) {
  if (d < Duration::zero()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(TimerId id) {
  if (debug_trace_) {
    std::fprintf(stderr, "sim: cancel %llu\n",
                 static_cast<unsigned long long>(id));
  }
  return handlers_.erase(id) > 0;
}

// vmig-lint: hot-begin -- step dispatch: every simulated event funnels
// through this loop, so it must not allocate per event
bool Simulator::step() {
  rethrow_pending();
  for (;;) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    auto it = handlers_.find(e.id);
    if (it == handlers_.end()) continue;  // cancelled: lazy deletion
    auto fn = std::move(it->second);  // moved out, not copied: no allocation
    handlers_.erase(it);
    now_ = e.t;
    ++events_processed_;
    if (debug_trace_) {
      std::fprintf(stderr, "sim: fire %llu at %.6f\n",
                   static_cast<unsigned long long>(e.id), now_.to_seconds());
    }
    {
      // The handler runs every coroutine it resumes to its next suspension,
      // so nested probe scopes (bitmap scan, pull path, ...) land inside
      // this one; dispatch overhead is the scope's *exclusive* time.
      obs::ProfScope prof{obs::ProfCategory::kSimDispatch};
      obs::prof_count(obs::ProfCategory::kSimDispatch);
      fn();
    }
    rethrow_pending();
    return true;
  }
}
// vmig-lint: hot-end

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  reap_finished_roots();
  return n;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  for (;;) {
    rethrow_pending();
    // Peek at the earliest live event without firing it.
    bool found = false;
    TimePoint next{};
    // The heap front is earliest but may be cancelled; scan by popping
    // cancelled entries eagerly.
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      if (handlers_.find(top.id) == handlers_.end()) {
        std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
        heap_.pop_back();
        continue;
      }
      next = top.t;
      found = true;
      break;
    }
    if (!found || next > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  reap_finished_roots();
  return n;
}

std::size_t Simulator::run_for(Duration d) { return run_until(now_ + d); }

Task<void> Simulator::root_runner(Task<void> inner,
                                  std::shared_ptr<detail::JoinState> st) {
  try {
    co_await std::move(inner);
  } catch (...) {
    st->error = std::current_exception();
    if (st->sim && !st->sim->pending_error_) {
      st->sim->pending_error_ = st->error;
    }
  }
  st->done = true;
  auto joiners = std::move(st->joiners);
  st->joiners.clear();
  for (auto h : joiners) h.resume();
}

SpawnHandle Simulator::spawn(Task<void> task, std::string name) {
  // NOTE: no reaping here. spawn() can be called from inside a running
  // coroutine whose root entry is in roots_ with done already set (a joiner
  // resumed inline by root_runner); destroying that frame mid-execution
  // would be UB. Reaping happens only from run()/run_until(), where no
  // coroutine is on the stack.
  auto st = std::make_shared<detail::JoinState>();
  st->sim = this;
  st->name = std::move(name);
  Task<void> wrapper = root_runner(std::move(task), st);
  roots_.push_back(RootTask{std::move(wrapper), st});
  roots_.back().wrapper.start();
  return SpawnHandle{st};
}

std::size_t Simulator::live_root_count() const {
  std::size_t n = 0;
  for (const auto& r : roots_) {
    if (!r.state->done) ++n;
  }
  return n;
}

void Simulator::reap_finished_roots() {
  std::erase_if(roots_, [](const RootTask& r) { return r.state->done; });
}

void Simulator::rethrow_pending() {
  if (pending_error_) {
    std::exception_ptr e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace vmig::sim
