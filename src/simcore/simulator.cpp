#include "simcore/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/profiler.hpp"

namespace vmig::sim {

const std::string& SpawnHandle::name() const {
  static const std::string kEmpty;
  return st_ ? st_->name : kEmpty;
}

DelayAwaiter::~DelayAwaiter() {
  if (scheduled_ && !fired_) sim_.cancel(timer_);
}

void DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  const Duration d = d_ < Duration::zero() ? Duration::zero() : d_;
  timer_ = sim_.schedule_after(d, [this, h] {
    fired_ = true;
    h.resume();  // `this` may be destroyed past this point
  });
  scheduled_ = true;
}

Simulator::Simulator() { bucket_head_.assign(kBuckets, kNil); }

Simulator::~Simulator() {
  tearing_down_ = true;
  // Destroy root frames first: their awaiter destructors may cancel timers,
  // which touches the slot arena, so roots_ must go before the queue state.
  roots_.clear();
}

// vmig-lint: hot-begin -- timer insert/cancel: every scheduled event passes
// through here; steady state must reuse the slot arena and bucket storage
// vmig-lint: h1-ok -- the callable is moved into a recycled slot, not copied
Simulator::TimerId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();  // vmig-lint: h2-ok -- arena growth: happens once
                            // per high-water mark, then slots recycle
  }
  TimerSlot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  const TimerId id = (static_cast<TimerId>(slot) << 32) | s.gen;
  if (debug_trace_) {
    std::fprintf(stderr, "sim: schedule %llu at %.6f\n",
                 static_cast<unsigned long long>(id), t.to_seconds());
  }
  place(Entry{t.ns(), next_seq_++, slot, s.gen});
  ++live_count_;
  return id;
}

// vmig-lint: h1-ok -- forwarding move into schedule_at, no copy
Simulator::TimerId Simulator::schedule_after(Duration d, std::function<void()> fn) {
  if (d < Duration::zero()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(fn));
}

bool Simulator::cancel(TimerId id) {
  if (debug_trace_) {
    std::fprintf(stderr, "sim: cancel %llu\n",
                 static_cast<unsigned long long>(id));
  }
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (slot >= slots_.size()) return false;
  TimerSlot& s = slots_[slot];
  if (s.gen != gen || !s.armed) return false;
  // Lazy cancellation: disarm the slot and recycle it now; the queue entry
  // (wherever it sits — agenda, ring, or overflow) is detected stale by its
  // generation when the calendar reaches it.
  s.armed = false;
  s.fn = nullptr;
  release_slot(slot);
  --live_count_;
  return true;
}

std::uint32_t Simulator::alloc_node(const Entry& e) {
  std::uint32_t n;
  if (!free_nodes_.empty()) {
    n = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();  // vmig-lint: h2-ok -- node-arena growth: once per
                            // high-water mark, then nodes recycle
  }
  nodes_[n].e = e;
  nodes_[n].next = kNil;
  return n;
}

void Simulator::place(const Entry& e) {
  const std::uint64_t b = bucket_of(e.t_ns);
  if (b <= epoch_bucket_) {
    // Due today (or in the past-clamped present): keep the agenda sorted
    // descending so the global minimum stays at the back.
    const auto pos =
        std::upper_bound(agenda_.begin(), agenda_.end(), e, AgendaCmp{});
    agenda_.insert(pos, e);  // vmig-lint: h2-ok -- within retained capacity
                             // after warmup; the agenda drains every day
  } else if (b - epoch_bucket_ < kBuckets) {
    // Chain a pooled node onto the day's bucket: no allocation even for a
    // bucket touched for the first time (the old vector-per-bucket layout
    // cold-started every bucket's capacity).
    const std::uint32_t n = alloc_node(e);
    auto& head = bucket_head_[b & kBucketMask];
    nodes_[n].next = head;
    head = n;
    ++ring_count_;
  } else {
    const std::uint32_t n = alloc_node(e);
    nodes_[n].next = overflow_head_;
    overflow_head_ = n;
  }
}

void Simulator::place_node(std::uint32_t n) {
  const Entry& e = nodes_[n].e;
  const std::uint64_t b = bucket_of(e.t_ns);
  if (b <= epoch_bucket_) {
    const auto pos =
        std::upper_bound(agenda_.begin(), agenda_.end(), e, AgendaCmp{});
    agenda_.insert(pos, e);  // vmig-lint: h2-ok -- retained capacity
    free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
  } else if (b - epoch_bucket_ < kBuckets) {
    auto& head = bucket_head_[b & kBucketMask];
    nodes_[n].next = head;
    head = n;
    ++ring_count_;
  } else {
    nodes_[n].next = overflow_head_;
    overflow_head_ = n;
  }
}
// vmig-lint: hot-end

void Simulator::release_slot(std::uint32_t slot) {
  TimerSlot& s = slots_[slot];
  if (++s.gen == 0) s.gen = 1;  // gen 0 is reserved so TimerId is never 0
  free_slots_.push_back(slot);
}

// vmig-lint: hot-begin -- timer extract: the event loop's inner machinery;
// must not allocate per event once bucket/agenda capacity is warm
const Simulator::Entry* Simulator::peek_live() {
  for (;;) {
    while (!agenda_.empty()) {
      if (entry_live(agenda_.back())) return &agenda_.back();
      agenda_.pop_back();  // stale (cancelled) entry: lazy deletion
    }
    if (live_count_ == 0) return nullptr;
    refill_agenda();
  }
}

void Simulator::refill_agenda() {
  // Precondition: agenda empty, at least one armed timer somewhere.
  while (agenda_.empty()) {
    if (ring_count_ == 0) {
      // Everything pending lives beyond the ring: jump the epoch straight
      // to the earliest overflow day instead of spinning the calendar.
      assert(overflow_head_ != kNil);
      // Pass 1: drop dead entries from the chain, find the earliest day.
      std::uint64_t min_b = ~std::uint64_t{0};
      std::uint32_t n = overflow_head_;
      std::uint32_t prev = kNil;
      while (n != kNil) {
        const std::uint32_t next = nodes_[n].next;
        if (entry_live(nodes_[n].e)) {
          min_b = std::min(min_b, bucket_of(nodes_[n].e.t_ns));
          prev = n;
        } else {
          if (prev == kNil) {
            overflow_head_ = next;
          } else {
            nodes_[prev].next = next;
          }
          free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
        }
        n = next;
      }
      assert(overflow_head_ != kNil);
      epoch_bucket_ = min_b;
      // Pass 2: detach the chain and re-file every node against the new
      // epoch (place_node may push far-out nodes back onto overflow_head_).
      n = overflow_head_;
      overflow_head_ = kNil;
      while (n != kNil) {
        const std::uint32_t next = nodes_[n].next;
        place_node(n);
        n = next;
      }
      continue;
    }
    ++epoch_bucket_;
    if ((epoch_bucket_ & kBucketMask) == 0 && overflow_head_ != kNil) {
      sweep_overflow();  // crossed into a new year: pull overflow forward
    }
    std::uint32_t n = bucket_head_[epoch_bucket_ & kBucketMask];
    if (n == kNil) continue;
    bucket_head_[epoch_bucket_ & kBucketMask] = kNil;
    while (n != kNil) {
      const std::uint32_t next = nodes_[n].next;
      --ring_count_;
      if (entry_live(nodes_[n].e)) {
        agenda_.push_back(nodes_[n].e);  // vmig-lint: h2-ok -- retained
                                         // capacity
      }
      free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
      n = next;
    }
    std::sort(agenda_.begin(), agenda_.end(), AgendaCmp{});
  }
}

void Simulator::sweep_overflow() {
  std::uint32_t n = overflow_head_;
  overflow_head_ = kNil;
  while (n != kNil) {
    const std::uint32_t next = nodes_[n].next;
    if (entry_live(nodes_[n].e)) {
      place_node(n);  // far entries re-chain onto overflow_head_
    } else {
      free_nodes_.push_back(n);  // vmig-lint: h2-ok -- retained capacity
    }
    n = next;
  }
}

bool Simulator::step() {
  rethrow_pending();
  const Entry* pe = peek_live();
  if (pe == nullptr) return false;
  const Entry e = *pe;
  agenda_.pop_back();
  TimerSlot& s = slots_[e.slot];
  auto fn = std::move(s.fn);
  s.fn = nullptr;
  s.armed = false;
  release_slot(e.slot);
  --live_count_;
  now_ = TimePoint::from_ns(e.t_ns);
  ++events_processed_;
  if (debug_trace_) {
    const TimerId id = (static_cast<TimerId>(e.slot) << 32) | e.gen;
    std::fprintf(stderr, "sim: fire %llu at %.6f\n",
                 static_cast<unsigned long long>(id), now_.to_seconds());
  }
  {
    // The handler runs every coroutine it resumes to its next suspension,
    // so nested probe scopes (bitmap scan, pull path, ...) land inside
    // this one; dispatch overhead is the scope's *exclusive* time.
    obs::ProfScope prof{obs::ProfCategory::kSimDispatch};
    obs::prof_count(obs::ProfCategory::kSimDispatch);
    fn();
  }
  rethrow_pending();
  return true;
}
// vmig-lint: hot-end

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  reap_finished_roots();
  return n;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  for (;;) {
    rethrow_pending();
    const Entry* pe = peek_live();
    if (pe == nullptr || pe->t_ns > t.ns()) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  reap_finished_roots();
  return n;
}

std::size_t Simulator::run_for(Duration d) { return run_until(now_ + d); }

Task<void> Simulator::root_runner(Task<void> inner,
                                  std::shared_ptr<detail::JoinState> st) {
  try {
    co_await std::move(inner);
  } catch (...) {
    st->error = std::current_exception();
    if (st->sim && !st->sim->pending_error_) {
      st->sim->pending_error_ = st->error;
    }
  }
  st->done = true;
  const auto first = st->joiner0;
  st->joiner0 = {};
  auto extra = std::move(st->extra_joiners);
  st->extra_joiners.clear();
  if (first) first.resume();
  for (auto h : extra) h.resume();
}

SpawnHandle Simulator::spawn(Task<void> task, std::string name) {
  // NOTE: no reaping here. spawn() can be called from inside a running
  // coroutine whose root entry is in roots_ with done already set (a joiner
  // resumed inline by root_runner); destroying that frame mid-execution
  // would be UB. Reaping happens only from run()/run_until(), where no
  // coroutine is on the stack.
  //
  // Setup allocations (join state, root bookkeeping) are deliberate and
  // attributed to kOther so the dispatch loop's alloc counter stays a
  // steady-state signal.
  obs::ProfScope prof{obs::ProfCategory::kOther};
  auto st = std::make_shared<detail::JoinState>();
  st->sim = this;
  st->name = std::move(name);
  Task<void> wrapper = root_runner(std::move(task), st);
  roots_.push_back(RootTask{std::move(wrapper), st});
  roots_.back().wrapper.start();
  return SpawnHandle{st};
}

std::size_t Simulator::live_root_count() const {
  std::size_t n = 0;
  for (const auto& r : roots_) {
    if (!r.state->done) ++n;
  }
  return n;
}

void Simulator::reap_finished_roots() {
  std::erase_if(roots_, [](const RootTask& r) { return r.state->done; });
}

void Simulator::rethrow_pending() {
  if (pending_error_) {
    std::exception_ptr e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace vmig::sim
