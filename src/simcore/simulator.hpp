#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace vmig::sim {

class Simulator;

namespace detail {

/// Completion record shared between a spawned root task and its handle.
struct JoinState {
  Simulator* sim = nullptr;
  std::string name;
  bool done = false;
  std::exception_ptr error;
  // Join is implemented by polling + notification through the simulator's
  // timer queue; see SpawnHandle::join. Nearly every spawn has at most one
  // joiner, so the first is stored inline — a fresh vector would malloc on
  // the dispatch path for every joined spawn.
  std::coroutine_handle<> joiner0{};
  std::vector<std::coroutine_handle<>> extra_joiners;

  void add_joiner(std::coroutine_handle<> h) {
    if (!joiner0) {
      joiner0 = h;
    } else {
      extra_joiners.push_back(h);  // h2-ok
    }
  }
};

}  // namespace detail

/// Handle to a task running under `Simulator::spawn`.
///
/// Copies share the same underlying completion state. `join()` suspends the
/// calling coroutine until the spawned task finishes.
class SpawnHandle {
 public:
  SpawnHandle() = default;

  bool valid() const noexcept { return static_cast<bool>(st_); }
  bool done() const noexcept { return !st_ || st_->done; }
  const std::string& name() const;

  /// Awaitable: suspends until the spawned task completes.
  auto operator co_await() const noexcept {
    struct Awaiter {
      std::shared_ptr<detail::JoinState> st;
      bool await_ready() const noexcept { return !st || st->done; }
      void await_suspend(std::coroutine_handle<> h) { st->add_joiner(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{st_};
  }

 private:
  friend class Simulator;
  explicit SpawnHandle(std::shared_ptr<detail::JoinState> st) : st_{std::move(st)} {}
  std::shared_ptr<detail::JoinState> st_;
};

/// Awaitable returned by `Simulator::delay`.
///
/// Cancels its timer if the awaiting coroutine frame is destroyed before the
/// timer fires, so tearing down a simulation mid-flight is safe. When built
/// by `Simulator::delay_on`, the timer is filed into an explicit shard so
/// the awaiting coroutine resumes in that shard's context (the link-boundary
/// handoff of the sharded scheduler — see docs/SCALE.md).
class DelayAwaiter {
 public:
  static constexpr std::uint32_t kInheritShard = 0xffffffffu;

  DelayAwaiter(Simulator& sim, Duration d, std::uint32_t shard = kInheritShard)
      : sim_{sim}, d_{d}, shard_{shard} {}
  DelayAwaiter(const DelayAwaiter&) = delete;
  DelayAwaiter& operator=(const DelayAwaiter&) = delete;
  ~DelayAwaiter();

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() noexcept {}

 private:
  Simulator& sim_;
  Duration d_;
  std::uint32_t shard_;
  std::uint64_t timer_ = 0;
  bool scheduled_ = false;
  bool fired_ = false;
};

/// Deterministic single-threaded discrete-event simulator.
///
/// Events fire in (time, insertion-order) order, so runs are exactly
/// reproducible. Timers are cancellable; coroutine tasks are spawned as
/// "root" processes whose frames the simulator owns until completion.
///
/// The pending-event set is one or more bucketed *calendar queues* (Brown
/// '88) rather than a binary heap: time is divided into fixed-width buckets
/// arranged in a ring of "days"; events beyond one ring revolution (a
/// "year") wait in an overflow list. Insert is O(1) amortized (append to a
/// day bucket), extract is pop-from-sorted-agenda; only the current day's
/// handful of events is ever sorted. Cancellation is lazy — a
/// generation-checked slot arena marks the timer dead and the queue entry is
/// dropped when encountered — so cancel is O(1) and never rummages through
/// buckets. All steady-state structures (slot arena, day buckets, agenda,
/// overflow) recycle their storage, so schedule/fire/cancel cycles allocate
/// nothing once warm.
///
/// ## Sharded scheduling (datacenter scale)
///
/// `configure_shards(n)` splits the calendar into n independent shards
/// (per-host or per-rack at cluster scale). Each timer is filed into the
/// *current shard* — the shard of the event being dispatched, inherited by
/// everything it schedules — or an explicit shard via `ShardScope` /
/// `spawn_on` / `delay_on`. A lazy min-heap over per-shard head keys picks
/// the global minimum; conservative synchronization at link boundaries is
/// just `delay_on(peer_shard, latency)`. The exact (time, seq) tie-break
/// contract is preserved for ANY shard assignment: `next_seq_` is global, so
/// the fired sequence is byte-identical whether the run uses 1 shard or 64.
/// See docs/SCALE.md for the head-key invariant and proof sketch, and
/// docs/DETERMINISM.md for the (time, seq) ordering argument.
class Simulator {
 public:
  using TimerId = std::uint64_t;
  static constexpr std::uint32_t kMaxShards = 1024;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  TimePoint now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now if in the past).
  /// Filed into the current shard.
  TimerId schedule_at(TimePoint t, std::function<void()> fn);
  /// Schedule `fn` after `d` (clamped to zero if negative).
  TimerId schedule_after(Duration d, std::function<void()> fn);
  /// Cancel a pending timer. Returns false if already fired or cancelled.
  bool cancel(TimerId id);

  /// Process the single earliest pending event. Returns false if none.
  bool step();
  /// Run until the event queue is empty. Returns events processed.
  std::size_t run();
  /// Run events with time <= t; the clock lands on exactly t.
  std::size_t run_until(TimePoint t);
  /// Run events for the next `d` of simulated time.
  std::size_t run_for(Duration d);

  bool has_pending() const noexcept { return live_count_ > 0; }
  std::size_t pending_count() const noexcept { return live_count_; }
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  // ---- Observer-tick census ----
  // Self-re-arming observer timers (the Registry and Rollup samplers) park
  // when the queue drains so they never wedge run(). "Drained" must not
  // count *other* observers' ticks, or two samplers keep each other alive
  // forever: each one's park test would see the other's pending tick.
  // Observers increment when arming their tick, decrement when it fires,
  // and park unless `pending_count() > observer_ticks()` — i.e. unless
  // something other than observer ticks is still queued.
  void note_observer_tick_armed() noexcept { ++observer_ticks_; }
  void note_observer_tick_fired() noexcept { --observer_ticks_; }
  std::size_t observer_ticks() const noexcept { return observer_ticks_; }

  /// Launch a coroutine as a root process. The simulator owns the frame;
  /// uncaught exceptions are rethrown from run()/step().
  SpawnHandle spawn(Task<void> task, std::string name = {});
  /// Same, but the task's timers are filed into `shard` (its body runs with
  /// the current shard set to `shard` up to its first suspension, and every
  /// resumption inherits the shard of the timer that fired it).
  SpawnHandle spawn_on(std::uint32_t shard, Task<void> task, std::string name = {});

  /// Awaitable pause of simulated time. `delay(Duration::zero())` yields
  /// through the event queue (other ready events run first).
  [[nodiscard]] DelayAwaiter delay(Duration d) { return DelayAwaiter{*this, d}; }
  /// Awaitable pause whose wake-up timer is filed into `shard`: the
  /// conservative cross-shard handoff (a link files the delivery event into
  /// the receiving host's shard).
  [[nodiscard]] DelayAwaiter delay_on(std::uint32_t shard, Duration d) {
    return DelayAwaiter{*this, d, shard};
  }

  // ---- Sharding ----

  /// Split the calendar into `n` shards (clamped to [1, kMaxShards]).
  /// Only legal while no events are pending; throws std::logic_error
  /// otherwise. n == 1 restores the classic single-calendar fast path.
  void configure_shards(std::uint32_t n);
  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Shard new timers are filed into: the shard of the event being
  /// dispatched (0 at top level, between events, and out of range clamps).
  std::uint32_t current_shard() const noexcept { return current_shard_; }

  /// RAII current-shard override for a scheduling scope.
  class ShardScope {
   public:
    ShardScope(Simulator& sim, std::uint32_t shard)
        : sim_{sim}, prev_{sim.current_shard_} {
      sim_.current_shard_ = shard < sim.shard_count() ? shard : 0;
    }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;
    ~ShardScope() { sim_.current_shard_ = prev_; }

   private:
    Simulator& sim_;
    std::uint32_t prev_;
  };

  // ---- Fast-forward mode ----

  /// When on, fast-forward-aware workload models (workloads::SteadyWriter)
  /// replace idle per-tick events with closed-form dirty-rate advancement
  /// settled at observation points; simulated time jumps straight to the
  /// next migration-relevant event. The Simulator itself only carries the
  /// mode flag — the engine's event machinery is identical either way, which
  /// is what makes the A/B byte-identity pin (docs/SCALE.md) meaningful.
  void set_fast_forward(bool on) noexcept { fast_forward_ = on; }
  bool fast_forward() const noexcept { return fast_forward_; }

  // ---- Per-shard telemetry (fleet rollup / vmig_top) ----
  //
  // Read-only occupancy probes over the calendar shards. Values are exact
  // at the instant of the call and replay-stable, but they describe the
  // shard *layout* — two runs with different shard counts report different
  // per-shard rows even though their fired event sequence is byte-identical
  // (which is why the fleet rollup exports them outside its cross-shard
  // byte-identity contract; see obs::Rollup).

  /// Armed timers currently filed into shard `i`.
  std::size_t shard_live(std::uint32_t i) const noexcept {
    return i < shards_.size() ? shards_[i].live : 0;
  }
  /// Calendar occupancy of shard `i`: current-day agenda entries plus
  /// entries resident in ring buckets (both may include lazily-cancelled
  /// stale entries; overflow-list entries count toward shard_live only).
  std::size_t shard_queued(std::uint32_t i) const noexcept {
    return i < shards_.size() ? shards_[i].agenda.size() + shards_[i].ring_count
                              : 0;
  }
  /// How far ahead of `now` shard `i`'s registered head key sits (its next
  /// candidate dispatch), or 0 when the shard is empty / unregistered. A
  /// persistent large lag marks a shard whose work sits far in the future.
  std::int64_t shard_head_lag_ns(std::uint32_t i) const noexcept {
    if (i >= shards_.size()) return 0;
    const Shard& sh = shards_[i];
    if (!sh.key_registered || sh.live == 0) return 0;
    const std::int64_t lag = sh.key_t - now_.ns();
    return lag > 0 ? lag : 0;
  }

  /// Fast-forward bulk-settle accounting: workload models that fold dormant
  /// stretches into closed-form advancement (workloads::SteadyWriter) note
  /// each bulk settle here, so fleet telemetry can report how much of a run
  /// was fast-forwarded without reaching into every writer.
  void note_ff_settle() noexcept { ++ff_settles_; }
  std::uint64_t ff_settles() const noexcept { return ff_settles_; }

  /// Number of live (unfinished) root tasks.
  std::size_t live_root_count() const;

  /// Narrate every schedule/cancel/fire to stderr. Off by default; plumbed
  /// explicitly from the CLI (`vmig_sim --sim-trace`) rather than read from
  /// the environment, so a run's behavior is a function of its arguments.
  void set_debug_trace(bool on) noexcept { debug_trace_ = on; }
  bool debug_trace() const noexcept { return debug_trace_; }

 private:
  // Calendar geometry: 8192 buckets of 8.192 us each (one "year" = 67 ms of
  // simulated time per ring revolution). Migration events cluster at
  // us-to-ms horizons, so the ring absorbs nearly everything; multi-second
  // timeouts sit in the overflow list and are swept in once per revolution.
  static constexpr std::uint64_t kBucketShift = 13;  // 2^13 ns bucket width
  static constexpr std::uint64_t kBuckets = 8192;    // power of two
  static constexpr std::uint64_t kBucketMask = kBuckets - 1;

  /// One armed (or recycled) timer. `gen` distinguishes a live timer from a
  /// stale queue entry pointing at a recycled slot; it is never 0 so a
  /// TimerId is never 0 (callers use 0 as "no timer"). `shard` records the
  /// calendar the entry was filed into, so cancel can fix that shard's
  /// accounting without searching.
  struct TimerSlot {
    std::function<void()> fn;
    std::uint32_t gen = 1;
    std::uint32_t shard = 0;
    bool armed = false;
  };

  /// POD queue entry; (t_ns, seq) is the deterministic total order.
  struct Entry {
    std::int64_t t_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Pooled chain link: ring buckets and the overflow list are intrusive
  /// singly-linked chains through a shared node arena, so placing an event
  /// in a bucket never allocates — even a bucket touched for the first
  /// time. Chain order is arbitrary; refill_agenda sorts by (t, seq).
  struct Node {
    Entry e;
    std::uint32_t next;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Descending (t, seq): the agenda is popped from the back.
  struct AgendaCmp {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t_ns != b.t_ns) return a.t_ns > b.t_ns;
      return a.seq > b.seq;
    }
  };

  /// One calendar queue. In single-shard mode shards_[0] is exactly the
  /// pre-sharding structure; the slot and node arenas stay shared across
  /// shards so arena warmup is global.
  struct Shard {
    std::vector<Entry> agenda;                 ///< current-day events, sorted desc
    std::vector<std::uint32_t> bucket_head;    ///< ring of future days (chains)
    std::uint32_t overflow_head = kNil;        ///< events >= one year out
    std::uint64_t epoch_bucket = 0;            ///< day the agenda was drawn from
    std::size_t ring_count = 0;                ///< entries resident in buckets
    std::size_t live = 0;                      ///< armed timers in this shard
    // Head-key registration (multi-shard only). Exactly one *valid* key per
    // shard is in the heads_ heap, identified by key_epoch; superseded keys
    // are discarded on pop. Invariant: while the shard has live entries, its
    // valid key is <= the shard's true head in (t, seq) order, so the heap
    // top is always a lower bound on the global minimum. See docs/SCALE.md.
    std::int64_t key_t = 0;
    std::uint64_t key_seq = 0;
    std::uint64_t key_epoch = 0;
    bool key_registered = false;
  };

  /// Lazy per-shard head key in the global selection heap (min-heap on
  /// (t, seq)). `epoch` invalidates superseded keys without a decrease-key.
  struct HeapKey {
    std::int64_t t_ns;
    std::uint64_t seq;
    std::uint64_t epoch;
    std::uint32_t shard;
  };
  struct HeapCmp {  // std::push_heap builds a max-heap; invert for min
    bool operator()(const HeapKey& a, const HeapKey& b) const {
      if (a.t_ns != b.t_ns) return a.t_ns > b.t_ns;
      return a.seq > b.seq;
    }
  };

  struct RootTask {
    Task<void> wrapper;
    std::shared_ptr<detail::JoinState> state;
  };

  Task<void> root_runner(Task<void> inner, std::shared_ptr<detail::JoinState> st);
  void reap_finished_roots();
  void rethrow_pending();

  static std::uint64_t bucket_of(std::int64_t t_ns) noexcept {
    return static_cast<std::uint64_t>(t_ns) >> kBucketShift;
  }
  bool entry_live(const Entry& e) const noexcept {
    const TimerSlot& s = slots_[e.slot];
    return s.gen == e.gen && s.armed;
  }
  void place(Shard& sh, const Entry& e);
  /// Re-file an existing pooled node after an epoch move (agenda inserts
  /// free the node; bucket/overflow placements re-link it).
  void place_node(Shard& sh, std::uint32_t n);
  std::uint32_t alloc_node(const Entry& e);
  void release_slot(std::uint32_t slot);
  /// Earliest live entry (always sh.agenda.back() after this), or nullptr.
  const Entry* peek_live(Shard& sh);
  /// Refill the agenda from the ring / overflow; pre: agenda empty, live > 0.
  void refill_agenda(Shard& sh);
  /// Move overflow entries that now fall inside the ring year into place.
  void sweep_overflow(Shard& sh);
  /// Register shard `si`'s head key (t, seq) in the selection heap,
  /// superseding any previous key for that shard.
  void register_key(std::uint32_t si, std::int64_t t_ns, std::uint64_t seq);
  /// Lower the shard's registered bound if the new entry undercuts it.
  void note_insert(std::uint32_t si, const Entry& e);
  /// Validated global-minimum entry across all shards (and its shard), or
  /// nullptr. Postcondition on success: the entry is shards_[*si].agenda
  /// .back() and the heap top is its (now spent) key.
  const Entry* peek_global(std::uint32_t* si);

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint32_t current_shard_ = 0;
  bool fast_forward_ = false;

  // -- calendar queue state (arenas shared across shards) --
  std::vector<TimerSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Node> nodes_;                   ///< shared chain-node arena
  std::vector<std::uint32_t> free_nodes_;     ///< recycled node indices
  std::vector<Shard> shards_;                 ///< >= 1; [0] is the default
  std::vector<HeapKey> heads_;                ///< lazy per-shard head keys
  std::uint64_t key_epoch_counter_ = 0;
  std::size_t live_count_ = 0;                ///< armed timers, all shards
  std::size_t observer_ticks_ = 0;            ///< armed parkable sampler ticks

  std::vector<RootTask> roots_;
  std::exception_ptr pending_error_;
  std::uint64_t events_processed_ = 0;
  std::uint64_t ff_settles_ = 0;
  bool tearing_down_ = false;
  bool debug_trace_ = false;
};

}  // namespace vmig::sim
