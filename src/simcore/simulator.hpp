#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace vmig::sim {

class Simulator;

namespace detail {

/// Completion record shared between a spawned root task and its handle.
struct JoinState {
  Simulator* sim = nullptr;
  std::string name;
  bool done = false;
  std::exception_ptr error;
  // Join is implemented by polling + notification through the simulator's
  // timer queue; see SpawnHandle::join.
  std::vector<std::coroutine_handle<>> joiners;
};

}  // namespace detail

/// Handle to a task running under `Simulator::spawn`.
///
/// Copies share the same underlying completion state. `join()` suspends the
/// calling coroutine until the spawned task finishes.
class SpawnHandle {
 public:
  SpawnHandle() = default;

  bool valid() const noexcept { return static_cast<bool>(st_); }
  bool done() const noexcept { return !st_ || st_->done; }
  const std::string& name() const;

  /// Awaitable: suspends until the spawned task completes.
  auto operator co_await() const noexcept {
    struct Awaiter {
      std::shared_ptr<detail::JoinState> st;
      bool await_ready() const noexcept { return !st || st->done; }
      void await_suspend(std::coroutine_handle<> h) { st->joiners.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{st_};
  }

 private:
  friend class Simulator;
  explicit SpawnHandle(std::shared_ptr<detail::JoinState> st) : st_{std::move(st)} {}
  std::shared_ptr<detail::JoinState> st_;
};

/// Awaitable returned by `Simulator::delay`.
///
/// Cancels its timer if the awaiting coroutine frame is destroyed before the
/// timer fires, so tearing down a simulation mid-flight is safe.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, Duration d) : sim_{sim}, d_{d} {}
  DelayAwaiter(const DelayAwaiter&) = delete;
  DelayAwaiter& operator=(const DelayAwaiter&) = delete;
  ~DelayAwaiter();

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() noexcept {}

 private:
  Simulator& sim_;
  Duration d_;
  std::uint64_t timer_ = 0;
  bool scheduled_ = false;
  bool fired_ = false;
};

/// Deterministic single-threaded discrete-event simulator.
///
/// Events fire in (time, insertion-order) order, so runs are exactly
/// reproducible. Timers are cancellable; coroutine tasks are spawned as
/// "root" processes whose frames the simulator owns until completion.
class Simulator {
 public:
  using TimerId = std::uint64_t;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  TimePoint now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to now if in the past).
  TimerId schedule_at(TimePoint t, std::function<void()> fn);
  /// Schedule `fn` after `d` (clamped to zero if negative).
  TimerId schedule_after(Duration d, std::function<void()> fn);
  /// Cancel a pending timer. Returns false if already fired or cancelled.
  bool cancel(TimerId id);

  /// Process the single earliest pending event. Returns false if none.
  bool step();
  /// Run until the event queue is empty. Returns events processed.
  std::size_t run();
  /// Run events with time <= t; the clock lands on exactly t.
  std::size_t run_until(TimePoint t);
  /// Run events for the next `d` of simulated time.
  std::size_t run_for(Duration d);

  bool has_pending() const noexcept { return !handlers_.empty(); }
  std::size_t pending_count() const noexcept { return handlers_.size(); }
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Launch a coroutine as a root process. The simulator owns the frame;
  /// uncaught exceptions are rethrown from run()/step().
  SpawnHandle spawn(Task<void> task, std::string name = {});

  /// Awaitable pause of simulated time. `delay(Duration::zero())` yields
  /// through the event queue (other ready events run first).
  [[nodiscard]] DelayAwaiter delay(Duration d) { return DelayAwaiter{*this, d}; }

  /// Number of live (unfinished) root tasks.
  std::size_t live_root_count() const;

  /// Narrate every schedule/cancel/fire to stderr. Off by default; plumbed
  /// explicitly from the CLI (`vmig_sim --sim-trace`) rather than read from
  /// the environment, so a run's behavior is a function of its arguments.
  void set_debug_trace(bool on) noexcept { debug_trace_ = on; }
  bool debug_trace() const noexcept { return debug_trace_; }

 private:
  struct HeapEntry {
    TimePoint t;
    std::uint64_t seq;
    TimerId id;
  };
  struct HeapCmp {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      // std::push_heap builds a max-heap; invert for earliest-first.
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  struct RootTask {
    Task<void> wrapper;
    std::shared_ptr<detail::JoinState> state;
  };

  Task<void> root_runner(Task<void> inner, std::shared_ptr<detail::JoinState> st);
  void reap_finished_roots();
  void rethrow_pending();

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  TimerId next_timer_ = 1;
  std::vector<HeapEntry> heap_;
  std::unordered_map<TimerId, std::function<void()>> handlers_;
  std::vector<RootTask> roots_;
  std::exception_ptr pending_error_;
  std::uint64_t events_processed_ = 0;
  bool tearing_down_ = false;
  bool debug_trace_ = false;
};

}  // namespace vmig::sim
