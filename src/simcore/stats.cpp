#include "simcore/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace vmig::sim {

void SummaryStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SummaryStats::merge(const SummaryStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void SummaryStats::reset() { *this = SummaryStats{}; }

double SummaryStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double SummaryStats::stddev() const noexcept { return std::sqrt(variance()); }

std::string SummaryStats::str() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%zu mean=%.3g sd=%.3g min=%.3g max=%.3g",
                n_, mean(), stddev(), min(), max());
  return buf;
}

SummaryStats TimeSeries::summarize() const {
  SummaryStats s;
  for (const auto& p : points_) s.add(p.value);
  return s;
}

SummaryStats TimeSeries::summarize(TimePoint from, TimePoint to) const {
  SummaryStats s;
  for (const auto& p : points_) {
    if (p.t >= from && p.t <= to) s.add(p.value);
  }
  return s;
}

double TimeSeries::mean_in(TimePoint from, TimePoint to) const {
  return summarize(from, to).mean();
}

std::string TimeSeries::to_text(int max_rows) const {
  std::string out;
  const std::size_t n = points_.size();
  std::size_t stride = 1;
  if (max_rows > 0 && n > static_cast<std::size_t>(max_rows)) {
    stride = (n + static_cast<std::size_t>(max_rows) - 1) /
             static_cast<std::size_t>(max_rows);
  }
  char buf[64];
  for (std::size_t i = 0; i < n; i += stride) {
    std::snprintf(buf, sizeof buf, "%.3f\t%.3f\n", points_[i].t.to_seconds(),
                  points_[i].value);
    out += buf;
  }
  return out;
}

void RateMeter::add(TimePoint t, double amount) {
  roll_to(t);
  window_sum_ += amount;
  total_ += amount;
}

void RateMeter::finish(TimePoint t) {
  roll_to(t);
  if (t > window_start_) {
    const double secs = (t - window_start_).to_seconds();
    if (secs > 0) {
      series_.add(window_start_ + (t - window_start_) / 2, window_sum_ / secs);
    }
  }
  window_sum_ = 0.0;
  window_start_ = t;
}

void RateMeter::roll_to(TimePoint t) {
  if (!started_) {
    started_ = true;
    window_start_ = t;
    return;
  }
  while (t >= window_start_ + window_) {
    const double secs = window_.to_seconds();
    series_.add(window_start_ + window_ / 2, window_sum_ / secs);
    window_sum_ = 0.0;
    window_start_ += window_;
  }
}

void LatencyHistogram::add(Duration d) {
  std::int64_t ns = d.ns();
  if (ns < 0) ns = 0;
  const int b = ns == 0
                    ? 0
                    : std::bit_width(static_cast<std::uint64_t>(ns));
  buckets_[std::min(b, kBuckets - 1)]++;
  ++count_;
  min_ns_ = std::min(min_ns_, ns);
  max_ns_ = std::max(max_ns_, ns);
}

Duration LatencyHistogram::min() const noexcept {
  return count_ > 0 ? Duration::nanos(min_ns_) : Duration::zero();
}

Duration LatencyHistogram::max() const noexcept {
  return Duration::nanos(max_ns_);
}

Duration LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return Duration::zero();
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::llround(q * static_cast<double>(count_ - 1)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (seen + buckets_[b] > target) {
      // Midpoint of bucket b: values in [2^(b-1), 2^b).
      const std::int64_t lo = b == 0 ? 0 : (std::int64_t{1} << (b - 1));
      const std::int64_t hi = std::int64_t{1} << b;
      return Duration::nanos(std::clamp((lo + hi) / 2, min_ns_, max_ns_));
    }
    seen += buckets_[b];
  }
  return Duration::nanos(max_ns_);
}

std::string LatencyHistogram::str() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%zu min=%s p50=%s p99=%s max=%s", count_,
                min().str().c_str(), quantile(0.5).str().c_str(),
                quantile(0.99).str().c_str(), max().str().c_str());
  return buf;
}

}  // namespace vmig::sim
