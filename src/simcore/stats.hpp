#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace vmig::sim {

/// Online summary statistics (Welford's algorithm): count, mean, variance,
/// min, max — numerically stable, O(1) memory.
class SummaryStats {
 public:
  void add(double x);
  void merge(const SummaryStats& o);
  void reset();

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  std::string str() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A (time, value) series sampled during a run; the raw data behind
/// throughput-over-time figures (paper Figs. 5 and 6).
class TimeSeries {
 public:
  struct Point {
    TimePoint t;
    double value;
  };

  void add(TimePoint t, double value) { points_.push_back({t, value}); }
  void clear() { points_.clear(); }

  const std::vector<Point>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }
  std::size_t size() const noexcept { return points_.size(); }

  SummaryStats summarize() const;
  /// Summary restricted to samples with t in [from, to].
  SummaryStats summarize(TimePoint from, TimePoint to) const;

  /// Mean value over samples in [from, to]; 0 if none.
  double mean_in(TimePoint from, TimePoint to) const;

  /// Render as two-column text (seconds, value), for EXPERIMENTS.md plots.
  std::string to_text(int max_rows = 0) const;

 private:
  std::vector<Point> points_;
};

/// Windowed rate meter: feed byte/op counts with timestamps, periodically
/// flush a window into a TimeSeries as a rate (units/second).
class RateMeter {
 public:
  RateMeter(Duration window, std::string unit = "B/s")
      : window_{window}, unit_{std::move(unit)} {}

  /// Account `amount` happening at time `t`. Windows are flushed as time
  /// advances (samples must be fed in nondecreasing time order).
  void add(TimePoint t, double amount);

  /// Flush the current partial window at end of run.
  void finish(TimePoint t);

  const TimeSeries& series() const noexcept { return series_; }
  const std::string& unit() const noexcept { return unit_; }
  double total() const noexcept { return total_; }

 private:
  void roll_to(TimePoint t);

  Duration window_;
  std::string unit_;
  TimePoint window_start_{};
  double window_sum_ = 0.0;
  double total_ = 0.0;
  bool started_ = false;
  TimeSeries series_;
};

/// Log-scaled latency histogram (power-of-two buckets over nanoseconds).
class LatencyHistogram {
 public:
  void add(Duration d);

  std::size_t count() const noexcept { return count_; }
  Duration min() const noexcept;
  Duration max() const noexcept;
  /// Approximate quantile (q in [0,1]) from bucket interpolation.
  Duration quantile(double q) const;

  std::string str() const;

 private:
  static constexpr int kBuckets = 64;
  std::uint64_t buckets_[kBuckets] = {};
  std::size_t count_ = 0;
  std::int64_t min_ns_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ns_ = 0;
};

}  // namespace vmig::sim
