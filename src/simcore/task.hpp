#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "simcore/frame_arena.hpp"

namespace vmig::sim {

template <typename T>
class Task;

namespace detail {

/// Shared promise machinery: continuation chaining with symmetric transfer.
///
/// Frames are pooled: the promise's operator new/delete route through
/// FrameArena, so steady-state coroutine churn (a frame per pull, per delay
/// hop, per channel send) recycles storage instead of hitting the heap.
class TaskPromiseBase {
 public:
  // vmig-lint: d5-begin -- promise allocation hooks, not call sites: they
  // route frame storage through the FrameArena pool (which owns the blocks).
  static void* operator new(std::size_t n) { return FrameArena::allocate(n); }
  static void operator delete(void* p) noexcept { FrameArena::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FrameArena::deallocate(p);
  }
  // vmig-lint: d5-end

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto& promise = static_cast<TaskPromiseBase&>(h.promise());
      if (promise.continuation_) return promise.continuation_;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void set_continuation(std::coroutine_handle<> c) noexcept { continuation_ = c; }

 protected:
  std::coroutine_handle<> continuation_{};
};

template <typename T>
class TaskPromise final : public TaskPromiseBase {
 public:
  Task<T> get_return_object();

  template <typename U>
  void return_value(U&& v) {
    value_.emplace(std::forward<U>(v));
  }
  void unhandled_exception() { error_ = std::current_exception(); }

  T take_result() {
    if (error_) std::rethrow_exception(error_);
    assert(value_.has_value());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  std::exception_ptr error_;
};

template <>
class TaskPromise<void> final : public TaskPromiseBase {
 public:
  Task<void> get_return_object();

  void return_void() noexcept {}
  void unhandled_exception() { error_ = std::current_exception(); }

  void take_result() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::exception_ptr error_;
};

}  // namespace detail

/// A lazily-started coroutine returning T.
///
/// `Task` is the unit of concurrency in the simulation: protocol logic
/// (pre-copy loops, push/pull engines, workloads) is written as straight-line
/// coroutines that `co_await` simulated delays, channels and sub-tasks.
///
/// Ownership: the `Task` object owns the coroutine frame and destroys it on
/// destruction. Awaiting a task (`co_await std::move(t)` or `co_await
/// some_task_expr()`) starts it and resumes the awaiter when it completes,
/// propagating exceptions. Top-level tasks are handed to
/// `Simulator::spawn`, which keeps the frame alive until completion.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : h_{h} {}
  Task(Task&& o) noexcept : h_{std::exchange(o.h_, {})} {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return !h_ || h_.done(); }

  /// Run the coroutine until its first suspension point (or completion).
  /// Used by the simulator to kick off root tasks.
  void start() {
    assert(h_ && !h_.done());
    h_.resume();
  }

  /// Retrieve the result after completion (used by root-task plumbing).
  T result() { return h_.promise().take_result(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().set_continuation(cont);
        return h;  // symmetric transfer: start the child immediately
      }
      T await_resume() { return h.promise().take_result(); }
    };
    return Awaiter{h_};
  }

 private:
  handle_type h_{};
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>{std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace vmig::sim
