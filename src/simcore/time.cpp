#include "simcore/time.hpp"

#include <cmath>
#include <cstdio>

namespace vmig::sim {

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double a = static_cast<double>(std::llabs(ns));
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns) * 1e-3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns) * 1e-6);
  } else if (a < 120e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) * 1e-9);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fmin", static_cast<double>(ns) / 60e9);
  }
  return buf;
}

}  // namespace

std::string Duration::str() const { return format_ns(ns_); }

std::string TimePoint::str() const { return format_ns(ns_); }

}  // namespace vmig::sim
