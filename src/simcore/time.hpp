#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace vmig::sim {

/// A span of simulated time, stored as signed 64-bit nanoseconds.
///
/// Nanosecond resolution over int64 covers ~292 years of simulated time,
/// which is far beyond any migration experiment while keeping all arithmetic
/// exact (no floating-point drift in the event queue).
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }

  /// Build from fractional seconds. Rounds to the nearest nanosecond.
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }

  /// Scale by a real factor, rounding to the nearest nanosecond.
  constexpr Duration scaled(double f) const {
    return from_seconds(to_seconds() * f);
  }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering with an adaptive unit ("12.5ms", "3.2s", ...).
  std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t n) : ns_{n} {}
  std::int64_t ns_ = 0;
};

/// An instant on the simulated clock, as nanoseconds since simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint from_ns(std::int64_t n) { return TimePoint{n}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.ns();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string str() const;

 private:
  constexpr explicit TimePoint(std::int64_t n) : ns_{n} {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) {
  return Duration::nanos(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::micros(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::millis(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::seconds(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_s(long double s) {
  return Duration::from_seconds(static_cast<double>(s));
}
constexpr Duration operator""_min(unsigned long long n) {
  return Duration::minutes(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace vmig::sim
