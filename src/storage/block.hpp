#pragma once

#include <cassert>
#include <cstdint>

namespace vmig::storage {

/// Index of a fixed-size block on a virtual block device (VBD).
using BlockId = std::uint64_t;

/// The paper's preferred bitmap granularity: modern OSes issue 4 KB blocks.
inline constexpr std::uint32_t kDefaultBlockSize = 4096;
/// Physical sector size, the alternative (8x more bitmap memory; §IV-A-2).
inline constexpr std::uint32_t kSectorSize = 512;

inline constexpr std::uint64_t kMiB = 1024ull * 1024ull;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// Shape of a virtual disk: how many blocks of what size.
struct Geometry {
  std::uint64_t block_count = 0;
  std::uint32_t block_size = kDefaultBlockSize;

  constexpr std::uint64_t total_bytes() const {
    return block_count * block_size;
  }
  constexpr double total_mib() const {
    return static_cast<double>(total_bytes()) / static_cast<double>(kMiB);
  }

  static constexpr Geometry from_mib(std::uint64_t mib,
                                     std::uint32_t block_size = kDefaultBlockSize) {
    return Geometry{mib * kMiB / block_size, block_size};
  }
  static constexpr Geometry from_blocks(std::uint64_t blocks,
                                        std::uint32_t block_size = kDefaultBlockSize) {
    return Geometry{blocks, block_size};
  }

  constexpr bool contains(BlockId b) const { return b < block_count; }
};

/// A contiguous run of blocks [start, start + count).
struct BlockRange {
  BlockId start = 0;
  std::uint32_t count = 0;

  constexpr BlockId end() const { return start + count; }
  constexpr bool empty() const { return count == 0; }
  constexpr std::uint64_t bytes(std::uint32_t block_size) const {
    return static_cast<std::uint64_t>(count) * block_size;
  }
};

enum class IoOp : std::uint8_t { kRead, kWrite };

inline const char* to_string(IoOp op) {
  return op == IoOp::kRead ? "read" : "write";
}

}  // namespace vmig::storage
