#include "storage/disk_model.hpp"

#include <cstdlib>

namespace vmig::storage {

sim::Duration DiskModel::transfer_time(IoOp op, std::uint64_t bytes) const {
  const double mbps = op == IoOp::kRead ? p_.seq_read_mbps : p_.seq_write_mbps;
  const double seconds = static_cast<double>(bytes) / (mbps * static_cast<double>(kMiB));
  return sim::Duration::from_seconds(seconds);
}

bool DiskModel::is_sequential(BlockId start, BlockId last_end) const {
  const auto distance = start >= last_end ? start - last_end : last_end - start;
  return distance <= p_.seq_gap_blocks;
}

sim::Duration DiskModel::service_time(IoOp op, BlockRange range, BlockId last_end,
                                      std::uint32_t block_size) const {
  sim::Duration t = p_.request_overhead + transfer_time(op, range.bytes(block_size));
  if (!is_sequential(range.start, last_end)) t += p_.seek;
  return t;
}

}  // namespace vmig::storage
