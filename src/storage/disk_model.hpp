#pragma once

#include "simcore/time.hpp"
#include "storage/block.hpp"

namespace vmig::storage {

/// Performance parameters of a simulated disk.
///
/// Defaults approximate the paper's testbed (consumer SATA2 circa 2008):
/// ~60-75 MB/s sequential streaming and ~8 ms average positioning time. The
/// whole-disk pre-copy of the 39070 MB VBD at these rates lands in the
/// 780-960 s range of Table I.
struct DiskModelParams {
  double seq_read_mbps = 72.0;     ///< sequential read bandwidth, MiB/s
  double seq_write_mbps = 65.0;    ///< sequential write bandwidth, MiB/s
  sim::Duration seek = sim::Duration::micros(8000);  ///< avg seek + rotation
  sim::Duration request_overhead = sim::Duration::micros(60);  ///< per request
  /// Requests starting within this many blocks of the previous request's end
  /// are treated as sequential (no seek charged).
  std::uint64_t seq_gap_blocks = 64;
};

/// Computes per-request service times from the model parameters.
///
/// The model is deliberately simple — positioning + streaming — because the
/// phenomena under study (migration/guest contention, bandwidth ceilings)
/// depend on aggregate throughput, not on per-request microstructure.
class DiskModel {
 public:
  explicit DiskModel(DiskModelParams p = {}) : p_{p} {}

  const DiskModelParams& params() const noexcept { return p_; }

  /// Service time for a request, given where the head was left.
  sim::Duration service_time(IoOp op, BlockRange range, BlockId last_end,
                             std::uint32_t block_size) const;

  /// Pure streaming time for `bytes` at the op's sequential bandwidth.
  sim::Duration transfer_time(IoOp op, std::uint64_t bytes) const;

  bool is_sequential(BlockId start, BlockId last_end) const;

 private:
  DiskModelParams p_;
};

}  // namespace vmig::storage
