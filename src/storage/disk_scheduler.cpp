#include "storage/disk_scheduler.hpp"

#include <algorithm>

namespace vmig::storage {

sim::Task<void> DiskScheduler::execute(IoOp op, BlockRange range,
                                       std::uint32_t block_size, IoSource source) {
  const sim::TimePoint arrival = sim_.now();
  const sim::TimePoint start = std::max(arrival, busy_until_);
  // Head position at dispatch time is wherever the previous request left it.
  const sim::Duration service = model_.service_time(op, range, head_pos_, block_size);
  const sim::TimePoint completion = start + service;

  busy_until_ = completion;
  head_pos_ = range.end();
  busy_time_ += service;
  bytes_[static_cast<int>(source)] += range.bytes(block_size);
  ++requests_;
  ++queue_depth_;

  co_await sim_.delay(completion - arrival);

  --queue_depth_;
  latency_.add(completion - arrival);
}

double DiskScheduler::utilization() const {
  const auto elapsed = sim_.now() - sim::TimePoint::origin();
  if (elapsed <= sim::Duration::zero()) return 0.0;
  return std::min(1.0, busy_time_ / elapsed);
}

}  // namespace vmig::storage
