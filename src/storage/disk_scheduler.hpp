#pragma once

#include <cstdint>

#include "simcore/simulator.hpp"
#include "simcore/stats.hpp"
#include "simcore/task.hpp"
#include "storage/block.hpp"
#include "storage/disk_model.hpp"

namespace vmig::storage {

/// Per-source accounting bucket for disk traffic.
enum class IoSource : std::uint8_t { kGuest = 0, kMigration = 1, kOther = 2 };
inline constexpr int kIoSourceCount = 3;

/// FIFO single-server queue in front of a simulated disk.
///
/// All traffic to one physical disk — guest I/O and migration reads/writes —
/// funnels through one scheduler, so contention emerges naturally: a
/// migration stream saturating the disk halves the throughput an I/O-bound
/// guest sees (the paper's Fig. 6 effect).
class DiskScheduler {
 public:
  DiskScheduler(sim::Simulator& sim, DiskModel model)
      : sim_{sim}, model_{model} {}

  DiskScheduler(const DiskScheduler&) = delete;
  DiskScheduler& operator=(const DiskScheduler&) = delete;

  /// Perform a timed I/O; resumes the caller when the disk completes it.
  sim::Task<void> execute(IoOp op, BlockRange range, std::uint32_t block_size,
                          IoSource source);

  /// Service time the next request would see (no queueing), for planning.
  sim::Duration estimate(IoOp op, BlockRange range, std::uint32_t block_size) const {
    return model_.service_time(op, range, head_pos_, block_size);
  }

  const DiskModel& model() const noexcept { return model_; }

  std::uint64_t bytes_transferred(IoSource s) const {
    return bytes_[static_cast<int>(s)];
  }
  std::uint64_t requests_completed() const noexcept { return requests_; }
  /// Total time the disk spent servicing requests.
  sim::Duration busy_time() const noexcept { return busy_time_; }
  /// Utilization in [0,1] over the simulated interval [0, now].
  double utilization() const;
  std::uint32_t queue_depth() const noexcept { return queue_depth_; }
  const sim::LatencyHistogram& latency() const noexcept { return latency_; }

 private:
  sim::Simulator& sim_;
  DiskModel model_;
  sim::TimePoint busy_until_{};
  BlockId head_pos_ = 0;
  std::uint64_t bytes_[kIoSourceCount] = {};
  std::uint64_t requests_ = 0;
  sim::Duration busy_time_{};
  std::uint32_t queue_depth_ = 0;
  sim::LatencyHistogram latency_;
};

}  // namespace vmig::storage
