#include "storage/virtual_disk.hpp"

#include <cassert>
#include <cstring>

#include "simcore/rng.hpp"

namespace vmig::storage {

namespace {
/// Process-wide monotone token source. The simulation is single-threaded and
/// deterministic, so a plain counter keeps tokens unique across all disks —
/// including a block written at the destination after migration, which must
/// never collide with any token the source ever produced.
ContentToken g_next_token = 1;
}  // namespace

VirtualDisk::VirtualDisk(sim::Simulator& sim, Geometry geometry,
                         DiskModelParams model, bool store_payloads)
    : sim_{sim},
      geometry_{geometry},
      owned_scheduler_{std::make_unique<DiskScheduler>(sim, DiskModel{model})},
      scheduler_{owned_scheduler_.get()},
      store_payloads_{store_payloads},
      tokens_(geometry.block_count, kZeroBlockToken) {}

VirtualDisk::VirtualDisk(sim::Simulator& sim, Geometry geometry,
                         DiskScheduler& shared, bool store_payloads)
    : sim_{sim},
      geometry_{geometry},
      scheduler_{&shared},
      store_payloads_{store_payloads},
      tokens_(geometry.block_count, kZeroBlockToken) {}

ContentToken VirtualDisk::fresh_token() { return g_next_token++; }

sim::Task<void> VirtualDisk::read(BlockRange range, IoSource source) {
  assert(range.end() <= geometry_.block_count);
  co_await scheduler_->execute(IoOp::kRead, range, geometry_.block_size, source);
}

sim::Task<void> VirtualDisk::write(BlockRange range, IoSource source) {
  assert(range.end() <= geometry_.block_count);
  for (BlockId b = range.start; b < range.end(); ++b) {
    tokens_[b] = fresh_token();
    if (store_payloads_) {
      // Synthesize distinguishable content from the token.
      std::vector<std::byte> data(geometry_.block_size);
      std::uint64_t s = tokens_[b];
      for (std::size_t i = 0; i + 8 <= data.size(); i += 8) {
        const std::uint64_t v = sim::splitmix64(s);
        std::memcpy(data.data() + i, &v, 8);
      }
      payloads_[b] = std::move(data);
    }
  }
  ++write_count_;
  co_await scheduler_->execute(IoOp::kWrite, range, geometry_.block_size, source);
}

sim::Task<void> VirtualDisk::write_tokens(BlockRange range,
                                          std::span<const ContentToken> tokens,
                                          IoSource source) {
  assert(range.end() <= geometry_.block_count);
  assert(tokens.size() == range.count);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    tokens_[range.start + i] = tokens[i];
  }
  ++write_count_;
  co_await scheduler_->execute(IoOp::kWrite, range, geometry_.block_size, source);
}

sim::Task<void> VirtualDisk::write_bytes(BlockRange range,
                                         std::span<const std::byte> bytes,
                                         IoSource source) {
  assert(range.end() <= geometry_.block_count);
  assert(bytes.size() == static_cast<std::size_t>(range.count) * geometry_.block_size);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    const auto chunk = bytes.subspan(
        static_cast<std::size_t>(i) * geometry_.block_size, geometry_.block_size);
    tokens_[range.start + i] = hash_bytes(chunk);
    if (store_payloads_) {
      payloads_[range.start + i].assign(chunk.begin(), chunk.end());
    }
  }
  ++write_count_;
  co_await scheduler_->execute(IoOp::kWrite, range, geometry_.block_size, source);
}

std::vector<ContentToken> VirtualDisk::snapshot_tokens(BlockRange range) const {
  assert(range.end() <= geometry_.block_count);
  return {tokens_.begin() + static_cast<std::ptrdiff_t>(range.start),
          tokens_.begin() + static_cast<std::ptrdiff_t>(range.end())};
}

std::span<const std::byte> VirtualDisk::payload(BlockId b) const {
  const auto it = payloads_.find(b);
  if (it == payloads_.end()) return {};
  return it->second;
}

void VirtualDisk::poke_payload(BlockId b, std::span<const std::byte> bytes) {
  payloads_[b].assign(bytes.begin(), bytes.end());
}

std::vector<std::byte> VirtualDisk::snapshot_payloads(BlockRange range) const {
  if (!store_payloads_) return {};
  std::vector<std::byte> out;
  out.resize(static_cast<std::size_t>(range.count) * geometry_.block_size);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    const auto p = payload(range.start + i);
    if (!p.empty()) {
      std::memcpy(out.data() + static_cast<std::size_t>(i) * geometry_.block_size,
                  p.data(), std::min<std::size_t>(p.size(), geometry_.block_size));
    }
  }
  return out;
}

void VirtualDisk::apply_payloads(BlockRange range,
                                 std::span<const std::byte> bytes) {
  if (!store_payloads_ || bytes.empty()) return;
  assert(bytes.size() >=
         static_cast<std::size_t>(range.count) * geometry_.block_size);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    poke_payload(range.start + i,
                 bytes.subspan(static_cast<std::size_t>(i) * geometry_.block_size,
                               geometry_.block_size));
  }
}

bool VirtualDisk::content_equals(const VirtualDisk& other) const {
  return tokens_ == other.tokens_;
}

std::vector<BlockId> VirtualDisk::diff_blocks(const VirtualDisk& other) const {
  std::vector<BlockId> out;
  const std::size_t n = std::min(tokens_.size(), other.tokens_.size());
  for (std::size_t b = 0; b < n; ++b) {
    if (tokens_[b] != other.tokens_[b]) out.push_back(b);
  }
  for (std::size_t b = n; b < std::max(tokens_.size(), other.tokens_.size()); ++b) {
    out.push_back(b);
  }
  return out;
}

ContentToken VirtualDisk::hash_bytes(std::span<const std::byte> bytes) {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  // Avoid colliding with the zero-block sentinel.
  return h == kZeroBlockToken ? 1 : h;
}

}  // namespace vmig::storage
