#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "storage/block.hpp"
#include "storage/disk_scheduler.hpp"

namespace vmig::storage {

/// Content identity of one block.
///
/// Real 4 KB payloads for a 40 GB disk would need 40 GB of host RAM, so the
/// disk stores a 64-bit *content token* per block instead: every write stamps
/// a globally unique token, and two disks hold identical data at a block iff
/// their tokens match. For small disks, an optional payload side-store keeps
/// the real bytes as well (token = content hash), so integrity tests can
/// verify the protocol byte-for-byte, not just token-for-token.
using ContentToken = std::uint64_t;

/// Initial token of a never-written block (all-zero content).
inline constexpr ContentToken kZeroBlockToken = 0;

/// A virtual block device: token state + timed access through a
/// FIFO-contended `DiskScheduler`. This is the raw device; interception and
/// dirty tracking live in the split driver (`vm::BlkBackend`), exactly as in
/// the paper's Xen implementation.
class VirtualDisk {
 public:
  /// Standalone VBD with its own physical disk (scheduler).
  VirtualDisk(sim::Simulator& sim, Geometry geometry, DiskModelParams model = {},
              bool store_payloads = false);
  /// VBD sharing an existing physical disk: several DomUs' VBDs on one
  /// spindle contend for its time but have independent block spaces.
  VirtualDisk(sim::Simulator& sim, Geometry geometry, DiskScheduler& shared,
              bool store_payloads = false);

  VirtualDisk(const VirtualDisk&) = delete;
  VirtualDisk& operator=(const VirtualDisk&) = delete;

  const Geometry& geometry() const noexcept { return geometry_; }
  DiskScheduler& scheduler() noexcept { return *scheduler_; }
  const DiskScheduler& scheduler() const noexcept { return *scheduler_; }
  bool stores_payloads() const noexcept { return store_payloads_; }

  // ---- Timed I/O (contends on the disk with everything else) ----

  /// Timed read of a block range (no state change).
  sim::Task<void> read(BlockRange range, IoSource source = IoSource::kGuest);

  /// Timed guest-style write: every block in the range gets a fresh token.
  sim::Task<void> write(BlockRange range, IoSource source = IoSource::kGuest);

  /// Timed write that installs the given tokens (migration receive path).
  /// `tokens.size()` must equal `range.count`.
  sim::Task<void> write_tokens(BlockRange range, std::span<const ContentToken> tokens,
                               IoSource source = IoSource::kMigration);

  /// Timed write of real bytes (payload mode); token = content hash.
  /// `bytes.size()` must equal `range.count * block_size`.
  sim::Task<void> write_bytes(BlockRange range, std::span<const std::byte> bytes,
                              IoSource source = IoSource::kGuest);

  // ---- Untimed state access (bookkeeping, assertions, transfers) ----

  ContentToken token(BlockId b) const { return tokens_[b]; }
  std::span<const ContentToken> tokens() const noexcept { return tokens_; }
  /// Copy `range.count` tokens out (what a migration sender transmits).
  std::vector<ContentToken> snapshot_tokens(BlockRange range) const;
  /// Directly set a token without timing (test fixture setup).
  void poke_token(BlockId b, ContentToken t) { tokens_[b] = t; }

  /// Payload of block b (empty span if none stored).
  std::span<const std::byte> payload(BlockId b) const;
  /// Install payload bytes untimed (paired with write_tokens on receive).
  void poke_payload(BlockId b, std::span<const std::byte> bytes);
  /// Concatenated payload bytes for a range (what a migration sender ships
  /// in payload mode); empty when payloads are not stored.
  std::vector<std::byte> snapshot_payloads(BlockRange range) const;
  /// Install concatenated payloads for a range (migration receive path).
  /// No-op when `bytes` is empty or payloads are not stored.
  void apply_payloads(BlockRange range, std::span<const std::byte> bytes);

  /// True iff every block token matches.
  bool content_equals(const VirtualDisk& other) const;
  /// Blocks whose tokens differ from `other` (diagnostics).
  std::vector<BlockId> diff_blocks(const VirtualDisk& other) const;

  /// Number of timed guest/other/migration writes that have modified state.
  std::uint64_t write_count() const noexcept { return write_count_; }

  /// Hash bytes to a content token (stable; used in payload mode).
  static ContentToken hash_bytes(std::span<const std::byte> bytes);

 private:
  ContentToken fresh_token();

  sim::Simulator& sim_;
  Geometry geometry_;
  std::unique_ptr<DiskScheduler> owned_scheduler_;  ///< standalone mode only
  DiskScheduler* scheduler_;
  bool store_payloads_;
  std::vector<ContentToken> tokens_;
  std::unordered_map<BlockId, std::vector<std::byte>> payloads_;
  std::uint64_t write_count_ = 0;
};

}  // namespace vmig::storage
