#include "trace/io_trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vmig::trace {

std::uint64_t IoTrace::count(storage::IoOp op) const {
  std::uint64_t n = 0;
  for (const auto& e : events_) n += (e.op == op);
  return n;
}

std::uint64_t IoTrace::bytes(storage::IoOp op, std::uint32_t block_size) const {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.op == op) n += e.range.bytes(block_size);
  }
  return n;
}

WriteLocalityStats IoTrace::analyze_writes(std::uint64_t block_count) const {
  WriteLocalityStats s;
  core::BlockBitmap seen{block_count};
  for (const auto& e : events_) {
    if (e.op != storage::IoOp::kWrite) continue;
    ++s.write_ops;
    bool any_rewrite = false;
    for (storage::BlockId b = e.range.start; b < e.range.end(); ++b) {
      ++s.blocks_written;
      if (seen.test(b)) {
        any_rewrite = true;
        ++s.rewritten_blocks;
      } else {
        seen.set(b);
      }
    }
    s.rewrite_ops += any_rewrite;
  }
  s.distinct_blocks = seen.count_set();
  return s;
}

void IoTrace::save(std::ostream& os) const {
  for (const auto& e : events_) {
    os << e.t.to_seconds() << ' '
       << (e.op == storage::IoOp::kWrite ? 'W' : 'R') << ' ' << e.range.start
       << ' ' << e.range.count << '\n';
  }
}

IoTrace IoTrace::load(std::istream& is) {
  IoTrace t;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    double secs = 0;
    char op = 0;
    storage::BlockId start = 0;
    std::uint32_t count = 0;
    if (!(ls >> secs >> op >> start >> count) || (op != 'R' && op != 'W')) {
      throw std::runtime_error("IoTrace::load: malformed line: " + line);
    }
    t.record(sim::TimePoint::origin() + sim::Duration::from_seconds(secs),
             op == 'W' ? storage::IoOp::kWrite : storage::IoOp::kRead,
             storage::BlockRange{start, count});
  }
  return t;
}

}  // namespace vmig::trace
