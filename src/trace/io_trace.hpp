#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/block_bitmap.hpp"
#include "simcore/time.hpp"
#include "storage/block.hpp"

namespace vmig::trace {

/// One recorded guest I/O.
struct IoEvent {
  sim::TimePoint t;
  storage::IoOp op = storage::IoOp::kRead;
  storage::BlockRange range;
};

/// Statistics about write locality — the paper's §IV-A-2 argument for
/// bitmap-based synchronization over delta forwarding: rewrites make deltas
/// redundant, while a bitmap absorbs them for free.
struct WriteLocalityStats {
  std::uint64_t write_ops = 0;
  std::uint64_t rewrite_ops = 0;        ///< writes touching a block written before
  std::uint64_t blocks_written = 0;     ///< total blocks across all writes
  std::uint64_t distinct_blocks = 0;    ///< unique blocks touched
  std::uint64_t rewritten_blocks = 0;   ///< block-writes hitting a known block

  /// Fraction of write operations that rewrite previously-written data
  /// (the paper reports 11% kernel build / 25.2% SPECweb / 35.6% Bonnie++).
  double rewrite_ratio() const {
    return write_ops == 0
               ? 0.0
               : static_cast<double>(rewrite_ops) / static_cast<double>(write_ops);
  }
  /// Redundant bytes a delta-forwarding scheme would resend.
  std::uint64_t redundant_bytes(std::uint32_t block_size) const {
    return rewritten_blocks * block_size;
  }
};

/// An append-only record of guest I/O, with locality analysis and a simple
/// text serialization for offline inspection.
class IoTrace {
 public:
  void record(sim::TimePoint t, storage::IoOp op, storage::BlockRange range) {
    events_.push_back(IoEvent{t, op, range});
  }
  void clear() { events_.clear(); }

  const std::vector<IoEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  std::uint64_t count(storage::IoOp op) const;
  std::uint64_t bytes(storage::IoOp op, std::uint32_t block_size) const;

  /// Analyze write-rewrite behaviour over the trace (ops in time order).
  WriteLocalityStats analyze_writes(std::uint64_t block_count) const;

  /// Text form: one "t_seconds R|W start count" line per event.
  void save(std::ostream& os) const;
  /// Parse the text form; throws std::runtime_error on malformed input.
  static IoTrace load(std::istream& is);

 private:
  std::vector<IoEvent> events_;
};

}  // namespace vmig::trace
