#include "vm/blk_backend.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace vmig::vm {

sim::Task<void> BlkBackend::submit_write_bytes(DomainId domain,
                                               storage::BlockRange range,
                                               std::span<const std::byte> bytes) {
  if (interceptor_ != nullptr) {
    co_await interceptor_->on_request(domain, storage::IoOp::kWrite, range);
  }
  if (tracking_ && domain == served_) {
    // vmig-lint: hot-begin -- dirty-mark: runs on every tracked guest
    // write; the block-bitmap's whole point is that this is cheap
    {
      obs::ProfScope prof{obs::ProfCategory::kBitmapMark};
      obs::prof_count(obs::ProfCategory::kBitmapMark, range.count);
      dirty_.set_range(range.start, range.count);
      marks_total_ += range.count;
    }
    // vmig-lint: hot-end
    if (obs_dirty_marks_ != nullptr) obs_dirty_marks_->add(range.count);
    if (redirty_hook_) redirty_hook_(range);
    if (tracking_overhead_ > sim::Duration::zero()) {
      co_await sim_.delay(tracking_overhead_);
    }
  }
  ++writes_;
  write_bytes_ += range.bytes(disk_.geometry().block_size);
  if (obs_write_ops_ != nullptr) {
    obs_write_ops_->add(1.0);
    obs_write_bytes_->add(
        static_cast<double>(range.bytes(disk_.geometry().block_size)));
  }
  co_await disk_.write_bytes(range, bytes, storage::IoSource::kGuest);
  if (write_observer_ && domain == served_) write_observer_(range);
}

sim::Task<void> BlkBackend::submit(DomainId domain, storage::IoOp op,
                                   storage::BlockRange range) {
  // Post-copy interception gets first crack: it may hold the request until
  // the accessed blocks are synchronized (paper §IV-A-3 destination rules).
  if (interceptor_ != nullptr) {
    co_await interceptor_->on_request(domain, op, range);
  }

  if (op == storage::IoOp::kWrite) {
    if (tracking_ && domain == served_) {
      // vmig-lint: hot-begin -- dirty-mark on the guest write fast path
      {
        // The paper's blkback splits the written area into 4 KB blocks and
        // sets the corresponding bits.
        obs::ProfScope prof{obs::ProfCategory::kBitmapMark};
        obs::prof_count(obs::ProfCategory::kBitmapMark, range.count);
        dirty_.set_range(range.start, range.count);
        marks_total_ += range.count;
      }
      // vmig-lint: hot-end
      if (obs_dirty_marks_ != nullptr) obs_dirty_marks_->add(range.count);
      if (redirty_hook_) redirty_hook_(range);
      if (tracking_overhead_ > sim::Duration::zero()) {
        co_await sim_.delay(tracking_overhead_);
      }
    }
    ++writes_;
    write_bytes_ += range.bytes(disk_.geometry().block_size);
    if (obs_write_ops_ != nullptr) {
      obs_write_ops_->add(1.0);
      obs_write_bytes_->add(
          static_cast<double>(range.bytes(disk_.geometry().block_size)));
    }
    co_await disk_.write(range, storage::IoSource::kGuest);
    if (write_observer_ && domain == served_) write_observer_(range);
  } else {
    ++reads_;
    read_bytes_ += range.bytes(disk_.geometry().block_size);
    if (obs_read_ops_ != nullptr) {
      obs_read_ops_->add(1.0);
      obs_read_bytes_->add(
          static_cast<double>(range.bytes(disk_.geometry().block_size)));
    }
    co_await disk_.read(range, storage::IoSource::kGuest);
  }
}

void BlkBackend::note_guest_write(storage::BlockRange range) {
  if (tracking_) {
    // vmig-lint: hot-begin -- modeled dirty-mark: the ticked execution of a
    // dirty-rate model runs this once per tick
    {
      obs::ProfScope prof{obs::ProfCategory::kBitmapMark};
      obs::prof_count(obs::ProfCategory::kBitmapMark, range.count);
      dirty_.set_range(range.start, range.count);
      marks_total_ += range.count;
    }
    // vmig-lint: hot-end
    if (obs_dirty_marks_ != nullptr) obs_dirty_marks_->add(range.count);
    if (redirty_hook_) redirty_hook_(range);
  }
  ++writes_;
  write_bytes_ += range.bytes(disk_.geometry().block_size);
  if (obs_write_ops_ != nullptr) {
    obs_write_ops_->add(1.0);
    obs_write_bytes_->add(
        static_cast<double>(range.bytes(disk_.geometry().block_size)));
  }
  if (write_observer_) write_observer_(range);
}

void BlkBackend::note_guest_writes_bulk(const storage::BlockRange* ranges,
                                        std::size_t n_ranges,
                                        std::uint64_t writes,
                                        std::uint64_t blocks) {
  // Per-event consumers cannot be replayed in bulk; the DirtySource must
  // have switched to live ticking before one was installed.
  assert(!fidelity_required());
  if (tracking_) {
    obs::ProfScope prof{obs::ProfCategory::kBitmapMark};
    obs::prof_count(obs::ProfCategory::kBitmapMark, blocks);
    for (std::size_t i = 0; i < n_ranges; ++i) {
      dirty_.set_range(ranges[i].start, ranges[i].count);
    }
    marks_total_ += blocks;
    if (obs_dirty_marks_ != nullptr) {
      obs_dirty_marks_->add(static_cast<double>(blocks));
    }
  }
  writes_ += writes;
  const std::uint64_t bytes = blocks * disk_.geometry().block_size;
  write_bytes_ += bytes;
  if (obs_write_ops_ != nullptr) {
    obs_write_ops_->add(static_cast<double>(writes));
    obs_write_bytes_->add(static_cast<double>(bytes));
  }
}

void BlkBackend::start_write_tracking(core::BitmapKind kind) {
  // Settle first so modeled writes before this instant land in the *old*
  // bitmap (the ticked execution's tick events fire before same-time
  // control events — see docs/SCALE.md tie-break conventions).
  settle_source();
  dirty_ = core::DirtyBitmap{kind, disk_.geometry().block_count};
  marks_total_ = 0;
  tracking_ = true;
  if (dirty_source_ != nullptr) dirty_source_->on_tracking(true);
}

void BlkBackend::stop_write_tracking() {
  settle_source();
  tracking_ = false;
  if (dirty_source_ != nullptr) dirty_source_->on_tracking(false);
}

core::DirtyBitmap BlkBackend::snapshot_dirty_and_reset() {
  settle_source();
  return dirty_.take_and_reset();
}

void BlkBackend::snapshot_dirty_and_reset_into(core::DirtyBitmap& out) {
  settle_source();
  dirty_.take_and_reset_into(out);
}

core::DirtyBitmap BlkBackend::snapshot_dirty() const {
  settle_source();
  return dirty_;
}

void BlkBackend::attach_obs(obs::Registry& registry, const std::string& prefix) {
  obs_read_ops_ = &registry.counter(prefix + ".read_ops");
  obs_write_ops_ = &registry.counter(prefix + ".write_ops");
  obs_read_bytes_ = &registry.counter(prefix + ".read_bytes");
  obs_write_bytes_ = &registry.counter(prefix + ".write_bytes");
  obs_dirty_marks_ = &registry.counter(prefix + ".dirty_marks");
}

}  // namespace vmig::vm
