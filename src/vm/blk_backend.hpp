#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "core/dirty_bitmap.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "storage/virtual_disk.hpp"
#include "vm/types.hpp"

namespace vmig::obs {
class Counter;
class Registry;
}  // namespace vmig::obs

namespace vmig::vm {

/// Hook a migration engine installs into the backend's request path.
///
/// The post-copy engine (paper §IV-A-3) uses this to hold guest reads of
/// not-yet-synchronized blocks until the block is pulled from the source,
/// and to flip bitmap state on guest writes. `on_request` completes when the
/// request may be submitted to the physical driver.
class IoInterceptor {
 public:
  virtual ~IoInterceptor() = default;
  virtual sim::Task<void> on_request(DomainId domain, storage::IoOp op,
                                     storage::BlockRange range) = 0;
};

/// A lazily-settled producer of dirty state (the fast-forward contract).
///
/// A fast-forward workload model (workloads::SteadyWriter) registers one of
/// these on the backend it writes through. While no per-event consumer needs
/// tick-by-tick fidelity, the source stays dormant — no simulator events at
/// all — and the backend calls `settle()` at every *observation point*
/// (bitmap snapshot/scan, mark-counter read, tracking transition) so the
/// source can advance its closed-form write model and apply the marks in
/// bulk. The invariant, pinned by A/B tests: the dirty bitmap and the
/// cumulative mark counter at every observation point are bit-identical to
/// the per-tick execution. See docs/SCALE.md.
class DirtySource {
 public:
  virtual ~DirtySource() = default;
  /// Bring the backend's dirty state up to date with simulated `now`.
  virtual void settle() = 0;
  /// Tracking started (true) / stopped (false) on the backend. Fired after
  /// the backend settled the old state and flipped the flag.
  virtual void on_tracking(bool on) = 0;
  /// A per-event consumer (interceptor, redirty hook, write observer) was
  /// installed or removed; the source must go live while one is present.
  virtual void on_fidelity_change() = 0;
};

/// The Domain0 half of the Xen split block driver (`blkback`).
///
/// Every I/O request a guest submits to its virtual block device passes
/// through here, which is exactly why the paper put dirty tracking at this
/// layer: when monitoring is on, each write's 4 KB blocks are marked in the
/// block-bitmap before hitting the disk. A configurable per-write tracking
/// cost models the overhead Table III measures (< 1 %).
class BlkBackend {
 public:
  BlkBackend(sim::Simulator& sim, storage::VirtualDisk& disk, DomainId served)
      : sim_{sim}, disk_{disk}, served_{served} {}

  BlkBackend(const BlkBackend&) = delete;
  BlkBackend& operator=(const BlkBackend&) = delete;

  storage::VirtualDisk& disk() noexcept { return disk_; }
  const storage::VirtualDisk& disk() const noexcept { return disk_; }
  DomainId served_domain() const noexcept { return served_; }
  /// Rebind which DomU this backend serves (set when a domain attaches).
  void set_served(DomainId d) noexcept { served_ = d; }

  /// Guest I/O entry point (what the frontend ring delivers).
  sim::Task<void> submit(DomainId domain, storage::IoOp op,
                         storage::BlockRange range);

  /// Guest write carrying real bytes (payload-backed disks). Same
  /// interception/tracking path as submit(); `bytes` must cover the range.
  sim::Task<void> submit_write_bytes(DomainId domain, storage::BlockRange range,
                                     std::span<const std::byte> bytes);

  // ---- Modeled guest writes (dirty-rate models / fast-forward) ----

  /// One instantaneous modeled write from the served domain: marks the
  /// bitmap, fires the redirty hook and write observer, and accounts write
  /// stats — but performs no disk I/O and pays no interception or tracking
  /// delay. This is the per-tick primitive of blkback-level dirty-rate
  /// models (workloads::SteadyWriter); because both the ticked and the
  /// fast-forward execution use it, the two stay bit-identical.
  void note_guest_write(storage::BlockRange range);

  /// Bulk closed-form advancement: apply `writes` modeled writes covering
  /// `ranges` (their union, as maximal runs) and `blocks` total marked
  /// blocks. Only legal while no per-event consumer is installed
  /// (fidelity_required() is false) — per-event hooks cannot be replayed in
  /// bulk. Used by DirtySource::settle to fold an idle stretch of ticks
  /// into run-level bitmap marks.
  void note_guest_writes_bulk(const storage::BlockRange* ranges,
                              std::size_t n_ranges, std::uint64_t writes,
                              std::uint64_t blocks);

  /// True while a per-event consumer (post-copy interceptor, redirty hook,
  /// write observer, nonzero tracking overhead) needs tick-by-tick events;
  /// a DirtySource must run live instead of settling in bulk.
  bool fidelity_required() const noexcept {
    return interceptor_ != nullptr || static_cast<bool>(redirty_hook_) ||
           static_cast<bool>(write_observer_) ||
           tracking_overhead_ > sim::Duration::zero();
  }

  /// Register the (single) lazily-settled dirty source feeding this
  /// backend. The backend settles it at every observation point.
  void attach_dirty_source(DirtySource* s) noexcept { dirty_source_ = s; }
  void detach_dirty_source(DirtySource* s) noexcept {
    if (dirty_source_ == s) dirty_source_ = nullptr;
  }
  DirtySource* dirty_source() const noexcept { return dirty_source_; }

  // ---- Write tracking (the paper's blkback modification) ----

  /// Begin recording every write from the served domain into a fresh
  /// block-bitmap of the given kind.
  void start_write_tracking(core::BitmapKind kind);
  void stop_write_tracking();
  bool tracking() const noexcept { return tracking_; }

  /// Copy the bitmap out and reset it (blkd's per-iteration Proc read).
  core::DirtyBitmap snapshot_dirty_and_reset();
  /// Same, into a caller-owned reused buffer — allocation-free once `out`
  /// has the right shape (see DirtyBitmap::take_and_reset_into).
  void snapshot_dirty_and_reset_into(core::DirtyBitmap& out);
  /// Copy the bitmap out without resetting.
  core::DirtyBitmap snapshot_dirty() const;
  std::uint64_t dirty_block_count() const {
    settle_source();
    return tracking_ ? dirty_.count_set() : 0;
  }
  /// Cumulative blocks marked in the bitmap since tracking began — unlike
  /// dirty_block_count(), rewriting an already-dirty block still counts, so
  /// deltas of this value give the domain's true write (re-dirty) rate.
  /// Survives snapshot_dirty_and_reset(); reset by start_write_tracking().
  std::uint64_t dirty_marks_total() const {
    settle_source();
    return marks_total_;
  }

  /// CPU cost charged per tracked write (Table III overhead model).
  void set_tracking_overhead(sim::Duration d) {
    settle_source();
    tracking_overhead_ = d;
    notify_fidelity();
  }
  sim::Duration tracking_overhead() const noexcept { return tracking_overhead_; }

  // ---- Post-copy interception ----

  void install_interceptor(IoInterceptor* i) {
    settle_source();
    interceptor_ = i;
    notify_fidelity();
  }
  void remove_interceptor() {
    settle_source();
    interceptor_ = nullptr;
    notify_fidelity();
  }
  bool intercepting() const noexcept { return interceptor_ != nullptr; }

  /// Observer invoked after each served-domain write completes on disk —
  /// the tap a delta-forwarding scheme (Bradford et al., VEE'07) uses to
  /// capture the written data for forwarding.
  void set_write_observer(std::function<void(storage::BlockRange)> fn) {
    settle_source();
    write_observer_ = std::move(fn);
    notify_fidelity();
  }
  void clear_write_observer() {
    settle_source();
    write_observer_ = nullptr;
    notify_fidelity();
  }

  /// Hook invoked whenever a tracked write marks the dirty bitmap — the
  /// flight recorder's `redirty` tap. Fires only while tracking is on (so it
  /// self-disables at freeze) and only for the served domain. The installer
  /// must clear it before the owning migration object is destroyed.
  void set_redirty_hook(std::function<void(storage::BlockRange)> fn) {
    settle_source();
    redirty_hook_ = std::move(fn);
    notify_fidelity();
  }
  void clear_redirty_hook() {
    settle_source();
    redirty_hook_ = nullptr;
    notify_fidelity();
  }

  // ---- Stats ----
  std::uint64_t guest_reads() const noexcept { return reads_; }
  std::uint64_t guest_writes() const noexcept { return writes_; }
  std::uint64_t guest_read_bytes() const noexcept { return read_bytes_; }
  std::uint64_t guest_write_bytes() const noexcept { return write_bytes_; }

  // ---- Observability ----

  /// Register this backend's instruments under `prefix` ("blk.source"):
  /// read/write op and byte counters plus the dirty-bitmap set rate. Null
  /// pointers (the default) keep the guest I/O path allocation-free with a
  /// single branch per request.
  void attach_obs(obs::Registry& registry, const std::string& prefix);

 private:
  /// Observation-point settle. Logically const: the source folds modeled
  /// writes that already happened (in simulated time) into the backend
  /// state a const reader is about to look at.
  void settle_source() const {
    if (dirty_source_ != nullptr) dirty_source_->settle();
  }
  void notify_fidelity() {
    if (dirty_source_ != nullptr) dirty_source_->on_fidelity_change();
  }

  sim::Simulator& sim_;
  storage::VirtualDisk& disk_;
  DomainId served_;
  bool tracking_ = false;
  core::DirtyBitmap dirty_;
  std::uint64_t marks_total_ = 0;
  sim::Duration tracking_overhead_{};
  IoInterceptor* interceptor_ = nullptr;
  DirtySource* dirty_source_ = nullptr;
  std::function<void(storage::BlockRange)> write_observer_;
  std::function<void(storage::BlockRange)> redirty_hook_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t read_bytes_ = 0;
  std::uint64_t write_bytes_ = 0;
  obs::Counter* obs_read_ops_ = nullptr;
  obs::Counter* obs_write_ops_ = nullptr;
  obs::Counter* obs_read_bytes_ = nullptr;
  obs::Counter* obs_write_bytes_ = nullptr;
  obs::Counter* obs_dirty_marks_ = nullptr;
};

}  // namespace vmig::vm
