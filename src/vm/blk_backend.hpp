#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "core/dirty_bitmap.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "storage/virtual_disk.hpp"
#include "vm/types.hpp"

namespace vmig::obs {
class Counter;
class Registry;
}  // namespace vmig::obs

namespace vmig::vm {

/// Hook a migration engine installs into the backend's request path.
///
/// The post-copy engine (paper §IV-A-3) uses this to hold guest reads of
/// not-yet-synchronized blocks until the block is pulled from the source,
/// and to flip bitmap state on guest writes. `on_request` completes when the
/// request may be submitted to the physical driver.
class IoInterceptor {
 public:
  virtual ~IoInterceptor() = default;
  virtual sim::Task<void> on_request(DomainId domain, storage::IoOp op,
                                     storage::BlockRange range) = 0;
};

/// The Domain0 half of the Xen split block driver (`blkback`).
///
/// Every I/O request a guest submits to its virtual block device passes
/// through here, which is exactly why the paper put dirty tracking at this
/// layer: when monitoring is on, each write's 4 KB blocks are marked in the
/// block-bitmap before hitting the disk. A configurable per-write tracking
/// cost models the overhead Table III measures (< 1 %).
class BlkBackend {
 public:
  BlkBackend(sim::Simulator& sim, storage::VirtualDisk& disk, DomainId served)
      : sim_{sim}, disk_{disk}, served_{served} {}

  BlkBackend(const BlkBackend&) = delete;
  BlkBackend& operator=(const BlkBackend&) = delete;

  storage::VirtualDisk& disk() noexcept { return disk_; }
  const storage::VirtualDisk& disk() const noexcept { return disk_; }
  DomainId served_domain() const noexcept { return served_; }
  /// Rebind which DomU this backend serves (set when a domain attaches).
  void set_served(DomainId d) noexcept { served_ = d; }

  /// Guest I/O entry point (what the frontend ring delivers).
  sim::Task<void> submit(DomainId domain, storage::IoOp op,
                         storage::BlockRange range);

  /// Guest write carrying real bytes (payload-backed disks). Same
  /// interception/tracking path as submit(); `bytes` must cover the range.
  sim::Task<void> submit_write_bytes(DomainId domain, storage::BlockRange range,
                                     std::span<const std::byte> bytes);

  // ---- Write tracking (the paper's blkback modification) ----

  /// Begin recording every write from the served domain into a fresh
  /// block-bitmap of the given kind.
  void start_write_tracking(core::BitmapKind kind);
  void stop_write_tracking();
  bool tracking() const noexcept { return tracking_; }

  /// Copy the bitmap out and reset it (blkd's per-iteration Proc read).
  core::DirtyBitmap snapshot_dirty_and_reset();
  /// Same, into a caller-owned reused buffer — allocation-free once `out`
  /// has the right shape (see DirtyBitmap::take_and_reset_into).
  void snapshot_dirty_and_reset_into(core::DirtyBitmap& out);
  /// Copy the bitmap out without resetting.
  core::DirtyBitmap snapshot_dirty() const;
  std::uint64_t dirty_block_count() const {
    return tracking_ ? dirty_.count_set() : 0;
  }
  /// Cumulative blocks marked in the bitmap since tracking began — unlike
  /// dirty_block_count(), rewriting an already-dirty block still counts, so
  /// deltas of this value give the domain's true write (re-dirty) rate.
  /// Survives snapshot_dirty_and_reset(); reset by start_write_tracking().
  std::uint64_t dirty_marks_total() const noexcept { return marks_total_; }

  /// CPU cost charged per tracked write (Table III overhead model).
  void set_tracking_overhead(sim::Duration d) noexcept { tracking_overhead_ = d; }
  sim::Duration tracking_overhead() const noexcept { return tracking_overhead_; }

  // ---- Post-copy interception ----

  void install_interceptor(IoInterceptor* i) noexcept { interceptor_ = i; }
  void remove_interceptor() noexcept { interceptor_ = nullptr; }
  bool intercepting() const noexcept { return interceptor_ != nullptr; }

  /// Observer invoked after each served-domain write completes on disk —
  /// the tap a delta-forwarding scheme (Bradford et al., VEE'07) uses to
  /// capture the written data for forwarding.
  void set_write_observer(std::function<void(storage::BlockRange)> fn) {
    write_observer_ = std::move(fn);
  }
  void clear_write_observer() { write_observer_ = nullptr; }

  /// Hook invoked whenever a tracked write marks the dirty bitmap — the
  /// flight recorder's `redirty` tap. Fires only while tracking is on (so it
  /// self-disables at freeze) and only for the served domain. The installer
  /// must clear it before the owning migration object is destroyed.
  void set_redirty_hook(std::function<void(storage::BlockRange)> fn) {
    redirty_hook_ = std::move(fn);
  }
  void clear_redirty_hook() { redirty_hook_ = nullptr; }

  // ---- Stats ----
  std::uint64_t guest_reads() const noexcept { return reads_; }
  std::uint64_t guest_writes() const noexcept { return writes_; }
  std::uint64_t guest_read_bytes() const noexcept { return read_bytes_; }
  std::uint64_t guest_write_bytes() const noexcept { return write_bytes_; }

  // ---- Observability ----

  /// Register this backend's instruments under `prefix` ("blk.source"):
  /// read/write op and byte counters plus the dirty-bitmap set rate. Null
  /// pointers (the default) keep the guest I/O path allocation-free with a
  /// single branch per request.
  void attach_obs(obs::Registry& registry, const std::string& prefix);

 private:
  sim::Simulator& sim_;
  storage::VirtualDisk& disk_;
  DomainId served_;
  bool tracking_ = false;
  core::DirtyBitmap dirty_;
  std::uint64_t marks_total_ = 0;
  sim::Duration tracking_overhead_{};
  IoInterceptor* interceptor_ = nullptr;
  std::function<void(storage::BlockRange)> write_observer_;
  std::function<void(storage::BlockRange)> redirty_hook_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t read_bytes_ = 0;
  std::uint64_t write_bytes_ = 0;
  obs::Counter* obs_read_ops_ = nullptr;
  obs::Counter* obs_write_ops_ = nullptr;
  obs::Counter* obs_read_bytes_ = nullptr;
  obs::Counter* obs_write_bytes_ = nullptr;
  obs::Counter* obs_dirty_marks_ = nullptr;
};

}  // namespace vmig::vm
