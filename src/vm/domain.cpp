#include "vm/domain.hpp"

namespace vmig::vm {

void Domain::suspend() {
  if (state_ == State::kSuspended) return;
  state_ = State::kSuspended;
  suspended_at_ = sim_.now();
  if (state_hook_) state_hook_(false);
}

void Domain::resume() {
  if (state_ == State::kRunning) return;
  state_ = State::kRunning;
  suspended_total_ += sim_.now() - suspended_at_;
  cpu_.touch();  // context restore
  if (state_hook_) state_hook_(true);
  resume_notifier_.notify_all();
}

sim::Duration Domain::total_suspended_time() const {
  sim::Duration t = suspended_total_;
  if (state_ == State::kSuspended) t += sim_.now() - suspended_at_;
  return t;
}

sim::Task<void> Domain::barrier() {
  while (state_ == State::kSuspended) {
    co_await resume_notifier_.wait();
  }
}

sim::Task<void> Domain::disk_read(storage::BlockRange range) {
  co_await barrier();
  co_await frontend_.submit(storage::IoOp::kRead, range);
}

sim::Task<void> Domain::disk_write(storage::BlockRange range) {
  co_await barrier();
  co_await frontend_.submit(storage::IoOp::kWrite, range);
}

sim::Task<void> Domain::disk_write_bytes(storage::BlockRange range,
                                         std::span<const std::byte> bytes) {
  co_await barrier();
  co_await frontend_.submit_write_bytes(range, bytes);
}

}  // namespace vmig::vm
