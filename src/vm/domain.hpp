#pragma once

#include <cassert>
#include <functional>
#include <string>

#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "vm/blk_backend.hpp"
#include "vm/guest_memory.hpp"
#include "vm/types.hpp"
#include "vm/vcpu.hpp"

namespace vmig::vm {

/// The DomainU half of the split block driver: a thin proxy that forwards
/// ring requests to whichever backend the domain is currently connected to.
/// Rebinding the frontend to the destination host's backend is how a
/// migrated VM transparently starts using the migrated VBD.
class BlkFrontend {
 public:
  explicit BlkFrontend(DomainId owner) : owner_{owner} {}

  void connect(BlkBackend* be) {
    backend_ = be;
    if (rebind_hook_) rebind_hook_(be);
  }
  void disconnect() {
    backend_ = nullptr;
    if (rebind_hook_) rebind_hook_(nullptr);
  }
  bool connected() const noexcept { return backend_ != nullptr; }
  BlkBackend* backend() const noexcept { return backend_; }

  /// Invoked after every connect/disconnect with the new backend (null on
  /// disconnect). A dirty-rate model (workloads::SteadyWriter) follows the
  /// domain across migrations with this: it settles and detaches from the
  /// old backend, then attaches to the new one.
  void set_rebind_hook(std::function<void(BlkBackend*)> fn) {
    rebind_hook_ = std::move(fn);
  }
  void clear_rebind_hook() { rebind_hook_ = nullptr; }

  sim::Task<void> submit(storage::IoOp op, storage::BlockRange range) {
    assert(backend_ != nullptr && "frontend not connected to a backend");
    return backend_->submit(owner_, op, range);
  }

  sim::Task<void> submit_write_bytes(storage::BlockRange range,
                                     std::span<const std::byte> bytes) {
    assert(backend_ != nullptr && "frontend not connected to a backend");
    return backend_->submit_write_bytes(owner_, range, bytes);
  }

 private:
  DomainId owner_;
  BlkBackend* backend_ = nullptr;
  std::function<void(BlkBackend*)> rebind_hook_;
};

/// An unprivileged guest VM (Xen DomainU): vCPU + memory + virtual disk
/// frontend, with a run/suspend lifecycle.
///
/// Workload coroutines drive the domain; every guest-visible operation
/// passes a `barrier()` that holds while the domain is suspended, so the
/// freeze-and-copy phase stops the guest exactly as Xen's suspend does, and
/// resume at the destination lets it continue where it stopped.
class Domain {
 public:
  enum class State : std::uint8_t { kRunning, kSuspended };

  Domain(sim::Simulator& sim, DomainId id, std::string name,
         std::uint64_t memory_mib)
      : sim_{sim},
        id_{id},
        name_{std::move(name)},
        memory_{memory_mib},
        frontend_{id},
        resume_notifier_{sim} {}

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  DomainId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  GuestMemory& memory() noexcept { return memory_; }
  const GuestMemory& memory() const noexcept { return memory_; }
  VCpuState& cpu() noexcept { return cpu_; }
  const VCpuState& cpu() const noexcept { return cpu_; }
  BlkFrontend& frontend() noexcept { return frontend_; }

  State state() const noexcept { return state_; }
  bool running() const noexcept { return state_ == State::kRunning; }

  /// Freeze the guest (start of the freeze-and-copy phase).
  void suspend();
  /// Unfreeze (resume on the destination — or abort back on the source).
  void resume();

  /// Invoked on every suspend/resume transition with the *new* running
  /// state, after the domain settled any attached dirty-rate model — the
  /// fast-forward settle point that keeps modeled writes exact across
  /// freeze windows (ticks up to the transition instant apply under the old
  /// state; see docs/SCALE.md).
  void set_state_hook(std::function<void(bool running)> fn) {
    state_hook_ = std::move(fn);
  }
  void clear_state_hook() { state_hook_ = nullptr; }

  /// Wall-clock the guest has spent frozen (downtime accounting cross-check).
  sim::Duration total_suspended_time() const;

  /// Completes immediately while running; holds while suspended.
  sim::Task<void> barrier();

  // ---- Guest-side operations used by workload drivers ----

  sim::Task<void> disk_read(storage::BlockRange range);
  sim::Task<void> disk_write(storage::BlockRange range);
  /// Write real bytes (payload-backed disks); tracked like any guest write.
  sim::Task<void> disk_write_bytes(storage::BlockRange range,
                                   std::span<const std::byte> bytes);

  /// Guest store to a memory page (dirty-logged during pre-copy).
  void touch_memory(PageId p) { memory_.write_page(p); }

 private:
  sim::Simulator& sim_;
  DomainId id_;
  std::string name_;
  GuestMemory memory_;
  VCpuState cpu_;
  BlkFrontend frontend_;
  State state_ = State::kRunning;
  std::function<void(bool)> state_hook_;
  sim::Notifier resume_notifier_;
  sim::TimePoint suspended_at_{};
  sim::Duration suspended_total_{};
};

}  // namespace vmig::vm
