#pragma once

#include <cassert>
#include <string>

#include "simcore/notifier.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "vm/blk_backend.hpp"
#include "vm/guest_memory.hpp"
#include "vm/types.hpp"
#include "vm/vcpu.hpp"

namespace vmig::vm {

/// The DomainU half of the split block driver: a thin proxy that forwards
/// ring requests to whichever backend the domain is currently connected to.
/// Rebinding the frontend to the destination host's backend is how a
/// migrated VM transparently starts using the migrated VBD.
class BlkFrontend {
 public:
  explicit BlkFrontend(DomainId owner) : owner_{owner} {}

  void connect(BlkBackend* be) noexcept { backend_ = be; }
  void disconnect() noexcept { backend_ = nullptr; }
  bool connected() const noexcept { return backend_ != nullptr; }
  BlkBackend* backend() const noexcept { return backend_; }

  sim::Task<void> submit(storage::IoOp op, storage::BlockRange range) {
    assert(backend_ != nullptr && "frontend not connected to a backend");
    return backend_->submit(owner_, op, range);
  }

  sim::Task<void> submit_write_bytes(storage::BlockRange range,
                                     std::span<const std::byte> bytes) {
    assert(backend_ != nullptr && "frontend not connected to a backend");
    return backend_->submit_write_bytes(owner_, range, bytes);
  }

 private:
  DomainId owner_;
  BlkBackend* backend_ = nullptr;
};

/// An unprivileged guest VM (Xen DomainU): vCPU + memory + virtual disk
/// frontend, with a run/suspend lifecycle.
///
/// Workload coroutines drive the domain; every guest-visible operation
/// passes a `barrier()` that holds while the domain is suspended, so the
/// freeze-and-copy phase stops the guest exactly as Xen's suspend does, and
/// resume at the destination lets it continue where it stopped.
class Domain {
 public:
  enum class State : std::uint8_t { kRunning, kSuspended };

  Domain(sim::Simulator& sim, DomainId id, std::string name,
         std::uint64_t memory_mib)
      : sim_{sim},
        id_{id},
        name_{std::move(name)},
        memory_{memory_mib},
        frontend_{id},
        resume_notifier_{sim} {}

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  DomainId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  GuestMemory& memory() noexcept { return memory_; }
  const GuestMemory& memory() const noexcept { return memory_; }
  VCpuState& cpu() noexcept { return cpu_; }
  const VCpuState& cpu() const noexcept { return cpu_; }
  BlkFrontend& frontend() noexcept { return frontend_; }

  State state() const noexcept { return state_; }
  bool running() const noexcept { return state_ == State::kRunning; }

  /// Freeze the guest (start of the freeze-and-copy phase).
  void suspend();
  /// Unfreeze (resume on the destination — or abort back on the source).
  void resume();

  /// Wall-clock the guest has spent frozen (downtime accounting cross-check).
  sim::Duration total_suspended_time() const;

  /// Completes immediately while running; holds while suspended.
  sim::Task<void> barrier();

  // ---- Guest-side operations used by workload drivers ----

  sim::Task<void> disk_read(storage::BlockRange range);
  sim::Task<void> disk_write(storage::BlockRange range);
  /// Write real bytes (payload-backed disks); tracked like any guest write.
  sim::Task<void> disk_write_bytes(storage::BlockRange range,
                                   std::span<const std::byte> bytes);

  /// Guest store to a memory page (dirty-logged during pre-copy).
  void touch_memory(PageId p) { memory_.write_page(p); }

 private:
  sim::Simulator& sim_;
  DomainId id_;
  std::string name_;
  GuestMemory memory_;
  VCpuState cpu_;
  BlkFrontend frontend_;
  State state_ = State::kRunning;
  sim::Notifier resume_notifier_;
  sim::TimePoint suspended_at_{};
  sim::Duration suspended_total_{};
};

}  // namespace vmig::vm
