#include "vm/guest_memory.hpp"

#include <cassert>

namespace vmig::vm {

GuestMemory::GuestMemory(std::uint64_t mib, std::uint32_t page_size)
    : page_size_{page_size},
      versions_(mib * 1024 * 1024 / page_size, 0),
      dirty_{versions_.size()} {}

void GuestMemory::write_page(PageId p) {
  assert(p < versions_.size());
  versions_[p] = next_version_++;
  ++write_count_;
  if (log_enabled_) dirty_.set(p);
}

void GuestMemory::enable_dirty_log() {
  log_enabled_ = true;
  dirty_.fill(false);
}

void GuestMemory::disable_dirty_log() { log_enabled_ = false; }

core::BlockBitmap GuestMemory::take_dirty_and_reset() {
  core::BlockBitmap snap = dirty_;
  dirty_.fill(false);
  return snap;
}

}  // namespace vmig::vm
