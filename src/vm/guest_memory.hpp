#pragma once

#include <cstdint>
#include <vector>

#include "core/block_bitmap.hpp"
#include "vm/types.hpp"

namespace vmig::vm {

/// Guest physical memory model.
///
/// Pages carry a 64-bit version (bumped on every guest write) instead of
/// real contents — enough to verify that memory migration moves exactly the
/// right pages, at 8 bytes/page of host cost. A hypervisor-style dirty log
/// (shadow-page-table write tracking in Xen) can be enabled around pre-copy
/// iterations.
class GuestMemory {
 public:
  explicit GuestMemory(std::uint64_t mib, std::uint32_t page_size = 4096);

  std::uint64_t page_count() const noexcept { return versions_.size(); }
  std::uint32_t page_size() const noexcept { return page_size_; }
  std::uint64_t total_bytes() const noexcept {
    return page_count() * page_size_;
  }

  /// Guest write to a page: bumps the version; marks the dirty log when on.
  void write_page(PageId p);

  std::uint64_t version(PageId p) const { return versions_[p]; }

  /// Install a page version received from a migration stream.
  void apply_page(PageId p, std::uint64_t version) { versions_[p] = version; }

  /// True iff every page version matches (migration correctness check).
  bool content_equals(const GuestMemory& o) const {
    return versions_ == o.versions_;
  }

  // ---- Hypervisor dirty log ----

  void enable_dirty_log();
  void disable_dirty_log();
  bool dirty_log_enabled() const noexcept { return log_enabled_; }

  std::uint64_t dirty_page_count() const noexcept { return dirty_.count_set(); }

  /// Snapshot the dirty log and clear it (start of a pre-copy iteration).
  core::BlockBitmap take_dirty_and_reset();

  const core::BlockBitmap& dirty_log() const noexcept { return dirty_; }

  /// Total guest page writes ever (workload intensity diagnostics).
  std::uint64_t write_count() const noexcept { return write_count_; }

 private:
  std::uint32_t page_size_;
  std::vector<std::uint64_t> versions_;
  core::BlockBitmap dirty_;
  bool log_enabled_ = false;
  std::uint64_t write_count_ = 0;
  std::uint64_t next_version_ = 1;
};

}  // namespace vmig::vm
