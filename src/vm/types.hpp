#pragma once

#include <cstdint>

namespace vmig::vm {

/// Xen-style domain identifier. Domain 0 is the privileged control domain
/// that owns physical devices and runs the migration daemons.
using DomainId = std::uint32_t;

inline constexpr DomainId kDomain0 = 0;

/// Guest physical page frame number.
using PageId = std::uint64_t;

}  // namespace vmig::vm
