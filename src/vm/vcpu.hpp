#pragma once

#include <cstdint>

namespace vmig::vm {

/// Architectural state of a virtual CPU — what the freeze-and-copy phase
/// ships alongside the residual dirty pages. Contents are modeled as an
/// opaque blob with a version stamp; the size is what matters for downtime.
struct VCpuState {
  /// Xen shipped a few KB of per-vCPU context (registers, FPU, MSRs).
  static constexpr std::uint64_t kWireBytes = 8 * 1024;

  std::uint64_t version = 0;

  /// Guest execution mutates CPU state continuously.
  void touch() { ++version; }

  std::uint64_t wire_bytes() const { return kWireBytes; }

  bool operator==(const VCpuState&) const = default;
};

}  // namespace vmig::vm
