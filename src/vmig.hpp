#pragma once

/// Umbrella header: the whole public API of the vmig library.
///
///   #include "vmig.hpp"
///
/// Pulls in the simulation kernel, the host/guest substrates, the TPM/IM
/// migration engine, the related-work baselines, the evaluation workloads,
/// and the calibrated paper testbed. Fine-grained headers remain available
/// for faster builds (see docs/API.md for the layer-by-layer tour).

// Simulation kernel.
#include "simcore/channel.hpp"
#include "simcore/log.hpp"
#include "simcore/notifier.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/stats.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

// Observability: metrics registry, tracer, deterministic exports.
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/tracer.hpp"

// Storage and network substrates.
#include "net/link.hpp"
#include "net/message_stream.hpp"

// Fault injection: spec grammar + scheduled link faults.
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "storage/block.hpp"
#include "storage/disk_model.hpp"
#include "storage/disk_scheduler.hpp"
#include "storage/virtual_disk.hpp"

// Guest and hypervisor.
#include "hypervisor/checkpoint.hpp"
#include "hypervisor/host.hpp"
#include "vm/blk_backend.hpp"
#include "vm/domain.hpp"
#include "vm/guest_memory.hpp"
#include "vm/types.hpp"
#include "vm/vcpu.hpp"

// The paper's contribution: block-bitmaps, TPM, IM, post-copy.
#include "core/block_bitmap.hpp"
#include "core/dirty_bitmap.hpp"
#include "core/disruption.hpp"
#include "core/im_directory.hpp"
#include "core/layered_bitmap.hpp"
#include "core/migration_config.hpp"
#include "core/migration_manager.hpp"
#include "core/migration_metrics.hpp"
#include "core/migration_request.hpp"
#include "core/post_copy.hpp"
#include "core/protocol.hpp"
#include "core/report_io.hpp"
#include "core/tpm.hpp"

// Cluster orchestration: job queue, admission, scheduling, evacuation.
#include "cluster/admission.hpp"
#include "cluster/backoff.hpp"
#include "cluster/evacuation.hpp"
#include "cluster/job.hpp"
#include "cluster/orchestrator.hpp"
#include "cluster/scheduler.hpp"

// Related-work baselines.
#include "baselines/baseline_report.hpp"
#include "baselines/delta_forward.hpp"
#include "baselines/freeze_and_copy.hpp"
#include "baselines/on_demand.hpp"
#include "baselines/shared_storage.hpp"

// Evaluation workloads, tracing, and the calibrated testbeds.
#include "scenario/cluster_testbed.hpp"
#include "scenario/testbed.hpp"
#include "trace/io_trace.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/memory_hog.hpp"
#include "workloads/streaming.hpp"
#include "workloads/trace_replay.hpp"
#include "workloads/web_server.hpp"
#include "workloads/workload.hpp"
