#include "workloads/diabolical.hpp"

#include <algorithm>

#include "obs/profiler.hpp"

namespace vmig::workload {

using namespace vmig::sim::literals;

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

DiabolicalWorkload::DiabolicalWorkload(sim::Simulator& sim, vm::Domain& domain,
                                       std::uint64_t seed, DiabolicalParams params)
    : Workload{sim, domain, seed}, p_{params} {
  for (const auto& name : phase_names()) {
    meters_.emplace(name, std::make_unique<sim::RateMeter>(1_s, "B/s"));
  }
}

const std::vector<std::string>& DiabolicalWorkload::phase_names() {
  static const std::vector<std::string> kNames{"putc", "write2", "rewrite",
                                               "getc", "seeks"};
  return kNames;
}

const sim::RateMeter* DiabolicalWorkload::phase_meter(
    const std::string& phase) const {
  const auto it = meters_.find(phase);
  return it == meters_.end() ? nullptr : it->second.get();
}

double DiabolicalWorkload::phase_mean(const std::string& phase,
                                      sim::TimePoint from,
                                      sim::TimePoint to) const {
  const auto* m = phase_meter(phase);
  if (m == nullptr) return 0.0;
  // A phase runs a fraction of the cycle, and the 1 s windows straddling
  // its start/end are diluted by idle time — take the plateau: samples
  // within the window that reach at least 40% of the window's peak.
  double peak = 0.0;
  for (const auto& pt : m->series().points()) {
    if (pt.t >= from && pt.t <= to && pt.value > peak) peak = pt.value;
  }
  sim::SummaryStats s;
  for (const auto& pt : m->series().points()) {
    if (pt.t >= from && pt.t <= to && pt.value > 0.4 * peak && pt.value > 0.0) {
      s.add(pt.value);
    }
  }
  return s.mean();
}

sim::Duration DiabolicalWorkload::phase_time(const std::string& phase) const {
  const auto it = phase_times_.find(phase);
  return it == phase_times_.end() ? sim::Duration::zero() : it->second;
}

double DiabolicalWorkload::phase_rate(const std::string& phase) const {
  const auto t = phase_time(phase);
  const auto* m = phase_meter(phase);
  if (m == nullptr || t <= sim::Duration::zero()) return 0.0;
  return m->total() / t.to_seconds();
}

void DiabolicalWorkload::finish_phase_metrics() {
  for (auto& [name, meter] : meters_) meter->finish(sim_.now());
  finish_metrics();
}

void DiabolicalWorkload::phase_account(const std::string& phase, double bytes) {
  meters_.at(phase)->add(sim_.now(), bytes);
  account(bytes);
}

storage::BlockRange DiabolicalWorkload::next_seq_chunk(std::uint64_t base,
                                                       std::uint64_t blocks) {
  const std::uint64_t pos = seq_cursor_ % (blocks - p_.chunk_blocks + 1);
  seq_cursor_ += p_.chunk_blocks;
  return storage::BlockRange{base + pos, p_.chunk_blocks};
}

sim::Task<void> DiabolicalWorkload::run() {
  const std::uint64_t blocks = disk_blocks();
  const std::uint32_t block_size = 4096;
  file_blocks_ = std::max<std::uint64_t>(p_.file_mib * 1024 * 1024 / block_size,
                                         p_.chunk_blocks * 4);
  file_blocks_ = std::min(file_blocks_, blocks / 2);
  file_start_ = blocks / 2;

  while (!stop_requested()) {
    sim::TimePoint mark = sim_.now();
    const auto lap = [&](const char* phase) {
      // Per-phase accounting (map node insert on first touch of a phase
      // name) is workload bookkeeping, not migration dispatch.
      obs::ProfScope lap_prof{obs::ProfCategory::kOther};
      phase_times_[phase] += sim_.now() - mark;
      mark = sim_.now();
    };
    co_await putc_phase();
    lap("putc");
    co_await write2_phase();
    lap("write2");
    co_await rewrite_phase();
    lap("rewrite");
    co_await getc_phase();
    lap("getc");
    co_await seeks_phase();
    lap("seeks");
    ++cycles_;
    if (p_.max_cycles > 0 && cycles_ >= p_.max_cycles) break;
  }
}

sim::Task<void> DiabolicalWorkload::putc_phase() {
  // The per-character file occupies the first half of the scratch region
  // (on a fresh filesystem, Bonnie++'s files get distinct extents).
  const double chunk_bytes = static_cast<double>(p_.chunk_blocks) * 4096.0;
  const auto cpu_cost =
      sim::Duration::from_seconds(chunk_bytes / (p_.putc_cpu_mibps * kMiB));
  const std::uint64_t half = file_blocks_ / 2;
  const std::uint64_t chunks = half / p_.chunk_blocks;
  seq_cursor_ = 0;
  for (std::uint64_t i = 0; i < chunks && !stop_requested(); ++i) {
    co_await domain_.barrier();
    // Per-character output: the guest burns CPU filling the buffer, then
    // the buffered chunk hits the disk.
    co_await sim_.delay(cpu_cost);
    co_await write_blocks(next_seq_chunk(file_start_, half));
    touch_pages(p_.pages_per_chunk);
    phase_account("putc", chunk_bytes);
  }
}

sim::Task<void> DiabolicalWorkload::write2_phase() {
  // The block-I/O file takes the second half of the scratch region.
  const double chunk_bytes = static_cast<double>(p_.chunk_blocks) * 4096.0;
  const std::uint64_t half = file_blocks_ / 2;
  const std::uint64_t chunks = half / p_.chunk_blocks;
  seq_cursor_ = 0;
  for (std::uint64_t i = 0; i < chunks && !stop_requested(); ++i) {
    co_await domain_.barrier();
    co_await write_blocks(next_seq_chunk(file_start_ + half, half));
    touch_pages(p_.pages_per_chunk);
    phase_account("write2", chunk_bytes);
  }
}

sim::Task<void> DiabolicalWorkload::rewrite_phase() {
  // Rewrite reads and rewrites the block-I/O file in place.
  const double chunk_bytes = static_cast<double>(p_.chunk_blocks) * 4096.0;
  const std::uint64_t half = file_blocks_ / 2;
  const std::uint64_t chunks = half / p_.chunk_blocks;
  seq_cursor_ = 0;
  for (std::uint64_t i = 0; i < chunks && !stop_requested(); ++i) {
    co_await domain_.barrier();
    const auto chunk = next_seq_chunk(file_start_ + half, half);
    co_await read_blocks(chunk);
    co_await sim_.delay(p_.rewrite_rotation);  // missed-revolution cost
    co_await write_blocks(chunk);
    touch_pages(p_.pages_per_chunk);
    phase_account("rewrite", chunk_bytes);
  }
}

sim::Task<void> DiabolicalWorkload::getc_phase() {
  const double chunk_bytes = static_cast<double>(p_.chunk_blocks) * 4096.0;
  const auto cpu_cost =
      sim::Duration::from_seconds(chunk_bytes / (p_.getc_cpu_mibps * kMiB));
  const std::uint64_t chunks = file_blocks_ / p_.chunk_blocks;
  seq_cursor_ = 0;
  for (std::uint64_t i = 0; i < chunks && !stop_requested(); ++i) {
    co_await domain_.barrier();
    co_await read_blocks(next_seq_chunk(file_start_, file_blocks_));
    co_await sim_.delay(cpu_cost);
    phase_account("getc", chunk_bytes);
  }
}

sim::Task<void> DiabolicalWorkload::seeks_phase() {
  for (std::uint64_t i = 0; i < p_.seek_count && !stop_requested(); ++i) {
    co_await domain_.barrier();
    const std::uint64_t b = file_start_ + rng_.uniform_u64(file_blocks_ - 2);
    co_await read_blocks(storage::BlockRange{b, 2});
    // Bonnie++ rewrites ~10% of the blocks it seeks to.
    if (rng_.bernoulli(0.1)) {
      co_await write_blocks(storage::BlockRange{b, 2});
    }
    phase_account("seeks", 2 * 4096.0);
  }
}

}  // namespace vmig::workload
