#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace vmig::workload {

/// Bonnie++-like diabolical server: continuous disk-saturating I/O cycling
/// through Bonnie++'s phases — per-character sequential output (putc),
/// block sequential output (write(2)), rewrite (read-modify-write), block
/// sequential input (getc), and random seeks. The paper uses it as the
/// worst case for whole-system migration: it dirties blocks faster than any
/// realistic service and fights the migration stream for the disk (Fig. 6).
struct DiabolicalParams {
  /// Size of the Bonnie++ scratch file.
  std::uint64_t file_mib = 1024;
  /// CPU-side ceiling for the per-character phases (putc/getc are libc-call
  /// bound, not disk bound; Table III has putc at ~47 MB/s vs write(2) ~96).
  double putc_cpu_mibps = 114.0;
  double getc_cpu_mibps = 110.0;
  /// Rotational penalty per chunk in the rewrite phase: writing a block just
  /// read costs (most of) a revolution, which is why Bonnie++'s rewrite rate
  /// (~26 MB/s in Table III) is far below half the write(2) rate.
  sim::Duration rewrite_rotation = sim::Duration::millis(4);
  /// Random seeks performed in the seek phase (Bonnie++ default is time
  /// bound; a fixed count keeps the cycle structure size-bound like the
  /// other phases).
  std::uint64_t seek_count = 4000;
  /// I/O chunk size in blocks (Bonnie uses large buffered writes).
  std::uint32_t chunk_blocks = 64;
  /// Stop after this many complete cycles (0 = run until stopped). The
  /// locality measurements use 1, matching one Bonnie++ run on a fresh FS.
  std::uint64_t max_cycles = 0;
  /// Pages dirtied per chunk (application buffers; the guest page cache is
  /// not dirty-logged here — see DESIGN.md's calibration notes).
  int pages_per_chunk = 1;
};

class DiabolicalWorkload final : public Workload {
 public:
  DiabolicalWorkload(sim::Simulator& sim, vm::Domain& domain, std::uint64_t seed,
                     DiabolicalParams params = {});

  std::string name() const override { return "diabolical"; }

  /// Phase names in cycle order: putc, write2, rewrite, getc, seeks.
  static const std::vector<std::string>& phase_names();

  /// Per-phase throughput meter ("putc", "write2", "rewrite", "getc",
  /// "seeks"); null if unknown name.
  const sim::RateMeter* phase_meter(const std::string& phase) const;
  /// Mean throughput of a phase over [from, to], bytes/second.
  double phase_mean(const std::string& phase, sim::TimePoint from,
                    sim::TimePoint to) const;

  /// Total simulated time spent inside a phase (across all cycles).
  sim::Duration phase_time(const std::string& phase) const;
  /// Exact mean rate of a phase over its own active time, bytes/second.
  double phase_rate(const std::string& phase) const;

  void finish_phase_metrics();

  /// Completed phase passes (each pass = one whole file).
  std::uint64_t cycles_completed() const noexcept { return cycles_; }

 protected:
  sim::Task<void> run() override;

 private:
  // Each phase processes the whole scratch file once, exactly as Bonnie++
  // does — so a slower disk stretches the phase instead of shrinking its
  // coverage.
  sim::Task<void> putc_phase();
  sim::Task<void> write2_phase();
  sim::Task<void> rewrite_phase();
  sim::Task<void> getc_phase();
  sim::Task<void> seeks_phase();

  void phase_account(const std::string& phase, double bytes);
  storage::BlockRange next_seq_chunk(std::uint64_t base, std::uint64_t blocks);

  DiabolicalParams p_;
  std::uint64_t cycles_ = 0;
  std::uint64_t file_start_ = 0;
  std::uint64_t file_blocks_ = 0;
  std::uint64_t seq_cursor_ = 0;
  std::map<std::string, std::unique_ptr<sim::RateMeter>> meters_;
  std::map<std::string, sim::Duration> phase_times_;
};

}  // namespace vmig::workload
