#include "workloads/kernel_build.hpp"

#include <algorithm>

namespace vmig::workload {

using namespace vmig::sim::literals;

sim::Task<void> KernelBuildWorkload::run() {
  const std::uint64_t blocks = disk_blocks();
  source_start_ = blocks / 8;
  source_blocks_ = std::max<std::uint64_t>(blocks / 8, 4096);
  object_start_ = blocks / 2;
  object_region_blocks_ = std::max<std::uint64_t>(blocks / 8, 4096);
  object_cursor_ = 0;

  for (int j = 0; j < p_.parallel_jobs; ++j) {
    ++live_jobs_;
    sim_.spawn(job(), "make-job");
  }
  while (live_jobs_ > 0) co_await sim_.delay(50_ms);
}

sim::Task<void> KernelBuildWorkload::job() {
  while (!stop_requested()) {
    co_await domain_.barrier();
    // Read the translation unit + headers.
    const std::uint64_t src =
        source_start_ + rng_.uniform_u64(source_blocks_ - p_.source_read_blocks);
    co_await read_blocks(storage::BlockRange{src, p_.source_read_blocks});
    // Compile.
    co_await sim_.delay(sim::Duration::from_seconds(
        rng_.exponential(p_.compile_mean.to_seconds())));
    if (stop_requested()) break;
    co_await domain_.barrier();
    touch_pages(p_.pages_per_compile);
    domain_.cpu().touch();
    // Emit the object file: usually fresh blocks, sometimes a rebuild.
    const auto n = static_cast<std::uint32_t>(
        rng_.uniform_i64(p_.object_write_min, p_.object_write_max));
    std::uint64_t target;
    if (object_cursor_ > n && rng_.bernoulli(p_.rebuild_probability)) {
      target = object_start_ + rng_.uniform_u64(object_cursor_ - n);
    } else {
      target = object_start_ + object_cursor_ % object_region_blocks_;
      object_cursor_ =
          std::min(object_cursor_ + n, object_region_blocks_ - 1);
    }
    co_await write_blocks(storage::BlockRange{target, n});
    account(static_cast<double>(n) * 4096.0);
    ++units_;
  }
  --live_jobs_;
}

}  // namespace vmig::workload
