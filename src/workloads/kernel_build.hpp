#pragma once

#include "workloads/workload.hpp"

namespace vmig::workload {

/// Kernel-build-like workload: read sources, burn CPU compiling, write
/// object files. Mostly fresh writes with occasional regeneration of
/// already-built objects — the paper measured ~11% of kernel-build writes
/// rewriting previously-written blocks, the lowest of its three workloads.
struct KernelBuildParams {
  /// Mean compile time per translation unit.
  sim::Duration compile_mean = sim::Duration::millis(400);
  /// Source blocks read per translation unit.
  std::uint32_t source_read_blocks = 8;
  /// Object blocks written per translation unit.
  std::uint32_t object_write_min = 1;
  std::uint32_t object_write_max = 6;
  /// Probability a write regenerates an existing object (rewrite).
  double rebuild_probability = 0.11;
  int parallel_jobs = 2;  ///< make -j2 on the paper's Core 2 Duo
  int pages_per_compile = 16;
};

class KernelBuildWorkload final : public Workload {
 public:
  KernelBuildWorkload(sim::Simulator& sim, vm::Domain& domain, std::uint64_t seed,
                      KernelBuildParams params = {})
      : Workload{sim, domain, seed}, p_{params} {}

  std::string name() const override { return "kernel-build"; }

  std::uint64_t units_compiled() const noexcept { return units_; }

 protected:
  sim::Task<void> run() override;

 private:
  sim::Task<void> job();

  KernelBuildParams p_;
  std::uint64_t units_ = 0;
  std::uint64_t source_start_ = 0;
  std::uint64_t source_blocks_ = 0;
  std::uint64_t object_start_ = 0;
  std::uint64_t object_cursor_ = 0;
  std::uint64_t object_region_blocks_ = 0;
  int live_jobs_ = 0;
};

}  // namespace vmig::workload
