#include "workloads/memory_hog.hpp"

#include <algorithm>

namespace vmig::workload {

sim::Task<void> MemoryHogWorkload::run() {
  const std::uint64_t pages = domain_.memory().page_count();
  const std::uint64_t hot = std::min(p_.hot_pages, pages);
  const auto batch_period = sim::Duration::from_seconds(
      static_cast<double>(p_.batch) / p_.dirty_rate_pps);

  while (!stop_requested()) {
    co_await domain_.barrier();
    for (int i = 0; i < p_.batch; ++i) {
      vm::PageId page;
      if (hot < pages && rng_.bernoulli(p_.cold_fraction)) {
        page = hot + rng_.uniform_u64(pages - hot);
      } else {
        page = rng_.uniform_u64(hot);
      }
      domain_.touch_memory(page);
      ++writes_;
    }
    domain_.cpu().touch();
    co_await sim_.delay(batch_period);
  }
}

}  // namespace vmig::workload
