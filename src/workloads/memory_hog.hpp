#pragma once

#include "workloads/workload.hpp"

namespace vmig::workload {

/// Pure memory-dirtying workload with a writable-working-set shape: a hot
/// set of pages rewritten constantly plus a cold tail touched occasionally.
/// This is the knob for studying memory pre-copy convergence (the Xen
/// NSDI'05 dynamics the paper builds on): hot-set size and dirty rate
/// decide iterations, residual pages, and hence downtime.
struct MemoryHogParams {
  /// Pages in the hot set (rewritten uniformly).
  std::uint64_t hot_pages = 2048;
  /// Page writes per second.
  double dirty_rate_pps = 20000.0;
  /// Fraction of writes that land outside the hot set.
  double cold_fraction = 0.05;
  /// Batch size per wakeup (simulation efficiency).
  int batch = 64;
};

class MemoryHogWorkload final : public Workload {
 public:
  MemoryHogWorkload(sim::Simulator& sim, vm::Domain& domain, std::uint64_t seed,
                    MemoryHogParams params = {})
      : Workload{sim, domain, seed}, p_{params} {}

  std::string name() const override { return "memory-hog"; }

  std::uint64_t writes_issued() const noexcept { return writes_; }

 protected:
  sim::Task<void> run() override;

 private:
  MemoryHogParams p_;
  std::uint64_t writes_ = 0;
};

}  // namespace vmig::workload
