#include "workloads/steady_writer.hpp"

#include <algorithm>
#include <cassert>

namespace vmig::workload {

SteadyWriter::SteadyWriter(sim::Simulator& sim, vm::Domain& domain,
                           SteadyWriterConfig cfg)
    : sim_{sim},
      domain_{domain},
      cfg_{cfg},
      alive_{std::make_shared<bool>(true)} {}

SteadyWriter::~SteadyWriter() {
  *alive_ = false;  // a live coroutine frame may outlast us inside the sim
  if (started_) {
    domain_.frontend().clear_rebind_hook();
    domain_.clear_state_hook();
  }
  if (be_ != nullptr) be_->detach_dirty_source(this);
}

void SteadyWriter::start() {
  assert(!started_);
  started_ = true;
  if (cfg_.auto_phase) {
    // Per-domain phase: keeps any two writers' grids disjoint so same-time
    // cross-VM writes (whose relative order is arming-history-dependent and
    // thus mode-dependent) cannot occur. See SteadyWriterConfig::auto_phase.
    const std::int64_t p = cfg_.period.ns();
    const std::int64_t phase =
        (static_cast<std::int64_t>(domain_.id()) * 61009) % p;
    cfg_.start = cfg_.start + sim::Duration::nanos(phase);
  }
  guest_running_ = domain_.running();
  vm::BlkBackend* be = domain_.frontend().backend();
  std::uint64_t disk_blocks = cfg_.region_blocks;
  if (be != nullptr) disk_blocks = be->disk().geometry().block_count;
  region_ = std::min(cfg_.region_blocks, disk_blocks);
  region_ -= region_ % std::max<std::uint64_t>(cfg_.blocks_per_tick, 1);
  assert(region_ >= cfg_.blocks_per_tick && "region too small for one tick");

  domain_.frontend().set_rebind_hook(
      [this](vm::BlkBackend* nbe) { rebind(nbe); });
  domain_.set_state_hook([this](bool running) {
    // Settle under the OLD running state: ticks at t <= the transition
    // instant fire before the same-time suspend/resume control event in the
    // ticked execution (their timers were armed a full period earlier).
    settle();
    guest_running_ = running;
  });
  rebind(be);
  if (!sim_.fast_forward() || fidelity_now()) ensure_live();
}

bool SteadyWriter::fidelity_now() const {
  vm::BlkBackend* be = domain_.frontend().backend();
  return be != nullptr && be->fidelity_required();
}

void SteadyWriter::rebind(vm::BlkBackend* nbe) {
  if (be_ == nbe) return;
  if (be_ != nullptr) {
    // Ticks up to the rebind instant wrote through the old backend.
    settle();
    be_->detach_dirty_source(this);
  }
  be_ = nbe;
  if (be_ != nullptr) {
    be_->attach_dirty_source(this);
    if (started_ && (!sim_.fast_forward() || fidelity_now())) ensure_live();
  }
}

void SteadyWriter::ensure_live() {
  if (live_active_) return;
  live_active_ = true;
  sim_.spawn(run_live(alive_), "steady_writer:" + domain_.name());
}

void SteadyWriter::on_tracking(bool /*on*/) {
  // The backend settled us before flipping the flag; the tick cursor is
  // already exact at the transition instant. Nothing else to do.
}

void SteadyWriter::on_fidelity_change() {
  // The backend settled us before installing/removing the consumer. A newly
  // required consumer needs live ticks from this instant on; a removed one
  // lets the live loop park itself at its next wake-up.
  if (started_ && fidelity_now()) ensure_live();
}

void SteadyWriter::settle() {
  // While a live coroutine owns the tick stream (ticked mode or fidelity
  // fallback), every tick is applied at its own event; bulk-settling here
  // would double-apply.
  if (!started_ || live_active_ || be_ == nullptr) return;
  // Ticks with t_k <= now and t_k < until are due (the observation-point
  // convention: a tick timer armed a period before an observation at the
  // same timestamp fires first in the ticked execution). Closed form — a
  // dormant stretch may cover millions of ticks.
  const std::int64_t first_ns = tick_time(k_next_).ns();
  const std::int64_t limit_ns =
      std::min(sim_.now().ns(), cfg_.until.ns() - 1);
  if (first_ns > limit_ns) return;
  const std::uint64_t n =
      static_cast<std::uint64_t>((limit_ns - first_ns) / cfg_.period.ns()) + 1;
  k_next_ += n;
  if (!guest_running_) {
    ticks_skipped_ += n;  // frozen guests write nothing; the cursor holds
    return;
  }
  ++bulk_settles_;
  sim_.note_ff_settle();  // fleet telemetry: fast-forward settle count
  ticks_applied_ += n;
  const std::uint64_t blocks = n * cfg_.blocks_per_tick;
  storage::BlockRange runs[2];
  std::size_t n_runs = 0;
  // Run counts are bounded by region_, which fits BlockRange::count.
  if (blocks >= region_) {
    runs[n_runs++] =
        storage::BlockRange{0, static_cast<std::uint32_t>(region_)};
  } else {
    const std::uint64_t tail = region_ - cursor_;
    if (blocks <= tail) {
      runs[n_runs++] =
          storage::BlockRange{cursor_, static_cast<std::uint32_t>(blocks)};
    } else {
      runs[n_runs++] =
          storage::BlockRange{cursor_, static_cast<std::uint32_t>(tail)};
      runs[n_runs++] =
          storage::BlockRange{0, static_cast<std::uint32_t>(blocks - tail)};
    }
  }
  // Every tick counts toward the mark total (rewriting an already-dirty
  // block still counts), exactly like n note_guest_write calls would.
  be_->note_guest_writes_bulk(runs, n_runs, n, blocks);
  cursor_ = (cursor_ + blocks) % region_;
}

sim::Task<void> SteadyWriter::run_live(std::shared_ptr<const bool> alive) {
  for (;;) {
    if (!*alive) co_return;
    const std::uint64_t k = k_next_;
    const sim::TimePoint t_k = tick_time(k);
    if (t_k >= cfg_.until) break;
    if (sim_.now() < t_k) {
      co_await sim_.delay(t_k - sim_.now());
      if (!*alive) co_return;
    }
    if (sim_.fast_forward() && !fidelity_now()) break;  // park: settle mode
    vm::BlkBackend* be = domain_.frontend().backend();
    const storage::BlockRange r = next_range();
    if (be != nullptr && be->fidelity_required()) {
      // Fidelity fallback: the full guest write path (barrier, post-copy
      // interception, real disk time). Identical in ticked and
      // fast-forward runs, so byte-identity is trivial here.
      k_next_ = k + 1;
      co_await domain_.disk_write(r);
      if (!*alive) co_return;
      cursor_ = (cursor_ + cfg_.blocks_per_tick) % region_;
      ++ticks_applied_;
    } else if (be != nullptr && domain_.running()) {
      k_next_ = k + 1;
      be->note_guest_write(r);
      cursor_ = (cursor_ + cfg_.blocks_per_tick) % region_;
      ++ticks_applied_;
    } else {
      k_next_ = k + 1;  // suspended or detached: the tick is skipped
      ++ticks_skipped_;
    }
  }
  live_active_ = false;
}

}  // namespace vmig::workload
