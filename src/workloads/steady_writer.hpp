#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "simcore/simulator.hpp"
#include "simcore/task.hpp"
#include "vm/domain.hpp"

namespace vmig::workload {

/// Configuration for a SteadyWriter dirty-rate model.
struct SteadyWriterConfig {
  /// Blocks written per tick (one contiguous run).
  std::uint64_t blocks_per_tick = 64;
  /// Cyclic write window at the start of the VBD; the cursor wraps inside
  /// it, so the steady-state dirty set is bounded by this many blocks.
  std::uint64_t region_blocks = 8192;
  /// Tick period. The default is a prime microsecond count on purpose: a
  /// round period phase-locks with round-period observers (the
  /// orchestrator's rate-sampling poll), and a tick landing at *exactly* an
  /// observation's timestamp is the one case where the fast-forward settle
  /// convention (ticks at t <= observation apply first) could disagree with
  /// the ticked execution's (time, seq) interleaving. A prime period keeps
  /// the two grids from ever coinciding. See docs/SCALE.md.
  sim::Duration period = sim::Duration::micros(1009);
  /// First tick fires at `start` (plus the per-domain phase, see
  /// `auto_phase`); ticks stop at the first t_k >= until.
  sim::TimePoint start{};
  sim::TimePoint until{};
  /// De-phase this writer's tick grid by its domain id:
  /// start += (id * 61009 ns) mod period. Two writers on a shared resource
  /// (same host disk) that tick at the *same instant* are ordered by event
  /// seq, and seq depends on when each writer's timer was armed — which is
  /// exactly what fast-forward changes (dormant writers arm on fidelity
  /// transitions, ticked writers arm at spawn). Distinct phases make such
  /// cross-VM ties impossible, so the A/B byte-identity contract covers the
  /// whole cluster, not just each VM in isolation. 61009 = 169*361 is
  /// coprime to the default period, so phases stay distinct for any two
  /// domain ids. Disable only for single-writer setups that need exact
  /// absolute phases.
  bool auto_phase = true;
};

/// Blkback-level guest write model with fast-forward support — the
/// cluster-scale replacement for per-VM "write a chunk every millisecond"
/// coroutines (modeled on Virtuoso's FastForwardPerformanceManager: skip
/// simulated time between performance-relevant events).
///
/// The model writes `blocks_per_tick` blocks at a cyclically advancing
/// cursor every `period`, at fixed absolute phases t_k = start + k*period.
/// Three execution regimes, all producing identical dirty state:
///
/// - **Ticked** (`Simulator::fast_forward()` off): a live coroutine applies
///   each tick as an instantaneous `BlkBackend::note_guest_write` event at
///   exactly t_k (skipped while the guest is suspended).
/// - **Fast-forward, dormant**: no events at all. The writer registers as a
///   `vm::DirtySource` on the backend the domain's frontend is bound to;
///   the backend settles it at every observation point (bitmap snapshot,
///   mark-counter read, tracking transition, suspend/resume), folding the
///   elapsed ticks into run-level `set_range` marks in bulk.
/// - **Fidelity fallback**: whenever a per-event consumer is present
///   (post-copy interceptor, flight-recorder redirty hook, write observer,
///   tracked-write overhead), ticks run live through the full
///   `Domain::disk_write` path — real disk I/O, interception, and barrier —
///   in BOTH modes, so byte-identity is preserved trivially and post-copy
///   semantics stay exact.
///
/// The writer follows the domain across migrations via the frontend rebind
/// hook, settling against the old backend before attaching to the new one.
/// A/B byte-identity of migration reports and flight records is pinned by
/// tests/scale_test.cpp.
class SteadyWriter final : public vm::DirtySource {
 public:
  SteadyWriter(sim::Simulator& sim, vm::Domain& domain,
               SteadyWriterConfig cfg);
  ~SteadyWriter() override;
  SteadyWriter(const SteadyWriter&) = delete;
  SteadyWriter& operator=(const SteadyWriter&) = delete;

  /// Install hooks and begin. In ticked mode (or when fidelity is already
  /// required) this spawns the live coroutine; in fast-forward mode the
  /// writer starts dormant.
  void start();

  // ---- vm::DirtySource ----
  void settle() override;
  void on_tracking(bool on) override;
  void on_fidelity_change() override;

  // ---- Introspection (tests / benches) ----
  std::uint64_t ticks_applied() const noexcept { return ticks_applied_; }
  std::uint64_t ticks_skipped() const noexcept { return ticks_skipped_; }
  std::uint64_t bulk_settles() const noexcept { return bulk_settles_; }
  bool live() const noexcept { return live_active_; }

 private:
  sim::Task<void> run_live(std::shared_ptr<const bool> alive);
  void ensure_live();
  bool fidelity_now() const;
  void rebind(vm::BlkBackend* be);
  sim::TimePoint tick_time(std::uint64_t k) const {
    return sim::TimePoint::from_ns(cfg_.start.ns() +
                                   static_cast<std::int64_t>(k) *
                                       cfg_.period.ns());
  }
  /// The run the next applied tick writes. `region_` is rounded down to a
  /// multiple of blocks_per_tick at start(), so runs never straddle the
  /// wrap point.
  storage::BlockRange next_range() const {
    return storage::BlockRange{
        cursor_, static_cast<std::uint32_t>(cfg_.blocks_per_tick)};
  }

  sim::Simulator& sim_;
  vm::Domain& domain_;
  SteadyWriterConfig cfg_;
  std::uint64_t region_ = 0;       ///< effective cyclic window (clamped)
  vm::BlkBackend* be_ = nullptr;   ///< backend the source is attached to
  std::uint64_t k_next_ = 0;       ///< next tick index not yet accounted
  std::uint64_t cursor_ = 0;       ///< next write start within the region
  bool guest_running_ = true;      ///< mirror of domain state for settles
  bool started_ = false;
  bool live_active_ = false;
  std::uint64_t ticks_applied_ = 0;
  std::uint64_t ticks_skipped_ = 0;
  std::uint64_t bulk_settles_ = 0;
  std::shared_ptr<bool> alive_;    ///< outlives `this` inside the coroutine
};

}  // namespace vmig::workload
