#include "workloads/streaming.hpp"

#include <algorithm>

namespace vmig::workload {

using namespace vmig::sim::literals;

sim::Task<void> StreamingWorkload::run() {
  live_tasks_ = 2;
  sim_.spawn(streamer(), "stream-reader");
  sim_.spawn(logger(), "stream-logger");
  while (live_tasks_ > 0) co_await sim_.delay(50_ms);
}

sim::Task<void> StreamingWorkload::streamer() {
  const std::uint64_t blocks = disk_blocks();
  const std::uint32_t block_size = 4096;
  const std::uint64_t video_start = blocks / 4;
  const std::uint64_t video_blocks =
      std::max<std::uint64_t>(p_.video_mib * 1024 * 1024 / block_size, 16);

  // Stream in 16-block (64 KiB) chunks paced to the bitrate, looping the
  // file like a long playlist.
  const std::uint32_t chunk_blocks = 16;
  const double chunk_bytes = static_cast<double>(chunk_blocks) * block_size;
  const auto period =
      sim::Duration::from_seconds(chunk_bytes * 8.0 / p_.bitrate_bps);

  std::uint64_t offset = 0;
  sim::TimePoint deadline = sim_.now() + period;
  while (!stop_requested()) {
    co_await domain_.barrier();
    const std::uint64_t b =
        video_start + (offset % (video_blocks - chunk_blocks + 1));
    co_await read_blocks(storage::BlockRange{b, chunk_blocks});
    offset += chunk_blocks;
    ++chunks_;
    account(chunk_bytes);
    domain_.cpu().touch();
    // Deadline bookkeeping: how late is this chunk vs real-time playback?
    const sim::TimePoint done = sim_.now();
    if (done > deadline + p_.stall_tolerance) {
      ++stalls_;
      worst_late_ = std::max(worst_late_, done - deadline);
    }
    if (done < deadline) co_await sim_.delay(deadline - done);
    deadline += period;
  }
  --live_tasks_;
}

sim::Task<void> StreamingWorkload::logger() {
  const std::uint64_t blocks = disk_blocks();
  const std::uint64_t log_start = blocks * 7 / 8;
  std::uint64_t cursor = 0;
  while (!stop_requested()) {
    co_await sim_.delay(sim::Duration::from_seconds(
        rng_.exponential(p_.log_interval.to_seconds())));
    if (stop_requested()) break;
    co_await domain_.barrier();
    co_await write_blocks(storage::BlockRange{log_start + cursor % 4096, 1});
    ++cursor;
    touch_pages(1);
  }
  --live_tasks_;
}

}  // namespace vmig::workload
