#pragma once

#include "workloads/workload.hpp"

namespace vmig::workload {

/// Low-latency streaming server (the paper's Samba video share): a client
/// plays a video file at under 500 kbps — continuous sequential reads at a
/// gentle rate, plus the occasional log write. Latency-sensitive: the bench
/// watches for stream stalls (missed deadlines) during migration, the
/// paper's "video plays fluently, no observable intermission" claim.
struct StreamingParams {
  /// Stream bitrate (payload delivered to the player).
  double bitrate_bps = 480.0 * 1000.0;
  /// Size of the shared video file.
  std::uint64_t video_mib = 210;
  /// One log append roughly this often.
  sim::Duration log_interval = sim::Duration::millis(1300);
  /// A chunk is "late" if its disk read finishes more than this past its
  /// play deadline (client-side buffer depth).
  sim::Duration stall_tolerance = sim::Duration::millis(2000);
};

class StreamingWorkload final : public Workload {
 public:
  StreamingWorkload(sim::Simulator& sim, vm::Domain& domain, std::uint64_t seed,
                    StreamingParams params = {})
      : Workload{sim, domain, seed}, p_{params} {}

  std::string name() const override { return "streaming"; }

  std::uint64_t chunks_streamed() const noexcept { return chunks_; }
  /// Chunks delivered later than the client buffer could hide.
  std::uint64_t stalls() const noexcept { return stalls_; }
  sim::Duration worst_lateness() const noexcept { return worst_late_; }

 protected:
  sim::Task<void> run() override;

 private:
  sim::Task<void> streamer();
  sim::Task<void> logger();

  StreamingParams p_;
  std::uint64_t chunks_ = 0;
  std::uint64_t stalls_ = 0;
  sim::Duration worst_late_{};
  int live_tasks_ = 0;
};

}  // namespace vmig::workload
