#include "workloads/trace_replay.hpp"

#include <algorithm>

namespace vmig::workload {

sim::Task<void> TraceReplayWorkload::run() {
  const auto& events = src_.events();
  if (events.empty()) co_return;
  const std::uint64_t disk = disk_blocks();

  do {
    const sim::TimePoint pass_start = sim_.now();
    const sim::TimePoint trace_origin = events.front().t;
    for (const auto& e : events) {
      if (stop_requested()) co_return;
      // Honor the recorded schedule (scaled); if we're behind, catch up
      // without sleeping.
      const auto offset =
          (e.t - trace_origin).scaled(p_.time_scale);
      const sim::TimePoint due = pass_start + offset;
      if (due > sim_.now()) co_await sim_.delay(due - sim_.now());

      co_await domain_.barrier();
      // Clamp into this disk in case the trace came from a larger one.
      storage::BlockRange r = e.range;
      if (r.count == 0 || disk == 0) continue;
      if (r.end() > disk) {
        r.start = r.start % disk;
        r.count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(r.count, disk - r.start));
      }
      if (e.op == storage::IoOp::kWrite) {
        co_await write_blocks(r);
        touch_pages(p_.pages_per_write);
      } else {
        co_await read_blocks(r);
      }
      account(r.bytes(4096));
      ++replayed_;
    }
    ++passes_;
  } while (p_.loop && !stop_requested());
}

}  // namespace vmig::workload
