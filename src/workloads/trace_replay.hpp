#pragma once

#include "trace/io_trace.hpp"
#include "workloads/workload.hpp"

namespace vmig::workload {

/// Replays a recorded I/O trace against the domain, preserving the original
/// inter-request timing (optionally time-scaled). This is how users bring
/// real application traces to the simulator: record once (attach_trace on
/// any workload, or convert an external trace to the text format), then
/// replay under different migration configurations.
struct TraceReplayParams {
  /// <1 replays faster than recorded, >1 slower.
  double time_scale = 1.0;
  /// Loop the trace until stopped (single pass when false).
  bool loop = false;
  int pages_per_write = 1;
};

class TraceReplayWorkload final : public Workload {
 public:
  /// The trace must outlive the workload.
  TraceReplayWorkload(sim::Simulator& sim, vm::Domain& domain,
                      const trace::IoTrace& trace, std::uint64_t seed = 1,
                      TraceReplayParams params = {})
      : Workload{sim, domain, seed}, src_{trace}, p_{params} {}

  std::string name() const override { return "trace-replay"; }

  std::uint64_t events_replayed() const noexcept { return replayed_; }
  std::uint64_t passes_completed() const noexcept { return passes_; }

 protected:
  sim::Task<void> run() override;

 private:
  const trace::IoTrace& src_;
  TraceReplayParams p_;
  std::uint64_t replayed_ = 0;
  std::uint64_t passes_ = 0;
};

}  // namespace vmig::workload
