#include "workloads/web_server.hpp"

#include <algorithm>

namespace vmig::workload {

using namespace vmig::sim::literals;

sim::Task<void> WebServerWorkload::run() {
  const std::uint64_t blocks = disk_blocks();
  // Data + log region: middle 40% of the disk; flushes append within it.
  region_start_ = blocks / 4;
  region_blocks_ = std::max<std::uint64_t>(blocks * 2 / 5, 4096);
  append_cursor_ = 0;
  written_span_ = 0;

  for (int i = 0; i < p_.connections; ++i) {
    ++live_tasks_;
    sim_.spawn(session(i), "web-session");
  }
  ++live_tasks_;
  sim_.spawn(flusher(), "web-flusher");
  while (live_tasks_ > 0) co_await sim_.delay(50_ms);
}

sim::Task<void> WebServerWorkload::session(int id) {
  // Desynchronize session start.
  co_await sim_.delay(sim::Duration::from_seconds(
      rng_.uniform_double() * p_.think_mean.to_seconds()));
  (void)id;
  while (!stop_requested()) {
    co_await sim_.delay(
        sim::Duration::from_seconds(rng_.exponential(p_.think_mean.to_seconds())));
    if (stop_requested()) break;
    co_await handle_request();
  }
  --live_tasks_;
}

sim::Task<void> WebServerWorkload::handle_request() {
  const sim::TimePoint arrival = sim_.now();
  co_await domain_.barrier();

  // Most requests are served from the page cache; a few touch the disk.
  if (rng_.bernoulli(p_.disk_read_probability)) {
    const std::uint64_t b = region_start_ + rng_.zipf(region_blocks_ - 4, 0.7);
    co_await read_blocks(storage::BlockRange{b, 4});
  }

  // Writes dirty the page cache; the flusher pushes them to disk in bulk.
  if (rng_.bernoulli(p_.write_probability)) {
    pending_dirty_blocks_ += static_cast<std::uint64_t>(
        rng_.uniform_i64(p_.write_burst_min, p_.write_burst_max));
  }

  touch_pages(p_.pages_per_request);
  domain_.cpu().touch();
  account(rng_.exponential(p_.response_bytes_mean));
  latency_.add(sim_.now() - arrival);
  ++requests_;
}

sim::Task<void> WebServerWorkload::flusher() {
  while (!stop_requested()) {
    co_await sim_.delay(p_.flush_interval);
    if (stop_requested()) break;
    co_await domain_.barrier();
    std::uint64_t todo = pending_dirty_blocks_;
    pending_dirty_blocks_ = 0;

    // Flush each accumulated burst as its own write: appends land
    // back-to-back at the log cursor (no seeks between them), and a
    // rewrite_fraction of bursts rewrite blocks from the hot tail of the
    // already-written pool — which is how the paper's 25.2% SPECweb
    // rewrite-op ratio arises.
    while (todo > 0 && !stop_requested()) {
      const auto burst = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          todo, static_cast<std::uint64_t>(
                    rng_.uniform_i64(p_.write_burst_min, p_.write_burst_max))));
      if (written_span_ > burst && rng_.bernoulli(p_.rewrite_fraction)) {
        const std::uint64_t back =
            burst + rng_.zipf(written_span_ - burst + 1, 0.6);
        const std::uint64_t start =
            region_start_ +
            (append_cursor_ + region_blocks_ - back) % region_blocks_;
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(burst,
                                    region_start_ + region_blocks_ - start));
        co_await write_blocks(storage::BlockRange{start, n});
      } else {
        const std::uint64_t start = region_start_ + append_cursor_;
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(burst, region_blocks_ - append_cursor_));
        co_await write_blocks(storage::BlockRange{start, n});
        append_cursor_ = (append_cursor_ + n) % region_blocks_;
        written_span_ = std::min(written_span_ + n,
                                 static_cast<std::uint64_t>(region_blocks_));
      }
      todo -= burst;
    }
  }
  --live_tasks_;
}

}  // namespace vmig::workload
