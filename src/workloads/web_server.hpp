#pragma once

#include "workloads/workload.hpp"

namespace vmig::workload {

/// Dynamic web server (SPECweb2005 Banking-like): many concurrent sessions,
/// mostly cache-served reads, and bursty small writes (session state,
/// transaction logs) with significant rewrite locality — the paper measured
/// 25.2% of SPECweb Banking writes rewriting previously-written blocks.
///
/// Dirty data accumulates in the page cache and is flushed in periodic
/// elevator-sorted bursts (pdflush-style), so the disk sees a few large
/// sequential writes rather than a stream of random ones. That keeps the
/// request path CPU/memory-bound, which is why the client-visible
/// throughput barely reacts to a background migration (paper Fig. 5).
struct WebServerParams {
  int connections = 100;
  /// Mean think time between a session's requests.
  sim::Duration think_mean = sim::Duration::millis(1200);
  /// Mean response payload (what throughput accounting sees).
  double response_bytes_mean = 900.0 * 1024.0;
  /// Probability a request misses the page cache and reads the disk.
  double disk_read_probability = 0.02;
  /// Probability a request dirties log/state blocks.
  double write_probability = 0.10;
  /// Blocks dirtied by a writing request.
  std::uint32_t write_burst_min = 1;
  std::uint32_t write_burst_max = 2;
  /// Fraction of flushed blocks that rewrite previously-written blocks —
  /// calibrates the rewrite ratio toward the paper's 25.2%.
  double rewrite_fraction = 0.25;
  /// Page-cache flush period (pdflush).
  sim::Duration flush_interval = sim::Duration::seconds(5);
  /// Pages dirtied per request (session state, heap churn).
  int pages_per_request = 4;
};

class WebServerWorkload final : public Workload {
 public:
  WebServerWorkload(sim::Simulator& sim, vm::Domain& domain, std::uint64_t seed,
                    WebServerParams params = {})
      : Workload{sim, domain, seed}, p_{params} {}

  std::string name() const override { return "webserver"; }

  std::uint64_t requests_served() const noexcept { return requests_; }

  /// End-to-end request latency (includes disk waits and migration
  /// freezes); the tail shows what clients feel during downtime.
  const sim::LatencyHistogram& request_latency() const noexcept {
    return latency_;
  }

 protected:
  sim::Task<void> run() override;

 private:
  sim::Task<void> session(int id);
  sim::Task<void> handle_request();
  sim::Task<void> flusher();

  WebServerParams p_;
  sim::LatencyHistogram latency_;
  std::uint64_t requests_ = 0;
  std::uint64_t pending_dirty_blocks_ = 0;  ///< page-cache dirt awaiting flush
  std::uint64_t append_cursor_ = 0;
  std::uint64_t written_span_ = 0;  ///< extent of the already-written pool
  std::uint64_t region_start_ = 0;
  std::uint64_t region_blocks_ = 0;
  int live_tasks_ = 0;
};

}  // namespace vmig::workload
