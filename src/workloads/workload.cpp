#include "workloads/workload.hpp"

namespace vmig::workload {

using namespace vmig::sim::literals;

Workload::Workload(sim::Simulator& sim, vm::Domain& domain, std::uint64_t seed)
    : sim_{sim}, domain_{domain}, rng_{seed}, meter_{1_s, "B/s"} {}

void Workload::start() { handle_ = sim_.spawn(run(), name()); }

sim::Task<void> Workload::read_blocks(storage::BlockRange r) {
  if (trace_ != nullptr) trace_->record(sim_.now(), storage::IoOp::kRead, r);
  co_await domain_.disk_read(r);
}

sim::Task<void> Workload::write_blocks(storage::BlockRange r) {
  if (trace_ != nullptr) trace_->record(sim_.now(), storage::IoOp::kWrite, r);
  co_await domain_.disk_write(r);
}

void Workload::touch_pages(int n) {
  const std::uint64_t pages = domain_.memory().page_count();
  for (int i = 0; i < n; ++i) {
    domain_.touch_memory(rng_.uniform_u64(pages));
  }
}

std::uint64_t Workload::disk_blocks() const {
  const auto* be = domain_.frontend().backend();
  return be != nullptr ? be->disk().geometry().block_count : 0;
}

}  // namespace vmig::workload
