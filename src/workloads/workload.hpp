#pragma once

#include <string>

#include "simcore/rng.hpp"
#include "simcore/simulator.hpp"
#include "simcore/stats.hpp"
#include "simcore/task.hpp"
#include "trace/io_trace.hpp"
#include "vm/domain.hpp"

namespace vmig::workload {

/// Base class for guest workload drivers.
///
/// A workload is a coroutine that exercises the domain's disk and memory the
/// way a real application would, and reports *application-level* throughput
/// (the client-visible metric from the paper's Figs. 5 and 6). Workloads are
/// oblivious to migration: the domain's barrier stalls them during the
/// freeze phase, post-copy interception delays their reads, and disk
/// contention slows them — exactly the effects under evaluation.
class Workload {
 public:
  Workload(sim::Simulator& sim, vm::Domain& domain, std::uint64_t seed);
  virtual ~Workload() = default;
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  virtual std::string name() const = 0;

  /// Spawn the driver coroutine.
  void start();
  /// Ask the driver to wind down at its next checkpoint.
  void request_stop() { stop_ = true; }
  bool stop_requested() const { return stop_; }
  bool finished() const { return handle_.valid() && handle_.done(); }
  sim::SpawnHandle handle() const { return handle_; }

  /// Client-visible throughput (bytes/second, windowed).
  const sim::RateMeter& throughput() const noexcept { return meter_; }
  /// Close the current throughput window (end of experiment).
  void finish_metrics() { meter_.finish(sim_.now()); }

  /// Record every disk I/O this workload issues (locality analysis).
  void attach_trace(trace::IoTrace* t) { trace_ = t; }

 protected:
  /// The driver body; loops until stop_requested().
  virtual sim::Task<void> run() = 0;

  // ---- Helpers for subclasses ----

  /// Guest disk read/write via the domain (traced when a trace is attached).
  sim::Task<void> read_blocks(storage::BlockRange r);
  sim::Task<void> write_blocks(storage::BlockRange r);

  /// Account application payload serviced to clients.
  void account(double bytes) { meter_.add(sim_.now(), bytes); }

  /// Dirty `n` random guest pages (application state churn).
  void touch_pages(int n);

  std::uint64_t disk_blocks() const;

  sim::Simulator& sim_;
  vm::Domain& domain_;
  sim::Rng rng_;

 private:
  sim::RateMeter meter_;
  trace::IoTrace* trace_ = nullptr;
  bool stop_ = false;
  sim::SpawnHandle handle_;
};

}  // namespace vmig::workload
