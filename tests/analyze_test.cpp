// vmig_analyze tests, driving the tool in-process through vmig_analyze_core
// (tools/analyze/analyze.hpp):
//   - a clean instrumented run reconciles end to end (exit 0, no [FAIL]);
//   - the report is deterministic across invocations;
//   - a tampered record is caught (exit 1, [FAIL], failed verdict);
//   - per-job SLO accounting flags missed deadlines;
//   - unreadable / malformed input exits 2 without a verdict.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "analyze.hpp"
#include "core/report_io.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"

namespace vmig {
namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  ASSERT_TRUE(f.is_open()) << path;
  f << content;
}

struct AnalyzeResult {
  int status = -1;
  std::string out;
  std::string err;
};

AnalyzeResult analyze(const std::string& record_path,
                      const std::string& metrics_path = {}) {
  analyze::Options opt;
  opt.record_path = record_path;
  opt.metrics_path = metrics_path;
  std::ostringstream out;
  std::ostringstream err;
  AnalyzeResult r;
  r.status = analyze::run(opt, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

struct RecordedRun {
  std::string jsonl;
  std::string metrics_csv;
};

/// One instrumented migration with a forced post-copy residue (so the stall
/// histogram is non-empty and the metrics cross-check has real data), with
/// both the flight recorder and the registry attached — the files
/// `vmig_sim --flight-record --metrics` would produce.
RecordedRun make_recorded() {
  sim::Simulator sim;
  scenario::TestbedConfig bed;
  bed.vbd_mib = 128;
  bed.guest_mem_mib = 64;
  scenario::Testbed tb{sim, bed};
  tb.prefill_disk();

  auto cfg = tb.paper_migration_config();
  cfg.disk_max_iterations = 1;
  cfg.disk_residual_target_blocks = 0;
  cfg.rate_limit_mibps = 8.0;
  cfg.rate_limit_postcopy = true;

  obs::Registry registry{sim, sim::Duration::from_seconds(0.5)};
  tb.attach_obs(&registry);
  registry.start_sampling();
  cfg.obs_registry = &registry;

  obs::FlightRecorder rec;
  cfg.obs_recorder = &rec;

  workload::DiabolicalWorkload wl{sim, tb.vm(), 42};
  const core::MigrationReport report = tb.run_tpm(
      &wl, sim::Duration::seconds(2), sim::Duration::seconds(2), cfg);
  EXPECT_TRUE(report.disk_consistent);
  EXPECT_GT(report.postcopy_reads_blocked, 0u);

  RecordedRun r;
  std::ostringstream out;
  obs::write_flight_record(out, rec);
  r.jsonl = out.str();
  r.metrics_csv = core::to_csv(registry);
  return r;
}

const RecordedRun& recorded() {
  static const RecordedRun r = make_recorded();
  return r;
}

TEST(AnalyzeTest, CleanRunReconcilesAndPassesWithMetrics) {
  write_file("analyze_test_flight.jsonl", recorded().jsonl);
  write_file("analyze_test_metrics.csv", recorded().metrics_csv);
  const AnalyzeResult r =
      analyze("analyze_test_flight.jsonl", "analyze_test_metrics.csv");
  EXPECT_EQ(r.status, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("[OK]"), std::string::npos);
  EXPECT_EQ(r.out.find("[FAIL]"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("downtime attribution"), std::string::npos);
  EXPECT_NE(r.out.find("metrics cross-check"), std::string::npos);
  EXPECT_NE(r.out.find("stall p99 == postcopy.read_stall_ns.p99"),
            std::string::npos);
  EXPECT_NE(r.out.find("verdict: all reconciliation checks passed"),
            std::string::npos);
}

TEST(AnalyzeTest, ReportIsDeterministicAcrossInvocations) {
  write_file("analyze_test_flight.jsonl", recorded().jsonl);
  write_file("analyze_test_metrics.csv", recorded().metrics_csv);
  const AnalyzeResult a =
      analyze("analyze_test_flight.jsonl", "analyze_test_metrics.csv");
  const AnalyzeResult b =
      analyze("analyze_test_flight.jsonl", "analyze_test_metrics.csv");
  EXPECT_EQ(a.status, 0);
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.err, b.err);
}

TEST(AnalyzeTest, TamperedRecordFailsReconciliation) {
  // Corrupt the engine's closing report: prepend a digit to the first
  // bytes_disk_first_pass value (inside the summary's "report" object), so
  // the recorder aggregate no longer matches it.
  std::string tampered = recorded().jsonl;
  const std::string key = "\"bytes_disk_first_pass\":";
  const std::size_t pos = tampered.find(key);
  ASSERT_NE(pos, std::string::npos);
  tampered.insert(pos + key.size(), "9");
  write_file("analyze_test_tampered.jsonl", tampered);

  const AnalyzeResult r = analyze("analyze_test_tampered.jsonl");
  EXPECT_EQ(r.status, 1);
  EXPECT_NE(r.out.find("[FAIL]"), std::string::npos);
  EXPECT_NE(r.out.find("verdict: RECONCILIATION FAILED"), std::string::npos);
}

TEST(AnalyzeTest, JobSloAccountingFlagsMissedDeadlines) {
  // Hand-build a record with three terminal jobs: deadline met, deadline
  // missed, and no deadline at all.
  obs::FlightRecorder rec;
  const obs::FlightMigId m =
      rec.begin_migration("vm0", "h0", "h1", sim::TimePoint{});
  rec.end_migration(m, sim::TimePoint{} + sim::Duration::millis(5),
                    "completed", obs::MigrationClose{});

  obs::JobRecord met;
  met.job = 0;
  met.domain = "vm0";
  met.from = "h0";
  met.to = "h1";
  met.status = "completed";
  met.finished_ns = 5'000'000;
  met.deadline_ns = 10'000'000;
  met.attempts = 1;
  met.downtime_ns = 100'000;
  met.total_ns = 5'000'000;
  rec.job_record(met);

  obs::JobRecord missed = met;
  missed.job = 1;
  missed.domain = "vm1";
  missed.finished_ns = 20'000'000;
  missed.total_ns = 20'000'000;
  missed.attempts = 3;
  rec.job_record(missed);

  obs::JobRecord no_deadline = met;
  no_deadline.job = 2;
  no_deadline.domain = "vm2";
  no_deadline.deadline_ns = 0;
  rec.job_record(no_deadline);

  std::ostringstream out;
  obs::write_flight_record(out, rec);
  write_file("analyze_test_jobs.jsonl", out.str());

  const AnalyzeResult r = analyze("analyze_test_jobs.jsonl");
  EXPECT_EQ(r.status, 0) << r.out << r.err;  // SLO misses report, not fail
  EXPECT_NE(r.out.find("MISS"), std::string::npos);
  EXPECT_NE(r.out.find("slo: 1 met, 1 missed, 1 without deadline"),
            std::string::npos)
      << r.out;
}

TEST(AnalyzeTest, UnreadableOrMalformedInputExitsTwo) {
  const AnalyzeResult missing = analyze("/no/such/flight.jsonl");
  EXPECT_EQ(missing.status, 2);
  EXPECT_NE(missing.err.find("cannot open"), std::string::npos);
  EXPECT_EQ(missing.out.find("verdict"), std::string::npos);

  write_file("analyze_test_garbage.jsonl", "this is not a flight record\n");
  const AnalyzeResult garbage = analyze("analyze_test_garbage.jsonl");
  EXPECT_EQ(garbage.status, 2);
  EXPECT_EQ(garbage.out.find("verdict"), std::string::npos);
}

}  // namespace
}  // namespace vmig
