#include <gtest/gtest.h>

#include <memory>

#include "baselines/delta_forward.hpp"
#include "baselines/freeze_and_copy.hpp"
#include "baselines/on_demand.hpp"
#include "baselines/shared_storage.hpp"
#include "core/migration_manager.hpp"
#include "simcore/rng.hpp"

namespace vmig::baseline {
namespace {

using hv::Host;
using sim::Duration;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using namespace vmig::sim::literals;

struct Bed {
  explicit Bed(Simulator& sim, std::uint64_t disk_mib = 64,
               double link_mibps = 1000.0)
      : a{sim, "A", Geometry::from_mib(disk_mib), disk()},
        b{sim, "B", Geometry::from_mib(disk_mib), disk()},
        vm{sim, 1, "guest", 4} {
    net::LinkParams lan;
    lan.bandwidth_mibps = link_mibps;
    lan.latency = 50_us;
    Host::interconnect(a, b, lan);
    a.attach_domain(vm);
    // Populate the disk so "content moved" is observable.
    for (storage::BlockId blk = 0; blk < a.disk().geometry().block_count; ++blk) {
      a.disk().poke_token(blk, 0x9000000000000000ull + blk);
    }
  }
  static storage::DiskModelParams disk() {
    storage::DiskModelParams p;
    p.seq_read_mbps = 800.0;
    p.seq_write_mbps = 700.0;
    p.seek = 100_us;
    p.request_overhead = 5_us;
    return p;
  }
  Host a;
  Host b;
  vm::Domain vm;
};

core::MigrationConfig cfg() { return core::MigrationConfig{}; }

TEST(FreezeAndCopyTest, ConsistentButDowntimeIsTotalTime) {
  Simulator sim;
  Bed bed{sim};
  BaselineReport rep;
  sim.spawn([](Simulator& s, Bed& bed, BaselineReport& out) -> Task<void> {
    FreezeAndCopyMigration fc{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await fc.run();
  }(sim, bed, rep));
  sim.run();
  EXPECT_TRUE(rep.base.disk_consistent);
  EXPECT_TRUE(rep.base.memory_consistent);
  EXPECT_TRUE(bed.b.hosts_domain(bed.vm));
  // The defining pathology: downtime ~ total migration time.
  EXPECT_GT(rep.base.downtime(), rep.base.total_time().scaled(0.95));
  EXPECT_GT(rep.base.downtime(), 50_ms);  // far beyond live-migration range
  EXPECT_EQ(rep.base.blocks_first_pass, bed.a.disk().geometry().block_count);
}

TEST(FreezeAndCopyTest, SuspendedThroughout) {
  Simulator sim;
  Bed bed{sim};
  BaselineReport rep;
  sim.spawn([](Simulator& s, Bed& bed, BaselineReport& out) -> Task<void> {
    FreezeAndCopyMigration fc{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await fc.run();
  }(sim, bed, rep));
  sim.run();
  EXPECT_EQ(bed.vm.total_suspended_time(), rep.base.downtime());
  EXPECT_TRUE(bed.vm.running());
}

TEST(SharedStorageTest, ShortDowntimeNoDiskTransfer) {
  Simulator sim;
  Bed bed{sim};
  BaselineReport rep;
  sim.spawn([](Simulator& s, Bed& bed, BaselineReport& out) -> Task<void> {
    SharedStorageMigration ss{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await ss.run();
  }(sim, bed, rep));
  sim.run();
  EXPECT_TRUE(rep.base.memory_consistent);
  EXPECT_LT(rep.base.downtime(), 200_ms);
  EXPECT_EQ(rep.base.bytes_disk_first_pass, 0u);
  EXPECT_TRUE(bed.b.hosts_domain(bed.vm));
  // Disk I/O still lands on the shared (source-side) storage.
  EXPECT_EQ(bed.vm.frontend().backend(), &bed.a.backend());
}

TEST(SharedStorageTest, GuestWritesLandOnSharedDiskAfterMove) {
  Simulator sim;
  Bed bed{sim};
  sim.spawn([](Simulator& s, Bed& bed) -> Task<void> {
    SharedStorageMigration ss{s, cfg(), bed.vm, bed.a, bed.b};
    (void)co_await ss.run();
    co_await bed.vm.disk_write(BlockRange{5, 1});
  }(sim, bed));
  sim.run();
  EXPECT_NE(bed.a.disk().token(5), 0x9000000000000005ull);  // rewritten
}

TEST(OnDemandTest, FetchesOnlyWhatIsTouched) {
  Simulator sim;
  Bed bed{sim};
  BaselineReport rep;
  // After resume at the destination, the guest reads a handful of blocks.
  sim.spawn([](Simulator& s, Bed& bed) -> Task<void> {
    while (!bed.b.hosts_domain(bed.vm)) co_await s.delay(1_ms);
    for (int i = 0; i < 20; ++i) {
      co_await bed.vm.disk_read(BlockRange{static_cast<storage::BlockId>(i * 100), 2});
    }
  }(sim, bed));
  sim.spawn([](Simulator& s, Bed& bed, BaselineReport& out) -> Task<void> {
    OnDemandMigration od{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await od.run(2_s);
  }(sim, bed, rep));
  sim.run();
  EXPECT_TRUE(rep.base.memory_consistent);
  EXPECT_TRUE(rep.base.disk_consistent);  // after forced teardown sync
  EXPECT_GE(rep.remote_fetches, 20u);
  // Residual dependency: nearly the whole disk still lives on the source.
  EXPECT_TRUE(rep.residual_dependency);
  EXPECT_GT(rep.remote_blocks_left, bed.a.disk().geometry().block_count / 2);
  // But downtime was short (memory-only freeze).
  EXPECT_LT(rep.base.downtime(), 200_ms);
}

TEST(OnDemandTest, WritesDoNotFetch) {
  Simulator sim;
  Bed bed{sim};
  BaselineReport rep;
  sim.spawn([](Simulator& s, Bed& bed) -> Task<void> {
    while (!bed.b.hosts_domain(bed.vm)) co_await s.delay(1_ms);
    for (int i = 0; i < 50; ++i) {
      co_await bed.vm.disk_write(BlockRange{static_cast<storage::BlockId>(i * 50), 4});
    }
  }(sim, bed));
  sim.spawn([](Simulator& s, Bed& bed, BaselineReport& out) -> Task<void> {
    OnDemandMigration od{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await od.run(2_s);
  }(sim, bed, rep));
  sim.run();
  EXPECT_TRUE(rep.base.disk_consistent);
  EXPECT_EQ(rep.remote_fetches, 0u);  // whole-block overwrites need no fetch
}

/// Writer with heavy rewrite locality, to expose delta redundancy.
Task<void> rewriting_writer(Simulator& sim, vm::Domain& vm, bool& stop) {
  sim::Rng rng{99};
  while (!stop) {
    // 80% of writes hit the same hot 64-block region.
    const storage::BlockId b = rng.bernoulli(0.8)
                                   ? rng.uniform_u64(64)
                                   : 64 + rng.uniform_u64(4000);
    co_await vm.disk_write(BlockRange{b, 2});
    co_await sim.delay(150_us);
  }
}

TEST(DeltaForwardTest, ConsistentWithForwardedWrites) {
  Simulator sim;
  Bed bed{sim};
  bool stop = false;
  sim.spawn(rewriting_writer(sim, bed.vm, stop));
  BaselineReport rep;
  sim.spawn([](Simulator& s, Bed& bed, BaselineReport& out, bool& stop)
                -> Task<void> {
    DeltaForwardMigration df{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await df.run();
    stop = true;
  }(sim, bed, rep, stop));
  sim.run();
  EXPECT_TRUE(rep.base.disk_consistent);
  EXPECT_TRUE(rep.base.memory_consistent);
  EXPECT_TRUE(bed.b.hosts_domain(bed.vm));
  EXPECT_GT(rep.deltas_forwarded, 0u);
  // The paper's criticism: rewrites make a sizable fraction of delta bytes
  // redundant.
  EXPECT_GT(rep.redundant_delta_bytes, rep.delta_bytes / 10);
  EXPECT_LT(rep.base.downtime(), 500_ms);
}

TEST(DeltaForwardTest, ReplayBlocksIoAfterResume) {
  Simulator sim;
  Bed bed{sim, /*disk_mib=*/128};
  bool stop = false;
  // Very fast writer => long delta queue at freeze => measurable block time.
  sim.spawn([](Simulator& s, vm::Domain& vm, bool& stop) -> Task<void> {
    sim::Rng rng{5};
    while (!stop) {
      co_await vm.disk_write(BlockRange{rng.uniform_u64(20000), 8});
      co_await s.delay(50_us);
    }
  }(sim, bed.vm, stop));
  BaselineReport rep;
  sim.spawn([](Simulator& s, Bed& bed, BaselineReport& out, bool& stop)
                -> Task<void> {
    DeltaForwardMigration df{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await df.run();
    stop = true;
  }(sim, bed, rep, stop));
  sim.run();
  EXPECT_TRUE(rep.base.disk_consistent);
  EXPECT_GT(rep.io_block_time, Duration::zero());
}

TEST(DeltaForwardTest, ThrottlingEngagesForFastWriters) {
  Simulator sim;
  // Slow WAN-ish link: the disk can dirty data faster than the network can
  // forward it — exactly when Bradford et al. need write throttling.
  Bed bed{sim, /*disk_mib=*/128, /*link_mibps=*/50.0};
  bool stop = false;
  sim.spawn([](Simulator& s, vm::Domain& vm, bool& stop) -> Task<void> {
    sim::Rng rng{6};
    while (!stop) {
      co_await vm.disk_write(BlockRange{rng.uniform_u64(20000), 16});
      co_await s.delay(10_us);
    }
  }(sim, bed.vm, stop));
  DeltaForwardParams params;
  params.throttle_queue_depth = 64;  // tiny queue: throttle early
  BaselineReport rep;
  sim.spawn([](Simulator& s, Bed& bed, DeltaForwardParams params,
               BaselineReport& out, bool& stop) -> Task<void> {
    DeltaForwardMigration df{s, cfg(), bed.vm, bed.a, bed.b, params};
    out = co_await df.run();
    stop = true;
  }(sim, bed, params, rep, stop));
  sim.run();
  EXPECT_TRUE(rep.base.disk_consistent);
  EXPECT_GT(rep.throttled_writes, 0u);
}

TEST(ComparisonTest, TpmBeatsBaselinesOnTheirWeaknesses) {
  // One scenario, four schemes: TPM must combine short downtime (vs
  // freeze-and-copy), whole-disk movement (vs shared-storage), finite
  // source dependency (vs on-demand) and no replay block (vs delta-forward).
  auto run_writer = [](Simulator& sim, Bed& bed, bool& stop) {
    sim.spawn(rewriting_writer(sim, bed.vm, stop));
  };

  Simulator s1;
  Bed b1{s1};
  bool stop1 = false;
  run_writer(s1, b1, stop1);
  core::MigrationReport tpm;
  s1.spawn([](Simulator& s, Bed& bed, core::MigrationReport& out,
              bool& stop) -> Task<void> {
    core::MigrationManager mgr{s};
    out = (co_await mgr.migrate({.domain = &bed.vm, .from = &bed.a, .to = &bed.b, .config = cfg()})).report;
    stop = true;
  }(s1, b1, tpm, stop1));
  s1.run();

  Simulator s2;
  Bed b2{s2};
  BaselineReport fc;
  s2.spawn([](Simulator& s, Bed& bed, BaselineReport& out) -> Task<void> {
    FreezeAndCopyMigration m{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await m.run();
  }(s2, b2, fc));
  s2.run();

  Simulator s3;
  Bed b3{s3, /*disk_mib=*/64, /*link_mibps=*/120.0};
  bool stop3 = false;
  run_writer(s3, b3, stop3);
  BaselineReport df;
  s3.spawn([](Simulator& s, Bed& bed, BaselineReport& out, bool& stop)
               -> Task<void> {
    DeltaForwardMigration m{s, cfg(), bed.vm, bed.a, bed.b};
    out = co_await m.run();
    stop = true;
  }(s3, b3, df, stop3));
  s3.run();

  EXPECT_TRUE(tpm.disk_consistent);
  EXPECT_TRUE(df.base.disk_consistent);
  // Downtime: TPM orders of magnitude below freeze-and-copy.
  EXPECT_LT(tpm.downtime(), fc.base.downtime() / 5);
  // Data: TPM's bitmap dedups rewrites, so it moves less than delta-forward
  // under a rewriting workload (which resends every rewrite as a delta).
  EXPECT_LT(tpm.total_bytes(), df.base.total_bytes());
  EXPECT_GT(df.redundant_delta_bytes, 0u);
  // (The post-resume I/O replay block is covered by
  // DeltaForwardTest.ReplayBlocksIoAfterResume.)
}

}  // namespace
}  // namespace vmig::baseline
