// Cluster orchestrator tests: admission caps, scheduling policies, retry
// with backoff after injected link disruption, deadline expiry, evacuation
// planning, and byte-identical determinism of full evacuation runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/orchestrator.hpp"
#include "core/report_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "scenario/cluster_testbed.hpp"

namespace vmig::cluster {
namespace {

using namespace vmig::sim::literals;

scenario::ClusterTestbedConfig small_cluster(int hosts) {
  scenario::ClusterTestbedConfig cfg;
  cfg.hosts = hosts;
  cfg.vbd_mib = 16;
  cfg.guest_mem_mib = 4;
  // Fast hardware keeps these tests in the millisecond range.
  cfg.disk.seq_read_mbps = 800.0;
  cfg.disk.seq_write_mbps = 700.0;
  cfg.disk.seek = 100_us;
  cfg.disk.request_overhead = 5_us;
  cfg.lan.bandwidth_mibps = 1000.0;
  cfg.lan.latency = 50_us;
  return cfg;
}

core::MigrationConfig quick_config() {
  return core::MigrationConfig::build()
      .bitmap(core::BitmapKind::kFlat)
      .disk_iterations(4, 64)
      .done();
}

TEST(AdmissionControlTest, CapsEachDimension) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(3)};
  AdmissionControl ac{{.per_source = 2, .per_dest = 1, .per_link = 1,
                       .total = 3}};
  EXPECT_TRUE(ac.admissible(tb.host(0), tb.host(1)));
  ac.acquire(tb.host(0), tb.host(1));
  // Same link saturated; same dest saturated even over another link.
  EXPECT_FALSE(ac.admissible(tb.host(0), tb.host(1)));
  EXPECT_FALSE(ac.admissible(tb.host(2), tb.host(1)));
  // Same source to another dest still fits (per_source = 2).
  EXPECT_TRUE(ac.admissible(tb.host(0), tb.host(2)));
  ac.acquire(tb.host(0), tb.host(2));
  EXPECT_FALSE(ac.admissible(tb.host(0), tb.host(2)));  // per_source hit
  EXPECT_EQ(ac.inflight(), 2);
  ac.release(tb.host(0), tb.host(1));
  EXPECT_TRUE(ac.admissible(tb.host(2), tb.host(1)));
}

TEST(SchedulerPolicyTest, FifoHonorsPriorityThenSubmission) {
  MigrationJob j0, j1, j2;
  j0.id = 0;
  j1.id = 1;
  j2.id = 2;
  j2.request.priority = 5;
  FifoPolicy fifo;
  std::vector<JobView> views{{&j0, 10, 0, 0}, {&j1, 1, 0, 0}, {&j2, 99, 0, 0}};
  EXPECT_EQ(fifo.pick(views), 2u);  // highest priority
  views.pop_back();
  EXPECT_EQ(fifo.pick(views), 0u);  // then submission order

  SmallestDirtyFirstPolicy sdf;
  std::vector<JobView> equal_prio{{&j0, 10, 0, 0}, {&j1, 1, 0, 0}};
  EXPECT_EQ(sdf.pick(equal_prio), 1u);  // least data to move first
}

TEST(SchedulerPolicyTest, CycleAwareDefersHotJobsAndForcesAfterBudget) {
  MigrationJob hot, cool;
  hot.id = 0;
  cool.id = 1;
  hot.request.config.disk_dirty_rate_abort_ratio = 0.9;
  cool.request.config.disk_dirty_rate_abort_ratio = 0.9;
  WorkloadCycleAwarePolicy pol{3};

  // Hot: dirty rate above 0.9x link rate. Cool: well below.
  const JobView hot_v{&hot, 100, 950.0, 1000.0};
  const JobView cool_v{&cool, 100, 10.0, 1000.0};
  EXPECT_TRUE(WorkloadCycleAwarePolicy::too_hot(hot_v));
  EXPECT_FALSE(WorkloadCycleAwarePolicy::too_hot(cool_v));

  EXPECT_EQ(pol.pick({hot_v, cool_v}), 1u);  // cool wins despite lower rank
  EXPECT_EQ(pol.pick({hot_v}), SchedulerPolicy::kDefer);
  hot.deferrals = 3;  // budget exhausted: forced through
  EXPECT_EQ(pol.pick({hot_v}), 0u);
}

TEST(EvacuationPlannerTest, BalancesByPlannedLoad) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(3)};
  for (int i = 0; i < 8; ++i) {
    tb.add_vm("vm" + std::to_string(i), 0);
  }
  const auto plan =
      EvacuationPlanner::plan(tb.host(0), {&tb.host(1), &tb.host(2)});
  ASSERT_EQ(plan.size(), 8u);
  int to1 = 0;
  int to2 = 0;
  for (const auto& a : plan) {
    (a.to == &tb.host(1) ? to1 : to2)++;
  }
  EXPECT_EQ(to1, 4);
  EXPECT_EQ(to2, 4);

  // A destination that starts loaded receives fewer evacuees.
  sim::Simulator sim2;
  scenario::ClusterTestbed tb2{sim2, small_cluster(3)};
  for (int i = 0; i < 6; ++i) tb2.add_vm("vm" + std::to_string(i), 0);
  tb2.add_vm("resident0", 1);
  tb2.add_vm("resident1", 1);
  const auto plan2 =
      EvacuationPlanner::plan(tb2.host(0), {&tb2.host(1), &tb2.host(2)});
  int to1b = 0;
  for (const auto& a : plan2) to1b += a.to == &tb2.host(1) ? 1 : 0;
  EXPECT_EQ(to1b, 2);  // host1 ends with 4, host2 with 4
}

TEST(OrchestratorTest, RunsQueueToCompletionUnderCaps) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(3)};
  std::vector<vm::Domain*> vms;
  for (int i = 0; i < 4; ++i) vms.push_back(&tb.add_vm("vm" + std::to_string(i), 0));
  tb.prefill_disks();

  Orchestrator orch{sim, tb.manager(),
                    {.caps = {.per_source = 1, .per_dest = 1, .per_link = 1}}};
  for (int i = 0; i < 4; ++i) {
    orch.submit({.domain = vms[i], .from = &tb.host(0),
                 .to = &tb.host(1 + i % 2), .config = quick_config()});
  }
  orch.drain();

  EXPECT_TRUE(orch.all_terminal());
  EXPECT_EQ(orch.jobs_completed(), 4u);
  EXPECT_EQ(orch.jobs_failed(), 0u);
  EXPECT_EQ(orch.retries(), 0u);
  // per_source = 1 serializes everything leaving host0.
  EXPECT_EQ(orch.peak_running(), 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(orch.job(i).outcome.ok()) << "job " << i;
    EXPECT_EQ(orch.job(i).attempts, 1);
  }
  // Every guest left host0.
  EXPECT_TRUE(tb.host(0).domains().empty());
}

TEST(OrchestratorTest, PerSourceCapTwoRunsPairsConcurrently) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(3)};
  std::vector<vm::Domain*> vms;
  for (int i = 0; i < 4; ++i) vms.push_back(&tb.add_vm("vm" + std::to_string(i), 0));
  tb.prefill_disks();

  Orchestrator orch{sim, tb.manager(),
                    {.caps = {.per_source = 2, .per_dest = 1, .per_link = 1}}};
  for (int i = 0; i < 4; ++i) {
    orch.submit({.domain = vms[i], .from = &tb.host(0),
                 .to = &tb.host(1 + i % 2), .config = quick_config()});
  }
  orch.drain();
  EXPECT_EQ(orch.jobs_completed(), 4u);
  EXPECT_EQ(orch.peak_running(), 2);
}

TEST(OrchestratorTest, RetriesAfterLinkDisruptionWithBackoff) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();

  obs::Registry reg{sim};
  Orchestrator orch{sim, tb.manager(),
                    {.retry = {.max_attempts = 3,
                               .initial_backoff = sim::Duration::millis(50)},
                     .registry = &reg}};
  orch.submit({.domain = &g, .from = &tb.host(0), .to = &tb.host(1),
               .config = quick_config()});
  // Cut the forward link mid-pre-copy: the engine aborts cleanly, the
  // orchestrator backs off and the second attempt succeeds.
  tb.host(0).link_to(tb.host(1)).fail_at(sim::TimePoint{} + 5_ms, 10_ms);

  orch.drain();
  const MigrationJob& j = orch.job(0);
  EXPECT_EQ(j.state, JobState::kCompleted);
  EXPECT_EQ(j.attempts, 2);
  EXPECT_EQ(orch.retries(), 1u);
  EXPECT_EQ(j.outcome.attempts, 2);
  EXPECT_TRUE(j.outcome.ok());
  EXPECT_EQ(reg.counter("cluster.retries").value(), 1.0);
  EXPECT_EQ(reg.counter("cluster.jobs_completed").value(), 1.0);
}

/// One retried job under a mid-first-pass outage, with metrics attached.
struct ResumeRun {
  std::string report_json;
  std::string metrics_csv;
  double migration_saved = 0.0;
  double cluster_saved = 0.0;
  core::MigrationOutcome outcome;
  int attempts = 0;
};

ResumeRun run_resumed_retry() {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();

  obs::Registry reg{sim, sim::Duration::from_seconds(0.01)};
  tb.attach_obs(&reg);
  reg.start_sampling();

  auto cfg = quick_config();
  cfg.obs_registry = &reg;
  Orchestrator orch{sim, tb.manager(),
                    {.retry = {.max_attempts = 3,
                               .initial_backoff = sim::Duration::millis(50)},
                     .registry = &reg}};
  orch.submit({.domain = &g, .from = &tb.host(0), .to = &tb.host(1),
               .config = cfg});
  // The outage lands after the VBD-prepare handshake (~5 ms) and a few
  // delivered chunks, so the abort leaves resume state the retry can use.
  tb.host(0).link_to(tb.host(1)).fail_at(sim::TimePoint{} + 9_ms, 10_ms);
  orch.drain();

  ResumeRun r;
  const MigrationJob& j = orch.job(0);
  r.outcome = j.outcome;
  r.attempts = j.attempts;
  r.report_json = core::to_json(j.outcome.report);
  r.metrics_csv = core::to_csv(reg);
  r.migration_saved = reg.counter("migration.resumed_blocks_saved").value();
  r.cluster_saved = reg.counter("cluster.resumed_blocks_saved").value();
  return r;
}

TEST(OrchestratorTest, RetryAfterOutageResumesInsteadOfRestarting) {
  const ResumeRun a = run_resumed_retry();

  EXPECT_TRUE(a.outcome.ok());
  EXPECT_EQ(a.attempts, 2);
  // The retry consumed the aborted attempt's transferred bitmap: its first
  // pass skipped every block already on the destination.
  EXPECT_TRUE(a.outcome.report.resume_applied);
  EXPECT_GT(a.outcome.report.resumed_blocks_saved, 0u);
  // The savings surface through both metric layers: the engine-side counter
  // and the orchestrator's per-job aggregate.
  EXPECT_EQ(a.migration_saved,
            static_cast<double>(a.outcome.report.resumed_blocks_saved));
  EXPECT_EQ(a.cluster_saved, a.migration_saved);
  EXPECT_NE(a.metrics_csv.find("migration.resumed_blocks_saved"),
            std::string::npos);
  EXPECT_NE(a.metrics_csv.find("cluster.resumed_blocks_saved"),
            std::string::npos);

  // Byte-identical across identically-seeded runs.
  const ResumeRun b = run_resumed_retry();
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

TEST(OrchestratorTest, ExhaustedRetryBudgetFailsJob) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();

  Orchestrator orch{sim, tb.manager(),
                    {.retry = {.max_attempts = 2,
                               .initial_backoff = sim::Duration::millis(1)}}};
  orch.submit({.domain = &g, .from = &tb.host(0), .to = &tb.host(1),
               .config = quick_config()});
  // An outage long enough to cover both attempts (1 ms backoff).
  tb.host(0).link_to(tb.host(1)).fail_at(sim::TimePoint{} + 1_ms, 10_s);

  orch.drain();
  const MigrationJob& j = orch.job(0);
  EXPECT_EQ(j.state, JobState::kFailed);
  EXPECT_EQ(j.attempts, 2);
  EXPECT_EQ(j.outcome.status, core::MigrationStatus::kLinkDisrupted);
  EXPECT_EQ(orch.jobs_failed(), 1u);
  EXPECT_EQ(orch.retries(), 1u);
  // The guest never left the source.
  EXPECT_TRUE(tb.host(0).hosts_domain(g));
}

TEST(OrchestratorTest, DeadlineExpiresQueuedJob) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& a = tb.add_vm("a", 0);
  vm::Domain& b = tb.add_vm("b", 0);
  tb.prefill_disks();

  // per_link = 1 queues job b behind job a; b's deadline expires while it
  // waits.
  Orchestrator orch{sim, tb.manager(), {.caps = {.per_link = 1}}};
  orch.submit({.domain = &a, .from = &tb.host(0), .to = &tb.host(1),
               .config = quick_config()});
  orch.submit({.domain = &b, .from = &tb.host(0), .to = &tb.host(1),
               .config = quick_config(), .deadline = 1_ms});
  orch.drain();

  EXPECT_EQ(orch.job(0).state, JobState::kCompleted);
  EXPECT_EQ(orch.job(1).state, JobState::kFailed);
  EXPECT_EQ(orch.job(1).outcome.status,
            core::MigrationStatus::kDeadlineExpired);
  EXPECT_EQ(orch.job(1).attempts, 0);
  EXPECT_TRUE(tb.host(0).hosts_domain(b));
}

TEST(OrchestratorTest, PriorityJumpsTheQueue) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  std::vector<vm::Domain*> vms;
  for (int i = 0; i < 3; ++i) vms.push_back(&tb.add_vm("vm" + std::to_string(i), 0));
  tb.prefill_disks();

  Orchestrator orch{sim, tb.manager(), {.caps = {.per_link = 1}}};
  orch.submit({.domain = vms[0], .from = &tb.host(0), .to = &tb.host(1),
               .config = quick_config()});
  orch.submit({.domain = vms[1], .from = &tb.host(0), .to = &tb.host(1),
               .config = quick_config()});
  orch.submit({.domain = vms[2], .from = &tb.host(0), .to = &tb.host(1),
               .config = quick_config(), .priority = 10});
  orch.drain();

  // All three are queued when the orchestrator starts, so the priority job
  // launches first and the rest follow in submission order.
  ASSERT_EQ(orch.completion_order().size(), 3u);
  EXPECT_EQ(orch.completion_order()[0], 2u);
  EXPECT_EQ(orch.completion_order()[1], 0u);
  EXPECT_EQ(orch.completion_order()[2], 1u);
}

/// Periodically rewrites a block window, making the domain's dirty rate
/// high until `stop` flips.
sim::Task<void> hot_writer(sim::Simulator* sim, vm::Domain* d,
                           const bool* stop) {
  while (!*stop) {
    co_await d->disk_write(storage::BlockRange{0, 512});
    co_await sim->delay(sim::Duration::millis(1));
  }
}

TEST(OrchestratorTest, CycleAwarePolicyDefersHotVm) {
  sim::Simulator sim;
  // A link slow enough that the hot writer's re-dirty rate can actually
  // exceed 0.9x the link rate (the disk caps dirtying at ~170k blocks/s,
  // so against a GbE-class link nothing ever counts as hot).
  auto cfg_bed = small_cluster(3);
  cfg_bed.lan.bandwidth_mibps = 100.0;
  scenario::ClusterTestbed tb{sim, cfg_bed};
  vm::Domain& hot = tb.add_vm("hot", 0);
  vm::Domain& cool = tb.add_vm("cool", 0);
  tb.prefill_disks();

  bool stop_writer = false;
  sim.spawn(hot_writer(&sim, &hot, &stop_writer));

  Orchestrator orch{sim, tb.manager(),
                    {.caps = {.per_source = 1},
                     .policy = SchedulePolicyKind::kWorkloadCycleAware,
                     .poll_interval = sim::Duration::millis(20),
                     .max_deferrals = 1000}};
  // Submit the hot VM first: FIFO would launch it immediately; the
  // cycle-aware policy must skip it and run the cool VM first.
  const JobId hot_job =
      orch.submit({.domain = &hot, .from = &tb.host(0), .to = &tb.host(1),
                   .config = quick_config()});
  const JobId cool_job =
      orch.submit({.domain = &cool, .from = &tb.host(0), .to = &tb.host(2),
                   .config = quick_config()});

  sim.spawn([](sim::Simulator* s, Orchestrator* o,
               bool* stop) -> sim::Task<void> {
    // Let the sampler observe the hot writer while the orchestrator works;
    // cool the workload down once the cool VM is gone so the hot VM can
    // converge and the run terminates.
    while (o->jobs_completed() < 1) {
      co_await s->delay(sim::Duration::millis(5));
    }
    *stop = true;
  }(&sim, &orch, &stop_writer));
  orch.drain();

  EXPECT_TRUE(orch.all_terminal());
  EXPECT_EQ(orch.jobs_completed(), 2u);
  EXPECT_GT(orch.job(hot_job).deferrals, 0);
  // The cool VM finished first even though it was submitted second.
  ASSERT_EQ(orch.completion_order().size(), 2u);
  EXPECT_EQ(orch.completion_order()[0], cool_job);
  EXPECT_EQ(orch.completion_order()[1], hot_job);
}

/// One full evacuation-under-disruption run, returning everything a
/// determinism check needs to compare byte-for-byte.
struct EvacRun {
  std::vector<JobId> order;
  std::vector<std::string> outcomes;  // "<status>/<attempts>" per job id
  std::string trace_json;
  std::string metrics_csv;
  std::uint64_t retries = 0;
  bool all_ok = false;
};

EvacRun run_evacuation() {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(3)};
  for (int i = 0; i < 8; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  tb.prefill_disks();

  obs::Registry reg{sim, sim::Duration::from_seconds(0.05)};
  obs::Tracer tracer{sim};
  tb.attach_obs(&reg);
  reg.start_sampling();

  Orchestrator orch{sim, tb.manager(),
                    {.caps = {.per_source = 2, .per_dest = 2, .per_link = 1},
                     .retry = {.max_attempts = 3,
                               .initial_backoff = sim::Duration::millis(20)},
                     .registry = &reg,
                     .tracer = &tracer}};
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0), quick_config());
  // One injected outage on the host0 -> host1 link mid-evacuation.
  tb.host(0).link_to(tb.host(1)).fail_at(sim::TimePoint{} + 4_ms, 8_ms);
  orch.drain();

  EvacRun r;
  r.order = orch.completion_order();
  for (std::size_t i = 0; i < orch.job_count(); ++i) {
    const MigrationJob& j = orch.job(static_cast<JobId>(i));
    r.outcomes.push_back(std::string{core::to_string(j.outcome.status)} + "/" +
                         std::to_string(j.attempts));
  }
  r.trace_json = obs::chrome_trace_json(tracer);
  r.metrics_csv = core::to_csv(reg);
  r.retries = orch.retries();
  r.all_ok = orch.all_terminal() && orch.jobs_failed() == 0;
  // Integrity: every evacuated disk matches its source image on arrival.
  for (std::size_t i = 0; i < orch.job_count(); ++i) {
    r.all_ok = r.all_ok && orch.job(static_cast<JobId>(i)).outcome.ok();
  }
  return r;
}

TEST(OrchestratorTest, EvacuationUnderDisruptionIsDeterministic) {
  const EvacRun a = run_evacuation();
  const EvacRun b = run_evacuation();

  EXPECT_TRUE(a.all_ok);
  // The outage must actually bite — at least one job retried — and the
  // retry/backoff activity must be visible in the exported metrics.
  EXPECT_GT(a.retries, 0u);
  EXPECT_NE(a.metrics_csv.find("cluster.retries"), std::string::npos);
  EXPECT_NE(a.metrics_csv.find("cluster.jobs_completed"), std::string::npos);
  EXPECT_NE(a.trace_json.find("job_retry_scheduled"), std::string::npos);

  // Byte-identical across identically-seeded runs.
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

TEST(OrchestratorTest, SubmitValidatesRequest) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& g = tb.add_vm("g", 0);
  Orchestrator orch{sim, tb.manager(), {}};
  EXPECT_THROW(orch.submit({.domain = nullptr, .from = &tb.host(0),
                            .to = &tb.host(1)}),
               std::invalid_argument);
  EXPECT_THROW(orch.submit({.domain = &g, .from = &tb.host(0),
                            .to = &tb.host(0)}),
               std::invalid_argument);
}

TEST(RetryPolicyTest, ExponentialBackoffIsCapped) {
  RetryPolicy p{.max_attempts = 5,
                .initial_backoff = sim::Duration::seconds(2),
                .multiplier = 2.0,
                .max_backoff = sim::Duration::seconds(5)};
  EXPECT_EQ(p.backoff_after(1), sim::Duration::seconds(2));
  EXPECT_EQ(p.backoff_after(2), sim::Duration::seconds(4));
  EXPECT_EQ(p.backoff_after(3), sim::Duration::seconds(5));  // capped
  EXPECT_EQ(p.backoff_after(10), sim::Duration::seconds(5));
}

}  // namespace
}  // namespace vmig::cluster
