#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "core/block_bitmap.hpp"
#include "core/dirty_bitmap.hpp"
#include "core/layered_bitmap.hpp"
#include "core/three_level_bitmap.hpp"
#include "simcore/rng.hpp"

namespace vmig::core {
namespace {

TEST(BlockBitmapTest, StartsClean) {
  BlockBitmap bm{1000};
  EXPECT_EQ(bm.size(), 1000u);
  EXPECT_EQ(bm.count_set(), 0u);
  EXPECT_TRUE(bm.none());
  for (std::uint64_t i = 0; i < 1000; i += 97) EXPECT_FALSE(bm.test(i));
}

TEST(BlockBitmapTest, InitiallySet) {
  BlockBitmap bm{1000, /*initially_set=*/true};
  EXPECT_EQ(bm.count_set(), 1000u);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(999));
}

TEST(BlockBitmapTest, SetClearTest) {
  BlockBitmap bm{128};
  bm.set(5);
  bm.set(64);
  bm.set(127);
  EXPECT_TRUE(bm.test(5));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(127));
  EXPECT_FALSE(bm.test(6));
  EXPECT_EQ(bm.count_set(), 3u);
  bm.clear(64);
  EXPECT_FALSE(bm.test(64));
  EXPECT_EQ(bm.count_set(), 2u);
}

TEST(BlockBitmapTest, DoubleSetCountsOnce) {
  BlockBitmap bm{64};
  bm.set(3);
  bm.set(3);
  EXPECT_EQ(bm.count_set(), 1u);
  bm.clear(3);
  bm.clear(3);
  EXPECT_EQ(bm.count_set(), 0u);
}

TEST(BlockBitmapTest, SetRangeCrossesWords) {
  BlockBitmap bm{512};
  bm.set_range(60, 200);  // spans word boundaries
  EXPECT_EQ(bm.count_set(), 200u);
  EXPECT_FALSE(bm.test(59));
  EXPECT_TRUE(bm.test(60));
  EXPECT_TRUE(bm.test(259));
  EXPECT_FALSE(bm.test(260));
}

TEST(BlockBitmapTest, SetRangeOverlapCountsOnce) {
  BlockBitmap bm{256};
  bm.set_range(0, 100);
  bm.set_range(50, 100);
  EXPECT_EQ(bm.count_set(), 150u);
}

TEST(BlockBitmapTest, ClearRange) {
  BlockBitmap bm{512, true};
  bm.clear_range(100, 300);
  EXPECT_EQ(bm.count_set(), 212u);
  EXPECT_TRUE(bm.test(99));
  EXPECT_FALSE(bm.test(100));
  EXPECT_FALSE(bm.test(399));
  EXPECT_TRUE(bm.test(400));
}

TEST(BlockBitmapTest, FillRespectsTailBits) {
  BlockBitmap bm{70};  // not a multiple of 64
  bm.fill(true);
  EXPECT_EQ(bm.count_set(), 70u);
  std::uint64_t seen = 0;
  bm.for_each_set([&](std::uint64_t i) {
    EXPECT_LT(i, 70u);
    ++seen;
  });
  EXPECT_EQ(seen, 70u);
}

TEST(BlockBitmapTest, NextSet) {
  BlockBitmap bm{300};
  bm.set(10);
  bm.set(100);
  bm.set(299);
  EXPECT_EQ(bm.next_set(0), std::optional<std::uint64_t>{10});
  EXPECT_EQ(bm.next_set(10), std::optional<std::uint64_t>{10});
  EXPECT_EQ(bm.next_set(11), std::optional<std::uint64_t>{100});
  EXPECT_EQ(bm.next_set(101), std::optional<std::uint64_t>{299});
  EXPECT_EQ(bm.next_set(300), std::nullopt);
  bm.clear(299);
  EXPECT_EQ(bm.next_set(101), std::nullopt);
}

TEST(BlockBitmapTest, RunLength) {
  BlockBitmap bm{200};
  bm.set_range(50, 80);
  EXPECT_EQ(bm.run_length(50, 1000), 80u);
  EXPECT_EQ(bm.run_length(50, 10), 10u);
  EXPECT_EQ(bm.run_length(129, 10), 1u);
}

TEST(BlockBitmapTest, ForEachSetAscending) {
  BlockBitmap bm{1000};
  const std::vector<std::uint64_t> want{0, 63, 64, 65, 500, 999};
  for (auto i : want) bm.set(i);
  std::vector<std::uint64_t> got;
  bm.for_each_set([&](std::uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BlockBitmapTest, OrAndWith) {
  BlockBitmap a{128}, b{128};
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  BlockBitmap u = a;
  u.or_with(b);
  EXPECT_EQ(u.count_set(), 3u);
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(3));
  BlockBitmap n = a;
  n.and_with(b);
  EXPECT_EQ(n.count_set(), 1u);
  EXPECT_TRUE(n.test(2));
}

TEST(BlockBitmapTest, PaperMemoryCostNumbers) {
  // §IV-A-2: 32 GB disk at 4 KB blocks => 1 MB bitmap; at 512 B => 8 MB.
  const std::uint64_t blocks_4k = 32ull * 1024 * 1024 * 1024 / 4096;
  const std::uint64_t sectors = 32ull * 1024 * 1024 * 1024 / 512;
  EXPECT_EQ(BlockBitmap{blocks_4k}.wire_bytes(), 1024u * 1024u);
  EXPECT_EQ(BlockBitmap{sectors}.wire_bytes(), 8u * 1024u * 1024u);
}

TEST(LayeredBitmapTest, BasicSetTestClear) {
  LayeredBitmap bm{100000};
  EXPECT_FALSE(bm.test(54321));
  bm.set(54321);
  EXPECT_TRUE(bm.test(54321));
  EXPECT_EQ(bm.count_set(), 1u);
  bm.clear(54321);
  EXPECT_FALSE(bm.test(54321));
  EXPECT_EQ(bm.count_set(), 0u);
}

TEST(LayeredBitmapTest, LazyAllocation) {
  LayeredBitmap bm{1ull << 20, 1ull << 10};  // 1024 parts
  EXPECT_EQ(bm.allocated_parts(), 0u);
  bm.set(5);
  EXPECT_EQ(bm.allocated_parts(), 1u);
  bm.set(6);
  EXPECT_EQ(bm.allocated_parts(), 1u);  // same part
  bm.set((1ull << 20) - 1);
  EXPECT_EQ(bm.allocated_parts(), 2u);
  EXPECT_EQ(bm.dirty_parts(), 2u);
}

TEST(LayeredBitmapTest, ClearOnUnallocatedPartIsNoop) {
  LayeredBitmap bm{10000};
  bm.clear(5000);
  EXPECT_EQ(bm.count_set(), 0u);
  EXPECT_EQ(bm.allocated_parts(), 0u);
}

TEST(LayeredBitmapTest, UpperTracksDirtyParts) {
  LayeredBitmap bm{4096, 1024};
  bm.set(0);
  bm.set(2048);
  EXPECT_EQ(bm.dirty_parts(), 2u);
  bm.clear(0);
  EXPECT_EQ(bm.dirty_parts(), 1u);
  bm.clear(2048);
  EXPECT_EQ(bm.dirty_parts(), 0u);
  EXPECT_EQ(bm.allocated_parts(), 2u);  // memory retained until fill(false)
}

TEST(LayeredBitmapTest, FillFalseReleasesMemory) {
  LayeredBitmap bm{100000};
  for (std::uint64_t i = 0; i < 100000; i += 1000) bm.set(i);
  EXPECT_GT(bm.allocated_parts(), 0u);
  bm.fill(false);
  EXPECT_EQ(bm.allocated_parts(), 0u);
  EXPECT_EQ(bm.count_set(), 0u);
}

TEST(LayeredBitmapTest, FillTrue) {
  LayeredBitmap bm{5000, 1024};
  bm.fill(true);
  EXPECT_EQ(bm.count_set(), 5000u);
  EXPECT_TRUE(bm.test(4999));
}

TEST(LayeredBitmapTest, SetRangeAcrossParts) {
  LayeredBitmap bm{10000, 1024};
  bm.set_range(1000, 3000);
  EXPECT_EQ(bm.count_set(), 3000u);
  EXPECT_FALSE(bm.test(999));
  EXPECT_TRUE(bm.test(1000));
  EXPECT_TRUE(bm.test(3999));
  EXPECT_FALSE(bm.test(4000));
  EXPECT_EQ(bm.allocated_parts(), 4u);  // parts 0..3 touched
}

TEST(LayeredBitmapTest, NextSetSkipsCleanParts) {
  LayeredBitmap bm{1ull << 20, 1ull << 12};
  bm.set(100);
  bm.set(900000);
  EXPECT_EQ(bm.next_set(0), std::optional<std::uint64_t>{100});
  EXPECT_EQ(bm.next_set(101), std::optional<std::uint64_t>{900000});
  EXPECT_EQ(bm.next_set(900001), std::nullopt);
}

TEST(LayeredBitmapTest, NextSetWithinSamePart) {
  LayeredBitmap bm{8192, 4096};
  bm.set(10);
  bm.set(20);
  EXPECT_EQ(bm.next_set(11), std::optional<std::uint64_t>{20});
}

TEST(LayeredBitmapTest, WireBytesSmallerThanFlatWhenSparse) {
  const std::uint64_t bits = 10ull * 1024 * 1024;  // 40 GiB disk at 4 KB
  LayeredBitmap lb{bits};
  BlockBitmap fb{bits};
  // Localized dirt: one hot region.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    lb.set(500000 + i);
    fb.set(500000 + i);
  }
  EXPECT_LT(lb.wire_bytes(), fb.wire_bytes() / 10);
}

TEST(LayeredBitmapTest, CopyIsDeep) {
  LayeredBitmap a{10000};
  a.set(42);
  LayeredBitmap b = a;
  b.set(43);
  EXPECT_TRUE(b.test(42));
  EXPECT_FALSE(a.test(43));
  EXPECT_EQ(a.count_set(), 1u);
  EXPECT_EQ(b.count_set(), 2u);
}

class BitmapEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

// Property: layered and flat bitmaps agree under arbitrary operation streams.
TEST_P(BitmapEquivalenceTest, RandomOpsMatchFlat) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng{seed};
  const std::uint64_t size = 1 + rng.uniform_u64(200000);
  BlockBitmap flat{size};
  LayeredBitmap layered{size, 1ull << (6 + seed % 8)};

  for (int op = 0; op < 3000; ++op) {
    const auto what = rng.uniform_u64(5);
    const std::uint64_t i = rng.uniform_u64(size);
    switch (what) {
      case 0:
      case 1: {
        flat.set(i);
        layered.set(i);
        break;
      }
      case 2: {
        flat.clear(i);
        layered.clear(i);
        break;
      }
      case 3: {
        const std::uint64_t n = std::min(size - i, rng.uniform_u64(300));
        flat.set_range(i, n);
        layered.set_range(i, n);
        break;
      }
      case 4: {
        ASSERT_EQ(flat.test(i), layered.test(i)) << "bit " << i;
        break;
      }
    }
    ASSERT_EQ(flat.count_set(), layered.count_set());
  }

  // Full iteration agreement.
  std::vector<std::uint64_t> f, l;
  flat.for_each_set([&](std::uint64_t i) { f.push_back(i); });
  layered.for_each_set([&](std::uint64_t i) { l.push_back(i); });
  EXPECT_EQ(f, l);

  // next_set agreement at random probes.
  for (int p = 0; p < 200; ++p) {
    const std::uint64_t from = rng.uniform_u64(size + 10);
    ASSERT_EQ(flat.next_set(from), layered.next_set(from)) << "from " << from;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(DirtyBitmapTest, KindSelection) {
  DirtyBitmap flat{BitmapKind::kFlat, 1000};
  DirtyBitmap layered{BitmapKind::kLayered, 1000};
  DirtyBitmap three{BitmapKind::kThreeLevel, 1000};
  EXPECT_EQ(flat.kind(), BitmapKind::kFlat);
  EXPECT_EQ(layered.kind(), BitmapKind::kLayered);
  EXPECT_EQ(three.kind(), BitmapKind::kThreeLevel);
  EXPECT_EQ(flat.size(), 1000u);
  EXPECT_EQ(layered.size(), 1000u);
  EXPECT_EQ(three.size(), 1000u);
}

TEST(DirtyBitmapTest, ForwardingOps) {
  for (const auto kind :
       {BitmapKind::kFlat, BitmapKind::kLayered, BitmapKind::kThreeLevel}) {
    DirtyBitmap bm{kind, 5000};
    bm.set(7);
    bm.set_range(100, 50);
    EXPECT_TRUE(bm.test(7));
    EXPECT_TRUE(bm.test(149));
    EXPECT_EQ(bm.count_set(), 51u);
    EXPECT_EQ(bm.next_set(8), std::optional<std::uint64_t>{100});
    EXPECT_EQ(bm.run_length(100, 500), 50u);
    bm.clear(7);
    EXPECT_EQ(bm.count_set(), 50u);
    std::uint64_t n = 0;
    bm.for_each_set([&](std::uint64_t) { ++n; });
    EXPECT_EQ(n, 50u);
  }
}

TEST(DirtyBitmapTest, TakeAndReset) {
  DirtyBitmap bm{BitmapKind::kLayered, 10000};
  bm.set(1);
  bm.set(9999);
  DirtyBitmap snap = bm.take_and_reset();
  EXPECT_EQ(snap.count_set(), 2u);
  EXPECT_TRUE(snap.test(9999));
  EXPECT_EQ(bm.count_set(), 0u);
  bm.set(5);
  EXPECT_FALSE(snap.test(5));  // snapshot is independent
}

TEST(DirtyBitmapTest, InitiallySetAllBlocks) {
  // IM seeds the first iteration from an all-set bitmap on primal migration.
  DirtyBitmap bm{BitmapKind::kFlat, 123, true};
  EXPECT_EQ(bm.count_set(), 123u);
}

TEST(DirtyBitmapTest, WireBytesLayeredAdvantage) {
  DirtyBitmap flat{BitmapKind::kFlat, 1ull << 23};
  DirtyBitmap layered{BitmapKind::kLayered, 1ull << 23};
  flat.set(12345);
  layered.set(12345);
  EXPECT_LT(layered.wire_bytes(), flat.wire_bytes());
}

TEST(ThreeLevelBitmapTest, BasicSetTestClear) {
  ThreeLevelBitmap bm{100000};
  EXPECT_FALSE(bm.test(54321));
  bm.set(54321);
  EXPECT_TRUE(bm.test(54321));
  EXPECT_EQ(bm.count_set(), 1u);
  bm.clear(54321);
  EXPECT_FALSE(bm.test(54321));
  EXPECT_EQ(bm.count_set(), 0u);
  EXPECT_TRUE(bm.none());
}

TEST(ThreeLevelBitmapTest, InitiallySetRespectsTailBits) {
  ThreeLevelBitmap bm{ThreeLevelBitmap::kBitsPerLine + 70, true};
  EXPECT_EQ(bm.count_set(), ThreeLevelBitmap::kBitsPerLine + 70);
  std::uint64_t seen = 0;
  bm.for_each_set([&](std::uint64_t i) {
    EXPECT_LT(i, ThreeLevelBitmap::kBitsPerLine + 70);
    ++seen;
  });
  EXPECT_EQ(seen, ThreeLevelBitmap::kBitsPerLine + 70);
}

TEST(ThreeLevelBitmapTest, DirtyLinesTracksLines) {
  ThreeLevelBitmap bm{1ull << 20};
  EXPECT_EQ(bm.dirty_lines(), 0u);
  bm.set(0);
  bm.set(ThreeLevelBitmap::kBitsPerLine - 1);  // same line
  EXPECT_EQ(bm.dirty_lines(), 1u);
  bm.set(ThreeLevelBitmap::kBitsPerLine);  // next line
  EXPECT_EQ(bm.dirty_lines(), 2u);
  bm.set(5 * ThreeLevelBitmap::kBitsPerDirWord + 3);  // far region
  EXPECT_EQ(bm.dirty_lines(), 3u);
  bm.clear(ThreeLevelBitmap::kBitsPerLine);
  EXPECT_EQ(bm.dirty_lines(), 2u);
  bm.clear(0);
  EXPECT_EQ(bm.dirty_lines(), 2u);  // line still dirty via its other bit
  bm.clear(ThreeLevelBitmap::kBitsPerLine - 1);
  EXPECT_EQ(bm.dirty_lines(), 1u);
}

TEST(ThreeLevelBitmapTest, NextSetSkipsAcrossAllLevels) {
  // Big enough to span several summary words (one sum word covers
  // 64 * kBitsPerDirWord bits).
  const std::uint64_t size = 3 * 64 * ThreeLevelBitmap::kBitsPerDirWord;
  ThreeLevelBitmap bm{size};
  const std::uint64_t far = size - 7;
  bm.set(100);
  bm.set(far);
  EXPECT_EQ(bm.next_set(0), std::optional<std::uint64_t>{100});
  EXPECT_EQ(bm.next_set(100), std::optional<std::uint64_t>{100});
  EXPECT_EQ(bm.next_set(101), std::optional<std::uint64_t>{far});
  EXPECT_EQ(bm.next_set(far + 1), std::nullopt);
  bm.clear(far);
  EXPECT_EQ(bm.next_set(101), std::nullopt);
}

TEST(ThreeLevelBitmapTest, SetRangeAcrossDirWords) {
  ThreeLevelBitmap bm{4 * ThreeLevelBitmap::kBitsPerDirWord};
  const std::uint64_t start = ThreeLevelBitmap::kBitsPerDirWord - 100;
  bm.set_range(start, 200);  // straddles a directory-word boundary
  EXPECT_EQ(bm.count_set(), 200u);
  EXPECT_FALSE(bm.test(start - 1));
  EXPECT_TRUE(bm.test(start));
  EXPECT_TRUE(bm.test(start + 199));
  EXPECT_FALSE(bm.test(start + 200));
  bm.clear_range(start, 200);
  EXPECT_EQ(bm.count_set(), 0u);
  EXPECT_EQ(bm.dirty_lines(), 0u);
  EXPECT_EQ(bm.next_set(0), std::nullopt);
}

TEST(ThreeLevelBitmapTest, WireBytesSparseAdvantage) {
  const std::uint64_t bits = 10ull * 1024 * 1024;  // 40 GiB disk at 4 KB
  ThreeLevelBitmap tl{bits};
  BlockBitmap fb{bits};
  for (std::uint64_t i = 0; i < 10000; ++i) {
    tl.set(500000 + i);
    fb.set(500000 + i);
  }
  EXPECT_LT(tl.wire_bytes(), fb.wire_bytes() / 10);
}

// Property: all three DirtyBitmap kinds agree bit-for-bit under arbitrary
// operation streams, probes, iteration order, and cross-kind word-wise
// or_with/subtract.
class DirtyBitmapDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirtyBitmapDifferentialTest, AllKindsAgree) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng{seed};
  const std::uint64_t size = 1 + rng.uniform_u64(300000);
  std::array<DirtyBitmap, 3> bms{
      DirtyBitmap{BitmapKind::kFlat, size},
      DirtyBitmap{BitmapKind::kLayered, size},
      DirtyBitmap{BitmapKind::kThreeLevel, size},
  };

  for (int op = 0; op < 2000; ++op) {
    const auto what = rng.uniform_u64(6);
    const std::uint64_t i = rng.uniform_u64(size);
    const std::uint64_t n = std::min(size - i, rng.uniform_u64(600));
    for (auto& bm : bms) {
      switch (what) {
        case 0:
        case 1: bm.set(i); break;
        case 2: bm.clear(i); break;
        case 3: bm.set_range(i, n); break;
        case 4: bm.clear_range(i, n); break;
        case 5: ASSERT_EQ(bm.test(i), bms[0].test(i)) << "bit " << i; break;
      }
    }
    ASSERT_EQ(bms[1].count_set(), bms[0].count_set()) << "op " << op;
    ASSERT_EQ(bms[2].count_set(), bms[0].count_set()) << "op " << op;
  }

  // Full iteration agreement (value and order).
  std::vector<std::uint64_t> ref;
  bms[0].for_each_set([&](std::uint64_t i) { ref.push_back(i); });
  for (std::size_t k = 1; k < bms.size(); ++k) {
    std::vector<std::uint64_t> got;
    bms[k].for_each_set([&](std::uint64_t i) { got.push_back(i); });
    ASSERT_EQ(got, ref) << "kind " << to_string(bms[k].kind());
  }

  // Probe agreement: next_set / next_clear / run_length / next_set_run /
  // windowed iteration at random positions.
  for (int p = 0; p < 300; ++p) {
    const std::uint64_t from = rng.uniform_u64(size);
    const std::uint64_t cnt = std::min(size - from, rng.uniform_u64(5000));
    const std::uint64_t cap = 1 + rng.uniform_u64(400);
    std::vector<std::uint64_t> win_ref;
    bms[0].for_each_set_in(from, cnt, [&](std::uint64_t i) {
      win_ref.push_back(i);
    });
    for (std::size_t k = 1; k < bms.size(); ++k) {
      ASSERT_EQ(bms[k].next_set(from), bms[0].next_set(from)) << from;
      ASSERT_EQ(bms[k].next_clear(from), bms[0].next_clear(from)) << from;
      ASSERT_EQ(bms[k].run_length(from, cap), bms[0].run_length(from, cap));
      ASSERT_EQ(bms[k].next_set_run(from, from + cnt, cap),
                bms[0].next_set_run(from, from + cnt, cap))
          << "from " << from << " cnt " << cnt << " cap " << cap;
      std::vector<std::uint64_t> win;
      bms[k].for_each_set_in(from, cnt, [&](std::uint64_t i) {
        win.push_back(i);
      });
      ASSERT_EQ(win, win_ref) << "window " << from << "+" << cnt;
    }
  }

  // Cross-kind word-wise ops: union and subtraction of a differently-typed
  // bitmap give the same result on every kind.
  DirtyBitmap other{BitmapKind::kThreeLevel, size};
  for (int b = 0; b < 100; ++b) other.set(rng.uniform_u64(size));
  DirtyBitmap mask{BitmapKind::kLayered, size};
  for (int b = 0; b < 100; ++b) mask.set(rng.uniform_u64(size));
  for (auto& bm : bms) {
    bm.or_with(other);
    bm.subtract(mask);
  }
  ASSERT_EQ(bms[1].count_set(), bms[0].count_set());
  ASSERT_EQ(bms[2].count_set(), bms[0].count_set());

  // take_and_reset: snapshot matches, original drains, on every kind.
  for (auto& bm : bms) {
    const std::uint64_t before = bm.count_set();
    DirtyBitmap snap = bm.take_and_reset();
    EXPECT_EQ(snap.count_set(), before);
    EXPECT_EQ(bm.count_set(), 0u);
    EXPECT_EQ(bm.next_set(0), std::nullopt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirtyBitmapDifferentialTest,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19, 23, 29));

TEST(SetRunCursorTest, YieldsMaximalRunsCappedAtMaxLen) {
  for (const auto kind :
       {BitmapKind::kFlat, BitmapKind::kLayered, BitmapKind::kThreeLevel}) {
    DirtyBitmap bm{kind, 10000};
    bm.set_range(10, 5);     // short run
    bm.set_range(100, 300);  // long run, will be split by max_len
    bm.set(9999);            // single bit at the tail
    SetRunCursor cur{bm};
    auto r = cur.next(128);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->start, 10u);
    EXPECT_EQ(r->len, 5u);
    r = cur.next(128);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->start, 100u);
    EXPECT_EQ(r->len, 128u);
    r = cur.next(128);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->start, 228u);
    EXPECT_EQ(r->len, 128u);
    r = cur.next(128);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->start, 356u);
    EXPECT_EQ(r->len, 44u);
    r = cur.next(128);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->start, 9999u);
    EXPECT_EQ(r->len, 1u);
    EXPECT_EQ(cur.next(128), std::nullopt);
    EXPECT_EQ(cur.pos(), 10000u);
  }
}

TEST(SetRunCursorTest, RespectsWindowBounds) {
  DirtyBitmap bm{BitmapKind::kThreeLevel, 1000};
  bm.set_range(0, 1000);
  SetRunCursor cur{bm, 200, 500};
  auto r = cur.next(1000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->start, 200u);
  EXPECT_EQ(r->len, 300u);  // clipped to [200, 500)
  EXPECT_EQ(cur.next(1000), std::nullopt);
}

TEST(SetRunCursorTest, EmptyBitmapYieldsNothing) {
  DirtyBitmap bm{BitmapKind::kThreeLevel, 1000};
  SetRunCursor cur{bm};
  EXPECT_EQ(cur.next(64), std::nullopt);
}

}  // namespace
}  // namespace vmig::core
