#include "core/disruption.hpp"

#include <gtest/gtest.h>

namespace vmig::core {
namespace {

using sim::Duration;
using sim::TimePoint;
using sim::TimeSeries;
using namespace vmig::sim::literals;

TimePoint at(double s) {
  return TimePoint::origin() + Duration::from_seconds(s);
}

/// 1 Hz series: `base` outside [lo, hi), `dip` inside.
TimeSeries make_series(double base, double dip, double lo, double hi,
                       double total = 100.0) {
  TimeSeries ts;
  for (double t = 0; t < total; t += 1.0) {
    ts.add(at(t), (t >= lo && t < hi) ? dip : base);
  }
  return ts;
}

TEST(DisruptionTest, NoDipMeansNoDisruption) {
  const auto ts = make_series(100, 100, 0, 0);
  const auto d = measure_disruption(ts, at(0), at(20), at(20), at(80));
  EXPECT_DOUBLE_EQ(d.baseline, 100.0);
  EXPECT_EQ(d.disrupted_time, Duration::zero());
  EXPECT_DOUBLE_EQ(d.worst_ratio, 1.0);
  EXPECT_EQ(d.samples_below, 0u);
}

TEST(DisruptionTest, DipDurationIsMeasured) {
  // 20 s dip to half throughput inside the window.
  const auto ts = make_series(100, 50, 40, 60);
  const auto d = measure_disruption(ts, at(0), at(30), at(30), at(90));
  EXPECT_NEAR(d.baseline, 100.0, 1e-9);
  EXPECT_NEAR(d.disrupted_time.to_seconds(), 20.0, 1.5);
  EXPECT_NEAR(d.worst_ratio, 0.5, 1e-9);
  EXPECT_NEAR(d.disrupted_fraction(), 20.0 / 60.0, 0.03);
}

TEST(DisruptionTest, ThresholdControlsSensitivity) {
  // A mild 5% dip: invisible at the default 0.9 threshold, visible at 0.99.
  const auto ts = make_series(100, 95, 40, 60);
  const auto strict = measure_disruption(ts, at(0), at(30), at(30), at(90), 0.99);
  const auto lax = measure_disruption(ts, at(0), at(30), at(30), at(90), 0.90);
  EXPECT_GT(strict.disrupted_time, 10_s);
  EXPECT_EQ(lax.disrupted_time, Duration::zero());
}

TEST(DisruptionTest, WorstRatioFindsDeepestPoint) {
  TimeSeries ts;
  for (double t = 0; t < 50; t += 1.0) ts.add(at(t), 100);
  ts.add(at(50), 10);  // one catastrophic second
  for (double t = 51; t < 100; t += 1.0) ts.add(at(t), 100);
  const auto d = measure_disruption(ts, at(0), at(30), at(30), at(95));
  EXPECT_NEAR(d.worst_ratio, 0.1, 1e-9);
  EXPECT_GT(d.disrupted_time, Duration::zero());
  EXPECT_LT(d.disrupted_time, 3_s);
}

TEST(DisruptionTest, EmptyWindowOrBaselineIsSafe) {
  TimeSeries empty;
  const auto d = measure_disruption(empty, at(0), at(10), at(10), at(20));
  EXPECT_DOUBLE_EQ(d.baseline, 0.0);
  EXPECT_EQ(d.disrupted_time, Duration::zero());
  const auto ts = make_series(100, 100, 0, 0, 10.0);
  const auto d2 = measure_disruption(ts, at(0), at(10), at(50), at(60));
  EXPECT_EQ(d2.samples, 0u);
}

TEST(DisruptionTest, DisruptionCappedAtWindow) {
  const auto ts = make_series(100, 1, 0, 100);  // everything is degraded
  const auto d = measure_disruption(ts, at(0), at(0), at(10), at(20));
  // baseline computed over a degraded window is the dip itself -> ratio 1.
  EXPECT_EQ(d.disrupted_time, Duration::zero());
  // With an honest baseline:
  TimeSeries ts2 = make_series(100, 1, 20, 100);
  const auto d2 = measure_disruption(ts2, at(0), at(20), at(20), at(90));
  EXPECT_LE(d2.disrupted_time, d2.window);
  EXPECT_NEAR(d2.disrupted_fraction(), 1.0, 0.05);
}

}  // namespace
}  // namespace vmig::core
