// Tests for the §VII future-work features implemented as extensions:
// guest-assisted unused-block skipping and the multi-host IM directory.

#include <gtest/gtest.h>

#include "core/im_directory.hpp"
#include "core/migration_manager.hpp"
#include "simcore/rng.hpp"

namespace vmig::core {
namespace {

using hv::Host;
using sim::Simulator;
using sim::Task;
using storage::BlockRange;
using storage::Geometry;
using namespace vmig::sim::literals;

storage::DiskModelParams fast_disk() {
  storage::DiskModelParams p;
  p.seq_read_mbps = 800.0;
  p.seq_write_mbps = 700.0;
  p.seek = 100_us;
  p.request_overhead = 5_us;
  return p;
}

net::LinkParams fast_lan() {
  net::LinkParams p;
  p.bandwidth_mibps = 1000.0;
  p.latency = 50_us;
  return p;
}

TEST(SparseMigrationTest, SkipsNeverWrittenBlocks) {
  Simulator sim;
  Host a{sim, "A", Geometry::from_mib(256), fast_disk()};
  Host b{sim, "B", Geometry::from_mib(256), fast_disk()};
  Host::interconnect(a, b, fast_lan());
  vm::Domain vm{sim, 1, "guest", 4};
  a.attach_domain(vm);
  // Populate only the first quarter of the disk.
  const auto blocks = a.disk().geometry().block_count;
  for (storage::BlockId blk = 0; blk < blocks / 4; ++blk) {
    a.disk().poke_token(blk, 0x7000 + blk);
  }

  MigrationConfig cfg;
  cfg.skip_unused_blocks = true;
  MigrationManager mgr{sim};
  MigrationReport rep;
  sim.spawn([](MigrationManager& mgr, vm::Domain& vm, Host& a, Host& b,
               MigrationConfig cfg, MigrationReport& out) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &vm, .from = &a, .to = &b, .config = cfg})).report;
  }(mgr, vm, a, b, cfg, rep));
  sim.run();

  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_TRUE(rep.memory_consistent);
  EXPECT_EQ(rep.blocks_skipped_unused, blocks * 3 / 4);
  EXPECT_EQ(rep.blocks_first_pass, blocks / 4);
  EXPECT_TRUE(a.disk().content_equals(b.disk()));  // zeros match trivially
}

TEST(SparseMigrationTest, QuartersTransferTimeOnQuarterFullDisk) {
  auto run = [](bool sparse) {
    Simulator sim;
    Host a{sim, "A", Geometry::from_mib(256), fast_disk()};
    Host b{sim, "B", Geometry::from_mib(256), fast_disk()};
    Host::interconnect(a, b, fast_lan());
    vm::Domain vm{sim, 1, "guest", 4};
    a.attach_domain(vm);
    for (storage::BlockId blk = 0; blk < a.disk().geometry().block_count / 4;
         ++blk) {
      a.disk().poke_token(blk, 0x7000 + blk);
    }
    MigrationConfig cfg;
    cfg.skip_unused_blocks = sparse;
    MigrationManager mgr{sim};
    MigrationReport rep;
    sim.spawn([](MigrationManager& mgr, vm::Domain& vm, Host& a, Host& b,
                 MigrationConfig cfg, MigrationReport& out) -> Task<void> {
      out = (co_await mgr.migrate({.domain = &vm, .from = &a, .to = &b, .config = cfg})).report;
    }(mgr, vm, a, b, cfg, rep));
    sim.run();
    return rep;
  };
  const auto full = run(false);
  const auto sparse = run(true);
  EXPECT_TRUE(sparse.disk_consistent);
  EXPECT_LT(sparse.total_bytes(), full.total_bytes() / 2);
  EXPECT_LT(sparse.total_time(), full.total_time().scaled(0.6));
}

TEST(SparseMigrationTest, BlocksWrittenDuringMigrationStillMove) {
  Simulator sim;
  Host a{sim, "A", Geometry::from_mib(256), fast_disk()};
  Host b{sim, "B", Geometry::from_mib(256), fast_disk()};
  Host::interconnect(a, b, fast_lan());
  vm::Domain vm{sim, 1, "guest", 4};
  a.attach_domain(vm);
  // Empty disk; the guest writes into the "unused" region mid-migration.
  bool stop = false;
  sim.spawn([](Simulator& s, vm::Domain& vm, bool& stop) -> Task<void> {
    storage::BlockId blk = 40000;
    while (!stop) {
      co_await vm.disk_write(BlockRange{blk, 4});
      blk += 4;
      co_await s.delay(500_us);
    }
  }(sim, vm, stop));

  MigrationConfig cfg;
  cfg.skip_unused_blocks = true;
  MigrationManager mgr{sim};
  MigrationReport rep;
  sim.spawn([](MigrationManager& mgr, vm::Domain& vm, Host& a, Host& b,
               MigrationConfig cfg, MigrationReport& out,
               bool& stop) -> Task<void> {
    out = (co_await mgr.migrate({.domain = &vm, .from = &a, .to = &b, .config = cfg})).report;
    stop = true;
  }(mgr, vm, a, b, cfg, rep, stop));
  sim.run();
  EXPECT_TRUE(rep.disk_consistent);
  EXPECT_GT(rep.blocks_retransferred + rep.residual_dirty_blocks, 0u);
}

/// Three hosts in a triangle, one domain commuting among them.
struct Tri {
  explicit Tri(Simulator& sim)
      : a{sim, "A", Geometry::from_mib(128), fast_disk()},
        b{sim, "B", Geometry::from_mib(128), fast_disk()},
        c{sim, "C", Geometry::from_mib(128), fast_disk()},
        vm{sim, 1, "guest", 4} {
    Host::interconnect(a, b, fast_lan());
    Host::interconnect(b, c, fast_lan());
    Host::interconnect(a, c, fast_lan());
    a.attach_domain(vm);
    for (storage::BlockId blk = 0; blk < a.disk().geometry().block_count; ++blk) {
      a.disk().poke_token(blk, 0xa000 + blk);
    }
  }
  Host a, b, c;
  vm::Domain vm;
};

Task<void> dirty_some(Simulator& sim, vm::Domain& vm, storage::BlockId base,
                      int blocks) {
  for (int i = 0; i < blocks; ++i) {
    co_await vm.disk_write(BlockRange{base + static_cast<storage::BlockId>(i), 1});
    co_await sim.delay(100_us);
  }
}

TEST(MultiHostImTest, ThirdHopToKnownHostIsIncremental) {
  Simulator sim;
  Tri tri{sim};
  MigrationManager mgr{sim};
  mgr.set_multi_host_im(true);
  std::vector<MigrationReport> reps;

  sim.spawn([](Simulator& sim, Tri& tri, MigrationManager& mgr,
               std::vector<MigrationReport>& reps) -> Task<void> {
    // A -> B (full), work at B; B -> C (full: C unknown), work at C;
    // C -> A: with the directory this is INCREMENTAL even though A was two
    // hops ago — the paper's pairwise prototype would re-copy everything.
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.a, .to = &tri.b})).report);
    co_await dirty_some(sim, tri.vm, 100, 50);
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.b, .to = &tri.c})).report);
    co_await dirty_some(sim, tri.vm, 5000, 30);
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.c, .to = &tri.a})).report);
  }(sim, tri, mgr, reps));
  sim.run();

  ASSERT_EQ(reps.size(), 3u);
  EXPECT_FALSE(reps[0].incremental);
  // B -> C: C never seen; full copy expected.
  EXPECT_EQ(reps[1].blocks_first_pass, tri.a.disk().geometry().block_count);
  // C -> A: incremental; only blocks written at B and C move.
  EXPECT_TRUE(reps[2].incremental);
  EXPECT_LE(reps[2].blocks_first_pass, 50u + 30u + 64u);
  EXPECT_GT(reps[2].blocks_first_pass, 0u);
  for (const auto& r : reps) {
    EXPECT_TRUE(r.disk_consistent);
    EXPECT_TRUE(r.memory_consistent);
  }
  EXPECT_TRUE(tri.a.hosts_domain(tri.vm));

  const auto* dir = mgr.directory(tri.vm);
  ASSERT_NE(dir, nullptr);
  EXPECT_EQ(dir->known_hosts(), 3u);
}

TEST(MultiHostImTest, DivergenceAccumulatesAcrossHops) {
  Simulator sim;
  Tri tri{sim};
  MigrationManager mgr{sim};
  mgr.set_multi_host_im(true);
  std::vector<MigrationReport> reps;

  sim.spawn([](Simulator& sim, Tri& tri, MigrationManager& mgr,
               std::vector<MigrationReport>& reps) -> Task<void> {
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.a, .to = &tri.b})).report);  // full
    co_await dirty_some(sim, tri.vm, 100, 20);
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.b, .to = &tri.a})).report);  // IM back
    co_await dirty_some(sim, tri.vm, 200, 20);
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.a, .to = &tri.b})).report);  // IM again
    co_await dirty_some(sim, tri.vm, 300, 20);
    // B -> A once more: A's copy misses only the writes at B since hop 3.
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.b, .to = &tri.a})).report);
  }(sim, tri, mgr, reps));
  sim.run();

  ASSERT_EQ(reps.size(), 4u);
  for (std::size_t i = 1; i < reps.size(); ++i) {
    EXPECT_TRUE(reps[i].incremental) << "hop " << i;
    EXPECT_TRUE(reps[i].disk_consistent) << "hop " << i;
    EXPECT_LT(reps[i].blocks_first_pass, 200u) << "hop " << i;
  }
  EXPECT_TRUE(tri.a.disk().content_equals(tri.b.disk()));
}

class MultiHostRandomWalk : public ::testing::TestWithParam<std::uint64_t> {};

// Property: any random walk over three hosts stays consistent, and every
// hop to a previously-visited host is incremental.
TEST_P(MultiHostRandomWalk, StaysConsistent) {
  Simulator sim;
  Tri tri{sim};
  MigrationManager mgr{sim};
  mgr.set_multi_host_im(true);
  const std::uint64_t seed = GetParam();
  std::vector<MigrationReport> reps;
  bool walk_ok = true;

  sim.spawn([](Simulator& sim, Tri& tri, MigrationManager& mgr,
               std::vector<MigrationReport>& reps, std::uint64_t seed,
               bool& ok) -> Task<void> {
    sim::Rng rng{seed};
    Host* hosts[3] = {&tri.a, &tri.b, &tri.c};
    Host* at = &tri.a;
    std::set<Host*> visited{&tri.a};
    for (int hop = 0; hop < 6; ++hop) {
      Host* next = hosts[rng.uniform_u64(3)];
      if (next == at) next = hosts[(rng.uniform_u64(2) + 1 +
                                    (next - hosts[0])) % 3];
      co_await dirty_some(sim, tri.vm, rng.uniform_u64(20000), 10);
      // 'next' points into `hosts`, a fixed local array, not a mutable
      // container; no suspension can invalidate it.
      // vmig-lint: c2-ok -- pointer into fixed local array, not a container
      const auto rep = (co_await mgr.migrate({.domain = &tri.vm, .from = at, .to = next})).report;
      reps.push_back(rep);
      if (!rep.disk_consistent || !rep.memory_consistent) ok = false;
      if (visited.contains(next) && !rep.incremental) ok = false;
      visited.insert(next);
      at = next;
    }
  }(sim, tri, mgr, reps, seed, walk_ok));
  sim.run();

  EXPECT_TRUE(walk_ok);
  EXPECT_EQ(reps.size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiHostRandomWalk,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(PairwiseImSafetyTest, ThirdHostHopForcesFullCopy) {
  // The paper's prototype IM "can only act between the primary destination
  // and the source machine". Without the version directory, a hop to a
  // third host must NOT consume the tracking bitmap as a seed — the third
  // host has no base image, and an incremental pass would corrupt it.
  Simulator sim;
  Tri tri{sim};
  MigrationManager mgr{sim};  // pairwise mode (default)
  std::vector<MigrationReport> reps;
  sim.spawn([](Simulator& sim, Tri& tri, MigrationManager& mgr,
               std::vector<MigrationReport>& reps) -> Task<void> {
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.a, .to = &tri.b})).report);
    co_await dirty_some(sim, tri.vm, 100, 20);
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.b, .to = &tri.c})).report);  // 3rd host!
    co_await dirty_some(sim, tri.vm, 200, 20);
    reps.push_back((co_await mgr.migrate({.domain = &tri.vm, .from = &tri.c, .to = &tri.b})).report);  // back: IM ok
  }(sim, tri, mgr, reps));
  sim.run();

  ASSERT_EQ(reps.size(), 3u);
  EXPECT_FALSE(reps[1].incremental);  // full copy forced
  EXPECT_EQ(reps[1].blocks_first_pass, tri.a.disk().geometry().block_count);
  EXPECT_TRUE(reps[1].disk_consistent);
  EXPECT_TRUE(reps[2].incremental);  // pairwise back-hop still works
  EXPECT_TRUE(reps[2].disk_consistent);
}

TEST(ImDirectoryTest, SeedForUnknownHostIsNull) {
  Simulator sim;
  Host h{sim, "h", Geometry::from_mib(16)};
  ImDirectory dir{4096, BitmapKind::kLayered};
  EXPECT_FALSE(dir.seed_for(h).has_value());
  EXPECT_EQ(dir.divergent_blocks(h), 4096u);  // everything would move
}

TEST(ImDirectoryTest, OnMigratedUpdatesDivergence) {
  Simulator sim;
  Host a{sim, "a", Geometry::from_mib(16)};
  Host b{sim, "b", Geometry::from_mib(16)};
  Host c{sim, "c", Geometry::from_mib(16)};
  ImDirectory dir{4096, BitmapKind::kFlat};

  DirtyBitmap w1{BitmapKind::kFlat, 4096};
  w1.set_range(0, 10);
  dir.on_migrated(a, b, w1, true);
  EXPECT_EQ(dir.divergent_blocks(a), 0u);
  EXPECT_EQ(dir.divergent_blocks(b), 0u);

  DirtyBitmap w2{BitmapKind::kFlat, 4096};
  w2.set_range(100, 5);
  dir.on_migrated(b, c, w2, true);
  // A's copy misses the blocks written at B (w2); B and C are current.
  EXPECT_EQ(dir.divergent_blocks(a), 5u);
  EXPECT_EQ(dir.divergent_blocks(b), 0u);
  EXPECT_EQ(dir.divergent_blocks(c), 0u);
  const auto seed = dir.seed_for(a);
  ASSERT_TRUE(seed.has_value());
  EXPECT_TRUE(seed->test(100));
  EXPECT_FALSE(seed->test(0));
}

TEST(ImDirectoryTest, UnknownWritesInvalidateEverything) {
  Simulator sim;
  Host a{sim, "a", Geometry::from_mib(16)};
  Host b{sim, "b", Geometry::from_mib(16)};
  Host c{sim, "c", Geometry::from_mib(16)};
  ImDirectory dir{4096, BitmapKind::kFlat};
  dir.on_migrated(a, b, DirtyBitmap{BitmapKind::kFlat, 4096}, true);
  dir.on_migrated(b, c, DirtyBitmap{BitmapKind::kFlat, 4096}, true);
  // Now a hop with unknown write history: A's knowledge must be wiped.
  dir.on_migrated(c, b, DirtyBitmap{BitmapKind::kFlat, 4096}, false);
  EXPECT_EQ(dir.divergent_blocks(a), 4096u);
  EXPECT_EQ(dir.divergent_blocks(b), 0u);
  EXPECT_EQ(dir.divergent_blocks(c), 0u);
}

}  // namespace
}  // namespace vmig::core
