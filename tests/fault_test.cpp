// Fault-injection layer and resumable-migration tests (docs/FAULTS.md):
//   - FaultSpec grammar round-trips and rejects malformed clauses;
//   - link-level degradation / extra latency / seeded message loss;
//   - a resumed retry transfers strictly fewer blocks than a restart;
//   - post-copy survives message loss via pull retries + the push sweep;
//   - the freeze-and-copy fallback fires when the path stays down;
//   - an 8-seed chaos matrix (TEST_P named seed<N> so CI can shard by seed)
//     over a full evacuation under load, byte-identical across reruns.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cluster/orchestrator.hpp"
#include "core/migration_manager.hpp"
#include "core/protocol.hpp"
#include "core/report_io.hpp"
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "net/link.hpp"
#include "net/message_stream.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "scenario/cluster_testbed.hpp"
#include "workloads/diabolical.hpp"

namespace vmig::fault {
namespace {

using namespace vmig::sim::literals;

// ---------------------------------------------------------------- FaultSpec

TEST(FaultSpecTest, ParsesEveryKindAndRoundTrips) {
  const auto spec = FaultSpec::parse(
      "outage@5s+200ms; degrade@2s+10s:0.25; latency@1.5s+2s:5ms,"
      "loss@0s+30s:0.05");
  ASSERT_EQ(spec.events.size(), 4u);

  EXPECT_EQ(spec.events[0].kind, FaultKind::kOutage);
  EXPECT_EQ(spec.events[0].at, sim::Duration::seconds(5));
  EXPECT_EQ(spec.events[0].duration, sim::Duration::millis(200));

  EXPECT_EQ(spec.events[1].kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(spec.events[1].value, 0.25);

  EXPECT_EQ(spec.events[2].kind, FaultKind::kLatency);
  EXPECT_EQ(spec.events[2].at, sim::Duration::from_seconds(1.5));
  EXPECT_EQ(spec.events[2].extra, sim::Duration::millis(5));

  EXPECT_EQ(spec.events[3].kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(spec.events[3].value, 0.05);

  // Canonical rendering is parseable and stable (a fixed point).
  const std::string canon = spec.str();
  const auto reparsed = FaultSpec::parse(canon);
  ASSERT_EQ(reparsed.events.size(), spec.events.size());
  EXPECT_EQ(reparsed.str(), canon);
  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, spec.events[i].kind) << i;
    EXPECT_EQ(reparsed.events[i].at, spec.events[i].at) << i;
    EXPECT_EQ(reparsed.events[i].duration, spec.events[i].duration) << i;
  }
}

TEST(FaultSpecTest, RejectsMalformedClauses) {
  EXPECT_THROW(FaultSpec::parse("outage@nonsense"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("bogus@1s+1s"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("outage@1s"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("outage@1s+0s"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("outage@1s+1s:0.5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("degrade@1s+1s:1.5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("degrade@1s+1s"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("loss@0s+1s:2"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("latency@1s+1s"), std::invalid_argument);
  // An all-empty spec is rejected too: --fault with nothing to inject is
  // always a typo.
  EXPECT_THROW(FaultSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse(" ; "), std::invalid_argument);
}

// ------------------------------------------------------------- link faults

/// Transmit `bytes` once and return how long it took end to end.
sim::Duration timed_transmit(sim::Simulator& sim, net::Link& link,
                             std::uint64_t bytes) {
  const sim::TimePoint t0 = sim.now();
  sim::TimePoint t1{};
  sim.spawn([](net::Link* l, std::uint64_t n, sim::Simulator* s,
               sim::TimePoint* out) -> sim::Task<void> {
    co_await l->transmit(n);
    *out = s->now();
  }(&link, bytes, &sim, &t1));
  sim.run();
  return t1 - t0;
}

TEST(LinkFaultTest, DegradationScalesSerializeTime) {
  sim::Simulator sim;
  net::Link link{sim,
                 {.bandwidth_mibps = 100.0, .latency = sim::Duration::zero()}};
  const auto nominal = timed_transmit(sim, link, 10 * 1024 * 1024);
  link.set_degradation(0.5);
  const auto degraded = timed_transmit(sim, link, 10 * 1024 * 1024);
  EXPECT_EQ(degraded, nominal.scaled(2.0));
  link.set_degradation(1.0);
  EXPECT_EQ(timed_transmit(sim, link, 10 * 1024 * 1024), nominal);
}

TEST(LinkFaultTest, ExtraLatencyAddsToDelivery) {
  sim::Simulator sim;
  net::Link link{sim, {.bandwidth_mibps = 100.0, .latency = 1_ms}};
  const auto nominal = timed_transmit(sim, link, 4096);
  link.set_extra_latency(7_ms);
  EXPECT_EQ(timed_transmit(sim, link, 4096), nominal + 7_ms);
  link.set_extra_latency(sim::Duration::zero());
  EXPECT_EQ(timed_transmit(sim, link, 4096), nominal);
}

constexpr int kLossSends = 100;

TEST(LinkFaultTest, SeededLossDropsOnlyEligibleMessages) {
  sim::Simulator sim;
  net::Link link{sim};
  net::MessageStream<core::MigrationMessage> stream{sim, link};
  link.set_loss(0.5);
  link.seed_loss(42);
  // Only pull requests opt into the datagram model; control stays reliable.
  stream.set_drop_policy([](const core::MigrationMessage& m) {
    return m.get_if<core::PullRequestMsg>() != nullptr;
  });
  sim.spawn([](net::MessageStream<core::MigrationMessage>* s)
                -> sim::Task<void> {
    for (int i = 0; i < kLossSends; ++i) {
      const bool accepted = co_await s->send(core::MigrationMessage{
          core::PullRequestMsg{static_cast<storage::BlockId>(i)}});
      // Datagram semantics: the sender never observes the drop.
      EXPECT_TRUE(accepted);
    }
    co_await s->send(core::MigrationMessage{
        core::ControlMsg{core::Control::kSyncComplete}});
  }(&stream));
  sim.run();

  std::uint64_t received = 0;
  bool control_arrived = false;
  while (auto m = stream.try_recv()) {
    if (m->get_if<core::ControlMsg>() != nullptr) {
      control_arrived = true;
    } else {
      ++received;
    }
  }
  EXPECT_EQ(link.loss_rolls(), static_cast<std::uint64_t>(kLossSends));
  EXPECT_GT(stream.dropped(), 0u);
  EXPECT_LT(stream.dropped(), static_cast<std::uint64_t>(kLossSends));
  EXPECT_EQ(received + stream.dropped(),
            static_cast<std::uint64_t>(kLossSends));
  EXPECT_EQ(link.messages_dropped(), stream.dropped());
  EXPECT_TRUE(control_arrived);  // ineligible traffic is never lost

  // Same seed, same sequence of rolls: the loss pattern is reproducible.
  net::Link link2{sim};
  link2.set_loss(0.5);
  link2.seed_loss(42);
  std::uint64_t dropped2 = 0;
  for (int i = 0; i < kLossSends; ++i) {
    if (link2.roll_drop()) ++dropped2;
  }
  EXPECT_EQ(dropped2, stream.dropped());
}

// --------------------------------------------------- shared test scaffolding

scenario::ClusterTestbedConfig small_cluster(int hosts) {
  scenario::ClusterTestbedConfig cfg;
  cfg.hosts = hosts;
  cfg.vbd_mib = 16;
  cfg.guest_mem_mib = 4;
  // Fast hardware keeps these tests in the millisecond range.
  cfg.disk.seq_read_mbps = 800.0;
  cfg.disk.seq_write_mbps = 700.0;
  cfg.disk.seek = 100_us;
  cfg.disk.request_overhead = 5_us;
  cfg.lan.bandwidth_mibps = 1000.0;
  cfg.lan.latency = 50_us;
  return cfg;
}

core::MigrationConfig quick_config() {
  return core::MigrationConfig::build()
      .bitmap(core::BitmapKind::kFlat)
      .disk_iterations(4, 64)
      .done();
}

// ------------------------------------------------------- resumable retries

/// Abort one migration mid-first-pass with a link outage, then retry it.
struct RetryRun {
  core::MigrationOutcome first;
  core::MigrationOutcome retry;
  std::size_t states_after_abort = 0;
  std::size_t states_after_success = 0;
};

RetryRun abort_then_retry(bool resume_enabled) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();
  auto cfg = quick_config();
  cfg.resume_enabled = resume_enabled;
  // Cut the forward link mid-first-pass. The VBD-prepare handshake takes
  // ~5 ms and each 1 MiB chunk ~1.25 ms after that, so a 9 ms outage start
  // lands after a few chunks have been delivered but long before the 16 MiB
  // first pass completes: the abort leaves real resume state behind.
  tb.host(0).link_to(tb.host(1)).fail_at(sim::TimePoint{} + 9_ms, 10_ms);

  RetryRun r;
  sim.spawn([](scenario::ClusterTestbed* tb, vm::Domain* g,
               core::MigrationConfig cfg, RetryRun* r) -> sim::Task<void> {
    r->first = co_await tb->manager().migrate(
        {.domain = g, .from = &tb->host(0), .to = &tb->host(1), .config = cfg});
    r->states_after_abort = tb->manager().resume_states();
    // Back off past the outage window, as the orchestrator's retry layer
    // would; an immediate retry just trips over the same outage.
    co_await tb->sim().delay(20_ms);
    r->retry = co_await tb->manager().migrate(
        {.domain = g, .from = &tb->host(0), .to = &tb->host(1), .config = cfg});
    r->states_after_success = tb->manager().resume_states();
  }(&tb, &g, cfg, &r));
  sim.run();
  return r;
}

TEST(ResumableMigrationTest, ResumedRetryTransfersStrictlyFewerBlocks) {
  const RetryRun resumed = abort_then_retry(/*resume_enabled=*/true);
  const RetryRun restarted = abort_then_retry(/*resume_enabled=*/false);

  // Both paths: first attempt aborted cleanly, retry completed and verified.
  EXPECT_EQ(resumed.first.status, core::MigrationStatus::kLinkDisrupted);
  EXPECT_EQ(restarted.first.status, core::MigrationStatus::kLinkDisrupted);
  ASSERT_TRUE(resumed.retry.ok());
  ASSERT_TRUE(restarted.retry.ok());

  // The abort exported resume state; the retry's success invalidated it.
  EXPECT_EQ(resumed.states_after_abort, 1u);
  EXPECT_EQ(resumed.states_after_success, 0u);
  EXPECT_EQ(restarted.states_after_abort, 0u);

  // Without resume the retry pays a full first pass; with resume it re-sends
  // only the still-dirty delta — strictly fewer blocks.
  const std::uint64_t full_pass = restarted.retry.report.blocks_first_pass;
  EXPECT_FALSE(restarted.retry.report.resume_applied);
  ASSERT_TRUE(resumed.retry.report.resume_applied);
  EXPECT_GT(resumed.retry.report.resumed_blocks_saved, 0u);
  EXPECT_LT(resumed.retry.report.blocks_first_pass, full_pass);
  EXPECT_EQ(resumed.retry.report.blocks_first_pass +
                resumed.retry.report.resumed_blocks_saved,
            full_pass);
  EXPECT_LT(resumed.retry.report.bytes_disk_first_pass,
            restarted.retry.report.bytes_disk_first_pass);
}

TEST(ResumableMigrationTest, ResumedRetryIsDeterministic) {
  const RetryRun a = abort_then_retry(true);
  const RetryRun b = abort_then_retry(true);
  EXPECT_EQ(core::to_json(a.retry.report), core::to_json(b.retry.report));
  EXPECT_EQ(a.retry.report.total_time(), b.retry.report.total_time());
}

// --------------------------------------------- post-copy loss & freeze tests

/// Drive one manager migration of `g` host0 -> host1 with the workload
/// running, stopping the workload once the outcome lands.
sim::Task<void> migrate_under_load(scenario::ClusterTestbed* tb, vm::Domain* g,
                                   workload::Workload* wl,
                                   core::MigrationConfig cfg,
                                   core::MigrationOutcome* out) {
  wl->start();
  *out = co_await tb->manager().migrate(
      {.domain = g, .from = &tb->host(0), .to = &tb->host(1), .config = cfg});
  wl->request_stop();
}

TEST(FaultToleranceTest, PostCopySurvivesMessageLoss) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();
  // Aggressive writer: leaves a real residue for post-copy to synchronize.
  workload::DiabolicalWorkload wl{sim, g, /*seed=*/7};

  FaultInjector inj{sim, FaultSpec::parse("loss@0s+60s:0.25"), /*seed=*/5};
  inj.arm_path(tb.host(0).link_to(tb.host(1)),
               tb.host(1).link_to(tb.host(0)), "h0-h1");

  auto cfg = quick_config();
  // Small push chunks = many drop-eligible messages, so the loss model gets
  // plenty of rolls and the recovery paths (re-pull with backoff, post-push
  // sweep) are genuinely exercised.
  cfg.push_chunk_blocks = 8;
  cfg.postcopy_pull_timeout = 2_ms;
  cfg.postcopy_recovery_interval = 500_us;

  core::MigrationOutcome out;
  sim.spawn(migrate_under_load(&tb, &g, &wl, cfg, &out));
  sim.run_for(60_s);

  ASSERT_TRUE(out.ok()) << "status=" << core::to_string(out.status);
  EXPECT_GT(out.report.residual_dirty_blocks, 0u);  // post-copy actually ran
  EXPECT_GT(inj.messages_dropped(), 0u);            // ...and the loss bit
  // Lost pushes were recovered by pulls; lost pulls were re-sent on timeout.
  EXPECT_GT(out.report.blocks_pulled, 0u);
  EXPECT_GT(out.report.postcopy_pull_retries, 0u);
}

TEST(FaultToleranceTest, FreezeFallbackFiresWhenPathStaysDown) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(2)};
  vm::Domain& g = tb.add_vm("g", 0);
  tb.prefill_disks();
  workload::DiabolicalWorkload wl{sim, g, /*seed=*/11};

  auto cfg = quick_config();
  // A single pre-copy iteration leaves a large residue, so post-copy is long
  // enough for the outage below to land while blocks are still missing.
  cfg.disk_max_iterations = 1;
  cfg.postcopy_freeze_deadline = 3_ms;
  cfg.postcopy_recovery_interval = 500_us;

  core::MigrationOutcome out;
  sim.spawn(migrate_under_load(&tb, &g, &wl, cfg, &out));
  // The instant post-copy begins (guest running at the destination), kill
  // both directions for far longer than the freeze deadline.
  sim.spawn([](sim::Simulator* sim, scenario::ClusterTestbed* tb,
               vm::Domain* g) -> sim::Task<void> {
    while (sim->now() < sim::TimePoint{} + 10_s) {
      if (tb->host(1).hosts_domain(*g) && g->running()) {
        tb->host(0).link_to(tb->host(1)).fail_for(40_ms);
        tb->host(1).link_to(tb->host(0)).fail_for(40_ms);
        co_return;
      }
      co_await sim->delay(100_us);
    }
  }(&sim, &tb, &g));
  sim.run_for(60_s);

  ASSERT_TRUE(out.ok()) << "status=" << core::to_string(out.status);
  EXPECT_GE(out.report.postcopy_fallback_freezes, 1u);
  EXPECT_GT(out.report.postcopy_fallback_freeze_time, sim::Duration::zero());
}

// ------------------------------------------------------------- chaos matrix

/// One full evacuation under load and a mixed fault schedule — everything a
/// byte-identical determinism comparison needs.
struct ChaosRun {
  std::vector<std::string> outcomes;  // "<status>/<attempts>" per job id
  std::string trace_json;
  std::string metrics_csv;
  std::uint64_t retries = 0;
  std::uint64_t windows = 0;
  bool all_ok = false;
};

ChaosRun run_chaos(std::uint64_t seed) {
  sim::Simulator sim;
  scenario::ClusterTestbed tb{sim, small_cluster(3)};
  std::vector<std::unique_ptr<workload::DiabolicalWorkload>> wls;
  for (int i = 0; i < 4; ++i) {
    vm::Domain& d = tb.add_vm("vm" + std::to_string(i), 0);
    wls.push_back(std::make_unique<workload::DiabolicalWorkload>(
        sim, d, seed * 100 + static_cast<std::uint64_t>(i)));
  }
  tb.prefill_disks();

  obs::Registry reg{sim, sim::Duration::from_seconds(0.05)};
  obs::Tracer tracer{sim};
  tb.attach_obs(&reg);
  reg.start_sampling();

  FaultInjector inj{
      sim,
      FaultSpec::parse("outage@4ms+8ms; loss@0s+60s:0.1; "
                       "degrade@20ms+80ms:0.4; latency@25ms+80ms:1ms"),
      seed};
  inj.attach_obs(&reg, &tracer);
  inj.arm_path(tb.host(0).link_to(tb.host(1)),
               tb.host(1).link_to(tb.host(0)), "h0-h1");

  auto cfg = quick_config();
  cfg.postcopy_pull_timeout = 2_ms;
  cfg.postcopy_recovery_interval = 500_us;
  cfg.postcopy_freeze_deadline = 20_ms;

  cluster::Orchestrator orch{
      sim, tb.manager(),
      {.caps = {.per_source = 2, .per_dest = 2, .per_link = 1},
       .retry = {.max_attempts = 5,
                 .initial_backoff = sim::Duration::millis(10)},
       .registry = &reg,
       .tracer = &tracer}};
  for (auto& wl : wls) wl->start();
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0), cfg);
  // The workloads never idle on their own; wind them down once every job is
  // terminal so drain() can run the simulator dry.
  sim.spawn([](sim::Simulator* sim, cluster::Orchestrator* orch,
               std::vector<std::unique_ptr<workload::DiabolicalWorkload>>* wls)
                -> sim::Task<void> {
    while (!orch->all_terminal()) co_await sim->delay(1_ms);
    for (auto& wl : *wls) wl->request_stop();
  }(&sim, &orch, &wls));
  orch.drain();

  ChaosRun r;
  r.all_ok = orch.all_terminal() && orch.jobs_failed() == 0;
  for (std::size_t i = 0; i < orch.job_count(); ++i) {
    const cluster::MigrationJob& j = orch.job(static_cast<cluster::JobId>(i));
    r.outcomes.push_back(std::string{core::to_string(j.outcome.status)} + "/" +
                         std::to_string(j.attempts));
    r.all_ok = r.all_ok && j.outcome.ok();
  }
  r.trace_json = obs::chrome_trace_json(tracer);
  r.metrics_csv = core::to_csv(reg);
  r.retries = orch.retries();
  r.windows = inj.windows_applied();
  return r;
}

class FaultChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultChaosTest, EvacuationSurvivesMixedFaultsDeterministically) {
  const ChaosRun a = run_chaos(GetParam());
  EXPECT_TRUE(a.all_ok) << "seed=" << GetParam();
  // 4 fault windows armed on each direction of the path.
  EXPECT_EQ(a.windows, 8u);
  EXPECT_GT(a.retries, 0u);  // the outage actually bit
  EXPECT_NE(a.metrics_csv.find("fault.windows"), std::string::npos);
  EXPECT_NE(a.trace_json.find("fault_window"), std::string::npos);

  const ChaosRun b = run_chaos(GetParam());
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultChaosTest, ::testing::Range<std::uint64_t>(1, 9),
    [](const ::testing::TestParamInfo<std::uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

}  // namespace
}  // namespace vmig::fault
