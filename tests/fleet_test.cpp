// Fleet telemetry: the obs::Rollup aggregation tree (VM -> host -> rack ->
// fleet) with bounded exports, the byte-budgeted flight recorder whose
// exact aggregates survive sampling, the vmig_top renderer, and the
// `vmig_analyze --fleet` reconciliation path — driven in-process through
// vmig_top_core / vmig_analyze_core like the other tool tests.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "cluster/orchestrator.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/rollup.hpp"
#include "scenario/cluster_testbed.hpp"
#include "top.hpp"
#include "workloads/steady_writer.hpp"

namespace vmig {
namespace {

using namespace vmig::sim::literals;

// ------------------------------------------------------------ rollup folds

/// Synthetic fleet: four "hosts" (identity only — the rollup keys cells by
/// pointer, never dereferencing) across racks 0, 1 and 7 of a 64-host /
/// 8-per-rack layout.
struct FleetFixture {
  sim::Simulator sim;
  obs::Rollup rollup;
  int ids[4] = {};
  FleetFixture()
      : rollup{sim, obs::RollupConfig{.hosts = 64,
                                      .hosts_per_rack = 8,
                                      .top_k = 2}} {
    rollup.register_host(&ids[0], 0);
    rollup.register_host(&ids[1], 1);
    rollup.register_host(&ids[2], 8);
    rollup.register_host(&ids[3], 63);
  }
};

TEST(RollupTest, FoldsJobsIntoFleetRackAndHotRows) {
  FleetFixture f;
  obs::Rollup& ru = f.rollup;
  ru.job_submitted();
  ru.job_submitted();
  ru.job_submitted();

  ru.attempt_started(&f.ids[0], &f.ids[2]);
  ru.attempt_finished(&f.ids[0], &f.ids[2]);
  ru.job_terminal(&f.ids[0], &f.ids[2],
                  {.completed = true,
                   .slo_miss = false,
                   .bytes = 1000,
                   .downtime_ns = 5,
                   .dirty_blocks = 7});
  ru.job_retry(&f.ids[1]);
  ru.deferral();
  ru.job_terminal(&f.ids[1], &f.ids[3],
                  {.completed = false,
                   .slo_miss = true,
                   .bytes = 1000000007,
                   .downtime_ns = 95,
                   .dirty_blocks = 70});
  ru.sample_now();
  const std::string csv = ru.to_csv(/*include_shards=*/false);

  EXPECT_EQ(csv.find("t_seconds,metric,value\n"), 0u);
  // Fleet totals: exact integers, pending = submitted - terminal - running.
  EXPECT_NE(csv.find("0.000000,fleet.jobs_submitted,3\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.jobs_running,0\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.jobs_completed,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.jobs_failed,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.jobs_pending,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.retries,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.deferrals,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.slo_miss,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.bytes_total,1000001007\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.downtime_ns_total,100\n"), std::string::npos);
  EXPECT_NE(csv.find(",fleet.dirty_blocks_total,77\n"), std::string::npos);
  // Rack fold: sources attribute bytes_out, destinations bytes_in; only
  // the three active racks of the eight export rows.
  EXPECT_NE(csv.find(",rack0.bytes_out,1000001007\n"), std::string::npos);
  EXPECT_NE(csv.find(",rack1.bytes_in,1000\n"), std::string::npos);
  EXPECT_NE(csv.find(",rack7.bytes_in,1000000007\n"), std::string::npos);
  EXPECT_EQ(csv.find(",rack2."), std::string::npos);
  EXPECT_EQ(csv.find(",rack3."), std::string::npos);
  // Hot hosts by dirty churn: value desc, k from 1.
  EXPECT_NE(csv.find(",hot_dirty1.host,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",hot_dirty1.blocks,70\n"), std::string::npos);
  EXPECT_NE(csv.find(",hot_dirty2.host,0\n"), std::string::npos);
  EXPECT_NE(csv.find(",hot_dirty2.blocks,7\n"), std::string::npos);
  // SLO burn table only lists hosts that actually burned.
  EXPECT_NE(csv.find(",hot_slo1.host,1\n"), std::string::npos);
  EXPECT_EQ(csv.find(",hot_slo2."), std::string::npos);
  // The invariant view carries no shard rows.
  EXPECT_EQ(csv.find("shard"), std::string::npos);
  // The full view does.
  EXPECT_NE(ru.to_csv(true).find(",shard0.live,"), std::string::npos);
}

TEST(RollupTest, HotTablesStayBoundedAndBreakTiesByHostIndex) {
  FleetFixture f;  // top_k = 2
  obs::Rollup& ru = f.rollup;
  for (int i = 0; i < 4; ++i) ru.job_submitted();
  // Three hosts with dirty churn, two tied at the top: the table holds
  // exactly top_k rows and the tie resolves to the lower host index.
  ru.job_terminal(&f.ids[2], &f.ids[0],
                  {.completed = true, .bytes = 1, .dirty_blocks = 50});
  ru.job_terminal(&f.ids[1], &f.ids[0],
                  {.completed = true, .bytes = 1, .dirty_blocks = 50});
  ru.job_terminal(&f.ids[3], &f.ids[0],
                  {.completed = true, .bytes = 1, .dirty_blocks = 8});
  ru.sample_now();
  const std::string csv = ru.to_csv(false);
  EXPECT_NE(csv.find(",hot_dirty1.host,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",hot_dirty2.host,8\n"), std::string::npos);
  EXPECT_EQ(csv.find(",hot_dirty3."), std::string::npos);
}

TEST(RollupTest, InFlightTracksRunningAttemptsPerRack) {
  FleetFixture f;
  obs::Rollup& ru = f.rollup;
  ru.job_submitted();
  ru.attempt_started(&f.ids[0], &f.ids[2]);
  ru.sample_now();
  std::string csv = ru.to_csv(false);
  EXPECT_NE(csv.find(",fleet.jobs_running,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",rack0.in_flight,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",rack1.in_flight,1\n"), std::string::npos);

  ru.attempt_finished(&f.ids[0], &f.ids[2]);
  ru.sample_now();
  csv = ru.to_csv(false);
  // The second snapshot's rack rows are back to balance (no rack row at
  // all: nothing else touched those cells, so the racks fold to zero and
  // drop out of the export).
  const std::size_t second = csv.rfind("fleet.jobs_running,0");
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(csv.find(",rack0.in_flight,1\n", second), std::string::npos);
}

// Both periodic samplers park via the simulator's observer-tick census: a
// plain has_pending() park test would let each sampler's tick count as
// "work" for the other and keep Simulator::run spinning forever (the
// original `--metrics` + `--fleet-metrics` hang).
TEST(RollupTest, CoAttachedRegistryAndRollupSamplersBothPark) {
  sim::Simulator sim;
  obs::Registry reg{sim, sim::Duration::millis(100)};
  reg.counter("fleet_test.bytes");
  obs::RollupConfig rcfg;
  rcfg.hosts = 4;
  rcfg.sample_interval = sim::Duration::millis(70);
  obs::Rollup rollup{sim, rcfg};
  reg.start_sampling();
  rollup.start_sampling();
  sim.spawn(
      [](sim::Simulator& s) -> sim::Task<void> {
        co_await s.delay(sim::Duration::seconds(1));
      }(sim),
      "work");
  sim.run();  // would never return before the census fix
  EXPECT_FALSE(reg.sampling());
  EXPECT_FALSE(rollup.sampling());
  EXPECT_EQ(sim.observer_ticks(), 0u);
  EXPECT_FALSE(sim.has_pending());
  // Both kept sampling while the real work was live.
  EXPECT_GE(rollup.snapshot_count(), 10u);
}

// ----------------------------------------------------- budgeted recording

/// Feed one synthetic migration with `events` pre-copy sends into `rec`.
void feed_migration(obs::FlightRecorder& rec, int events) {
  const auto mid = rec.begin_migration("vm0", "hostA", "hostB",
                                       sim::TimePoint::origin());
  for (int i = 0; i < events; ++i) {
    rec.disk_precopy_send(mid, sim::TimePoint::origin() + sim::Duration::millis(i), 1,
                          static_cast<std::uint64_t>(i % 512), 4, 16384);
  }
  obs::MigrationClose close;
  close.bytes_disk_first_pass = static_cast<std::uint64_t>(events) * 16384;
  rec.end_migration(mid, sim::TimePoint::origin() + sim::Duration::millis(events),
                    "completed", close);
}

std::uint64_t event_section_bytes(const std::string& jsonl) {
  std::uint64_t bytes = 0;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size() - 1;
    if (jsonl.compare(pos, 6, "{\"k\":\"") == 0) bytes += nl + 1 - pos;
    pos = nl + 1;
  }
  return bytes;
}

std::string serialize(const obs::FlightRecorder& rec) {
  std::ostringstream out;
  obs::write_flight_record(out, rec);
  return out.str();
}

TEST(BudgetedRecorderTest, EventSectionStaysWithinByteBudget) {
  constexpr std::uint64_t kBudget = 4096;
  obs::FlightRecorder full;
  obs::FlightRecorder thin;
  thin.set_byte_budget(kBudget);
  feed_migration(full, 2000);
  feed_migration(thin, 2000);

  const std::string full_jsonl = serialize(full);
  const std::string thin_jsonl = serialize(thin);
  // The unbudgeted twin blows way past the budget; the budgeted one holds.
  EXPECT_GT(event_section_bytes(full_jsonl), kBudget);
  EXPECT_LE(event_section_bytes(thin_jsonl), kBudget);
  EXPECT_GT(thin.sampled_out(), 0u);
  EXPECT_GT(thin.event_count(), 0u);
  EXPECT_GT(thin.sample_stride(), 1u);
  // Budget provenance lands in the header, sampling stats in the footer.
  EXPECT_NE(thin_jsonl.find("\"byte_budget\":4096"), std::string::npos);
  EXPECT_NE(thin_jsonl.find("\"stride\":"), std::string::npos);
  EXPECT_NE(thin_jsonl.find("\"sampled_out\":"), std::string::npos);
  EXPECT_EQ(full_jsonl.find("\"byte_budget\""), std::string::npos);
}

TEST(BudgetedRecorderTest, ExactAggregatesSurviveSampling) {
  obs::FlightRecorder full;
  obs::FlightRecorder thin;
  thin.set_byte_budget(2048);
  feed_migration(full, 1500);
  feed_migration(thin, 1500);

  // Everything below the event tier is exact: the summary line (aggregates
  // + the MigrationClose "report") must serialize byte-identically whether
  // or not events were sampled away.
  std::istringstream fs{serialize(full)};
  std::istringstream ts{serialize(thin)};
  std::string fline;
  std::string tline;
  std::string full_summary;
  std::string thin_summary;
  while (std::getline(fs, fline)) {
    if (fline.rfind("{\"summary\":", 0) == 0) full_summary = fline;
  }
  while (std::getline(ts, tline)) {
    if (tline.rfind("{\"summary\":", 0) == 0) thin_summary = tline;
  }
  ASSERT_FALSE(full_summary.empty());
  EXPECT_EQ(full_summary, thin_summary);
  EXPECT_EQ(thin.stats(0).disk_iters.at(0).blocks,
            full.stats(0).disk_iters.at(0).blocks);
}

TEST(BudgetedRecorderTest, BudgetedRecordReplaysByteIdentically) {
  obs::FlightRecorder a;
  obs::FlightRecorder b;
  a.set_byte_budget(2048);
  b.set_byte_budget(2048);
  feed_migration(a, 1777);
  feed_migration(b, 1777);
  EXPECT_EQ(serialize(a), serialize(b));
}

TEST(BudgetedRecorderTest, FirstEmitOfEveryMigrationIsKept) {
  obs::FlightRecorder thin;
  thin.set_byte_budget(2048);
  feed_migration(thin, 1000);
  feed_migration(thin, 1000);
  const auto events = thin.events();
  ASSERT_FALSE(events.empty());
  bool mig0_first = false;
  bool mig1_first = false;
  for (const auto& e : events) {
    if (e.mig == 0 && e.t_ns == 0) mig0_first = true;
    if (e.mig == 1 && e.t_ns == 0) mig1_first = true;
  }
  EXPECT_TRUE(mig0_first);
  EXPECT_TRUE(mig1_first);
}

// ------------------------------------------------------------ vmig_top

struct TopResult {
  int status = -1;
  std::string out;
  std::string err;
};

TopResult render(const std::string& csv, bool last_only = false) {
  std::istringstream in{csv};
  top::Options opt;
  opt.last_only = last_only;
  std::ostringstream out;
  std::ostringstream err;
  TopResult r;
  r.status = top::run_stream(in, opt, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(VmigTopTest, RendersFleetRacksHotAndShardSections) {
  FleetFixture f;
  f.rollup.job_submitted();
  f.rollup.job_terminal(&f.ids[1], &f.ids[3],
                        {.completed = true,
                         .bytes = 4096,
                         .downtime_ns = 12,
                         .dirty_blocks = 9});
  f.rollup.sample_now();
  const TopResult r = render(f.rollup.to_csv(true));
  EXPECT_EQ(r.status, 0) << r.err;
  EXPECT_NE(r.out.find("== fleet @ 0.000000s =="), std::string::npos);
  EXPECT_NE(r.out.find("jobs_submitted=1"), std::string::npos);
  EXPECT_NE(r.out.find("racks (2 active)"), std::string::npos);
  EXPECT_NE(r.out.find("hot dirty_blocks: host1=9"), std::string::npos);
  EXPECT_NE(r.out.find("shards: s0["), std::string::npos);
  EXPECT_NE(r.out.find("(1 snapshot)"), std::string::npos);
}

TEST(VmigTopTest, LastOnlyRendersTheFinalSnapshot) {
  FleetFixture f;
  f.rollup.job_submitted();
  f.rollup.sample_now();
  f.rollup.job_submitted();
  f.rollup.sample_now();  // same timestamp: the splitter must still see two
  const std::string csv = f.rollup.to_csv(false);
  const TopResult all = render(csv);
  EXPECT_NE(all.out.find("(2 snapshots)"), std::string::npos);
  EXPECT_NE(all.out.find("jobs_submitted=1"), std::string::npos);
  EXPECT_NE(all.out.find("jobs_submitted=2"), std::string::npos);

  const TopResult last = render(csv, /*last_only=*/true);
  EXPECT_EQ(last.out.find("jobs_submitted=1"), std::string::npos);
  EXPECT_NE(last.out.find("jobs_submitted=2"), std::string::npos);
  EXPECT_NE(last.out.find("(2 snapshots)"), std::string::npos);
}

TEST(VmigTopTest, RejectsNonRollupInput) {
  EXPECT_EQ(render("not,a,rollup\n1,2,3\n").status, 2);
  EXPECT_EQ(render("").status, 2);
  const TopResult r = render("t_seconds,metric,value\ngarbage-line\n");
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("malformed row"), std::string::npos);
}

// ---------------------------------------------- analyze --fleet end to end

struct FleetRun {
  std::string flight_jsonl;
  std::string fleet_csv;
};

/// A small chaos-seeded evacuation with the whole fleet stack attached —
/// the files `vmig_sim --cluster --flight-record --fleet-metrics` writes.
FleetRun make_fleet_run() {
  sim::Simulator sim;
  sim.set_fast_forward(true);
  scenario::ClusterTestbedConfig bed;
  bed.hosts = 16;
  bed.vbd_mib = 16;
  bed.guest_mem_mib = 4;
  bed.disk.seq_read_mbps = 800.0;
  bed.disk.seq_write_mbps = 700.0;
  bed.disk.seek = 100_us;
  bed.disk.request_overhead = 5_us;
  bed.lan.bandwidth_mibps = 1000.0;
  bed.lan.latency = 50_us;
  scenario::ClusterTestbed tb{sim, bed};
  for (int i = 0; i < 6; ++i) tb.add_vm("vm" + std::to_string(i), 0);
  tb.prefill_disks();

  std::vector<std::unique_ptr<workload::SteadyWriter>> writers;
  for (int i = 0; i < 6; ++i) {
    workload::SteadyWriterConfig wc;
    wc.blocks_per_tick = 16;
    wc.region_blocks = 1024;
    wc.until = sim::TimePoint::origin() + 1_s;
    writers.push_back(std::make_unique<workload::SteadyWriter>(
        sim, tb.vm(static_cast<std::size_t>(i)), wc));
    writers.back()->start();
  }

  obs::FlightRecorder rec;
  rec.set_byte_budget(8192);
  obs::RollupConfig rcfg;
  rcfg.hosts = 16;
  rcfg.sample_interval = sim::Duration::millis(200);
  obs::Rollup rollup{sim, rcfg};
  tb.attach_rollup(&rollup);
  rollup.start_sampling();

  cluster::Orchestrator orch{
      sim, tb.manager(),
      {.caps = {.per_source = 4, .per_dest = 2, .per_link = 1},
       .retry = {.max_attempts = 3,
                 .initial_backoff = sim::Duration::millis(20)},
       .recorder = &rec,
       .rollup = &rollup}};
  auto cfg = core::MigrationConfig::build()
                 .bitmap(core::BitmapKind::kFlat)
                 .disk_iterations(4, 64)
                 .done();
  orch.submit_evacuation(tb.host(0), tb.pick_destinations(0, 4), cfg);
  // Chaos window mid-evacuation: retries must reconcile too.
  auto dests = tb.pick_destinations(0, 1);
  tb.host(0).link_to(*dests[0]).fail_at(sim::TimePoint{} + 4_ms, 8_ms);
  orch.drain();
  EXPECT_TRUE(orch.all_terminal());
  EXPECT_GT(orch.retries(), 0u);

  rollup.sample_now();
  FleetRun r;
  r.flight_jsonl = serialize(rec);
  r.fleet_csv = rollup.to_csv();
  return r;
}

const FleetRun& fleet_run() {
  static const FleetRun r = make_fleet_run();
  return r;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  ASSERT_TRUE(f.is_open()) << path;
  f << content;
}

struct AnalyzeResult {
  int status = -1;
  std::string out;
  std::string err;
};

AnalyzeResult analyze_fleet(const std::string& record_path,
                            const std::string& fleet_metrics_path) {
  analyze::Options opt;
  opt.record_path = record_path;
  opt.fleet = true;
  opt.fleet_metrics_path = fleet_metrics_path;
  std::ostringstream out;
  std::ostringstream err;
  AnalyzeResult r;
  r.status = analyze::run(opt, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(AnalyzeFleetTest, BudgetedChaosRunReconcilesAgainstRollup) {
  write_file("fleet_test_flight.jsonl", fleet_run().flight_jsonl);
  write_file("fleet_test_rollup.csv", fleet_run().fleet_csv);
  const AnalyzeResult r =
      analyze_fleet("fleet_test_flight.jsonl", "fleet_test_rollup.csv");
  EXPECT_EQ(r.status, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("fleet rollup (derived from record):"),
            std::string::npos);
  EXPECT_EQ(r.out.find("[FAIL]"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verdict: all reconciliation checks passed"),
            std::string::npos);
}

TEST(AnalyzeFleetTest, TamperedRollupTotalIsCaught) {
  write_file("fleet_test_flight.jsonl", fleet_run().flight_jsonl);
  // Corrupt the terminal fleet.bytes_total row: reconciliation must fail.
  std::string csv = fleet_run().fleet_csv;
  const std::size_t pos = csv.rfind("fleet.bytes_total,");
  ASSERT_NE(pos, std::string::npos);
  csv[pos + std::string("fleet.bytes_total,").size()] = '9';
  write_file("fleet_test_rollup_bad.csv", csv);
  const AnalyzeResult r =
      analyze_fleet("fleet_test_flight.jsonl", "fleet_test_rollup_bad.csv");
  EXPECT_EQ(r.status, 1);
  EXPECT_NE(r.out.find("[FAIL]"), std::string::npos);
  EXPECT_NE(r.out.find("verdict: RECONCILIATION FAILED"), std::string::npos);
}

}  // namespace
}  // namespace vmig
