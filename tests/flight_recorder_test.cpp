// Flight recorder tests (docs/ANALYSIS.md):
//   - the event ring drops oldest-first while aggregates stay exact;
//   - copy-count distribution and hottest-blocks ordering;
//   - end-to-end: recorder aggregates reconcile exactly against the
//     MigrationReport of an instrumented TPM run (the analyzer's contract);
//   - serialization is a pure function of recorder state;
//   - chaos seed 3 from the fault matrix re-run with recording produces a
//     byte-identical JSONL flight record across two full replays.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/orchestrator.hpp"
#include "core/migration_manager.hpp"
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "obs/recorder.hpp"
#include "scenario/cluster_testbed.hpp"
#include "scenario/testbed.hpp"
#include "workloads/diabolical.hpp"
#include "workloads/kernel_build.hpp"

namespace vmig {
namespace {

using namespace vmig::sim::literals;
using obs::FlightRecorder;

sim::TimePoint at_ns(std::int64_t ns) {
  return sim::TimePoint{} + sim::Duration::nanos(ns);
}

// ------------------------------------------------------------ ring + stats

TEST(FlightRecorderTest, RingDropsOldestButAggregatesStayExact) {
  FlightRecorder rec{/*capacity=*/8};
  const obs::FlightMigId m = rec.begin_migration("vm0", "h0", "h1", at_ns(0));
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.disk_precopy_send(m, at_ns(static_cast<std::int64_t>(i)), /*iter=*/1,
                          /*block=*/i * 4, /*count=*/4, /*bytes=*/4 * 4096);
  }
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.event_count(), 8u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().block, 12u * 4);  // oldest surviving emit
  EXPECT_EQ(events.back().block, 19u * 4);

  // The aggregates never drop: iteration 1 still carries all 20 chunks.
  const auto& s = rec.stats(m);
  ASSERT_EQ(s.disk_iters.size(), 1u);
  EXPECT_EQ(s.disk_iters[0].iter, 1);
  EXPECT_EQ(s.disk_iters[0].blocks, 80u);
  EXPECT_EQ(s.disk_iters[0].bytes, 20u * 4 * 4096);
  EXPECT_EQ(s.blocks_sent(), 80u);
}

TEST(FlightRecorderTest, CopyCountDistributionAndHottestBlocks) {
  FlightRecorder rec;
  const obs::FlightMigId m = rec.begin_migration("vm0", "h0", "h1", at_ns(0));
  // Blocks 0..9 once (first pass), 2..3 again (iter 2), 3 a third time:
  // copy counts {1: 8 blocks, 2: 1 block, 3: 1 block}.
  rec.disk_precopy_send(m, at_ns(1), 1, 0, 10, 10 * 4096);
  rec.disk_precopy_send(m, at_ns(2), 2, 2, 2, 2 * 4096);
  rec.disk_precopy_send(m, at_ns(3), 3, 3, 1, 1 * 4096);

  const auto& s = rec.stats(m);
  EXPECT_EQ(s.blocks_sent(), 10u);
  const auto dist = s.copy_count_distribution();
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_EQ(dist[0], (std::pair<std::uint32_t, std::uint64_t>{1, 8}));
  EXPECT_EQ(dist[1], (std::pair<std::uint32_t, std::uint64_t>{2, 1}));
  EXPECT_EQ(dist[2], (std::pair<std::uint32_t, std::uint64_t>{3, 1}));

  // Only blocks sent more than once qualify; hottest first, then block asc.
  const auto hot = s.hottest_blocks(8);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0], (std::pair<std::uint64_t, std::uint32_t>{3, 3}));
  EXPECT_EQ(hot[1], (std::pair<std::uint64_t, std::uint32_t>{2, 2}));
  EXPECT_EQ(s.hottest_blocks(1).size(), 1u);  // k caps the list
}

// ------------------------------------------------- end-to-end reconciliation

struct FlightRun {
  core::MigrationReport report;
  std::unique_ptr<FlightRecorder> rec;
  std::string jsonl;
};

/// One instrumented TPM migration with the flight recorder attached via
/// MigrationConfig::obs_recorder — the same wiring `vmig_sim
/// --flight-record` uses.
FlightRun run_recorded(bool force_postcopy_residue) {
  sim::Simulator sim;
  scenario::TestbedConfig bed;
  bed.vbd_mib = 128;
  bed.guest_mem_mib = 64;
  scenario::Testbed tb{sim, bed};
  tb.prefill_disk();

  auto cfg = tb.paper_migration_config();
  if (force_postcopy_residue) {
    // First pass only + throttled push sweep: post-copy gets a real residue
    // and guest reads genuinely stall on it (same shape as obs_export_test).
    cfg.disk_max_iterations = 1;
    cfg.disk_residual_target_blocks = 0;
    cfg.rate_limit_mibps = 8.0;
    cfg.rate_limit_postcopy = true;
  }

  FlightRun r;
  r.rec = std::make_unique<FlightRecorder>();
  cfg.obs_recorder = r.rec.get();

  std::unique_ptr<workload::Workload> wl;
  if (force_postcopy_residue) {
    wl = std::make_unique<workload::DiabolicalWorkload>(sim, tb.vm(), 42);
  } else {
    wl = std::make_unique<workload::KernelBuildWorkload>(sim, tb.vm(), 42);
  }
  r.report = tb.run_tpm(wl.get(), sim::Duration::seconds(2),
                        sim::Duration::seconds(2), cfg);
  std::ostringstream out;
  obs::write_flight_record(out, *r.rec);
  r.jsonl = out.str();
  return r;
}

TEST(FlightRecorderTest, AggregatesReconcileExactlyWithReport) {
  const FlightRun r = run_recorded(/*force_postcopy_residue=*/true);
  ASSERT_TRUE(r.report.disk_consistent);
  ASSERT_EQ(r.rec->migration_count(), 1u);
  const auto& s = r.rec->stats(0);
  const core::MigrationReport& rep = r.report;

  EXPECT_EQ(s.status, "completed");
  EXPECT_TRUE(s.closed);
  EXPECT_EQ(s.started_ns, rep.started.ns());

  // Disk pre-copy: iteration 1 is the first pass, the rest is retransfer.
  ASSERT_FALSE(s.disk_iters.empty());
  EXPECT_EQ(s.disk_iters[0].iter, 1);
  EXPECT_EQ(s.disk_iters[0].bytes, rep.bytes_disk_first_pass);
  EXPECT_EQ(s.disk_iters[0].blocks, rep.blocks_first_pass);
  std::uint64_t retransfer = 0;
  for (std::size_t i = 1; i < s.disk_iters.size(); ++i) {
    retransfer += s.disk_iters[i].bytes;
  }
  EXPECT_EQ(retransfer, rep.bytes_disk_retransfer);
  EXPECT_EQ(s.disk_iters.size(),
            static_cast<std::size_t>(rep.disk_iterations));

  // Memory pre-copy and the freeze-and-copy payload split.
  EXPECT_EQ(s.mem_bytes, rep.bytes_memory_precopy);
  EXPECT_EQ(s.mem_rounds, static_cast<std::uint64_t>(rep.mem_iterations));
  EXPECT_EQ(s.residual_mem_bytes + s.cpu_bytes, rep.bytes_freeze_residual);
  EXPECT_EQ(s.bitmap_bytes, rep.bytes_bitmap);
  EXPECT_EQ(s.bitmap_blocks, rep.residual_dirty_blocks);

  // Post-copy, destination-derived.
  EXPECT_EQ(s.push_bytes, rep.bytes_postcopy_push);
  EXPECT_EQ(s.pull_bytes + s.pull_req_bytes, rep.bytes_postcopy_pull);
  EXPECT_EQ(s.blocks_pushed, rep.blocks_pushed);
  EXPECT_EQ(s.blocks_pulled, rep.blocks_pulled);
  EXPECT_EQ(s.blocks_dropped, rep.blocks_dropped);

  // Stalls: count, total and max agree with the report; the histogram saw
  // exactly the same observations.
  ASSERT_GT(rep.postcopy_reads_blocked, 0u);
  EXPECT_EQ(s.stall_count, rep.postcopy_reads_blocked);
  EXPECT_EQ(s.stall_total_ns, rep.postcopy_read_stall_total.ns());
  EXPECT_EQ(s.stall_max_ns, rep.postcopy_read_stall_max.ns());
  EXPECT_EQ(s.stall_hist.count(), rep.postcopy_reads_blocked);
  EXPECT_EQ(s.stall_hist.sum(),
            static_cast<double>(rep.postcopy_read_stall_total.ns()));

  // The MigrationClose snapshot core filled in matches the report too.
  EXPECT_EQ(s.close.bytes_disk_first_pass, rep.bytes_disk_first_pass);
  EXPECT_EQ(s.close.residual_dirty_blocks, rep.residual_dirty_blocks);
  EXPECT_EQ(s.close.postcopy_reads_blocked, rep.postcopy_reads_blocked);
  EXPECT_EQ(s.close.suspended_ns, rep.suspended.ns());
  EXPECT_EQ(s.close.resumed_ns, rep.resumed.ns());
}

TEST(FlightRecorderTest, SerializationIsPureAndReplayStable) {
  const FlightRun a = run_recorded(false);
  // Dumping the same recorder twice is byte-identical (pure function)...
  std::ostringstream again;
  obs::write_flight_record(again, *a.rec);
  EXPECT_EQ(a.jsonl, again.str());
  // ...and a full replay of the scenario reproduces the record exactly.
  const FlightRun b = run_recorded(false);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl.rfind("{\"vmig_flight_record\":", 0), 0u);
}

// ----------------------------------------------------- chaos replay (seed 3)

/// Chaos seed 3 from the fault-matrix (fault_test.cpp run_chaos), re-run with
/// the flight recorder attached through the orchestrator: a full evacuation
/// under a mixed fault schedule, with aborts, retries and resumes — the
/// record must still serialize byte-identically across replays.
std::string run_chaos_recorded(std::uint64_t seed) {
  sim::Simulator sim;
  scenario::ClusterTestbedConfig bed;
  bed.hosts = 3;
  bed.vbd_mib = 16;
  bed.guest_mem_mib = 4;
  bed.disk.seq_read_mbps = 800.0;
  bed.disk.seq_write_mbps = 700.0;
  bed.disk.seek = 100_us;
  bed.disk.request_overhead = 5_us;
  bed.lan.bandwidth_mibps = 1000.0;
  bed.lan.latency = 50_us;
  scenario::ClusterTestbed tb{sim, bed};
  std::vector<std::unique_ptr<workload::DiabolicalWorkload>> wls;
  for (int i = 0; i < 4; ++i) {
    vm::Domain& d = tb.add_vm("vm" + std::to_string(i), 0);
    wls.push_back(std::make_unique<workload::DiabolicalWorkload>(
        sim, d, seed * 100 + static_cast<std::uint64_t>(i)));
  }
  tb.prefill_disks();

  fault::FaultInjector inj{
      sim,
      fault::FaultSpec::parse("outage@4ms+8ms; loss@0s+60s:0.1; "
                              "degrade@20ms+80ms:0.4; latency@25ms+80ms:1ms"),
      seed};
  inj.arm_path(tb.host(0).link_to(tb.host(1)),
               tb.host(1).link_to(tb.host(0)), "h0-h1");

  auto cfg = core::MigrationConfig::build()
                 .bitmap(core::BitmapKind::kFlat)
                 .disk_iterations(4, 64)
                 .done();
  cfg.postcopy_pull_timeout = 2_ms;
  cfg.postcopy_recovery_interval = 500_us;
  cfg.postcopy_freeze_deadline = 20_ms;

  FlightRecorder rec;
  cluster::Orchestrator orch{
      sim, tb.manager(),
      {.caps = {.per_source = 2, .per_dest = 2, .per_link = 1},
       .retry = {.max_attempts = 5,
                 .initial_backoff = sim::Duration::millis(10)},
       .recorder = &rec}};
  for (auto& wl : wls) wl->start();
  orch.submit_evacuation(tb.host(0), tb.hosts_except(0), cfg);
  sim.spawn([](sim::Simulator* sim, cluster::Orchestrator* orch,
               std::vector<std::unique_ptr<workload::DiabolicalWorkload>>* wls)
                -> sim::Task<void> {
    while (!orch->all_terminal()) co_await sim->delay(1_ms);
    for (auto& wl : *wls) wl->request_stop();
  }(&sim, &orch, &wls));
  orch.drain();

  EXPECT_TRUE(orch.all_terminal());
  EXPECT_EQ(orch.jobs_failed(), 0u);
  // Every attempt opened a migration in the record; every job closed one
  // terminal JobRecord.
  EXPECT_GE(rec.migration_count(), orch.job_count());
  EXPECT_EQ(rec.jobs().size(), orch.job_count());

  std::ostringstream out;
  obs::write_flight_record(out, rec);
  return out.str();
}

TEST(FlightRecorderTest, ChaosSeed3FlightRecordIsByteIdentical) {
  const std::string a = run_chaos_recorded(3);
  const std::string b = run_chaos_recorded(3);
  EXPECT_EQ(a, b);
  // The record saw real fault-path traffic: at least one abort closed a
  // migration as link-disrupted before its retry completed.
  EXPECT_NE(a.find("\"status\":\"link-disrupted\""), std::string::npos);
  EXPECT_NE(a.find("\"status\":\"completed\""), std::string::npos);
  EXPECT_NE(a.find("\"job\":"), std::string::npos);
}

}  // namespace
}  // namespace vmig
